// Serving engine: the concurrent query layer end to end.
//
// Scenario: a dashboard backend keeps a few datasets resident and fields
// a mixed stream of entropy / MI queries from many clients. The example:
//   1. registers two synthetic datasets with a QueryEngine under a
//      memory budget,
//   2. submits a burst of concurrent queries of different kinds,
//   3. repeats a query to show the result cache answering for free,
//   4. cancels a query mid-flight from another thread,
//   5. prints the engine counters that a monitoring page would scrape.
//
// Run: ./build/examples/serving_engine

#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/datagen/dataset_presets.h"
#include "src/engine/query_engine.h"

int main() {
  swope::EngineConfig config;
  config.num_threads = 4;
  config.max_in_flight = 4;
  config.memory_budget_bytes = 256ull << 20;
  swope::QueryEngine engine(config);

  for (auto [name, preset] :
       {std::pair{"cdc", swope::DatasetPreset::kCdc},
        std::pair{"enem", swope::DatasetPreset::kEnem}}) {
    auto table = swope::MakePresetTable(preset, /*rows=*/30000, /*seed=*/7);
    if (!table.ok()) {
      std::fprintf(stderr, "dataset: %s\n",
                   table.status().ToString().c_str());
      return 1;
    }
    if (auto status = engine.RegisterDataset(name, *std::move(table));
        !status.ok()) {
      std::fprintf(stderr, "register: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // A burst of concurrent queries: different kinds, shared datasets.
  auto make_spec = [](const std::string& dataset, swope::QueryKind kind) {
    swope::QuerySpec spec;
    spec.dataset = dataset;
    spec.kind = kind;
    if (swope::IsTopKKind(kind)) {
      spec.k = 5;
    } else {
      spec.eta = 1.0;
    }
    if (swope::NeedsTarget(kind)) spec.target = "0";
    return spec;
  };
  std::vector<swope::QuerySpec> burst = {
      make_spec("cdc", swope::QueryKind::kEntropyTopK),
      make_spec("cdc", swope::QueryKind::kEntropyFilter),
      make_spec("cdc", swope::QueryKind::kMiTopK),
      make_spec("enem", swope::QueryKind::kEntropyTopK),
      make_spec("enem", swope::QueryKind::kNmiTopK),
  };
  swope::Stopwatch watch;
  std::vector<std::future<swope::Result<swope::QueryResponse>>> futures;
  for (const swope::QuerySpec& spec : burst) {
    futures.push_back(engine.Submit(spec));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto response = futures[i].get();
    if (!response.ok()) {
      std::fprintf(stderr, "query %zu: %s\n", i,
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14s on %-4s -> %zu attributes, %llu rows sampled\n",
                std::string(swope::QueryKindToString(response->kind)).c_str(),
                burst[i].dataset.c_str(), response->items.size(),
                static_cast<unsigned long long>(
                    response->stats.final_sample_size));
  }
  std::printf("burst of %zu queries in %.0f ms\n\n", burst.size(),
              watch.ElapsedMillis());

  // The same query again: answered from the result cache, zero sampling.
  watch.Reset();
  auto repeat = engine.Run(burst[0]);
  if (!repeat.ok()) return 1;
  std::printf("repeat of query 0: cache_hit=%s in %.2f ms\n",
              repeat->cache_hit ? "true" : "false", watch.ElapsedMillis());

  // Cooperative cancellation from another thread.
  swope::CancellationToken token;
  swope::QuerySpec doomed = make_spec("cdc", swope::QueryKind::kMiTopK);
  doomed.options.seed = 99;  // distinct spec: not served from cache
  auto victim = engine.Submit(doomed, &token);
  token.Cancel();
  auto outcome = victim.get();
  std::printf("cancelled query -> %s\n",
              outcome.ok() ? "finished before the cancel landed"
                           : outcome.status().ToString().c_str());

  const swope::EngineCounters counters = engine.GetCounters();
  std::printf("\ncounters: started=%llu ok=%llu failed=%llu "
              "cache_hits=%llu rows_sampled=%llu\n",
              static_cast<unsigned long long>(counters.queries_started),
              static_cast<unsigned long long>(counters.queries_ok),
              static_cast<unsigned long long>(counters.queries_failed),
              static_cast<unsigned long long>(counters.result_cache_hits),
              static_cast<unsigned long long>(counters.rows_sampled));
  return 0;
}
