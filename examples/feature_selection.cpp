// Feature selection: the paper's motivating workload (Section 1).
//
// Scenario: build a classifier over a census-like table. Pick a label
// column, then select informative input features two ways:
//   (a) max-relevance: the top-k columns by approximate mutual
//       information with the label (SWOPE-Top-k, Algorithm 3), and
//   (b) mRMR (Peng et al. 2005): greedily add the feature maximizing
//       relevance minus redundancy against the already-selected set.
//
// Run: ./build/examples/feature_selection

#include <cstdio>

#include "src/common/stopwatch.h"
#include "src/core/entropy.h"
#include "src/datagen/dataset_presets.h"
#include "src/eval/mrmr.h"

int main() {
  auto table = swope::MakePresetTable(swope::DatasetPreset::kPus,
                                      /*rows=*/60000, /*seed=*/11);
  if (!table.ok()) {
    std::fprintf(stderr, "dataset: %s\n", table.status().ToString().c_str());
    return 1;
  }
  // Use column 11 as the prediction label.
  const size_t label = 11;
  std::printf("dataset: %llu rows x %zu columns; label column '%s'\n",
              static_cast<unsigned long long>(table->num_rows()),
              table->num_columns(), table->column(label).name().c_str());

  // --- (a) Max-relevance via approximate MI top-k ----------------------
  swope::QueryOptions query_options;
  query_options.epsilon = 0.5;  // the paper's MI default
  swope::Stopwatch watch;
  auto by_mi = swope::SelectFeaturesByMi(*table, label, /*num_features=*/8,
                                         query_options);
  if (!by_mi.ok()) {
    std::fprintf(stderr, "mi selection: %s\n",
                 by_mi.status().ToString().c_str());
    return 1;
  }
  std::printf("\nmax-relevance selection (approximate MI, %.1f ms):\n",
              watch.ElapsedMillis());
  for (const auto& feature : *by_mi) {
    std::printf("  %-12s I(label; f) ~= %.4f bits\n",
                table->column(feature.index).name().c_str(),
                feature.relevance);
  }

  // --- (b) mRMR over a fixed sample -----------------------------------
  swope::MrmrOptions mrmr_options;
  mrmr_options.num_features = 8;
  mrmr_options.sample_size = 20000;
  watch.Reset();
  auto mrmr = swope::SelectFeaturesMrmr(*table, label, mrmr_options);
  if (!mrmr.ok()) {
    std::fprintf(stderr, "mrmr: %s\n", mrmr.status().ToString().c_str());
    return 1;
  }
  std::printf("\nmRMR selection (sampled, %.1f ms):\n",
              watch.ElapsedMillis());
  for (const auto& feature : *mrmr) {
    std::printf("  %-12s relevance %.4f  mRMR score %.4f\n",
                table->column(feature.index).name().c_str(),
                feature.relevance, feature.score);
  }

  // How redundant are the max-relevance picks that mRMR skipped? Report
  // exact pairwise MI between the first two max-relevance features.
  if (by_mi->size() >= 2) {
    auto redundancy = swope::ExactMutualInformation(
        table->column((*by_mi)[0].index), table->column((*by_mi)[1].index));
    if (redundancy.ok()) {
      std::printf("\nredundancy between top-2 max-relevance picks: %.4f "
                  "bits\n",
                  *redundancy);
    }
  }
  return 0;
}
