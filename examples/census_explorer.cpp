// Census explorer: an interactive-style profiling pass over a synthetic
// census table, the workload the paper's introduction motivates with the
// U.S. Census Bureau datasets.
//
// The program:
//   1. materializes the "pus" (census-american-population) preset,
//   2. saves it to the binary column-store format and reloads it (the
//      round trip a real pipeline would do once per dataset),
//   3. profiles every attribute with SWOPE: top-8 by entropy, then the
//      entropy/MI neighborhood of the best attribute,
//   4. demonstrates the accuracy/efficiency dial by sweeping epsilon.
//
// Run: ./build/examples/census_explorer

#include <cstdio>
#include <string>

#include "src/common/stopwatch.h"
#include "src/core/swope_topk_entropy.h"
#include "src/core/swope_topk_mi.h"
#include "src/datagen/dataset_presets.h"
#include "src/table/binary_io.h"

int main() {
  auto generated = swope::MakePresetTable(swope::DatasetPreset::kPus,
                                          /*rows=*/80000, /*seed=*/3);
  if (!generated.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }

  // Persist + reload through the binary column store.
  const std::string path = "/tmp/swope_census_explorer.swpb";
  if (auto status = swope::WriteBinaryTableFile(*generated, path);
      !status.ok()) {
    std::fprintf(stderr, "save: %s\n", status.ToString().c_str());
    return 1;
  }
  swope::Stopwatch load_watch;
  auto table = swope::ReadBinaryTableFile(path);
  if (!table.ok()) {
    std::fprintf(stderr, "load: %s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %llu x %zu column store in %.1f ms\n",
              static_cast<unsigned long long>(table->num_rows()),
              table->num_columns(), load_watch.ElapsedMillis());

  // The paper's preprocessing: drop very-high-support columns.
  const swope::Table pruned = table->DropHighSupportColumns(1000);
  std::printf("after support<=1000 pruning: %zu columns\n\n",
              pruned.num_columns());

  // Profile: which attributes carry the most information?
  swope::QueryOptions options;
  options.epsilon = 0.1;
  auto topk = swope::SwopeTopKEntropy(pruned, 8, options);
  if (!topk.ok()) return 1;
  std::printf("most informative attributes (approximate):\n");
  for (const auto& item : topk->items) {
    std::printf("  %-12s H ~= %.3f bits\n", item.name.c_str(),
                item.estimate);
  }

  // Drill into the winner: what does it co-vary with?
  const size_t anchor = topk->items.front().index;
  options.epsilon = 0.5;
  auto related = swope::SwopeTopKMi(pruned, anchor, 5, options);
  if (!related.ok()) return 1;
  std::printf("\nattributes most related to '%s' (approximate MI):\n",
              pruned.column(anchor).name().c_str());
  for (const auto& item : related->items) {
    std::printf("  %-12s I ~= %.4f bits\n", item.name.c_str(),
                item.estimate);
  }

  // The efficiency/accuracy dial.
  std::printf("\nepsilon sweep (entropy top-8):\n");
  std::printf("  %-8s %-10s %-10s\n", "eps", "time(ms)", "samples");
  for (double eps : {0.01, 0.05, 0.1, 0.25, 0.5}) {
    swope::QueryOptions sweep;
    sweep.epsilon = eps;
    swope::Stopwatch watch;
    auto result = swope::SwopeTopKEntropy(pruned, 8, sweep);
    if (!result.ok()) return 1;
    std::printf("  %-8.3f %-10.1f %llu\n", eps, watch.ElapsedMillis(),
                static_cast<unsigned long long>(
                    result->stats.final_sample_size));
  }
  std::remove(path.c_str());
  return 0;
}
