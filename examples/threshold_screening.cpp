// Threshold screening: approximate filtering queries end to end,
// including the CSV ingestion path.
//
// Scenario: a data-quality pass keeps only attributes that are neither
// near-constant (entropy below a floor) nor near-random identifiers, and
// flags attributes informative about a quality label. The example:
//   1. writes a synthetic table to CSV, then parses it back (exercising
//      the real ingestion path),
//   2. runs SWOPE filtering at several entropy thresholds,
//   3. runs MI filtering against a chosen label column,
//   4. cross-checks everything against the Exact baseline.
//
// Run: ./build/examples/threshold_screening

#include <cstdio>
#include <string>

#include "src/baselines/exact.h"
#include "src/common/stopwatch.h"
#include "src/core/swope_filter_entropy.h"
#include "src/core/swope_filter_mi.h"
#include "src/datagen/dataset_presets.h"
#include "src/table/csv_reader.h"
#include "src/table/csv_writer.h"

int main() {
  auto generated = swope::MakePresetTable(swope::DatasetPreset::kEnem,
                                          /*rows=*/40000, /*seed=*/21);
  if (!generated.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }

  // Round-trip through CSV, as if the data arrived as a file.
  const std::string path = "/tmp/swope_threshold_screening.csv";
  if (auto status = swope::WriteCsvFile(*generated, path); !status.ok()) {
    std::fprintf(stderr, "csv write: %s\n", status.ToString().c_str());
    return 1;
  }
  swope::Stopwatch parse_watch;
  auto table = swope::ReadCsvFile(path);
  if (!table.ok()) {
    std::fprintf(stderr, "csv read: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %llu x %zu CSV in %.0f ms\n",
              static_cast<unsigned long long>(table->num_rows()),
              table->num_columns(), parse_watch.ElapsedMillis());

  // Entropy screening at increasing thresholds.
  for (double eta : {0.5, 1.5, 3.0}) {
    swope::QueryOptions options;
    options.epsilon = 0.05;
    swope::Stopwatch watch;
    auto kept = swope::SwopeFilterEntropy(*table, eta, options);
    if (!kept.ok()) return 1;
    auto exact = swope::ExactFilterEntropy(*table, eta);
    if (!exact.ok()) return 1;
    std::printf("entropy >= %.1f: SWOPE keeps %3zu (%.1f ms, %llu rows "
                "sampled); Exact keeps %3zu\n",
                eta, kept->items.size(), watch.ElapsedMillis(),
                static_cast<unsigned long long>(
                    kept->stats.final_sample_size),
                exact->items.size());
  }

  // MI screening against a "label" column (column 20 sits on a strong
  // latent topic in this preset, so it has several informative partners).
  const size_t label = 20;
  std::printf("\nscreening informative attributes for label '%s':\n",
              table->column(label).name().c_str());
  for (double eta : {0.1, 0.3}) {
    swope::QueryOptions options;
    options.epsilon = 0.5;
    swope::Stopwatch watch;
    auto kept = swope::SwopeFilterMi(*table, label, eta, options);
    if (!kept.ok()) return 1;
    auto exact = swope::ExactFilterMi(*table, label, eta);
    if (!exact.ok()) return 1;
    std::printf("  I >= %.1f: SWOPE keeps %3zu (%.1f ms); Exact keeps "
                "%3zu\n",
                eta, kept->items.size(), watch.ElapsedMillis(),
                exact->items.size());
  }
  std::remove(path.c_str());
  return 0;
}
