// Quickstart: the 60-second tour of the SWOPE public API.
//
// 1. Generate a small census-like table (or load your own CSV with
//    swope::ReadCsvFile).
// 2. Ask for the top-4 attributes by empirical entropy, approximately.
// 3. Ask which attributes clear an entropy threshold.
// 4. Compare against the exact answers.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart

#include <algorithm>
#include <cstdio>

#include "src/baselines/exact.h"
#include "src/common/stopwatch.h"
#include "src/core/swope_filter_entropy.h"
#include "src/core/swope_topk_entropy.h"
#include "src/datagen/dataset_presets.h"

int main() {
  // A scaled-down synthetic version of the cdc-behavioral-risk dataset:
  // 100 categorical columns, census-like value distributions.
  auto table = swope::MakePresetTable(swope::DatasetPreset::kCdc,
                                      /*rows=*/100000, /*seed=*/7);
  if (!table.ok()) {
    std::fprintf(stderr, "dataset: %s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %llu rows x %zu columns\n",
              static_cast<unsigned long long>(table->num_rows()),
              table->num_columns());

  // --- Approximate top-k on empirical entropy -------------------------
  swope::QueryOptions options;
  options.epsilon = 0.1;  // relative error target (paper default)
  options.seed = 42;

  swope::Stopwatch watch;
  auto topk = swope::SwopeTopKEntropy(*table, /*k=*/4, options);
  if (!topk.ok()) {
    std::fprintf(stderr, "top-k: %s\n", topk.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntop-4 attributes by empirical entropy (%.1f ms, %llu of "
              "%llu rows sampled):\n",
              watch.ElapsedMillis(),
              static_cast<unsigned long long>(
                  topk->stats.final_sample_size),
              static_cast<unsigned long long>(table->num_rows()));
  for (const auto& item : topk->items) {
    std::printf("  %-12s H ~= %.3f bits  (in [%.3f, %.3f])\n",
                item.name.c_str(), item.estimate, item.lower, item.upper);
  }

  // Sanity: the exact answer, by full scan.
  watch.Reset();
  auto exact = swope::ExactTopKEntropy(*table, 4);
  if (!exact.ok()) return 1;
  std::printf("exact top-4 (%.1f ms full scan):\n", watch.ElapsedMillis());
  for (const auto& item : exact->items) {
    std::printf("  %-12s H = %.3f bits\n", item.name.c_str(),
                item.estimate);
  }

  // --- Approximate filtering on empirical entropy ---------------------
  options.epsilon = 0.05;  // paper default for filtering
  watch.Reset();
  auto filtered = swope::SwopeFilterEntropy(*table, /*eta=*/3.0, options);
  if (!filtered.ok()) return 1;
  std::printf("\nattributes with entropy >= 3.0 bits (%.1f ms): %zu found\n",
              watch.ElapsedMillis(), filtered->items.size());
  const size_t shown = std::min<size_t>(10, filtered->items.size());
  for (size_t i = 0; i < shown; ++i) {
    const auto& item = filtered->items[i];
    std::printf("  %-12s H ~= %.3f bits\n", item.name.c_str(),
                item.estimate);
  }
  if (filtered->items.size() > shown) {
    std::printf("  ... and %zu more\n", filtered->items.size() - shown);
  }
  return 0;
}
