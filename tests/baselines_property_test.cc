// Property suite for the exact-answer baselines: EntropyRank /
// EntropyFilter (and MI variants) must return EXACTLY the full-scan
// answer on every input -- that is their contract and the premise of the
// paper's comparison. Parameterized over dataset seeds.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/baselines/entropy_filter.h"
#include "src/baselines/entropy_rank.h"
#include "src/baselines/mi_filter.h"
#include "src/baselines/mi_rank.h"
#include "src/core/entropy.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeEntropyTable;
using test::MakeMiTable;

class BaselineExactnessTest : public testing::TestWithParam<uint64_t> {};

std::set<size_t> Returned(const TopKResult& result) {
  std::set<size_t> indices;
  for (const auto& item : result.items) indices.insert(item.index);
  return indices;
}

TEST_P(BaselineExactnessTest, EntropyRankMatchesFullScan) {
  const uint64_t seed = GetParam();
  const Table table = MakeEntropyTable(
      {4.8, 4.1, 3.5, 2.9, 2.3, 1.7, 1.1, 0.5}, 25000, seed);
  const auto scores = ExactEntropies(table);
  std::vector<size_t> order(scores.size());
  for (size_t j = 0; j < order.size(); ++j) order[j] = j;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });

  for (size_t k : {1, 3, 5, 7}) {
    QueryOptions options;
    options.seed = seed * 13 + k;
    auto result = EntropyRankTopK(table, k, options);
    ASSERT_TRUE(result.ok());
    const std::set<size_t> expected(order.begin(), order.begin() + k);
    EXPECT_EQ(Returned(*result), expected) << "seed " << seed << " k " << k;
  }
}

TEST_P(BaselineExactnessTest, EntropyFilterMatchesFullScan) {
  const uint64_t seed = GetParam();
  const Table table = MakeEntropyTable(
      {4.8, 4.1, 3.5, 2.9, 2.3, 1.7, 1.1, 0.5}, 25000, seed);
  const auto scores = ExactEntropies(table);
  for (double eta : {0.8, 2.0, 3.2, 4.4}) {
    QueryOptions options;
    options.seed = seed * 17 + static_cast<uint64_t>(eta * 10);
    auto result = EntropyFilterQuery(table, eta, options);
    ASSERT_TRUE(result.ok());
    for (size_t j = 0; j < scores.size(); ++j) {
      EXPECT_EQ(result->Contains(j), scores[j] >= eta)
          << "seed " << seed << " eta " << eta << " j " << j;
    }
  }
}

TEST_P(BaselineExactnessTest, MiRankMatchesFullScan) {
  const uint64_t seed = GetParam();
  const Table table =
      MakeMiTable({0.9, 0.7, 0.45, 0.2, 0.0}, 25000, seed);
  auto scores = ExactMutualInformations(table, 0);
  ASSERT_TRUE(scores.ok());
  std::vector<size_t> order;
  for (size_t j = 1; j < table.num_columns(); ++j) order.push_back(j);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*scores)[a] > (*scores)[b];
  });
  for (size_t k : {1, 2, 3}) {
    QueryOptions options;
    options.seed = seed * 19 + k;
    auto result = MiRankTopK(table, 0, k, options);
    ASSERT_TRUE(result.ok());
    const std::set<size_t> expected(order.begin(), order.begin() + k);
    EXPECT_EQ(Returned(*result), expected) << "seed " << seed << " k " << k;
  }
}

TEST_P(BaselineExactnessTest, MiFilterMatchesFullScan) {
  const uint64_t seed = GetParam();
  const Table table =
      MakeMiTable({0.9, 0.7, 0.45, 0.2, 0.0}, 25000, seed);
  auto scores = ExactMutualInformations(table, 0);
  ASSERT_TRUE(scores.ok());
  for (double eta : {0.1, 0.4, 1.0}) {
    QueryOptions options;
    options.seed = seed * 23 + static_cast<uint64_t>(eta * 10);
    auto result = MiFilterQuery(table, 0, eta, options);
    ASSERT_TRUE(result.ok());
    for (size_t j = 1; j < table.num_columns(); ++j) {
      EXPECT_EQ(result->Contains(j), (*scores)[j] >= eta)
          << "seed " << seed << " eta " << eta << " j " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineExactnessTest,
                         testing::Values(1, 2, 3, 4, 5, 6),
                         [](const testing::TestParamInfo<uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace swope
