#include "src/table/binary_io.h"

#include <cstdint>
#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

#include "src/table/table_builder.h"

namespace swope {
namespace {

Table SampleTable() {
  auto builder = TableBuilder::Make({"name", "grade"});
  EXPECT_TRUE(builder.ok());
  EXPECT_TRUE(builder->AppendRow({"alice", "A"}).ok());
  EXPECT_TRUE(builder->AppendRow({"bob", "B"}).ok());
  EXPECT_TRUE(builder->AppendRow({"alice", "A"}).ok());
  auto table = std::move(*builder).Finish();
  EXPECT_TRUE(table.ok());
  return std::move(table).value();
}

TEST(BinaryIoTest, RoundTripWithLabels) {
  const Table original = SampleTable();
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(original, buffer).ok());
  auto loaded = ReadBinaryTable(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), 3u);
  ASSERT_EQ(loaded->num_columns(), 2u);
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(loaded->column(c).name(), original.column(c).name());
    EXPECT_EQ(loaded->column(c).support(), original.column(c).support());
    EXPECT_EQ(loaded->column(c).codes(), original.column(c).codes());
    EXPECT_EQ(loaded->column(c).labels(), original.column(c).labels());
  }
}

TEST(BinaryIoTest, RoundTripWithoutLabels) {
  auto column = Column::Make("x", 5, {4, 1, 3, 0, 0});
  ASSERT_TRUE(column.ok());
  auto original = Table::Make({std::move(column).value()});
  ASSERT_TRUE(original.ok());

  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(*original, buffer).ok());
  auto loaded = ReadBinaryTable(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->column(0).has_labels());
  EXPECT_EQ(loaded->column(0).codes(), original->column(0).codes());
}

TEST(BinaryIoTest, RoundTripEmptyTable) {
  auto original = Table::Make({});
  ASSERT_TRUE(original.ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(*original, buffer).ok());
  auto loaded = ReadBinaryTable(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_columns(), 0u);
}

TEST(BinaryIoTest, BadMagicIsCorruption) {
  std::stringstream buffer("NOPE with some trailing bytes");
  auto loaded = ReadBinaryTable(buffer);
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST(BinaryIoTest, TruncatedStreamIsCorruption) {
  const Table original = SampleTable();
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(original, buffer).ok());
  const std::string bytes = buffer.str();
  for (size_t cut : {size_t{4}, size_t{10}, bytes.size() - 3}) {
    std::stringstream truncated(bytes.substr(0, cut));
    auto loaded = ReadBinaryTable(truncated);
    EXPECT_TRUE(loaded.status().IsCorruption()) << "cut=" << cut;
  }
}

TEST(BinaryIoTest, WrongVersionIsCorruption) {
  const Table original = SampleTable();
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(original, buffer).ok());
  std::string bytes = buffer.str();
  bytes[4] = 99;  // version field follows the 4-byte magic
  std::stringstream bad(bytes);
  EXPECT_TRUE(ReadBinaryTable(bad).status().IsCorruption());
}

TEST(BinaryIoTest, LyingRowCountIsCorruptionNotAllocation) {
  // A corrupt header claiming absurd row counts must fail upfront with
  // Corruption -- the reader validates the declared sizes against the
  // remaining stream bytes instead of resizing buffers for data that can
  // never arrive.
  const Table original = SampleTable();
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(original, buffer).ok());
  std::string bytes = buffer.str();
  // num_rows is the u64 at offset 8 (after magic + version).
  const uint64_t absurd_rows = uint64_t{1} << 61;
  std::memcpy(&bytes[8], &absurd_rows, sizeof(absurd_rows));
  std::stringstream corrupt(bytes);
  auto loaded = ReadBinaryTable(corrupt);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
}

TEST(BinaryIoTest, LyingColumnCountIsCorruption) {
  const Table original = SampleTable();
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(original, buffer).ok());
  std::string bytes = buffer.str();
  // num_columns is the u32 at offset 16; claim far more columns than the
  // stream could possibly hold.
  const uint32_t absurd_columns = 0xFFFFFFFFu;
  std::memcpy(&bytes[16], &absurd_columns, sizeof(absurd_columns));
  std::stringstream corrupt(bytes);
  auto loaded = ReadBinaryTable(corrupt);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
}

TEST(BinaryIoTest, FileRoundTrip) {
  const Table original = SampleTable();
  const std::string path = testing::TempDir() + "/swope_binary_io_test.swpb";
  ASSERT_TRUE(WriteBinaryTableFile(original, path).ok());
  auto loaded = ReadBinaryTableFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), original.num_rows());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(
      ReadBinaryTableFile("/no/such/file.swpb").status().IsIOError());
}

}  // namespace
}  // namespace swope
