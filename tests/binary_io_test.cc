#include "src/table/binary_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/table/table_builder.h"

namespace swope {
namespace {

Table SampleTable() {
  auto builder = TableBuilder::Make({"name", "grade"});
  EXPECT_TRUE(builder.ok());
  EXPECT_TRUE(builder->AppendRow({"alice", "A"}).ok());
  EXPECT_TRUE(builder->AppendRow({"bob", "B"}).ok());
  EXPECT_TRUE(builder->AppendRow({"alice", "A"}).ok());
  auto table = std::move(*builder).Finish();
  EXPECT_TRUE(table.ok());
  return std::move(table).value();
}

TEST(BinaryIoTest, RoundTripWithLabels) {
  const Table original = SampleTable();
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(original, buffer).ok());
  auto loaded = ReadBinaryTable(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), 3u);
  ASSERT_EQ(loaded->num_columns(), 2u);
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(loaded->column(c).name(), original.column(c).name());
    EXPECT_EQ(loaded->column(c).support(), original.column(c).support());
    EXPECT_EQ(loaded->column(c).codes(), original.column(c).codes());
    EXPECT_EQ(loaded->column(c).labels(), original.column(c).labels());
  }
}

TEST(BinaryIoTest, RoundTripWithoutLabels) {
  auto column = Column::Make("x", 5, {4, 1, 3, 0, 0});
  ASSERT_TRUE(column.ok());
  auto original = Table::Make({std::move(column).value()});
  ASSERT_TRUE(original.ok());

  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(*original, buffer).ok());
  auto loaded = ReadBinaryTable(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->column(0).has_labels());
  EXPECT_EQ(loaded->column(0).codes(), original->column(0).codes());
}

TEST(BinaryIoTest, RoundTripEmptyTable) {
  auto original = Table::Make({});
  ASSERT_TRUE(original.ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(*original, buffer).ok());
  auto loaded = ReadBinaryTable(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_columns(), 0u);
}

TEST(BinaryIoTest, BadMagicIsCorruption) {
  std::stringstream buffer("NOPE with some trailing bytes");
  auto loaded = ReadBinaryTable(buffer);
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST(BinaryIoTest, TruncatedStreamIsCorruption) {
  // Unpadded layout: every strict prefix is missing real data. (A padded
  // image's trailing guard and padding runs are ignorable, so the
  // property only holds for the compact layout.)
  const Table original = SampleTable();
  std::stringstream buffer;
  ASSERT_TRUE(
      WriteBinaryTable(original, buffer, {.page_align = false}).ok());
  const std::string bytes = buffer.str();
  for (size_t cut : {size_t{4}, size_t{10}, bytes.size() - 3}) {
    std::stringstream truncated(bytes.substr(0, cut));
    auto loaded = ReadBinaryTable(truncated);
    EXPECT_TRUE(loaded.status().IsCorruption()) << "cut=" << cut;
  }
}

TEST(BinaryIoTest, WrongVersionIsCorruption) {
  const Table original = SampleTable();
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(original, buffer).ok());
  std::string bytes = buffer.str();
  bytes[4] = 99;  // version field follows the 4-byte magic
  std::stringstream bad(bytes);
  EXPECT_TRUE(ReadBinaryTable(bad).status().IsCorruption());
}

TEST(BinaryIoTest, WrongVersionDiagnosticNamesSupportedVersions) {
  const Table original = SampleTable();
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(original, buffer).ok());
  std::string bytes = buffer.str();
  bytes[4] = 99;
  std::stringstream bad(bytes);
  const Status status = ReadBinaryTable(bad).status();
  EXPECT_NE(status.message().find("unsupported version 99"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("supported: 1, 2"), std::string::npos)
      << status.ToString();
}

// A complete version-1 image, checked in byte-for-byte, so the legacy
// read path keeps working no matter what the current writer emits:
// 4 rows, two columns -- "x" (support 3, no labels, codes 2 0 1 2) and
// "g" (support 2, labels "lo"/"hi", codes 0 1 1 0). Version-1 payloads
// are one little-endian u32 per code.
constexpr unsigned char kV1Fixture[] = {
    'S', 'W', 'P', 'B',              // magic
    1, 0, 0, 0,                      // version = 1
    4, 0, 0, 0, 0, 0, 0, 0,          // num_rows = 4
    2, 0, 0, 0,                      // num_columns = 2
    // column "x"
    1, 0, 0, 0, 'x',                 // name
    3, 0, 0, 0,                      // support = 3
    0,                               // has_labels = 0
    2, 0, 0, 0, 0, 0, 0, 0,          // codes[0..1] = 2, 0
    1, 0, 0, 0, 2, 0, 0, 0,          // codes[2..3] = 1, 2
    // column "g"
    1, 0, 0, 0, 'g',                 // name
    2, 0, 0, 0,                      // support = 2
    1,                               // has_labels = 1
    2, 0, 0, 0, 'l', 'o',            // labels[0] = "lo"
    2, 0, 0, 0, 'h', 'i',            // labels[1] = "hi"
    0, 0, 0, 0, 1, 0, 0, 0,          // codes[0..1] = 0, 1
    1, 0, 0, 0, 0, 0, 0, 0,          // codes[2..3] = 1, 0
};

TEST(BinaryIoTest, ReadsCheckedInV1Fixture) {
  std::stringstream buffer(std::string(
      reinterpret_cast<const char*>(kV1Fixture), sizeof(kV1Fixture)));
  auto loaded = ReadBinaryTable(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), 4u);
  ASSERT_EQ(loaded->num_columns(), 2u);
  EXPECT_EQ(loaded->column(0).name(), "x");
  EXPECT_EQ(loaded->column(0).support(), 3u);
  EXPECT_FALSE(loaded->column(0).has_labels());
  EXPECT_EQ(loaded->column(0).codes(),
            (std::vector<ValueCode>{2, 0, 1, 2}));
  EXPECT_EQ(loaded->column(1).name(), "g");
  EXPECT_EQ(loaded->column(1).support(), 2u);
  EXPECT_EQ(loaded->column(1).labels(),
            (std::vector<std::string>{"lo", "hi"}));
  EXPECT_EQ(loaded->column(1).codes(),
            (std::vector<ValueCode>{0, 1, 1, 0}));
}

TEST(BinaryIoTest, RewritingV1FixtureUpgradesToV2) {
  std::stringstream buffer(std::string(
      reinterpret_cast<const char*>(kV1Fixture), sizeof(kV1Fixture)));
  auto loaded = ReadBinaryTable(buffer);
  ASSERT_TRUE(loaded.ok());
  std::stringstream rewritten;
  ASSERT_TRUE(
      WriteBinaryTable(*loaded, rewritten, {.page_align = false}).ok());
  const std::string bytes = rewritten.str();
  ASSERT_GE(bytes.size(), size_t{8});
  EXPECT_EQ(bytes[4], 2);  // current version: bit-packed payload
  // Packing shrinks the payload: the compact v2 image must be smaller
  // than the 4-bytes-per-code v1 fixture.
  EXPECT_LT(bytes.size(), sizeof(kV1Fixture));
  std::stringstream reread(bytes);
  auto roundtrip = ReadBinaryTable(reread);
  ASSERT_TRUE(roundtrip.ok()) << roundtrip.status().ToString();
  EXPECT_EQ(roundtrip->column(0).codes(), loaded->column(0).codes());
  EXPECT_EQ(roundtrip->column(1).codes(), loaded->column(1).codes());
  EXPECT_EQ(roundtrip->column(1).labels(), loaded->column(1).labels());
}

TEST(BinaryIoTest, V2WidthMismatchIsCorruption) {
  // Corrupt the declared width byte of a v2 column; the reader must
  // reject it because it disagrees with the canonical width for the
  // declared support.
  auto column = Column::Make("w", 5, {4, 1, 3, 0, 0});
  ASSERT_TRUE(column.ok());
  auto original = Table::Make({std::move(column).value()});
  ASSERT_TRUE(original.ok());
  std::stringstream buffer;
  ASSERT_TRUE(
      WriteBinaryTable(*original, buffer, {.page_align = false}).ok());
  std::string bytes = buffer.str();
  // Compact layout: magic(4) + version(4) + rows(8) + cols(4) = offset
  // 20; then name len(4) + "w"(1) + support(4) + has_labels(1) puts the
  // width byte at offset 30.
  ASSERT_GT(bytes.size(), size_t{30});
  ASSERT_EQ(bytes[30], 3);  // WidthForSupport(5)
  bytes[30] = 7;
  std::stringstream bad(bytes);
  const Status status = ReadBinaryTable(bad).status();
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_NE(status.message().find("width"), std::string::npos)
      << status.ToString();
}

TEST(BinaryIoTest, LyingRowCountIsCorruptionNotAllocation) {
  // A corrupt header claiming absurd row counts must fail upfront with
  // Corruption -- the reader validates the declared sizes against the
  // remaining stream bytes instead of resizing buffers for data that can
  // never arrive.
  const Table original = SampleTable();
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(original, buffer).ok());
  std::string bytes = buffer.str();
  // num_rows is the u64 at offset 8 (after magic + version).
  const uint64_t absurd_rows = uint64_t{1} << 61;
  std::memcpy(&bytes[8], &absurd_rows, sizeof(absurd_rows));
  std::stringstream corrupt(bytes);
  auto loaded = ReadBinaryTable(corrupt);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
}

TEST(BinaryIoTest, OverflowingRowCountTimesWidthIsCorruption) {
  // num_rows = 2^59 with a width-32 column makes num_rows * width wrap
  // uint64 to 0 bits, so the naive word count is 0: an empty payload
  // would sail past both the stream-size check and FromWords' count
  // check, and the first decode would read out of bounds. The reader
  // must reject the size before computing any word count.
  constexpr unsigned char kOverflowV2[] = {
      'S', 'W', 'P', 'B',              // magic
      2, 0, 0, 0,                      // version = 2
      0, 0, 0, 0, 0, 0, 0, 8,          // num_rows = 2^59
      1, 0, 0, 0,                      // num_columns = 1
      1, 0, 0, 0, 'x',                 // name "x"
      0xFF, 0xFF, 0xFF, 0xFF,          // support = 2^32 - 1 -> width 32
      0,                               // has_labels = 0
      32,                              // declared width
                                       // no payload: wrapped count is 0
  };
  std::stringstream corrupt(std::string(
      reinterpret_cast<const char*>(kOverflowV2), sizeof(kOverflowV2)));
  auto loaded = ReadBinaryTable(corrupt);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
}

TEST(BinaryIoTest, LyingColumnCountIsCorruption) {
  const Table original = SampleTable();
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(original, buffer).ok());
  std::string bytes = buffer.str();
  // num_columns is the u32 at offset 16; claim far more columns than the
  // stream could possibly hold.
  const uint32_t absurd_columns = 0xFFFFFFFFu;
  std::memcpy(&bytes[16], &absurd_columns, sizeof(absurd_columns));
  std::stringstream corrupt(bytes);
  auto loaded = ReadBinaryTable(corrupt);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
}

TEST(BinaryIoTest, FileRoundTrip) {
  const Table original = SampleTable();
  const std::string path = testing::TempDir() + "/swope_binary_io_test.swpb";
  ASSERT_TRUE(WriteBinaryTableFile(original, path).ok());
  auto loaded = ReadBinaryTableFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), original.num_rows());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(
      ReadBinaryTableFile("/no/such/file.swpb").status().IsIOError());
}

TEST(BinaryIoTest, PaddedImageHasMarkerAndRoundTrips) {
  const Table original = SampleTable();
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(original, buffer).ok());
  const std::string bytes = buffer.str();
  // The first column's payload is non-empty, so the default writer puts
  // a padding run where the width byte otherwise starts: offset 49
  // (header 20 + name 8 + support 4 + has_labels 1 + labels
  // "alice"/"bob" 16).
  ASSERT_GT(bytes.size(), size_t{49});
  EXPECT_EQ(static_cast<unsigned char>(bytes[49]), 0xA7);
  std::stringstream reread(bytes);
  auto loaded = ReadBinaryTable(reread);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(loaded->column(c).codes(), original.column(c).codes());
  }
}

TEST(BinaryIoTest, PaddedWriteAlignsEveryPayload) {
  // Wide-ish column so the payload spans multiple words; every non-empty
  // payload must start on the requested alignment boundary.
  std::vector<ValueCode> codes(1000);
  for (size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<ValueCode>(i % 700);
  }
  auto column = Column::Make("wide", 700, codes);
  ASSERT_TRUE(column.ok());
  auto narrow = Column::Make("narrow", 2, std::vector<ValueCode>(1000, 1));
  ASSERT_TRUE(narrow.ok());
  auto original = Table::Make(
      {std::move(column).value(), std::move(narrow).value()});
  ASSERT_TRUE(original.ok());
  std::stringstream buffer;
  ASSERT_TRUE(
      WriteBinaryTable(*original, buffer, {.alignment = 512}).ok());
  const std::string bytes = buffer.str();
  std::stringstream reread(bytes);
  auto loaded = ReadBinaryTable(reread);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->column(0).codes(), original->column(0).codes());
  EXPECT_EQ(loaded->column(1).codes(), original->column(1).codes());
  // Locate each padding run and check the byte after it (the width byte,
  // i.e. payload start minus one... payload starts right after width) is
  // positioned so the payload lands on a 512-byte boundary.
  size_t runs = 0;
  for (size_t i = 20; i + 5 < bytes.size(); ++i) {
    if (static_cast<unsigned char>(bytes[i]) != 0xA7) continue;
    uint32_t pad = 0;
    std::memcpy(&pad, &bytes[i + 1], sizeof(pad));
    const size_t payload_start = i + 5 + pad + 1;  // run + width byte
    if (payload_start <= bytes.size() && payload_start % 512 == 0) {
      ++runs;
      i += 4 + pad;
    }
  }
  EXPECT_EQ(runs, 2u);
}

TEST(BinaryIoTest, MappedLoadBorrowsPaddedPayloads) {
  const Table original = SampleTable();
  const std::string path = testing::TempDir() + "/swope_mapped_io.swpb";
  ASSERT_TRUE(WriteBinaryTableFile(original, path).ok());
  auto loaded = ReadBinaryTableFileMapped(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(loaded->MappedBytes(), 0u);
  ASSERT_EQ(loaded->num_rows(), original.num_rows());
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(loaded->column(c).codes(), original.column(c).codes());
    EXPECT_EQ(loaded->column(c).labels(), original.column(c).labels());
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MappedLoadOfCompactFileCopiesToHeap) {
  // Unpadded payloads are generally misaligned or lack the trailing read
  // guard; the mapped loader must still succeed by copying them.
  const Table original = SampleTable();
  const std::string path = testing::TempDir() + "/swope_compact_io.swpb";
  ASSERT_TRUE(
      WriteBinaryTableFile(original, path, {.page_align = false}).ok());
  auto loaded = ReadBinaryTableFileMapped(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->MappedBytes(), 0u);
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(loaded->column(c).codes(), original.column(c).codes());
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MappedLoadMissingFileIsIOError) {
  EXPECT_TRUE(ReadBinaryTableFileMapped("/no/such/file.swpb")
                  .status()
                  .IsIOError());
}

TEST(BinaryIoTest, MappedLoadTruncatedFileIsCorruption) {
  const Table original = SampleTable();
  const std::string full = testing::TempDir() + "/swope_trunc_full.swpb";
  ASSERT_TRUE(WriteBinaryTableFile(original, full, {.page_align = false})
                  .ok());
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const std::string path = testing::TempDir() + "/swope_trunc.swpb";
  for (size_t cut : {size_t{4}, size_t{10}, bytes.size() - 3}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    auto loaded = ReadBinaryTableFileMapped(path);
    EXPECT_TRUE(loaded.status().IsCorruption())
        << "cut=" << cut << ": " << loaded.status().ToString();
  }
  std::remove(full.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swope
