#include "src/common/logging.h"

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(LoggingTest, GlobalLevelRoundTrips) {
  const LogLevel original = GetGlobalLogLevel();
  SetGlobalLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetGlobalLogLevel(), LogLevel::kDebug);
  SetGlobalLogLevel(LogLevel::kError);
  EXPECT_EQ(GetGlobalLogLevel(), LogLevel::kError);
  SetGlobalLogLevel(original);
}

TEST(LoggingTest, DefaultLevelIsWarning) {
  // The library must stay quiet at INFO by default.
  EXPECT_EQ(GetGlobalLogLevel(), LogLevel::kWarning);
}

TEST(LoggingTest, LevelNames) {
  EXPECT_EQ(LogLevelToString(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(LogLevelToString(LogLevel::kInfo), "INFO");
  EXPECT_EQ(LogLevelToString(LogLevel::kWarning), "WARN");
  EXPECT_EQ(LogLevelToString(LogLevel::kError), "ERROR");
  EXPECT_EQ(LogLevelToString(LogLevel::kOff), "OFF");
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogLevel original = GetGlobalLogLevel();
  SetGlobalLogLevel(LogLevel::kOff);
  SWOPE_LOG(kError) << "suppressed " << 1 << " " << 2.5;
  SetGlobalLogLevel(original);
}

TEST(LoggingTest, EmittedMessagesDoNotCrash) {
  const LogLevel original = GetGlobalLogLevel();
  SetGlobalLogLevel(LogLevel::kDebug);
  SWOPE_LOG(kDebug) << "visible debug message from logging_test";
  SetGlobalLogLevel(original);
}

}  // namespace
}  // namespace swope
