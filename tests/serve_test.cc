#include "src/engine/serve.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/table/binary_io.h"
#include "src/table/csv_writer.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeEntropyTable;
using test::MakeMiTable;

std::string Handle(QueryEngine& engine, const std::string& line) {
  bool quit = false;
  return HandleRequestLine(engine, line, &quit);
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a") + '\x01' + "b"), "a\\u0001b");
}

TEST(ServeTest, QueryOverRegisteredDataset) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({5.0, 2.0}, 1500, 3))
          .ok());
  const std::string response =
      Handle(engine, "query dataset=ds kind=entropy-topk k=1");
  EXPECT_EQ(response.rfind("{\"ok\":true,\"op\":\"query\"", 0), 0u)
      << response;
  EXPECT_NE(response.find("\"kind\":\"entropy-topk\""), std::string::npos);
  EXPECT_NE(response.find("\"cache_hit\":false"), std::string::npos);
  EXPECT_NE(response.find("\"estimate\":"), std::string::npos);

  // The per-line JSON carries the full QueryStats block.
  for (const char* field :
       {"\"stats\":{", "\"final_sample_size\":", "\"initial_sample_size\":",
        "\"iterations\":", "\"cells_scanned\":", "\"candidates_remaining\":",
        "\"exhausted_dataset\":"}) {
    EXPECT_NE(response.find(field), std::string::npos)
        << field << " missing in " << response;
  }

  // The repeat is answered from cache, visibly.
  const std::string repeat =
      Handle(engine, "query dataset=ds kind=entropy-topk k=1");
  EXPECT_NE(repeat.find("\"cache_hit\":true"), std::string::npos) << repeat;
}

TEST(ServeTest, LoadBinaryAndCsvFiles) {
  const Table table = MakeMiTable({0.4, 0.7}, 800, 9);
  const std::string binary_path = ::testing::TempDir() + "serve_test.swpb";
  const std::string csv_path = ::testing::TempDir() + "serve_test.csv";
  ASSERT_TRUE(WriteBinaryTableFile(table, binary_path).ok());
  ASSERT_TRUE(WriteCsvFile(table, csv_path).ok());

  QueryEngine engine;
  const std::string bin_response =
      Handle(engine, "load name=bin path=" + binary_path);
  EXPECT_EQ(bin_response.rfind("{\"ok\":true,\"op\":\"load\"", 0), 0u)
      << bin_response;
  EXPECT_NE(bin_response.find("\"rows\":800"), std::string::npos);
  EXPECT_NE(bin_response.find("\"columns\":3"), std::string::npos);

  const std::string csv_response =
      Handle(engine, "load name=csv path=" + csv_path);
  EXPECT_EQ(csv_response.rfind("{\"ok\":true", 0), 0u) << csv_response;

  // Both loads carry the same data modulo dictionary code assignment;
  // a query against each must succeed.
  EXPECT_EQ(Handle(engine, "query dataset=bin kind=mi-topk k=1 target=t")
                .rfind("{\"ok\":true", 0),
            0u);
  EXPECT_EQ(Handle(engine, "query dataset=csv kind=mi-topk k=1 target=t")
                .rfind("{\"ok\":true", 0),
            0u);
}

TEST(ServeTest, DatasetsAndUnload) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("a", MakeEntropyTable({3.0}, 300, 1)).ok());
  ASSERT_TRUE(
      engine.RegisterDataset("b", MakeEntropyTable({3.0}, 300, 2)).ok());
  EXPECT_EQ(Handle(engine, "datasets"),
            "{\"ok\":true,\"op\":\"datasets\",\"names\":[\"a\",\"b\"]}");
  EXPECT_EQ(Handle(engine, "unload name=a"),
            "{\"ok\":true,\"op\":\"unload\",\"name\":\"a\"}");
  EXPECT_EQ(Handle(engine, "datasets"),
            "{\"ok\":true,\"op\":\"datasets\",\"names\":[\"b\"]}");
  const std::string missing = Handle(engine, "unload name=a");
  EXPECT_EQ(missing.rfind("{\"ok\":false", 0), 0u);
  EXPECT_NE(missing.find("\"code\":\"Not found\""), std::string::npos)
      << missing;
}

TEST(ServeTest, StatsReflectTraffic) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({4.0}, 1000, 1)).ok());
  ASSERT_TRUE(
      Handle(engine, "query dataset=ds kind=entropy-topk k=1")
          .rfind("{\"ok\":true", 0) == 0);
  const std::string stats = Handle(engine, "stats");
  EXPECT_EQ(stats.rfind("{\"ok\":true,\"op\":\"stats\"", 0), 0u) << stats;
  EXPECT_NE(stats.find("\"queries_ok\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"resident_datasets\":1"), std::string::npos);
  // Execution geometry (docs/SHARDING.md): scheduler mode, intra-query
  // width, and the sharding/admission counters are part of the stats
  // surface.
  EXPECT_NE(stats.find("\"pool_mode\":\"stealing\""), std::string::npos);
  EXPECT_NE(stats.find("\"intra_query_threads\":"), std::string::npos);
  EXPECT_NE(stats.find("\"rejected\":0"), std::string::npos);
  EXPECT_NE(stats.find("\"pool_steals\":"), std::string::npos);
}

TEST(ServeTest, TracedQueryCarriesPerRoundRows) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({5.0, 2.0}, 1500, 3))
          .ok());
  const std::string response =
      Handle(engine, "query dataset=ds kind=entropy-topk k=1 trace=1");
  EXPECT_EQ(response.rfind("{\"ok\":true,\"op\":\"query\"", 0), 0u)
      << response;
  ASSERT_NE(response.find("\"trace\":["), std::string::npos) << response;
  // One row per sampling round, each with the full schema.
  for (const char* field : {"\"round\":1", "\"m\":", "\"lambda\":",
                            "\"max_bias\":", "\"active\":", "\"decided\":",
                            "\"cells\":", "\"ms\":"}) {
    EXPECT_NE(response.find(field), std::string::npos)
        << field << " missing in " << response;
  }

  // The untraced form of the same query omits the array -- and note the
  // traced run above populated the cache (trace is not part of the
  // canonical key), so this is also the cache-hit-carries-no-trace case.
  const std::string untraced =
      Handle(engine, "query dataset=ds kind=entropy-topk k=1");
  EXPECT_NE(untraced.find("\"cache_hit\":true"), std::string::npos)
      << untraced;
  EXPECT_EQ(untraced.find("\"trace\":["), std::string::npos) << untraced;

  // A traced repeat is served from cache and therefore ran zero rounds:
  // no trace either.
  const std::string traced_hit =
      Handle(engine, "query dataset=ds kind=entropy-topk k=1 trace=1");
  EXPECT_NE(traced_hit.find("\"cache_hit\":true"), std::string::npos);
  EXPECT_EQ(traced_hit.find("\"trace\":["), std::string::npos) << traced_hit;
}

TEST(ServeTest, MetricsReflectQueryBurst) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({4.0, 1.0}, 1200, 5))
          .ok());
  // A small burst: one real execution, two cache hits.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(Handle(engine, "query dataset=ds kind=entropy-topk k=1")
                  .rfind("{\"ok\":true", 0),
              0u);
  }

  const std::string response = Handle(engine, "metrics");
  EXPECT_EQ(response.rfind("{\"ok\":true,\"op\":\"metrics\"", 0), 0u)
      << response;
  // Prometheus text is embedded as an escaped JSON string; the family
  // names survive escaping verbatim.
  ASSERT_NE(response.find("\"prometheus\":\""), std::string::npos);
  EXPECT_NE(response.find("swope_engine_queries_ok_total 3"),
            std::string::npos)
      << response;
  EXPECT_NE(
      response.find(
          "swope_engine_query_latency_ms_count{kind=\\\"entropy-topk\\\"} 3"),
      std::string::npos)
      << response;
  EXPECT_NE(response.find("swope_cache_hits_total{cache=\\\"result\\\"} 2"),
            std::string::npos);
  EXPECT_NE(
      response.find("swope_cache_misses_total{cache=\\\"result\\\"} 1"),
      std::string::npos);
  // Executor pool stats are present (the burst above ran synchronously,
  // so the counter may be zero -- the family must still be exposed).
  EXPECT_NE(response.find("swope_pool_tasks_total{pool=\\\"executor\\\"}"),
            std::string::npos);
  // The JSON snapshot rides along as a nested object.
  ASSERT_NE(response.find("\"snapshot\":{"), std::string::npos);
  EXPECT_NE(response.find("\"swope_engine_queries_ok_total\":3"),
            std::string::npos);
}

TEST(ServeTest, MalformedRequestsAreInBandErrors) {
  QueryEngine engine;
  // Unknown op.
  EXPECT_EQ(Handle(engine, "frobnicate").rfind("{\"ok\":false", 0), 0u);
  // Missing '=' in an argument.
  EXPECT_EQ(Handle(engine, "query dataset").rfind("{\"ok\":false", 0), 0u);
  // Unknown kind.
  EXPECT_EQ(Handle(engine, "query dataset=x kind=magic")
                .rfind("{\"ok\":false", 0),
            0u);
  // Non-numeric numeric argument.
  EXPECT_EQ(Handle(engine, "query dataset=x kind=entropy-topk k=lots")
                .rfind("{\"ok\":false", 0),
            0u);
  // Unknown dataset surfaces the engine's NotFound.
  const std::string response =
      Handle(engine, "query dataset=ghost kind=entropy-topk k=1");
  EXPECT_NE(response.find("\"code\":\"Not found\""), std::string::npos)
      << response;
}

TEST(ServeTest, QuitStopsTheLoop) {
  QueryEngine engine;
  bool quit = false;
  EXPECT_EQ(HandleRequestLine(engine, "quit", &quit),
            "{\"ok\":true,\"op\":\"quit\"}");
  EXPECT_TRUE(quit);
}

TEST(ServeTest, ServeLoopProcessesAScript) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({5.0, 1.0}, 1200, 6))
          .ok());
  std::istringstream in(
      "# comment line\n"
      "\n"
      "datasets\n"
      "query dataset=ds kind=entropy-topk k=1\n"
      "query dataset=ds kind=entropy-topk k=1\n"
      "query dataset=nope kind=entropy-topk k=1\n"
      "quit\n"
      "datasets\n");  // after quit: must not be processed
  std::ostringstream out;
  const uint64_t failures = ServeLoop(engine, in, out);
  EXPECT_EQ(failures, 1u);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> responses;
  while (std::getline(lines, line)) responses.push_back(line);
  ASSERT_EQ(responses.size(), 5u);  // comment/blank skipped, quit stops
  EXPECT_EQ(responses[0].rfind("{\"ok\":true,\"op\":\"datasets\"", 0), 0u);
  EXPECT_NE(responses[1].find("\"cache_hit\":false"), std::string::npos);
  EXPECT_NE(responses[2].find("\"cache_hit\":true"), std::string::npos);
  EXPECT_EQ(responses[3].rfind("{\"ok\":false", 0), 0u);
  EXPECT_EQ(responses[4], "{\"ok\":true,\"op\":\"quit\"}");
}

}  // namespace
}  // namespace swope
