#include "src/engine/serve.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/table/binary_io.h"
#include "src/table/csv_writer.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeEntropyTable;
using test::MakeMiTable;

std::string Handle(QueryEngine& engine, const std::string& line) {
  bool quit = false;
  return HandleRequestLine(engine, line, &quit);
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a") + '\x01' + "b"), "a\\u0001b");
}

TEST(ServeTest, QueryOverRegisteredDataset) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({5.0, 2.0}, 1500, 3))
          .ok());
  const std::string response =
      Handle(engine, "query dataset=ds kind=entropy-topk k=1");
  EXPECT_EQ(response.rfind("{\"ok\":true,\"op\":\"query\"", 0), 0u)
      << response;
  EXPECT_NE(response.find("\"kind\":\"entropy-topk\""), std::string::npos);
  EXPECT_NE(response.find("\"cache_hit\":false"), std::string::npos);
  EXPECT_NE(response.find("\"estimate\":"), std::string::npos);

  // The per-line JSON carries the full QueryStats block.
  for (const char* field :
       {"\"stats\":{", "\"final_sample_size\":", "\"initial_sample_size\":",
        "\"iterations\":", "\"cells_scanned\":", "\"candidates_remaining\":",
        "\"exhausted_dataset\":"}) {
    EXPECT_NE(response.find(field), std::string::npos)
        << field << " missing in " << response;
  }

  // The repeat is answered from cache, visibly.
  const std::string repeat =
      Handle(engine, "query dataset=ds kind=entropy-topk k=1");
  EXPECT_NE(repeat.find("\"cache_hit\":true"), std::string::npos) << repeat;
}

TEST(ServeTest, LoadBinaryAndCsvFiles) {
  const Table table = MakeMiTable({0.4, 0.7}, 800, 9);
  const std::string binary_path = ::testing::TempDir() + "serve_test.swpb";
  const std::string csv_path = ::testing::TempDir() + "serve_test.csv";
  ASSERT_TRUE(WriteBinaryTableFile(table, binary_path).ok());
  ASSERT_TRUE(WriteCsvFile(table, csv_path).ok());

  QueryEngine engine;
  const std::string bin_response =
      Handle(engine, "load name=bin path=" + binary_path);
  EXPECT_EQ(bin_response.rfind("{\"ok\":true,\"op\":\"load\"", 0), 0u)
      << bin_response;
  EXPECT_NE(bin_response.find("\"rows\":800"), std::string::npos);
  EXPECT_NE(bin_response.find("\"columns\":3"), std::string::npos);

  const std::string csv_response =
      Handle(engine, "load name=csv path=" + csv_path);
  EXPECT_EQ(csv_response.rfind("{\"ok\":true", 0), 0u) << csv_response;

  // Both loads carry the same data modulo dictionary code assignment;
  // a query against each must succeed.
  EXPECT_EQ(Handle(engine, "query dataset=bin kind=mi-topk k=1 target=t")
                .rfind("{\"ok\":true", 0),
            0u);
  EXPECT_EQ(Handle(engine, "query dataset=csv kind=mi-topk k=1 target=t")
                .rfind("{\"ok\":true", 0),
            0u);
}

TEST(ServeTest, DatasetsAndUnload) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("a", MakeEntropyTable({3.0}, 300, 1)).ok());
  ASSERT_TRUE(
      engine.RegisterDataset("b", MakeEntropyTable({3.0}, 300, 2)).ok());
  EXPECT_EQ(Handle(engine, "datasets"),
            "{\"ok\":true,\"op\":\"datasets\",\"names\":[\"a\",\"b\"]}");
  EXPECT_EQ(Handle(engine, "unload name=a"),
            "{\"ok\":true,\"op\":\"unload\",\"name\":\"a\"}");
  EXPECT_EQ(Handle(engine, "datasets"),
            "{\"ok\":true,\"op\":\"datasets\",\"names\":[\"b\"]}");
  const std::string missing = Handle(engine, "unload name=a");
  EXPECT_EQ(missing.rfind("{\"ok\":false", 0), 0u);
  EXPECT_NE(missing.find("\"code\":\"Not found\""), std::string::npos)
      << missing;
}

TEST(ServeTest, StatsReflectTraffic) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({4.0}, 1000, 1)).ok());
  ASSERT_TRUE(
      Handle(engine, "query dataset=ds kind=entropy-topk k=1")
          .rfind("{\"ok\":true", 0) == 0);
  const std::string stats = Handle(engine, "stats");
  EXPECT_EQ(stats.rfind("{\"ok\":true,\"op\":\"stats\"", 0), 0u) << stats;
  EXPECT_NE(stats.find("\"queries_ok\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"resident_datasets\":1"), std::string::npos);
  // Execution geometry (docs/SHARDING.md): scheduler mode, intra-query
  // width, and the sharding/admission counters are part of the stats
  // surface.
  EXPECT_NE(stats.find("\"pool_mode\":\"stealing\""), std::string::npos);
  EXPECT_NE(stats.find("\"intra_query_threads\":"), std::string::npos);
  EXPECT_NE(stats.find("\"rejected\":0"), std::string::npos);
  EXPECT_NE(stats.find("\"pool_steals\":"), std::string::npos);
}

TEST(ServeTest, TracedQueryCarriesPerRoundRows) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({5.0, 2.0}, 1500, 3))
          .ok());
  const std::string response =
      Handle(engine, "query dataset=ds kind=entropy-topk k=1 trace=1");
  EXPECT_EQ(response.rfind("{\"ok\":true,\"op\":\"query\"", 0), 0u)
      << response;
  ASSERT_NE(response.find("\"trace\":["), std::string::npos) << response;
  // One row per sampling round, each with the full schema.
  for (const char* field : {"\"round\":1", "\"m\":", "\"lambda\":",
                            "\"max_bias\":", "\"active\":", "\"decided\":",
                            "\"cells\":", "\"ms\":"}) {
    EXPECT_NE(response.find(field), std::string::npos)
        << field << " missing in " << response;
  }

  // The untraced form of the same query omits the array -- and note the
  // traced run above populated the cache (trace is not part of the
  // canonical key), so this is also the cache-hit-carries-no-trace case.
  const std::string untraced =
      Handle(engine, "query dataset=ds kind=entropy-topk k=1");
  EXPECT_NE(untraced.find("\"cache_hit\":true"), std::string::npos)
      << untraced;
  EXPECT_EQ(untraced.find("\"trace\":["), std::string::npos) << untraced;

  // A traced repeat is served from cache and therefore ran zero rounds:
  // no trace either.
  const std::string traced_hit =
      Handle(engine, "query dataset=ds kind=entropy-topk k=1 trace=1");
  EXPECT_NE(traced_hit.find("\"cache_hit\":true"), std::string::npos);
  EXPECT_EQ(traced_hit.find("\"trace\":["), std::string::npos) << traced_hit;
}

TEST(ServeTest, MetricsReflectQueryBurst) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({4.0, 1.0}, 1200, 5))
          .ok());
  // A small burst: one real execution, two cache hits.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(Handle(engine, "query dataset=ds kind=entropy-topk k=1")
                  .rfind("{\"ok\":true", 0),
              0u);
  }

  const std::string response = Handle(engine, "metrics");
  EXPECT_EQ(response.rfind("{\"ok\":true,\"op\":\"metrics\"", 0), 0u)
      << response;
  // Prometheus text is embedded as an escaped JSON string; the family
  // names survive escaping verbatim.
  ASSERT_NE(response.find("\"prometheus\":\""), std::string::npos);
  EXPECT_NE(response.find("swope_engine_queries_ok_total 3"),
            std::string::npos)
      << response;
  EXPECT_NE(
      response.find(
          "swope_engine_query_latency_ms_count{kind=\\\"entropy-topk\\\"} 3"),
      std::string::npos)
      << response;
  EXPECT_NE(response.find("swope_cache_hits_total{cache=\\\"result\\\"} 2"),
            std::string::npos);
  EXPECT_NE(
      response.find("swope_cache_misses_total{cache=\\\"result\\\"} 1"),
      std::string::npos);
  // Executor pool stats are present (the burst above ran synchronously,
  // so the counter may be zero -- the family must still be exposed).
  EXPECT_NE(response.find("swope_pool_tasks_total{pool=\\\"executor\\\"}"),
            std::string::npos);
  // The JSON snapshot rides along as a nested object.
  ASSERT_NE(response.find("\"snapshot\":{"), std::string::npos);
  EXPECT_NE(response.find("\"swope_engine_queries_ok_total\":3"),
            std::string::npos);
}

TEST(ServeTest, ProfiledQueryCarriesStageBreakdown) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({5.0, 2.0}, 1500, 3))
          .ok());
  const std::string response =
      Handle(engine, "query dataset=ds kind=entropy-topk k=1 profile=1");
  EXPECT_EQ(response.rfind("{\"ok\":true,\"op\":\"query\"", 0), 0u)
      << response;
  ASSERT_NE(response.find("\"profile\":{\"stages\":["), std::string::npos)
      << response;
  // The serial execution path exercises at least gathering, counting,
  // interval updates, and finalization; scheduling-wait is always timed.
  // (shard-merge only fires on multi-shard plans, so it is not required.)
  for (const char* stage :
       {"\"stage\":\"gather\"", "\"stage\":\"count\"",
        "\"stage\":\"interval-update\"", "\"stage\":\"finalize\"",
        "\"stage\":\"scheduling-wait\""}) {
    EXPECT_NE(response.find(stage), std::string::npos)
        << stage << " missing in " << response;
  }
  EXPECT_NE(response.find("\"stage_sum_ms\":"), std::string::npos);
  EXPECT_NE(response.find("\"wall_ms\":"), std::string::npos);

  // Profile is not part of the canonical cache key, and a cache hit ran
  // no stages: the profiled repeat carries no profile block.
  const std::string hit =
      Handle(engine, "query dataset=ds kind=entropy-topk k=1 profile=1");
  EXPECT_NE(hit.find("\"cache_hit\":true"), std::string::npos) << hit;
  EXPECT_EQ(hit.find("\"profile\":"), std::string::npos) << hit;
}

TEST(ServeTest, ProfileOffOutputIsByteIdenticalToUnprofiled) {
  // `profile=0` (and an absent profile argument) must not perturb a
  // single byte of the reply: two identically seeded engines answer the
  // same query identically whether or not the flag is spelled out.
  QueryEngine plain_engine;
  QueryEngine flagged_engine;
  ASSERT_TRUE(
      plain_engine
          .RegisterDataset("ds", MakeEntropyTable({5.0, 2.0}, 1500, 3))
          .ok());
  ASSERT_TRUE(
      flagged_engine
          .RegisterDataset("ds", MakeEntropyTable({5.0, 2.0}, 1500, 3))
          .ok());
  const std::string plain =
      Handle(plain_engine, "query dataset=ds kind=entropy-topk k=1");
  const std::string flagged = Handle(
      flagged_engine, "query dataset=ds kind=entropy-topk k=1 profile=0");
  EXPECT_EQ(plain, flagged);
  EXPECT_EQ(plain.find("\"profile\":"), std::string::npos) << plain;
}

TEST(ServeTest, EventsOpReportsLifecycle) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({4.0}, 1000, 1)).ok());
  ASSERT_EQ(Handle(engine, "query dataset=ds kind=entropy-topk k=1")
                .rfind("{\"ok\":true", 0),
            0u);
  const std::string response = Handle(engine, "events");
  EXPECT_EQ(response.rfind("{\"ok\":true,\"op\":\"events\",\"total\":", 0),
            0u)
      << response;
  for (const char* needle :
       {"\"kind\":\"dataset-load\"", "\"kind\":\"query-admit\"",
        "\"kind\":\"query-complete\"", "\"dataset\":\"ds\"",
        "\"seq\":0", "\"detail\":\"rows=1000 shards="}) {
    EXPECT_NE(response.find(needle), std::string::npos)
        << needle << " missing in " << response;
  }

  // n= caps the snapshot at the newest events.
  const std::string limited = Handle(engine, "events n=1");
  EXPECT_EQ(limited.rfind("{\"ok\":true,\"op\":\"events\"", 0), 0u);
  // Exactly one event object in the array.
  size_t count = 0;
  for (size_t pos = limited.find("\"seq\":"); pos != std::string::npos;
       pos = limited.find("\"seq\":", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u) << limited;
  EXPECT_NE(limited.find("\"kind\":\"query-complete\""), std::string::npos)
      << limited;
}

TEST(ServeTest, SlowQueryThresholdCapturesStageBreakdown) {
  EngineConfig config;
  config.slow_query_ms = 1e-6;  // every executed query is "slow"
  QueryEngine engine(config);
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({4.0, 1.0}, 1200, 5))
          .ok());
  ASSERT_EQ(Handle(engine, "query dataset=ds kind=entropy-topk k=1")
                .rfind("{\"ok\":true", 0),
            0u);
  const std::string response = Handle(engine, "events");
  ASSERT_NE(response.find("\"kind\":\"slow-query\""), std::string::npos)
      << response;
  // The captured detail embeds the stage profile even though the client
  // never asked for profile=1.
  EXPECT_NE(response.find("stages:"), std::string::npos) << response;
  EXPECT_NE(response.find("sum="), std::string::npos) << response;

  // Cache hits never re-trip the slow-query capture.
  const std::string before = Handle(engine, "events");
  ASSERT_EQ(Handle(engine, "query dataset=ds kind=entropy-topk k=1")
                .rfind("{\"ok\":true", 0),
            0u);
  const std::string after = Handle(engine, "events");
  size_t slow_before = 0, slow_after = 0;
  for (size_t pos = before.find("slow-query"); pos != std::string::npos;
       pos = before.find("slow-query", pos + 1)) {
    ++slow_before;
  }
  for (size_t pos = after.find("slow-query"); pos != std::string::npos;
       pos = after.find("slow-query", pos + 1)) {
    ++slow_after;
  }
  EXPECT_EQ(slow_before, slow_after);
}

TEST(ServeTest, StatsCarryUtilizationAndEventTelemetry) {
  EngineConfig config;
  config.intra_query_threads = 2;
  QueryEngine engine(config);
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({4.0}, 1000, 1)).ok());
  ASSERT_EQ(Handle(engine, "query dataset=ds kind=entropy-topk k=1")
                .rfind("{\"ok\":true", 0),
            0u);
  const std::string stats = Handle(engine, "stats");
  for (const char* field :
       {"\"events_logged\":", "\"executor_utilization\":",
        "\"executor_run_ms\":", "\"executor_idle_ms\":",
        "\"intra_utilization\":", "\"intra_run_ms\":",
        "\"intra_idle_ms\":"}) {
    EXPECT_NE(stats.find(field), std::string::npos)
        << field << " missing in " << stats;
  }
  // At least dataset-load + admit + complete were logged.
  EXPECT_EQ(stats.find("\"events_logged\":0"), std::string::npos) << stats;
}

TEST(ServeTest, MalformedRequestsAreInBandErrors) {
  QueryEngine engine;
  // Unknown op.
  EXPECT_EQ(Handle(engine, "frobnicate").rfind("{\"ok\":false", 0), 0u);
  // Missing '=' in an argument.
  EXPECT_EQ(Handle(engine, "query dataset").rfind("{\"ok\":false", 0), 0u);
  // Unknown kind.
  EXPECT_EQ(Handle(engine, "query dataset=x kind=magic")
                .rfind("{\"ok\":false", 0),
            0u);
  // Non-numeric numeric argument.
  EXPECT_EQ(Handle(engine, "query dataset=x kind=entropy-topk k=lots")
                .rfind("{\"ok\":false", 0),
            0u);
  // Unknown dataset surfaces the engine's NotFound.
  const std::string response =
      Handle(engine, "query dataset=ghost kind=entropy-topk k=1");
  EXPECT_NE(response.find("\"code\":\"Not found\""), std::string::npos)
      << response;
}

TEST(ServeTest, QuitStopsTheLoop) {
  QueryEngine engine;
  bool quit = false;
  EXPECT_EQ(HandleRequestLine(engine, "quit", &quit),
            "{\"ok\":true,\"op\":\"quit\"}");
  EXPECT_TRUE(quit);
}

TEST(ServeTest, ServeLoopProcessesAScript) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({5.0, 1.0}, 1200, 6))
          .ok());
  std::istringstream in(
      "# comment line\n"
      "\n"
      "datasets\n"
      "query dataset=ds kind=entropy-topk k=1\n"
      "query dataset=ds kind=entropy-topk k=1\n"
      "query dataset=nope kind=entropy-topk k=1\n"
      "quit\n"
      "datasets\n");  // after quit: must not be processed
  std::ostringstream out;
  const uint64_t failures = ServeLoop(engine, in, out);
  EXPECT_EQ(failures, 1u);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> responses;
  while (std::getline(lines, line)) responses.push_back(line);
  ASSERT_EQ(responses.size(), 5u);  // comment/blank skipped, quit stops
  EXPECT_EQ(responses[0].rfind("{\"ok\":true,\"op\":\"datasets\"", 0), 0u);
  EXPECT_NE(responses[1].find("\"cache_hit\":false"), std::string::npos);
  EXPECT_NE(responses[2].find("\"cache_hit\":true"), std::string::npos);
  EXPECT_EQ(responses[3].rfind("{\"ok\":false", 0), 0u);
  EXPECT_EQ(responses[4], "{\"ok\":true,\"op\":\"quit\"}");
}

}  // namespace
}  // namespace swope
