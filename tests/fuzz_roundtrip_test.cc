// Randomized robustness suites:
//  * CSV and binary round trips over randomly generated tables with
//    hostile cell contents (quotes, delimiters, newlines, unicode bytes),
//  * byte-level corruption of binary images must never crash and must
//    surface as a non-OK status or a still-valid table,
//  * sequential-sampling queries agree with their own reruns and satisfy
//    the approximation contract on shuffled storage.

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/entropy.h"
#include "src/core/swope_topk_entropy.h"
#include "src/eval/accuracy.h"
#include "src/table/binary_io.h"
#include "src/table/csv_reader.h"
#include "src/table/csv_writer.h"
#include "src/table/sketch_sidecar.h"
#include "src/table/table_builder.h"
#include "tests/test_util.h"

namespace swope {
namespace {

// A pool of hostile cell values.
std::string RandomCell(Rng& rng) {
  static const char* kPool[] = {
      "",       "plain",      "with,comma", "with\"quote", "line\nbreak",
      "  pad ", "tab\tcell",  "'single'",   ",,,",         "\"\"",
      "0",      "-1",         "3.14",       "NULL",        "N/A",
      "\xc3\xa9\xc3\xa8",     "emoji \xf0\x9f\x98\x80",    "\r",
  };
  return kPool[rng.UniformU64(sizeof(kPool) / sizeof(kPool[0]))];
}

TEST(FuzzRoundTripTest, CsvSurvivesHostileCells) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const size_t cols = 1 + rng.UniformU64(5);
    const size_t rows = 1 + rng.UniformU64(40);
    std::vector<std::string> names;
    for (size_t c = 0; c < cols; ++c) names.push_back("c" + std::to_string(c));
    auto builder = TableBuilder::Make(names);
    ASSERT_TRUE(builder.ok());
    std::vector<std::vector<std::string>> cells(rows);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) cells[r].push_back(RandomCell(rng));
      ASSERT_TRUE(builder->AppendRow(cells[r]).ok());
    }
    auto table = std::move(*builder).Finish();
    ASSERT_TRUE(table.ok());

    std::ostringstream out;
    ASSERT_TRUE(WriteCsv(*table, out).ok());
    std::istringstream in(out.str());
    auto parsed = ReadCsv(in);
    ASSERT_TRUE(parsed.ok())
        << "seed " << seed << ": " << parsed.status().ToString();
    ASSERT_EQ(parsed->num_rows(), rows) << "seed " << seed;
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        EXPECT_EQ(parsed->column(c).LabelOf(parsed->column(c).code(r)),
                  cells[r][c])
            << "seed " << seed << " cell (" << r << "," << c << ")";
      }
    }
  }
}

// Serializes a table as a version-1 image (one u32 per code), which the
// current writer no longer emits but the reader must keep accepting.
std::string WriteV1Image(const Table& table) {
  std::ostringstream out;
  auto put_u32 = [&out](uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  out.write("SWPB", 4);
  put_u32(1);  // version
  const uint64_t rows = table.num_rows();
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  put_u32(static_cast<uint32_t>(table.num_columns()));
  for (const Column& col : table.columns()) {
    put_u32(static_cast<uint32_t>(col.name().size()));
    out.write(col.name().data(),
              static_cast<std::streamsize>(col.name().size()));
    put_u32(col.support());
    const char has_labels = col.has_labels() ? 1 : 0;
    out.write(&has_labels, 1);
    if (col.has_labels()) {
      for (const std::string& label : col.labels()) {
        put_u32(static_cast<uint32_t>(label.size()));
        out.write(label.data(),
                  static_cast<std::streamsize>(label.size()));
      }
    }
    for (ValueCode code : col.codes()) put_u32(code);
  }
  return out.str();
}

TEST(FuzzRoundTripTest, V1ImageReadsBackIdentical) {
  const Table table = test::MakeEntropyTable({1.5, 3.0, 0.8}, 700, 13);
  std::stringstream stream(WriteV1Image(table));
  auto loaded = ReadBinaryTable(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), table.num_rows());
  ASSERT_EQ(loaded->num_columns(), table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    EXPECT_EQ(loaded->column(c).codes(), table.column(c).codes());
    EXPECT_EQ(loaded->column(c).support(), table.column(c).support());
  }
}

TEST(FuzzRoundTripTest, V1CorruptionNeverCrashes) {
  const Table table = test::MakeEntropyTable({1.0, 2.5, 0.5}, 500, 3);
  const std::string image = WriteV1Image(table);

  Rng rng(173);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = image;
    const int flips = 1 + static_cast<int>(rng.UniformU64(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.UniformU64(mutated.size());
      mutated[pos] = static_cast<char>(rng.Next());
    }
    std::stringstream stream(mutated);
    auto loaded = ReadBinaryTable(stream);  // must not crash or hang
    if (loaded.ok()) {
      for (const Column& col : loaded->columns()) {
        for (uint64_t r = 0; r < col.size(); ++r) {
          ASSERT_LT(col.code(r), std::max<uint32_t>(col.support(), 1));
        }
      }
    }
  }
}

TEST(FuzzRoundTripTest, V1TruncationAlwaysCorruption) {
  const Table table = test::MakeEntropyTable({2.0, 1.0}, 200, 5);
  const std::string image = WriteV1Image(table);
  Rng rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t cut = rng.UniformU64(image.size());
    std::stringstream stream(image.substr(0, cut));
    auto loaded = ReadBinaryTable(stream);
    EXPECT_FALSE(loaded.ok()) << "cut=" << cut;
  }
}

TEST(FuzzRoundTripTest, BinaryCorruptionNeverCrashes) {
  const Table table = test::MakeEntropyTable({1.0, 2.5, 0.5}, 500, 3);
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(table, buffer).ok());
  const std::string image = buffer.str();

  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = image;
    // Flip 1-4 random bytes.
    const int flips = 1 + static_cast<int>(rng.UniformU64(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.UniformU64(mutated.size());
      mutated[pos] = static_cast<char>(rng.Next());
    }
    std::stringstream stream(mutated);
    auto loaded = ReadBinaryTable(stream);  // must not crash or hang
    if (loaded.ok()) {
      // A surviving table must still be structurally valid.
      for (const Column& col : loaded->columns()) {
        for (uint64_t r = 0; r < col.size(); ++r) {
          ASSERT_LT(col.code(r), std::max<uint32_t>(col.support(), 1));
        }
      }
    }
  }
}

// A v3 image (count-min sidecars attached): generates an entropy table,
// promotes every column to carry a sketch, and serializes it.
std::string WriteV3Image() {
  const Table table = test::MakeEntropyTable({1.0, 2.5, 0.5}, 500, 3);
  auto sketched = AttachSketches(table, /*epsilon=*/0.05, /*delta=*/0.05,
                                 /*min_support=*/0, /*seed=*/9);
  EXPECT_TRUE(sketched.ok()) << sketched.status().ToString();
  EXPECT_GT(sketched->SketchMemoryBytes(), 0u);
  std::stringstream buffer;
  EXPECT_TRUE(WriteBinaryTable(*sketched, buffer).ok());
  std::string image = buffer.str();
  EXPECT_EQ(static_cast<uint8_t>(image[4]), 3);  // sidecars force v3
  return image;
}

TEST(FuzzRoundTripTest, V3SketchCorruptionNeverCrashes) {
  const std::string image = WriteV3Image();
  Rng rng(41);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = image;
    const int flips = 1 + static_cast<int>(rng.UniformU64(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.UniformU64(mutated.size());
      mutated[pos] = static_cast<char>(rng.Next());
    }
    std::stringstream stream(mutated);
    auto loaded = ReadBinaryTable(stream);  // must not crash or hang
    if (loaded.ok()) {
      for (const Column& col : loaded->columns()) {
        for (uint64_t r = 0; r < col.size(); ++r) {
          ASSERT_LT(col.code(r), std::max<uint32_t>(col.support(), 1));
        }
        if (col.has_sketch()) {
          // A surviving sidecar must still satisfy the row-sum invariant
          // FromParts enforces -- spot-check it never undercounts its
          // own stream length promise.
          ASSERT_LE(col.sketch()->Estimate(0),
                    col.sketch()->total_count());
        }
      }
    }
  }
}

TEST(FuzzRoundTripTest, V3TruncationAlwaysCorruption) {
  const std::string image = WriteV3Image();
  Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t cut = rng.UniformU64(image.size());
    std::stringstream stream(image.substr(0, cut));
    auto loaded = ReadBinaryTable(stream);
    EXPECT_FALSE(loaded.ok()) << "cut=" << cut;
  }
}

TEST(FuzzRoundTripTest, BinaryTruncationAlwaysCorruption) {
  const Table table = test::MakeEntropyTable({2.0, 1.0}, 200, 5);
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(table, buffer).ok());
  const std::string image = buffer.str();
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t cut = rng.UniformU64(image.size());
    std::stringstream stream(image.substr(0, cut));
    auto loaded = ReadBinaryTable(stream);
    EXPECT_FALSE(loaded.ok()) << "cut=" << cut;
  }
}

// ---- Mapped-load robustness ------------------------------------------
//
// The mmap loader (ReadBinaryTableFileMapped) borrows words straight out
// of the file mapping, so its bounds checking is the only thing between
// a corrupt file and a SIGBUS. These mirror the stream-loader fuzz
// suites through temp files.

class ScopedImageFile {
 public:
  explicit ScopedImageFile(const std::string& bytes)
      : path_(::testing::TempDir() + "/fuzz_mapped_" +
              std::to_string(reinterpret_cast<uintptr_t>(this)) + ".swpb") {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    EXPECT_TRUE(out.good());
  }
  ~ScopedImageFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(FuzzRoundTripTest, MappedLoadMatchesStreamLoad) {
  const Table table = test::MakeEntropyTable({1.0, 2.5, 0.5}, 500, 3);
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(table, buffer).ok());
  ScopedImageFile file(buffer.str());

  auto mapped = ReadBinaryTableFileMapped(file.path());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_GT(mapped->MappedBytes(), 0u)
      << "page-aligned writer output should load borrowed, not copied";
  ASSERT_EQ(mapped->num_rows(), table.num_rows());
  ASSERT_EQ(mapped->num_columns(), table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    EXPECT_EQ(mapped->column(c).codes(), table.column(c).codes());
  }
}

TEST(FuzzRoundTripTest, MappedCorruptionNeverCrashes) {
  const Table table = test::MakeEntropyTable({1.0, 2.5, 0.5}, 500, 3);
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(table, buffer).ok());
  const std::string image = buffer.str();

  Rng rng(57);
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = image;
    const int flips = 1 + static_cast<int>(rng.UniformU64(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.UniformU64(mutated.size());
      mutated[pos] = static_cast<char>(rng.Next());
    }
    ScopedImageFile file(mutated);
    // Must not crash, and in particular must never fault past the
    // mapping: every read is bounds-checked against ReadableBytes.
    auto loaded = ReadBinaryTableFileMapped(file.path());
    if (loaded.ok()) {
      for (const Column& col : loaded->columns()) {
        for (uint64_t r = 0; r < col.size(); ++r) {
          ASSERT_LT(col.code(r), std::max<uint32_t>(col.support(), 1));
        }
      }
    }
  }
}

TEST(FuzzRoundTripTest, MappedV3CorruptionNeverCrashes) {
  const std::string image = WriteV3Image();
  Rng rng(61);
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = image;
    const int flips = 1 + static_cast<int>(rng.UniformU64(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.UniformU64(mutated.size());
      mutated[pos] = static_cast<char>(rng.Next());
    }
    ScopedImageFile file(mutated);
    auto loaded = ReadBinaryTableFileMapped(file.path());
    if (loaded.ok()) {
      for (const Column& col : loaded->columns()) {
        for (uint64_t r = 0; r < col.size(); ++r) {
          ASSERT_LT(col.code(r), std::max<uint32_t>(col.support(), 1));
        }
      }
    }
  }
}

TEST(FuzzRoundTripTest, MappedTruncationAlwaysCorruption) {
  const Table table = test::MakeEntropyTable({2.0, 1.0}, 200, 5);
  std::stringstream buffer;
  ASSERT_TRUE(WriteBinaryTable(table, buffer).ok());
  const std::string image = buffer.str();
  Rng rng(67);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t cut = rng.UniformU64(image.size());
    ScopedImageFile file(image.substr(0, cut));
    auto loaded = ReadBinaryTableFileMapped(file.path());
    EXPECT_FALSE(loaded.ok()) << "cut=" << cut;
  }
}

TEST(FuzzRoundTripTest, MappedV1FallsBackToStreamLoader) {
  const Table table = test::MakeEntropyTable({1.5, 3.0}, 300, 13);
  ScopedImageFile file(WriteV1Image(table));
  auto loaded = ReadBinaryTableFileMapped(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->MappedBytes(), 0u) << "v1 has no borrowable payloads";
  ASSERT_EQ(loaded->num_rows(), table.num_rows());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    EXPECT_EQ(loaded->column(c).codes(), table.column(c).codes());
  }
}

TEST(FuzzRoundTripTest, SequentialSamplingOnShuffledStorageIsSound) {
  // The benches run with sequential_sampling = true on synthetic tables
  // whose stored order is i.i.d.; the Definition 5 guarantee must hold
  // there just as with per-query permutations.
  const Table table = test::MakeEntropyTable(
      {5.0, 4.2, 3.4, 2.6, 1.8, 1.0}, 40000, 11);
  const auto exact = ExactEntropies(table);
  const auto eligible = test::AllIndices(table.num_columns());
  for (double eps : {0.1, 0.25}) {
    QueryOptions options;
    options.epsilon = eps;
    options.sequential_sampling = true;
    auto result = SwopeTopKEntropy(table, 3, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(
        SatisfiesApproxTopK(result->items, exact, eligible, 3, eps));
    // Sequential runs are fully deterministic regardless of seed.
    QueryOptions other_seed = options;
    other_seed.seed = options.seed + 12345;
    auto again = SwopeTopKEntropy(table, 3, other_seed);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(result->items.size(), again->items.size());
    for (size_t i = 0; i < result->items.size(); ++i) {
      EXPECT_EQ(result->items[i].index, again->items[i].index);
      EXPECT_DOUBLE_EQ(result->items[i].estimate, again->items[i].estimate);
    }
  }
}

}  // namespace
}  // namespace swope
