#!/usr/bin/env bash
# End-to-end smoke test for swope_cli; invoked by ctest with the binary
# path as $1.
set -eu
CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "cli_smoke: $1" >&2; exit 1; }

# help exits 0 and mentions every command
"$CLI" help | grep -q "mi-filter" || fail "help missing mi-filter"

# unknown command exits non-zero
if "$CLI" frobnicate 2>/dev/null; then fail "unknown command accepted"; fi

# generate a small binary dataset
"$CLI" gen --preset=cdc --rows=5000 --seed=3 --out="$TMP/d.swpb" \
  | grep -q "wrote 5000 x 100" || fail "gen binary"

# and a CSV flavor
"$CLI" gen --preset=hus --rows=500 --seed=3 --out="$TMP/d.csv" \
  | grep -q "wrote 500 x 107" || fail "gen csv"

# info prints the shape and the exact resident footprint
"$CLI" info --in="$TMP/d.swpb" | grep -q "rows:    5000" || fail "info rows"
"$CLI" info --in="$TMP/d.swpb" | grep -q "memory:  " || fail "info memory"

# convert: CSV -> SWPB -> CSV round-trips losslessly
"$CLI" convert --in="$TMP/d.csv" --out="$TMP/rt.swpb" \
  | grep -q "converted .* (500 rows, 107 columns)" || fail "convert to swpb"
"$CLI" convert --in="$TMP/rt.swpb" --out="$TMP/rt.csv" \
  | grep -q "converted" || fail "convert to csv"
diff "$TMP/d.csv" "$TMP/rt.csv" || fail "convert round trip not lossless"

# convert: SWPB -> SWPB re-encode reads back with identical query answers
"$CLI" convert --in="$TMP/d.swpb" --out="$TMP/re.swpb" >/dev/null \
  || fail "convert swpb re-encode"
"$CLI" topk --in="$TMP/d.swpb" --k=5 | grep -v '^-- ' > "$TMP/orig.txt"
"$CLI" topk --in="$TMP/re.swpb" --k=5 | grep -v '^-- ' > "$TMP/reenc.txt"
diff "$TMP/orig.txt" "$TMP/reenc.txt" || fail "re-encoded answers differ"

# convert exit codes: missing flag is usage (2), missing input is runtime (1)
set +e
"$CLI" convert --in="$TMP/d.csv" 2>/dev/null
[ $? -eq 2 ] || fail "convert without --out should exit 2"
"$CLI" convert --in="$TMP/nope.csv" --out="$TMP/x.swpb" 2>/dev/null
[ $? -eq 1 ] || fail "convert missing input should exit 1"
set -e

# approximate and exact queries run and report attributes
"$CLI" topk --in="$TMP/d.swpb" --k=3 | grep -q -- "-- 3 attributes" \
  || fail "topk"
"$CLI" topk --in="$TMP/d.swpb" --k=3 --exact | grep -q -- "-- 3 attributes" \
  || fail "exact topk"
"$CLI" filter --in="$TMP/d.swpb" --eta=2.0 | grep -q "attributes," \
  || fail "filter"
"$CLI" mi-topk --in="$TMP/d.swpb" --target=cdc_a0 --k=2 \
  | grep -q -- "-- 2 attributes" || fail "mi-topk by name"
"$CLI" mi-topk --in="$TMP/d.swpb" --target=5 --k=2 --exact \
  | grep -q -- "-- 2 attributes" || fail "mi-topk by index"
"$CLI" nmi-topk --in="$TMP/d.swpb" --target=5 --k=2 \
  | grep -q -- "-- 2 attributes" || fail "nmi-topk"
"$CLI" mi-filter --in="$TMP/d.swpb" --target=5 --eta=0.1 \
  | grep -q "attributes," || fail "mi-filter"

# CSV input path works end to end
"$CLI" topk --in="$TMP/d.csv" --k=2 | grep -q -- "-- 2 attributes" \
  || fail "csv topk"

# --threads=N parallelizes candidate updates without changing the answer
# (drop the summary line: it carries wall-clock ms)
"$CLI" topk --in="$TMP/d.swpb" --k=5 | grep -v '^-- ' > "$TMP/serial.txt"
"$CLI" topk --in="$TMP/d.swpb" --k=5 --threads=4 | grep -v '^-- ' \
  > "$TMP/parallel.txt"
diff "$TMP/serial.txt" "$TMP/parallel.txt" || fail "--threads changed answer"
"$CLI" mi-topk --in="$TMP/d.swpb" --target=5 --k=3 | grep -v '^-- ' \
  > "$TMP/serial.txt"
"$CLI" mi-topk --in="$TMP/d.swpb" --target=5 --k=3 --threads=4 \
  | grep -v '^-- ' > "$TMP/parallel.txt"
diff "$TMP/serial.txt" "$TMP/parallel.txt" \
  || fail "mi --threads changed answer"

# --trace prints a per-round convergence table whose deterministic
# columns (everything but the trailing ms column) are byte-identical
# between 1-thread and 4-thread runs
"$CLI" topk --in="$TMP/d.swpb" --k=3 --trace | grep -v '^-- ' \
  | awk 'NF > 1 { $NF=""; print }' > "$TMP/trace1.txt"
"$CLI" topk --in="$TMP/d.swpb" --k=3 --trace --threads=4 | grep -v '^-- ' \
  | awk 'NF > 1 { $NF=""; print }' > "$TMP/trace4.txt"
grep -q "round" "$TMP/trace1.txt" || fail "--trace printed no table"
grep -q "max_bias" "$TMP/trace1.txt" || fail "--trace missing max_bias"
[ "$(wc -l < "$TMP/trace1.txt")" -ge 2 ] || fail "--trace has no rounds"
diff "$TMP/trace1.txt" "$TMP/trace4.txt" \
  || fail "--trace differs across thread counts"

# missing file is a clean error
if "$CLI" topk --in="$TMP/nope.swpb" --k=1 2>/dev/null; then
  fail "missing file accepted"
fi

# bad target is a clean error
if "$CLI" mi-topk --in="$TMP/d.swpb" --target=zzz --k=1 2>/dev/null; then
  fail "bad target accepted"
fi

# exit codes are distinct: usage errors exit 2, runtime failures exit 1
set +e
"$CLI" frobnicate 2>/dev/null
[ $? -eq 2 ] || fail "unknown command should exit 2"
"$CLI" topk --k=1 2>/dev/null   # missing --in: usage
[ $? -eq 2 ] || fail "missing flag should exit 2"
"$CLI" topk --in="$TMP/nope.swpb" --k=1 2>/dev/null   # missing file: runtime
[ $? -eq 1 ] || fail "missing file should exit 1"
set -e

# diagnostics go to stderr, never stdout
"$CLI" topk --in="$TMP/nope.swpb" --k=1 \
  >"$TMP/out.txt" 2>"$TMP/err.txt" || true
[ ! -s "$TMP/out.txt" ] || fail "error text leaked to stdout"
grep -q "swope_cli:" "$TMP/err.txt" || fail "no diagnostic on stderr"

# serve mode: line protocol in, one JSON object per line out
printf '%s\n' \
  "load name=d path=$TMP/d.swpb" \
  "query dataset=d kind=entropy-topk k=2" \
  "query dataset=d kind=entropy-topk k=2" \
  "query dataset=d kind=mi-topk target=cdc_a0 k=2" \
  "query dataset=ghost kind=entropy-topk k=1" \
  "stats" \
  "quit" \
  | "$CLI" serve > "$TMP/serve.out" || fail "serve exited non-zero"
grep -q '"ok":true,"op":"load"' "$TMP/serve.out" || fail "serve load"
[ "$(grep -c '"op":"query"' "$TMP/serve.out")" -eq 3 ] \
  || fail "serve query count"
grep -q '"cache_hit":true' "$TMP/serve.out" || fail "serve cache hit"
grep -q '"ok":false' "$TMP/serve.out" || fail "serve in-band error"
grep -q '"result_cache_hits":1' "$TMP/serve.out" || fail "serve stats"
# bit-packed storage: the cdc table (5000 rows x 100 cols, supports
# <= 1000 -> <= 10 bits/code) must stay at or below 40% of the
# 4-bytes-per-code footprint (2,000,000 bytes) the old estimate charged
resident="$(grep -o '"resident_bytes":[0-9]*' "$TMP/serve.out" \
  | head -1 | cut -d: -f2)"
[ -n "$resident" ] || fail "serve stats missing resident_bytes"
[ "$resident" -gt 0 ] || fail "resident_bytes is zero"
[ "$resident" -le 800000 ] \
  || fail "resident_bytes $resident exceeds 40% of unpacked footprint"
# query responses carry the full QueryStats block
for field in '"stats":{' '"final_sample_size":' '"iterations":' \
             '"cells_scanned":' '"candidates_remaining":'; do
  grep -F -q "$field" "$TMP/serve.out" || fail "serve missing $field"
done
# every stdout line is JSON (starts with '{')
if grep -qv '^{' "$TMP/serve.out"; then fail "serve stdout not JSON"; fi

# metrics op: after a query burst the Prometheus exposition carries
# nonzero latency-histogram counts, cache counters, and pool stats, and
# the JSON snapshot rides along; trace=1 attaches per-round rows
printf '%s\n' \
  "load name=d path=$TMP/d.swpb" \
  "query dataset=d kind=entropy-topk k=2" \
  "query dataset=d kind=entropy-topk k=2" \
  "query dataset=d kind=entropy-topk k=2" \
  "query dataset=d kind=entropy-topk k=3 trace=1" \
  "metrics" \
  "quit" \
  | "$CLI" serve > "$TMP/metrics.out" || fail "metrics serve exited non-zero"
grep -q '"ok":true,"op":"metrics"' "$TMP/metrics.out" || fail "metrics op"
grep -F -q '"prometheus":"' "$TMP/metrics.out" || fail "metrics prometheus"
grep -F -q '"snapshot":{' "$TMP/metrics.out" || fail "metrics snapshot"
grep -F -q 'swope_engine_queries_ok_total 4' "$TMP/metrics.out" \
  || fail "metrics queries_ok"
grep -F -q \
  'swope_engine_query_latency_ms_count{kind=\"entropy-topk\"} 4' \
  "$TMP/metrics.out" || fail "metrics latency histogram"
grep -F -q 'swope_cache_hits_total{cache=\"result\"} 2' "$TMP/metrics.out" \
  || fail "metrics cache hits"
grep -F -q 'swope_cache_misses_total{cache=\"result\"} 2' "$TMP/metrics.out" \
  || fail "metrics cache misses"
grep -F -q 'swope_pool_tasks_total{pool=\"executor\"}' "$TMP/metrics.out" \
  || fail "metrics pool stats"
grep -F -q '"trace":[{"round":1,' "$TMP/metrics.out" \
  || fail "serve trace rows"

# serve with intra-query threads answers identically to serial serve --
# including with profile=0 spelled out, which must not perturb a byte of
# any reply across thread counts or pool modes
printf '%s\n' \
  "load name=d path=$TMP/d.swpb" \
  "query dataset=d kind=entropy-topk k=3" \
  "query dataset=d kind=nmi-topk target=cdc_a0 k=2" \
  "query dataset=d kind=mi-topk target=cdc_a0 k=2 profile=0" \
  "quit" > "$TMP/serve.req"
"$CLI" serve < "$TMP/serve.req" > "$TMP/serve1.out" \
  || fail "serial serve exited non-zero"
"$CLI" serve --intra-threads=4 < "$TMP/serve.req" > "$TMP/serve4.out" \
  || fail "parallel serve exited non-zero"
diff "$TMP/serve1.out" "$TMP/serve4.out" \
  || fail "--intra-threads changed serve answers"
"$CLI" serve --pool-mode=single-queue < "$TMP/serve.req" \
  > "$TMP/servesq.out" || fail "single-queue serve exited non-zero"
diff "$TMP/serve1.out" "$TMP/servesq.out" \
  || fail "--pool-mode changed serve answers"
"$CLI" serve --intra-threads=4 --pool-mode=single-queue < "$TMP/serve.req" \
  > "$TMP/servesq4.out" || fail "single-queue+intra serve exited non-zero"
diff "$TMP/serve1.out" "$TMP/servesq4.out" \
  || fail "pool-mode x intra-threads changed serve answers"
grep -q '"profile":' "$TMP/serve1.out" \
  && fail "profile=0 reply leaked a profile block"

# profile=1 attaches a per-stage breakdown; the same line without it is
# byte-identical to the profile=0 reply above (cache is per-process, so
# each run below starts cold)
printf '%s\n' \
  "load name=d path=$TMP/d.swpb" \
  "query dataset=d kind=entropy-topk k=3 profile=1" \
  "query dataset=d kind=entropy-topk k=3 profile=1" \
  "events" \
  "stats" \
  "quit" \
  | "$CLI" serve --slow-query-ms=0.000001 --event-log-capacity=64 \
  > "$TMP/profile.out" || fail "profile serve exited non-zero"
grep -q '"profile":{"stages":\[' "$TMP/profile.out" \
  || fail "profile=1 reply missing stage breakdown"
grep -q '"stage":"count"' "$TMP/profile.out" || fail "profile missing count"
grep -q '"stage_sum_ms":' "$TMP/profile.out" || fail "profile missing sum"
grep -q '"wall_ms":' "$TMP/profile.out" || fail "profile missing wall"
# the profiled repeat is a cache hit and carries no profile block
[ "$(grep -c '"profile":{' "$TMP/profile.out")" -eq 1 ] \
  || fail "cache hit carried a profile block"
# events op: dataset load, admission, completion, and the slow-query
# capture (threshold is ~0) all appear, newest last
grep -q '"ok":true,"op":"events","total":' "$TMP/profile.out" \
  || fail "events op"
for kind in dataset-load query-admit query-complete slow-query; do
  grep -q "\"kind\":\"$kind\"" "$TMP/profile.out" \
    || fail "events missing $kind"
done
grep -q 'stages:' "$TMP/profile.out" || fail "slow-query detail w/o stages"
# stats surface the event count and worker utilization telemetry
grep -q '"events_logged":' "$TMP/profile.out" || fail "stats events_logged"
grep -q '"executor_utilization":' "$TMP/profile.out" \
  || fail "stats executor_utilization"

# ---- sketch path, u > 1000 rejection, and streaming ingest ----

# a high-cardinality CSV: 'hi' carries 110000 distinct values (u >= 100k)
# over 120000 rows; 'lo' is a 7-value control column
awk 'BEGIN { print "hi,lo";
  for (i = 0; i < 120000; i++) printf "u%d,v%d\n", i % 110000, i % 7 }' \
  > "$TMP/big.csv"

# the exact path refuses u > 1000 with an actionable message naming the
# column and its support (usage error: exit 2)
set +e
"$CLI" topk --in="$TMP/big.csv" --k=2 --max-support=0 2>"$TMP/err.txt"
[ $? -eq 2 ] || fail "high-support exact query should exit 2"
set -e
grep -q "'hi'" "$TMP/err.txt" || fail "rejection does not name the column"
grep -q "support 110000" "$TMP/err.txt" \
  || fail "rejection does not state the support"
grep -q "sketch_epsilon" "$TMP/err.txt" \
  || fail "rejection does not point at the sketch path"

# --sketch-epsilon admits the column: 'hi' (~16.7 bits) must outrank the
# control and both rows carry [lower, upper] intervals
"$CLI" topk --in="$TMP/big.csv" --k=2 --sketch-epsilon=0.01 \
  > "$TMP/sketch.txt" || fail "sketch topk failed"
head -1 "$TMP/sketch.txt" | grep -q "^hi " || fail "sketch topk ranks hi last"
grep "^lo " "$TMP/sketch.txt" | grep -q '\[' || fail "sketch topk intervals"

# sketch: attach count-min sidecars and persist them as SWPB v3
"$CLI" sketch --in="$TMP/big.csv" --out="$TMP/big.swpb" \
  | grep -q "sidecar bytes" || fail "sketch command"
"$CLI" info --in="$TMP/big.swpb" | grep -q "rows:.*120000" \
  || fail "sketched file info"

# append: lossless streaming append updates rows and sidecars in place
"$CLI" append --in="$TMP/big.swpb" --row=u0,v0 --out="$TMP/big2.swpb" \
  | grep -q "appended 1 rows" || fail "append command"
"$CLI" info --in="$TMP/big2.swpb" | grep -q "rows:.*120001" \
  || fail "append did not add the row"

# serve: the sketch path is reported in JSON stats, and ingest appends
# rows then re-answers without serving the stale cached result
printf '%s\n' \
  "load name=big path=$TMP/big.swpb sketch-epsilon=0.01" \
  "query dataset=big kind=entropy-topk k=2 sketch-epsilon=0.01" \
  "query dataset=big kind=entropy-topk k=2 sketch-threshold=200000" \
  "ingest dataset=big row=u7,v3" \
  "query dataset=big kind=entropy-topk k=2 sketch-epsilon=0.01" \
  "ingest dataset=big" \
  "stats" \
  "quit" \
  | "$CLI" serve > "$TMP/sketch_serve.out" \
  || fail "sketch serve exited non-zero"
grep -q '"ok":true,"op":"load"' "$TMP/sketch_serve.out" \
  || fail "serve sketch load"
grep -q '"sketch_candidates":1,"path":"sketch"' "$TMP/sketch_serve.out" \
  || fail "serve sketch path not reported"
grep -q '"sketch_candidates":0,"path":"exact"' "$TMP/sketch_serve.out" \
  || fail "serve exact path not reported"
grep -q '"ok":true,"op":"ingest","dataset":"big","appended":1' \
  "$TMP/sketch_serve.out" || fail "serve ingest"
# the post-ingest repeat of the first query must re-execute (the
# fingerprint rotated), so this session never serves a cache hit
if grep -q '"cache_hit":true' "$TMP/sketch_serve.out"; then
  fail "ingest did not invalidate the result cache"
fi
# ingest with no rows is an in-band error, not a crash
grep -q '"ok":false,"code":"Invalid argument","error":"ingest:' \
  "$TMP/sketch_serve.out" || fail "empty ingest should fail in-band"
grep -q '"ingest_rows":1' "$TMP/sketch_serve.out" || fail "stats ingest_rows"
grep -q '"queries_sketch":2' "$TMP/sketch_serve.out" \
  || fail "stats queries_sketch"
sketch_bytes="$(grep -o '"sketch_bytes":[0-9]*' "$TMP/sketch_serve.out" \
  | head -1 | cut -d: -f2)"
[ -n "$sketch_bytes" ] || fail "stats missing sketch_bytes"
[ "$sketch_bytes" -gt 0 ] || fail "sketch_bytes is zero"

# ---- mmap-loaded storage (docs/STORAGE.md) ----

# info --mmap reports the byte split: payloads borrowed from the mapping
# are "mapped", only dictionaries/metadata stay heap-"memory"
"$CLI" info --in="$TMP/d.swpb" --mmap > "$TMP/info_mmap.txt" \
  || fail "info --mmap failed"
grep -q "mapped:  " "$TMP/info_mmap.txt" || fail "info --mmap no mapped line"
mapped="$(grep "mapped:" "$TMP/info_mmap.txt" | awk '{print $2}')"
heap="$(grep "memory:" "$TMP/info_mmap.txt" | awk '{print $2}')"
[ "$mapped" -gt 0 ] || fail "info --mmap mapped bytes zero"
[ "$heap" -lt "$mapped" ] || fail "info --mmap heap not smaller than mapped"
# the owned load of the same file reports zero mapped bytes
"$CLI" info --in="$TMP/d.swpb" | grep -q "mapped:" \
  && fail "owned info grew a mapped line"

# serve: load mmap=1 reports the split in the load reply and in stats
printf '%s\n' \
  "load name=d path=$TMP/d.swpb mmap=1" \
  "query dataset=d kind=entropy-topk k=3" \
  "stats" \
  "quit" \
  | "$CLI" serve > "$TMP/mmap_serve.out" || fail "mmap serve exited non-zero"
grep -q '"ok":true,"op":"load"' "$TMP/mmap_serve.out" || fail "mmap load"
load_mapped="$(grep -o '"mapped_bytes":[0-9]*' "$TMP/mmap_serve.out" \
  | head -1 | cut -d: -f2)"
load_resident="$(grep -o '"resident_bytes":[0-9]*' "$TMP/mmap_serve.out" \
  | head -1 | cut -d: -f2)"
[ "$load_mapped" -gt 0 ] || fail "mmap load reply mapped_bytes zero"
[ "$load_resident" -lt "$load_mapped" ] \
  || fail "mmap load reply resident not smaller than mapped"
[ "$(grep -c '"mapped_bytes":'"$load_mapped" "$TMP/mmap_serve.out")" -ge 2 ] \
  || fail "stats mapped_bytes disagrees with load reply"

# golden-answer contract: owned and mapped storage serve byte-identical
# query replies, across intra-thread counts and both pool modes
printf '%s\n' \
  "query dataset=d kind=entropy-topk k=3" \
  "query dataset=d kind=mi-topk target=cdc_a0 k=2" \
  "query dataset=d kind=entropy-filter eta=2.0" \
  "quit" > "$TMP/golden.req"
{ echo "load name=d path=$TMP/d.swpb"; cat "$TMP/golden.req"; } \
  > "$TMP/golden_owned.req"
{ echo "load name=d path=$TMP/d.swpb mmap=1"; cat "$TMP/golden.req"; } \
  > "$TMP/golden_mapped.req"
for opts in "" "--intra-threads=4" "--pool-mode=single-queue" \
            "--intra-threads=4 --pool-mode=single-queue"; do
  # shellcheck disable=SC2086
  "$CLI" serve $opts < "$TMP/golden_owned.req" \
    | grep '"op":"query"' > "$TMP/golden_owned.out" \
    || fail "golden owned serve ($opts)"
  # shellcheck disable=SC2086
  "$CLI" serve $opts < "$TMP/golden_mapped.req" \
    | grep '"op":"query"' > "$TMP/golden_mapped.out" \
    || fail "golden mapped serve ($opts)"
  diff "$TMP/golden_owned.out" "$TMP/golden_mapped.out" \
    || fail "owned vs mapped answers differ ($opts)"
done

# a dataset whose mapped footprint exceeds the registry heap budget
# still loads and answers: mapped bytes are OS-paged, not budgeted
"$CLI" gen --preset=cdc --rows=40000 --seed=5 --out="$TMP/big_map.swpb" \
  >/dev/null || fail "gen big_map"
printf '%s\n' \
  "load name=big path=$TMP/big_map.swpb mmap=1" \
  "query dataset=big kind=entropy-topk k=3" \
  "stats" \
  "quit" \
  | "$CLI" serve --memory-budget-mb=1 > "$TMP/over_budget.out" \
  || fail "over-budget mmap serve exited non-zero"
grep -q '"ok":true,"op":"load"' "$TMP/over_budget.out" \
  || fail "over-budget mmap load refused"
grep -q '"ok":true,"op":"query"' "$TMP/over_budget.out" \
  || fail "over-budget mmap query failed"
big_mapped="$(grep -o '"mapped_bytes":[0-9]*' "$TMP/over_budget.out" \
  | head -1 | cut -d: -f2)"
[ "$big_mapped" -gt 1048576 ] \
  || fail "big_map not actually larger than the 1 MiB budget"

# profile=1 replies carry the per-query allocation count (0 in
# production binaries -- the counting interposer only links into
# tests/alloc_regression_test)
grep -q '"allocs":' "$TMP/profile.out" || fail "profile missing allocs"

echo "cli_smoke: OK"
