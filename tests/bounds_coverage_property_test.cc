// Parameterized coverage sweep for the Lemma 3 confidence interval: for
// every (distribution family, sample size) combination, the interval must
// contain the true empirical entropy in far more than a 1 - p fraction of
// random permutations (the bound is conservative, so observed coverage
// should be essentially 1; we assert the contractual 1 - p).

#include <string>

#include <gtest/gtest.h>

#include "src/core/bounds.h"
#include "src/core/entropy.h"
#include "src/core/frequency_counter.h"
#include "src/datagen/generator.h"
#include "src/table/column_view.h"
#include "src/table/shuffle.h"

namespace swope {
namespace {

struct CoverageCase {
  std::string name;
  ColumnSpec spec;
  uint64_t sample_size;
};

class BoundsCoverageTest : public testing::TestWithParam<CoverageCase> {};

TEST_P(BoundsCoverageTest, IntervalCoversEmpiricalEntropy) {
  const CoverageCase& param = GetParam();
  constexpr uint64_t kRows = 16384;
  constexpr double kP = 0.1;
  constexpr int kTrials = 120;

  auto column = GenerateColumn(param.spec, kRows, 101);
  ASSERT_TRUE(column.ok());
  const double truth = ExactEntropy(*column);

  int misses = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto order = ShuffledRowOrder(kRows, 9000 + trial);
    FrequencyCounter counter(column->support());
    std::vector<ValueCode> scratch;
    counter.AddCodes(
        ColumnView(*column).Gather(order, 0, param.sample_size, scratch),
        param.sample_size);
    const EntropyInterval interval =
        MakeEntropyInterval(counter.SampleEntropy(), column->support(),
                            kRows, param.sample_size, kP);
    EXPECT_LE(interval.lower, interval.upper);
    if (truth < interval.lower - 1e-12 || truth > interval.upper + 1e-12) {
      ++misses;
    }
  }
  EXPECT_LE(misses, static_cast<int>(kTrials * kP))
      << param.name << " truth=" << truth;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundsCoverageTest,
    testing::Values(
        CoverageCase{"uniform_small_m", ColumnSpec::Uniform("u", 16), 256},
        CoverageCase{"uniform_large_m", ColumnSpec::Uniform("u", 16), 8192},
        CoverageCase{"zipf_small_m", ColumnSpec::Zipf("z", 200, 1.1), 256},
        CoverageCase{"zipf_large_m", ColumnSpec::Zipf("z", 200, 1.1), 8192},
        CoverageCase{"geometric", ColumnSpec::Geometric("g", 40, 0.25),
                     1024},
        CoverageCase{"two_level", ColumnSpec::TwoLevel("t", 20, 0.95),
                     1024},
        CoverageCase{"near_constant",
                     ColumnSpec::EntropyTargeted("e", 100, 0.1), 1024},
        CoverageCase{"high_entropy",
                     ColumnSpec::EntropyTargeted("e", 512, 8.5), 4096}),
    [](const testing::TestParamInfo<CoverageCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace swope
