// Sketch-path estimation tests: the UsesSketchPath policy, the exact
// path's explicit high-support rejection, the bias-corrected entropy
// band, and the hybrid scorers end to end (sketched and exact candidates
// in one query, deterministic reruns).

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/entropy.h"
#include "src/core/sketch_estimation.h"
#include "src/core/swope_topk_entropy.h"
#include "src/core/swope_topk_mi.h"
#include "src/table/column.h"
#include "src/table/table.h"

namespace swope {
namespace {

// support `u` uniform codes over `rows` rows (exact entropy log2(u) when
// u divides rows).
Column UniformColumn(const std::string& name, uint32_t u, uint64_t rows) {
  std::vector<ValueCode> codes(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    codes[i] = static_cast<ValueCode>(i % u);
  }
  return Column::FromCodes(name, std::move(codes));
}

Table MakeHybridTable(uint32_t high_support, uint64_t rows) {
  std::vector<Column> columns;
  columns.push_back(UniformColumn("hc", high_support, rows));
  columns.push_back(UniformColumn("ctl", 8, rows));
  auto table = Table::Make(std::move(columns));
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return std::move(table).value();
}

TEST(SketchEstimationTest, UsesSketchPathPolicy) {
  QueryOptions options;  // sketch_epsilon = 0, threshold = 1000
  EXPECT_FALSE(UsesSketchPath(500, options));
  EXPECT_FALSE(UsesSketchPath(5000, options));  // disabled, not routed
  options.sketch_epsilon = 0.01;
  EXPECT_FALSE(UsesSketchPath(1000, options));  // at threshold: exact
  EXPECT_TRUE(UsesSketchPath(1001, options));
  options.sketch_threshold = 100;
  EXPECT_TRUE(UsesSketchPath(101, options));
  EXPECT_FALSE(UsesSketchPath(100, options));
}

TEST(SketchEstimationTest, HighSupportIsRejectedWithoutSketches) {
  const Table table = MakeHybridTable(4096, 8192);
  QueryOptions options;
  options.epsilon = 0.1;

  const Status direct = ValidateColumnSupports(table, options);
  EXPECT_TRUE(direct.IsInvalidArgument());
  EXPECT_NE(direct.message().find("'hc'"), std::string::npos)
      << direct.message();
  EXPECT_NE(direct.message().find("4096"), std::string::npos);

  const auto query = SwopeTopKEntropy(table, 2, options);
  ASSERT_FALSE(query.ok());
  EXPECT_TRUE(query.status().IsInvalidArgument());
  EXPECT_NE(query.status().message().find("'hc'"), std::string::npos);

  // Raising the threshold admits the column on the exact path.
  options.sketch_threshold = 5000;
  EXPECT_TRUE(ValidateColumnSupports(table, options).ok());
  // So does enabling the sketch path.
  options.sketch_threshold = 1000;
  options.sketch_epsilon = 0.01;
  EXPECT_TRUE(ValidateColumnSupports(table, options).ok());
}

TEST(SketchEstimationTest, EntropyBandBracketsSmallSupportExactly) {
  // With support below the heavy capacity every value is tracked, so the
  // band collapses around the exact sample entropy.
  QueryOptions options;
  options.sketch_epsilon = 0.005;
  auto provider = MakeQuerySketchProvider(options, /*seed_salt=*/0,
                                          kSketchHeavyCapacity);
  ASSERT_TRUE(provider.ok()) << provider.status().ToString();

  const Column column = UniformColumn("c", 64, 64 * 256);
  std::vector<ValueCode> codes = column.codes();
  provider->AddCodes(codes.data(), codes.size());

  const SketchEntropyEstimate band =
      EstimateSketchEntropy(provider->Summarize(), column.support());
  const double exact = ExactEntropy(column);  // 6 bits
  // The band is a bias-corrected heuristic, not a proven bracket: the
  // collision-noise correction assumes worst-case spreading, so under
  // conservative update it can overshoot by a hair. Allow 0.1 bits.
  EXPECT_LE(band.lower, exact + 0.1);
  EXPECT_GE(band.upper, exact - 0.1);
  EXPECT_NEAR(band.estimate, exact, 0.1);
}

TEST(SketchEstimationTest, HybridTopKEntropyRoutesAndBrackets) {
  const Table table = MakeHybridTable(4096, 4096 * 6);
  QueryOptions options;
  options.epsilon = 0.1;
  options.sketch_epsilon = 0.01;

  auto result = SwopeTopKEntropy(table, 2, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.sketch_candidates, 1u);
  ASSERT_EQ(result->items.size(), 2u);

  for (const AttributeScore& item : result->items) {
    const Column& column = table.column(item.index);
    const double exact = ExactEntropy(column);
    // Sketched intervals are heuristic bands (see
    // EntropyBandBracketsSmallSupportExactly); 0.3 bits of slack on a
    // 12-bit column keeps the check meaningful without overpromising.
    EXPECT_LE(item.lower, exact + 0.3) << column.name();
    EXPECT_GE(item.upper, exact - 0.3) << column.name();
    if (column.name() == "ctl") {
      // The control column stays on the exact path and keeps the paper's
      // additive guarantee.
      EXPECT_EQ(item.index, 1u);
      EXPECT_NEAR(item.estimate, exact, options.epsilon);
    }
  }
  // The high-entropy sketched column must still rank first.
  EXPECT_EQ(result->items[0].index, 0u);
}

TEST(SketchEstimationTest, SketchQueriesAreDeterministic) {
  const Table table = MakeHybridTable(2048, 2048 * 8);
  QueryOptions options;
  options.epsilon = 0.1;
  options.sketch_epsilon = 0.02;
  options.seed = 99;

  auto first = SwopeTopKEntropy(table, 2, options);
  auto second = SwopeTopKEntropy(table, 2, options);
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_EQ(first->items.size(), second->items.size());
  for (size_t i = 0; i < first->items.size(); ++i) {
    EXPECT_EQ(first->items[i].index, second->items[i].index);
    EXPECT_DOUBLE_EQ(first->items[i].estimate, second->items[i].estimate);
    EXPECT_DOUBLE_EQ(first->items[i].lower, second->items[i].lower);
    EXPECT_DOUBLE_EQ(first->items[i].upper, second->items[i].upper);
  }
}

TEST(SketchEstimationTest, MiWithSketchedCandidateRuns) {
  const uint64_t rows = 4096 * 4;
  std::vector<Column> columns;
  columns.push_back(UniformColumn("t", 16, rows));
  // Perfectly informative high-cardinality candidate: its value
  // determines the target's.
  columns.push_back(UniformColumn("hc", 4096, rows));
  columns.push_back(UniformColumn("noise", 8, rows));
  auto made = Table::Make(std::move(columns));
  ASSERT_TRUE(made.ok());
  const Table table = std::move(made).value();

  QueryOptions options;
  options.epsilon = 0.5;
  options.sketch_epsilon = 0.01;
  auto result = SwopeTopKMi(table, /*target=*/0, 2, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.sketch_candidates, 1u);
  ASSERT_EQ(result->items.size(), 2u);
  for (const AttributeScore& item : result->items) {
    EXPECT_TRUE(std::isfinite(item.estimate));
    EXPECT_GE(item.upper + 1e-9, item.lower);
  }
}

}  // namespace
}  // namespace swope
