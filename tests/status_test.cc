#include "src/common/status.h"

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesSetCodeAndMessage) {
  const Status invalid = Status::InvalidArgument("bad k");
  EXPECT_FALSE(invalid.ok());
  EXPECT_TRUE(invalid.IsInvalidArgument());
  EXPECT_EQ(invalid.message(), "bad k");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, PredicatesAreExclusive) {
  const Status status = Status::NotFound("missing");
  EXPECT_FALSE(status.IsInvalidArgument());
  EXPECT_FALSE(status.IsIOError());
  EXPECT_FALSE(status.ok());
}

TEST(StatusTest, ToStringIncludesCategoryAndMessage) {
  EXPECT_EQ(Status::IOError("disk gone").ToString(), "IO error: disk gone");
  EXPECT_EQ(Status(StatusCode::kCorruption, "").ToString(), "Corruption");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "Invalid argument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "Not found");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "Out of range");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IO error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotSupported), "Not supported");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailsThrough() {
  SWOPE_RETURN_NOT_OK(Status::IOError("inner"));
  return Status::Internal("unreachable");
}

Status PassesThrough() {
  SWOPE_RETURN_NOT_OK(Status::OK());
  return Status::Internal("reached");
}

TEST(StatusTest, ReturnNotOkMacroPropagatesErrors) {
  EXPECT_EQ(FailsThrough(), Status::IOError("inner"));
  EXPECT_EQ(PassesThrough(), Status::Internal("reached"));
}

}  // namespace
}  // namespace swope
