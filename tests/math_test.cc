#include "src/common/math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(MathTest, XLog2XConventionAtZero) {
  EXPECT_EQ(XLog2X(0.0), 0.0);
  EXPECT_EQ(XLog2X(-1.0), 0.0);
}

TEST(MathTest, XLog2XKnownValues) {
  EXPECT_DOUBLE_EQ(XLog2X(1.0), 0.0);
  EXPECT_DOUBLE_EQ(XLog2X(2.0), 2.0);
  EXPECT_DOUBLE_EQ(XLog2X(4.0), 8.0);
  EXPECT_NEAR(XLog2X(0.5), -0.5, 1e-12);
}

TEST(MathTest, SafeLog2) {
  EXPECT_DOUBLE_EQ(SafeLog2(8.0), 3.0);
  EXPECT_EQ(SafeLog2(0.0), 0.0);
  EXPECT_EQ(SafeLog2(-2.0), 0.0);
}

TEST(MathTest, EntropyFromCountsUniform) {
  // Four equally frequent values -> 2 bits.
  EXPECT_NEAR(EntropyFromCounts({5, 5, 5, 5}, 20), 2.0, 1e-12);
}

TEST(MathTest, EntropyFromCountsDegenerate) {
  EXPECT_EQ(EntropyFromCounts({10, 0, 0}, 10), 0.0);
  EXPECT_EQ(EntropyFromCounts({}, 0), 0.0);
}

TEST(MathTest, EntropyFromCountsBiasedCoin) {
  // p = 1/4: H = 0.25*2 + 0.75*log2(4/3).
  const double expected = 0.25 * 2.0 + 0.75 * std::log2(4.0 / 3.0);
  EXPECT_NEAR(EntropyFromCounts({1, 3}, 4), expected, 1e-12);
}

TEST(MathTest, EntropyFromXLog2XSumMatchesCounts) {
  const std::vector<uint64_t> counts = {7, 2, 9, 1, 11};
  uint64_t total = 0;
  double sum = 0.0;
  for (uint64_t c : counts) {
    total += c;
    sum += XLog2X(static_cast<double>(c));
  }
  EXPECT_NEAR(EntropyFromXLog2XSum(sum, total),
              EntropyFromCounts(counts, total), 1e-12);
}

TEST(MathTest, EntropyFromXLog2XSumClampsNegativeNoise) {
  // sum slightly above total*log2(total) would give a tiny negative H.
  const double sum = 8.0 * std::log2(8.0) + 1e-9;
  EXPECT_EQ(EntropyFromXLog2XSum(sum, 8), 0.0);
}

TEST(MathTest, XLog2XIncrementMatchesDirectComputation) {
  const std::vector<uint64_t> counts = {
      0,     1,
      2,     100,
      65535, internal_math::kXLog2XTableSize - 1,
      internal_math::kXLog2XTableSize,
      internal_math::kXLog2XTableSize + 77};
  for (uint64_t c : counts) {
    const double expected = XLog2X(static_cast<double>(c + 1)) -
                            XLog2X(static_cast<double>(c));
    EXPECT_NEAR(XLog2XIncrement(c), expected, 1e-12) << "c=" << c;
  }
}

TEST(MathTest, XLog2XIncrementAccumulatesToSum) {
  // Summing increments 0..n-1 must reproduce n*log2(n).
  double sum = 0.0;
  for (uint64_t c = 0; c < 1000; ++c) sum += XLog2XIncrement(c);
  EXPECT_NEAR(sum, XLog2X(1000.0), 1e-9);
}

TEST(MathTest, EntropyOfPmfNormalizes) {
  // Unnormalized uniform weights still give log2(n).
  EXPECT_NEAR(EntropyOfPmf({2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0}), 3.0,
              1e-12);
}

TEST(MathTest, EntropyOfPmfIgnoresNonPositive) {
  EXPECT_NEAR(EntropyOfPmf({0.5, 0.5, 0.0, -1.0}), 1.0, 1e-12);
  EXPECT_EQ(EntropyOfPmf({0.0, 0.0}), 0.0);
  EXPECT_EQ(EntropyOfPmf({}), 0.0);
}

TEST(MathTest, BinaryEntropyEndpointsAndPeak) {
  EXPECT_EQ(BinaryEntropy(0.0), 0.0);
  EXPECT_EQ(BinaryEntropy(1.0), 0.0);
  EXPECT_NEAR(BinaryEntropy(0.5), 1.0, 1e-12);
  EXPECT_EQ(BinaryEntropy(-0.5), 0.0);  // clamped
  EXPECT_EQ(BinaryEntropy(1.5), 0.0);   // clamped
}

TEST(MathTest, BinaryEntropySymmetry) {
  for (double p : {0.1, 0.25, 0.4}) {
    EXPECT_NEAR(BinaryEntropy(p), BinaryEntropy(1.0 - p), 1e-12);
  }
}

TEST(MathTest, Clamp) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathTest, NearlyEqual) {
  EXPECT_TRUE(NearlyEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(NearlyEqual(1.0, 1.1));
  EXPECT_TRUE(NearlyEqual(1.0, 1.05, 0.1));
}

}  // namespace
}  // namespace swope
