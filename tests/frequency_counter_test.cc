#include "src/core/frequency_counter.h"

#include <gtest/gtest.h>

#include "src/common/math.h"
#include "src/core/entropy.h"
#include "src/datagen/generator.h"
#include "src/table/column_view.h"
#include "src/table/shuffle.h"

namespace swope {
namespace {

TEST(FrequencyCounterTest, StartsEmpty) {
  FrequencyCounter counter(4);
  EXPECT_EQ(counter.sample_count(), 0u);
  EXPECT_EQ(counter.distinct_seen(), 0u);
  EXPECT_EQ(counter.SampleEntropy(), 0.0);
}

TEST(FrequencyCounterTest, CountsValues) {
  FrequencyCounter counter(3);
  counter.Add(0);
  counter.Add(2);
  counter.Add(2);
  EXPECT_EQ(counter.sample_count(), 3u);
  EXPECT_EQ(counter.count(0), 1u);
  EXPECT_EQ(counter.count(1), 0u);
  EXPECT_EQ(counter.count(2), 2u);
  EXPECT_EQ(counter.distinct_seen(), 2u);
}

TEST(FrequencyCounterTest, EntropyMatchesBatchFormula) {
  FrequencyCounter counter(4);
  const std::vector<ValueCode> values = {0, 1, 1, 2, 2, 2, 3, 3, 3, 3};
  for (ValueCode v : values) counter.Add(v);
  EXPECT_NEAR(counter.SampleEntropy(),
              EntropyFromCounts({1, 2, 3, 4}, 10), 1e-12);
}

TEST(FrequencyCounterTest, SingleSampleEntropyIsZero) {
  FrequencyCounter counter(5);
  counter.Add(3);
  EXPECT_EQ(counter.SampleEntropy(), 0.0);
}

TEST(FrequencyCounterTest, UniformEntropyIsLog2U) {
  FrequencyCounter counter(8);
  for (int rep = 0; rep < 5; ++rep) {
    for (ValueCode v = 0; v < 8; ++v) counter.Add(v);
  }
  EXPECT_NEAR(counter.SampleEntropy(), 3.0, 1e-12);
}

TEST(FrequencyCounterTest, IncrementalMatchesRecomputeAtEveryStep) {
  auto column = GenerateColumn(ColumnSpec::Zipf("z", 12, 1.0), 300, 3);
  ASSERT_TRUE(column.ok());
  FrequencyCounter counter(12);
  std::vector<uint64_t> counts(12, 0);
  for (uint64_t r = 0; r < column->size(); ++r) {
    counter.Add(column->code(r));
    ++counts[column->code(r)];
    ASSERT_NEAR(counter.SampleEntropy(), EntropyFromCounts(counts, r + 1),
                1e-9)
        << "step " << r;
  }
}

TEST(FrequencyCounterTest, GatheredAddCodesMatchesManualAdds) {
  auto column = GenerateColumn(ColumnSpec::Uniform("u", 6), 1000, 5);
  ASSERT_TRUE(column.ok());
  const auto order = ShuffledRowOrder(1000, 11);
  const ColumnView view(*column);
  std::vector<ValueCode> scratch;

  FrequencyCounter batched(6);
  batched.AddCodes(view.Gather(order, 0, 400, scratch), 400);
  batched.AddCodes(view.Gather(order, 400, 1000, scratch), 600);

  FrequencyCounter manual(6);
  for (uint32_t i = 0; i < 1000; ++i) manual.Add(column->code(order[i]));

  EXPECT_EQ(batched.sample_count(), manual.sample_count());
  EXPECT_NEAR(batched.SampleEntropy(), manual.SampleEntropy(), 1e-12);
  for (uint32_t v = 0; v < 6; ++v) {
    EXPECT_EQ(batched.count(v), manual.count(v));
  }
}

TEST(FrequencyCounterTest, FullPrefixEqualsExactEntropy) {
  auto column = GenerateColumn(ColumnSpec::Geometric("g", 9, 0.3), 5000, 7);
  ASSERT_TRUE(column.ok());
  const auto order = ShuffledRowOrder(5000, 13);
  const ColumnView view(*column);
  std::vector<ValueCode> scratch;
  FrequencyCounter counter(9);
  counter.AddCodes(view.Gather(order, 0, 5000, scratch), 5000);
  EXPECT_NEAR(counter.SampleEntropy(), ExactEntropy(*column), 1e-9);
}

TEST(FrequencyCounterTest, ResetForgets) {
  FrequencyCounter counter(3);
  counter.Add(1);
  counter.Add(2);
  counter.Reset();
  EXPECT_EQ(counter.sample_count(), 0u);
  EXPECT_EQ(counter.count(1), 0u);
  EXPECT_EQ(counter.distinct_seen(), 0u);
  EXPECT_EQ(counter.SampleEntropy(), 0.0);
  counter.Add(0);
  counter.Add(1);
  EXPECT_NEAR(counter.SampleEntropy(), 1.0, 1e-12);
}

}  // namespace
}  // namespace swope
