#include "src/datagen/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/math.h"

namespace swope {
namespace {

TEST(DistributionsTest, UniformPmfAndEntropy) {
  const auto dist = CategoricalDistribution::Uniform(8);
  EXPECT_EQ(dist.support(), 8u);
  for (double p : dist.pmf()) EXPECT_NEAR(p, 0.125, 1e-12);
  EXPECT_NEAR(dist.Entropy(), 3.0, 1e-12);
}

TEST(DistributionsTest, FromWeightsNormalizes) {
  auto dist = CategoricalDistribution::FromWeights({1.0, 3.0});
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->pmf()[0], 0.25, 1e-12);
  EXPECT_NEAR(dist->pmf()[1], 0.75, 1e-12);
}

TEST(DistributionsTest, FromWeightsRejectsBadInput) {
  EXPECT_FALSE(CategoricalDistribution::FromWeights({}).ok());
  EXPECT_FALSE(CategoricalDistribution::FromWeights({1.0, -0.5}).ok());
  EXPECT_FALSE(CategoricalDistribution::FromWeights({0.0, 0.0}).ok());
  EXPECT_FALSE(
      CategoricalDistribution::FromWeights({1.0, std::nan("")}).ok());
}

TEST(DistributionsTest, ZipfIsDecreasingAndZipfZeroIsUniform) {
  const auto zipf = CategoricalDistribution::Zipf(10, 1.0);
  for (uint32_t i = 1; i < 10; ++i) {
    EXPECT_GT(zipf.pmf()[i - 1], zipf.pmf()[i]);
  }
  const auto flat = CategoricalDistribution::Zipf(10, 0.0);
  for (double p : flat.pmf()) EXPECT_NEAR(p, 0.1, 1e-12);
}

TEST(DistributionsTest, ZipfRatioMatchesExponent) {
  const auto zipf = CategoricalDistribution::Zipf(4, 2.0);
  EXPECT_NEAR(zipf.pmf()[0] / zipf.pmf()[1], 4.0, 1e-9);
  EXPECT_NEAR(zipf.pmf()[0] / zipf.pmf()[3], 16.0, 1e-9);
}

TEST(DistributionsTest, GeometricDecays) {
  const auto geo = CategoricalDistribution::Geometric(6, 0.5);
  for (uint32_t i = 1; i < 6; ++i) {
    EXPECT_NEAR(geo.pmf()[i] / geo.pmf()[i - 1], 0.5, 1e-9);
  }
}

TEST(DistributionsTest, TwoLevelHeadMass) {
  const auto two = CategoricalDistribution::TwoLevel(5, 0.8);
  EXPECT_NEAR(two.pmf()[0], 0.8, 1e-12);
  for (uint32_t i = 1; i < 5; ++i) EXPECT_NEAR(two.pmf()[i], 0.05, 1e-12);
}

TEST(DistributionsTest, TwoLevelSingleValue) {
  const auto one = CategoricalDistribution::TwoLevel(1, 0.8);
  EXPECT_EQ(one.support(), 1u);
  EXPECT_NEAR(one.pmf()[0], 1.0, 1e-12);
}

TEST(DistributionsTest, EntropyTargetedHitsTarget) {
  for (double target : {0.1, 0.5, 1.0, 2.5, 4.0, 6.0}) {
    const auto dist = CategoricalDistribution::EntropyTargeted(100, target);
    EXPECT_NEAR(dist.Entropy(), target, 1e-6) << "target " << target;
  }
}

TEST(DistributionsTest, EntropyTargetedClampsToRange) {
  const auto low = CategoricalDistribution::EntropyTargeted(16, -1.0);
  EXPECT_NEAR(low.Entropy(), 0.0, 1e-9);
  const auto high = CategoricalDistribution::EntropyTargeted(16, 99.0);
  EXPECT_NEAR(high.Entropy(), 4.0, 1e-9);
}

TEST(DistributionsTest, SampleStaysInSupport) {
  const auto dist = CategoricalDistribution::Zipf(7, 1.2);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(dist.Sample(rng), 7u);
}

TEST(DistributionsTest, SampleFrequenciesMatchPmf) {
  const auto dist = CategoricalDistribution::Zipf(5, 1.0);
  Rng rng(9);
  constexpr int kDraws = 200000;
  std::vector<int> counts(5, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[dist.Sample(rng)];
  for (uint32_t v = 0; v < 5; ++v) {
    const double expected = dist.pmf()[v] * kDraws;
    EXPECT_NEAR(counts[v], expected, 5 * std::sqrt(expected) + 5)
        << "value " << v;
  }
}

TEST(DistributionsTest, SampleManyMatchesRepeatedSample) {
  const auto dist = CategoricalDistribution::Geometric(8, 0.3);
  Rng rng_a(77);
  Rng rng_b(77);
  const auto many = dist.SampleMany(100, rng_a);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(many[i], dist.Sample(rng_b));
  }
}

TEST(DistributionsTest, PointMassSamplesConstant) {
  const auto dist = CategoricalDistribution::EntropyTargeted(10, 0.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.Sample(rng), 0u);
}

}  // namespace
}  // namespace swope
