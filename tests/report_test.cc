#include "src/eval/report.h"

#include <sstream>

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(ReportTest, MarkdownLayout) {
  ReportTable table({"k", "time"});
  table.AddRow({"1", "10.5"});
  table.AddRow({"2", "20.25"});
  std::ostringstream out;
  table.PrintMarkdown(out);
  const std::string expected =
      "| k | time  |\n"
      "|---|-------|\n"
      "| 1 | 10.5  |\n"
      "| 2 | 20.25 |\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(ReportTest, ShortRowsArePadded) {
  ReportTable table({"a", "b", "c"});
  table.AddRow({"1"});
  std::ostringstream out;
  table.PrintMarkdown(out);
  EXPECT_NE(out.str().find("| 1 |   |   |"), std::string::npos);
}

TEST(ReportTest, CsvOutput) {
  ReportTable table({"x", "y"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "x,y\n1,2\n3,4\n");
}

TEST(ReportTest, FormatDouble) {
  EXPECT_EQ(ReportTable::FormatDouble(1.23456, 3), "1.235");
  EXPECT_EQ(ReportTable::FormatDouble(2.0, 1), "2.0");
  EXPECT_EQ(ReportTable::FormatDouble(-0.5, 2), "-0.50");
}

TEST(ReportTest, FormatMillisScalesPrecision) {
  EXPECT_EQ(ReportTable::FormatMillis(0.0012345), "1.234");  // 1.2345 ms
  EXPECT_EQ(ReportTable::FormatMillis(0.150), "150.0");
  EXPECT_EQ(ReportTable::FormatMillis(2.5), "2500");
}

TEST(ReportTest, NumRows) {
  ReportTable table({"h"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
}

}  // namespace
}  // namespace swope
