#include "src/core/query_options.h"

#include <cmath>

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(QueryOptionsTest, DefaultsAreValid) {
  QueryOptions options;
  EXPECT_TRUE(options.Validate().ok());
  EXPECT_DOUBLE_EQ(options.epsilon, 0.1);
  EXPECT_DOUBLE_EQ(options.growth_factor, 2.0);
}

TEST(QueryOptionsTest, RejectsBadEpsilon) {
  QueryOptions options;
  options.epsilon = 0.0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options.epsilon = 1.0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options.epsilon = -0.5;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options.epsilon = 0.999;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(QueryOptionsTest, RejectsBadFailureProbability) {
  QueryOptions options;
  options.failure_probability = 1.0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options.failure_probability = -0.1;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options.failure_probability = 0.0;  // selects 1/N default
  EXPECT_TRUE(options.Validate().ok());
}

TEST(QueryOptionsTest, RejectsBadGrowthFactor) {
  QueryOptions options;
  options.growth_factor = 1.0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options.growth_factor = 0.5;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options.growth_factor = 1.5;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(QueryOptionsTest, EpsilonOpenIntervalBoundaries) {
  // (0, 1) is open on both ends, but anything strictly inside is fine --
  // including the closest representable neighbours of the endpoints.
  QueryOptions options;
  options.epsilon = std::nextafter(0.0, 1.0);
  EXPECT_TRUE(options.Validate().ok());
  options.epsilon = std::nextafter(1.0, 0.0);
  EXPECT_TRUE(options.Validate().ok());
  options.epsilon = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
}

TEST(QueryOptionsTest, GrowthFactorExactlyOneIsRejected) {
  QueryOptions options;
  options.growth_factor = 1.0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options.growth_factor = std::nextafter(1.0, 2.0);
  EXPECT_TRUE(options.Validate().ok());
  options.growth_factor = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
}

TEST(QueryOptionsTest, FailureProbabilityBoundaries) {
  QueryOptions options;
  options.failure_probability = std::nextafter(1.0, 0.0);
  EXPECT_TRUE(options.Validate().ok());
  options.failure_probability = std::nextafter(0.0, -1.0);
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options.failure_probability = -1e-300;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
}

TEST(QueryOptionsTest, EngineHooksDefaultNull) {
  // shared_order / control are engine-managed; default-constructed
  // options must not carry them (QuerySpec::Validate relies on this).
  QueryOptions options;
  EXPECT_EQ(options.shared_order, nullptr);
  EXPECT_EQ(options.control, nullptr);
}

TEST(QueryOptionsTest, RejectsZeroDensePairLimit) {
  QueryOptions options;
  options.dense_pair_limit = 0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
}

TEST(QueryOptionsTest, ResolveFailureProbabilityDefaultsToOneOverN) {
  QueryOptions options;
  EXPECT_DOUBLE_EQ(options.ResolveFailureProbability(1000), 1e-3);
  // Tiny tables are clamped away from the vacuous p_f = 1.
  EXPECT_DOUBLE_EQ(options.ResolveFailureProbability(1), 0.5);
}

TEST(QueryOptionsTest, ResolveFailureProbabilityHonorsExplicit) {
  QueryOptions options;
  options.failure_probability = 0.05;
  EXPECT_DOUBLE_EQ(options.ResolveFailureProbability(1000), 0.05);
}

TEST(QueryOptionsTest, ResolveFailureProbabilityIsFloored) {
  QueryOptions options;
  EXPECT_GE(options.ResolveFailureProbability(~0ULL), 1e-12);
}

}  // namespace
}  // namespace swope
