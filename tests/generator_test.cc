#include "src/datagen/generator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/entropy.h"

namespace swope {
namespace {

TEST(GeneratorTest, ColumnSpecFactories) {
  const auto uniform = ColumnSpec::Uniform("u", 4);
  EXPECT_EQ(uniform.family, ColumnFamily::kUniform);
  EXPECT_EQ(uniform.support, 4u);

  const auto zipf = ColumnSpec::Zipf("z", 10, 1.1);
  EXPECT_EQ(zipf.family, ColumnFamily::kZipf);
  EXPECT_DOUBLE_EQ(zipf.param, 1.1);

  EXPECT_EQ(ColumnSpec::Geometric("g", 5, 0.2).family,
            ColumnFamily::kGeometric);
  EXPECT_EQ(ColumnSpec::TwoLevel("t", 5, 0.9).family,
            ColumnFamily::kTwoLevel);
  EXPECT_EQ(ColumnSpec::EntropyTargeted("e", 5, 1.5).family,
            ColumnFamily::kEntropyTargeted);
}

TEST(GeneratorTest, FamilyNames) {
  EXPECT_EQ(ColumnFamilyToString(ColumnFamily::kUniform), "uniform");
  EXPECT_EQ(ColumnFamilyToString(ColumnFamily::kZipf), "zipf");
  EXPECT_EQ(ColumnFamilyToString(ColumnFamily::kGeometric), "geometric");
  EXPECT_EQ(ColumnFamilyToString(ColumnFamily::kTwoLevel), "two_level");
  EXPECT_EQ(ColumnFamilyToString(ColumnFamily::kEntropyTargeted),
            "entropy_targeted");
}

TEST(GeneratorTest, GenerateColumnShape) {
  auto column = GenerateColumn(ColumnSpec::Uniform("u", 6), 5000, 1);
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(column->size(), 5000u);
  EXPECT_EQ(column->support(), 6u);
  EXPECT_EQ(column->name(), "u");
  for (uint64_t r = 0; r < column->size(); ++r) {
    ASSERT_LT(column->code(r), 6u);
  }
}

TEST(GeneratorTest, GenerateColumnRejectsZeroSupport) {
  ColumnSpec bad = ColumnSpec::Uniform("b", 0);
  EXPECT_FALSE(GenerateColumn(bad, 10, 1).ok());
}

TEST(GeneratorTest, GenerateColumnDeterministicInSeed) {
  auto a = GenerateColumn(ColumnSpec::Zipf("z", 20, 1.0), 1000, 5);
  auto b = GenerateColumn(ColumnSpec::Zipf("z", 20, 1.0), 1000, 5);
  auto c = GenerateColumn(ColumnSpec::Zipf("z", 20, 1.0), 1000, 6);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->codes(), b->codes());
  EXPECT_NE(a->codes(), c->codes());
}

TEST(GeneratorTest, EmpiricalEntropyNearDistributionEntropy) {
  const ColumnSpec spec = ColumnSpec::EntropyTargeted("e", 64, 3.0);
  auto column = GenerateColumn(spec, 200000, 11);
  ASSERT_TRUE(column.ok());
  EXPECT_NEAR(ExactEntropy(*column), 3.0, 0.05);
}

TEST(GeneratorTest, GenerateTableShapeAndDeterminism) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 2000;
  spec.seed = 3;
  spec.columns = {ColumnSpec::Uniform("a", 4), ColumnSpec::Zipf("b", 50, 1.0),
                  ColumnSpec::TwoLevel("c", 10, 0.9)};
  auto table = GenerateTable(spec);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2000u);
  EXPECT_EQ(table->num_columns(), 3u);
  EXPECT_EQ(table->MaxSupport(), 50u);

  auto again = GenerateTable(spec);
  ASSERT_TRUE(again.ok());
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(table->column(c).codes(), again->column(c).codes());
  }
}

TEST(GeneratorTest, ColumnsGetIndependentStreams) {
  TableSpec spec;
  spec.num_rows = 1000;
  spec.seed = 4;
  spec.columns = {ColumnSpec::Uniform("a", 16), ColumnSpec::Uniform("b", 16)};
  auto table = GenerateTable(spec);
  ASSERT_TRUE(table.ok());
  EXPECT_NE(table->column(0).codes(), table->column(1).codes());
}

TEST(GeneratorTest, GenerateTablePropagatesColumnErrors) {
  TableSpec spec;
  spec.num_rows = 10;
  spec.columns = {ColumnSpec::Uniform("ok", 2), ColumnSpec::Uniform("bad", 0)};
  EXPECT_FALSE(GenerateTable(spec).ok());
}

}  // namespace
}  // namespace swope
