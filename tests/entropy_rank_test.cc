#include "src/baselines/entropy_rank.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/core/entropy.h"
#include "src/core/swope_topk_entropy.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeEntropyTable;

std::set<size_t> IndicesOf(const TopKResult& result) {
  std::set<size_t> indices;
  for (const auto& item : result.items) indices.insert(item.index);
  return indices;
}

std::set<size_t> ExactTopKSet(const Table& table, size_t k) {
  const auto scores = ExactEntropies(table);
  std::vector<size_t> order(scores.size());
  for (size_t j = 0; j < order.size(); ++j) order[j] = j;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  return {order.begin(), order.begin() + std::min(k, order.size())};
}

TEST(EntropyRankTest, ReturnsExactTopKSet) {
  const Table table =
      MakeEntropyTable({3.0, 1.0, 4.0, 2.0, 5.0, 0.5}, 30000, 1);
  for (size_t k : {1, 2, 3, 4}) {
    auto result = EntropyRankTopK(table, k);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(IndicesOf(*result), ExactTopKSet(table, k)) << "k=" << k;
  }
}

TEST(EntropyRankTest, RejectsBadArguments) {
  const Table table = MakeEntropyTable({1.0}, 100, 2);
  EXPECT_TRUE(EntropyRankTopK(table, 0).status().IsInvalidArgument());
  auto empty = Table::Make({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(EntropyRankTopK(*empty, 1).status().IsInvalidArgument());
}

TEST(EntropyRankTest, KEqualsColumnCountStopsImmediately) {
  const Table table = MakeEntropyTable({1.0, 2.0, 3.0}, 50000, 3);
  auto result = EntropyRankTopK(table, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items.size(), 3u);
  // All candidates are the answer; no separation work is needed.
  EXPECT_EQ(result->stats.iterations, 1u);
}

TEST(EntropyRankTest, SmallGapForcesMoreSamplesThanSwope) {
  // Adjacent scores around the k/k+1 boundary: EntropyRank must separate
  // them exactly while SWOPE may stop as soon as its relative rule fires.
  const Table table =
      MakeEntropyTable({4.00, 3.97, 3.94, 1.0, 0.5}, 150000, 4);
  QueryOptions options;
  options.epsilon = 0.2;
  auto swope = SwopeTopKEntropy(table, 2, options);
  auto rank = EntropyRankTopK(table, 2, options);
  ASSERT_TRUE(swope.ok());
  ASSERT_TRUE(rank.ok());
  EXPECT_LT(swope->stats.final_sample_size, rank->stats.final_sample_size);
}

TEST(EntropyRankTest, ExhaustsDatasetWhenScoresTie) {
  // Two identical columns: Delta = 0 at the k boundary, so the baseline
  // must scan everything (M = N) before it can stop.
  auto shared = GenerateColumn(ColumnSpec::Uniform("x", 16), 20000, 5);
  ASSERT_TRUE(shared.ok());
  std::vector<Column> columns;
  auto a = Column::Make("a", 16, shared->codes());
  auto b = Column::Make("b", 16, shared->codes());
  auto c = GenerateColumn(ColumnSpec::EntropyTargeted("c", 16, 0.5), 20000, 6);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  columns.push_back(std::move(a).value());
  columns.push_back(std::move(b).value());
  columns.push_back(std::move(c).value());
  auto table = Table::Make(std::move(columns));
  ASSERT_TRUE(table.ok());

  auto result = EntropyRankTopK(*table, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.exhausted_dataset);
  // At M = N the bounds collapse and the tie is resolved arbitrarily but
  // exactly: either of the two identical columns is a correct answer.
  EXPECT_TRUE(result->items[0].index == 0 || result->items[0].index == 1);
}

TEST(EntropyRankTest, DeterministicInSeed) {
  const Table table = MakeEntropyTable({2.0, 4.0, 3.0}, 20000, 7);
  QueryOptions options;
  options.seed = 123;
  auto a = EntropyRankTopK(table, 2, options);
  auto b = EntropyRankTopK(table, 2, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(IndicesOf(*a), IndicesOf(*b));
  EXPECT_EQ(a->stats.final_sample_size, b->stats.final_sample_size);
}

TEST(EntropyRankTest, ItemsSortedByLowerBound) {
  const Table table = MakeEntropyTable({1.0, 5.0, 3.0, 4.0}, 30000, 8);
  auto result = EntropyRankTopK(table, 4);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->items.size(); ++i) {
    EXPECT_GE(result->items[i - 1].lower, result->items[i].lower);
  }
}

}  // namespace
}  // namespace swope
