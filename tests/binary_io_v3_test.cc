// SWPB v3 (sketch sidecar) format tests: writer version selection,
// sidecar round trips, a byte-for-byte checked-in fixture, and
// corrupted-sidecar rejection.

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/table/binary_io.h"
#include "src/table/column.h"
#include "src/table/sketch_sidecar.h"
#include "src/table/table.h"

namespace swope {
namespace {

Table MakeSketchedTable() {
  std::vector<ValueCode> high, low;
  for (uint32_t i = 0; i < 6000; ++i) {
    high.push_back(i % 1400);
    low.push_back(i % 6);
  }
  std::vector<Column> columns;
  columns.push_back(Column::FromCodes("hc", std::move(high)));
  columns.push_back(Column::FromCodes("lo", std::move(low)));
  auto table = Table::Make(std::move(columns));
  EXPECT_TRUE(table.ok());
  auto sketched = AttachSketches(*table, /*epsilon=*/0.01, /*delta=*/0.01,
                                 /*min_support=*/1000, /*seed=*/11);
  EXPECT_TRUE(sketched.ok()) << sketched.status().ToString();
  return std::move(sketched).value();
}

std::string Serialize(const Table& table) {
  std::stringstream buffer;
  EXPECT_TRUE(WriteBinaryTable(table, buffer).ok());
  return buffer.str();
}

TEST(BinaryIoV3Test, WriterPicksVersionBySketchPresence) {
  const Table sketched = MakeSketchedTable();
  EXPECT_EQ(static_cast<uint8_t>(Serialize(sketched)[4]), 3);

  // Dropping the only sketched column leaves a sketch-free table, which
  // must keep writing byte-compatible v2.
  const Table plain = sketched.DropHighSupportColumns(1000);
  EXPECT_EQ(plain.SketchMemoryBytes(), 0u);
  EXPECT_EQ(static_cast<uint8_t>(Serialize(plain)[4]), 2);
}

TEST(BinaryIoV3Test, SidecarRoundTripsBitwise) {
  const Table table = MakeSketchedTable();
  std::stringstream stream(Serialize(table));
  auto loaded = ReadBinaryTable(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->num_columns(), table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& original = table.column(c);
    const Column& roundtrip = loaded->column(c);
    EXPECT_EQ(roundtrip.codes(), original.codes());
    ASSERT_EQ(roundtrip.has_sketch(), original.has_sketch());
    if (!original.has_sketch()) continue;
    const CountMinSketch& a = *original.sketch();
    const CountMinSketch& b = *roundtrip.sketch();
    ASSERT_TRUE(a.SameShape(b));
    EXPECT_EQ(a.total_count(), b.total_count());
    EXPECT_EQ(std::memcmp(a.counters(), b.counters(),
                          a.num_counters() * sizeof(uint64_t)),
              0);
  }
  EXPECT_EQ(loaded->SketchMemoryBytes(), table.SketchMemoryBytes());

  // A second serialization is byte-identical (deterministic sidecars).
  EXPECT_EQ(Serialize(*loaded), Serialize(table));
}

// A complete version-3 image, checked in byte for byte: one label-less
// column "a" (support 2, codes {1, 0, 1}) carrying a depth-1 width-8
// sidecar with seed 7, total count 3 and row counters {2, 1, 0, ...}.
std::vector<uint8_t> V3Fixture() {
  return {
      'S', 'W', 'P', 'B',              // magic
      3,   0,   0,   0,                // version = 3
      3,   0,   0,   0,   0, 0, 0, 0,  // num_rows = 3
      1,   0,   0,   0,                // num_columns = 1
      1,   0,   0,   0,                // name_len = 1
      'a',                             // name
      2,   0,   0,   0,                // support = 2
      0,                               // has_labels = 0
      1,                               // packed width = 1 bit
      5,   0,   0,   0,   0, 0, 0, 0,  // packed word: codes 1,0,1
      1,                               // has_sketch = 1
      1,   0,   0,   0,                // sketch depth = 1
      8,   0,   0,   0,                // sketch width = 8
      7,   0,   0,   0,   0, 0, 0, 0,  // sketch seed = 7
      3,   0,   0,   0,   0, 0, 0, 0,  // total_count = 3
      2,   0,   0,   0,   0, 0, 0, 0,  // counters[0] = 2
      1,   0,   0,   0,   0, 0, 0, 0,  // counters[1] = 1
      0,   0,   0,   0,   0, 0, 0, 0,  // counters[2..7] = 0
      0,   0,   0,   0,   0, 0, 0, 0,
      0,   0,   0,   0,   0, 0, 0, 0,
      0,   0,   0,   0,   0, 0, 0, 0,
      0,   0,   0,   0,   0, 0, 0, 0,
      0,   0,   0,   0,   0, 0, 0, 0,
  };
}

std::string FixtureString(const std::vector<uint8_t>& bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

TEST(BinaryIoV3Test, CheckedInFixtureReadsBack) {
  std::stringstream stream(FixtureString(V3Fixture()));
  auto loaded = ReadBinaryTable(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_columns(), 1u);
  const Column& column = loaded->column(0);
  EXPECT_EQ(column.name(), "a");
  EXPECT_EQ(column.support(), 2u);
  EXPECT_EQ(column.codes(), (std::vector<ValueCode>{1, 0, 1}));
  ASSERT_TRUE(column.has_sketch());
  EXPECT_EQ(column.sketch()->depth(), 1u);
  EXPECT_EQ(column.sketch()->width(), 8u);
  EXPECT_EQ(column.sketch()->seed(), 7u);
  EXPECT_EQ(column.sketch()->total_count(), 3u);
  EXPECT_EQ(column.sketch()->counters()[0], 2u);
  EXPECT_EQ(column.sketch()->counters()[1], 1u);
}

TEST(BinaryIoV3Test, CorruptedSidecarIsRejected) {
  const std::vector<uint8_t> fixture = V3Fixture();

  {
    // Inflate a counter's high byte: the row sum blows past total_count,
    // violating the conservative-update invariant.
    std::vector<uint8_t> mutated = fixture;
    mutated[71] = 0xFF;  // counters[0], most significant byte
    std::stringstream stream(FixtureString(mutated));
    const Status status = ReadBinaryTable(stream).status();
    EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  }
  {
    // The has_sketch flag must be 0 or 1.
    std::vector<uint8_t> mutated = fixture;
    mutated[39] = 2;
    std::stringstream stream(FixtureString(mutated));
    EXPECT_FALSE(ReadBinaryTable(stream).ok());
  }
  {
    // An absurd sketch width must be rejected before any allocation.
    std::vector<uint8_t> mutated = fixture;
    mutated[44] = 0xFF;
    mutated[45] = 0xFF;
    mutated[46] = 0xFF;
    mutated[47] = 0xFF;
    std::stringstream stream(FixtureString(mutated));
    EXPECT_FALSE(ReadBinaryTable(stream).ok());
  }
  {
    // Truncation inside the sidecar.
    std::stringstream stream(FixtureString(fixture).substr(0, 100));
    EXPECT_FALSE(ReadBinaryTable(stream).ok());
  }
}

}  // namespace
}  // namespace swope
