// Stress for the sharded execution path: many concurrent queries, each
// fanning (candidate x shard) tasks onto the shared intra-query pool, in
// both scheduling modes. Must stay clean under TSan
// (SWOPE_SANITIZE=thread) and, per docs/SHARDING.md, every racing copy
// of a spec must produce bitwise-identical answers -- in both modes and
// at every shard geometry.

#include <future>
#include <memory_resource>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/engine/query_engine.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeEntropyTable;
using test::MakeMiTable;

QuerySpec MakeSpec(const std::string& dataset, QueryKind kind,
                   uint64_t seed) {
  QuerySpec spec;
  spec.dataset = dataset;
  spec.kind = kind;
  spec.options.seed = seed;
  if (IsTopKKind(kind)) {
    spec.k = 2;
  } else {
    spec.eta = kind == QueryKind::kNmiFilter ? 0.2 : 0.3;
  }
  if (NeedsTarget(kind)) spec.target = "t";
  return spec;
}

void ExpectIdenticalItems(std::span<const AttributeScore> expected,
                          std::span<const AttributeScore> actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].index, actual[i].index);
    EXPECT_EQ(expected[i].estimate, actual[i].estimate);
    EXPECT_EQ(expected[i].lower, actual[i].lower);
    EXPECT_EQ(expected[i].upper, actual[i].upper);
  }
}

// Runs a burst of 4 racing copies of each of the six query kinds on an
// engine whose datasets are split into ~6 shards, and returns one
// representative answer per kind after asserting all copies agree
// bitwise. Caching is disabled so every copy truly executes and races
// the others for shard tasks on the shared pool.
std::vector<std::pmr::vector<AttributeScore>> RunBurst(PoolMode mode) {
  EngineConfig config;
  config.num_threads = 6;
  config.intra_query_threads = 4;
  config.pool_mode = mode;
  config.shard_size = 512;  // 3000 rows -> 6 shards, last one ragged
  config.max_in_flight = 4;
  config.max_in_flight_tasks = 12;  // task-weighted admission in play
  config.result_cache_capacity = 0;
  QueryEngine engine(config);
  EXPECT_TRUE(
      engine.RegisterDataset("ent", MakeEntropyTable({5.0, 3.0, 1.0}, 3000, 1))
          .ok());
  EXPECT_TRUE(
      engine.RegisterDataset("mi", MakeMiTable({0.2, 0.7, 0.5}, 3000, 2))
          .ok());

  const QueryKind kinds[] = {QueryKind::kEntropyTopK,
                             QueryKind::kEntropyFilter,
                             QueryKind::kMiTopK,
                             QueryKind::kMiFilter,
                             QueryKind::kNmiTopK,
                             QueryKind::kNmiFilter};
  constexpr int kCopies = 4;
  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int copy = 0; copy < kCopies; ++copy) {
    for (QueryKind kind : kinds) {
      const std::string dataset = NeedsTarget(kind) ? "mi" : "ent";
      futures.push_back(engine.Submit(MakeSpec(dataset, kind, 7)));
    }
  }

  std::vector<std::pmr::vector<AttributeScore>> per_kind(6);
  for (size_t i = 0; i < futures.size(); ++i) {
    auto response = futures[i].get();
    EXPECT_TRUE(response.ok())
        << "query #" << i << ": " << response.status().ToString();
    if (!response.ok()) continue;
    const size_t kind_index = i % 6;
    if (i < 6) {
      per_kind[kind_index] = response->items;
    } else {
      // Every racing copy of the same spec agrees bitwise.
      ExpectIdenticalItems(per_kind[kind_index], response->items);
    }
  }
  const EngineCounters counters = engine.GetCounters();
  EXPECT_EQ(counters.queries_ok, futures.size());
  EXPECT_EQ(counters.queries_failed, 0u);
  return per_kind;
}

// The burst is clean and internally consistent in both scheduling
// modes, and the two modes agree with each other bitwise: scheduling is
// invisible in the answers.
TEST(ShardTaskStressTest, ConcurrentShardedQueriesBothPoolModes) {
  const auto stealing = RunBurst(PoolMode::kWorkStealing);
  const auto single_queue = RunBurst(PoolMode::kSingleQueue);
  ASSERT_EQ(stealing.size(), single_queue.size());
  for (size_t kind = 0; kind < stealing.size(); ++kind) {
    ExpectIdenticalItems(stealing[kind], single_queue[kind]);
  }
}

// Shard geometry is invisible too: the same racing burst over 1-shard
// tables produces the same answers as the 6-shard run.
TEST(ShardTaskStressTest, ShardGeometryDoesNotLeakIntoAnswers) {
  const auto sharded = RunBurst(PoolMode::kWorkStealing);

  EngineConfig config;
  config.num_threads = 6;
  config.intra_query_threads = 4;
  config.shard_size = 0;  // keep the tables' native single-shard layout
  config.result_cache_capacity = 0;
  QueryEngine engine(config);
  ASSERT_TRUE(
      engine.RegisterDataset("ent", MakeEntropyTable({5.0, 3.0, 1.0}, 3000, 1))
          .ok());
  ASSERT_TRUE(
      engine.RegisterDataset("mi", MakeMiTable({0.2, 0.7, 0.5}, 3000, 2))
          .ok());
  const QueryKind kinds[] = {QueryKind::kEntropyTopK,
                             QueryKind::kEntropyFilter,
                             QueryKind::kMiTopK,
                             QueryKind::kMiFilter,
                             QueryKind::kNmiTopK,
                             QueryKind::kNmiFilter};
  for (size_t i = 0; i < 6; ++i) {
    const std::string dataset = NeedsTarget(kinds[i]) ? "mi" : "ent";
    auto response = engine.Run(MakeSpec(dataset, kinds[i], 7));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ExpectIdenticalItems(sharded[i], response->items);
  }
}

}  // namespace
}  // namespace swope
