// Streaming append tests: PackedCodes::Append across width boundaries,
// AppendRowsToTable dictionary/support growth, validation failures, and
// incremental sketch sidecar maintenance (the appended sidecar must be
// bitwise identical to one rebuilt from scratch).

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/table/append.h"
#include "src/table/column.h"
#include "src/table/packed_codes.h"
#include "src/table/sketch_sidecar.h"
#include "src/table/table.h"
#include "src/table/table_builder.h"

namespace swope {
namespace {

Table MakeLabeledTable() {
  auto builder = TableBuilder::Make({"city", "size"});
  EXPECT_TRUE(builder.ok());
  for (const auto& row : std::vector<std::vector<std::string>>{
           {"oslo", "small"},
           {"lima", "large"},
           {"oslo", "large"},
       }) {
    EXPECT_TRUE(builder->AppendRow(row).ok());
  }
  auto table = std::move(*builder).Finish();
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return std::move(table).value();
}

TEST(PackedCodesAppendTest, SameWidthExtendsInPlaceShape) {
  const std::vector<ValueCode> head = {0, 5, 3, 7, 1, 6, 2, 4, 7, 0};
  const std::vector<ValueCode> tail = {6, 6, 1};
  PackedCodes packed = PackedCodes::Pack(head, 3);
  const PackedCodes appended = packed.Append(tail, 3);

  std::vector<ValueCode> expected = head;
  expected.insert(expected.end(), tail.begin(), tail.end());
  EXPECT_EQ(appended.size(), expected.size());
  EXPECT_EQ(appended.width(), 3u);
  EXPECT_EQ(appended.ToVector(), expected);
}

TEST(PackedCodesAppendTest, WidthGrowthRepacks) {
  std::vector<ValueCode> head;
  for (uint32_t i = 0; i < 100; ++i) head.push_back(i % 4);
  const std::vector<ValueCode> tail = {9, 15, 4};
  PackedCodes packed = PackedCodes::Pack(head, 2);
  const PackedCodes appended = packed.Append(tail, 4);

  std::vector<ValueCode> expected = head;
  expected.insert(expected.end(), tail.begin(), tail.end());
  EXPECT_EQ(appended.width(), 4u);
  EXPECT_EQ(appended.ToVector(), expected);
}

TEST(PackedCodesAppendTest, TailStraddlesWordBoundaries) {
  // 7-bit codes never divide 64, so appended codes straddle words.
  std::vector<ValueCode> head;
  for (uint32_t i = 0; i < 61; ++i) head.push_back(i * 2 % 128);
  std::vector<ValueCode> tail;
  for (uint32_t i = 0; i < 40; ++i) tail.push_back((i * 7 + 3) % 128);
  const PackedCodes appended = PackedCodes::Pack(head, 7).Append(tail, 7);
  std::vector<ValueCode> expected = head;
  expected.insert(expected.end(), tail.begin(), tail.end());
  EXPECT_EQ(appended.ToVector(), expected);
}

TEST(AppendRowsTest, ExtendsDictionariesInFirstSeenOrder) {
  const Table table = MakeLabeledTable();
  auto appended = AppendRowsToTable(
      table, {{"kyiv", "small"}, {"oslo", "medium"}, {"kyiv", "medium"}});
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();

  EXPECT_EQ(appended->num_rows(), 6u);
  const Column& city = appended->column(0);
  EXPECT_EQ(city.support(), 3u);
  EXPECT_EQ(city.labels(),
            (std::vector<std::string>{"oslo", "lima", "kyiv"}));
  EXPECT_EQ(city.codes(), (std::vector<ValueCode>{0, 1, 0, 2, 0, 2}));
  const Column& size = appended->column(1);
  EXPECT_EQ(size.labels(),
            (std::vector<std::string>{"small", "large", "medium"}));
  EXPECT_EQ(size.codes(), (std::vector<ValueCode>{0, 1, 1, 0, 2, 2}));

  // The builder would have assigned exactly these dictionaries: a from-
  // scratch encode of the full row set matches the appended table.
  auto builder = TableBuilder::Make({"city", "size"});
  ASSERT_TRUE(builder.ok());
  for (const auto& row : std::vector<std::vector<std::string>>{
           {"oslo", "small"},
           {"lima", "large"},
           {"oslo", "large"},
           {"kyiv", "small"},
           {"oslo", "medium"},
           {"kyiv", "medium"},
       }) {
    ASSERT_TRUE(builder->AppendRow(row).ok());
  }
  auto rebuilt = std::move(*builder).Finish();
  ASSERT_TRUE(rebuilt.ok());
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(appended->column(c).codes(), rebuilt->column(c).codes());
    EXPECT_EQ(appended->column(c).labels(), rebuilt->column(c).labels());
  }
}

TEST(AppendRowsTest, LabelLessColumnsParseDecimalCodes) {
  std::vector<Column> columns;
  columns.push_back(Column::FromCodes("n", {0, 2, 1}));
  auto made = Table::Make(std::move(columns));
  ASSERT_TRUE(made.ok());

  auto appended = AppendRowsToTable(*made, {{"5"}, {"2"}});
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(appended->column(0).support(), 6u);  // grew to max code + 1
  EXPECT_EQ(appended->column(0).codes(),
            (std::vector<ValueCode>{0, 2, 1, 5, 2}));

  EXPECT_FALSE(AppendRowsToTable(*made, {{"x"}}).ok());
  EXPECT_FALSE(AppendRowsToTable(*made, {{"-1"}}).ok());
  EXPECT_FALSE(AppendRowsToTable(*made, {{""}}).ok());
}

TEST(AppendRowsTest, RejectsMalformedRowsUntouched) {
  const Table table = MakeLabeledTable();
  const Status wide = AppendRowsToTable(table, {{"oslo", "small", "extra"}})
                          .status();
  EXPECT_TRUE(wide.IsInvalidArgument());
  const Status narrow = AppendRowsToTable(table, {{"oslo"}}).status();
  EXPECT_TRUE(narrow.IsInvalidArgument());
  EXPECT_FALSE(AppendRowsToTable(table, {}).ok());
  // The input table is unchanged by failed (and successful) appends.
  EXPECT_EQ(table.num_rows(), 3u);
}

TEST(AppendRowsTest, SketchSidecarsAbsorbTheTailIncrementally) {
  // Build a table with sidecars, append rows, and require the maintained
  // sidecar to be bitwise identical to one rebuilt from the appended
  // column: clone + tail is the same code stream as a fresh full scan.
  std::vector<ValueCode> codes;
  for (uint32_t i = 0; i < 5000; ++i) codes.push_back(i % 1500);
  std::vector<Column> columns;
  columns.push_back(Column::FromCodes("hc", std::move(codes)));
  auto made = Table::Make(std::move(columns));
  ASSERT_TRUE(made.ok());
  auto sketched = AttachSketches(*made, /*epsilon=*/0.01, /*delta=*/0.01,
                                 /*min_support=*/1000, /*seed=*/7);
  ASSERT_TRUE(sketched.ok()) << sketched.status().ToString();
  ASSERT_TRUE(sketched->column(0).has_sketch());

  std::vector<std::vector<std::string>> rows;
  for (uint32_t i = 0; i < 200; ++i) {
    rows.push_back({std::to_string(1200 + i * 3)});
  }
  auto appended = AppendRowsToTable(*sketched, rows);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  const Column& column = appended->column(0);
  ASSERT_TRUE(column.has_sketch());
  EXPECT_EQ(column.sketch()->total_count(), 5200u);

  auto rebuilt = BuildColumnSketch(column, 0.01, 0.01, 7);
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_TRUE(column.sketch()->SameShape(*rebuilt));
  EXPECT_EQ(column.sketch()->total_count(), rebuilt->total_count());
  EXPECT_EQ(std::memcmp(column.sketch()->counters(), rebuilt->counters(),
                        rebuilt->num_counters() * sizeof(uint64_t)),
            0);

  // The original table kept its own (smaller) sidecar.
  EXPECT_EQ(sketched->column(0).sketch()->total_count(), 5000u);
}

}  // namespace
}  // namespace swope
