// Unit tests for the query result types, in particular the
// FilterResult::Contains binary search over the ascending-index
// invariant.

#include "src/core/query_result.h"

#include <gtest/gtest.h>

#include "src/core/swope_filter_entropy.h"
#include "tests/test_util.h"

namespace swope {
namespace {

AttributeScore Item(size_t index) {
  AttributeScore item;
  item.index = index;
  item.name = "c" + std::to_string(index);
  return item;
}

TEST(FilterResultContainsTest, EmptyResultContainsNothing) {
  FilterResult result;
  EXPECT_FALSE(result.Contains(0));
  EXPECT_FALSE(result.Contains(42));
}

TEST(FilterResultContainsTest, FindsEveryMemberAndNoOthers) {
  FilterResult result;
  // Ascending, with gaps at both ends and in the middle.
  for (size_t index : {1u, 4u, 5u, 9u, 100u}) {
    result.items.push_back(Item(index));
  }
  for (const AttributeScore& item : result.items) {
    EXPECT_TRUE(result.Contains(item.index)) << item.index;
  }
  // Before the first, between members, and after the last.
  EXPECT_FALSE(result.Contains(0));
  EXPECT_FALSE(result.Contains(2));
  EXPECT_FALSE(result.Contains(3));
  EXPECT_FALSE(result.Contains(6));
  EXPECT_FALSE(result.Contains(99));
  EXPECT_FALSE(result.Contains(101));
  EXPECT_FALSE(result.Contains(1000000));
}

TEST(FilterResultContainsTest, SingleElement) {
  FilterResult result;
  result.items.push_back(Item(7));
  EXPECT_TRUE(result.Contains(7));
  EXPECT_FALSE(result.Contains(6));
  EXPECT_FALSE(result.Contains(8));
}

// End-to-end: Contains agrees with a linear scan over a real filter
// answer, which also pins the ascending-index output invariant.
TEST(FilterResultContainsTest, AgreesWithLinearScanOnRealAnswer) {
  const Table table =
      test::MakeEntropyTable({0.5, 1.0, 2.0, 3.0, 4.0}, 2000, 17);
  QueryOptions options;
  options.seed = 3;
  auto result = SwopeFilterEntropy(table, 2.0, options);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->items.size(); ++i) {
    ASSERT_LT(result->items[i - 1].index, result->items[i].index);
  }
  for (size_t column = 0; column < table.num_columns() + 2; ++column) {
    bool linear = false;
    for (const AttributeScore& item : result->items) {
      if (item.index == column) linear = true;
    }
    EXPECT_EQ(result->Contains(column), linear) << column;
  }
}

}  // namespace
}  // namespace swope
