#include "src/eval/mrmr.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeMiTable;

TEST(MrmrTest, RejectsBadArguments) {
  const Table table = MakeMiTable({0.5, 0.2}, 1000, 1);
  EXPECT_TRUE(SelectFeaturesMrmr(table, 9).status().IsInvalidArgument());
  MrmrOptions zero;
  zero.num_features = 0;
  EXPECT_TRUE(SelectFeaturesMrmr(table, 0, zero).status().IsInvalidArgument());
  auto one_column = Table::Make({Column::FromCodes("only", {0, 1})});
  ASSERT_TRUE(one_column.ok());
  EXPECT_TRUE(SelectFeaturesMrmr(*one_column, 0).status().IsInvalidArgument());
}

TEST(MrmrTest, PicksMostRelevantFirst) {
  const Table table = MakeMiTable({0.1, 0.9, 0.3}, 30000, 2);
  MrmrOptions options;
  options.num_features = 1;
  options.sample_size = 30000;
  auto selected = SelectFeaturesMrmr(table, 0, options);
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();
  ASSERT_EQ(selected->size(), 1u);
  EXPECT_EQ((*selected)[0].index, 2u);  // rho = 0.9 candidate
  EXPECT_GT((*selected)[0].relevance, 0.5);
}

TEST(MrmrTest, PenalizesRedundantFeatures) {
  // Target t = (A, B) with A, B independent uniform(4). Candidates:
  // two identical copies of A and one copy of B. Each candidate has
  // relevance I(t, .) = 2 bits, but after one A-copy is selected the
  // second A-copy is fully redundant (score 2 - 2 = 0) while the B-copy
  // stays fresh (score 2 - 0 = 2). mRMR must pick {A-copy, B-copy}.
  constexpr uint64_t kRows = 20000;
  Rng rng(77);
  std::vector<ValueCode> a(kRows);
  std::vector<ValueCode> b(kRows);
  std::vector<ValueCode> t(kRows);
  for (uint64_t r = 0; r < kRows; ++r) {
    a[r] = static_cast<ValueCode>(rng.UniformU64(4));
    b[r] = static_cast<ValueCode>(rng.UniformU64(4));
    t[r] = a[r] * 4 + b[r];
  }
  std::vector<Column> columns;
  auto push = [&](const char* name, uint32_t u, std::vector<ValueCode> c) {
    auto column = Column::Make(name, u, std::move(c));
    ASSERT_TRUE(column.ok());
    columns.push_back(std::move(column).value());
  };
  push("t", 16, t);
  push("a_copy1", 4, a);
  push("a_copy2", 4, a);
  push("b_copy", 4, b);
  auto table = Table::Make(std::move(columns));
  ASSERT_TRUE(table.ok());

  MrmrOptions options;
  options.num_features = 2;
  options.sample_size = kRows;
  auto selected = SelectFeaturesMrmr(*table, 0, options);
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 2u);
  const size_t first = (*selected)[0].index;
  const size_t second = (*selected)[1].index;
  EXPECT_TRUE(first == 1 || first == 3) << first;
  EXPECT_EQ(second, first == 1 ? 3u : 1u)
      << "should skip the redundant twin a_copy2";
}

TEST(MrmrTest, ClampsFeatureCount) {
  const Table table = MakeMiTable({0.5, 0.3}, 5000, 4);
  MrmrOptions options;
  options.num_features = 100;
  auto selected = SelectFeaturesMrmr(table, 0, options);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 2u);
}

TEST(MrmrTest, DeterministicInSeed) {
  const Table table = MakeMiTable({0.6, 0.4, 0.2}, 20000, 5);
  MrmrOptions options;
  options.num_features = 3;
  options.seed = 5;
  auto a = SelectFeaturesMrmr(table, 0, options);
  auto b = SelectFeaturesMrmr(table, 0, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].index, (*b)[i].index);
    EXPECT_DOUBLE_EQ((*a)[i].score, (*b)[i].score);
  }
}

TEST(MrmrTest, SampleSizeZeroUsesAllRows) {
  const Table table = MakeMiTable({0.8, 0.1}, 2000, 6);
  MrmrOptions options;
  options.num_features = 1;
  options.sample_size = 0;
  auto selected = SelectFeaturesMrmr(table, 0, options);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ((*selected)[0].index, 1u);
}

TEST(MrmrTest, SelectByMiMatchesTopCorrelates) {
  const Table table = MakeMiTable({0.9, 0.1, 0.6, 0.0}, 30000, 7);
  QueryOptions query_options;
  query_options.epsilon = 0.5;
  auto selected = SelectFeaturesByMi(table, 0, 2, query_options);
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 2u);
  EXPECT_EQ((*selected)[0].index, 1u);  // rho 0.9
  EXPECT_EQ((*selected)[1].index, 3u);  // rho 0.6
}

TEST(MrmrTest, SelectByMiPropagatesErrors) {
  const Table table = MakeMiTable({0.5}, 1000, 8);
  EXPECT_FALSE(SelectFeaturesByMi(table, 5, 1).ok());
}

}  // namespace
}  // namespace swope
