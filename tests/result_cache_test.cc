#include "src/engine/result_cache.h"

#include <gtest/gtest.h>

namespace swope {
namespace {

CachedAnswer MakeAnswer(double estimate) {
  CachedAnswer answer;
  AttributeScore item;
  item.index = 1;
  item.name = "e1";
  item.estimate = estimate;
  item.lower = estimate - 0.1;
  item.upper = estimate + 0.1;
  answer.items.push_back(item);
  answer.stats.final_sample_size = 128;
  return answer;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(4);
  EXPECT_EQ(cache.Lookup(7, "spec"), nullptr);
  cache.Insert(7, "spec", MakeAnswer(2.5));

  auto hit = cache.Lookup(7, "spec");
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->items.size(), 1u);
  EXPECT_DOUBLE_EQ(hit->items[0].estimate, 2.5);
  EXPECT_EQ(hit->stats.final_sample_size, 128u);

  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, FingerprintAndSpecBothKeyTheEntry) {
  ResultCache cache(8);
  cache.Insert(7, "spec", MakeAnswer(1.0));
  EXPECT_EQ(cache.Lookup(8, "spec"), nullptr);
  EXPECT_EQ(cache.Lookup(7, "other"), nullptr);
  EXPECT_NE(cache.Lookup(7, "spec"), nullptr);
}

TEST(ResultCacheTest, InsertRefreshesExistingEntry) {
  ResultCache cache(4);
  cache.Insert(7, "spec", MakeAnswer(1.0));
  cache.Insert(7, "spec", MakeAnswer(2.0));
  auto hit = cache.Lookup(7, "spec");
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->items[0].estimate, 2.0);
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedOverCapacity) {
  ResultCache cache(2);
  cache.Insert(1, "a", MakeAnswer(1.0));
  cache.Insert(1, "b", MakeAnswer(2.0));
  // Touch "a" so "b" is the LRU victim.
  ASSERT_NE(cache.Lookup(1, "a"), nullptr);
  cache.Insert(1, "c", MakeAnswer(3.0));

  EXPECT_NE(cache.Lookup(1, "a"), nullptr);
  EXPECT_EQ(cache.Lookup(1, "b"), nullptr);
  EXPECT_NE(cache.Lookup(1, "c"), nullptr);
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.Insert(7, "spec", MakeAnswer(1.0));
  EXPECT_EQ(cache.Lookup(7, "spec"), nullptr);
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(ResultCacheTest, HandleOutlivesEviction) {
  ResultCache cache(1);
  cache.Insert(1, "a", MakeAnswer(1.0));
  auto handle = cache.Lookup(1, "a");
  ASSERT_NE(handle, nullptr);
  cache.Insert(1, "b", MakeAnswer(2.0));  // evicts "a"
  EXPECT_EQ(cache.Lookup(1, "a"), nullptr);
  EXPECT_DOUBLE_EQ(handle->items[0].estimate, 1.0);
}

}  // namespace
}  // namespace swope
