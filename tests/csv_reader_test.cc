#include "src/table/csv_reader.h"

#include <sstream>

#include <gtest/gtest.h>

namespace swope {
namespace {

Result<Table> Parse(const std::string& text, CsvOptions options = {}) {
  std::istringstream stream(text);
  return ReadCsv(stream, options);
}

TEST(CsvReaderTest, SimpleWithHeader) {
  auto table = Parse("a,b\n1,x\n2,y\n1,x\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 3u);
  EXPECT_EQ(table->num_columns(), 2u);
  EXPECT_EQ(table->column(0).name(), "a");
  EXPECT_EQ(table->column(0).support(), 2u);
  EXPECT_EQ(table->column(0).code(0), table->column(0).code(2));
}

TEST(CsvReaderTest, NoTrailingNewline) {
  auto table = Parse("a,b\n1,x\n2,y");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(CsvReaderTest, CrlfLineEndings) {
  auto table = Parse("a,b\r\n1,x\r\n2,y\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->column(1).LabelOf(table->column(1).code(0)), "x");
}

TEST(CsvReaderTest, QuotedFieldsWithDelimiterAndNewline) {
  auto table = Parse("a,b\n\"hello, world\",\"line1\nline2\"\nplain,z\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  const Column& a = table->column(0);
  EXPECT_EQ(a.LabelOf(a.code(0)), "hello, world");
  const Column& b = table->column(1);
  EXPECT_EQ(b.LabelOf(b.code(0)), "line1\nline2");
}

TEST(CsvReaderTest, DoubledQuoteEscape) {
  auto table = Parse("a\n\"she said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  const Column& a = table->column(0);
  EXPECT_EQ(a.LabelOf(a.code(0)), "she said \"hi\"");
}

TEST(CsvReaderTest, EmptyFields) {
  auto table = Parse("a,b,c\n,,\n1,,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  const Column& b = table->column(1);
  EXPECT_EQ(b.support(), 1u);  // both rows empty in b
}

TEST(CsvReaderTest, NoHeaderNamesColumns) {
  CsvOptions options;
  options.has_header = false;
  auto table = Parse("1,x\n2,y\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->column(0).name(), "c0");
  EXPECT_EQ(table->column(1).name(), "c1");
}

TEST(CsvReaderTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  auto table = Parse("a;b\n1;2\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_columns(), 2u);
}

TEST(CsvReaderTest, MaxRowsTruncates) {
  CsvOptions options;
  options.max_rows = 2;
  auto table = Parse("a\n1\n2\n3\n4\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(CsvReaderTest, RaggedRecordIsCorruption) {
  auto table = Parse("a,b\n1,2\n3\n");
  EXPECT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsCorruption());
}

TEST(CsvReaderTest, UnterminatedQuoteIsCorruption) {
  auto table = Parse("a\n\"oops\n");
  EXPECT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsCorruption());
}

TEST(CsvReaderTest, QuoteInsideUnquotedFieldIsCorruption) {
  auto table = Parse("a\nab\"c\n");
  EXPECT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsCorruption());
}

TEST(CsvReaderTest, EmptyInputIsCorruption) {
  EXPECT_TRUE(Parse("").status().IsCorruption());
}

TEST(CsvReaderTest, HeaderOnlyGivesZeroRows) {
  auto table = Parse("a,b\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 0u);
  EXPECT_EQ(table->num_columns(), 2u);
}

TEST(CsvReaderTest, InvalidDelimiterRejected) {
  CsvOptions options;
  options.delimiter = '"';
  EXPECT_TRUE(Parse("a\n1\n", options).status().IsInvalidArgument());
}

TEST(CsvReaderTest, MissingFileIsIOError) {
  auto table = ReadCsvFile("/nonexistent/definitely/not/here.csv");
  EXPECT_TRUE(table.status().IsIOError());
}

}  // namespace
}  // namespace swope
