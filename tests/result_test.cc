#include "src/common/result.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("no such"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.status().message(), "no such");
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> bad(Status::Internal("x"));
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result->size(), 5u);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(ResultTest, CopyPreservesState) {
  Result<int> original(5);
  Result<int> copy = original;
  EXPECT_TRUE(copy.ok());
  EXPECT_EQ(copy.value(), 5);

  Result<int> error(Status::IOError("io"));
  Result<int> error_copy = error;
  EXPECT_TRUE(error_copy.status().IsIOError());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  SWOPE_ASSIGN_OR_RETURN(int h, Half(x));
  SWOPE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto good = QuarterViaMacro(8);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 2);

  auto bad = QuarterViaMacro(6);  // 6/2 = 3 is odd
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

}  // namespace
}  // namespace swope
