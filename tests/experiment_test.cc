#include "src/eval/experiment.h"

#include <thread>

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(ExperimentTest, TimeRepeatedRunsExactCount) {
  int calls = 0;
  const Timing timing = TimeRepeated(5, [&] { ++calls; });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(timing.repetitions, 5);
  EXPECT_GE(timing.mean_seconds, 0.0);
  EXPECT_LE(timing.min_seconds, timing.mean_seconds + 1e-12);
  EXPECT_GE(timing.max_seconds, timing.mean_seconds - 1e-12);
}

TEST(ExperimentTest, TimeRepeatedClampsToOne) {
  int calls = 0;
  const Timing timing = TimeRepeated(0, [&] { ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(timing.repetitions, 1);
}

TEST(ExperimentTest, TimeRepeatedMeasuresWork) {
  const Timing timing = TimeRepeated(2, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  EXPECT_GE(timing.mean_seconds, 0.005);
}

TEST(ExperimentTest, BenchConfigDefaults) {
  char prog[] = "bench";
  char* argv[] = {prog};
  const BenchConfig config = BenchConfig::FromArgs(1, argv);
  EXPECT_EQ(config.rows, 0u);
  EXPECT_EQ(config.reps, 1);
  EXPECT_FALSE(config.quick);
  EXPECT_EQ(config.RowsOrDefault(5000), 5000u);
}

TEST(ExperimentTest, BenchConfigParsesFlags) {
  char prog[] = "bench";
  char rows[] = "--rows=12345";
  char reps[] = "--reps=7";
  char targets[] = "--targets=4";
  char seed[] = "--seed=99";
  char* argv[] = {prog, rows, reps, targets, seed};
  const BenchConfig config = BenchConfig::FromArgs(5, argv);
  EXPECT_EQ(config.rows, 12345u);
  EXPECT_EQ(config.reps, 7);
  EXPECT_EQ(config.targets, 4);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_EQ(config.RowsOrDefault(5000), 12345u);
}

TEST(ExperimentTest, BenchConfigQuickShrinksDefaults) {
  char prog[] = "bench";
  char quick[] = "--quick";
  char* argv[] = {prog, quick};
  const BenchConfig config = BenchConfig::FromArgs(2, argv);
  EXPECT_TRUE(config.quick);
  EXPECT_EQ(config.RowsOrDefault(5000), 500u);
  EXPECT_GE(config.RowsOrDefault(5), 1u);
}

TEST(ExperimentTest, FormatSpeedup) {
  EXPECT_EQ(FormatSpeedup(10.0, 2.0), "5.0x");
  EXPECT_EQ(FormatSpeedup(1.0, 0.0), "inf");
  EXPECT_EQ(FormatSpeedup(3.0, 2.0), "1.5x");
}

}  // namespace
}  // namespace swope
