#include "src/baselines/entropy_filter.h"

#include <gtest/gtest.h>

#include "src/core/entropy.h"
#include "src/core/swope_filter_entropy.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeEntropyTable;

TEST(EntropyFilterTest, ReturnsExactAnswer) {
  const Table table =
      MakeEntropyTable({0.5, 1.5, 2.5, 3.5, 4.5}, 30000, 1);
  const auto scores = ExactEntropies(table);
  for (double eta : {1.0, 2.0, 3.0, 4.0}) {
    auto result = EntropyFilterQuery(table, eta);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (size_t j = 0; j < scores.size(); ++j) {
      EXPECT_EQ(result->Contains(j), scores[j] >= eta)
          << "eta=" << eta << " j=" << j;
    }
  }
}

TEST(EntropyFilterTest, RejectsBadArguments) {
  const Table table = MakeEntropyTable({1.0}, 100, 2);
  EXPECT_TRUE(EntropyFilterQuery(table, 0.0).status().IsInvalidArgument());
  auto empty = Table::Make({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(EntropyFilterQuery(*empty, 1.0).status().IsInvalidArgument());
}

TEST(EntropyFilterTest, ScoreAtThresholdForcesFullScan) {
  // delta = 0 for a score exactly at eta is only resolvable at M = N.
  // Build a column with an exactly computable entropy: uniform over 4
  // values, H = 2 exactly, by explicit code layout.
  std::vector<ValueCode> codes(20000);
  for (size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<ValueCode>(i % 4);
  }
  auto exact_col = Column::Make("exact2bits", 4, std::move(codes));
  ASSERT_TRUE(exact_col.ok());
  auto noise =
      GenerateColumn(ColumnSpec::EntropyTargeted("n", 16, 0.5), 20000, 3);
  ASSERT_TRUE(noise.ok());
  std::vector<Column> columns;
  columns.push_back(std::move(exact_col).value());
  columns.push_back(std::move(noise).value());
  auto table = Table::Make(std::move(columns));
  ASSERT_TRUE(table.ok());

  auto result = EntropyFilterQuery(*table, 2.0);
  ASSERT_TRUE(result.ok());
  // delta = 0 is only resolvable once the bounds collapse at M = N.
  EXPECT_TRUE(result->stats.exhausted_dataset);
  // Whichever way the last-ulp rounding lands, the score at stake is
  // exactly 2 bits; if the column was accepted its estimate must say so.
  const double exact = ExactEntropy(table->column(0));
  EXPECT_NEAR(exact, 2.0, 1e-9);
  if (result->Contains(0)) {
    EXPECT_NEAR(result->items.front().estimate, 2.0, 1e-9);
  }
}

TEST(EntropyFilterTest, NarrowGapCostsMoreThanSwope) {
  const Table table =
      MakeEntropyTable({2.05, 1.95, 4.0, 0.5}, 150000, 4);
  QueryOptions options;
  options.epsilon = 0.1;
  auto swope = SwopeFilterEntropy(table, 2.0, options);
  auto baseline = EntropyFilterQuery(table, 2.0, options);
  ASSERT_TRUE(swope.ok());
  ASSERT_TRUE(baseline.ok());
  EXPECT_LE(swope->stats.final_sample_size,
            baseline->stats.final_sample_size);
  EXPECT_LT(swope->stats.cells_scanned, baseline->stats.cells_scanned);
}

TEST(EntropyFilterTest, EasyThresholdStopsEarly) {
  const Table table = MakeEntropyTable({5.5, 0.2}, 200000, 5);
  auto result = EntropyFilterQuery(table, 2.0);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->stats.final_sample_size, 200000u);
  EXPECT_TRUE(result->Contains(0));
  EXPECT_FALSE(result->Contains(1));
}

TEST(EntropyFilterTest, ItemsAscendingByIndex) {
  const Table table = MakeEntropyTable({3.0, 4.0, 3.5}, 20000, 6);
  auto result = EntropyFilterQuery(table, 1.0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 3u);
  for (size_t i = 1; i < result->items.size(); ++i) {
    EXPECT_LT(result->items[i - 1].index, result->items[i].index);
  }
}

}  // namespace
}  // namespace swope
