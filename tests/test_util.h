// Shared dataset builders for the algorithm tests.

#ifndef SWOPE_TESTS_TEST_UTIL_H_
#define SWOPE_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/datagen/correlated.h"
#include "src/datagen/generator.h"
#include "src/table/table.h"

namespace swope {
namespace test {

/// Builds a table whose column j targets entropy `entropies[j]` bits
/// (support 64 each), with `rows` rows. Column names are e0, e1, ....
inline Table MakeEntropyTable(const std::vector<double>& entropies,
                              uint64_t rows, uint64_t seed) {
  TableSpec spec;
  spec.num_rows = rows;
  spec.seed = seed;
  for (size_t j = 0; j < entropies.size(); ++j) {
    spec.columns.push_back(ColumnSpec::EntropyTargeted(
        "e" + std::to_string(j), 64, entropies[j]));
  }
  auto table = GenerateTable(spec);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return std::move(table).value();
}

/// Builds a table with a uniform target column "t" (index 0) and one
/// candidate per entry of `rhos`, each correlated with the target at that
/// rho. Candidate names are c0, c1, ....
inline Table MakeMiTable(const std::vector<double>& rhos, uint64_t rows,
                         uint64_t seed, uint32_t target_support = 16) {
  const auto target_dist = CategoricalDistribution::Uniform(target_support);
  std::vector<CategoricalDistribution> noise;
  std::vector<std::string> names;
  for (size_t j = 0; j < rhos.size(); ++j) {
    noise.push_back(CategoricalDistribution::Uniform(target_support));
    names.push_back("c" + std::to_string(j));
  }
  auto columns = GenerateTargetWithCorrelates(target_dist, "t", noise, names,
                                              rhos, rows, seed);
  EXPECT_TRUE(columns.ok()) << columns.status().ToString();
  auto table = Table::Make(std::move(columns).value());
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return std::move(table).value();
}

/// Column indices [0, h) (all columns).
inline std::vector<size_t> AllIndices(size_t h) {
  std::vector<size_t> indices(h);
  for (size_t j = 0; j < h; ++j) indices[j] = j;
  return indices;
}

/// Column indices [0, h) minus `target`.
inline std::vector<size_t> AllIndicesExcept(size_t h, size_t target) {
  std::vector<size_t> indices;
  for (size_t j = 0; j < h; ++j) {
    if (j != target) indices.push_back(j);
  }
  return indices;
}

}  // namespace test
}  // namespace swope

#endif  // SWOPE_TESTS_TEST_UTIL_H_
