// Pins the unified driver's cells_scanned accounting for all six query
// kinds: every newly sampled row costs CellsPerRow(active) counter
// updates — `active` for entropy kinds (one per active candidate), and
// 1 + 2 * active for MI/NMI kinds (the shared target marginal plus a
// marginal and a joint update per active candidate).

#include <cstdint>

#include <gtest/gtest.h>

#include "src/core/swope_filter_entropy.h"
#include "src/core/swope_filter_mi.h"
#include "src/core/swope_filter_nmi.h"
#include "src/core/swope_topk_entropy.h"
#include "src/core/swope_topk_mi.h"
#include "src/core/swope_topk_nmi.h"
#include "src/table/table_builder.h"
#include "tests/test_util.h"

namespace swope {
namespace {

// 12 rows x 3 columns. With N = 12 below kMinSampleSize, every query
// starts at M0 = N and finishes in exactly one round over all
// candidates, making the expected cell count exact by hand.
Table MakeTinyTable() {
  auto builder = TableBuilder::Make({"a", "b", "c"});
  EXPECT_TRUE(builder.ok());
  for (int i = 0; i < 12; ++i) {
    const std::string a = std::to_string(i % 4);
    const std::string b = std::to_string(i % 3);
    const std::string c = std::to_string(i % 2);
    EXPECT_TRUE(builder->AppendRow({a, b, c}).ok());
  }
  auto table = std::move(*builder).Finish();
  EXPECT_TRUE(table.ok());
  return std::move(table).value();
}

QueryOptions TinyOptions() {
  QueryOptions options;
  options.seed = 11;
  return options;
}

TEST(CellsScannedTest, EntropyTopKSingleRound) {
  const Table table = MakeTinyTable();
  auto result = SwopeTopKEntropy(table, 2, TinyOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.iterations, 1u);
  EXPECT_EQ(result->stats.final_sample_size, 12u);
  EXPECT_TRUE(result->stats.exhausted_dataset);
  // 12 rows x 3 active candidates, one counter update each.
  EXPECT_EQ(result->stats.cells_scanned, 12u * 3u);
}

TEST(CellsScannedTest, EntropyFilterSingleRound) {
  const Table table = MakeTinyTable();
  auto result = SwopeFilterEntropy(table, 1.0, TinyOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.iterations, 1u);
  EXPECT_EQ(result->stats.cells_scanned, 12u * 3u);
}

TEST(CellsScannedTest, MiTopKSingleRound) {
  const Table table = MakeTinyTable();
  auto result = SwopeTopKMi(table, /*target=*/0, 1, TinyOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.iterations, 1u);
  // 12 rows x (target marginal + 2 candidates x (marginal + joint)).
  EXPECT_EQ(result->stats.cells_scanned, 12u * (1u + 2u * 2u));
}

TEST(CellsScannedTest, MiFilterSingleRound) {
  const Table table = MakeTinyTable();
  auto result = SwopeFilterMi(table, /*target=*/0, 0.1, TinyOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.iterations, 1u);
  EXPECT_EQ(result->stats.cells_scanned, 12u * (1u + 2u * 2u));
}

TEST(CellsScannedTest, NmiTopKSingleRound) {
  const Table table = MakeTinyTable();
  auto result = SwopeTopKNmi(table, /*target=*/0, 1, TinyOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.iterations, 1u);
  EXPECT_EQ(result->stats.cells_scanned, 12u * (1u + 2u * 2u));
}

TEST(CellsScannedTest, NmiFilterSingleRound) {
  const Table table = MakeTinyTable();
  auto result = SwopeFilterNmi(table, /*target=*/0, 0.5, TinyOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.iterations, 1u);
  EXPECT_EQ(result->stats.cells_scanned, 12u * (1u + 2u * 2u));
}

// Multi-round accounting: 64 rows, M0 = 16, doubling. With epsilon tiny
// and k = all candidates, nothing stops or prunes before M = N, so the
// rounds consume 16 + 16 + 32 rows and every row is counted against the
// full candidate set: total = 64 * CellsPerRow(all).
QueryOptions MultiRoundOptions() {
  QueryOptions options;
  options.seed = 11;
  options.epsilon = 0.0001;
  options.initial_sample_size = 16;
  return options;
}

TEST(CellsScannedTest, EntropyTopKMultiRound) {
  const Table table = test::MakeEntropyTable({2.0, 2.0, 2.0}, 64, 5);
  auto result = SwopeTopKEntropy(table, 3, MultiRoundOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.iterations, 3u);
  EXPECT_EQ(result->stats.final_sample_size, 64u);
  EXPECT_EQ(result->stats.candidates_remaining, 3u);
  EXPECT_EQ(result->stats.cells_scanned, 64u * 3u);
}

TEST(CellsScannedTest, MiTopKMultiRound) {
  const Table table = test::MakeMiTable({0.5, 0.5}, 64, 5);
  auto result = SwopeTopKMi(table, /*target=*/0, 2, MultiRoundOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.iterations, 3u);
  EXPECT_EQ(result->stats.final_sample_size, 64u);
  EXPECT_EQ(result->stats.candidates_remaining, 2u);
  EXPECT_EQ(result->stats.cells_scanned, 64u * (1u + 2u * 2u));
}

}  // namespace
}  // namespace swope
