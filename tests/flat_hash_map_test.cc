#include "src/common/flat_hash_map.h"

#include <cstdint>
#include <unordered_map>

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace swope {
namespace {

TEST(FlatHashMapTest, StartsEmpty) {
  FlatHashMap<uint64_t, uint32_t> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(42), nullptr);
  EXPECT_FALSE(map.Contains(42));
}

TEST(FlatHashMapTest, InsertAndFind) {
  FlatHashMap<uint64_t, uint32_t> map;
  map[5] = 50;
  map[9] = 90;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(5), nullptr);
  EXPECT_EQ(*map.Find(5), 50u);
  ASSERT_NE(map.Find(9), nullptr);
  EXPECT_EQ(*map.Find(9), 90u);
  EXPECT_EQ(map.Find(7), nullptr);
}

TEST(FlatHashMapTest, OperatorBracketDefaultConstructs) {
  FlatHashMap<uint64_t, uint32_t> map;
  EXPECT_EQ(map[123], 0u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, IncrementThroughBracket) {
  FlatHashMap<uint64_t, uint64_t> map;
  for (int i = 0; i < 10; ++i) ++map[77];
  EXPECT_EQ(*map.Find(77), 10u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, ZeroKeyIsUsable) {
  FlatHashMap<uint64_t, uint32_t> map;
  map[0] = 11;
  EXPECT_EQ(*map.Find(0), 11u);
}

TEST(FlatHashMapTest, GrowsBeyondInitialCapacity) {
  FlatHashMap<uint64_t, uint32_t> map(4);
  for (uint64_t k = 0; k < 1000; ++k) map[k * 3 + 1] = static_cast<uint32_t>(k);
  EXPECT_EQ(map.size(), 1000u);
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(map.Find(k * 3 + 1), nullptr) << k;
    EXPECT_EQ(*map.Find(k * 3 + 1), static_cast<uint32_t>(k));
  }
}

TEST(FlatHashMapTest, ClearKeepsCapacityDropsEntries) {
  FlatHashMap<uint64_t, uint32_t> map;
  for (uint64_t k = 1; k <= 100; ++k) map[k] = 1;
  const size_t cap = map.capacity();
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.Find(50), nullptr);
  map[50] = 5;
  EXPECT_EQ(*map.Find(50), 5u);
}

TEST(FlatHashMapTest, ForEachVisitsEveryEntryOnce) {
  FlatHashMap<uint64_t, uint32_t> map;
  for (uint64_t k = 10; k < 60; ++k) map[k] = static_cast<uint32_t>(k * 2);
  uint64_t visits = 0;
  uint64_t key_sum = 0;
  map.ForEach([&](uint64_t key, uint32_t value) {
    ++visits;
    key_sum += key;
    EXPECT_EQ(value, key * 2);
  });
  EXPECT_EQ(visits, 50u);
  EXPECT_EQ(key_sum, (10 + 59) * 50 / 2);
}

TEST(FlatHashMapTest, AgreesWithUnorderedMapUnderRandomWorkload) {
  FlatHashMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> reference;
  Rng rng(123);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.UniformU64(5000);
    ++map[key];
    ++reference[key];
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, count] : reference) {
    ASSERT_NE(map.Find(key), nullptr);
    EXPECT_EQ(*map.Find(key), count);
  }
}

TEST(FlatHashMapTest, MutationThroughNonConstFind) {
  // Regression: the non-const Find used to round-trip through const_cast;
  // writes through the returned pointer must be well-defined and visible
  // to subsequent lookups.
  FlatHashMap<uint32_t, uint64_t> map;
  map[7] = 100;
  map[9] = 200;
  uint64_t* value = map.Find(7);
  ASSERT_NE(value, nullptr);
  *value += 23;
  EXPECT_EQ(map[7], 123u);
  const FlatHashMap<uint32_t, uint64_t>& cmap = map;
  ASSERT_NE(cmap.Find(7), nullptr);
  EXPECT_EQ(*cmap.Find(7), 123u);
  EXPECT_EQ(*cmap.Find(9), 200u);
  EXPECT_EQ(map.Find(8), nullptr);
  EXPECT_EQ(map.size(), 2u);  // Find never inserts.
}

TEST(FlatHashMapTest, CollidingKeysAllSurvive) {
  // Keys chosen to collide modulo small power-of-two capacities.
  FlatHashMap<uint64_t, uint32_t> map(4);
  for (uint64_t k = 0; k < 64; ++k) map[k << 32] = static_cast<uint32_t>(k);
  for (uint64_t k = 0; k < 64; ++k) {
    ASSERT_NE(map.Find(k << 32), nullptr);
    EXPECT_EQ(*map.Find(k << 32), static_cast<uint32_t>(k));
  }
}

}  // namespace
}  // namespace swope
