// Property suite: the formal guarantees of Definitions 5 and 6 must hold
// across a parameterized sweep of datasets, seeds, epsilons, k values and
// thresholds. Each sweep runs the algorithm against fresh randomness and
// checks the definition against exact scores; the overall violation count
// must respect the failure budget (we run with p_f well below the sweep
// size, so the expected number of violations is << 1 and we assert zero
// with a tiny tolerance for genuinely unlucky draws).

#include <gtest/gtest.h>

#include "src/core/entropy.h"
#include "src/core/swope_filter_entropy.h"
#include "src/core/swope_filter_mi.h"
#include "src/core/swope_topk_entropy.h"
#include "src/core/swope_topk_mi.h"
#include "src/eval/accuracy.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::AllIndices;
using test::AllIndicesExcept;
using test::MakeEntropyTable;
using test::MakeMiTable;

constexpr uint64_t kRows = 30000;

struct EntropyCase {
  double epsilon;
  uint64_t data_seed;
};

class EntropyGuaranteeTest : public testing::TestWithParam<EntropyCase> {};

TEST_P(EntropyGuaranteeTest, TopKSatisfiesDefinitionFive) {
  const EntropyCase param = GetParam();
  // Mixed entropy profile with adjacent values around every plausible k.
  const Table table = MakeEntropyTable(
      {5.2, 4.8, 4.0, 3.6, 3.0, 2.2, 1.5, 0.8, 0.3}, kRows, param.data_seed);
  const auto exact = ExactEntropies(table);
  const auto eligible = AllIndices(table.num_columns());

  int violations = 0;
  for (size_t k : {1, 2, 4, 8}) {
    for (uint64_t query_seed = 0; query_seed < 3; ++query_seed) {
      QueryOptions options;
      options.epsilon = param.epsilon;
      options.seed = 1000 * param.data_seed + 10 * k + query_seed;
      auto result = SwopeTopKEntropy(table, k, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      if (!SatisfiesApproxTopK(result->items, exact, eligible, k,
                               options.epsilon)) {
        ++violations;
      }
      EXPECT_EQ(result->items.size(), std::min(k, table.num_columns()));
    }
  }
  EXPECT_EQ(violations, 0);
}

TEST_P(EntropyGuaranteeTest, FilterSatisfiesDefinitionSix) {
  const EntropyCase param = GetParam();
  const Table table = MakeEntropyTable(
      {5.2, 4.8, 4.0, 3.6, 3.0, 2.2, 1.5, 0.8, 0.3}, kRows, param.data_seed);
  const auto exact = ExactEntropies(table);
  const auto eligible = AllIndices(table.num_columns());

  int violations = 0;
  for (double eta : {0.5, 1.5, 2.5, 3.5, 5.0}) {
    for (uint64_t query_seed = 0; query_seed < 3; ++query_seed) {
      QueryOptions options;
      options.epsilon = param.epsilon;
      options.seed = 777 * param.data_seed + 31 * query_seed +
                     static_cast<uint64_t>(eta * 10);
      auto result = SwopeFilterEntropy(table, eta, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      if (!SatisfiesApproxFilter(*result, exact, eligible, eta,
                                 options.epsilon)) {
        ++violations;
      }
    }
  }
  EXPECT_EQ(violations, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EntropyGuaranteeTest,
    testing::Values(EntropyCase{0.05, 1}, EntropyCase{0.1, 2},
                    EntropyCase{0.1, 3}, EntropyCase{0.25, 4},
                    EntropyCase{0.5, 5}),
    [](const testing::TestParamInfo<EntropyCase>& param_info) {
      return "eps" +
             std::to_string(static_cast<int>(param_info.param.epsilon * 100)) +
             "_seed" + std::to_string(param_info.param.data_seed);
    });

struct MiCase {
  double epsilon;
  uint64_t data_seed;
};

class MiGuaranteeTest : public testing::TestWithParam<MiCase> {};

TEST_P(MiGuaranteeTest, TopKSatisfiesDefinitionFive) {
  const MiCase param = GetParam();
  const Table table = MakeMiTable({0.95, 0.8, 0.6, 0.4, 0.25, 0.1, 0.0},
                                  kRows, param.data_seed);
  auto exact = ExactMutualInformations(table, 0);
  ASSERT_TRUE(exact.ok());
  const auto eligible = AllIndicesExcept(table.num_columns(), 0);

  int violations = 0;
  for (size_t k : {1, 2, 4}) {
    QueryOptions options;
    options.epsilon = param.epsilon;
    options.seed = 31 * param.data_seed + k;
    auto result = SwopeTopKMi(table, 0, k, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (!SatisfiesApproxTopK(result->items, *exact, eligible, k,
                             options.epsilon)) {
      ++violations;
    }
  }
  EXPECT_EQ(violations, 0);
}

TEST_P(MiGuaranteeTest, FilterSatisfiesDefinitionSix) {
  const MiCase param = GetParam();
  const Table table = MakeMiTable({0.95, 0.8, 0.6, 0.4, 0.25, 0.1, 0.0},
                                  kRows, param.data_seed);
  auto exact = ExactMutualInformations(table, 0);
  ASSERT_TRUE(exact.ok());
  const auto eligible = AllIndicesExcept(table.num_columns(), 0);

  int violations = 0;
  for (double eta : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    QueryOptions options;
    options.epsilon = param.epsilon;
    options.seed = 59 * param.data_seed + static_cast<uint64_t>(eta * 100);
    auto result = SwopeFilterMi(table, 0, eta, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (!SatisfiesApproxFilter(*result, *exact, eligible, eta,
                               options.epsilon)) {
      ++violations;
    }
  }
  EXPECT_EQ(violations, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MiGuaranteeTest,
    testing::Values(MiCase{0.25, 1}, MiCase{0.5, 2}, MiCase{0.5, 3},
                    MiCase{0.75, 4}),
    [](const testing::TestParamInfo<MiCase>& param_info) {
      return "eps" +
             std::to_string(static_cast<int>(param_info.param.epsilon * 100)) +
             "_seed" + std::to_string(param_info.param.data_seed);
    });

// The sampling cost must respond to the problem difficulty the way
// Theorems 2 and 4 predict: more samples for smaller epsilon and for
// smaller thresholds.
TEST(GuaranteeScalingTest, SamplesGrowAsEpsilonShrinks) {
  const Table table =
      MakeEntropyTable({4.0, 3.5, 3.0, 2.5, 2.0, 1.5}, 100000, 7);
  uint64_t previous = 0;
  for (double eps : {0.5, 0.25, 0.1, 0.05}) {
    QueryOptions options;
    options.epsilon = eps;
    auto result = SwopeTopKEntropy(table, 2, options);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->stats.final_sample_size, previous) << "eps " << eps;
    previous = result->stats.final_sample_size;
  }
}

TEST(GuaranteeScalingTest, FilterSamplesGrowAsEtaShrinks) {
  // Theorem 4: cost ~ 1/(eps*eta)^2, dominated by attributes whose score
  // sits inside the eta-band (only the width rule can resolve them). Pit
  // a small and a large threshold against columns whose entropy equals
  // the threshold.
  QueryOptions options;
  options.epsilon = 0.1;
  uint64_t samples_small = 0;
  uint64_t samples_large = 0;
  for (int pass = 0; pass < 2; ++pass) {
    const double eta = pass == 0 ? 0.5 : 3.0;
    const Table table =
        MakeEntropyTable({eta, eta, eta, eta}, 200000, 8 + pass);
    auto result = SwopeFilterEntropy(table, eta, options);
    ASSERT_TRUE(result.ok());
    (pass == 0 ? samples_small : samples_large) =
        result->stats.final_sample_size;
  }
  EXPECT_GT(samples_small, samples_large);
}

}  // namespace
}  // namespace swope
