#include "src/core/prefix_sampler.h"

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(PrefixSamplerTest, StartsUnconsumed) {
  PrefixSampler sampler(100, 1);
  EXPECT_EQ(sampler.num_rows(), 100u);
  EXPECT_EQ(sampler.consumed(), 0u);
  EXPECT_EQ(sampler.order().size(), 100u);
}

TEST(PrefixSamplerTest, GrowReturnsNewRange) {
  PrefixSampler sampler(100, 1);
  auto r1 = sampler.GrowTo(10);
  EXPECT_EQ(r1.begin, 0u);
  EXPECT_EQ(r1.end, 10u);
  EXPECT_EQ(sampler.consumed(), 10u);

  auto r2 = sampler.GrowTo(25);
  EXPECT_EQ(r2.begin, 10u);
  EXPECT_EQ(r2.end, 25u);
  EXPECT_EQ(sampler.consumed(), 25u);
}

TEST(PrefixSamplerTest, GrowClampsAtN) {
  PrefixSampler sampler(50, 2);
  auto range = sampler.GrowTo(1000);
  EXPECT_EQ(range.begin, 0u);
  EXPECT_EQ(range.end, 50u);
  EXPECT_EQ(sampler.consumed(), 50u);
}

TEST(PrefixSamplerTest, GrowToSmallerIsEmptyRange) {
  PrefixSampler sampler(50, 2);
  sampler.GrowTo(30);
  auto range = sampler.GrowTo(20);
  EXPECT_EQ(range.begin, 30u);
  EXPECT_EQ(range.end, 30u);  // clamped: never rewinds
  EXPECT_EQ(sampler.consumed(), 30u);
}

TEST(PrefixSamplerTest, OrderIsDeterministicPermutation) {
  PrefixSampler a(200, 7);
  PrefixSampler b(200, 7);
  EXPECT_EQ(a.order(), b.order());
  std::vector<bool> seen(200, false);
  for (uint32_t r : a.order()) {
    ASSERT_LT(r, 200u);
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

TEST(PrefixSamplerTest, ZeroRows) {
  PrefixSampler sampler(0, 1);
  EXPECT_EQ(sampler.num_rows(), 0u);
  auto range = sampler.GrowTo(10);
  EXPECT_EQ(range.begin, range.end);
}

}  // namespace
}  // namespace swope
