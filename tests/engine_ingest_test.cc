// Streaming ingest through the engine: appended rows change the answer
// without a full re-encode, the fingerprint rotates so cached results
// for the old contents are never served, and the serve front end exposes
// the whole flow (ingest op, sketch path report) as JSON.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/engine/serve.h"
#include "src/table/column.h"
#include "src/table/table.h"
#include "src/table/table_builder.h"

namespace swope {
namespace {

// Two labeled columns; "color" is heavily skewed toward "red".
Table MakeSmallTable() {
  auto builder = TableBuilder::Make({"color", "shape"});
  EXPECT_TRUE(builder.ok());
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(
        builder
            ->AppendRow({i % 10 == 0 ? "blue" : "red",
                         i % 2 == 0 ? "disc" : "ring"})
            .ok());
  }
  auto table = std::move(*builder).Finish();
  EXPECT_TRUE(table.ok());
  return std::move(table).value();
}

Table MakeHighCardinalityTable(uint32_t support, uint64_t rows) {
  std::vector<Column> columns;
  std::vector<ValueCode> high(rows), low(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    high[i] = static_cast<ValueCode>(i % support);
    low[i] = static_cast<ValueCode>(i % 4);
  }
  columns.push_back(Column::FromCodes("hc", std::move(high)));
  columns.push_back(Column::FromCodes("lo", std::move(low)));
  auto table = Table::Make(std::move(columns));
  EXPECT_TRUE(table.ok());
  return std::move(table).value();
}

QuerySpec EntropyTopKSpec(const std::string& dataset, size_t k) {
  QuerySpec spec;
  spec.dataset = dataset;
  spec.kind = QueryKind::kEntropyTopK;
  spec.k = k;
  return spec;
}

TEST(EngineIngestTest, AppendInvalidatesCacheAndUpdatesAnswers) {
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterDataset("ds", MakeSmallTable()).ok());

  const QuerySpec spec = EntropyTopKSpec("ds", 2);
  auto before = engine.Run(spec);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_FALSE(before->cache_hit);
  auto cached = engine.Run(spec);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->cache_hit);

  // Append rows that flip the skew: "color" was low-entropy, the new
  // rows spread it out.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back({"green" + std::to_string(i % 50), "disc"});
  }
  ASSERT_TRUE(engine.Ingest("ds", rows).ok());

  auto after = engine.Run(spec);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->cache_hit) << "stale cached answer served";
  EXPECT_NE(after->fingerprint, before->fingerprint);

  auto dataset = engine.registry().Get("ds");
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ((*dataset)->table.num_rows(), 600u);
  EXPECT_EQ((*dataset)->table.column(0).support(), 52u);  // 2 + 50 greens

  const EngineCounters counters = engine.GetCounters();
  EXPECT_EQ(counters.ingest_rows, 300u);
  EXPECT_EQ(counters.queries_exact, 3u);
  EXPECT_EQ(counters.queries_sketch, 0u);
}

TEST(EngineIngestTest, IngestErrorsLeaveDatasetUntouched) {
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterDataset("ds", MakeSmallTable()).ok());

  EXPECT_TRUE(engine.Ingest("missing", {{"red", "disc"}}).IsNotFound());
  EXPECT_TRUE(engine.Ingest("ds", {{"red"}}).IsInvalidArgument());
  EXPECT_TRUE(engine.Ingest("ds", {}).IsInvalidArgument());

  auto dataset = engine.registry().Get("ds");
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ((*dataset)->table.num_rows(), 300u);
  EXPECT_EQ(engine.GetCounters().ingest_rows, 0u);
}

TEST(EngineIngestTest, SketchQueriesAreCountedAndReported) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("hc", MakeHighCardinalityTable(4096, 16384))
          .ok());

  QuerySpec spec = EntropyTopKSpec("hc", 2);
  spec.options.sketch_epsilon = 0.01;
  auto response = engine.Run(spec);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->stats.sketch_candidates, 1u);

  // Without the sketch path the same dataset is rejected outright.
  auto rejected = engine.Run(EntropyTopKSpec("hc", 2));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument());

  const EngineCounters counters = engine.GetCounters();
  EXPECT_EQ(counters.queries_sketch, 1u);
  EXPECT_EQ(counters.queries_exact, 0u);
  EXPECT_EQ(counters.queries_failed, 1u);

  // The registry tracks no sidecar bytes here (query-local sketches
  // only); attaching sidecars shows up in the gauge.
  EXPECT_EQ(engine.registry().GetStats().sketch_bytes, 0u);
}

TEST(EngineIngestTest, ServeIngestAndSketchPathJson) {
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterDataset("ds", MakeSmallTable()).ok());
  ASSERT_TRUE(
      engine.RegisterDataset("hc", MakeHighCardinalityTable(2048, 8192))
          .ok());
  bool quit = false;

  const std::string ingest = HandleRequestLine(
      engine, "ingest dataset=ds row=red,disc", &quit);
  EXPECT_NE(ingest.find("\"ok\":true"), std::string::npos) << ingest;
  EXPECT_NE(ingest.find("\"appended\":1"), std::string::npos);
  EXPECT_NE(ingest.find("\"rows\":301"), std::string::npos);

  const std::string exact = HandleRequestLine(
      engine, "query dataset=ds kind=entropy-topk k=1", &quit);
  EXPECT_NE(exact.find("\"path\":\"exact\""), std::string::npos) << exact;

  const std::string sketched = HandleRequestLine(
      engine, "query dataset=hc kind=entropy-topk k=1 sketch-epsilon=0.01",
      &quit);
  EXPECT_NE(sketched.find("\"path\":\"sketch\""), std::string::npos)
      << sketched;
  EXPECT_NE(sketched.find("\"sketch_candidates\":1"), std::string::npos);

  const std::string missing_rows =
      HandleRequestLine(engine, "ingest dataset=ds", &quit);
  EXPECT_NE(missing_rows.find("\"ok\":false"), std::string::npos);

  const std::string stats = HandleRequestLine(engine, "stats", &quit);
  EXPECT_NE(stats.find("\"ingest_rows\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"queries_sketch\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"sketch_bytes\":"), std::string::npos);
}

}  // namespace
}  // namespace swope
