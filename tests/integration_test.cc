// End-to-end flows across modules: generate -> CSV -> parse -> prune ->
// query -> compare against exact; plus the binary format on the same path.

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "src/baselines/entropy_filter.h"
#include "src/baselines/entropy_rank.h"
#include "src/baselines/exact.h"
#include "src/core/entropy.h"
#include "src/core/swope_filter_entropy.h"
#include "src/core/swope_topk_entropy.h"
#include "src/core/swope_topk_mi.h"
#include "src/datagen/dataset_presets.h"
#include "src/eval/accuracy.h"
#include "src/table/binary_io.h"
#include "src/table/csv_reader.h"
#include "src/table/csv_writer.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::AllIndices;
using test::MakeEntropyTable;

TEST(IntegrationTest, CsvRoundTripPreservesQueryAnswers) {
  const Table original = MakeEntropyTable({0.5, 4.5, 2.0, 3.8}, 5000, 1);

  std::ostringstream csv;
  ASSERT_TRUE(WriteCsv(original, csv).ok());
  std::istringstream input(csv.str());
  auto parsed = ReadCsv(input);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  // Dictionary codes may be renumbered, but entropies are invariant.
  const auto before = ExactEntropies(original);
  const auto after = ExactEntropies(*parsed);
  ASSERT_EQ(before.size(), after.size());
  for (size_t j = 0; j < before.size(); ++j) {
    EXPECT_NEAR(before[j], after[j], 1e-9) << j;
  }

  auto exact = ExactTopKEntropy(*parsed, 2);
  auto approx = SwopeTopKEntropy(*parsed, 2);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(approx->items[0].index, exact->items[0].index);
}

TEST(IntegrationTest, BinaryRoundTripPreservesQueries) {
  auto table = MakePresetTable(DatasetPreset::kCdc, 8000, 2);
  ASSERT_TRUE(table.ok());
  const std::string path = testing::TempDir() + "/swope_integration.swpb";
  ASSERT_TRUE(WriteBinaryTableFile(*table, path).ok());
  auto loaded = ReadBinaryTableFile(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  auto before = SwopeTopKEntropy(*table, 4);
  auto after = SwopeTopKEntropy(*loaded, 4);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->items.size(), after->items.size());
  for (size_t i = 0; i < before->items.size(); ++i) {
    EXPECT_EQ(before->items[i].index, after->items[i].index);
    EXPECT_DOUBLE_EQ(before->items[i].estimate, after->items[i].estimate);
  }
}

TEST(IntegrationTest, PresetPipelineTopKAgainstExact) {
  auto table = MakePresetTable(DatasetPreset::kEnem, 20000, 3);
  ASSERT_TRUE(table.ok());
  const Table pruned = table->DropHighSupportColumns(1000);
  const auto exact_scores = ExactEntropies(pruned);

  QueryOptions options;
  options.epsilon = 0.1;  // paper default for entropy top-k
  auto swope = SwopeTopKEntropy(pruned, 4, options);
  auto rank = EntropyRankTopK(pruned, 4, options);
  ASSERT_TRUE(swope.ok());
  ASSERT_TRUE(rank.ok());

  const auto eligible = AllIndices(pruned.num_columns());
  EXPECT_DOUBLE_EQ(TopKAccuracy(rank->items, exact_scores, eligible, 4), 1.0);
  EXPECT_TRUE(SatisfiesApproxTopK(swope->items, exact_scores, eligible, 4,
                                  options.epsilon));
  EXPECT_LE(swope->stats.cells_scanned, rank->stats.cells_scanned);
}

TEST(IntegrationTest, PresetPipelineFilterAgainstExact) {
  auto table = MakePresetTable(DatasetPreset::kHus, 20000, 4);
  ASSERT_TRUE(table.ok());
  const auto exact_scores = ExactEntropies(*table);
  const double eta = 2.0;

  QueryOptions options;
  options.epsilon = 0.05;  // paper default for entropy filtering
  auto swope = SwopeFilterEntropy(*table, eta, options);
  auto baseline = EntropyFilterQuery(*table, eta, options);
  ASSERT_TRUE(swope.ok());
  ASSERT_TRUE(baseline.ok());

  const auto eligible = AllIndices(table->num_columns());
  EXPECT_DOUBLE_EQ(FilterAccuracy(*baseline, exact_scores, eligible, eta),
                   1.0);
  EXPECT_TRUE(
      SatisfiesApproxFilter(*swope, exact_scores, eligible, eta,
                            options.epsilon));
}

TEST(IntegrationTest, MiQueryOnPreset) {
  auto table = MakePresetTable(DatasetPreset::kCdc, 10000, 5);
  ASSERT_TRUE(table.ok());
  const size_t target = 7;
  auto exact = ExactMutualInformations(*table, target);
  ASSERT_TRUE(exact.ok());

  QueryOptions options;
  options.epsilon = 0.5;  // paper default for MI queries
  auto result = SwopeTopKMi(*table, target, 4, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(SatisfiesApproxTopK(
      result->items, *exact,
      test::AllIndicesExcept(table->num_columns(), target), 4,
      options.epsilon));
}

TEST(IntegrationTest, SupportPruningMatchesPaperPreprocessing) {
  auto table = MakePresetTable(DatasetPreset::kPus, 2000, 6);
  ASSERT_TRUE(table.ok());
  const Table pruned = table->DropHighSupportColumns(1000);
  EXPECT_LE(pruned.MaxSupport(), 1000u);
  EXPECT_LE(pruned.num_columns(), table->num_columns());
  EXPECT_GT(pruned.num_columns(), 0u);
}

}  // namespace
}  // namespace swope
