#include "src/table/fingerprint.h"

#include <gtest/gtest.h>

#include "src/datagen/generator.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeEntropyTable;

TEST(FingerprintTest, DeterministicAcrossCopies) {
  const Table a = MakeEntropyTable({3.0, 4.0}, 500, 7);
  const Table b = MakeEntropyTable({3.0, 4.0}, 500, 7);
  EXPECT_EQ(TableFingerprint(a), TableFingerprint(b));
  // Repeated calls on the same object agree too.
  EXPECT_EQ(TableFingerprint(a), TableFingerprint(a));
}

TEST(FingerprintTest, SensitiveToData) {
  const Table base = MakeEntropyTable({3.0, 4.0}, 500, 7);
  // Different generation seed => different codes => different print.
  EXPECT_NE(TableFingerprint(base),
            TableFingerprint(MakeEntropyTable({3.0, 4.0}, 500, 8)));
  // Different row count.
  EXPECT_NE(TableFingerprint(base),
            TableFingerprint(MakeEntropyTable({3.0, 4.0}, 501, 7)));
  // Different column count.
  EXPECT_NE(TableFingerprint(base),
            TableFingerprint(MakeEntropyTable({3.0, 4.0, 2.0}, 500, 7)));
}

TEST(FingerprintTest, SensitiveToColumnName) {
  TableSpec spec;
  spec.num_rows = 200;
  spec.seed = 11;
  spec.columns.push_back(ColumnSpec::EntropyTargeted("alpha", 16, 3.0));
  auto a = GenerateTable(spec);
  ASSERT_TRUE(a.ok());
  spec.columns[0] = ColumnSpec::EntropyTargeted("beta", 16, 3.0);
  auto b = GenerateTable(spec);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(TableFingerprint(*a), TableFingerprint(*b));
}

TEST(FingerprintTest, SensitiveToRowOrder) {
  const Table base = MakeEntropyTable({3.0, 4.0}, 500, 7);
  std::vector<uint32_t> perm(500);
  for (uint32_t r = 0; r < 500; ++r) perm[r] = 499 - r;
  auto permuted = base.PermuteRows(perm);
  ASSERT_TRUE(permuted.ok());
  EXPECT_NE(TableFingerprint(base), TableFingerprint(*permuted));
}

TEST(FingerprintTest, EmptyTableHasStablePrint) {
  const Table empty;
  EXPECT_EQ(TableFingerprint(empty), TableFingerprint(Table()));
}

}  // namespace
}  // namespace swope
