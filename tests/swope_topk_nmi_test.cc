#include "src/core/swope_topk_nmi.h"

#include <gtest/gtest.h>

#include "src/core/entropy.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeMiTable;

TEST(SwopeTopKNmiTest, ExactNmiKnownValues) {
  // Identical columns: NMI = 1.
  const Column a = Column::FromCodes("a", {0, 1, 2, 3, 0, 1, 2, 3});
  auto self = ExactNormalizedMi(a, a);
  ASSERT_TRUE(self.ok());
  EXPECT_NEAR(*self, 1.0, 1e-12);

  // Independent uniform columns over 4 rows: NMI = 0.
  const Column x = Column::FromCodes("x", {0, 1, 0, 1});
  const Column y = Column::FromCodes("y", {0, 0, 1, 1});
  auto indep = ExactNormalizedMi(x, y);
  ASSERT_TRUE(indep.ok());
  EXPECT_NEAR(*indep, 0.0, 1e-12);
}

TEST(SwopeTopKNmiTest, ExactNmiConstantColumnIsZero) {
  const Column c = Column::FromCodes("c", {0, 0, 0, 0});
  const Column x = Column::FromCodes("x", {0, 1, 0, 1});
  auto nmi = ExactNormalizedMi(c, x);
  ASSERT_TRUE(nmi.ok());
  EXPECT_EQ(*nmi, 0.0);
}

TEST(SwopeTopKNmiTest, ExactNmisTargetSlotZeroAndRange) {
  const Table table = MakeMiTable({0.9, 0.3, 0.0}, 20000, 1);
  auto scores = ExactNormalizedMis(table, 0);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ((*scores)[0], 0.0);
  for (double s : *scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_GT((*scores)[1], (*scores)[3]);  // rho 0.9 beats rho 0.0
  EXPECT_TRUE(ExactNormalizedMis(table, 99).status().IsInvalidArgument());
}

TEST(SwopeTopKNmiTest, RejectsBadArguments) {
  const Table table = MakeMiTable({0.5}, 500, 2);
  EXPECT_TRUE(SwopeTopKNmi(table, 9, 1).status().IsInvalidArgument());
  EXPECT_TRUE(SwopeTopKNmi(table, 0, 0).status().IsInvalidArgument());
  auto one = Table::Make({Column::FromCodes("only", {0, 1})});
  ASSERT_TRUE(one.ok());
  EXPECT_TRUE(SwopeTopKNmi(*one, 0, 1).status().IsInvalidArgument());
}

TEST(SwopeTopKNmiTest, FindsStrongestCorrelate) {
  const Table table = MakeMiTable({0.05, 0.9, 0.2, 0.0}, 40000, 3);
  QueryOptions options;
  options.epsilon = 0.5;
  auto result = SwopeTopKNmi(table, 0, 1, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->items.size(), 1u);
  EXPECT_EQ(result->items[0].index, 2u);  // the rho = 0.9 candidate
  EXPECT_GT(result->items[0].estimate, 0.3);
  EXPECT_LE(result->items[0].upper, 1.0 + 1e-12);
}

TEST(SwopeTopKNmiTest, RankingMatchesExactOnSpreadScores) {
  const Table table = MakeMiTable({0.95, 0.6, 0.25, 0.0}, 50000, 4);
  auto exact = ExactNormalizedMis(table, 0);
  ASSERT_TRUE(exact.ok());
  QueryOptions options;
  options.epsilon = 0.3;
  auto result = SwopeTopKNmi(table, 0, 2, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 2u);
  EXPECT_EQ(result->items[0].index, 1u);
  EXPECT_EQ(result->items[1].index, 2u);
}

TEST(SwopeTopKNmiTest, BoundsBracketExactScore) {
  const Table table = MakeMiTable({0.9, 0.5, 0.1}, 40000, 5);
  auto exact = ExactNormalizedMis(table, 0);
  ASSERT_TRUE(exact.ok());
  auto result = SwopeTopKNmi(table, 0, 3);
  ASSERT_TRUE(result.ok());
  for (const auto& item : result->items) {
    EXPECT_LE(item.lower, (*exact)[item.index] + 1e-9) << item.name;
    EXPECT_GE(item.upper, (*exact)[item.index] - 1e-9) << item.name;
  }
}

TEST(SwopeTopKNmiTest, DeterministicInSeed) {
  const Table table = MakeMiTable({0.4, 0.8}, 20000, 6);
  QueryOptions options;
  options.seed = 17;
  auto a = SwopeTopKNmi(table, 0, 1, options);
  auto b = SwopeTopKNmi(table, 0, 1, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->items[0].index, b->items[0].index);
  EXPECT_DOUBLE_EQ(a->items[0].estimate, b->items[0].estimate);
}

TEST(SwopeTopKNmiTest, TinyTableMatchesExactWinner) {
  const Table table = MakeMiTable({0.0, 0.95}, 60, 7);
  auto exact = ExactNormalizedMis(table, 0);
  ASSERT_TRUE(exact.ok());
  auto result = SwopeTopKNmi(table, 0, 1);
  ASSERT_TRUE(result.ok());
  const size_t best = (*exact)[1] >= (*exact)[2] ? 1 : 2;
  EXPECT_EQ(result->items[0].index, best);
}

}  // namespace
}  // namespace swope
