#include "src/common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.Submit([&] { value = 42; }).get();
  EXPECT_EQ(value, 42);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<int> value{0};
  pool.Submit([&] { value = 7; }).get();
  EXPECT_EQ(value, 7);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter, 200);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(0, hits.size(), [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool touched = false;
  pool.ParallelFor(5, 5, [&](size_t) { touched = true; });
  pool.ParallelFor(7, 3, [&](size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ParallelForSmallRangeManyThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(0, 3, [&](size_t) { ++counter; });
  EXPECT_EQ(counter, 3);
}

TEST(ThreadPoolTest, PoolModeNamesRoundTrip) {
  PoolMode mode = PoolMode::kSingleQueue;
  EXPECT_TRUE(ParsePoolMode("stealing", &mode));
  EXPECT_EQ(mode, PoolMode::kWorkStealing);
  EXPECT_TRUE(ParsePoolMode("single-queue", &mode));
  EXPECT_EQ(mode, PoolMode::kSingleQueue);
  EXPECT_FALSE(ParsePoolMode("bogus", &mode));
  EXPECT_STREQ(PoolModeName(PoolMode::kWorkStealing), "stealing");
  EXPECT_STREQ(PoolModeName(PoolMode::kSingleQueue), "single-queue");
}

// The A/B baseline mode must provide the same Submit/ParallelFor
// semantics as the stealing default; only scheduling differs.
TEST(ThreadPoolTest, SingleQueueModeRunsSubmitAndParallelFor) {
  ThreadPool pool(3, PoolMode::kSingleQueue);
  EXPECT_EQ(pool.mode(), PoolMode::kSingleQueue);
  std::atomic<int> value{0};
  pool.Submit([&] { value = 11; }).get();
  EXPECT_EQ(value, 11);
  std::vector<int> hits(500, 0);
  pool.ParallelFor(0, hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
  // A central queue has no deques to steal from.
  EXPECT_EQ(pool.steals(), 0u);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { ++counter; });
    }
  }  // destructor must drain or join without crashing
  EXPECT_LE(counter.load(), 50);
}

}  // namespace
}  // namespace swope
