#include "src/engine/query_engine.h"

#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/swope_filter_mi.h"
#include "src/core/swope_topk_entropy.h"
#include "src/engine/serve.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeEntropyTable;
using test::MakeMiTable;

QuerySpec EntropyTopKSpec(const std::string& dataset, size_t k) {
  QuerySpec spec;
  spec.dataset = dataset;
  spec.kind = QueryKind::kEntropyTopK;
  spec.k = k;
  return spec;
}

QuerySpec MiFilterSpec(const std::string& dataset, double eta) {
  QuerySpec spec;
  spec.dataset = dataset;
  spec.kind = QueryKind::kMiFilter;
  spec.eta = eta;
  spec.target = "t";
  return spec;
}

TEST(QueryEngineTest, MatchesDirectDriverCall) {
  const Table table = MakeEntropyTable({5.0, 3.0, 1.0, 4.0}, 4000, 9);
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterDataset("ds", Table(table)).ok());

  const QuerySpec spec = EntropyTopKSpec("ds", 2);
  auto response = engine.Run(spec);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  // The engine injects a shared permutation equal to what the driver's
  // own seed would generate, so answers must agree exactly.
  auto direct = SwopeTopKEntropy(table, 2, spec.options);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(response->items.size(), direct->items.size());
  for (size_t i = 0; i < direct->items.size(); ++i) {
    EXPECT_EQ(response->items[i].index, direct->items[i].index);
    EXPECT_EQ(response->items[i].estimate, direct->items[i].estimate);
    EXPECT_EQ(response->items[i].lower, direct->items[i].lower);
    EXPECT_EQ(response->items[i].upper, direct->items[i].upper);
  }
  EXPECT_EQ(response->stats.final_sample_size,
            direct->stats.final_sample_size);
  EXPECT_FALSE(response->cache_hit);
}

TEST(QueryEngineTest, MatchesDirectDriverCallForMiFilter) {
  const Table table = MakeMiTable({0.1, 0.9, 0.5}, 3000, 11);
  QueryEngine engine;
  ASSERT_TRUE(engine.RegisterDataset("ds", Table(table)).ok());

  const QuerySpec spec = MiFilterSpec("ds", 0.3);
  auto response = engine.Run(spec);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  auto direct = SwopeFilterMi(table, 0, 0.3, spec.options);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(response->items.size(), direct->items.size());
  for (size_t i = 0; i < direct->items.size(); ++i) {
    EXPECT_EQ(response->items[i].index, direct->items[i].index);
    EXPECT_EQ(response->items[i].estimate, direct->items[i].estimate);
  }
}

TEST(QueryEngineTest, UnknownDatasetIsNotFound) {
  QueryEngine engine;
  auto response = engine.Run(EntropyTopKSpec("missing", 1));
  EXPECT_TRUE(response.status().IsNotFound());
  const EngineCounters counters = engine.GetCounters();
  EXPECT_EQ(counters.queries_started, 1u);
  EXPECT_EQ(counters.queries_failed, 1u);
  EXPECT_EQ(counters.queries_ok, 0u);
}

TEST(QueryEngineTest, RemoveDatasetStopsServingIt) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({3.0}, 500, 1)).ok());
  ASSERT_TRUE(engine.Run(EntropyTopKSpec("ds", 1)).ok());
  ASSERT_TRUE(engine.RemoveDataset("ds").ok());
  EXPECT_TRUE(engine.Run(EntropyTopKSpec("ds", 1)).status().IsNotFound());
}

TEST(QueryEngineTest, RepeatedQueryServedFromCacheWithZeroRows) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({5.0, 2.0}, 3000, 4))
          .ok());

  auto first = engine.Run(EntropyTopKSpec("ds", 1));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  const uint64_t rows_after_first = engine.GetCounters().rows_sampled;
  EXPECT_GT(rows_after_first, 0u);

  auto second = engine.Run(EntropyTopKSpec("ds", 1));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  // The cached answer is the original answer, stats included.
  EXPECT_EQ(second->items.size(), first->items.size());
  EXPECT_EQ(second->stats.final_sample_size,
            first->stats.final_sample_size);
  // And serving it sampled nothing.
  const EngineCounters counters = engine.GetCounters();
  EXPECT_EQ(counters.rows_sampled, rows_after_first);
  EXPECT_EQ(counters.result_cache_hits, 1u);
  EXPECT_EQ(counters.queries_ok, 2u);
}

TEST(QueryEngineTest, EquivalentSpecsShareOneCacheEntry) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeMiTable({0.4, 0.7}, 1000, 6)).ok());

  QuerySpec by_name;
  by_name.dataset = "ds";
  by_name.kind = QueryKind::kMiTopK;
  by_name.k = 50;  // clamps to h - 1 = 2
  by_name.target = "t";
  ASSERT_TRUE(engine.Run(by_name).ok());

  QuerySpec by_index = by_name;
  by_index.k = 2;
  by_index.target = "0";
  by_index.options.failure_probability = 1e-3;  // == 1/N explicitly
  auto response = engine.Run(by_index);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->cache_hit);
  EXPECT_EQ(engine.GetCounters().result_cache_hits, 1u);
}

TEST(QueryEngineTest, ReplacingDatasetInvalidatesItsCachedAnswers) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({3.0}, 800, 1)).ok());
  ASSERT_TRUE(engine.Run(EntropyTopKSpec("ds", 1)).ok());
  // Same name, different contents: the fingerprint changes, so the old
  // cached answer must not be served.
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({3.0}, 800, 2)).ok());
  auto response = engine.Run(EntropyTopKSpec("ds", 1));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->cache_hit);
}

TEST(QueryEngineTest, DisabledResultCacheReExecutes) {
  EngineConfig config;
  config.result_cache_capacity = 0;
  QueryEngine engine(config);
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({3.0}, 800, 1)).ok());
  ASSERT_TRUE(engine.Run(EntropyTopKSpec("ds", 1)).ok());
  auto second = engine.Run(EntropyTopKSpec("ds", 1));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cache_hit);
}

TEST(QueryEngineTest, PreCancelledTokenAborts) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({4.0}, 2000, 1)).ok());
  CancellationToken token;
  token.Cancel();
  auto response = engine.Run(EntropyTopKSpec("ds", 1), &token);
  EXPECT_TRUE(response.status().IsCancelled());
  const EngineCounters counters = engine.GetCounters();
  EXPECT_EQ(counters.cancelled, 1u);
  EXPECT_EQ(counters.queries_failed, 1u);
}

TEST(QueryEngineTest, TimeoutProducesDeadlineExceededOrSuccess) {
  // Wall-clock deadlines cannot be asserted deterministically: a 1 ms
  // budget either expires mid-query (DeadlineExceeded, counted) or the
  // query beats it (success). Both are legal; any other status is a bug.
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({4.0, 3.0}, 4000, 1))
          .ok());
  QuerySpec spec = EntropyTopKSpec("ds", 2);
  spec.timeout_ms = 1;
  auto response = engine.Run(spec);
  if (response.ok()) {
    EXPECT_FALSE(response->cache_hit);
  } else {
    EXPECT_TRUE(response.status().IsDeadlineExceeded())
        << response.status().ToString();
    EXPECT_EQ(engine.GetCounters().deadline_exceeded, 1u);
  }
  // A generous deadline never fires.
  QuerySpec relaxed = EntropyTopKSpec("ds", 1);
  relaxed.timeout_ms = 60000;
  EXPECT_TRUE(engine.Run(relaxed).ok());
}

TEST(QueryEngineTest, SubmitRunsOnThePool) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({5.0, 1.0}, 1500, 2))
          .ok());
  auto future = engine.Submit(EntropyTopKSpec("ds", 1));
  auto response = future.get();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->items.size(), 1u);
}

TEST(QueryEngineTest, RejectsInvalidSpecs) {
  QueryEngine engine;
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({3.0}, 500, 1)).ok());
  QuerySpec spec = EntropyTopKSpec("ds", 0);  // k == 0
  EXPECT_TRUE(engine.Run(spec).status().IsInvalidArgument());
}

TEST(QueryEngineTest, ConfigClampsDegenerateValues) {
  EngineConfig config;
  config.num_threads = 0;
  config.max_in_flight = 0;
  QueryEngine engine(config);
  EXPECT_EQ(engine.config().num_threads, 1u);
  EXPECT_EQ(engine.config().max_in_flight, 1u);
}

// Satellite (c): same seed + same table => byte-identical results no
// matter how many executor threads the engine uses, nor how many
// intra-query worker threads the drivers fan candidate updates across.
// Covers all six query kinds through the unified driver.
TEST(QueryEngineTest, ProfiledRunReportsStagesAndWall) {
  EngineConfig config;
  config.intra_query_threads = 1;  // serial: stage sum cannot exceed wall
  QueryEngine engine(config);
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({5.0, 2.0}, 3000, 3))
          .ok());
  QuerySpec spec = EntropyTopKSpec("ds", 1);
  spec.profile = true;
  auto response = engine.Run(spec);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_NE(response->profile, nullptr);

  const double sum = response->profile->StageSumMs();
  const double wall = response->profile->WallMs();
  EXPECT_GT(sum, 0.0);
  EXPECT_GT(wall, 0.0);
  // Stages are disjoint intervals of one thread here, so their sum is
  // bounded by the measured wall (plus generous jitter slack for the
  // two clocks involved).
  EXPECT_LE(sum, wall * 1.5 + 0.5);
  EXPECT_GT(response->profile->StageCalls(Stage::kCount), 0u);

  // Profiling is not part of the canonical key: the repeat is a cache
  // hit and carries no profile.
  auto repeat = engine.Run(spec);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->cache_hit);
  EXPECT_EQ(repeat->profile, nullptr);

  // Unprofiled runs never allocate a profiler.
  QuerySpec plain = EntropyTopKSpec("ds", 2);
  auto unprofiled = engine.Run(plain);
  ASSERT_TRUE(unprofiled.ok());
  EXPECT_EQ(unprofiled->profile, nullptr);
}

TEST(QueryEngineTest, CountersExposePoolUtilizationAndEvents) {
  EngineConfig config;
  config.intra_query_threads = 2;
  QueryEngine engine(config);
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({4.0, 1.0}, 2000, 5))
          .ok());
  // Submit (not Run) so the executor pool demonstrably executes a task.
  auto future = engine.Submit(EntropyTopKSpec("ds", 1));
  ASSERT_TRUE(future.get().ok());

  const EngineCounters counters = engine.GetCounters();
  // dataset-load + query-admit + query-complete at minimum.
  EXPECT_GE(counters.events_logged, 3u);
  EXPECT_EQ(counters.events_logged, engine.events().TotalAppended());
  EXPECT_GE(counters.executor_utilization, 0.0);
  EXPECT_LE(counters.executor_utilization, 1.0);
  EXPECT_GE(counters.intra_utilization, 0.0);
  EXPECT_LE(counters.intra_utilization, 1.0);
  // The executor ran the submitted query, so busy time was recorded.
  EXPECT_GT(counters.executor_run_ms, 0.0);
}

TEST(QueryEngineDeterminismTest, IdenticalAcrossThreadCounts) {
  const Table table = MakeMiTable({0.2, 0.8, 0.5, 0.3}, 2500, 13);

  std::vector<QuerySpec> specs;
  specs.push_back(EntropyTopKSpec("ds", 2));
  specs.push_back(MiFilterSpec("ds", 0.2));
  auto targeted = [](QueryKind kind, size_t k, double eta) {
    QuerySpec spec;
    spec.dataset = "ds";
    spec.kind = kind;
    spec.k = k;
    spec.eta = eta;
    spec.target = "t";
    return spec;
  };
  {
    QuerySpec entropy_filter;
    entropy_filter.dataset = "ds";
    entropy_filter.kind = QueryKind::kEntropyFilter;
    entropy_filter.eta = 2.0;
    specs.push_back(entropy_filter);
  }
  specs.push_back(targeted(QueryKind::kMiTopK, 2, 0.0));
  specs.push_back(targeted(QueryKind::kNmiTopK, 2, 0.0));
  specs.push_back(targeted(QueryKind::kNmiFilter, 0, 0.2));

  auto render_all = [&table, &specs](size_t num_threads,
                                     size_t intra_threads) {
    EngineConfig config;
    config.num_threads = num_threads;
    config.intra_query_threads = intra_threads;
    config.result_cache_capacity = 0;  // force real execution every time
    QueryEngine engine(config);
    EXPECT_TRUE(engine.RegisterDataset("ds", Table(table)).ok());
    std::vector<std::future<Result<QueryResponse>>> futures;
    futures.reserve(specs.size());
    for (const QuerySpec& spec : specs) futures.push_back(engine.Submit(spec));
    std::vector<std::string> rendered;
    for (auto& future : futures) {
      auto response = future.get();
      EXPECT_TRUE(response.ok()) << response.status().ToString();
      rendered.push_back(response.ok() ? QueryResponseToJson(*response)
                                       : std::string());
    }
    return rendered;
  };

  const std::vector<std::string> single = render_all(1, 1);
  const std::vector<std::string> parallel = render_all(8, 4);
  ASSERT_EQ(single.size(), parallel.size());
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i], parallel[i]) << "spec #" << i;
  }
}

TEST(QueryEngineDeterminismTest, ConcurrentIdenticalSpecsAgree) {
  EngineConfig config;
  config.num_threads = 8;
  config.result_cache_capacity = 0;  // every run executes for real
  QueryEngine engine(config);
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({5.0, 2.0, 3.5}, 2000, 3))
          .ok());

  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(engine.Submit(EntropyTopKSpec("ds", 2)));
  }
  std::string reference;
  for (auto& future : futures) {
    auto response = future.get();
    ASSERT_TRUE(response.ok());
    const std::string rendered = QueryResponseToJson(*response);
    if (reference.empty()) reference = rendered;
    EXPECT_EQ(rendered, reference);
  }
}

}  // namespace
}  // namespace swope
