#include "src/engine/permutation_cache.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "src/table/shuffle.h"

namespace swope {
namespace {

TEST(PermutationCacheTest, SharesOneOrderPerKey) {
  PermutationCache cache(4);
  auto first = cache.GetOrCreate(7, 100, 42, false);
  auto second = cache.GetOrCreate(7, 100, 42, false);
  ASSERT_NE(first, nullptr);
  // Identical keys share the exact same vector, not a copy.
  EXPECT_EQ(first.get(), second.get());

  const PermutationCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PermutationCacheTest, MatchesShuffledRowOrder) {
  PermutationCache cache(4);
  auto order = cache.GetOrCreate(7, 256, 42, false);
  ASSERT_NE(order, nullptr);
  // Sharing must not change what any single query would have seen.
  EXPECT_EQ(*order, ShuffledRowOrder(256, 42));
}

TEST(PermutationCacheTest, DistinctKeysGetDistinctOrders) {
  PermutationCache cache(8);
  auto base = cache.GetOrCreate(7, 100, 42, false);
  EXPECT_NE(base.get(), cache.GetOrCreate(8, 100, 42, false).get());
  EXPECT_NE(base.get(), cache.GetOrCreate(7, 100, 43, false).get());
  EXPECT_NE(base.get(), cache.GetOrCreate(7, 100, 42, true).get());
}

TEST(PermutationCacheTest, SequentialOrderIsIdentityAndIgnoresSeed) {
  PermutationCache cache(4);
  auto a = cache.GetOrCreate(7, 50, 1, true);
  auto b = cache.GetOrCreate(7, 50, 999, true);
  ASSERT_NE(a, nullptr);
  // Sequential sampling reads rows in storage order; the seed is moot.
  EXPECT_EQ(a.get(), b.get());
  std::vector<uint32_t> identity(50);
  std::iota(identity.begin(), identity.end(), 0u);
  EXPECT_EQ(*a, identity);
}

TEST(PermutationCacheTest, OrderIsAPermutation) {
  PermutationCache cache(4);
  auto order = cache.GetOrCreate(7, 512, 3, false);
  ASSERT_NE(order, nullptr);
  std::vector<uint32_t> sorted = *order;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t r = 0; r < 512; ++r) EXPECT_EQ(sorted[r], r);
}

TEST(PermutationCacheTest, EvictsOverCapacityButHandlesSurvive) {
  PermutationCache cache(1);
  auto first = cache.GetOrCreate(1, 64, 1, false);
  auto second = cache.GetOrCreate(2, 64, 1, false);  // evicts key 1
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  EXPECT_EQ(cache.GetStats().entries, 1u);
  // The evicted order stays valid for the query still holding it.
  EXPECT_EQ(first->size(), 64u);
  EXPECT_EQ(second->size(), 64u);
}

TEST(PermutationCacheTest, ZeroCapacityBuildsFreshOrders) {
  PermutationCache cache(0);
  auto a = cache.GetOrCreate(7, 64, 42, false);
  auto b = cache.GetOrCreate(7, 64, 42, false);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // No sharing, but determinism still holds.
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace swope
