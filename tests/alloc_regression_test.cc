// Zero-allocation serving regression test.
//
// Interposes global operator new/delete with a counting allocator and
// provides the strong definition of swope::AllocationCount() (the weak
// default in src/common/alloc_hook.cc yields to it). The test then pins
// the steady-state contract: with a pooled QueryMemory (arena + scratch)
// and a pre-built shared row order, a warmed-up serial query performs
// ZERO heap allocations -- not "few", zero. Any regression that slips a
// per-query std::vector, std::string, or node allocation back into the
// core path fails here with an exact count.
//
// Under ASan/TSan the sanitizer runtime owns operator new, so the
// interposer is compiled out and the tests skip.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/alloc_hook.h"
#include "src/core/query_memory.h"
#include "src/core/query_options.h"
#include "src/core/query_result.h"
#include "src/core/swope_filter_entropy.h"
#include "src/core/swope_topk_entropy.h"
#include "src/core/swope_topk_mi.h"
#include "src/table/shuffle.h"
#include "src/table/table.h"
#include "tests/test_util.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SWOPE_ALLOC_INTERPOSER 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SWOPE_ALLOC_INTERPOSER 0
#else
#define SWOPE_ALLOC_INTERPOSER 1
#endif
#else
#define SWOPE_ALLOC_INTERPOSER 1
#endif

#if SWOPE_ALLOC_INTERPOSER

namespace {
// Relaxed is fine: the serial test path is single-threaded and only
// deltas are compared.
std::atomic<uint64_t> g_allocations{0};

void* CountedNew(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* CountedNewAligned(size_t size, std::align_val_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<size_t>(alignment),
                                   (size + static_cast<size_t>(alignment) - 1) /
                                       static_cast<size_t>(alignment) *
                                       static_cast<size_t>(alignment))) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

// Strong definition: overrides the weak zero in src/common/alloc_hook.cc.
namespace swope {
uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}
}  // namespace swope

void* operator new(size_t size) { return CountedNew(size); }
void* operator new[](size_t size) { return CountedNew(size); }
void* operator new(size_t size, std::align_val_t a) {
  return CountedNewAligned(size, a);
}
void* operator new[](size_t size, std::align_val_t a) {
  return CountedNewAligned(size, a);
}
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // SWOPE_ALLOC_INTERPOSER

namespace swope {
namespace {

#if !SWOPE_ALLOC_INTERPOSER
TEST(AllocRegressionTest, SkippedUnderSanitizers) {
  GTEST_SKIP() << "sanitizer runtime owns operator new; interposer disabled";
}
#else

// Runs `query` against pooled memory and returns the heap-allocation
// count of the LAST of `rounds` executions (earlier ones are warmup:
// they size the arena blocks and decode buffers).
template <typename QueryFn>
uint64_t SteadyStateAllocs(const std::shared_ptr<QueryMemoryPool>& pool,
                           QueryFn query, int rounds) {
  uint64_t last = 0;
  for (int i = 0; i < rounds; ++i) {
    QueryMemoryLease lease = QueryMemoryPool::Acquire(pool);
    const uint64_t before = AllocationCount();
    {
      QueryOptions options;
      options.seed = 7;
      options.memory = lease->arena().resource();
      options.scratch = &lease->scratch();
      auto result = query(options);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      last = AllocationCount() - before;
    }  // result (arena-backed) dies before the lease rewinds the arena
  }
  return last;
}

TEST(AllocRegressionTest, InterposerCounts) {
  const uint64_t before = AllocationCount();
  auto p = std::make_unique<std::vector<int>>(100);
  const uint64_t after = AllocationCount();
  EXPECT_GT(after, before);
  (void)p;
}

TEST(AllocRegressionTest, EntropyTopKSteadyStateIsZeroAlloc) {
  const uint64_t rows = 4000;
  Table table = test::MakeEntropyTable({1.0, 2.5, 0.5, 1.8, 3.0}, rows, 11);
  auto order = std::make_shared<const std::vector<uint32_t>>(
      ShuffledRowOrder(static_cast<uint32_t>(rows), /*seed=*/7));
  auto pool = std::make_shared<QueryMemoryPool>();

  const uint64_t allocs = SteadyStateAllocs(
      pool,
      [&](QueryOptions& options) {
        options.shared_order = order;  // else the sampler shuffles per query
        return SwopeTopKEntropy(table, /*k=*/2, options);
      },
      /*rounds=*/4);
  EXPECT_EQ(allocs, 0u) << "entropy top-k steady state must not touch the "
                           "heap; see docs/ENGINE.md";
}

TEST(AllocRegressionTest, EntropyFilterSteadyStateIsZeroAlloc) {
  const uint64_t rows = 4000;
  Table table = test::MakeEntropyTable({1.0, 2.5, 0.5, 1.8}, rows, 13);
  auto order = std::make_shared<const std::vector<uint32_t>>(
      ShuffledRowOrder(static_cast<uint32_t>(rows), /*seed=*/7));
  auto pool = std::make_shared<QueryMemoryPool>();

  const uint64_t allocs = SteadyStateAllocs(
      pool,
      [&](QueryOptions& options) {
        options.epsilon = 0.05;
        options.shared_order = order;
        return SwopeFilterEntropy(table, /*eta=*/1.5, options);
      },
      /*rounds=*/4);
  EXPECT_EQ(allocs, 0u) << "entropy filter steady state must not touch the "
                           "heap; see docs/ENGINE.md";
}

TEST(AllocRegressionTest, MiTopKSteadyStateIsZeroAlloc) {
  const uint64_t rows = 4000;
  Table table = test::MakeMiTable({0.9, 0.1, 0.5}, rows, 17);
  auto order = std::make_shared<const std::vector<uint32_t>>(
      ShuffledRowOrder(static_cast<uint32_t>(rows), /*seed=*/7));
  auto pool = std::make_shared<QueryMemoryPool>();

  const uint64_t allocs = SteadyStateAllocs(
      pool,
      [&](QueryOptions& options) {
        options.epsilon = 0.5;
        options.shared_order = order;
        return SwopeTopKMi(table, /*target=*/0, /*k=*/1, options);
      },
      /*rounds=*/4);
  EXPECT_EQ(allocs, 0u) << "MI top-k steady state must not touch the heap; "
                           "see docs/ENGINE.md";
}

TEST(AllocRegressionTest, ColdQueryAllocatesThenPoolAbsorbsIt) {
  const uint64_t rows = 2000;
  Table table = test::MakeEntropyTable({1.0, 2.0}, rows, 19);
  auto order = std::make_shared<const std::vector<uint32_t>>(
      ShuffledRowOrder(static_cast<uint32_t>(rows), /*seed=*/7));
  auto pool = std::make_shared<QueryMemoryPool>();

  // First execution is allowed (expected, even) to allocate: it sizes
  // the arena chain and the scratch buffers.
  uint64_t first = 0;
  {
    QueryMemoryLease lease = QueryMemoryPool::Acquire(pool);
    QueryOptions options;
    options.seed = 7;
    options.shared_order = order;
    options.memory = lease->arena().resource();
    options.scratch = &lease->scratch();
    const uint64_t before = AllocationCount();
    auto result = SwopeTopKEntropy(table, 1, options);
    ASSERT_TRUE(result.ok());
    first = AllocationCount() - before;
  }
  EXPECT_GT(first, 0u);
  EXPECT_GT(pool->IdleArenaBytes(), 0u);
}

#endif  // SWOPE_ALLOC_INTERPOSER

}  // namespace
}  // namespace swope
