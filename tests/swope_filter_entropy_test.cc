#include "src/core/swope_filter_entropy.h"

#include <gtest/gtest.h>

#include "src/core/entropy.h"
#include "src/eval/accuracy.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::AllIndices;
using test::MakeEntropyTable;

TEST(SwopeFilterEntropyTest, RejectsBadArguments) {
  const Table table = MakeEntropyTable({2.0, 1.0}, 500, 1);
  EXPECT_TRUE(SwopeFilterEntropy(table, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(SwopeFilterEntropy(table, -1.0).status().IsInvalidArgument());
  QueryOptions bad;
  bad.growth_factor = 0.9;
  EXPECT_TRUE(SwopeFilterEntropy(table, 1.0, bad).status().IsInvalidArgument());
  auto empty = Table::Make({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(SwopeFilterEntropy(*empty, 1.0).status().IsInvalidArgument());
}

TEST(SwopeFilterEntropyTest, SeparatesClearlyAboveAndBelow) {
  const Table table =
      MakeEntropyTable({0.2, 5.0, 0.5, 4.5, 0.1, 5.5}, 40000, 2);
  QueryOptions options;
  options.epsilon = 0.05;
  auto result = SwopeFilterEntropy(table, 2.0, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Contains(1));
  EXPECT_TRUE(result->Contains(3));
  EXPECT_TRUE(result->Contains(5));
  EXPECT_FALSE(result->Contains(0));
  EXPECT_FALSE(result->Contains(2));
  EXPECT_FALSE(result->Contains(4));
}

TEST(SwopeFilterEntropyTest, ItemsAscendingByIndex) {
  const Table table =
      MakeEntropyTable({5.0, 4.0, 4.5, 3.5, 5.5}, 20000, 3);
  auto result = SwopeFilterEntropy(table, 1.0);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->items.size(); ++i) {
    EXPECT_LT(result->items[i - 1].index, result->items[i].index);
  }
}

TEST(SwopeFilterEntropyTest, VeryHighThresholdReturnsNothing) {
  const Table table = MakeEntropyTable({1.0, 2.0, 3.0}, 20000, 4);
  auto result = SwopeFilterEntropy(table, 50.0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->items.empty());
  // High thresholds are cheap: the upper bound dives below (1+eps)*eta
  // quickly... but support caps already reject at iteration one.
  EXPECT_LT(result->stats.final_sample_size, 20000u);
}

TEST(SwopeFilterEntropyTest, ThresholdBelowEverythingReturnsAll) {
  const Table table = MakeEntropyTable({3.0, 4.0, 5.0}, 30000, 5);
  auto result = SwopeFilterEntropy(table, 0.5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items.size(), 3u);
}

TEST(SwopeFilterEntropyTest, DeterministicInSeed) {
  const Table table = MakeEntropyTable({1.5, 2.5, 2.0, 3.0}, 30000, 6);
  QueryOptions options;
  options.seed = 5;
  auto a = SwopeFilterEntropy(table, 2.2, options);
  auto b = SwopeFilterEntropy(table, 2.2, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->items.size(), b->items.size());
  for (size_t i = 0; i < a->items.size(); ++i) {
    EXPECT_EQ(a->items[i].index, b->items[i].index);
  }
}

TEST(SwopeFilterEntropyTest, TinyTableExactClassification) {
  const Table table = MakeEntropyTable({1.0, 3.0, 2.0}, 60, 7);
  const auto exact = ExactEntropies(table);
  auto result = SwopeFilterEntropy(table, 1.5);
  ASSERT_TRUE(result.ok());
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(result->Contains(j), exact[j] >= 1.5) << j;
  }
}

TEST(SwopeFilterEntropyTest, CandidatesAllResolved) {
  const Table table = MakeEntropyTable({0.5, 2.0, 3.5, 1.2}, 20000, 8);
  auto result = SwopeFilterEntropy(table, 1.8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.candidates_remaining, 0u);
}

TEST(SwopeFilterEntropyTest, NearThresholdScoresMayGoEitherWayButInBand) {
  // Scores right at the threshold: whatever is returned must satisfy
  // Definition 6 (only in-band attributes are discretionary).
  const Table table =
      MakeEntropyTable({2.0, 2.01, 1.99, 3.5, 0.5}, 50000, 9);
  const auto exact = ExactEntropies(table);
  QueryOptions options;
  options.epsilon = 0.05;
  auto result = SwopeFilterEntropy(table, 2.0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(SatisfiesApproxFilter(*result, exact,
                                    AllIndices(table.num_columns()), 2.0,
                                    options.epsilon));
  EXPECT_TRUE(result->Contains(3));   // clearly above the band
  EXPECT_FALSE(result->Contains(4));  // clearly below the band
}

TEST(SwopeFilterEntropyTest, StopsEarlyOnWideGap) {
  const Table table =
      MakeEntropyTable({5.5, 5.0, 0.2, 0.1}, 200000, 10);
  QueryOptions options;
  options.epsilon = 0.1;
  auto result = SwopeFilterEntropy(table, 2.0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->stats.final_sample_size, 200000u / 4);
  EXPECT_TRUE(result->Contains(0));
  EXPECT_TRUE(result->Contains(1));
  EXPECT_FALSE(result->Contains(2));
}

TEST(SwopeFilterEntropyTest, NonDoublingGrowthFactorStillSound) {
  const Table table = MakeEntropyTable({3.0, 1.0, 2.2, 0.4}, 40000, 20);
  const auto exact = ExactEntropies(table);
  for (double growth : {1.5, 3.0}) {
    QueryOptions options;
    options.epsilon = 0.05;
    options.growth_factor = growth;
    auto result = SwopeFilterEntropy(table, 1.8, options);
    ASSERT_TRUE(result.ok()) << "growth " << growth;
    EXPECT_TRUE(SatisfiesApproxFilter(*result, exact,
                                      AllIndices(table.num_columns()), 1.8,
                                      options.epsilon))
        << "growth " << growth;
  }
}

TEST(SwopeFilterEntropyTest, WiderEpsilonWidensTheBandNotTheErrors) {
  // With a huge band the query is nearly free; attributes far outside the
  // band must still be classified correctly.
  const Table table = MakeEntropyTable({5.5, 0.2}, 100000, 21);
  QueryOptions options;
  options.epsilon = 0.9;
  auto result = SwopeFilterEntropy(table, 2.0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Contains(0));
  EXPECT_FALSE(result->Contains(1));
  EXPECT_LT(result->stats.final_sample_size, 100000u);
}

TEST(SwopeFilterEntropyTest, SequentialSamplingMatchesDefinition) {
  const Table table = MakeEntropyTable({2.4, 2.0, 1.6, 3.5}, 40000, 22);
  const auto exact = ExactEntropies(table);
  QueryOptions options;
  options.epsilon = 0.05;
  options.sequential_sampling = true;
  auto result = SwopeFilterEntropy(table, 2.0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(SatisfiesApproxFilter(*result, exact,
                                    AllIndices(table.num_columns()), 2.0,
                                    options.epsilon));
}

TEST(SwopeFilterEntropyTest, AcceptedItemsCarryIntervals) {
  const Table table = MakeEntropyTable({4.0, 0.5}, 30000, 11);
  auto result = SwopeFilterEntropy(table, 2.0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 1u);
  const auto& item = result->items[0];
  EXPECT_EQ(item.index, 0u);
  EXPECT_EQ(item.name, "e0");
  EXPECT_LE(item.lower, item.upper);
  EXPECT_GE(item.estimate, item.lower - 1e-12);
}

}  // namespace
}  // namespace swope
