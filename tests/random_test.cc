#include "src/common/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(RandomTest, SplitMix64IsDeterministic) {
  uint64_t s1 = 123;
  uint64_t s2 = 123;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64Next(s1), SplitMix64Next(s2));
  }
}

TEST(RandomTest, SameSeedSameStream) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformU64StaysInBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RandomTest, UniformU64BoundOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.UniformU64(1), 0u);
}

TEST(RandomTest, UniformU64IsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformU64(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

TEST(RandomTest, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RandomTest, NormalHasZeroMeanUnitVariance) {
  Rng rng(19);
  constexpr int kDraws = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.05);
}

TEST(RandomTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, RandomPermutationIsAPermutation) {
  Rng rng(29);
  const auto perm = RandomPermutation(1000, rng);
  ASSERT_EQ(perm.size(), 1000u);
  std::vector<bool> seen(1000, false);
  for (uint32_t p : perm) {
    ASSERT_LT(p, 1000u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(RandomTest, RandomPermutationEmptyAndSingle) {
  Rng rng(31);
  EXPECT_TRUE(RandomPermutation(0, rng).empty());
  const auto one = RandomPermutation(1, rng);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(RandomTest, ShuffleKeepsMultiset) {
  Rng rng(37);
  std::vector<int> values = {1, 2, 2, 3, 3, 3};
  std::vector<int> shuffled = values;
  Shuffle(shuffled, rng);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RandomTest, ShuffleActuallyMoves) {
  Rng rng(41);
  std::vector<int> values(200);
  for (int i = 0; i < 200; ++i) values[i] = i;
  std::vector<int> shuffled = values;
  Shuffle(shuffled, rng);
  EXPECT_NE(shuffled, values);
}

}  // namespace
}  // namespace swope
