#include "src/table/table.h"

#include <gtest/gtest.h>

namespace swope {
namespace {

Column MakeColumn(const std::string& name, uint32_t support,
                  std::vector<ValueCode> codes) {
  auto column = Column::Make(name, support, std::move(codes));
  EXPECT_TRUE(column.ok()) << column.status().ToString();
  return std::move(column).value();
}

Table MakeTestTable() {
  std::vector<Column> columns;
  columns.push_back(MakeColumn("a", 2, {0, 1, 0, 1}));
  columns.push_back(MakeColumn("b", 3, {2, 2, 1, 0}));
  columns.push_back(MakeColumn("c", 10, {9, 3, 5, 7}));
  auto table = Table::Make(std::move(columns));
  EXPECT_TRUE(table.ok());
  return std::move(table).value();
}

TEST(TableTest, BasicAccessors) {
  const Table table = MakeTestTable();
  EXPECT_EQ(table.num_rows(), 4u);
  EXPECT_EQ(table.num_columns(), 3u);
  EXPECT_EQ(table.column(1).name(), "b");
  EXPECT_EQ(table.ColumnNames(),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(table.MaxSupport(), 10u);
}

TEST(TableTest, EmptyTable) {
  auto table = Table::Make({});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 0u);
  EXPECT_EQ(table->num_columns(), 0u);
  EXPECT_EQ(table->MaxSupport(), 0u);
}

TEST(TableTest, RejectsMismatchedRowCounts) {
  std::vector<Column> columns;
  columns.push_back(MakeColumn("a", 2, {0, 1}));
  columns.push_back(MakeColumn("b", 2, {0, 1, 1}));
  auto table = Table::Make(std::move(columns));
  EXPECT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsInvalidArgument());
}

TEST(TableTest, RejectsDuplicateNames) {
  std::vector<Column> columns;
  columns.push_back(MakeColumn("a", 2, {0}));
  columns.push_back(MakeColumn("a", 2, {1}));
  EXPECT_FALSE(Table::Make(std::move(columns)).ok());
}

TEST(TableTest, RejectsEmptyName) {
  std::vector<Column> columns;
  columns.push_back(MakeColumn("", 2, {0}));
  EXPECT_FALSE(Table::Make(std::move(columns)).ok());
}

TEST(TableTest, ColumnIndexFindsAndFails) {
  const Table table = MakeTestTable();
  auto found = table.ColumnIndex("b");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 1u);
  EXPECT_TRUE(table.ColumnIndex("zzz").status().IsNotFound());
}

TEST(TableTest, DropHighSupportColumns) {
  const Table table = MakeTestTable();
  const Table pruned = table.DropHighSupportColumns(3);
  EXPECT_EQ(pruned.num_columns(), 2u);
  EXPECT_EQ(pruned.column(0).name(), "a");
  EXPECT_EQ(pruned.column(1).name(), "b");
  EXPECT_EQ(pruned.num_rows(), 4u);
}

TEST(TableTest, DropHighSupportCanEmpty) {
  const Table table = MakeTestTable();
  const Table pruned = table.DropHighSupportColumns(1);
  EXPECT_EQ(pruned.num_columns(), 0u);
}

TEST(TableTest, PermuteRowsReordersAllColumns) {
  const Table table = MakeTestTable();
  auto permuted = table.PermuteRows({3, 2, 1, 0});
  ASSERT_TRUE(permuted.ok());
  EXPECT_EQ(permuted->column(0).code(0), table.column(0).code(3));
  EXPECT_EQ(permuted->column(1).code(0), table.column(1).code(3));
  EXPECT_EQ(permuted->column(2).code(3), table.column(2).code(0));
}

TEST(TableTest, PermuteEmptyTable) {
  auto table = Table::Make({});
  ASSERT_TRUE(table.ok());
  auto permuted = table->PermuteRows({});
  ASSERT_TRUE(permuted.ok());
  EXPECT_EQ(permuted->num_rows(), 0u);
}

TEST(TableTest, PermuteIdentityIsNoOp) {
  const Table table = MakeTestTable();
  auto permuted = table.PermuteRows({0, 1, 2, 3});
  ASSERT_TRUE(permuted.ok());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    EXPECT_EQ(permuted->column(c).codes(), table.column(c).codes());
  }
}

TEST(TableTest, PermutePreservesLabels) {
  auto labeled = Column::Make("l", 2, {0, 1, 1, 0}, {"no", "yes"});
  ASSERT_TRUE(labeled.ok());
  auto table = Table::Make({std::move(labeled).value()});
  ASSERT_TRUE(table.ok());
  auto permuted = table->PermuteRows({3, 2, 1, 0});
  ASSERT_TRUE(permuted.ok());
  EXPECT_EQ(permuted->column(0).labels(),
            (std::vector<std::string>{"no", "yes"}));
}

TEST(TableTest, PermuteRowsRejectsBadPermutation) {
  const Table table = MakeTestTable();
  EXPECT_FALSE(table.PermuteRows({0, 1, 2}).ok());        // wrong size
  EXPECT_FALSE(table.PermuteRows({0, 0, 1, 2}).ok());     // duplicate
  EXPECT_FALSE(table.PermuteRows({0, 1, 2, 9}).ok());     // out of range
}

}  // namespace
}  // namespace swope
