// Golden determinism regression for the unified driver's parallel path:
// for a fixed seed, running with QueryOptions::pool set (N worker
// threads) must produce results byte-identical to the serial path across
// all six query kinds — same items (bitwise-equal doubles), same stats.
// The argument for why this holds by construction is in docs/CORE.md.

#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/core/swope_filter_entropy.h"
#include "src/core/swope_filter_mi.h"
#include "src/core/swope_filter_nmi.h"
#include "src/core/swope_topk_entropy.h"
#include "src/core/swope_topk_mi.h"
#include "src/core/swope_topk_nmi.h"
#include "tests/test_util.h"

namespace swope {
namespace {

// Bitwise equality: any divergence in ordering or arithmetic between the
// serial and parallel paths shows up here, not just large errors.
void ExpectIdentical(const std::vector<AttributeScore>& serial,
                     const std::vector<AttributeScore>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].index, parallel[i].index);
    EXPECT_EQ(serial[i].name, parallel[i].name);
    EXPECT_EQ(serial[i].estimate, parallel[i].estimate);
    EXPECT_EQ(serial[i].lower, parallel[i].lower);
    EXPECT_EQ(serial[i].upper, parallel[i].upper);
  }
}

void ExpectIdentical(const QueryStats& serial, const QueryStats& parallel) {
  EXPECT_EQ(serial.final_sample_size, parallel.final_sample_size);
  EXPECT_EQ(serial.initial_sample_size, parallel.initial_sample_size);
  EXPECT_EQ(serial.iterations, parallel.iterations);
  EXPECT_EQ(serial.cells_scanned, parallel.cells_scanned);
  EXPECT_EQ(serial.candidates_remaining, parallel.candidates_remaining);
  EXPECT_EQ(serial.exhausted_dataset, parallel.exhausted_dataset);
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  ParallelDeterminismTest()
      : entropy_table_(test::MakeEntropyTable(
            {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}, 4000, 21)),
        mi_table_(test::MakeMiTable({0.0, 0.2, 0.4, 0.6, 0.8}, 4000, 22)),
        pool_(4) {}

  QueryOptions Serial() const {
    QueryOptions options;
    options.seed = 9;
    return options;
  }

  QueryOptions Parallel() {
    QueryOptions options = Serial();
    options.pool = &pool_;
    return options;
  }

  Table entropy_table_;
  Table mi_table_;
  ThreadPool pool_;
};

TEST_F(ParallelDeterminismTest, EntropyTopK) {
  auto serial = SwopeTopKEntropy(entropy_table_, 3, Serial());
  auto parallel = SwopeTopKEntropy(entropy_table_, 3, Parallel());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial->items, parallel->items);
  ExpectIdentical(serial->stats, parallel->stats);
}

TEST_F(ParallelDeterminismTest, EntropyFilter) {
  auto serial = SwopeFilterEntropy(entropy_table_, 2.0, Serial());
  auto parallel = SwopeFilterEntropy(entropy_table_, 2.0, Parallel());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial->items, parallel->items);
  ExpectIdentical(serial->stats, parallel->stats);
}

TEST_F(ParallelDeterminismTest, MiTopK) {
  auto serial = SwopeTopKMi(mi_table_, 0, 3, Serial());
  auto parallel = SwopeTopKMi(mi_table_, 0, 3, Parallel());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial->items, parallel->items);
  ExpectIdentical(serial->stats, parallel->stats);
}

TEST_F(ParallelDeterminismTest, MiFilter) {
  auto serial = SwopeFilterMi(mi_table_, 0, 0.1, Serial());
  auto parallel = SwopeFilterMi(mi_table_, 0, 0.1, Parallel());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial->items, parallel->items);
  ExpectIdentical(serial->stats, parallel->stats);
}

TEST_F(ParallelDeterminismTest, NmiTopK) {
  auto serial = SwopeTopKNmi(mi_table_, 0, 3, Serial());
  auto parallel = SwopeTopKNmi(mi_table_, 0, 3, Parallel());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial->items, parallel->items);
  ExpectIdentical(serial->stats, parallel->stats);
}

TEST_F(ParallelDeterminismTest, NmiFilter) {
  auto serial = SwopeFilterNmi(mi_table_, 0, 0.2, Serial());
  auto parallel = SwopeFilterNmi(mi_table_, 0, 0.2, Parallel());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial->items, parallel->items);
  ExpectIdentical(serial->stats, parallel->stats);
}

// Repeated parallel runs are stable against scheduling noise: several
// executions with the pool enabled agree with each other exactly.
TEST_F(ParallelDeterminismTest, RepeatedParallelRunsAgree) {
  auto first = SwopeTopKMi(mi_table_, 0, 3, Parallel());
  ASSERT_TRUE(first.ok());
  for (int run = 0; run < 5; ++run) {
    auto again = SwopeTopKMi(mi_table_, 0, 3, Parallel());
    ASSERT_TRUE(again.ok());
    ExpectIdentical(first->items, again->items);
    ExpectIdentical(first->stats, again->stats);
  }
}

}  // namespace
}  // namespace swope
