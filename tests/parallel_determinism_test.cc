// Golden determinism regression for the unified driver's parallel path:
// for a fixed seed, running with QueryOptions::pool set (N worker
// threads) must produce results byte-identical to the serial path across
// all six query kinds — same items (bitwise-equal doubles), same stats.
// The argument for why this holds by construction is in docs/CORE.md.

#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/core/swope_filter_entropy.h"
#include "src/obs/query_trace.h"
#include "src/core/swope_filter_mi.h"
#include "src/core/swope_filter_nmi.h"
#include "src/core/swope_topk_entropy.h"
#include "src/core/swope_topk_mi.h"
#include "src/core/swope_topk_nmi.h"
#include "tests/test_util.h"

namespace swope {
namespace {

// Bitwise equality: any divergence in ordering or arithmetic between the
// serial and parallel paths shows up here, not just large errors.
void ExpectIdentical(std::span<const AttributeScore> serial,
                     std::span<const AttributeScore> parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].index, parallel[i].index);
    EXPECT_EQ(serial[i].name, parallel[i].name);
    EXPECT_EQ(serial[i].estimate, parallel[i].estimate);
    EXPECT_EQ(serial[i].lower, parallel[i].lower);
    EXPECT_EQ(serial[i].upper, parallel[i].upper);
  }
}

void ExpectIdentical(const QueryStats& serial, const QueryStats& parallel) {
  EXPECT_EQ(serial.final_sample_size, parallel.final_sample_size);
  EXPECT_EQ(serial.initial_sample_size, parallel.initial_sample_size);
  EXPECT_EQ(serial.iterations, parallel.iterations);
  EXPECT_EQ(serial.cells_scanned, parallel.cells_scanned);
  EXPECT_EQ(serial.candidates_remaining, parallel.candidates_remaining);
  EXPECT_EQ(serial.exhausted_dataset, parallel.exhausted_dataset);
}

// Every trace field except wall time is a pure function of (dataset,
// spec, seed), so serial and parallel runs must agree bitwise.
void ExpectIdentical(const QueryTrace& serial, const QueryTrace& parallel) {
  ASSERT_EQ(serial.rounds().size(), parallel.rounds().size());
  for (size_t i = 0; i < serial.rounds().size(); ++i) {
    const RoundTrace& s = serial.rounds()[i];
    const RoundTrace& p = parallel.rounds()[i];
    EXPECT_EQ(s.round, p.round);
    EXPECT_EQ(s.sample_size, p.sample_size);
    EXPECT_EQ(s.lambda, p.lambda);
    EXPECT_EQ(s.max_bias, p.max_bias);
    EXPECT_EQ(s.active_before, p.active_before);
    EXPECT_EQ(s.decided, p.decided);
    EXPECT_EQ(s.cells_scanned, p.cells_scanned);
  }
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  ParallelDeterminismTest()
      : entropy_table_(test::MakeEntropyTable(
            {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}, 4000, 21)),
        mi_table_(test::MakeMiTable({0.0, 0.2, 0.4, 0.6, 0.8}, 4000, 22)),
        pool_(4) {}

  QueryOptions Serial() const {
    QueryOptions options;
    options.seed = 9;
    return options;
  }

  QueryOptions Parallel() {
    QueryOptions options = Serial();
    options.pool = &pool_;
    return options;
  }

  Table entropy_table_;
  Table mi_table_;
  ThreadPool pool_;
};

TEST_F(ParallelDeterminismTest, EntropyTopK) {
  auto serial = SwopeTopKEntropy(entropy_table_, 3, Serial());
  auto parallel = SwopeTopKEntropy(entropy_table_, 3, Parallel());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial->items, parallel->items);
  ExpectIdentical(serial->stats, parallel->stats);
}

TEST_F(ParallelDeterminismTest, EntropyFilter) {
  auto serial = SwopeFilterEntropy(entropy_table_, 2.0, Serial());
  auto parallel = SwopeFilterEntropy(entropy_table_, 2.0, Parallel());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial->items, parallel->items);
  ExpectIdentical(serial->stats, parallel->stats);
}

TEST_F(ParallelDeterminismTest, MiTopK) {
  auto serial = SwopeTopKMi(mi_table_, 0, 3, Serial());
  auto parallel = SwopeTopKMi(mi_table_, 0, 3, Parallel());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial->items, parallel->items);
  ExpectIdentical(serial->stats, parallel->stats);
}

TEST_F(ParallelDeterminismTest, MiFilter) {
  auto serial = SwopeFilterMi(mi_table_, 0, 0.1, Serial());
  auto parallel = SwopeFilterMi(mi_table_, 0, 0.1, Parallel());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial->items, parallel->items);
  ExpectIdentical(serial->stats, parallel->stats);
}

TEST_F(ParallelDeterminismTest, NmiTopK) {
  auto serial = SwopeTopKNmi(mi_table_, 0, 3, Serial());
  auto parallel = SwopeTopKNmi(mi_table_, 0, 3, Parallel());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial->items, parallel->items);
  ExpectIdentical(serial->stats, parallel->stats);
}

TEST_F(ParallelDeterminismTest, NmiFilter) {
  auto serial = SwopeFilterNmi(mi_table_, 0, 0.2, Serial());
  auto parallel = SwopeFilterNmi(mi_table_, 0, 0.2, Parallel());
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial->items, parallel->items);
  ExpectIdentical(serial->stats, parallel->stats);
}

// Acceptance: a traced top-k entropy query records one row per sampling
// round whose deterministic columns (M, lambda, max bias, active,
// decided, cells) are byte-identical between 1-thread and 4-thread runs.
TEST_F(ParallelDeterminismTest, EntropyTopKTraceIsDeterministic) {
  QueryTrace serial_trace;
  QueryTrace parallel_trace;
  QueryOptions serial_options = Serial();
  serial_options.trace = &serial_trace;
  QueryOptions parallel_options = Parallel();
  parallel_options.trace = &parallel_trace;

  auto serial = SwopeTopKEntropy(entropy_table_, 3, serial_options);
  auto parallel = SwopeTopKEntropy(entropy_table_, 3, parallel_options);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());

  // Tracing must not perturb the answer.
  ExpectIdentical(serial->items, parallel->items);
  ExpectIdentical(serial->stats, parallel->stats);

  // One row per round, and the rows agree bitwise.
  ASSERT_FALSE(serial_trace.empty());
  EXPECT_EQ(serial_trace.size(), serial->stats.iterations);
  ExpectIdentical(serial_trace, parallel_trace);

  // The rendered table (minus the wall-time column) is byte-equal too --
  // this is exactly what `swope_cli --trace` prints.
  EXPECT_EQ(FormatTraceTable(serial_trace, /*include_wall_time=*/false),
            FormatTraceTable(parallel_trace, /*include_wall_time=*/false));
}

// The same guarantee holds on the pair-counting (MI) path.
TEST_F(ParallelDeterminismTest, MiTopKTraceIsDeterministic) {
  QueryTrace serial_trace;
  QueryTrace parallel_trace;
  QueryOptions serial_options = Serial();
  serial_options.trace = &serial_trace;
  QueryOptions parallel_options = Parallel();
  parallel_options.trace = &parallel_trace;

  auto serial = SwopeTopKMi(mi_table_, 0, 3, serial_options);
  auto parallel = SwopeTopKMi(mi_table_, 0, 3, parallel_options);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectIdentical(serial->items, parallel->items);
  ExpectIdentical(serial->stats, parallel->stats);
  EXPECT_EQ(serial_trace.size(), serial->stats.iterations);
  ExpectIdentical(serial_trace, parallel_trace);
  EXPECT_EQ(FormatTraceTable(serial_trace, /*include_wall_time=*/false),
            FormatTraceTable(parallel_trace, /*include_wall_time=*/false));
}

// Shard-count invariance: resharding a table changes only how the round
// slice is partitioned into (candidate x shard) tasks; answers must stay
// byte-identical to the unsharded serial baseline at every shard count
// and thread count, in both pool modes (docs/SHARDING.md).
TEST_F(ParallelDeterminismTest, ShardCountInvariance) {
  // 4000 rows: shard sizes 4000 / 1000 / 572 give 1 / 4 / 7 shards (the
  // last ragged at 568 rows).
  const uint64_t kShardSizes[] = {4000, 1000, 572};
  const size_t kExpectedShards[] = {1, 4, 7};

  auto entropy_baseline = SwopeTopKEntropy(entropy_table_, 3, Serial());
  auto mi_baseline = SwopeTopKMi(mi_table_, 0, 3, Serial());
  auto nmi_baseline = SwopeFilterNmi(mi_table_, 0, 0.2, Serial());
  ASSERT_TRUE(entropy_baseline.ok());
  ASSERT_TRUE(mi_baseline.ok());
  ASSERT_TRUE(nmi_baseline.ok());

  ThreadPool single_queue(4, PoolMode::kSingleQueue);
  ThreadPool* pools[] = {nullptr, &pool_, &single_queue};

  for (size_t i = 0; i < 3; ++i) {
    const Table entropy_sharded = entropy_table_.Resharded(kShardSizes[i]);
    const Table mi_sharded = mi_table_.Resharded(kShardSizes[i]);
    ASSERT_EQ(entropy_sharded.num_shards(), kExpectedShards[i]);
    for (ThreadPool* pool : pools) {
      SCOPED_TRACE(testing::Message()
                   << "shards=" << kExpectedShards[i] << " pool="
                   << (pool == nullptr ? "serial"
                                       : PoolModeName(pool->mode())));
      QueryOptions options = Serial();
      options.pool = pool;

      auto entropy = SwopeTopKEntropy(entropy_sharded, 3, options);
      ASSERT_TRUE(entropy.ok());
      ExpectIdentical(entropy_baseline->items, entropy->items);
      ExpectIdentical(entropy_baseline->stats, entropy->stats);

      auto mi = SwopeTopKMi(mi_sharded, 0, 3, options);
      ASSERT_TRUE(mi.ok());
      ExpectIdentical(mi_baseline->items, mi->items);
      ExpectIdentical(mi_baseline->stats, mi->stats);

      auto nmi = SwopeFilterNmi(mi_sharded, 0, 0.2, options);
      ASSERT_TRUE(nmi.ok());
      ExpectIdentical(nmi_baseline->items, nmi->items);
      ExpectIdentical(nmi_baseline->stats, nmi->stats);
    }
  }
}

// Repeated parallel runs are stable against scheduling noise: several
// executions with the pool enabled agree with each other exactly.
TEST_F(ParallelDeterminismTest, RepeatedParallelRunsAgree) {
  auto first = SwopeTopKMi(mi_table_, 0, 3, Parallel());
  ASSERT_TRUE(first.ok());
  for (int run = 0; run < 5; ++run) {
    auto again = SwopeTopKMi(mi_table_, 0, 3, Parallel());
    ASSERT_TRUE(again.ok());
    ExpectIdentical(first->items, again->items);
    ExpectIdentical(first->stats, again->stats);
  }
}

}  // namespace
}  // namespace swope
