#include "src/baselines/mi_filter.h"

#include <gtest/gtest.h>

#include "src/core/entropy.h"
#include "src/core/swope_filter_mi.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeMiTable;

TEST(MiFilterTest, ReturnsExactAnswer) {
  const Table table = MakeMiTable({0.9, 0.6, 0.3, 0.0}, 30000, 1);
  auto scores = ExactMutualInformations(table, 0);
  ASSERT_TRUE(scores.ok());
  for (double eta : {0.1, 0.3, 0.5}) {
    auto result = MiFilterQuery(table, 0, eta);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (size_t j = 1; j < table.num_columns(); ++j) {
      EXPECT_EQ(result->Contains(j), (*scores)[j] >= eta)
          << "eta=" << eta << " j=" << j;
    }
  }
}

TEST(MiFilterTest, RejectsBadArguments) {
  const Table table = MakeMiTable({0.5}, 100, 2);
  EXPECT_TRUE(MiFilterQuery(table, 0, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(MiFilterQuery(table, 9, 0.1).status().IsInvalidArgument());
}

TEST(MiFilterTest, NarrowGapCostsMoreThanSwope) {
  // Scores straddling eta = 0.3 closely.
  const Table table = MakeMiTable({0.42, 0.38, 0.9, 0.0}, 100000, 3);
  QueryOptions options;
  options.epsilon = 0.5;
  auto swope = SwopeFilterMi(table, 0, 0.3, options);
  auto baseline = MiFilterQuery(table, 0, 0.3, options);
  ASSERT_TRUE(swope.ok());
  ASSERT_TRUE(baseline.ok());
  EXPECT_LE(swope->stats.final_sample_size,
            baseline->stats.final_sample_size);
}

TEST(MiFilterTest, DeterministicInSeed) {
  const Table table = MakeMiTable({0.7, 0.2}, 20000, 4);
  QueryOptions options;
  options.seed = 33;
  auto a = MiFilterQuery(table, 0, 0.2, options);
  auto b = MiFilterQuery(table, 0, 0.2, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->items.size(), b->items.size());
}

TEST(MiFilterTest, TargetExcluded) {
  const Table table = MakeMiTable({0.9, 0.9}, 10000, 5);
  auto result = MiFilterQuery(table, 0, 0.01);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->Contains(0));
}

}  // namespace
}  // namespace swope
