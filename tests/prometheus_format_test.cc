// Prometheus text-exposition coverage: a golden-file test pinning the
// rendered bytes (label escaping, label ordering, `le` bucket rendering,
// the +Inf bucket) plus a promtool-style format validator that is run
// over both the golden registry and a live engine's metrics() output.

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/obs/metrics.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeEntropyTable;

// A promtool-like validator for the text exposition format. Returns one
// human-readable string per violation (empty = valid). Checks:
//   * every line is a HELP/TYPE comment or a sample,
//   * metric and label names match the Prometheus grammar,
//   * label values are quoted and use only the \\ \" \n escapes,
//   * every sample belongs to a declared TYPE family (histogram samples
//     resolve through their _bucket/_sum/_count suffix),
//   * per histogram series: `le` bounds strictly increase, cumulative
//     counts never decrease, the +Inf bucket exists and equals _count,
//     and _sum is present.
std::vector<std::string> ValidateExposition(const std::string& text) {
  std::vector<std::string> errors;
  std::map<std::string, std::string> types;
  struct HistSeries {
    std::vector<std::pair<double, uint64_t>> buckets;
    bool has_inf = false;
    uint64_t inf_count = 0;
    bool has_count = false;
    uint64_t count = 0;
    bool has_sum = false;
  };
  std::map<std::string, HistSeries> histograms;

  const auto valid_name = [](const std::string& name) {
    if (name.empty()) return false;
    if (!(std::isalpha(static_cast<unsigned char>(name[0])) ||
          name[0] == '_' || name[0] == ':')) {
      return false;
    }
    for (char c : name) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == ':')) {
        return false;
      }
    }
    return true;
  };

  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto fail = [&errors, line_no, &line](const std::string& msg) {
      errors.push_back("line " + std::to_string(line_no) + ": " + msg +
                       " [" + line + "]");
    };
    if (line.empty()) {
      fail("blank line");
      continue;
    }
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, name, type;
      comment >> hash >> keyword >> name >> type;
      if (keyword == "HELP") continue;
      if (keyword != "TYPE") {
        fail("unknown comment keyword '" + keyword + "'");
        continue;
      }
      if (!valid_name(name)) fail("invalid family name '" + name + "'");
      if (type != "counter" && type != "gauge" && type != "histogram") {
        fail("invalid family type '" + type + "'");
      }
      if (!types.emplace(name, type).second) {
        fail("family '" + name + "' declared twice");
      }
      continue;
    }

    // Sample line: name[{labels}] SP value
    size_t pos = 0;
    while (pos < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[pos])) ||
            line[pos] == '_' || line[pos] == ':')) {
      ++pos;
    }
    const std::string name = line.substr(0, pos);
    if (!valid_name(name)) {
      fail("invalid metric name '" + name + "'");
      continue;
    }
    std::vector<std::pair<std::string, std::string>> labels;
    bool malformed = false;
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      bool closed = false;
      while (pos < line.size() && !closed && !malformed) {
        const size_t key_start = pos;
        while (pos < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[pos])) ||
                line[pos] == '_')) {
          ++pos;
        }
        const std::string key = line.substr(key_start, pos - key_start);
        if (key.empty() || pos >= line.size() || line[pos] != '=') {
          fail("malformed label key");
          malformed = true;
          break;
        }
        ++pos;
        if (pos >= line.size() || line[pos] != '"') {
          fail("label value not quoted");
          malformed = true;
          break;
        }
        ++pos;
        std::string value;
        bool terminated = false;
        while (pos < line.size()) {
          const char c = line[pos];
          if (c == '\\') {
            if (pos + 1 >= line.size()) break;
            const char esc = line[pos + 1];
            if (esc != '\\' && esc != '"' && esc != 'n') {
              fail(std::string("invalid escape '\\") + esc + "'");
            }
            value += esc == 'n' ? '\n' : esc;
            pos += 2;
            continue;
          }
          if (c == '"') {
            terminated = true;
            ++pos;
            break;
          }
          value += c;
          ++pos;
        }
        if (!terminated) {
          fail("unterminated label value");
          malformed = true;
          break;
        }
        labels.emplace_back(key, value);
        if (pos < line.size() && line[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < line.size() && line[pos] == '}') {
          closed = true;
          ++pos;
          break;
        }
        fail("malformed label separator");
        malformed = true;
      }
      if (!closed && !malformed) {
        fail("unterminated label block");
        malformed = true;
      }
    }
    if (malformed) continue;
    if (pos >= line.size() || line[pos] != ' ') {
      fail("missing value separator");
      continue;
    }
    const std::string value_text = line.substr(pos + 1);
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0') {
      fail("unparseable sample value '" + value_text + "'");
      continue;
    }

    // Resolve the sample to its declared family.
    std::string family = name;
    std::string suffix;
    if (types.find(name) == types.end()) {
      for (const char* candidate : {"_bucket", "_sum", "_count"}) {
        const std::string suf = candidate;
        if (name.size() > suf.size() &&
            name.compare(name.size() - suf.size(), suf.size(), suf) == 0) {
          const std::string base = name.substr(0, name.size() - suf.size());
          auto it = types.find(base);
          if (it != types.end() && it->second == "histogram") {
            family = base;
            suffix = suf;
            break;
          }
        }
      }
      if (suffix.empty()) {
        fail("sample without a TYPE declaration");
        continue;
      }
    } else if (types[name] == "histogram") {
      fail("bare sample for a histogram family");
      continue;
    }

    if (suffix.empty()) continue;  // plain counter/gauge sample: done
    std::string le;
    std::string series_key = family;
    for (const auto& [key, label_value] : labels) {
      if (suffix == "_bucket" && key == "le") {
        le = label_value;
        continue;
      }
      series_key += ";" + key + "=" + label_value;
    }
    HistSeries& series = histograms[series_key];
    if (suffix == "_bucket") {
      if (le.empty()) {
        fail("bucket sample without an le label");
        continue;
      }
      if (le == "+Inf") {
        series.has_inf = true;
        series.inf_count = static_cast<uint64_t>(value);
      } else {
        char* le_end = nullptr;
        const double bound = std::strtod(le.c_str(), &le_end);
        if (le_end == le.c_str() || *le_end != '\0') {
          fail("unparseable le bound '" + le + "'");
          continue;
        }
        series.buckets.emplace_back(bound, static_cast<uint64_t>(value));
      }
    } else if (suffix == "_count") {
      series.has_count = true;
      series.count = static_cast<uint64_t>(value);
    } else {
      series.has_sum = true;
    }
  }

  for (const auto& [key, series] : histograms) {
    for (size_t i = 1; i < series.buckets.size(); ++i) {
      if (series.buckets[i - 1].first >= series.buckets[i].first) {
        errors.push_back(key + ": le bounds not strictly increasing");
      }
      if (series.buckets[i - 1].second > series.buckets[i].second) {
        errors.push_back(key + ": cumulative bucket counts decreased");
      }
    }
    if (!series.has_inf) errors.push_back(key + ": missing +Inf bucket");
    if (!series.has_count) errors.push_back(key + ": missing _count");
    if (!series.has_sum) errors.push_back(key + ": missing _sum");
    if (series.has_inf && !series.buckets.empty() &&
        series.buckets.back().second > series.inf_count) {
      errors.push_back(key + ": +Inf bucket below the last finite bucket");
    }
    if (series.has_inf && series.has_count &&
        series.inf_count != series.count) {
      errors.push_back(key + ": _count disagrees with the +Inf bucket");
    }
  }
  return errors;
}

// One registry exercising every rendering edge: escaped label values
// (backslash, quote, newline), label-key ordering, bucket `le` labels,
// and the +Inf bucket.
MetricsRegistry& GoldenRegistry() {
  static MetricsRegistry registry;
  static const bool initialized = [] {
    registry
        .GetCounter("swope_a_total", {{"path", "a\"b\\c\nd"}, {"kind", "x"}})
        ->Increment(3);
    registry.GetGauge("swope_g")->Set(-2);
    Histogram* h =
        registry.GetHistogram("swope_h_ms", {{"pool", "p"}}, {0.5, 2});
    h->Observe(0.25);
    h->Observe(1.0);
    h->Observe(99.0);
    return true;
  }();
  (void)initialized;
  return registry;
}

TEST(PrometheusGoldenTest, RendersExactExpositionText) {
  // Byte-exact golden: label keys sort (kind before path), escapes render
  // as \" \\ \n, buckets carry le plus a final +Inf, then _sum/_count.
  const std::string expected =
      "# TYPE swope_a_total counter\n"
      "swope_a_total{kind=\"x\",path=\"a\\\"b\\\\c\\nd\"} 3\n"
      "# TYPE swope_g gauge\n"
      "swope_g -2\n"
      "# TYPE swope_h_ms histogram\n"
      "swope_h_ms_bucket{pool=\"p\",le=\"0.5\"} 1\n"
      "swope_h_ms_bucket{pool=\"p\",le=\"2\"} 2\n"
      "swope_h_ms_bucket{pool=\"p\",le=\"+Inf\"} 3\n"
      "swope_h_ms_sum{pool=\"p\"} 100.25\n"
      "swope_h_ms_count{pool=\"p\"} 3\n";
  EXPECT_EQ(GoldenRegistry().RenderPrometheusText(), expected);
}

TEST(PrometheusGoldenTest, RenderIsDeterministic) {
  EXPECT_EQ(GoldenRegistry().RenderPrometheusText(),
            GoldenRegistry().RenderPrometheusText());
}

TEST(PrometheusValidatorTest, AcceptsTheGoldenExposition) {
  const std::vector<std::string> errors =
      ValidateExposition(GoldenRegistry().RenderPrometheusText());
  EXPECT_TRUE(errors.empty()) << errors.front();
}

TEST(PrometheusValidatorTest, RejectsMalformedExposition) {
  EXPECT_FALSE(ValidateExposition("undeclared_total 1\n").empty());
  EXPECT_FALSE(ValidateExposition("# TYPE a counter\na{k=unquoted} 1\n")
                   .empty());
  EXPECT_FALSE(
      ValidateExposition("# TYPE a counter\na{k=\"bad\\tescape\"} 1\n")
          .empty());
  EXPECT_FALSE(
      ValidateExposition("# TYPE a counter\na{k=\"open} 1\n").empty());
  EXPECT_FALSE(ValidateExposition("# TYPE a counter\na notanumber\n")
                   .empty());
  EXPECT_FALSE(ValidateExposition("# TYPE 9bad counter\n").empty());
  // Histogram without its +Inf bucket / _count / _sum.
  EXPECT_FALSE(ValidateExposition("# TYPE h histogram\n"
                                  "h_bucket{le=\"1\"} 1\n")
                   .empty());
  // Cumulative counts must never decrease.
  EXPECT_FALSE(ValidateExposition("# TYPE h histogram\n"
                                  "h_bucket{le=\"1\"} 2\n"
                                  "h_bucket{le=\"2\"} 1\n"
                                  "h_bucket{le=\"+Inf\"} 2\n"
                                  "h_sum 3\n"
                                  "h_count 2\n")
                   .empty());
}

TEST(PrometheusValidatorTest, LiveEngineMetricsAreValid) {
  // Exercise the full engine metric surface -- query latencies, fine
  // shard-task buckets, pool telemetry, utilization gauges -- and run the
  // validator over the same text `serve metrics` would emit.
  EngineConfig config;
  config.intra_query_threads = 2;
  config.slow_query_ms = 1e-6;  // capture everything as slow
  QueryEngine engine(config);
  ASSERT_TRUE(
      engine.RegisterDataset("ds", MakeEntropyTable({4.0, 1.0}, 2000, 7))
          .ok());
  QuerySpec spec;
  spec.dataset = "ds";
  spec.kind = QueryKind::kEntropyTopK;
  spec.k = 2;
  spec.trace = true;
  spec.profile = true;
  ASSERT_TRUE(engine.Run(spec).ok());
  spec.profile = false;
  spec.trace = false;
  ASSERT_TRUE(engine.Run(spec).ok());  // cache hit
  (void)engine.GetCounters();          // refresh utilization gauges

  const std::string text = engine.metrics().RenderPrometheusText();
  const std::vector<std::string> errors = ValidateExposition(text);
  EXPECT_TRUE(errors.empty()) << errors.front() << " ("
                              << errors.size() << " total)";

  // The fine shard-task buckets (satellite of this PR) and the worker
  // utilization gauges must be part of the exposition.
  EXPECT_NE(text.find("swope_engine_shard_task_ms_bucket{le=\"0.001\"}"),
            std::string::npos);
  EXPECT_NE(
      text.find("swope_pool_utilization_percent{pool=\"executor\"}"),
      std::string::npos);
  EXPECT_NE(text.find("swope_pool_worker_busy_ms{pool=\"intra\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace swope
