#include "src/datagen/correlated.h"

#include <gtest/gtest.h>

#include "src/core/entropy.h"

namespace swope {
namespace {

TEST(CorrelatedTest, PairShapeAndDeterminism) {
  CorrelatedPairSpec spec;
  spec.x_dist = CategoricalDistribution::Uniform(8);
  spec.y_noise = CategoricalDistribution::Uniform(8);
  spec.rho = 0.5;
  auto pair = GenerateCorrelatedPair(spec, 5000, 3);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->first.size(), 5000u);
  EXPECT_EQ(pair->second.size(), 5000u);
  EXPECT_EQ(pair->first.name(), "x");
  EXPECT_EQ(pair->second.name(), "y");

  auto again = GenerateCorrelatedPair(spec, 5000, 3);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pair->first.codes(), again->first.codes());
  EXPECT_EQ(pair->second.codes(), again->second.codes());
}

TEST(CorrelatedTest, RejectsBadRho) {
  CorrelatedPairSpec spec;
  spec.rho = 1.5;
  EXPECT_FALSE(GenerateCorrelatedPair(spec, 10, 1).ok());
  spec.rho = -0.1;
  EXPECT_FALSE(GenerateCorrelatedPair(spec, 10, 1).ok());
}

TEST(CorrelatedTest, RhoZeroGivesNearZeroMi) {
  CorrelatedPairSpec spec;
  spec.x_dist = CategoricalDistribution::Uniform(4);
  spec.y_noise = CategoricalDistribution::Uniform(4);
  spec.rho = 0.0;
  auto pair = GenerateCorrelatedPair(spec, 100000, 7);
  ASSERT_TRUE(pair.ok());
  auto mi = ExactMutualInformation(pair->first, pair->second);
  ASSERT_TRUE(mi.ok());
  EXPECT_LT(*mi, 0.01);
}

TEST(CorrelatedTest, RhoOneMakesYDeterministic) {
  CorrelatedPairSpec spec;
  spec.x_dist = CategoricalDistribution::Uniform(4);
  spec.y_noise = CategoricalDistribution::Uniform(4);
  spec.rho = 1.0;
  auto pair = GenerateCorrelatedPair(spec, 50000, 7);
  ASSERT_TRUE(pair.ok());
  auto mi = ExactMutualInformation(pair->first, pair->second);
  ASSERT_TRUE(mi.ok());
  // Y == X, so I(X;Y) = H(X) ~ 2 bits.
  EXPECT_NEAR(*mi, ExactEntropy(pair->first), 1e-9);
  EXPECT_NEAR(*mi, 2.0, 0.05);
}

TEST(CorrelatedTest, MiIsMonotoneInRho) {
  double previous = -1.0;
  for (double rho : {0.0, 0.3, 0.6, 0.9}) {
    CorrelatedPairSpec spec;
    spec.x_dist = CategoricalDistribution::Uniform(8);
    spec.y_noise = CategoricalDistribution::Uniform(8);
    spec.rho = rho;
    auto pair = GenerateCorrelatedPair(spec, 80000, 13);
    ASSERT_TRUE(pair.ok());
    auto mi = ExactMutualInformation(pair->first, pair->second);
    ASSERT_TRUE(mi.ok());
    EXPECT_GT(*mi, previous) << "rho " << rho;
    previous = *mi;
  }
}

TEST(CorrelatedTest, ModuloMappingRespectsSmallerYSupport) {
  CorrelatedPairSpec spec;
  spec.x_dist = CategoricalDistribution::Uniform(10);
  spec.y_noise = CategoricalDistribution::Uniform(3);
  spec.rho = 1.0;
  auto pair = GenerateCorrelatedPair(spec, 1000, 1);
  ASSERT_TRUE(pair.ok());
  for (uint64_t r = 0; r < pair->second.size(); ++r) {
    ASSERT_LT(pair->second.code(r), 3u);
    EXPECT_EQ(pair->second.code(r), pair->first.code(r) % 3);
  }
}

TEST(CorrelatedTest, TargetWithCorrelatesShapes) {
  const auto target_dist = CategoricalDistribution::Uniform(16);
  std::vector<CategoricalDistribution> noise = {
      CategoricalDistribution::Uniform(16),
      CategoricalDistribution::Uniform(8),
      CategoricalDistribution::Zipf(32, 1.0)};
  auto columns = GenerateTargetWithCorrelates(
      target_dist, "t", noise, {"c0", "c1", "c2"}, {0.0, 0.5, 0.9}, 30000, 5);
  ASSERT_TRUE(columns.ok());
  ASSERT_EQ(columns->size(), 4u);
  EXPECT_EQ((*columns)[0].name(), "t");
  EXPECT_EQ((*columns)[1].name(), "c0");

  // MI against the target should grow with rho.
  auto mi_low = ExactMutualInformation((*columns)[0], (*columns)[1]);
  auto mi_mid = ExactMutualInformation((*columns)[0], (*columns)[2]);
  auto mi_high = ExactMutualInformation((*columns)[0], (*columns)[3]);
  ASSERT_TRUE(mi_low.ok());
  ASSERT_TRUE(mi_mid.ok());
  ASSERT_TRUE(mi_high.ok());
  EXPECT_LT(*mi_low, *mi_mid);
  EXPECT_LT(*mi_mid, *mi_high);
}

TEST(CorrelatedTest, TargetWithCorrelatesRejectsSizeMismatch) {
  const auto dist = CategoricalDistribution::Uniform(4);
  EXPECT_FALSE(GenerateTargetWithCorrelates(dist, "t", {dist}, {"a", "b"},
                                            {0.5}, 100, 1)
                   .ok());
  EXPECT_FALSE(
      GenerateTargetWithCorrelates(dist, "t", {dist}, {"a"}, {1.5}, 100, 1)
          .ok());
}

}  // namespace
}  // namespace swope
