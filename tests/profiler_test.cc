// Unit tests for the stage profiler: tick calibration sanity, RAII stage
// timers (including the disabled null-profiler path), concurrent
// recording from many threads, and the text table renderer.

#include "src/obs/profiler.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/stopwatch.h"

namespace swope {
namespace {

// Busy-spins (never sleeps) until ~`ms` of wall time has passed.
void SpinFor(double ms) {
  Stopwatch watch;
  while (watch.ElapsedMillis() < ms) {
  }
}

TEST(ProfilerTest, StageNamesAreStable) {
  EXPECT_STREQ(StageName(Stage::kGather), "gather");
  EXPECT_STREQ(StageName(Stage::kCount), "count");
  EXPECT_STREQ(StageName(Stage::kShardMerge), "shard-merge");
  EXPECT_STREQ(StageName(Stage::kReplay), "replay");
  EXPECT_STREQ(StageName(Stage::kIntervalUpdate), "interval-update");
  EXPECT_STREQ(StageName(Stage::kSchedulingWait), "scheduling-wait");
  EXPECT_STREQ(StageName(Stage::kFinalize), "finalize");
}

TEST(ProfilerTest, CalibrationIsPositiveAndLinear) {
  EXPECT_GT(ProfilerTicksPerMs(), 0.0);
  EXPECT_DOUBLE_EQ(ProfilerTicksToMs(0), 0.0);
  const uint64_t one_ms_ticks =
      static_cast<uint64_t>(ProfilerTicksPerMs());
  EXPECT_NEAR(ProfilerTicksToMs(one_ms_ticks), 1.0, 1e-6);
  EXPECT_NEAR(ProfilerTicksToMs(10 * one_ms_ticks), 10.0, 1e-5);
}

TEST(ProfilerTest, TicksAdvanceMonotonically) {
  const uint64_t before = ProfilerTicks();
  SpinFor(0.1);
  const uint64_t after = ProfilerTicks();
  EXPECT_GT(after, before);
}

TEST(ProfilerTest, TimerMeasuresBusySpinWithinTolerance) {
  StageProfiler profiler;
  {
    StageTimer timer(&profiler, Stage::kGather);
    SpinFor(5.0);
  }
  // Generous bounds: CI containers jitter, but a 5 ms spin can never
  // read as microseconds or as whole seconds unless calibration broke.
  EXPECT_GE(profiler.StageMs(Stage::kGather), 2.0);
  EXPECT_LE(profiler.StageMs(Stage::kGather), 500.0);
  EXPECT_EQ(profiler.StageCalls(Stage::kGather), 1u);
  EXPECT_EQ(profiler.StageCalls(Stage::kCount), 0u);
}

TEST(ProfilerTest, NullProfilerTimerIsANoOp) {
  // The disabled path of every instrumented site: must be safe and free
  // of any profiler interaction.
  StageTimer timer(nullptr, Stage::kCount);
}

TEST(ProfilerTest, AddAccumulatesTicksAndCalls) {
  StageProfiler profiler;
  profiler.Add(Stage::kCount, 100);
  profiler.Add(Stage::kCount, 250);
  profiler.Add(Stage::kReplay, 50);
  EXPECT_EQ(profiler.StageCalls(Stage::kCount), 2u);
  EXPECT_EQ(profiler.StageCalls(Stage::kReplay), 1u);
  EXPECT_DOUBLE_EQ(profiler.StageMs(Stage::kCount), ProfilerTicksToMs(350));
  EXPECT_DOUBLE_EQ(profiler.StageSumMs(), ProfilerTicksToMs(400));
}

TEST(ProfilerTest, WallMsIsIndependentOfStages) {
  StageProfiler profiler;
  EXPECT_DOUBLE_EQ(profiler.WallMs(), 0.0);
  profiler.SetWallMs(12.5);
  EXPECT_DOUBLE_EQ(profiler.WallMs(), 12.5);
  EXPECT_DOUBLE_EQ(profiler.StageSumMs(), 0.0);
}

TEST(ProfilerTest, ClearResetsEverything) {
  StageProfiler profiler;
  profiler.Add(Stage::kGather, 1000);
  profiler.SetWallMs(3.0);
  profiler.Clear();
  EXPECT_EQ(profiler.StageCalls(Stage::kGather), 0u);
  EXPECT_DOUBLE_EQ(profiler.StageSumMs(), 0.0);
  EXPECT_DOUBLE_EQ(profiler.WallMs(), 0.0);
}

TEST(ProfilerTest, ConcurrentAddsAreLossless) {
  StageProfiler profiler;
  constexpr int kThreads = 8;
  constexpr int kAdds = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&profiler] {
      for (int i = 0; i < kAdds; ++i) profiler.Add(Stage::kCount, 3);
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(profiler.StageCalls(Stage::kCount),
            static_cast<uint64_t>(kThreads) * kAdds);
  EXPECT_DOUBLE_EQ(
      profiler.StageMs(Stage::kCount),
      ProfilerTicksToMs(3ull * kThreads * kAdds));
}

TEST(ProfilerTest, FormatTableListsOnlyRecordedStages) {
  StageProfiler profiler;
  profiler.Add(Stage::kGather, 1000);
  profiler.Add(Stage::kFinalize, 500);
  profiler.SetWallMs(1.5);
  const std::string table = FormatProfileTable(profiler);
  EXPECT_NE(table.find("gather"), std::string::npos) << table;
  EXPECT_NE(table.find("finalize"), std::string::npos) << table;
  EXPECT_NE(table.find("stage-sum"), std::string::npos) << table;
  EXPECT_NE(table.find("wall"), std::string::npos) << table;
  EXPECT_EQ(table.find("replay"), std::string::npos) << table;
  EXPECT_EQ(table.find("scheduling-wait"), std::string::npos) << table;
}

TEST(ProfilerTest, FormatTableOmitsWallWhenUnset) {
  StageProfiler profiler;
  profiler.Add(Stage::kCount, 10);
  const std::string table = FormatProfileTable(profiler);
  EXPECT_EQ(table.find("wall"), std::string::npos) << table;
}

}  // namespace
}  // namespace swope
