#include "src/core/swope_topk_entropy.h"

#include <gtest/gtest.h>

#include "src/core/bounds.h"
#include "src/core/entropy.h"
#include "src/eval/accuracy.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::AllIndices;
using test::MakeEntropyTable;

TEST(SwopeTopKEntropyTest, RejectsBadArguments) {
  const Table table = MakeEntropyTable({2.0, 1.0}, 500, 1);
  EXPECT_TRUE(SwopeTopKEntropy(table, 0).status().IsInvalidArgument());
  QueryOptions bad;
  bad.epsilon = 2.0;
  EXPECT_TRUE(SwopeTopKEntropy(table, 1, bad).status().IsInvalidArgument());
  auto empty = Table::Make({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(SwopeTopKEntropy(*empty, 1).status().IsInvalidArgument());
}

TEST(SwopeTopKEntropyTest, FindsClearWinner) {
  // One high-entropy column among low-entropy ones.
  const Table table = MakeEntropyTable({0.5, 5.5, 0.7, 1.0, 0.2}, 40000, 2);
  auto result = SwopeTopKEntropy(table, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->items.size(), 1u);
  EXPECT_EQ(result->items[0].index, 1u);
  EXPECT_GT(result->items[0].estimate, 4.0);
}

TEST(SwopeTopKEntropyTest, KClampsToColumnCount) {
  const Table table = MakeEntropyTable({1.0, 2.0, 3.0}, 2000, 3);
  auto result = SwopeTopKEntropy(table, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items.size(), 3u);
}

TEST(SwopeTopKEntropyTest, ItemsSortedByUpperBound) {
  const Table table =
      MakeEntropyTable({1.0, 4.0, 2.0, 5.0, 3.0}, 30000, 4);
  auto result = SwopeTopKEntropy(table, 5);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->items.size(); ++i) {
    EXPECT_GE(result->items[i - 1].upper, result->items[i].upper);
  }
}

TEST(SwopeTopKEntropyTest, BoundsBracketEstimate) {
  const Table table = MakeEntropyTable({3.0, 1.0, 4.5}, 20000, 5);
  auto result = SwopeTopKEntropy(table, 2);
  ASSERT_TRUE(result.ok());
  for (const auto& item : result->items) {
    EXPECT_LE(item.lower, item.estimate + 1e-12);
    EXPECT_GE(item.upper, item.estimate - 1e-12);
  }
}

TEST(SwopeTopKEntropyTest, StatsArePopulated) {
  const Table table = MakeEntropyTable({2.0, 4.0, 1.0, 3.0}, 50000, 6);
  auto result = SwopeTopKEntropy(table, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.iterations, 0u);
  EXPECT_GT(result->stats.final_sample_size, 0u);
  EXPECT_LE(result->stats.final_sample_size, 50000u);
  EXPECT_GT(result->stats.cells_scanned, 0u);
  EXPECT_GE(result->stats.initial_sample_size, kMinSampleSize);
}

TEST(SwopeTopKEntropyTest, SamplesFarLessThanExactOnEasyInput) {
  // High k-th entropy => Theorem 2 says few samples needed.
  const Table table =
      MakeEntropyTable({5.0, 5.5, 0.3, 0.2, 0.1, 0.4}, 200000, 7);
  QueryOptions options;
  options.epsilon = 0.3;
  auto result = SwopeTopKEntropy(table, 2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->stats.final_sample_size, 200000u / 4);
}

TEST(SwopeTopKEntropyTest, DeterministicInSeed) {
  const Table table = MakeEntropyTable({2.0, 3.0, 1.0, 4.0}, 30000, 8);
  QueryOptions options;
  options.seed = 77;
  auto a = SwopeTopKEntropy(table, 2, options);
  auto b = SwopeTopKEntropy(table, 2, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->items.size(), b->items.size());
  for (size_t i = 0; i < a->items.size(); ++i) {
    EXPECT_EQ(a->items[i].index, b->items[i].index);
    EXPECT_DOUBLE_EQ(a->items[i].estimate, b->items[i].estimate);
  }
  EXPECT_EQ(a->stats.final_sample_size, b->stats.final_sample_size);
}

TEST(SwopeTopKEntropyTest, TinyTableFallsBackToExact) {
  // N smaller than M0 -> the first iteration already has M = N.
  const Table table = MakeEntropyTable({1.0, 2.0, 0.5}, 50, 9);
  auto result = SwopeTopKEntropy(table, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.exhausted_dataset);
  const auto exact = ExactEntropies(table);
  size_t best = 0;
  for (size_t j = 1; j < exact.size(); ++j) {
    if (exact[j] > exact[best]) best = j;
  }
  EXPECT_EQ(result->items[0].index, best);
  EXPECT_NEAR(result->items[0].estimate, exact[best], 1e-9);
}

TEST(SwopeTopKEntropyTest, AllZeroEntropyColumnsStillTerminate) {
  // Constant columns: every score is 0, so the relative-error stopping
  // rule can never fire early (Theorem 2's bound degenerates to hN) and
  // the algorithm must fall through to the exact M = N answer without
  // looping forever.
  TableSpec spec;
  spec.num_rows = 20000;
  spec.seed = 10;
  for (int j = 0; j < 4; ++j) {
    spec.columns.push_back(
        ColumnSpec::EntropyTargeted("z" + std::to_string(j), 8, 0.0));
  }
  auto table = GenerateTable(spec);
  ASSERT_TRUE(table.ok());
  auto result = SwopeTopKEntropy(*table, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items.size(), 2u);
  EXPECT_TRUE(result->stats.exhausted_dataset);
  for (const auto& item : result->items) {
    EXPECT_DOUBLE_EQ(item.estimate, 0.0);
  }
}

TEST(SwopeTopKEntropyTest, LargerEpsilonNeverSamplesMore) {
  const Table table =
      MakeEntropyTable({3.0, 2.8, 2.5, 1.0, 0.5}, 100000, 11);
  QueryOptions tight;
  tight.epsilon = 0.05;
  QueryOptions loose;
  loose.epsilon = 0.5;
  auto tight_result = SwopeTopKEntropy(table, 2, tight);
  auto loose_result = SwopeTopKEntropy(table, 2, loose);
  ASSERT_TRUE(tight_result.ok());
  ASSERT_TRUE(loose_result.ok());
  EXPECT_LE(loose_result->stats.final_sample_size,
            tight_result->stats.final_sample_size);
}

TEST(SwopeTopKEntropyTest, InitialSampleSizeOverrideHonored) {
  const Table table = MakeEntropyTable({3.0, 1.0}, 50000, 12);
  QueryOptions options;
  options.initial_sample_size = 4096;
  auto result = SwopeTopKEntropy(table, 1, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.initial_sample_size, 4096u);
  EXPECT_GE(result->stats.final_sample_size, 4096u);
}

TEST(SwopeTopKEntropyTest, SatisfiesDefinitionOnModerateGap) {
  const Table table =
      MakeEntropyTable({4.0, 3.9, 3.8, 1.0, 0.9, 0.8}, 60000, 13);
  const auto exact = ExactEntropies(table);
  QueryOptions options;
  options.epsilon = 0.1;
  for (size_t k : {1, 2, 3, 4}) {
    auto result = SwopeTopKEntropy(table, k, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(SatisfiesApproxTopK(result->items, exact,
                                    AllIndices(table.num_columns()), k,
                                    options.epsilon))
        << "k=" << k;
  }
}

}  // namespace
}  // namespace swope
