// Concurrency stress tests for ThreadPool, written to run under TSan:
// many concurrent Submits from competing threads, nested ParallelFor
// (which deadlocks on a naive future-wait implementation), exception
// propagation, and zero-length ranges.

#include "src/common/thread_pool.h"

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(ThreadPoolStressTest, ConcurrentSubmittersAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 250;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        futures.push_back(pool.Submit([&counter] { ++counter; }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStressTest, NestedParallelForDoesNotDeadlock) {
  // Outer iterations run as pool tasks and issue their own ParallelFor;
  // without work-helping every worker blocks waiting for subtasks that
  // can never be scheduled.
  ThreadPool pool(2);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(0, kOuter, [&](size_t o) {
    pool.ParallelFor(0, kInner,
                     [&, o](size_t i) { ++hits[o * kInner + i]; });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolStressTest, NestedParallelForSingleThreadPool) {
  // The degenerate one-worker pool is the strongest deadlock check: the
  // only worker is the one blocked inside the outer iteration.
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(0, 4, [&](size_t) {
    pool.ParallelFor(0, 16, [&](size_t) { ++counter; });
  });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolStressTest, ParallelForZeroLengthNested) {
  ThreadPool pool(2);
  std::atomic<int> outer_runs{0};
  bool touched = false;
  pool.ParallelFor(0, 4, [&](size_t) {
    ++outer_runs;
    pool.ParallelFor(3, 3, [&](size_t) { touched = true; });
    pool.ParallelFor(9, 2, [&](size_t) { touched = true; });
  });
  EXPECT_EQ(outer_runs.load(), 4);
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolStressTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [&](size_t i) {
                         ++ran;
                         if (i == 37) {
                           throw std::runtime_error("iteration 37 failed");
                         }
                       }),
      std::runtime_error);
  // All chunks are drained before the rethrow, so the pool is reusable
  // and no task still references the dead lambda.
  std::atomic<int> counter{0};
  pool.ParallelFor(0, 50, [&](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 50);
  EXPECT_GT(ran.load(), 0);
}

TEST(ThreadPoolStressTest, SubmitExceptionDeliveredThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(future.get(), std::logic_error);
  // The worker survives the throwing task.
  std::atomic<int> value{0};
  pool.Submit([&] { value = 11; }).get();
  EXPECT_EQ(value.load(), 11);
}

TEST(ThreadPoolStressTest, ParallelForUnderConcurrentSubmitLoad) {
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::atomic<int> background{0};
  std::thread submitter([&] {
    while (!stop.load()) {
      pool.Submit([&background] { ++background; }).get();
    }
  });
  std::vector<int> data(10000);
  std::iota(data.begin(), data.end(), 0);
  long long expect = 0;
  for (int v : data) expect += v;
  for (int round = 0; round < 20; ++round) {
    std::atomic<long long> sum{0};
    pool.ParallelFor(0, data.size(), [&](size_t i) { sum += data[i]; });
    ASSERT_EQ(sum.load(), expect);
  }
  stop = true;
  submitter.join();
  EXPECT_GE(background.load(), 0);
}

// Both scheduling modes survive the same mixed load: racing external
// submitters plus nested ParallelFor from pool tasks. This is the
// stress shape of concurrent engine queries fanning shard tasks.
TEST(ThreadPoolStressTest, BothModesSurviveMixedNestedLoad) {
  for (PoolMode mode : {PoolMode::kWorkStealing, PoolMode::kSingleQueue}) {
    SCOPED_TRACE(PoolModeName(mode));
    ThreadPool pool(4, mode);
    std::atomic<int> submitted{0};
    std::vector<std::thread> submitters;
    for (int s = 0; s < 3; ++s) {
      submitters.emplace_back([&pool, &submitted] {
        std::vector<std::future<void>> futures;
        for (int i = 0; i < 100; ++i) {
          futures.push_back(pool.Submit([&submitted] { ++submitted; }));
        }
        for (auto& f : futures) f.get();
      });
    }
    std::vector<std::atomic<int>> hits(16 * 64);
    pool.ParallelFor(0, 16, [&](size_t o) {
      pool.ParallelFor(0, 64, [&, o](size_t i) { ++hits[o * 64 + i]; });
    });
    for (auto& t : submitters) t.join();
    EXPECT_EQ(submitted.load(), 300);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolStressTest, RapidConstructDestruct) {
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    // Destructor must join cleanly whether or not tasks drained.
  }
}

}  // namespace
}  // namespace swope
