// Arena semantics the zero-allocation serving path leans on: aligned
// bump allocation, checkpoint/rewind keeping blocks for reuse, and
// std::pmr container integration.

#include "src/common/arena.h"

#include <cstdint>
#include <cstring>
#include <memory_resource>
#include <vector>

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  void* a = arena.Allocate(13, 8);
  void* b = arena.Allocate(64, 64);
  void* c = arena.Allocate(1, 1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  // Writing each region in full must not corrupt the others.
  std::memset(a, 0xAA, 13);
  std::memset(b, 0xBB, 64);
  std::memset(c, 0xCC, 1);
  EXPECT_EQ(static_cast<uint8_t*>(a)[12], 0xAA);
  EXPECT_EQ(static_cast<uint8_t*>(b)[63], 0xBB);
}

TEST(ArenaTest, OversizedRequestChainsABlockThatFits) {
  Arena arena(/*first_block_bytes=*/128);
  void* big = arena.Allocate(100 * 1024, 16);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0, 100 * 1024);
  EXPECT_GE(arena.BytesReserved(), 100u * 1024u);
}

TEST(ArenaTest, RewindKeepsBlocksSoReplayAllocatesNothing) {
  Arena arena(/*first_block_bytes=*/256);
  auto churn = [&arena] {
    for (int i = 0; i < 200; ++i) arena.Allocate(64, 8);
  };
  churn();
  const size_t reserved_after_warmup = arena.BytesReserved();
  EXPECT_GT(reserved_after_warmup, 0u);
  for (int round = 0; round < 5; ++round) {
    arena.Rewind();
    churn();
    // The identical allocation pattern re-walks the existing chain.
    EXPECT_EQ(arena.BytesReserved(), reserved_after_warmup);
  }
}

TEST(ArenaTest, CheckpointRewindReleasesOnlyTheTail) {
  Arena arena;
  arena.Allocate(100, 8);
  const size_t used_at_mark = arena.BytesUsed();
  const Arena::Checkpoint mark = arena.Mark();
  arena.Allocate(5000, 8);
  EXPECT_GT(arena.BytesUsed(), used_at_mark);
  arena.Rewind(mark);
  EXPECT_EQ(arena.BytesUsed(), used_at_mark);
}

TEST(ArenaTest, PmrContainersGrowIntoTheArena) {
  Arena arena;
  const size_t before = arena.BytesUsed();
  std::pmr::vector<uint64_t> values(arena.resource());
  for (uint64_t i = 0; i < 1000; ++i) values.push_back(i);
  EXPECT_GE(arena.BytesUsed(), before + 1000 * sizeof(uint64_t));
  for (uint64_t i = 0; i < 1000; ++i) ASSERT_EQ(values[i], i);
  // The vector's destructor deallocates into the arena (a no-op); only
  // the rewind reclaims.
  values = std::pmr::vector<uint64_t>(arena.resource());
  arena.Rewind();
  EXPECT_EQ(arena.BytesUsed(), 0u);
}

TEST(ArenaTest, BytesUsedTracksHighWaterAcrossBlocks) {
  Arena arena(/*first_block_bytes=*/64);
  for (int i = 0; i < 100; ++i) arena.Allocate(48, 8);
  EXPECT_GE(arena.BytesUsed(), 100u * 48u);
  EXPECT_GE(arena.BytesReserved(), arena.BytesUsed());
}

}  // namespace
}  // namespace swope
