#include "src/core/swope_filter_nmi.h"

#include <gtest/gtest.h>

#include "src/core/swope_topk_nmi.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::AllIndicesExcept;
using test::MakeMiTable;

TEST(SwopeFilterNmiTest, RejectsBadArguments) {
  const Table table = MakeMiTable({0.5}, 500, 1);
  EXPECT_TRUE(SwopeFilterNmi(table, 0, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(SwopeFilterNmi(table, 0, 1.5).status().IsInvalidArgument());
  EXPECT_TRUE(SwopeFilterNmi(table, 9, 0.2).status().IsInvalidArgument());
  auto one = Table::Make({Column::FromCodes("only", {0, 1})});
  ASSERT_TRUE(one.ok());
  EXPECT_TRUE(SwopeFilterNmi(*one, 0, 0.2).status().IsInvalidArgument());
}

TEST(SwopeFilterNmiTest, SeparatesStrongFromWeak) {
  const Table table = MakeMiTable({0.95, 0.9, 0.0, 0.05}, 50000, 2);
  auto exact = ExactNormalizedMis(table, 0);
  ASSERT_TRUE(exact.ok());
  QueryOptions options;
  options.epsilon = 0.5;
  // Threshold between the strong (NMI ~ 0.7+) and weak (~0) groups.
  auto result = SwopeFilterNmi(table, 0, 0.35, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Contains(1));
  EXPECT_TRUE(result->Contains(2));
  EXPECT_FALSE(result->Contains(3));
  EXPECT_FALSE(result->Contains(4));
}

TEST(SwopeFilterNmiTest, ClassificationRespectsBand) {
  const Table table = MakeMiTable({0.9, 0.5, 0.2, 0.0}, 40000, 3);
  auto exact = ExactNormalizedMis(table, 0);
  ASSERT_TRUE(exact.ok());
  QueryOptions options;
  options.epsilon = 0.5;
  for (double eta : {0.2, 0.5}) {
    auto result = SwopeFilterNmi(table, 0, eta, options);
    ASSERT_TRUE(result.ok());
    for (size_t j = 1; j < table.num_columns(); ++j) {
      const double score = (*exact)[j];
      if (score >= (1.0 + options.epsilon) * eta) {
        EXPECT_TRUE(result->Contains(j)) << "eta " << eta << " j " << j;
      }
      if (score < (1.0 - options.epsilon) * eta) {
        EXPECT_FALSE(result->Contains(j)) << "eta " << eta << " j " << j;
      }
    }
  }
}

TEST(SwopeFilterNmiTest, TinyTableMatchesExactClassification) {
  const Table table = MakeMiTable({0.95, 0.0}, 70, 4);
  auto exact = ExactNormalizedMis(table, 0);
  ASSERT_TRUE(exact.ok());
  const double eta = 0.3;
  auto result = SwopeFilterNmi(table, 0, eta);
  ASSERT_TRUE(result.ok());
  for (size_t j = 1; j < table.num_columns(); ++j) {
    EXPECT_EQ(result->Contains(j), (*exact)[j] >= eta) << j;
  }
}

TEST(SwopeFilterNmiTest, HighThresholdEmpty) {
  const Table table = MakeMiTable({0.3, 0.2}, 20000, 5);
  auto result = SwopeFilterNmi(table, 0, 0.99);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->items.empty());
}

TEST(SwopeFilterNmiTest, DeterministicInSeed) {
  const Table table = MakeMiTable({0.7, 0.1}, 20000, 6);
  QueryOptions options;
  options.seed = 9;
  auto a = SwopeFilterNmi(table, 0, 0.2, options);
  auto b = SwopeFilterNmi(table, 0, 0.2, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->items.size(), b->items.size());
  for (size_t i = 0; i < a->items.size(); ++i) {
    EXPECT_EQ(a->items[i].index, b->items[i].index);
  }
}

}  // namespace
}  // namespace swope
