// Unit tests for QueryTrace and the driver's trace recording: the trace
// must describe the run exactly (one row per round, cells summing to
// QueryStats::cells_scanned) without perturbing the answer.

#include "src/obs/query_trace.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "src/core/swope_topk_entropy.h"
#include "src/core/swope_topk_mi.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeEntropyTable;
using test::MakeMiTable;

TEST(QueryTraceTest, RecordClearAndAccessors) {
  QueryTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.size(), 0u);

  RoundTrace round;
  round.round = 1;
  round.sample_size = 128;
  round.active_before = 5;
  trace.Record(round);
  round.round = 2;
  round.sample_size = 256;
  trace.Record(round);

  EXPECT_FALSE(trace.empty());
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.rounds()[0].round, 1u);
  EXPECT_EQ(trace.rounds()[0].sample_size, 128u);
  EXPECT_EQ(trace.rounds()[1].sample_size, 256u);

  trace.Clear();
  EXPECT_TRUE(trace.empty());
}

TEST(QueryTraceTest, FormatTraceTableRendersOneRowPerRound) {
  QueryTrace trace;
  RoundTrace round;
  round.round = 1;
  round.sample_size = 1024;
  round.lambda = 0.03125;
  round.max_bias = 0.001953125;
  round.active_before = 12;
  round.decided = 3;
  round.cells_scanned = 98304;
  round.wall_ms = 0.5;
  trace.Record(round);

  const std::string with_ms = FormatTraceTable(trace);
  // Header plus one data row.
  EXPECT_NE(with_ms.find("round"), std::string::npos);
  EXPECT_NE(with_ms.find("max_bias"), std::string::npos);
  EXPECT_NE(with_ms.find("ms"), std::string::npos);
  EXPECT_NE(with_ms.find("0.031250"), std::string::npos);
  EXPECT_NE(with_ms.find("98304"), std::string::npos);
  EXPECT_NE(with_ms.find("0.500"), std::string::npos);
  EXPECT_EQ(std::count(with_ms.begin(), with_ms.end(), '\n'), 2);

  // Without wall time, the nondeterministic column vanishes entirely.
  const std::string without_ms =
      FormatTraceTable(trace, /*include_wall_time=*/false);
  EXPECT_EQ(without_ms.find("ms"), std::string::npos);
  EXPECT_EQ(without_ms.find("0.500"), std::string::npos);
  EXPECT_NE(without_ms.find("0.031250"), std::string::npos);
}

TEST(QueryTraceTest, EmptyTraceRendersHeaderOnly) {
  QueryTrace trace;
  const std::string table = FormatTraceTable(trace);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 1);
  EXPECT_NE(table.find("round"), std::string::npos);
}

// Driver integration: the trace is an exact ledger of the run.
TEST(QueryTraceTest, EntropyTopKTraceMatchesStats) {
  const Table table =
      MakeEntropyTable({0.5, 1.5, 2.5, 3.5}, 3000, 11);
  QueryTrace trace;
  QueryOptions options;
  options.seed = 4;
  options.trace = &trace;
  auto traced = SwopeTopKEntropy(table, 2, options);
  ASSERT_TRUE(traced.ok());

  ASSERT_EQ(trace.size(), traced->stats.iterations);
  uint64_t cells = 0;
  uint64_t previous_m = 0;
  uint32_t previous_active = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const RoundTrace& round = trace.rounds()[i];
    // Rounds are numbered 1..N in order.
    EXPECT_EQ(round.round, static_cast<uint32_t>(i + 1));
    // M never shrinks; lambda is a positive bound until sampling
    // exhausts the dataset (lambda(n, n) == 0: no deviation remains).
    EXPECT_GE(round.sample_size, previous_m);
    if (round.sample_size < table.num_rows()) {
      EXPECT_GT(round.lambda, 0.0);
    } else {
      EXPECT_EQ(round.lambda, 0.0);
    }
    EXPECT_GE(round.max_bias, 0.0);
    // The active set only loses candidates.
    if (i > 0) {
      EXPECT_LE(round.active_before, previous_active);
    }
    EXPECT_LE(round.decided, round.active_before);
    EXPECT_GE(round.wall_ms, 0.0);
    previous_m = round.sample_size;
    previous_active = round.active_before - round.decided;
    cells += round.cells_scanned;
  }
  EXPECT_EQ(cells, traced->stats.cells_scanned);

  // Tracing must not change the answer: an untraced run with the same
  // options agrees bitwise.
  QueryOptions untraced_options;
  untraced_options.seed = 4;
  auto untraced = SwopeTopKEntropy(table, 2, untraced_options);
  ASSERT_TRUE(untraced.ok());
  ASSERT_EQ(traced->items.size(), untraced->items.size());
  for (size_t i = 0; i < traced->items.size(); ++i) {
    EXPECT_EQ(traced->items[i].index, untraced->items[i].index);
    EXPECT_EQ(traced->items[i].estimate, untraced->items[i].estimate);
    EXPECT_EQ(traced->items[i].lower, untraced->items[i].lower);
    EXPECT_EQ(traced->items[i].upper, untraced->items[i].upper);
  }
  EXPECT_EQ(traced->stats.iterations, untraced->stats.iterations);
  EXPECT_EQ(traced->stats.cells_scanned, untraced->stats.cells_scanned);
  EXPECT_EQ(traced->stats.final_sample_size,
            untraced->stats.final_sample_size);
}

// A trace object is reusable across queries via Clear().
TEST(QueryTraceTest, TraceReuseAcrossQueries) {
  const Table table = MakeMiTable({0.2, 0.6}, 2000, 7);
  QueryTrace trace;
  QueryOptions options;
  options.seed = 13;
  options.trace = &trace;

  auto first = SwopeTopKMi(table, 0, 1, options);
  ASSERT_TRUE(first.ok());
  const size_t first_rounds = trace.size();
  ASSERT_GT(first_rounds, 0u);

  trace.Clear();
  auto second = SwopeTopKMi(table, 0, 1, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(trace.size(), first_rounds);
}

}  // namespace
}  // namespace swope
