#include "src/datagen/dataset_presets.h"

#include <gtest/gtest.h>

#include "src/core/entropy.h"

namespace swope {
namespace {

TEST(DatasetPresetsTest, AllPresetsListed) {
  const auto presets = AllDatasetPresets();
  ASSERT_EQ(presets.size(), 4u);
  EXPECT_EQ(GetPresetInfo(presets[0]).name, "cdc");
  EXPECT_EQ(GetPresetInfo(presets[1]).name, "hus");
  EXPECT_EQ(GetPresetInfo(presets[2]).name, "pus");
  EXPECT_EQ(GetPresetInfo(presets[3]).name, "enem");
}

TEST(DatasetPresetsTest, InfoMatchesPaperTable2) {
  EXPECT_EQ(GetPresetInfo(DatasetPreset::kCdc).num_columns, 100u);
  EXPECT_EQ(GetPresetInfo(DatasetPreset::kCdc).paper_rows, 3753802u);
  EXPECT_EQ(GetPresetInfo(DatasetPreset::kHus).num_columns, 107u);
  EXPECT_EQ(GetPresetInfo(DatasetPreset::kPus).num_columns, 179u);
  EXPECT_EQ(GetPresetInfo(DatasetPreset::kPus).paper_rows, 31290943u);
  EXPECT_EQ(GetPresetInfo(DatasetPreset::kEnem).num_columns, 117u);
}

TEST(DatasetPresetsTest, ParseRoundTrip) {
  for (DatasetPreset preset : AllDatasetPresets()) {
    auto parsed = ParseDatasetPreset(GetPresetInfo(preset).name);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, preset);
  }
  EXPECT_TRUE(ParseDatasetPreset("nope").status().IsNotFound());
}

TEST(DatasetPresetsTest, MaterializedShape) {
  auto table = MakePresetTable(DatasetPreset::kCdc, 5000, 1);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 5000u);
  EXPECT_EQ(table->num_columns(), 100u);
  // The paper's preprocessing keeps support sizes <= 1000.
  EXPECT_LE(table->MaxSupport(), 1000u);
}

TEST(DatasetPresetsTest, PackedFootprintWellUnderUnpacked) {
  // The acceptance ratio for the bit-packed storage: cdc columns have
  // supports <= 1000 (<= 10 bits), so the exact resident size must come
  // in at no more than 40% of the 4-bytes-per-code footprint the old
  // ApproxTableBytes estimate charged.
  auto table = MakePresetTable(DatasetPreset::kCdc, 5000, 1);
  ASSERT_TRUE(table.ok());
  const uint64_t unpacked =
      table->num_rows() * table->num_columns() * sizeof(ValueCode);
  const uint64_t resident = table->MemoryBytes();
  EXPECT_GT(resident, 0u);
  EXPECT_LE(resident, unpacked * 2 / 5)
      << "resident " << resident << " vs unpacked " << unpacked;
}

TEST(DatasetPresetsTest, DeterministicInSeed) {
  auto a = MakePresetTable(DatasetPreset::kHus, 2000, 9);
  auto b = MakePresetTable(DatasetPreset::kHus, 2000, 9);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t c = 0; c < a->num_columns(); ++c) {
    ASSERT_EQ(a->column(c).codes(), b->column(c).codes()) << c;
  }
}

TEST(DatasetPresetsTest, PresetsDifferFromEachOther) {
  auto cdc = MakePresetTable(DatasetPreset::kCdc, 1000, 9);
  auto enem = MakePresetTable(DatasetPreset::kEnem, 1000, 9);
  ASSERT_TRUE(cdc.ok());
  ASSERT_TRUE(enem.ok());
  EXPECT_NE(cdc->column(0).codes(), enem->column(0).codes());
}

TEST(DatasetPresetsTest, EntropyProfileIsSpread) {
  // A realistic census-like preset mixes low- and high-entropy columns.
  auto table = MakePresetTable(DatasetPreset::kEnem, 20000, 3);
  ASSERT_TRUE(table.ok());
  const auto entropies = ExactEntropies(*table);
  int low = 0;
  int high = 0;
  for (double h : entropies) {
    if (h < 1.5) ++low;
    if (h > 3.0) ++high;
  }
  EXPECT_GE(low, 5);
  EXPECT_GE(high, 5);
}

TEST(DatasetPresetsTest, HasCorrelatedColumns) {
  // Latent-topic construction must produce some genuinely dependent pairs.
  auto table = MakePresetTable(DatasetPreset::kCdc, 20000, 3);
  ASSERT_TRUE(table.ok());
  auto mis = ExactMutualInformations(*table, 0);
  ASSERT_TRUE(mis.ok());
  double best = 0.0;
  for (size_t target = 0; target < 12; ++target) {
    auto scores = ExactMutualInformations(*table, target);
    ASSERT_TRUE(scores.ok());
    for (double mi : *scores) best = std::max(best, mi);
  }
  EXPECT_GT(best, 0.1);
}

TEST(DatasetPresetsTest, ZeroRowsUsesDefault) {
  // Use the smallest preset default indirectly: just check rows > 0 wiring
  // via a small explicit value to keep the test fast.
  auto table = MakePresetTable(DatasetPreset::kCdc, 100, 1);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 100u);
}

}  // namespace
}  // namespace swope
