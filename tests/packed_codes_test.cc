// Property tests for PackedCodes: every decode route (Get, Decode,
// Gather, ToVector) must agree with a plain std::vector<uint32_t>
// reference across random widths, width 0 (constant columns), exact
// power-of-two supports, and empty sequences; FromWords must reject
// malformed serialized payloads.

#include "src/table/packed_codes.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/table/shuffle.h"

namespace swope {
namespace {

std::vector<ValueCode> RandomCodes(uint64_t size, uint32_t support,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<ValueCode> codes(size);
  for (auto& code : codes) {
    code = static_cast<ValueCode>(rng.UniformU64(support));
  }
  return codes;
}

// Pack, then decode through every route and compare element-wise to the
// unpacked reference vector.
void ExpectAllRoutesMatch(const std::vector<ValueCode>& reference,
                          uint32_t width) {
  const PackedCodes packed = PackedCodes::Pack(reference, width);
  ASSERT_EQ(packed.size(), reference.size());
  ASSERT_EQ(packed.width(), width);

  for (uint64_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(packed.Get(i), reference[i]) << "Get at " << i;
  }

  EXPECT_EQ(packed.ToVector(), reference);

  // Decode over a few sub-ranges, including empty and full.
  std::vector<ValueCode> out(reference.size());
  const uint64_t n = reference.size();
  const uint64_t cuts[] = {0, n / 3, n / 2, n};
  for (uint64_t begin : cuts) {
    for (uint64_t end : cuts) {
      if (end < begin) continue;
      std::fill(out.begin(), out.end(), ValueCode{0xdeadbeef});
      packed.Decode(begin, end, out.data());
      for (uint64_t i = begin; i < end; ++i) {
        ASSERT_EQ(out[i - begin], reference[i])
            << "Decode [" << begin << "," << end << ") at " << i;
      }
    }
  }

  // Gather over a shuffled permutation must equal permuted reference.
  if (n > 0) {
    const auto order = ShuffledRowOrder(static_cast<uint32_t>(n), 77);
    std::vector<ValueCode> gathered(n);
    packed.Gather(order.data(), n, gathered.data());
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(gathered[i], reference[order[i]]) << "Gather at " << i;
    }
  }

  // Round-trip through the serialized payload words.
  std::vector<uint64_t> words(packed.data_words(),
                              packed.data_words() + packed.num_data_words());
  auto restored = PackedCodes::FromWords(packed.size(), width,
                                         std::move(words));
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored->ToVector(), reference);
}

TEST(PackedCodesTest, WidthForSupportMatchesCeilLog2) {
  EXPECT_EQ(PackedCodes::WidthForSupport(0), 0u);
  EXPECT_EQ(PackedCodes::WidthForSupport(1), 0u);
  EXPECT_EQ(PackedCodes::WidthForSupport(2), 1u);
  EXPECT_EQ(PackedCodes::WidthForSupport(3), 2u);
  EXPECT_EQ(PackedCodes::WidthForSupport(4), 2u);
  EXPECT_EQ(PackedCodes::WidthForSupport(5), 3u);
  EXPECT_EQ(PackedCodes::WidthForSupport(256), 8u);
  EXPECT_EQ(PackedCodes::WidthForSupport(257), 9u);
  EXPECT_EQ(PackedCodes::WidthForSupport(0xffffffffu), 32u);
}

TEST(PackedCodesTest, NumDataWordsRoundsUpBits) {
  EXPECT_EQ(PackedCodes::NumDataWords(0, 7), 0u);
  EXPECT_EQ(PackedCodes::NumDataWords(100, 0), 0u);
  EXPECT_EQ(PackedCodes::NumDataWords(1, 1), 1u);
  EXPECT_EQ(PackedCodes::NumDataWords(64, 1), 1u);
  EXPECT_EQ(PackedCodes::NumDataWords(65, 1), 2u);
  EXPECT_EQ(PackedCodes::NumDataWords(10, 32), 5u);
}

TEST(PackedCodesTest, RandomWidthsAgreeWithReferenceVector) {
  Rng rng(1234);
  for (int trial = 0; trial < 60; ++trial) {
    // Support drawn across the whole representable range of widths; sizes
    // hit word boundaries (multiples of 64 values) and off-by-one cases.
    const uint32_t width = static_cast<uint32_t>(rng.UniformU64(33));
    // Supports needing exactly `width` bits lie in [2^(width-1)+1, 2^width]
    // (capped at 2^32 - 1 for width 32).
    const uint64_t lo = width == 0 ? 1 : (uint64_t{1} << (width - 1)) + 1;
    const uint64_t hi =
        width == 0 ? 1
                   : std::min<uint64_t>(uint64_t{1} << width, 0xffffffffu);
    const uint32_t support =
        static_cast<uint32_t>(lo + rng.UniformU64(hi - lo + 1));
    const uint64_t size = rng.UniformU64(600);
    ASSERT_EQ(PackedCodes::WidthForSupport(support), width);
    ExpectAllRoutesMatch(RandomCodes(size, support, 999 + trial), width);
  }
}

TEST(PackedCodesTest, PowerOfTwoSupportsUseExactWidth) {
  for (uint32_t log2u : {1u, 2u, 3u, 8u, 16u}) {
    const uint32_t support = 1u << log2u;
    ASSERT_EQ(PackedCodes::WidthForSupport(support), log2u);
    // Include the extreme codes 0 and support - 1 explicitly.
    std::vector<ValueCode> codes = RandomCodes(321, support, 42 + log2u);
    codes[0] = 0;
    codes[1] = support - 1;
    ExpectAllRoutesMatch(codes, log2u);
  }
}

TEST(PackedCodesTest, WidthZeroConstantColumnHasNoPayload) {
  const std::vector<ValueCode> zeros(1000, 0);
  const PackedCodes packed = PackedCodes::Pack(zeros, 0);
  EXPECT_EQ(packed.size(), 1000u);
  EXPECT_EQ(packed.num_data_words(), 0u);
  ExpectAllRoutesMatch(zeros, 0);
}

TEST(PackedCodesTest, EmptySequence) {
  const std::vector<ValueCode> empty;
  for (uint32_t width : {0u, 5u, 32u}) {
    const PackedCodes packed = PackedCodes::Pack(empty, width);
    EXPECT_TRUE(packed.empty());
    EXPECT_EQ(packed.num_data_words(), 0u);
    ExpectAllRoutesMatch(empty, width);
  }
}

TEST(PackedCodesTest, FromWordsRejectsBadWidth) {
  auto packed = PackedCodes::FromWords(10, 33, std::vector<uint64_t>(6, 0));
  EXPECT_FALSE(packed.ok());
}

TEST(PackedCodesTest, FromWordsRejectsWrongWordCount) {
  // 10 values * 7 bits = 70 bits -> 2 words required.
  EXPECT_FALSE(
      PackedCodes::FromWords(10, 7, std::vector<uint64_t>(1, 0)).ok());
  EXPECT_FALSE(
      PackedCodes::FromWords(10, 7, std::vector<uint64_t>(3, 0)).ok());
  EXPECT_TRUE(
      PackedCodes::FromWords(10, 7, std::vector<uint64_t>(2, 0)).ok());
}

TEST(PackedCodesTest, FromWordsRejectsOverflowingSize) {
  // size * width wraps uint64 exactly (2^59 * 32 = 2^64), so the naive
  // word count is 0 and an empty payload would match it; FromWords must
  // reject the size outright instead of constructing a PackedCodes whose
  // decodes read out of bounds.
  EXPECT_FALSE(
      PackedCodes::FromWords(uint64_t{1} << 59, 32, {}).ok());
  // Just past the largest representable size for the width.
  EXPECT_FALSE(
      PackedCodes::FromWords(PackedCodes::MaxSizeForWidth(7) + 1, 7, {})
          .ok());
}

TEST(PackedCodesTest, MemoryBytesCountsWordsIncludingPadding) {
  // 100 values * 6 bits = 600 bits -> 10 payload words + 1 padding word.
  const PackedCodes packed =
      PackedCodes::Pack(RandomCodes(100, 64, 8), 6);
  EXPECT_EQ(packed.num_data_words(), 10u);
  EXPECT_EQ(packed.MemoryBytes(), 11u * sizeof(uint64_t));
  // Far below the 400 bytes of the unpacked vector.
  EXPECT_LT(packed.MemoryBytes(), 100 * sizeof(ValueCode));
}

}  // namespace
}  // namespace swope
