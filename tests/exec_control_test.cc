#include "src/core/exec_control.h"

#include <chrono>

#include <gtest/gtest.h>

#include "src/core/swope_topk_entropy.h"
#include "tests/test_util.h"

namespace swope {
namespace {

TEST(ExecControlTest, DefaultNeverFires) {
  const ExecControl control;
  EXPECT_TRUE(control.Check().ok());
}

TEST(ExecControlTest, CancellationFlipsCheck) {
  CancellationToken token;
  ExecControl control;
  control.token = &token;
  EXPECT_TRUE(control.Check().ok());
  token.Cancel();
  EXPECT_TRUE(control.Check().IsCancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(control.Check().IsCancelled());
}

TEST(ExecControlTest, ExpiredDeadlineFiresImmediately) {
  ExecControl control;
  control.SetTimeout(std::chrono::nanoseconds(0));
  EXPECT_TRUE(control.Check().IsDeadlineExceeded());
}

TEST(ExecControlTest, FarDeadlineDoesNotFire) {
  ExecControl control;
  control.SetTimeout(std::chrono::hours(1));
  EXPECT_TRUE(control.Check().ok());
}

TEST(ExecControlTest, CancellationWinsOverDeadline) {
  CancellationToken token;
  token.Cancel();
  ExecControl control;
  control.token = &token;
  control.SetTimeout(std::chrono::nanoseconds(0));
  EXPECT_TRUE(control.Check().IsCancelled());
}

TEST(ExecControlTest, DriverHonorsPreCancelledToken) {
  const Table table = test::MakeEntropyTable({3.0, 4.0}, 2000, 5);
  CancellationToken token;
  token.Cancel();
  ExecControl control;
  control.token = &token;
  QueryOptions options;
  options.control = &control;
  auto result = SwopeTopKEntropy(table, 1, options);
  EXPECT_TRUE(result.status().IsCancelled());
}

TEST(ExecControlTest, DriverHonorsExpiredDeadline) {
  const Table table = test::MakeEntropyTable({3.0, 4.0}, 2000, 5);
  ExecControl control;
  control.SetTimeout(std::chrono::nanoseconds(0));
  QueryOptions options;
  options.control = &control;
  auto result = SwopeTopKEntropy(table, 1, options);
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
}

}  // namespace
}  // namespace swope
