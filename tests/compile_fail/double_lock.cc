// Negative-compile case: acquiring a non-reentrant swope::Mutex twice
// in the same scope must not build. MutexLock is a SCOPED_CAPABILITY,
// so clang's analysis knows the capability is already held when the
// second guard tries to take it.
//
// REQUIRES: clang
// EXPECT-ERROR-RE: acquiring mutex 'mutex_' that is already held

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace {

class Once {
 public:
  int Get() {
    swope::MutexLock lock(mutex_);
    swope::MutexLock again(mutex_);  // BAD: self-deadlock
    return value_;
  }

 private:
  swope::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Once once;
  return once.Get();
}
