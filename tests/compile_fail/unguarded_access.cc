// Negative-compile case: writing a GUARDED_BY member without holding
// its mutex must not build. This is the contract tools/analyze's `locks`
// pass demands annotations for and clang's -Wthread-safety (promoted to
// -Werror in CI) enforces at compile time.
//
// REQUIRES: clang
// EXPECT-ERROR-RE: variable 'balance_' requires holding mutex 'mutex_'

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace {

class Account {
 public:
  void DepositLocked(int amount) {
    swope::MutexLock lock(mutex_);
    balance_ += amount;  // fine: lock held
  }

  void DepositRacy(int amount) {
    balance_ += amount;  // BAD: no lock held
  }

 private:
  swope::Mutex mutex_;
  int balance_ GUARDED_BY(mutex_) = 0;
};

void Use() {
  Account account;
  account.DepositLocked(1);
  account.DepositRacy(1);
}

}  // namespace

int main() {
  Use();
  return 0;
}
