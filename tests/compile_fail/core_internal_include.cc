// Negative-compile case: including a src/core/-internal header from
// outside src/core/ must not build. The headers carry a preprocessor
// gate (#ifndef SWOPE_CORE_INTERNAL -> #error); tools/lint.py catches
// the include textually and this case proves the hard break. Works
// under any compiler.
//
// EXPECT-ERROR-RE: internal to src/core/
// EXPECT-ERROR-RE: swope_topk_\*/swope_filter_\* headers

// The include below is the violation this case exists to prove, so it
// carries the lint escape; the preprocessor gate still fires.
// NOLINTNEXTLINE(swope-core-layering): the violation under test
#include "src/core/scorers.h"

int main() { return 0; }
