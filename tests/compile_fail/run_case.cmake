# Runs one negative-compile case. Invoked by ctest as
#
#   cmake -DCASE=<case.cc> -DCOMPILER=<c++> -DCOMPILER_ID=<GNU|Clang|...>
#         -DREPO_ROOT=<root> -DCXX_STANDARD=<20> [-DEXTRA_FLAGS=<...>]
#         -P run_case.cmake
#
# The case file declares its own expectations in comments:
#
#   // REQUIRES: clang          only meaningful under clang (thread-safety
#                               analysis); prints [SKIP-COMPILE-FAIL] under
#                               other compilers, which ctest maps to a skip
#                               via SKIP_REGULAR_EXPRESSION.
#   // EXPECT-ERROR-RE: <re>    CMake regex that must match the compiler's
#                               stderr. May appear multiple times; all must
#                               match.
#
# The test PASSES iff the compile fails AND every expected regex matches.
# A case that compiles cleanly is a hard failure: the contract it guards
# has been silently dropped.

foreach(var CASE COMPILER COMPILER_ID REPO_ROOT CXX_STANDARD)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_case.cmake: missing -D${var}=")
  endif()
endforeach()

file(READ "${CASE}" case_text)

string(REGEX MATCHALL "// EXPECT-ERROR-RE: [^\n]*" expect_lines "${case_text}")
if(NOT expect_lines)
  message(FATAL_ERROR "${CASE}: no // EXPECT-ERROR-RE: lines")
endif()

set(is_clang FALSE)
if(COMPILER_ID MATCHES "Clang")
  set(is_clang TRUE)
endif()

if(case_text MATCHES "// REQUIRES: clang" AND NOT is_clang)
  message(STATUS "[SKIP-COMPILE-FAIL] ${CASE} requires clang; compiler "
                 "is ${COMPILER_ID}")
  return()
endif()

set(flags
    -std=c++${CXX_STANDARD}
    -I${REPO_ROOT}
    -fsyntax-only
    -Wall
    -Wextra
    -Werror)
if(is_clang)
  # The full thread-safety set CI builds src/ with (cmake/Warnings.cmake);
  # the lock cases rely on it.
  list(APPEND flags -Wthread-safety -Wthread-safety-beta
       -Wthread-safety-negative)
endif()
if(DEFINED EXTRA_FLAGS AND NOT EXTRA_FLAGS STREQUAL "")
  separate_arguments(extra UNIX_COMMAND "${EXTRA_FLAGS}")
  list(APPEND flags ${extra})
endif()

execute_process(
  COMMAND "${COMPILER}" ${flags} "${CASE}"
  WORKING_DIRECTORY "${REPO_ROOT}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

set(diagnostics "${out}${err}")

if(exit_code EQUAL 0)
  message(FATAL_ERROR
      "${CASE}: compiled cleanly but MUST fail to build — the contract "
      "this case guards is no longer enforced")
endif()

foreach(line ${expect_lines})
  string(REGEX REPLACE "^// EXPECT-ERROR-RE: " "" expected "${line}")
  if(NOT diagnostics MATCHES "${expected}")
    message(FATAL_ERROR
        "${CASE}: compile failed (good) but the diagnostic did not match "
        "expected regex:\n  ${expected}\ncompiler output:\n${diagnostics}")
  endif()
endforeach()

message(STATUS "${CASE}: failed to compile with the expected "
               "diagnostics, as required")
