// Negative-compile case: dropping a swope::Status on the floor must not
// build. Status and Result<T> are class-level [[nodiscard]]; under the
// repo's -Werror that makes a silently ignored error path a build
// break. Intentional discards are spelled `(void)Call();  // reason`.
//
// Both GCC and clang diagnose this, so the case runs under any
// compiler ("ignoring returned value" on GCC, "ignoring return value"
// on clang — the regex accepts both).
//
// EXPECT-ERROR-RE: ignoring return[a-z]* value
// EXPECT-ERROR-RE: nodiscard

#include "src/common/status.h"

namespace {

swope::Status MightFail(int x) {
  if (x < 0) return swope::Status::InvalidArgument("negative");
  return swope::Status::OK();
}

void Caller() {
  MightFail(7);  // BAD: error path silently swallowed
  (void)MightFail(8);  // fine: explicit, visible discard
}

}  // namespace

int main() {
  Caller();
  return 0;
}
