#include "src/core/pair_counter.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/entropy.h"
#include "src/datagen/generator.h"
#include "src/table/column_view.h"
#include "src/table/shuffle.h"

namespace swope {
namespace {

TEST(PairCounterTest, SelectsDenseForSmallProduct) {
  PairCounter small(10, 10, 1000);
  EXPECT_TRUE(small.is_dense());
  PairCounter big(100, 100, 1000);
  EXPECT_FALSE(big.is_dense());
}

TEST(PairCounterTest, MigratesSparseToDenseUnderLoad) {
  // 128*128 = 16384 cells > kImmediateDenseCells, so the counter starts
  // sparse; filling an eighth of the domain triggers migration, and all
  // statistics must survive it.
  PairCounter counter(128, 128, /*dense_limit=*/1 << 20);
  ASSERT_FALSE(counter.is_dense());
  Rng rng(5);
  std::vector<std::pair<ValueCode, ValueCode>> added;
  for (int i = 0; i < 8000; ++i) {
    const auto a = static_cast<ValueCode>(rng.UniformU64(128));
    const auto b = static_cast<ValueCode>(rng.UniformU64(128));
    counter.Add(a, b);
    added.emplace_back(a, b);
  }
  EXPECT_TRUE(counter.is_dense());
  EXPECT_EQ(counter.sample_count(), 8000u);

  // Replay into a never-migrating counter and compare.
  PairCounter reference(128, 128, /*dense_limit=*/1);
  for (const auto& [a, b] : added) reference.Add(a, b);
  ASSERT_FALSE(reference.is_dense());
  EXPECT_EQ(counter.distinct_pairs(), reference.distinct_pairs());
  EXPECT_NEAR(counter.SampleJointEntropy(),
              reference.SampleJointEntropy(), 1e-12);
  for (uint32_t a = 0; a < 128; a += 13) {
    for (uint32_t b = 0; b < 128; b += 11) {
      EXPECT_EQ(counter.count(a, b), reference.count(a, b));
    }
  }
}

TEST(PairCounterTest, CountsPairs) {
  PairCounter counter(3, 3);
  counter.Add(0, 1);
  counter.Add(0, 1);
  counter.Add(2, 2);
  EXPECT_EQ(counter.sample_count(), 3u);
  EXPECT_EQ(counter.distinct_pairs(), 2u);
  EXPECT_EQ(counter.count(0, 1), 2u);
  EXPECT_EQ(counter.count(2, 2), 1u);
  EXPECT_EQ(counter.count(1, 1), 0u);
}

TEST(PairCounterTest, JointEntropyUniformPairs) {
  PairCounter counter(2, 2);
  counter.Add(0, 0);
  counter.Add(0, 1);
  counter.Add(1, 0);
  counter.Add(1, 1);
  EXPECT_NEAR(counter.SampleJointEntropy(), 2.0, 1e-12);
}

TEST(PairCounterTest, EmptyEntropyIsZero) {
  PairCounter counter(4, 4);
  EXPECT_EQ(counter.SampleJointEntropy(), 0.0);
}

TEST(PairCounterTest, DenseAndSparseAgree) {
  auto a = GenerateColumn(ColumnSpec::Uniform("a", 6), 3000, 1);
  auto b = GenerateColumn(ColumnSpec::Zipf("b", 9, 1.0), 3000, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  PairCounter dense(6, 9, /*dense_limit=*/1000);
  PairCounter sparse(6, 9, /*dense_limit=*/1);
  ASSERT_TRUE(dense.is_dense());
  ASSERT_FALSE(sparse.is_dense());

  for (uint64_t r = 0; r < 3000; ++r) {
    dense.Add(a->code(r), b->code(r));
    sparse.Add(a->code(r), b->code(r));
  }
  EXPECT_EQ(dense.sample_count(), sparse.sample_count());
  EXPECT_EQ(dense.distinct_pairs(), sparse.distinct_pairs());
  EXPECT_NEAR(dense.SampleJointEntropy(), sparse.SampleJointEntropy(),
              1e-12);
  for (uint32_t i = 0; i < 6; ++i) {
    for (uint32_t j = 0; j < 9; ++j) {
      EXPECT_EQ(dense.count(i, j), sparse.count(i, j));
    }
  }
}

TEST(PairCounterTest, FullScanMatchesExactJointEntropy) {
  auto a = GenerateColumn(ColumnSpec::Uniform("a", 5), 8000, 3);
  auto b = GenerateColumn(ColumnSpec::Geometric("b", 7, 0.4), 8000, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto order = ShuffledRowOrder(8000, 5);

  std::vector<ValueCode> sa;
  std::vector<ValueCode> sb;
  PairCounter counter(5, 7);
  counter.AddCodes(ColumnView(*a).Gather(order, 0, 8000, sa),
                   ColumnView(*b).Gather(order, 0, 8000, sb), 8000);
  auto exact = ExactJointEntropy(*a, *b);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(counter.SampleJointEntropy(), *exact, 1e-9);
}

TEST(PairCounterTest, AddCodesInBatchesMatchesOneShot) {
  auto a = GenerateColumn(ColumnSpec::Uniform("a", 4), 2000, 6);
  auto b = GenerateColumn(ColumnSpec::Uniform("b", 4), 2000, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto order = ShuffledRowOrder(2000, 8);
  const ColumnView view_a(*a);
  const ColumnView view_b(*b);
  std::vector<ValueCode> sa;
  std::vector<ValueCode> sb;

  PairCounter batched(4, 4);
  batched.AddCodes(view_a.Gather(order, 0, 500, sa),
                   view_b.Gather(order, 0, 500, sb), 500);
  batched.AddCodes(view_a.Gather(order, 500, 1300, sa),
                   view_b.Gather(order, 500, 1300, sb), 800);
  batched.AddCodes(view_a.Gather(order, 1300, 2000, sa),
                   view_b.Gather(order, 1300, 2000, sb), 700);

  PairCounter oneshot(4, 4);
  oneshot.AddCodes(view_a.Gather(order, 0, 2000, sa),
                   view_b.Gather(order, 0, 2000, sb), 2000);

  EXPECT_NEAR(batched.SampleJointEntropy(), oneshot.SampleJointEntropy(),
              1e-12);
  EXPECT_EQ(batched.distinct_pairs(), oneshot.distinct_pairs());
}

}  // namespace
}  // namespace swope
