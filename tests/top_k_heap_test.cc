#include "src/common/top_k_heap.h"

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(TopKHeapTest, KeepsLargestK) {
  TopKHeap<int> heap(3);
  for (int i = 0; i < 10; ++i) heap.Push(static_cast<double>(i), i);
  const auto sorted = heap.TakeSortedDescending();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].payload, 9);
  EXPECT_EQ(sorted[1].payload, 8);
  EXPECT_EQ(sorted[2].payload, 7);
}

TEST(TopKHeapTest, FewerThanKItems) {
  TopKHeap<int> heap(5);
  heap.Push(1.0, 1);
  heap.Push(3.0, 3);
  EXPECT_FALSE(heap.Full());
  const auto sorted = heap.TakeSortedDescending();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].payload, 3);
}

TEST(TopKHeapTest, MinScoreTracksKthLargest) {
  TopKHeap<int> heap(2);
  heap.Push(5.0, 0);
  heap.Push(1.0, 1);
  EXPECT_TRUE(heap.Full());
  EXPECT_DOUBLE_EQ(heap.MinScore(), 1.0);
  heap.Push(3.0, 2);  // evicts score 1
  EXPECT_DOUBLE_EQ(heap.MinScore(), 3.0);
  heap.Push(2.0, 3);  // below min, ignored
  EXPECT_DOUBLE_EQ(heap.MinScore(), 3.0);
}

TEST(TopKHeapTest, TieBreaksTowardSmallerPayload) {
  TopKHeap<int> heap(2);
  heap.Push(1.0, 10);
  heap.Push(1.0, 3);
  heap.Push(1.0, 7);
  const auto sorted = heap.TakeSortedDescending();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].payload, 3);
  EXPECT_EQ(sorted[1].payload, 7);
}

TEST(TopKHeapTest, ZeroKIgnoresEverything) {
  TopKHeap<int> heap(0);
  heap.Push(1.0, 1);
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_TRUE(heap.TakeSortedDescending().empty());
}

TEST(TopKHeapTest, DescendingInsertOrder) {
  TopKHeap<int> heap(4);
  for (int i = 100; i > 0; --i) heap.Push(static_cast<double>(i), i);
  const auto sorted = heap.TakeSortedDescending();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].payload, 100);
  EXPECT_EQ(sorted[3].payload, 97);
}

}  // namespace
}  // namespace swope
