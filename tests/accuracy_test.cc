#include "src/eval/accuracy.h"

#include <memory_resource>

#include <gtest/gtest.h>

namespace swope {
namespace {

std::pmr::vector<AttributeScore> Items(std::vector<size_t> indices,
                                       std::vector<double> estimates = {}) {
  std::pmr::vector<AttributeScore> items;
  for (size_t i = 0; i < indices.size(); ++i) {
    AttributeScore item;
    item.index = indices[i];
    item.estimate = i < estimates.size() ? estimates[i] : 0.0;
    items.push_back(item);
  }
  return items;
}

FilterResult Filter(std::vector<size_t> indices) {
  FilterResult result;
  result.items = Items(std::move(indices));
  return result;
}

const std::vector<double> kScores = {3.0, 1.0, 2.0, 4.0, 0.5};
const std::vector<size_t> kAll = {0, 1, 2, 3, 4};

TEST(AccuracyTest, TopKPerfect) {
  // Exact top-2 is {3, 0}.
  EXPECT_DOUBLE_EQ(TopKAccuracy(Items({3, 0}), kScores, kAll, 2), 1.0);
}

TEST(AccuracyTest, TopKPartial) {
  EXPECT_DOUBLE_EQ(TopKAccuracy(Items({3, 1}), kScores, kAll, 2), 0.5);
  EXPECT_DOUBLE_EQ(TopKAccuracy(Items({1, 4}), kScores, kAll, 2), 0.0);
}

TEST(AccuracyTest, TopKTieAware) {
  const std::vector<double> tied = {2.0, 2.0, 1.0};
  const std::vector<size_t> all = {0, 1, 2};
  // k = 1 with two tied best: returning either counts.
  EXPECT_DOUBLE_EQ(TopKAccuracy(Items({0}), tied, all, 1), 1.0);
  EXPECT_DOUBLE_EQ(TopKAccuracy(Items({1}), tied, all, 1), 1.0);
  EXPECT_DOUBLE_EQ(TopKAccuracy(Items({2}), tied, all, 1), 0.0);
}

TEST(AccuracyTest, TopKClampsKAndHandlesEmpty) {
  EXPECT_DOUBLE_EQ(TopKAccuracy(Items({3, 0, 2, 1, 4}), kScores, kAll, 99),
                   1.0);
  EXPECT_DOUBLE_EQ(TopKAccuracy({}, kScores, {}, 3), 1.0);
}

TEST(AccuracyTest, FilterAccuracyCountsBothSides) {
  // eta = 1.5: truth = {0, 2, 3}.
  EXPECT_DOUBLE_EQ(FilterAccuracy(Filter({0, 2, 3}), kScores, kAll, 1.5),
                   1.0);
  // One false negative (missing 2) -> 4/5 agree.
  EXPECT_DOUBLE_EQ(FilterAccuracy(Filter({0, 3}), kScores, kAll, 1.5), 0.8);
  // One false positive (extra 1) -> 4/5.
  EXPECT_DOUBLE_EQ(FilterAccuracy(Filter({0, 1, 2, 3}), kScores, kAll, 1.5),
                   0.8);
}

TEST(AccuracyTest, PrecisionRecallF1) {
  // truth = {0, 2, 3}; predicted = {0, 3, 4}: tp=2 fp=1 fn=1.
  const FilterPrf prf =
      FilterPrecisionRecall(Filter({0, 3, 4}), kScores, kAll, 1.5);
  EXPECT_NEAR(prf.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(prf.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(prf.f1, 2.0 / 3.0, 1e-12);
}

TEST(AccuracyTest, PrecisionRecallDegenerateCases) {
  // Nothing predicted, nothing true above a huge threshold.
  const FilterPrf prf = FilterPrecisionRecall(Filter({}), kScores, kAll, 99.0);
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
}

TEST(AccuracyTest, SatisfiesApproxTopKBothConditions) {
  // Exact sorted: 4, 3, 2, 1, 0.5. k=2, eps=0.1.
  // Returned [3, 0] with faithful estimates: both conditions hold.
  EXPECT_TRUE(SatisfiesApproxTopK(Items({3, 0}, {4.0, 3.0}), kScores, kAll,
                                  2, 0.1));
  // Condition (i) violated: estimate far below truth.
  EXPECT_FALSE(SatisfiesApproxTopK(Items({3, 0}, {4.0, 2.0}), kScores, kAll,
                                   2, 0.1));
  // Condition (ii) violated: second item's truth (1.0) << 2nd best (3.0).
  EXPECT_FALSE(SatisfiesApproxTopK(Items({3, 1}, {4.0, 1.0}), kScores, kAll,
                                   2, 0.1));
}

TEST(AccuracyTest, SatisfiesApproxTopKAllowsEpsilonSlack) {
  // Returned item 2 (score 2.0) in place of item 0 (score 3.0) passes
  // only when eps is generous enough: 2.0 >= (1-eps)*3.0 <=> eps >= 1/3.
  EXPECT_FALSE(SatisfiesApproxTopK(Items({3, 2}, {4.0, 2.0}), kScores, kAll,
                                   2, 0.2));
  EXPECT_TRUE(SatisfiesApproxTopK(Items({3, 2}, {4.0, 2.0}), kScores, kAll,
                                  2, 0.4));
}

TEST(AccuracyTest, SatisfiesApproxTopKRequiresKItems) {
  EXPECT_FALSE(SatisfiesApproxTopK(Items({3}), kScores, kAll, 2, 0.5));
}

TEST(AccuracyTest, SatisfiesApproxFilterBandSemantics) {
  // eta = 2.0, eps = 0.2: must-include >= 2.4 (indices 0 and 3),
  // must-exclude < 1.6 (indices 1 and 4); index 2 (score 2.0) is in-band
  // and discretionary.
  EXPECT_TRUE(
      SatisfiesApproxFilter(Filter({0, 2, 3}), kScores, kAll, 2.0, 0.2));
  EXPECT_TRUE(SatisfiesApproxFilter(Filter({0, 3}), kScores, kAll, 2.0, 0.2));
  // Missing a must-include (3 -> 4.0).
  EXPECT_FALSE(SatisfiesApproxFilter(Filter({0}), kScores, kAll, 2.0, 0.2));
  // Including a must-exclude (1 -> 1.0).
  EXPECT_FALSE(
      SatisfiesApproxFilter(Filter({0, 1, 3}), kScores, kAll, 2.0, 0.2));
}

}  // namespace
}  // namespace swope
