#include "src/engine/query_spec.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/core/exec_control.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeMiTable;

QuerySpec BaseSpec(QueryKind kind) {
  QuerySpec spec;
  spec.dataset = "ds";
  spec.kind = kind;
  if (IsTopKKind(kind)) {
    spec.k = 2;
  } else {
    spec.eta = 0.5;
  }
  if (NeedsTarget(kind)) spec.target = "t";
  return spec;
}

TEST(QueryKindTest, WireNamesRoundTrip) {
  for (QueryKind kind :
       {QueryKind::kEntropyTopK, QueryKind::kEntropyFilter,
        QueryKind::kMiTopK, QueryKind::kMiFilter, QueryKind::kNmiTopK,
        QueryKind::kNmiFilter}) {
    auto parsed = ParseQueryKind(QueryKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_TRUE(ParseQueryKind("bogus").status().IsInvalidArgument());
  EXPECT_TRUE(ParseQueryKind("").status().IsInvalidArgument());
}

TEST(QueryKindTest, KindPredicates) {
  EXPECT_TRUE(IsTopKKind(QueryKind::kEntropyTopK));
  EXPECT_TRUE(IsTopKKind(QueryKind::kMiTopK));
  EXPECT_TRUE(IsTopKKind(QueryKind::kNmiTopK));
  EXPECT_FALSE(IsTopKKind(QueryKind::kEntropyFilter));
  EXPECT_FALSE(NeedsTarget(QueryKind::kEntropyTopK));
  EXPECT_FALSE(NeedsTarget(QueryKind::kEntropyFilter));
  EXPECT_TRUE(NeedsTarget(QueryKind::kMiFilter));
  EXPECT_TRUE(NeedsTarget(QueryKind::kNmiTopK));
}

TEST(QuerySpecValidateTest, AcceptsWellFormedSpecs) {
  for (QueryKind kind :
       {QueryKind::kEntropyTopK, QueryKind::kEntropyFilter,
        QueryKind::kMiTopK, QueryKind::kMiFilter, QueryKind::kNmiTopK,
        QueryKind::kNmiFilter}) {
    EXPECT_TRUE(BaseSpec(kind).Validate().ok())
        << QueryKindToString(kind);
  }
}

TEST(QuerySpecValidateTest, RejectsMissingDataset) {
  QuerySpec spec = BaseSpec(QueryKind::kEntropyTopK);
  spec.dataset.clear();
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
}

TEST(QuerySpecValidateTest, RejectsZeroKForTopK) {
  QuerySpec spec = BaseSpec(QueryKind::kEntropyTopK);
  spec.k = 0;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
}

TEST(QuerySpecValidateTest, RejectsNonPositiveEtaForFilters) {
  QuerySpec spec = BaseSpec(QueryKind::kEntropyFilter);
  spec.eta = 0.0;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
  spec.eta = -1.0;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
}

TEST(QuerySpecValidateTest, RejectsNmiFilterEtaAboveOne) {
  QuerySpec spec = BaseSpec(QueryKind::kNmiFilter);
  spec.eta = 1.5;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
  spec.eta = 1.0;  // NMI is normalized to [0, 1]; eta == 1 is allowed.
  EXPECT_TRUE(spec.Validate().ok());
  // Plain MI is unbounded, so the same eta is fine there.
  QuerySpec mi = BaseSpec(QueryKind::kMiFilter);
  mi.eta = 1.5;
  EXPECT_TRUE(mi.Validate().ok());
}

TEST(QuerySpecValidateTest, RejectsMissingTarget) {
  QuerySpec spec = BaseSpec(QueryKind::kMiTopK);
  spec.target.clear();
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
}

TEST(QuerySpecValidateTest, RejectsEngineManagedFields) {
  QuerySpec spec = BaseSpec(QueryKind::kEntropyTopK);
  spec.options.shared_order =
      std::make_shared<const std::vector<uint32_t>>();
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());

  spec = BaseSpec(QueryKind::kEntropyTopK);
  const ExecControl control;
  spec.options.control = &control;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
}

TEST(QuerySpecValidateTest, PropagatesBadOptions) {
  QuerySpec spec = BaseSpec(QueryKind::kEntropyTopK);
  spec.options.epsilon = 1.0;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
}

TEST(ResolveSpecTest, ResolvesTargetByNameAndIndexToSameKey) {
  const Table table = MakeMiTable({0.2, 0.5, 0.8}, 800, 3);
  QuerySpec by_name = BaseSpec(QueryKind::kMiTopK);
  QuerySpec by_index = by_name;
  by_index.target = "0";  // column "t" is index 0

  auto a = ResolveSpec(by_name, table);
  auto b = ResolveSpec(by_index, table);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->target, 0u);
  EXPECT_EQ(a->canonical_key, b->canonical_key);
}

TEST(ResolveSpecTest, ClampedKSharesKeyWithExplicitCap) {
  const Table table = MakeMiTable({0.2, 0.5}, 800, 3);  // h = 3
  QuerySpec capped = BaseSpec(QueryKind::kEntropyTopK);
  capped.k = 3;
  QuerySpec oversized = capped;
  oversized.k = 1000;  // clamps to h = 3

  auto a = ResolveSpec(capped, table);
  auto b = ResolveSpec(oversized, table);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->k, 3u);
  EXPECT_EQ(a->canonical_key, b->canonical_key);

  // MI top-k excludes the target, so the cap is h - 1.
  QuerySpec mi = BaseSpec(QueryKind::kMiTopK);
  mi.k = 99;
  auto c = ResolveSpec(mi, table);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->k, 2u);
}

TEST(ResolveSpecTest, DefaultPfSharesKeyWithExplicitOneOverN) {
  const Table table = MakeMiTable({0.5}, 1000, 3);
  QuerySpec implicit = BaseSpec(QueryKind::kEntropyTopK);
  implicit.options.failure_probability = 0.0;  // paper default: 1/N
  QuerySpec explicit_pf = implicit;
  explicit_pf.options.failure_probability = 1e-3;

  auto a = ResolveSpec(implicit, table);
  auto b = ResolveSpec(explicit_pf, table);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->options.failure_probability, 1e-3);
  EXPECT_EQ(a->canonical_key, b->canonical_key);
}

TEST(ResolveSpecTest, DistinctParametersGetDistinctKeys) {
  const Table table = MakeMiTable({0.2, 0.5}, 800, 3);
  const QuerySpec base = BaseSpec(QueryKind::kEntropyTopK);
  auto base_key = ResolveSpec(base, table);
  ASSERT_TRUE(base_key.ok());

  QuerySpec other = base;
  other.options.epsilon = 0.2;
  auto eps_key = ResolveSpec(other, table);
  ASSERT_TRUE(eps_key.ok());
  EXPECT_NE(base_key->canonical_key, eps_key->canonical_key);

  other = base;
  other.options.seed = base.options.seed + 1;
  auto seed_key = ResolveSpec(other, table);
  ASSERT_TRUE(seed_key.ok());
  EXPECT_NE(base_key->canonical_key, seed_key->canonical_key);

  other = base;
  other.kind = QueryKind::kNmiTopK;
  other.target = "t";
  auto kind_key = ResolveSpec(other, table);
  ASSERT_TRUE(kind_key.ok());
  EXPECT_NE(base_key->canonical_key, kind_key->canonical_key);
}

TEST(ResolveSpecTest, TimeoutDoesNotAffectKey) {
  // The deadline changes whether a query finishes, never its answer, so
  // it must not fragment the cache.
  const Table table = MakeMiTable({0.5}, 800, 3);
  QuerySpec fast = BaseSpec(QueryKind::kEntropyTopK);
  QuerySpec slow = fast;
  slow.timeout_ms = 60000;
  auto a = ResolveSpec(fast, table);
  auto b = ResolveSpec(slow, table);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->canonical_key, b->canonical_key);
}

TEST(ResolveSpecTest, UnknownTargetIsNotFound) {
  const Table table = MakeMiTable({0.5}, 800, 3);
  QuerySpec spec = BaseSpec(QueryKind::kMiTopK);
  spec.target = "no-such-column";
  EXPECT_TRUE(ResolveSpec(spec, table).status().IsNotFound());
  spec.target = "99";  // numeric but out of range
  EXPECT_TRUE(ResolveSpec(spec, table).status().IsNotFound());
}

TEST(ResolveSpecTest, EmptyTableIsRejectedForTopK) {
  QuerySpec spec = BaseSpec(QueryKind::kEntropyTopK);
  EXPECT_TRUE(ResolveSpec(spec, Table()).status().IsInvalidArgument());
}

}  // namespace
}  // namespace swope
