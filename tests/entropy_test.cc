#include "src/core/entropy.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/math.h"
#include "src/datagen/generator.h"

namespace swope {
namespace {

Column Col(const std::string& name, uint32_t support,
           std::vector<ValueCode> codes) {
  auto column = Column::Make(name, support, std::move(codes));
  EXPECT_TRUE(column.ok());
  return std::move(column).value();
}

TEST(EntropyTest, UniformColumn) {
  EXPECT_NEAR(ExactEntropy(Col("x", 4, {0, 1, 2, 3, 0, 1, 2, 3})), 2.0,
              1e-12);
}

TEST(EntropyTest, ConstantColumnIsZero) {
  EXPECT_EQ(ExactEntropy(Col("x", 1, {0, 0, 0, 0})), 0.0);
}

TEST(EntropyTest, EmptyColumnIsZero) {
  EXPECT_EQ(ExactEntropy(Col("x", 0, {})), 0.0);
}

TEST(EntropyTest, BiasedBinaryMatchesFormula) {
  // 3 ones out of 4: H = h(0.25).
  EXPECT_NEAR(ExactEntropy(Col("x", 2, {1, 1, 1, 0})), BinaryEntropy(0.25),
              1e-12);
}

TEST(EntropyTest, PrefixEntropy) {
  const Column c = Col("x", 2, {0, 0, 1, 1});
  EXPECT_EQ(ExactEntropyPrefix(c, 0), 0.0);
  EXPECT_EQ(ExactEntropyPrefix(c, 2), 0.0);          // 0,0
  EXPECT_NEAR(ExactEntropyPrefix(c, 3), BinaryEntropy(1.0 / 3.0), 1e-12);
  EXPECT_NEAR(ExactEntropyPrefix(c, 4), 1.0, 1e-12);
}

TEST(EntropyTest, JointEntropyIndependentUniform) {
  // a cycles 0101..., b cycles 0011... over 4 rows -> joint uniform on 4
  // combos.
  const Column a = Col("a", 2, {0, 1, 0, 1});
  const Column b = Col("b", 2, {0, 0, 1, 1});
  auto joint = ExactJointEntropy(a, b);
  ASSERT_TRUE(joint.ok());
  EXPECT_NEAR(*joint, 2.0, 1e-12);
}

TEST(EntropyTest, JointEntropyIdenticalColumnsEqualsMarginal) {
  const Column a = Col("a", 3, {0, 1, 2, 0, 1, 2, 0});
  auto joint = ExactJointEntropy(a, a);
  ASSERT_TRUE(joint.ok());
  EXPECT_NEAR(*joint, ExactEntropy(a), 1e-12);
}

TEST(EntropyTest, JointEntropyRejectsSizeMismatch) {
  const Column a = Col("a", 2, {0, 1});
  const Column b = Col("b", 2, {0});
  EXPECT_TRUE(ExactJointEntropy(a, b).status().IsInvalidArgument());
}

TEST(EntropyTest, MutualInformationIdenticalEqualsEntropy) {
  const Column a = Col("a", 4, {0, 1, 2, 3, 0, 1, 2, 3});
  auto mi = ExactMutualInformation(a, a);
  ASSERT_TRUE(mi.ok());
  EXPECT_NEAR(*mi, 2.0, 1e-12);
}

TEST(EntropyTest, MutualInformationIndependentIsZero) {
  const Column a = Col("a", 2, {0, 1, 0, 1});
  const Column b = Col("b", 2, {0, 0, 1, 1});
  auto mi = ExactMutualInformation(a, b);
  ASSERT_TRUE(mi.ok());
  EXPECT_NEAR(*mi, 0.0, 1e-12);
}

TEST(EntropyTest, MutualInformationIsSymmetric) {
  const Column a = Col("a", 3, {0, 1, 2, 0, 1, 0, 2, 1});
  const Column b = Col("b", 2, {0, 1, 1, 0, 0, 1, 1, 0});
  auto ab = ExactMutualInformation(a, b);
  auto ba = ExactMutualInformation(b, a);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_NEAR(*ab, *ba, 1e-12);
}

TEST(EntropyTest, MutualInformationBoundedByMinEntropy) {
  auto a = GenerateColumn(ColumnSpec::Zipf("a", 16, 1.0), 20000, 1);
  auto b = GenerateColumn(ColumnSpec::Uniform("b", 4), 20000, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto mi = ExactMutualInformation(*a, *b);
  ASSERT_TRUE(mi.ok());
  EXPECT_GE(*mi, 0.0);
  EXPECT_LE(*mi, std::min(ExactEntropy(*a), ExactEntropy(*b)) + 1e-9);
}

TEST(EntropyTest, DenseAndSparseJointPathsAgree) {
  // Force the sparse path with large supports; compare against a dense
  // recomputation on remapped small-support copies of the same data.
  auto a_small = GenerateColumn(ColumnSpec::Uniform("a", 7), 5000, 3);
  auto b_small = GenerateColumn(ColumnSpec::Uniform("b", 5), 5000, 4);
  ASSERT_TRUE(a_small.ok());
  ASSERT_TRUE(b_small.ok());
  // Same codes, but declared support blows past the dense limit: the
  // sparse hash path must produce the identical entropy.
  auto a_big = Column::Make("a", 3000, a_small->codes());
  auto b_big = Column::Make("b", 3000, b_small->codes());
  ASSERT_TRUE(a_big.ok());
  ASSERT_TRUE(b_big.ok());
  auto dense = ExactJointEntropy(*a_small, *b_small);
  auto sparse = ExactJointEntropy(*a_big, *b_big);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(sparse.ok());
  EXPECT_NEAR(*dense, *sparse, 1e-12);
}

TEST(EntropyTest, ExactEntropiesCoversAllColumns) {
  TableSpec spec;
  spec.num_rows = 4000;
  spec.seed = 5;
  spec.columns = {ColumnSpec::Uniform("a", 2), ColumnSpec::Uniform("b", 16),
                  ColumnSpec::EntropyTargeted("c", 32, 1.0)};
  auto table = GenerateTable(spec);
  ASSERT_TRUE(table.ok());
  const auto entropies = ExactEntropies(*table);
  ASSERT_EQ(entropies.size(), 3u);
  EXPECT_NEAR(entropies[0], 1.0, 0.05);
  EXPECT_NEAR(entropies[1], 4.0, 0.05);
  EXPECT_NEAR(entropies[2], 1.0, 0.1);
}

TEST(EntropyTest, ExactMutualInformationsTargetSlotIsZero) {
  TableSpec spec;
  spec.num_rows = 1000;
  spec.seed = 6;
  spec.columns = {ColumnSpec::Uniform("a", 4), ColumnSpec::Uniform("b", 4),
                  ColumnSpec::Uniform("c", 4)};
  auto table = GenerateTable(spec);
  ASSERT_TRUE(table.ok());
  auto mis = ExactMutualInformations(*table, 1);
  ASSERT_TRUE(mis.ok());
  EXPECT_EQ((*mis)[1], 0.0);
  EXPECT_TRUE(ExactMutualInformations(*table, 9).status().IsInvalidArgument());
}

}  // namespace
}  // namespace swope
