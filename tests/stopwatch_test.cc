#include "src/common/stopwatch.h"

#include <thread>

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch watch;
  const double t1 = watch.ElapsedSeconds();
  const double t2 = watch.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(StopwatchTest, MeasuresSleep) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(watch.ElapsedMillis(), 15.0);
  EXPECT_LT(watch.ElapsedSeconds(), 5.0);
}

TEST(StopwatchTest, ResetRestartsWindow) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.Reset();
  EXPECT_LT(watch.ElapsedMillis(), 15.0);
}

TEST(StopwatchTest, MillisMatchesSeconds) {
  Stopwatch watch;
  const double s = watch.ElapsedSeconds();
  const double ms = watch.ElapsedMillis();
  EXPECT_GE(ms, s * 1e3 * 0.5);  // same order of magnitude
}

}  // namespace
}  // namespace swope
