// Compile-visibility check for the umbrella header: every public entry
// point must be reachable through src/swope.h alone.

#include "src/swope.h"

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(UmbrellaHeaderTest, CoreSymbolsVisible) {
  QueryOptions options;
  EXPECT_TRUE(options.Validate().ok());

  TableSpec spec;
  spec.num_rows = 200;
  spec.seed = 1;
  spec.columns = {ColumnSpec::Uniform("a", 4), ColumnSpec::Zipf("b", 8, 1.0)};
  auto table = GenerateTable(spec);
  ASSERT_TRUE(table.ok());

  EXPECT_TRUE(SwopeTopKEntropy(*table, 1).ok());
  EXPECT_TRUE(SwopeFilterEntropy(*table, 0.5).ok());
  EXPECT_TRUE(SwopeTopKMi(*table, 0, 1).ok());
  EXPECT_TRUE(SwopeFilterMi(*table, 0, 0.1).ok());
  EXPECT_TRUE(SwopeTopKNmi(*table, 0, 1).ok());
  EXPECT_TRUE(SwopeFilterNmi(*table, 0, 0.1).ok());
  EXPECT_TRUE(ExactTopKEntropy(*table, 1).ok());
  EXPECT_TRUE(EntropyRankTopK(*table, 1).ok());
  EXPECT_TRUE(EntropyFilterQuery(*table, 0.5).ok());
  EXPECT_TRUE(MiRankTopK(*table, 0, 1).ok());
  EXPECT_TRUE(MiFilterQuery(*table, 0, 0.1).ok());
  EXPECT_TRUE(SelectFeaturesMrmr(*table, 0).ok());
  EXPECT_GE(ExactEntropy(table->column(0)), 0.0);
}

TEST(UmbrellaHeaderTest, SketchSymbolsVisible) {
  auto sketch = CountMinSketch::Make(0.01, 0.01, /*seed=*/1);
  ASSERT_TRUE(sketch.ok());
  sketch->Add(7);
  EXPECT_GE(sketch->Estimate(7), 1u);

  QueryOptions options;
  options.sketch_epsilon = 0.01;
  EXPECT_TRUE(UsesSketchPath(options.sketch_threshold + 1, options));

  TableSpec spec;
  spec.num_rows = 64;
  spec.seed = 2;
  spec.columns = {ColumnSpec::Uniform("a", 4)};
  auto table = GenerateTable(spec);
  ASSERT_TRUE(table.ok());
  auto sketched = AttachSketches(*table, /*epsilon=*/0.05, /*delta=*/0.05,
                                 /*min_support=*/0, /*seed=*/3);
  ASSERT_TRUE(sketched.ok());
  EXPECT_GT(sketched->SketchMemoryBytes(), 0u);
  auto appended = AppendRowsToTable(*sketched, {{"0"}});
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended->num_rows(), table->num_rows() + 1);
}

TEST(UmbrellaHeaderTest, IoSymbolsVisible) {
  auto preset = ParseDatasetPreset("cdc");
  ASSERT_TRUE(preset.ok());
  EXPECT_EQ(GetPresetInfo(*preset).num_columns, 100u);
  // Status/Result basics.
  Result<int> r(3);
  EXPECT_EQ(r.value_or(0), 3);
  EXPECT_TRUE(Status::OK().ok());
}

}  // namespace
}  // namespace swope
