// Compile-visibility check for the umbrella header: every public entry
// point must be reachable through src/swope.h alone.

#include "src/swope.h"

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(UmbrellaHeaderTest, CoreSymbolsVisible) {
  QueryOptions options;
  EXPECT_TRUE(options.Validate().ok());

  TableSpec spec;
  spec.num_rows = 200;
  spec.seed = 1;
  spec.columns = {ColumnSpec::Uniform("a", 4), ColumnSpec::Zipf("b", 8, 1.0)};
  auto table = GenerateTable(spec);
  ASSERT_TRUE(table.ok());

  EXPECT_TRUE(SwopeTopKEntropy(*table, 1).ok());
  EXPECT_TRUE(SwopeFilterEntropy(*table, 0.5).ok());
  EXPECT_TRUE(SwopeTopKMi(*table, 0, 1).ok());
  EXPECT_TRUE(SwopeFilterMi(*table, 0, 0.1).ok());
  EXPECT_TRUE(SwopeTopKNmi(*table, 0, 1).ok());
  EXPECT_TRUE(SwopeFilterNmi(*table, 0, 0.1).ok());
  EXPECT_TRUE(ExactTopKEntropy(*table, 1).ok());
  EXPECT_TRUE(EntropyRankTopK(*table, 1).ok());
  EXPECT_TRUE(EntropyFilterQuery(*table, 0.5).ok());
  EXPECT_TRUE(MiRankTopK(*table, 0, 1).ok());
  EXPECT_TRUE(MiFilterQuery(*table, 0, 0.1).ok());
  EXPECT_TRUE(SelectFeaturesMrmr(*table, 0).ok());
  EXPECT_GE(ExactEntropy(table->column(0)), 0.0);
}

TEST(UmbrellaHeaderTest, IoSymbolsVisible) {
  auto preset = ParseDatasetPreset("cdc");
  ASSERT_TRUE(preset.ok());
  EXPECT_EQ(GetPresetInfo(*preset).num_columns, 100u);
  // Status/Result basics.
  Result<int> r(3);
  EXPECT_EQ(r.value_or(0), 3);
  EXPECT_TRUE(Status::OK().ok());
}

}  // namespace
}  // namespace swope
