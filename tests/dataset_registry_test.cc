#include "src/engine/dataset_registry.h"

#include <gtest/gtest.h>

#include "src/table/fingerprint.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeEntropyTable;

Table SmallTable(uint64_t seed) {
  return MakeEntropyTable({3.0, 2.0}, 400, seed);
}

TEST(DatasetRegistryTest, PutGetRoundTrip) {
  DatasetRegistry registry;
  const Table table = SmallTable(1);
  const uint64_t fingerprint = TableFingerprint(table);
  ASSERT_TRUE(registry.Put("ds", Table(table)).ok());

  auto handle = registry.Get("ds");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*handle)->name, "ds");
  EXPECT_EQ((*handle)->fingerprint, fingerprint);
  EXPECT_EQ((*handle)->table.num_rows(), table.num_rows());
  EXPECT_EQ((*handle)->memory_bytes, table.MemoryBytes());
}

TEST(DatasetRegistryTest, GetUnknownIsNotFound) {
  DatasetRegistry registry;
  EXPECT_TRUE(registry.Get("nope").status().IsNotFound());
}

TEST(DatasetRegistryTest, RemoveDropsDataset) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Put("ds", SmallTable(1)).ok());
  ASSERT_TRUE(registry.Remove("ds").ok());
  EXPECT_TRUE(registry.Get("ds").status().IsNotFound());
  EXPECT_TRUE(registry.Remove("ds").IsNotFound());
}

TEST(DatasetRegistryTest, PutReplacesInPlace) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Put("ds", SmallTable(1)).ok());
  const Table replacement = SmallTable(2);
  ASSERT_TRUE(registry.Put("ds", Table(replacement)).ok());

  auto handle = registry.Get("ds");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*handle)->fingerprint, TableFingerprint(replacement));
  EXPECT_EQ(registry.GetStats().resident_datasets, 1u);
}

TEST(DatasetRegistryTest, NamesAreSorted) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Put("zeta", SmallTable(1)).ok());
  ASSERT_TRUE(registry.Put("alpha", SmallTable(2)).ok());
  const std::vector<std::string> names = registry.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(DatasetRegistryTest, BudgetEvictsLeastRecentlyUsed) {
  const Table table = SmallTable(1);
  const uint64_t one = table.MemoryBytes();
  // Budget fits two tables but not three.
  DatasetRegistry registry(2 * one + one / 2);
  ASSERT_TRUE(registry.Put("a", SmallTable(1)).ok());
  ASSERT_TRUE(registry.Put("b", SmallTable(2)).ok());
  // Touch "a" so "b" becomes the LRU victim.
  ASSERT_TRUE(registry.Get("a").ok());
  ASSERT_TRUE(registry.Put("c", SmallTable(3)).ok());

  EXPECT_TRUE(registry.Get("a").ok());
  EXPECT_TRUE(registry.Get("b").status().IsNotFound());
  EXPECT_TRUE(registry.Get("c").ok());
  const DatasetRegistry::Stats stats = registry.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.resident_datasets, 2u);
  EXPECT_LE(stats.resident_bytes, stats.memory_budget_bytes);
}

TEST(DatasetRegistryTest, OversizedDatasetIsStillAdmitted) {
  const Table table = SmallTable(1);
  // Budget smaller than a single table: Put must still keep the new
  // dataset (budget is a target, not an admission bound).
  DatasetRegistry registry(table.MemoryBytes() / 2);
  ASSERT_TRUE(registry.Put("big", Table(table)).ok());
  EXPECT_TRUE(registry.Get("big").ok());
  EXPECT_EQ(registry.GetStats().resident_datasets, 1u);
}

TEST(DatasetRegistryTest, HandleSurvivesEviction) {
  const Table table = SmallTable(1);
  DatasetRegistry registry(table.MemoryBytes() + 16);
  ASSERT_TRUE(registry.Put("a", Table(table)).ok());
  auto handle = registry.Get("a");
  ASSERT_TRUE(handle.ok());

  // Inserting "b" evicts "a" from the registry...
  ASSERT_TRUE(registry.Put("b", SmallTable(2)).ok());
  EXPECT_TRUE(registry.Get("a").status().IsNotFound());
  // ...but the held handle still points at intact, immutable data.
  EXPECT_EQ((*handle)->table.num_rows(), table.num_rows());
  EXPECT_EQ((*handle)->fingerprint, TableFingerprint(table));
}

TEST(DatasetRegistryTest, MemoryBytesBeatsUnpackedFootprint) {
  const Table table = SmallTable(1);
  // Bit-packed columns must undercut the old 4-bytes-per-cell layout.
  EXPECT_GT(table.MemoryBytes(), 0u);
  EXPECT_LT(table.MemoryBytes(),
            4 * table.num_rows() * table.num_columns());
}

}  // namespace
}  // namespace swope
