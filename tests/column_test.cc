#include "src/table/column.h"

#include <gtest/gtest.h>

#include "src/table/column_view.h"

namespace swope {
namespace {

TEST(ColumnTest, MakeValidColumn) {
  auto column = Column::Make("age", 3, {0, 1, 2, 1, 0});
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(column->name(), "age");
  EXPECT_EQ(column->support(), 3u);
  EXPECT_EQ(column->size(), 5u);
  EXPECT_FALSE(column->empty());
  EXPECT_EQ(column->code(0), 0u);
  EXPECT_EQ(column->code(4), 0u);
}

TEST(ColumnTest, MakeRejectsCodeOutOfRange) {
  auto column = Column::Make("x", 2, {0, 1, 2});
  EXPECT_FALSE(column.ok());
  EXPECT_TRUE(column.status().IsInvalidArgument());
}

TEST(ColumnTest, MakeRejectsZeroSupportWithCodes) {
  auto column = Column::Make("x", 0, {0});
  EXPECT_FALSE(column.ok());
}

TEST(ColumnTest, MakeAllowsEmptyColumn) {
  auto column = Column::Make("x", 0, {});
  ASSERT_TRUE(column.ok());
  EXPECT_TRUE(column->empty());
  EXPECT_EQ(column->support(), 0u);
}

TEST(ColumnTest, MakeRejectsLabelCountMismatch) {
  auto column = Column::Make("x", 3, {0, 1}, {"a", "b"});
  EXPECT_FALSE(column.ok());
  EXPECT_TRUE(column.status().IsInvalidArgument());
}

TEST(ColumnTest, LabelsRoundTrip) {
  auto column = Column::Make("color", 2, {1, 0}, {"red", "blue"});
  ASSERT_TRUE(column.ok());
  EXPECT_TRUE(column->has_labels());
  EXPECT_EQ(column->LabelOf(0), "red");
  EXPECT_EQ(column->LabelOf(1), "blue");
}

TEST(ColumnTest, LabelOfFallsBackToCode) {
  auto column = Column::Make("x", 3, {0, 1, 2});
  ASSERT_TRUE(column.ok());
  EXPECT_FALSE(column->has_labels());
  EXPECT_EQ(column->LabelOf(2), "2");
}

TEST(ColumnTest, FromCodesInfersSupport) {
  const Column column = Column::FromCodes("x", {4, 0, 2});
  EXPECT_EQ(column.support(), 5u);
  EXPECT_EQ(column.size(), 3u);
}

TEST(ColumnTest, FromCodesEmpty) {
  const Column column = Column::FromCodes("x", {});
  EXPECT_EQ(column.support(), 0u);
  EXPECT_TRUE(column.empty());
}

TEST(ColumnTest, StoresCodesBitPacked) {
  // Support 3 -> 2 bits per value; 100 values fit in 4 payload words
  // (plus one padding word) instead of 400 unpacked bytes.
  std::vector<ValueCode> codes(100);
  for (size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<ValueCode>(i % 3);
  }
  auto column = Column::Make("p", 3, codes);
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(column->sharded().width(), 2u);
  EXPECT_EQ(column->sharded().Flatten().num_data_words(), 4u);
  EXPECT_LT(column->MemoryBytes(), 100 * sizeof(ValueCode));
  EXPECT_EQ(column->codes(), codes);
}

TEST(ColumnTest, ConstantColumnPacksToWidthZero) {
  auto column = Column::Make("c", 1, std::vector<ValueCode>(5000, 0));
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(column->sharded().width(), 0u);
  EXPECT_EQ(column->sharded().Flatten().num_data_words(), 0u);
  EXPECT_EQ(column->code(4999), 0u);
}

TEST(ColumnTest, FromPackedValidatesCodesAgainstSupport) {
  const PackedCodes good = PackedCodes::Pack({4, 1, 3, 0, 0}, 3);
  EXPECT_TRUE(Column::FromPacked("x", 5, good).ok());
  // Width 2 is canonical for support 3, but the payload can still encode
  // the out-of-dictionary value 3; FromPacked must reject it.
  const PackedCodes bad = PackedCodes::Pack({3, 1, 2, 0, 0}, 2);
  EXPECT_FALSE(Column::FromPacked("x", 3, bad).ok());
}

TEST(ColumnTest, FromPackedRejectsNonCanonicalWidth) {
  // Support 5 needs width 3; a payload packed wider must be rejected so
  // a column's resident size is a pure function of its logical content.
  const PackedCodes wide = PackedCodes::Pack({4, 1, 3, 0, 0}, 4);
  auto column = Column::FromPacked("x", 5, wide);
  EXPECT_FALSE(column.ok());
  EXPECT_TRUE(column.status().IsInvalidArgument());
}

TEST(ColumnTest, ViewGatherMatchesPerRowDecode) {
  auto column = Column::Make("v", 6, {5, 0, 3, 2, 1, 4, 5, 5, 0, 2});
  ASSERT_TRUE(column.ok());
  const ColumnView view(*column);
  EXPECT_EQ(view.size(), column->size());
  EXPECT_EQ(view.support(), column->support());
  const std::vector<uint32_t> order = {9, 0, 4, 4, 7, 2};
  std::vector<ValueCode> scratch;
  const ValueCode* gathered = view.Gather(order, 1, 6, scratch);
  for (size_t i = 1; i < 6; ++i) {
    EXPECT_EQ(gathered[i - 1], column->code(order[i])) << "i=" << i;
  }
}

TEST(ColumnTest, MemoryBytesAccountsLabels) {
  auto plain = Column::Make("x", 2, {0, 1, 0, 1});
  auto labeled = Column::Make("x", 2, {0, 1, 0, 1}, {"off", "on"});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(labeled.ok());
  EXPECT_GT(labeled->MemoryBytes(), plain->MemoryBytes());
}

TEST(ColumnTest, ValueCountsSumToSize) {
  auto column = Column::Make("x", 4, {0, 1, 1, 3, 3, 3});
  ASSERT_TRUE(column.ok());
  const auto counts = column->ValueCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 3u);
}

}  // namespace
}  // namespace swope
