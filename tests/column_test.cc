#include "src/table/column.h"

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(ColumnTest, MakeValidColumn) {
  auto column = Column::Make("age", 3, {0, 1, 2, 1, 0});
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(column->name(), "age");
  EXPECT_EQ(column->support(), 3u);
  EXPECT_EQ(column->size(), 5u);
  EXPECT_FALSE(column->empty());
  EXPECT_EQ(column->code(0), 0u);
  EXPECT_EQ(column->code(4), 0u);
}

TEST(ColumnTest, MakeRejectsCodeOutOfRange) {
  auto column = Column::Make("x", 2, {0, 1, 2});
  EXPECT_FALSE(column.ok());
  EXPECT_TRUE(column.status().IsInvalidArgument());
}

TEST(ColumnTest, MakeRejectsZeroSupportWithCodes) {
  auto column = Column::Make("x", 0, {0});
  EXPECT_FALSE(column.ok());
}

TEST(ColumnTest, MakeAllowsEmptyColumn) {
  auto column = Column::Make("x", 0, {});
  ASSERT_TRUE(column.ok());
  EXPECT_TRUE(column->empty());
  EXPECT_EQ(column->support(), 0u);
}

TEST(ColumnTest, MakeRejectsLabelCountMismatch) {
  auto column = Column::Make("x", 3, {0, 1}, {"a", "b"});
  EXPECT_FALSE(column.ok());
  EXPECT_TRUE(column.status().IsInvalidArgument());
}

TEST(ColumnTest, LabelsRoundTrip) {
  auto column = Column::Make("color", 2, {1, 0}, {"red", "blue"});
  ASSERT_TRUE(column.ok());
  EXPECT_TRUE(column->has_labels());
  EXPECT_EQ(column->LabelOf(0), "red");
  EXPECT_EQ(column->LabelOf(1), "blue");
}

TEST(ColumnTest, LabelOfFallsBackToCode) {
  auto column = Column::Make("x", 3, {0, 1, 2});
  ASSERT_TRUE(column.ok());
  EXPECT_FALSE(column->has_labels());
  EXPECT_EQ(column->LabelOf(2), "2");
}

TEST(ColumnTest, FromCodesInfersSupport) {
  const Column column = Column::FromCodes("x", {4, 0, 2});
  EXPECT_EQ(column.support(), 5u);
  EXPECT_EQ(column.size(), 3u);
}

TEST(ColumnTest, FromCodesEmpty) {
  const Column column = Column::FromCodes("x", {});
  EXPECT_EQ(column.support(), 0u);
  EXPECT_TRUE(column.empty());
}

TEST(ColumnTest, ValueCountsSumToSize) {
  auto column = Column::Make("x", 4, {0, 1, 1, 3, 3, 3});
  ASSERT_TRUE(column.ok());
  const auto counts = column->ValueCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 3u);
}

}  // namespace
}  // namespace swope
