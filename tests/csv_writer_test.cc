#include "src/table/csv_writer.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/table/csv_reader.h"
#include "src/table/table_builder.h"

namespace swope {
namespace {

Table BuildTable(const std::vector<std::string>& names,
                 const std::vector<std::vector<std::string>>& rows) {
  auto builder = TableBuilder::Make(names);
  EXPECT_TRUE(builder.ok());
  for (const auto& row : rows) {
    EXPECT_TRUE(builder->AppendRow(row).ok());
  }
  auto table = std::move(*builder).Finish();
  EXPECT_TRUE(table.ok());
  return std::move(table).value();
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const Table table = BuildTable({"a", "b"}, {{"1", "x"}, {"2", "y"}});
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(table, out).ok());
  EXPECT_EQ(out.str(), "a,b\n1,x\n2,y\n");
}

TEST(CsvWriterTest, OmitsHeaderWhenAsked) {
  const Table table = BuildTable({"a"}, {{"1"}});
  std::ostringstream out;
  CsvWriteOptions options;
  options.write_header = false;
  ASSERT_TRUE(WriteCsv(table, out, options).ok());
  EXPECT_EQ(out.str(), "1\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  const Table table =
      BuildTable({"a"}, {{"has,comma"}, {"has\"quote"}, {"has\nnewline"}});
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(table, out).ok());
  EXPECT_EQ(out.str(),
            "a\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(CsvWriterTest, RoundTripPreservesValues) {
  const Table original = BuildTable(
      {"name", "flag"},
      {{"alice", "y"}, {"bob,jr", "n"}, {"carol \"cc\"", "y"}, {"", "n"}});
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(original, out).ok());

  std::istringstream in(out.str());
  auto parsed = ReadCsv(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), original.num_rows());
  ASSERT_EQ(parsed->num_columns(), original.num_columns());
  for (size_t c = 0; c < original.num_columns(); ++c) {
    for (uint64_t r = 0; r < original.num_rows(); ++r) {
      EXPECT_EQ(parsed->column(c).LabelOf(parsed->column(c).code(r)),
                original.column(c).LabelOf(original.column(c).code(r)))
          << "cell (" << r << "," << c << ")";
    }
  }
}

TEST(CsvWriterTest, UnlabeledColumnsWriteCodes) {
  auto column = Column::Make("x", 3, {2, 0, 1});
  ASSERT_TRUE(column.ok());
  auto table = Table::Make({std::move(column).value()});
  ASSERT_TRUE(table.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(*table, out).ok());
  EXPECT_EQ(out.str(), "x\n2\n0\n1\n");
}

TEST(CsvWriterTest, CustomDelimiter) {
  const Table table = BuildTable({"a", "b"}, {{"1", "2"}});
  std::ostringstream out;
  CsvWriteOptions options;
  options.delimiter = '\t';
  ASSERT_TRUE(WriteCsv(table, out, options).ok());
  EXPECT_EQ(out.str(), "a\tb\n1\t2\n");
}

TEST(CsvWriterTest, InvalidDelimiterRejected) {
  const Table table = BuildTable({"a"}, {{"1"}});
  std::ostringstream out;
  CsvWriteOptions options;
  options.delimiter = '\n';
  EXPECT_TRUE(WriteCsv(table, out, options).IsInvalidArgument());
}

}  // namespace
}  // namespace swope
