// Acceptance stress test for the concurrent query engine: mixed query
// kinds racing over a shared registry under eviction pressure, plus the
// result-cache "zero additional rows" guarantee. Must stay clean under
// TSan (SWOPE_SANITIZE=thread).

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeEntropyTable;
using test::MakeMiTable;

QuerySpec MakeSpec(const std::string& dataset, QueryKind kind,
                   uint64_t seed) {
  QuerySpec spec;
  spec.dataset = dataset;
  spec.kind = kind;
  spec.options.seed = seed;
  if (IsTopKKind(kind)) {
    spec.k = 2;
  } else {
    spec.eta = kind == QueryKind::kNmiFilter ? 0.2 : 0.3;
  }
  if (NeedsTarget(kind)) spec.target = "t";
  return spec;
}

// >= 8 concurrent queries of all six kinds over two shared datasets; all
// must succeed and identical specs must produce identical answers.
TEST(EngineStressTest, ConcurrentMixedQueries) {
  EngineConfig config;
  config.num_threads = 8;
  config.intra_query_threads = 4;  // exercise the parallel update path
  config.max_in_flight = 4;  // admission control active under the load
  QueryEngine engine(config);
  ASSERT_TRUE(
      engine.RegisterDataset("ent", MakeEntropyTable({5.0, 3.0, 1.0}, 2000, 1))
          .ok());
  ASSERT_TRUE(
      engine.RegisterDataset("mi", MakeMiTable({0.2, 0.7, 0.5}, 2000, 2))
          .ok());

  const QueryKind kinds[] = {QueryKind::kEntropyTopK,
                             QueryKind::kEntropyFilter,
                             QueryKind::kMiTopK,
                             QueryKind::kMiFilter,
                             QueryKind::kNmiTopK,
                             QueryKind::kNmiFilter};
  std::vector<QuerySpec> specs;
  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int round = 0; round < 3; ++round) {
    for (QueryKind kind : kinds) {
      const std::string dataset = NeedsTarget(kind) ? "mi" : "ent";
      // Same spec every round: later rounds race against the first
      // execution and may hit the cache mid-flight.
      specs.push_back(MakeSpec(dataset, kind, 7));
      futures.push_back(engine.Submit(specs.back()));
    }
  }

  std::vector<std::string> first_round;
  for (size_t i = 0; i < futures.size(); ++i) {
    auto response = futures[i].get();
    ASSERT_TRUE(response.ok())
        << "query #" << i << ": " << response.status().ToString();
    const std::string key = response->canonical_key;
    if (i < 6) {
      first_round.push_back(key);
    } else {
      // Identical spec => identical canonical key, regardless of which
      // execution (fresh or cached) served it.
      EXPECT_EQ(key, first_round[i % 6]);
    }
  }
  const EngineCounters counters = engine.GetCounters();
  EXPECT_EQ(counters.queries_started, futures.size());
  EXPECT_EQ(counters.queries_ok, futures.size());
  EXPECT_EQ(counters.queries_failed, 0u);
}

// Registration churn under a tight memory budget while queries race:
// eviction must never corrupt an in-flight query or deadlock.
TEST(EngineStressTest, EvictionPressureUnderConcurrentLoad) {
  const Table sample = MakeEntropyTable({4.0, 2.0}, 1000, 0);
  EngineConfig config;
  config.num_threads = 8;
  config.max_in_flight = 8;
  // Roughly two of the four datasets fit: every Put evicts.
  config.memory_budget_bytes = 2 * sample.MemoryBytes() + 1024;
  QueryEngine engine(config);

  const int kDatasets = 4;
  for (int d = 0; d < kDatasets; ++d) {
    ASSERT_TRUE(engine
                    .RegisterDataset("ds" + std::to_string(d),
                                     MakeEntropyTable({4.0, 2.0}, 1000,
                                                      static_cast<uint64_t>(d)))
                    .ok());
  }

  std::atomic<uint64_t> ok_queries{0};
  std::atomic<uint64_t> not_found{0};
  std::vector<std::thread> workers;
  // 4 query threads x 8 queries, racing with a re-registration thread.
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&engine, &ok_queries, &not_found, w] {
      for (int i = 0; i < 8; ++i) {
        const std::string dataset =
            "ds" + std::to_string((w + i) % kDatasets);
        const QueryKind kind = (i % 2 == 0) ? QueryKind::kEntropyTopK
                                            : QueryKind::kEntropyFilter;
        auto response = engine.Run(
            MakeSpec(dataset, kind, static_cast<uint64_t>(w * 100 + i)));
        if (response.ok()) {
          ++ok_queries;
        } else {
          // Eviction can only manifest as NotFound, never as a torn read.
          ASSERT_TRUE(response.status().IsNotFound())
              << response.status().ToString();
          ++not_found;
        }
      }
    });
  }
  workers.emplace_back([&engine] {
    for (int i = 0; i < 12; ++i) {
      const std::string dataset = "ds" + std::to_string(i % kDatasets);
      ASSERT_TRUE(engine
                      .RegisterDataset(
                          dataset, MakeEntropyTable({4.0, 2.0}, 1000,
                                                    static_cast<uint64_t>(
                                                        i % kDatasets)))
                      .ok());
    }
  });
  for (std::thread& worker : workers) worker.join();

  const EngineCounters counters = engine.GetCounters();
  EXPECT_GT(counters.registry_evictions, 0u);
  EXPECT_GT(ok_queries.load(), 0u);
  EXPECT_EQ(counters.queries_ok, ok_queries.load());
  EXPECT_EQ(counters.queries_failed, not_found.load());
  // The budget holds after the dust settles.
  const DatasetRegistry::Stats registry = engine.registry().GetStats();
  EXPECT_LE(registry.resident_bytes, registry.memory_budget_bytes);
}

// Acceptance: a repeated query is served from the ResultCache with zero
// additional sampled rows, asserted via engine counters.
TEST(EngineStressTest, RepeatedQueryCostsZeroAdditionalRows) {
  EngineConfig config;
  config.num_threads = 4;
  QueryEngine engine(config);
  ASSERT_TRUE(
      engine.RegisterDataset("mi", MakeMiTable({0.3, 0.8}, 2500, 5)).ok());

  const QuerySpec spec = MakeSpec("mi", QueryKind::kMiTopK, 21);
  auto first = engine.Run(spec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_FALSE(first->cache_hit);
  const uint64_t rows_after_first = engine.GetCounters().rows_sampled;
  ASSERT_GT(rows_after_first, 0u);

  // Hammer the same spec from many threads: every run must be a cache
  // hit and the sampled-row counter must not move at all.
  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(engine.Submit(spec));
  for (auto& future : futures) {
    auto response = future.get();
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->cache_hit);
  }
  const EngineCounters counters = engine.GetCounters();
  EXPECT_EQ(counters.rows_sampled, rows_after_first);
  EXPECT_GE(counters.result_cache_hits, 16u);
}

// Deterministic cache accounting: one miss for the first execution, one
// hit per repeat, mirrored identically in the Prometheus exposition.
TEST(EngineStressTest, CacheCountersAreExact) {
  EngineConfig config;
  config.num_threads = 2;
  QueryEngine engine(config);
  ASSERT_TRUE(
      engine.RegisterDataset("ent", MakeEntropyTable({4.0, 1.5}, 1500, 3))
          .ok());

  const QuerySpec spec = MakeSpec("ent", QueryKind::kEntropyTopK, 11);
  ASSERT_TRUE(engine.Run(spec).ok());
  EngineCounters counters = engine.GetCounters();
  EXPECT_EQ(counters.result_cache_hits, 0u);
  EXPECT_EQ(counters.result_cache_misses, 1u);
  // The first execution also populates the permutation cache.
  EXPECT_EQ(counters.permutation_cache_misses, 1u);
  EXPECT_EQ(counters.permutation_cache_hits, 0u);

  constexpr uint64_t kRepeats = 5;
  for (uint64_t i = 0; i < kRepeats; ++i) {
    auto response = engine.Run(spec);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->cache_hit);
  }
  counters = engine.GetCounters();
  EXPECT_EQ(counters.result_cache_hits, kRepeats);
  EXPECT_EQ(counters.result_cache_misses, 1u);

  // The MetricsRegistry mirror agrees with the mutex-guarded tallies.
  const std::string text = engine.metrics().RenderPrometheusText();
  EXPECT_NE(text.find("swope_cache_hits_total{cache=\"result\"} " +
                      std::to_string(kRepeats)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("swope_cache_misses_total{cache=\"result\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("swope_cache_misses_total{cache=\"permutation\"} 1"),
            std::string::npos);
}

// With a single execution slot and a burst of slow distinct queries,
// some of them must observably wait in admission control.
TEST(EngineStressTest, AdmissionWaitsAreCounted) {
  // Near-tied column entropies are unseparable by sampling, so every
  // query scans to M = N -- slow enough that the burst overlaps the one
  // execution slot. Retried a few times to absorb scheduler wake
  // latency on loaded CI machines.
  const Table table = MakeEntropyTable(
      {3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0}, 20000, 6);
  constexpr int kBurst = 8;
  for (int attempt = 0; attempt < 5; ++attempt) {
    EngineConfig config;
    config.num_threads = 8;
    config.max_in_flight = 1;
    config.result_cache_capacity = 0;  // force every query to execute
    QueryEngine engine(config);
    ASSERT_TRUE(engine.RegisterDataset("ent", table).ok());

    std::vector<std::future<Result<QueryResponse>>> futures;
    for (uint64_t seed = 0; seed < kBurst; ++seed) {
      futures.push_back(
          engine.Submit(MakeSpec("ent", QueryKind::kEntropyTopK, seed)));
    }
    for (auto& future : futures) {
      auto response = future.get();
      ASSERT_TRUE(response.ok()) << response.status().ToString();
    }

    const EngineCounters counters = engine.GetCounters();
    ASSERT_EQ(counters.queries_ok, futures.size());
    if (counters.admission_waits == 0 && attempt < 4) continue;
    // kBurst executing queries through 1 slot: waits are expected.
    EXPECT_GT(counters.admission_waits, 0u);

    // Once quiesced, the latency histogram has observed every query and
    // the in-flight gauge is back to zero.
    const std::string text = engine.metrics().RenderPrometheusText();
    EXPECT_NE(text.find(
                  "swope_engine_query_latency_ms_count{kind=\"entropy-topk\"}"
                  " " +
                  std::to_string(futures.size())),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("swope_engine_in_flight 0"), std::string::npos)
        << text;
    EXPECT_NE(text.find("swope_engine_admission_waits_total"),
              std::string::npos);
    break;
  }
}

// Load shedding: with one execution slot and a bounded admission queue,
// a burst of slow distinct queries must shed its overflow as
// Unavailable, mirrored exactly in swope_engine_rejected_total.
TEST(EngineStressTest, AdmissionOverflowIsRejectedAndCounted) {
  // Same near-tied table as above: every query scans to M = N, so the
  // burst reliably overlaps the single execution slot.
  const Table table = MakeEntropyTable(
      {3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0}, 20000, 6);
  constexpr int kBurst = 8;
  for (int attempt = 0; attempt < 5; ++attempt) {
    EngineConfig config;
    config.num_threads = 8;
    config.max_in_flight = 1;
    config.max_admission_waiters = 1;  // slot + 1 waiter; the rest shed
    config.result_cache_capacity = 0;  // force every query to execute
    QueryEngine engine(config);
    ASSERT_TRUE(engine.RegisterDataset("ent", table).ok());

    std::vector<std::future<Result<QueryResponse>>> futures;
    for (uint64_t seed = 0; seed < kBurst; ++seed) {
      futures.push_back(
          engine.Submit(MakeSpec("ent", QueryKind::kEntropyTopK, seed)));
    }
    uint64_t ok = 0;
    uint64_t unavailable = 0;
    for (auto& future : futures) {
      auto response = future.get();
      if (response.ok()) {
        ++ok;
      } else {
        // Shedding is the only legal failure here, and it must be the
        // retryable kind.
        ASSERT_TRUE(response.status().IsUnavailable())
            << response.status().ToString();
        ++unavailable;
      }
    }
    const EngineCounters counters = engine.GetCounters();
    ASSERT_GT(ok, 0u);
    ASSERT_EQ(counters.rejected, unavailable);
    if (unavailable == 0 && attempt < 4) continue;  // burst didn't overlap
    EXPECT_GT(counters.rejected, 0u);

    // The Prometheus mirror reports the same tally, and the admission
    // queue is empty once the dust settles.
    const std::string text = engine.metrics().RenderPrometheusText();
    EXPECT_NE(text.find("swope_engine_rejected_total " +
                        std::to_string(unavailable)),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("swope_engine_admission_waiting 0"),
              std::string::npos)
        << text;
    break;
  }
}

// Cancellation from another thread lands as Status::Cancelled without
// disturbing concurrent queries.
TEST(EngineStressTest, CancellationRacesAreClean) {
  EngineConfig config;
  config.num_threads = 4;
  config.intra_query_threads = 4;  // cancellation mid-parallel-round
  config.result_cache_capacity = 0;  // force real executions
  QueryEngine engine(config);
  ASSERT_TRUE(
      engine.RegisterDataset("ent", MakeEntropyTable({5.0, 4.0}, 4000, 8))
          .ok());

  for (int attempt = 0; attempt < 8; ++attempt) {
    CancellationToken token;
    auto doomed = engine.Submit(
        MakeSpec("ent", QueryKind::kEntropyTopK,
                 static_cast<uint64_t>(attempt)),
        &token);
    auto healthy = engine.Submit(
        MakeSpec("ent", QueryKind::kEntropyFilter,
                 static_cast<uint64_t>(attempt)));
    token.Cancel();
    auto doomed_result = doomed.get();
    if (!doomed_result.ok()) {
      EXPECT_TRUE(doomed_result.status().IsCancelled())
          << doomed_result.status().ToString();
    }
    auto healthy_result = healthy.get();
    ASSERT_TRUE(healthy_result.ok()) << healthy_result.status().ToString();
  }
}

}  // namespace
}  // namespace swope
