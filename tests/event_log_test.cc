// Unit tests for the bounded lock-free event ring: append/snapshot round
// trips, wrap-around semantics, payload truncation, and torn-read
// protection under concurrent writers and readers.

#include "src/obs/event_log.h"

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(EventLogTest, KindNamesAreStable) {
  EXPECT_STREQ(EventKindName(EventKind::kQueryAdmit), "query-admit");
  EXPECT_STREQ(EventKindName(EventKind::kQueryReject), "query-reject");
  EXPECT_STREQ(EventKindName(EventKind::kQueryComplete), "query-complete");
  EXPECT_STREQ(EventKindName(EventKind::kQueryCancelled),
               "query-cancelled");
  EXPECT_STREQ(EventKindName(EventKind::kQueryDeadline), "query-deadline");
  EXPECT_STREQ(EventKindName(EventKind::kSlowQuery), "slow-query");
  EXPECT_STREQ(EventKindName(EventKind::kIngest), "ingest");
  EXPECT_STREQ(EventKindName(EventKind::kDatasetLoad), "dataset-load");
  EXPECT_STREQ(EventKindName(EventKind::kDatasetEvict), "dataset-evict");
}

TEST(EventLogTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventLog(0).capacity(), 8u);
  EXPECT_EQ(EventLog(5).capacity(), 8u);
  EXPECT_EQ(EventLog(8).capacity(), 8u);
  EXPECT_EQ(EventLog(9).capacity(), 16u);
  EXPECT_EQ(EventLog().capacity(), EventLog::kDefaultCapacity);
}

TEST(EventLogTest, AppendSnapshotRoundTrip) {
  EventLog log(16);
  log.Append(EventKind::kDatasetLoad, "cdc", "rows=100 shards=4");
  log.Append(EventKind::kQueryComplete, "cdc", "entropy-topk rounds=3",
             1.25);
  EXPECT_EQ(log.TotalAppended(), 2u);

  const std::vector<EventLog::Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].sequence, 0u);
  EXPECT_EQ(events[0].kind, EventKind::kDatasetLoad);
  EXPECT_EQ(events[0].dataset, "cdc");
  EXPECT_EQ(events[0].detail, "rows=100 shards=4");
  EXPECT_DOUBLE_EQ(events[0].wall_ms, 0.0);
  EXPECT_EQ(events[1].sequence, 1u);
  EXPECT_EQ(events[1].kind, EventKind::kQueryComplete);
  EXPECT_DOUBLE_EQ(events[1].wall_ms, 1.25);
}

TEST(EventLogTest, TruncatesOversizedPayloads) {
  EventLog log(8);
  const std::string long_dataset(1000, 'd');
  const std::string long_detail(5000, 'x');
  log.Append(EventKind::kIngest, long_dataset, long_detail);
  const std::vector<EventLog::Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].dataset,
            std::string(EventLog::kDatasetBytes - 1, 'd'));
  EXPECT_EQ(events[0].detail, std::string(EventLog::kDetailBytes - 1, 'x'));
}

TEST(EventLogTest, WrapKeepsTheMostRecentEvents) {
  EventLog log(8);
  for (int i = 0; i < 20; ++i) {
    log.Append(EventKind::kIngest, "ds", "n=" + std::to_string(i));
  }
  EXPECT_EQ(log.TotalAppended(), 20u);
  const std::vector<EventLog::Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].sequence, 12 + i);
    EXPECT_EQ(events[i].detail, "n=" + std::to_string(12 + i));
  }
}

TEST(EventLogTest, SnapshotHonorsMaxEvents) {
  EventLog log(16);
  for (int i = 0; i < 10; ++i) {
    log.Append(EventKind::kIngest, "ds", std::to_string(i));
  }
  const std::vector<EventLog::Event> events = log.Snapshot(3);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].sequence, 7u);
  EXPECT_EQ(events[2].sequence, 9u);
}

TEST(EventLogTest, ConcurrentAppendsAreCountedAndSequenced) {
  EventLog log(64);
  constexpr int kThreads = 8;
  constexpr int kAppends = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      const std::string dataset = "d" + std::to_string(t);
      for (int i = 0; i < kAppends; ++i) {
        log.Append(EventKind::kQueryComplete, dataset, "x");
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(log.TotalAppended(),
            static_cast<uint64_t>(kThreads) * kAppends);

  // After quiescence the ring holds the last `capacity` tickets exactly.
  const std::vector<EventLog::Event> events = log.Snapshot();
  EXPECT_EQ(events.size(), log.capacity());
  std::set<uint64_t> sequences;
  for (const EventLog::Event& event : events) {
    EXPECT_GE(event.sequence,
              static_cast<uint64_t>(kThreads) * kAppends - log.capacity());
    sequences.insert(event.sequence);
  }
  EXPECT_EQ(sequences.size(), events.size());
}

TEST(EventLogTest, SnapshotsNeverObserveTornPayloads) {
  // Writers stamp every byte of the payload with a per-thread character;
  // a torn read (half of one write, half of another) would surface as a
  // mixed payload. Readers snapshot concurrently and validate.
  EventLog log(16);
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&log, &stop, t] {
      const std::string payload(100, static_cast<char>('a' + t));
      while (!stop.load(std::memory_order_relaxed)) {
        log.Append(EventKind::kIngest, payload.substr(0, 20), payload,
                   static_cast<double>(t));
      }
    });
  }
  std::atomic<int> validated{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&log, &stop, &validated] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const EventLog::Event& event : log.Snapshot()) {
          ASSERT_FALSE(event.detail.empty());
          const char stamp = event.detail[0];
          ASSERT_GE(stamp, 'a');
          ASSERT_LT(stamp, 'a' + kWriters);
          ASSERT_EQ(event.detail,
                    std::string(100, stamp));
          ASSERT_EQ(event.dataset, std::string(20, stamp));
          ASSERT_DOUBLE_EQ(event.wall_ms,
                           static_cast<double>(stamp - 'a'));
          validated.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Run until the readers have validated a healthy number of events.
  while (validated.load(std::memory_order_relaxed) < 20000) {
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
  for (std::thread& reader : readers) reader.join();
}

}  // namespace
}  // namespace swope
