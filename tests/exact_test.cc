#include "src/baselines/exact.h"

#include <gtest/gtest.h>

#include "src/core/entropy.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeEntropyTable;
using test::MakeMiTable;

TEST(ExactTest, TopKEntropyOrdersCorrectly) {
  const Table table = MakeEntropyTable({1.0, 4.0, 2.0, 3.0}, 5000, 1);
  auto result = ExactTopKEntropy(table, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 2u);
  EXPECT_EQ(result->items[0].index, 1u);
  EXPECT_EQ(result->items[1].index, 3u);
  EXPECT_GE(result->items[0].estimate, result->items[1].estimate);
}

TEST(ExactTest, TopKEntropyDegenerateIntervals) {
  const Table table = MakeEntropyTable({2.0, 3.0}, 2000, 2);
  auto result = ExactTopKEntropy(table, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->items[0].lower, result->items[0].estimate);
  EXPECT_DOUBLE_EQ(result->items[0].upper, result->items[0].estimate);
}

TEST(ExactTest, TopKEntropyClampsK) {
  const Table table = MakeEntropyTable({1.0, 2.0}, 1000, 3);
  auto result = ExactTopKEntropy(table, 99);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items.size(), 2u);
}

TEST(ExactTest, TopKEntropyRejectsBadArgs) {
  const Table table = MakeEntropyTable({1.0}, 100, 4);
  EXPECT_TRUE(ExactTopKEntropy(table, 0).status().IsInvalidArgument());
  auto empty = Table::Make({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(ExactTopKEntropy(*empty, 1).status().IsInvalidArgument());
}

TEST(ExactTest, FilterEntropyMatchesDefinition) {
  const Table table = MakeEntropyTable({0.5, 2.5, 1.5, 3.5}, 5000, 5);
  const auto scores = ExactEntropies(table);
  auto result = ExactFilterEntropy(table, 1.5);
  ASSERT_TRUE(result.ok());
  for (size_t j = 0; j < scores.size(); ++j) {
    EXPECT_EQ(result->Contains(j), scores[j] >= 1.5) << j;
  }
}

TEST(ExactTest, FilterEntropyStatsShowFullScan) {
  const Table table = MakeEntropyTable({1.0, 2.0}, 3000, 6);
  auto result = ExactFilterEntropy(table, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.final_sample_size, 3000u);
  EXPECT_TRUE(result->stats.exhausted_dataset);
  EXPECT_EQ(result->stats.cells_scanned, 3000u * 2);
}

TEST(ExactTest, TopKMiRanksByTrueMi) {
  const Table table = MakeMiTable({0.2, 0.9, 0.5}, 20000, 7);
  auto result = ExactTopKMi(table, 0, 3);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 3u);
  EXPECT_EQ(result->items[0].index, 2u);  // rho = 0.9
  EXPECT_EQ(result->items[1].index, 3u);  // rho = 0.5
  EXPECT_EQ(result->items[2].index, 1u);  // rho = 0.2
}

TEST(ExactTest, TopKMiExcludesTarget) {
  const Table table = MakeMiTable({0.5, 0.5}, 3000, 8);
  auto result = ExactTopKMi(table, 0, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items.size(), 2u);
  for (const auto& item : result->items) EXPECT_NE(item.index, 0u);
}

TEST(ExactTest, TopKMiRejectsBadTarget) {
  const Table table = MakeMiTable({0.5}, 100, 9);
  EXPECT_FALSE(ExactTopKMi(table, 7, 1).ok());
  EXPECT_TRUE(ExactTopKMi(table, 0, 0).status().IsInvalidArgument());
}

TEST(ExactTest, FilterMiMatchesExactScores) {
  const Table table = MakeMiTable({0.9, 0.1, 0.6}, 20000, 10);
  auto scores = ExactMutualInformations(table, 0);
  ASSERT_TRUE(scores.ok());
  const double eta = 0.3;
  auto result = ExactFilterMi(table, 0, eta);
  ASSERT_TRUE(result.ok());
  for (size_t j = 1; j < table.num_columns(); ++j) {
    EXPECT_EQ(result->Contains(j), (*scores)[j] >= eta) << j;
  }
  EXPECT_FALSE(result->Contains(0));
}

}  // namespace
}  // namespace swope
