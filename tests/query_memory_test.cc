// QueryMemoryPool lease lifecycle: warm reuse, the idle bound, move
// semantics, and leases outliving the pool's external owner.

#include "src/core/query_memory.h"

#include <memory>
#include <memory_resource>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(QueryMemoryTest, AcquireReleaseRoundTripReusesWarmMemory) {
  auto pool = std::make_shared<QueryMemoryPool>(/*max_idle=*/4);
  EXPECT_EQ(pool->IdleCount(), 0u);

  QueryMemory* first = nullptr;
  size_t reserved = 0;
  {
    QueryMemoryLease lease = QueryMemoryPool::Acquire(pool);
    ASSERT_TRUE(lease);
    first = lease.get();
    lease->arena().Allocate(100 * 1024, 8);
    reserved = lease->arena().BytesReserved();
    EXPECT_GT(reserved, 0u);
  }
  // The lease went back warm: same object, arena rewound but blocks kept.
  EXPECT_EQ(pool->IdleCount(), 1u);
  EXPECT_EQ(pool->IdleArenaBytes(), reserved);

  QueryMemoryLease again = QueryMemoryPool::Acquire(pool);
  EXPECT_EQ(again.get(), first);
  EXPECT_EQ(again->arena().BytesUsed(), 0u);
  EXPECT_EQ(again->arena().BytesReserved(), reserved);
  EXPECT_EQ(pool->IdleCount(), 0u);
}

TEST(QueryMemoryTest, IdleListIsBounded) {
  auto pool = std::make_shared<QueryMemoryPool>(/*max_idle=*/2);
  std::vector<QueryMemoryLease> leases;
  for (int i = 0; i < 5; ++i) {
    leases.push_back(QueryMemoryPool::Acquire(pool));
  }
  leases.clear();
  EXPECT_EQ(pool->IdleCount(), 2u);  // surplus three were freed, not kept
}

TEST(QueryMemoryTest, MoveTransfersOwnership) {
  auto pool = std::make_shared<QueryMemoryPool>();
  QueryMemoryLease a = QueryMemoryPool::Acquire(pool);
  QueryMemory* raw = a.get();

  QueryMemoryLease b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): testing moved-from
  ASSERT_TRUE(b);
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(pool->IdleCount(), 0u);

  // Move-assignment over a live lease returns the overwritten one first.
  QueryMemoryLease c = QueryMemoryPool::Acquire(pool);
  QueryMemory* raw_c = c.get();
  EXPECT_NE(raw_c, raw);
  c = std::move(b);
  EXPECT_EQ(c.get(), raw);
  EXPECT_EQ(pool->IdleCount(), 1u);  // raw_c went back
}

TEST(QueryMemoryTest, LeaseKeepsPoolAliveAfterExternalOwnerDrops) {
  QueryMemoryLease survivor;
  {
    auto pool = std::make_shared<QueryMemoryPool>();
    survivor = QueryMemoryPool::Acquire(pool);
    survivor->arena().Allocate(64, 8);
  }
  // The engine-side shared_ptr is gone; the lease co-owns the pool, so
  // using and destroying it is still safe.
  ASSERT_TRUE(survivor);
  std::pmr::vector<int> values(survivor->arena().resource());
  values.assign(100, 7);
  EXPECT_EQ(values[99], 7);
  values = std::pmr::vector<int>(survivor->arena().resource());
  survivor = QueryMemoryLease();  // releases into the dying pool safely
  EXPECT_FALSE(survivor);
}

TEST(QueryMemoryTest, ResetDropsScratchLeaseStateButKeepsBuffers) {
  auto pool = std::make_shared<QueryMemoryPool>();
  QueryMemoryLease lease = QueryMemoryPool::Acquire(pool);
  // Borrow and return a decode buffer; the warm buffer must survive the
  // pool round-trip so the next query's borrow allocates nothing.
  {
    CodeScratchArena::Lease scratch(lease->scratch());
    scratch.buffer().resize(4096);
  }
  QueryMemory* raw = lease.get();
  lease = QueryMemoryLease();
  QueryMemoryLease again = QueryMemoryPool::Acquire(pool);
  ASSERT_EQ(again.get(), raw);
  CodeScratchArena::Lease scratch(again->scratch());
  EXPECT_GE(scratch.buffer().capacity(), 4096u);
}

}  // namespace
}  // namespace swope
