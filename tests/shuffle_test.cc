#include "src/table/shuffle.h"

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(ShuffleTest, ProducesValidPermutation) {
  const auto order = ShuffledRowOrder(500, 1);
  ASSERT_EQ(order.size(), 500u);
  std::vector<bool> seen(500, false);
  for (uint32_t r : order) {
    ASSERT_LT(r, 500u);
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

TEST(ShuffleTest, DeterministicInSeed) {
  EXPECT_EQ(ShuffledRowOrder(100, 7), ShuffledRowOrder(100, 7));
}

TEST(ShuffleTest, DifferentSeedsDiffer) {
  EXPECT_NE(ShuffledRowOrder(100, 7), ShuffledRowOrder(100, 8));
}

TEST(ShuffleTest, PrefixIsUnbiasedish) {
  // Each row should land in the first half about half the time across
  // seeds; a crude unbiasedness check on the prefix-sampling model.
  constexpr uint32_t kRows = 40;
  constexpr int kTrials = 400;
  std::vector<int> in_first_half(kRows, 0);
  for (int seed = 0; seed < kTrials; ++seed) {
    const auto order = ShuffledRowOrder(kRows, seed);
    for (uint32_t i = 0; i < kRows / 2; ++i) ++in_first_half[order[i]];
  }
  for (uint32_t r = 0; r < kRows; ++r) {
    EXPECT_NEAR(in_first_half[r], kTrials / 2, kTrials / 5) << "row " << r;
  }
}

TEST(ShuffleTest, EdgeSizes) {
  EXPECT_TRUE(ShuffledRowOrder(0, 1).empty());
  const auto one = ShuffledRowOrder(1, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

}  // namespace
}  // namespace swope
