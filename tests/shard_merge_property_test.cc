// Property test for the shard reductions behind docs/SHARDING.md:
// counting a sample shard-by-shard into per-shard delta counters and
// reducing -- FrequencyCounter by ascending-shard Merge, PairCounter by
// scatter-and-replay -- must reach exactly the state of whole-slice
// counting. Covers every code width including 0 (support 1), ragged
// last shards, empty shards, and both PairCounter layouts.

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/frequency_counter.h"
#include "src/core/pair_counter.h"
#include "src/core/shard_partition.h"
#include "src/table/packed_codes.h"

namespace swope {
namespace {

// Supports 1, 2, 5, 33, 257 exercise packed widths 0, 1, 3, 6, and 9.
constexpr uint32_t kSupports[] = {1, 2, 5, 33, 257};

std::vector<ValueCode> RandomCodes(std::mt19937_64& rng, uint64_t n,
                                   uint32_t support) {
  std::uniform_int_distribution<uint32_t> dist(0, support - 1);
  std::vector<ValueCode> codes(n);
  for (ValueCode& code : codes) code = dist(rng);
  return codes;
}

// Assigns each sample to one of `num_shards` shards uniformly; with few
// samples and many shards this routinely leaves shards empty, which is
// exactly the case the reductions must tolerate.
std::vector<size_t> RandomShardOf(std::mt19937_64& rng, uint64_t n,
                                  size_t num_shards) {
  std::uniform_int_distribution<size_t> dist(0, num_shards - 1);
  std::vector<size_t> shard_of(n);
  for (size_t& s : shard_of) s = dist(rng);
  return shard_of;
}

void ExpectSameState(const FrequencyCounter& whole,
                     const FrequencyCounter& merged) {
  EXPECT_EQ(whole.sample_count(), merged.sample_count());
  EXPECT_EQ(whole.distinct_seen(), merged.distinct_seen());
  EXPECT_EQ(whole.counts(), merged.counts());
  // Entropy is a pure function of the counts (ascending scan), so equal
  // counts force bitwise-equal entropy.
  EXPECT_EQ(whole.SampleEntropy(), merged.SampleEntropy());
}

// FrequencyCounter: any partition of the sample, counted per shard and
// merged in ascending shard order, equals whole-slice counting exactly
// -- including the bitwise sample entropy.
TEST(ShardMergeProperty, FrequencyCounterMergeEqualsWholeColumn) {
  std::mt19937_64 rng(4201);
  for (uint32_t support : kSupports) {
    for (int trial = 0; trial < 20; ++trial) {
      const uint64_t n = rng() % 2000;  // includes the empty sample
      const size_t num_shards = 1 + rng() % 8;
      SCOPED_TRACE(testing::Message() << "support=" << support << " n=" << n
                                      << " shards=" << num_shards);
      const std::vector<ValueCode> codes = RandomCodes(rng, n, support);
      const std::vector<size_t> shard_of = RandomShardOf(rng, n, num_shards);

      FrequencyCounter whole(support);
      whole.AddCodes(codes.data(), codes.size());

      std::vector<FrequencyCounter> deltas(num_shards,
                                           FrequencyCounter(support));
      for (uint64_t i = 0; i < n; ++i) deltas[shard_of[i]].Add(codes[i]);
      FrequencyCounter merged(support);
      for (size_t s = 0; s < num_shards; ++s) merged.Merge(deltas[s]);

      ExpectSameState(whole, merged);
    }
  }
}

// Reset + reuse across rounds (the driver's delta-counter lifecycle):
// a reset delta behaves like a fresh one.
TEST(ShardMergeProperty, FrequencyCounterResetReuseAcrossRounds) {
  std::mt19937_64 rng(77);
  FrequencyCounter delta(33);
  FrequencyCounter merged(33);
  FrequencyCounter whole(33);
  for (int round = 0; round < 5; ++round) {
    const std::vector<ValueCode> codes = RandomCodes(rng, 500, 33);
    delta.Reset();
    delta.AddCodes(codes.data(), codes.size());
    merged.Merge(delta);
    whole.AddCodes(codes.data(), codes.size());
    ExpectSameState(whole, merged);
  }
}

// PairCounter::Merge reaches exactly the integer state of whole-column
// counting -- pair counts, sample count, distinct pairs -- for every
// layout combination (dense/dense, sparse/sparse, sparse merged into
// dense, and migrate-during-merge). The running x*log2(x) sum is only
// guaranteed to a tolerance, which is why the query path replays
// instead (next test).
TEST(ShardMergeProperty, PairCounterMergeEqualsWholeColumnIntegerState) {
  struct Geometry {
    uint32_t support_a;
    uint32_t support_b;
    uint64_t dense_limit;
  };
  // 1x1 is the width-0 x width-0 corner; 16x16 is immediately dense;
  // 80x80 starts sparse and may migrate; 300x300 with a tiny limit is
  // pinned sparse forever.
  const Geometry kGeometries[] = {
      {1, 1, 1ULL << 20},
      {3, 7, 1ULL << 20},
      {16, 16, 1ULL << 20},
      {80, 80, 1ULL << 20},
      {300, 300, 16},
  };
  std::mt19937_64 rng(4202);
  for (const Geometry& g : kGeometries) {
    for (int trial = 0; trial < 10; ++trial) {
      const uint64_t n = rng() % 3000;
      const size_t num_shards = 1 + rng() % 8;
      SCOPED_TRACE(testing::Message()
                   << "support=" << g.support_a << "x" << g.support_b
                   << " n=" << n << " shards=" << num_shards);
      const std::vector<ValueCode> a = RandomCodes(rng, n, g.support_a);
      const std::vector<ValueCode> b = RandomCodes(rng, n, g.support_b);
      const std::vector<size_t> shard_of = RandomShardOf(rng, n, num_shards);

      PairCounter whole(g.support_a, g.support_b, g.dense_limit);
      whole.AddCodes(a.data(), b.data(), n);

      std::vector<PairCounter> deltas;
      for (size_t s = 0; s < num_shards; ++s) {
        deltas.emplace_back(g.support_a, g.support_b, g.dense_limit);
      }
      for (uint64_t i = 0; i < n; ++i) deltas[shard_of[i]].Add(a[i], b[i]);
      PairCounter merged(g.support_a, g.support_b, g.dense_limit);
      for (size_t s = 0; s < num_shards; ++s) merged.Merge(deltas[s]);

      EXPECT_EQ(whole.sample_count(), merged.sample_count());
      EXPECT_EQ(whole.distinct_pairs(), merged.distinct_pairs());
      for (uint32_t ca = 0; ca < g.support_a; ++ca) {
        for (uint32_t cb = 0; cb < g.support_b; ++cb) {
          ASSERT_EQ(whole.count(ca, cb), merged.count(ca, cb))
              << "pair (" << ca << ", " << cb << ")";
        }
      }
      EXPECT_NEAR(whole.SampleJointEntropy(), merged.SampleJointEntropy(),
                  1e-9);
    }
  }
}

// The production MI reduction: shard tasks gather codes alongside their
// slice positions; the reducer scatters them back into slice order and
// replays the serial AddCodes sequence. Because the replayed sequence is
// sample-for-sample identical to the serial one, the whole counter state
// -- including the order-sensitive running x*log2(x) sum -- matches
// bitwise, for any shard size (ragged last shard included).
TEST(ShardMergeProperty, PairCounterScatterReplayIsBitwiseIdentical) {
  std::mt19937_64 rng(4203);
  const uint32_t kRows = 1000;
  for (const uint64_t shard_size : {1000ULL, 250ULL, 143ULL, 7ULL}) {
    const size_t num_shards =
        static_cast<size_t>((kRows + shard_size - 1) / shard_size);
    SCOPED_TRACE(testing::Message()
                 << "shard_size=" << shard_size << " shards=" << num_shards);
    const std::vector<ValueCode> target = RandomCodes(rng, kRows, 16);
    const std::vector<ValueCode> cand = RandomCodes(rng, kRows, 80);

    // A sampled prefix of a random row permutation, as in the driver.
    std::vector<uint32_t> order(kRows);
    for (uint32_t i = 0; i < kRows; ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);
    const uint64_t begin = 100;
    const uint64_t end = 700;

    ShardSlicePartition partition;
    partition.Build(order, begin, end, shard_size, num_shards);

    // Serial reference: gather the slice in order, feed AddCodes once.
    std::vector<ValueCode> target_slice;
    std::vector<ValueCode> cand_slice;
    for (uint64_t i = begin; i < end; ++i) {
      target_slice.push_back(target[order[i]]);
      cand_slice.push_back(cand[order[i]]);
    }
    PairCounter serial(16, 80);
    serial.AddCodes(target_slice.data(), cand_slice.data(),
                    cand_slice.size());

    // Shard tasks gather; the reducer scatters into slice order by
    // slice_pos and replays.
    std::vector<ValueCode> replay(partition.slice_size());
    for (size_t s = 0; s < partition.num_shards(); ++s) {
      const std::vector<uint32_t>& rows = partition.local_rows(s);
      const std::vector<uint32_t>& pos = partition.slice_pos(s);
      for (size_t i = 0; i < rows.size(); ++i) {
        const uint64_t global_row = s * shard_size + rows[i];
        replay[pos[i]] = cand[global_row];
      }
    }
    PairCounter replayed(16, 80);
    replayed.AddCodes(target_slice.data(), replay.data(), replay.size());

    EXPECT_EQ(serial.sample_count(), replayed.sample_count());
    EXPECT_EQ(serial.distinct_pairs(), replayed.distinct_pairs());
    // Bitwise: the replay is the identical call sequence.
    EXPECT_EQ(serial.SampleJointEntropy(), replayed.SampleJointEntropy());
  }
}

// Merging an empty counter is a no-op, and merging into an empty counter
// copies the source's integer state exactly.
TEST(ShardMergeProperty, EmptyShardsAreNeutral) {
  std::mt19937_64 rng(4204);
  const std::vector<ValueCode> codes = RandomCodes(rng, 300, 5);

  FrequencyCounter whole(5);
  whole.AddCodes(codes.data(), codes.size());
  FrequencyCounter merged(5);
  FrequencyCounter empty(5);
  merged.Merge(empty);
  merged.Merge(whole);
  merged.Merge(empty);
  ExpectSameState(whole, merged);

  PairCounter pair_whole(5, 5);
  pair_whole.AddCodes(codes.data(), codes.data(), codes.size());
  PairCounter pair_merged(5, 5);
  PairCounter pair_empty(5, 5);
  pair_merged.Merge(pair_empty);
  pair_merged.Merge(pair_whole);
  pair_merged.Merge(pair_empty);
  EXPECT_EQ(pair_whole.sample_count(), pair_merged.sample_count());
  EXPECT_EQ(pair_whole.distinct_pairs(), pair_merged.distinct_pairs());
  for (uint32_t ca = 0; ca < 5; ++ca) {
    for (uint32_t cb = 0; cb < 5; ++cb) {
      EXPECT_EQ(pair_whole.count(ca, cb), pair_merged.count(ca, cb));
    }
  }
}

}  // namespace
}  // namespace swope
