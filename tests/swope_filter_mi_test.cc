#include "src/core/swope_filter_mi.h"

#include <gtest/gtest.h>

#include "src/core/entropy.h"
#include "src/eval/accuracy.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::AllIndicesExcept;
using test::MakeMiTable;

TEST(SwopeFilterMiTest, RejectsBadArguments) {
  const Table table = MakeMiTable({0.5}, 1000, 1);
  EXPECT_TRUE(SwopeFilterMi(table, 0, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(SwopeFilterMi(table, 9, 0.1).status().IsInvalidArgument());
  auto one_column = Table::Make({Column::FromCodes("only", {0, 1})});
  ASSERT_TRUE(one_column.ok());
  EXPECT_TRUE(SwopeFilterMi(*one_column, 0, 0.1).status().IsInvalidArgument());
}

TEST(SwopeFilterMiTest, SeparatesStrongAndWeakCorrelates) {
  const Table table = MakeMiTable({0.9, 0.85, 0.0, 0.05}, 50000, 2);
  auto exact = ExactMutualInformations(table, 0);
  ASSERT_TRUE(exact.ok());
  QueryOptions options;
  options.epsilon = 0.5;  // paper default for MI filtering
  // Threshold chosen between the strong (rho ~ 0.9) and weak (~0) groups.
  auto result = SwopeFilterMi(table, 0, 0.5, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->Contains(1));
  EXPECT_TRUE(result->Contains(2));
  EXPECT_FALSE(result->Contains(3));
  EXPECT_FALSE(result->Contains(4));
}

TEST(SwopeFilterMiTest, SatisfiesDefinitionSix) {
  const Table table =
      MakeMiTable({0.95, 0.6, 0.35, 0.15, 0.0}, 50000, 3);
  auto exact = ExactMutualInformations(table, 0);
  ASSERT_TRUE(exact.ok());
  QueryOptions options;
  options.epsilon = 0.5;
  for (double eta : {0.1, 0.3, 0.5}) {
    auto result = SwopeFilterMi(table, 0, eta, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(SatisfiesApproxFilter(
        *result, *exact, AllIndicesExcept(table.num_columns(), 0), eta,
        options.epsilon))
        << "eta=" << eta;
  }
}

TEST(SwopeFilterMiTest, HighThresholdReturnsNothing) {
  const Table table = MakeMiTable({0.3, 0.2}, 20000, 4);
  auto result = SwopeFilterMi(table, 0, 10.0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->items.empty());
}

TEST(SwopeFilterMiTest, TargetNeverInAnswer) {
  const Table table = MakeMiTable({0.9, 0.9, 0.9}, 10000, 5);
  auto result = SwopeFilterMi(table, 0, 0.01);
  ASSERT_TRUE(result.ok());
  for (const auto& item : result->items) EXPECT_NE(item.index, 0u);
}

TEST(SwopeFilterMiTest, ItemsAscendingByIndex) {
  const Table table = MakeMiTable({0.9, 0.8, 0.95, 0.85}, 20000, 6);
  auto result = SwopeFilterMi(table, 0, 0.1);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->items.size(); ++i) {
    EXPECT_LT(result->items[i - 1].index, result->items[i].index);
  }
}

TEST(SwopeFilterMiTest, DeterministicInSeed) {
  const Table table = MakeMiTable({0.5, 0.3, 0.7}, 20000, 7);
  QueryOptions options;
  options.seed = 21;
  auto a = SwopeFilterMi(table, 0, 0.3, options);
  auto b = SwopeFilterMi(table, 0, 0.3, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->items.size(), b->items.size());
  for (size_t i = 0; i < a->items.size(); ++i) {
    EXPECT_EQ(a->items[i].index, b->items[i].index);
  }
}

TEST(SwopeFilterMiTest, TinyTableClassifiesExactly) {
  const Table table = MakeMiTable({0.9, 0.0}, 90, 8);
  auto exact = ExactMutualInformations(table, 0);
  ASSERT_TRUE(exact.ok());
  const double eta = 0.2;
  auto result = SwopeFilterMi(table, 0, eta);
  ASSERT_TRUE(result.ok());
  for (size_t j = 1; j < table.num_columns(); ++j) {
    EXPECT_EQ(result->Contains(j), (*exact)[j] >= eta) << j;
  }
}

TEST(SwopeFilterMiTest, AllCandidatesResolved) {
  const Table table = MakeMiTable({0.8, 0.4, 0.1}, 30000, 9);
  auto result = SwopeFilterMi(table, 0, 0.25);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.candidates_remaining, 0u);
}

}  // namespace
}  // namespace swope
