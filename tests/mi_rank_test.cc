#include "src/baselines/mi_rank.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/core/entropy.h"
#include "src/core/swope_topk_mi.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::MakeMiTable;

std::set<size_t> IndicesOf(const TopKResult& result) {
  std::set<size_t> indices;
  for (const auto& item : result.items) indices.insert(item.index);
  return indices;
}

std::set<size_t> ExactTopKMiSet(const Table& table, size_t target, size_t k) {
  auto scores = ExactMutualInformations(table, target);
  EXPECT_TRUE(scores.ok());
  std::vector<size_t> order;
  for (size_t j = 0; j < table.num_columns(); ++j) {
    if (j != target) order.push_back(j);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*scores)[a] > (*scores)[b];
  });
  return {order.begin(), order.begin() + std::min(k, order.size())};
}

TEST(MiRankTest, ReturnsExactTopKSet) {
  const Table table = MakeMiTable({0.9, 0.5, 0.1, 0.7, 0.0}, 30000, 1);
  for (size_t k : {1, 2, 3}) {
    auto result = MiRankTopK(table, 0, k);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(IndicesOf(*result), ExactTopKMiSet(table, 0, k)) << "k=" << k;
  }
}

TEST(MiRankTest, RejectsBadArguments) {
  const Table table = MakeMiTable({0.5}, 100, 2);
  EXPECT_TRUE(MiRankTopK(table, 9, 1).status().IsInvalidArgument());
  EXPECT_TRUE(MiRankTopK(table, 0, 0).status().IsInvalidArgument());
}

TEST(MiRankTest, KCoveringAllCandidatesStopsImmediately) {
  const Table table = MakeMiTable({0.2, 0.8}, 50000, 3);
  auto result = MiRankTopK(table, 0, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items.size(), 2u);
  EXPECT_EQ(result->stats.iterations, 1u);
}

TEST(MiRankTest, CloseScoresCostMoreThanSwope) {
  const Table table =
      MakeMiTable({0.80, 0.78, 0.76, 0.1, 0.05}, 100000, 4);
  QueryOptions options;
  options.epsilon = 0.5;
  auto swope = SwopeTopKMi(table, 0, 2, options);
  auto rank = MiRankTopK(table, 0, 2, options);
  ASSERT_TRUE(swope.ok());
  ASSERT_TRUE(rank.ok());
  EXPECT_LE(swope->stats.final_sample_size, rank->stats.final_sample_size);
}

TEST(MiRankTest, DeterministicInSeed) {
  const Table table = MakeMiTable({0.3, 0.6}, 20000, 5);
  QueryOptions options;
  options.seed = 9;
  auto a = MiRankTopK(table, 0, 1, options);
  auto b = MiRankTopK(table, 0, 1, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->items[0].index, b->items[0].index);
  EXPECT_EQ(a->stats.final_sample_size, b->stats.final_sample_size);
}

}  // namespace
}  // namespace swope
