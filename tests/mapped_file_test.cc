// MappedFile: alignment, the zero-filled tail contract the borrowed-word
// decode kernels rely on, empty files, error paths, and double-close.

#include "src/fs/mapped_file.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace swope {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(MappedFileTest, MapsRegularFilePageAligned) {
  const std::string path = TempPath("mapped_file_basic.bin");
  std::string payload(10000, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 31);
  }
  WriteFile(path, payload);

  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const size_t page = MappedFile::PageSize();
  EXPECT_GT(page, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>((*mapped)->data()) % page, 0u);
  ASSERT_EQ((*mapped)->size(), payload.size());
  EXPECT_EQ((*mapped)->path(), path);
  // ReadableBytes rounds up to a whole page...
  EXPECT_EQ((*mapped)->ReadableBytes(),
            (payload.size() + page - 1) / page * page);
  // ...the file bytes read back exactly...
  for (size_t i = 0; i < payload.size(); i += 997) {
    ASSERT_EQ(static_cast<char>((*mapped)->data()[i]), payload[i]);
  }
  // ...and the tail of the final page is dereferenceable zeros (what
  // lets borrowed-word decode kernels over-read unconditionally).
  for (size_t i = payload.size(); i < (*mapped)->ReadableBytes(); ++i) {
    ASSERT_EQ((*mapped)->data()[i], 0u);
  }
  std::remove(path.c_str());
}

TEST(MappedFileTest, EmptyFileMapsAsNull) {
  const std::string path = TempPath("mapped_file_empty.bin");
  WriteFile(path, "");
  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ((*mapped)->data(), nullptr);
  EXPECT_EQ((*mapped)->size(), 0u);
  EXPECT_EQ((*mapped)->ReadableBytes(), 0u);
  std::remove(path.c_str());
}

TEST(MappedFileTest, MissingFileIsIOError) {
  auto mapped = MappedFile::Open(TempPath("no_such_mapped_file.bin"));
  ASSERT_FALSE(mapped.ok());
  EXPECT_TRUE(mapped.status().IsIOError());
}

TEST(MappedFileTest, DirectoryIsIOError) {
  auto mapped = MappedFile::Open(::testing::TempDir());
  ASSERT_FALSE(mapped.ok());
  EXPECT_TRUE(mapped.status().IsIOError());
}

TEST(MappedFileTest, CloseIsIdempotent) {
  const std::string path = TempPath("mapped_file_close.bin");
  WriteFile(path, std::string(100, 'x'));
  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok());
  (*mapped)->Close();
  EXPECT_EQ((*mapped)->data(), nullptr);
  EXPECT_EQ((*mapped)->size(), 0u);
  EXPECT_EQ((*mapped)->ReadableBytes(), 0u);
  (*mapped)->Close();  // second close must be a no-op, not a double unmap
  EXPECT_EQ((*mapped)->data(), nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swope
