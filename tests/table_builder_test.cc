#include "src/table/table_builder.h"

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(TableBuilderTest, BuildsDictionaryInFirstSeenOrder) {
  auto builder = TableBuilder::Make({"color", "size"});
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE(builder->AppendRow({"red", "S"}).ok());
  ASSERT_TRUE(builder->AppendRow({"blue", "M"}).ok());
  ASSERT_TRUE(builder->AppendRow({"red", "L"}).ok());

  auto table = std::move(*builder).Finish();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 3u);
  EXPECT_EQ(table->num_columns(), 2u);

  const Column& color = table->column(0);
  EXPECT_EQ(color.support(), 2u);
  EXPECT_EQ(color.code(0), 0u);  // red first seen -> 0
  EXPECT_EQ(color.code(1), 1u);  // blue -> 1
  EXPECT_EQ(color.code(2), 0u);  // red again
  EXPECT_EQ(color.LabelOf(0), "red");
  EXPECT_EQ(color.LabelOf(1), "blue");

  const Column& size = table->column(1);
  EXPECT_EQ(size.support(), 3u);
}

TEST(TableBuilderTest, RejectsDuplicateColumnNames) {
  EXPECT_FALSE(TableBuilder::Make({"a", "a"}).ok());
}

TEST(TableBuilderTest, RejectsEmptyColumnName) {
  EXPECT_FALSE(TableBuilder::Make({"a", ""}).ok());
}

TEST(TableBuilderTest, RejectsWrongArity) {
  auto builder = TableBuilder::Make({"a", "b"});
  ASSERT_TRUE(builder.ok());
  EXPECT_TRUE(builder->AppendRow({"1"}).IsInvalidArgument());
  EXPECT_TRUE(builder->AppendRow({"1", "2", "3"}).IsInvalidArgument());
  EXPECT_EQ(builder->num_rows(), 0u);
}

TEST(TableBuilderTest, EmptyStringIsAValue) {
  auto builder = TableBuilder::Make({"a"});
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE(builder->AppendRow({""}).ok());
  ASSERT_TRUE(builder->AppendRow({"x"}).ok());
  ASSERT_TRUE(builder->AppendRow({""}).ok());
  auto table = std::move(*builder).Finish();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->column(0).support(), 2u);
  EXPECT_EQ(table->column(0).code(0), table->column(0).code(2));
}

TEST(TableBuilderTest, FinishOnEmptyBuilderGivesEmptyColumns) {
  auto builder = TableBuilder::Make({"a", "b"});
  ASSERT_TRUE(builder.ok());
  auto table = std::move(*builder).Finish();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 0u);
  EXPECT_EQ(table->num_columns(), 2u);
  EXPECT_EQ(table->column(0).support(), 0u);
}

TEST(TableBuilderTest, StringViewPathMatchesStringPath) {
  auto builder = TableBuilder::Make({"a"});
  ASSERT_TRUE(builder.ok());
  const std::string value = "hello";
  std::vector<std::string_view> views = {value};
  ASSERT_TRUE(builder->AppendRowViews(views).ok());
  ASSERT_TRUE(builder->AppendRow(std::vector<std::string>{"hello"}).ok());
  auto table = std::move(*builder).Finish();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->column(0).support(), 1u);
}

TEST(TableBuilderTest, ManyDistinctValues) {
  auto builder = TableBuilder::Make({"id_like"});
  ASSERT_TRUE(builder.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(builder->AppendRow({std::to_string(i)}).ok());
  }
  auto table = std::move(*builder).Finish();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->column(0).support(), 500u);
  EXPECT_EQ(table->column(0).LabelOf(499), "499");
}

}  // namespace
}  // namespace swope
