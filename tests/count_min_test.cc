// CountMinSketch unit and property tests: the (epsilon, delta) error
// bound, the never-undercount invariant, merge associativity, shard
// determinism (mirroring parallel_determinism_test for the sketch
// substrate), and FromParts corruption rejection.

#include <cstring>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/sketch/count_min.h"

namespace swope {
namespace {

// A skewed stream: key j appears with probability ~ 1 / (j + 1).
std::vector<uint64_t> ZipfishStream(uint64_t n, uint64_t domain,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    // Inverse-ish transform: squash a uniform draw toward small keys.
    const uint64_t u = rng.UniformU64(domain * domain);
    uint64_t k = 0;
    while ((k + 1) * (k + 1) <= u) ++k;
    keys.push_back(k);
  }
  return keys;
}

bool BitwiseEqual(const CountMinSketch& a, const CountMinSketch& b) {
  return a.SameShape(b) && a.total_count() == b.total_count() &&
         std::memcmp(a.counters(), b.counters(),
                     a.num_counters() * sizeof(uint64_t)) == 0;
}

TEST(CountMinTest, ShapeFromEpsilonDelta) {
  auto sketch = CountMinSketch::Make(0.01, 0.01, 7);
  ASSERT_TRUE(sketch.ok());
  // Smallest power of two >= e / 0.01 = 271.8.
  EXPECT_EQ(sketch->width(), 512u);
  // ceil(ln(100)) = 5.
  EXPECT_EQ(sketch->depth(), 5u);
  EXPECT_LE(sketch->epsilon(), 0.01);
  EXPECT_EQ(sketch->total_count(), 0u);

  EXPECT_FALSE(CountMinSketch::Make(0.0, 0.01, 7).ok());
  EXPECT_FALSE(CountMinSketch::Make(1.0, 0.01, 7).ok());
  EXPECT_FALSE(CountMinSketch::Make(0.01, 0.0, 7).ok());
  EXPECT_FALSE(CountMinSketch::MakeWithShape(1, 12, 7).ok());  // not pow2
  EXPECT_FALSE(CountMinSketch::MakeWithShape(0, 8, 7).ok());
}

TEST(CountMinTest, NeverUndercountsAndMeetsErrorBound) {
  const uint64_t kN = 30000;
  const std::vector<uint64_t> keys = ZipfishStream(kN, 2000, 11);
  std::map<uint64_t, uint64_t> truth;
  for (uint64_t k : keys) ++truth[k];

  auto sketch = CountMinSketch::Make(0.01, 0.01, 42);
  ASSERT_TRUE(sketch.ok());
  for (uint64_t k : keys) sketch->Add(k);
  EXPECT_EQ(sketch->total_count(), kN);

  const double bound = sketch->epsilon() * static_cast<double>(kN);
  uint64_t violations = 0;
  for (const auto& [key, count] : truth) {
    const uint64_t estimate = sketch->Estimate(key);
    ASSERT_GE(estimate, count) << "undercount of key " << key;
    if (static_cast<double>(estimate - count) > bound) ++violations;
  }
  // Per-key failure probability is delta = 0.01; allow 5x slack on the
  // empirical rate so the fixed-seed check is robust.
  EXPECT_LE(violations, truth.size() / 20);

  // Unseen keys may collide but never report more than the stream.
  EXPECT_LE(sketch->Estimate(999999999ull), kN);
}

TEST(CountMinTest, EqualStreamsAreBitwiseIdentical) {
  const std::vector<uint64_t> keys = ZipfishStream(5000, 500, 3);
  auto a = CountMinSketch::MakeWithShape(4, 64, 9);
  auto b = CountMinSketch::MakeWithShape(4, 64, 9);
  ASSERT_TRUE(a.ok() && b.ok());
  for (uint64_t k : keys) {
    a->Add(k);
    b->Add(k);
  }
  EXPECT_TRUE(BitwiseEqual(*a, *b));

  // A different seed must not reproduce the counters (the streams would
  // otherwise be distinguishable only by luck).
  auto c = CountMinSketch::MakeWithShape(4, 64, 10);
  ASSERT_TRUE(c.ok());
  for (uint64_t k : keys) c->Add(k);
  EXPECT_FALSE(BitwiseEqual(*a, *c));
}

TEST(CountMinTest, MergeIsAssociativeAndCommutative) {
  const std::vector<uint64_t> keys = ZipfishStream(8000, 800, 17);
  std::vector<CountMinSketch> shards;
  for (int s = 0; s < 3; ++s) {
    auto shard = CountMinSketch::MakeWithShape(3, 128, 5);
    ASSERT_TRUE(shard.ok());
    shards.push_back(std::move(shard).value());
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    shards[i % shards.size()].Add(keys[i]);
  }

  // (A + B) + C.
  CountMinSketch left = shards[0].Clone();
  ASSERT_TRUE(left.Merge(shards[1]).ok());
  ASSERT_TRUE(left.Merge(shards[2]).ok());
  // A + (B + C).
  CountMinSketch tail = shards[1].Clone();
  ASSERT_TRUE(tail.Merge(shards[2]).ok());
  CountMinSketch right = shards[0].Clone();
  ASSERT_TRUE(right.Merge(tail).ok());
  EXPECT_TRUE(BitwiseEqual(left, right));

  // C + B + A.
  CountMinSketch reversed = shards[2].Clone();
  ASSERT_TRUE(reversed.Merge(shards[1]).ok());
  ASSERT_TRUE(reversed.Merge(shards[0]).ok());
  EXPECT_TRUE(BitwiseEqual(left, reversed));

  // Shape or seed mismatches are refused.
  auto other_shape = CountMinSketch::MakeWithShape(3, 256, 5);
  auto other_seed = CountMinSketch::MakeWithShape(3, 128, 6);
  ASSERT_TRUE(other_shape.ok() && other_seed.ok());
  EXPECT_FALSE(left.Merge(*other_shape).ok());
  EXPECT_FALSE(left.Merge(*other_seed).ok());
}

TEST(CountMinTest, ShardedMergeIsDeterministicAndSound) {
  // One serial sketch vs the same stream split over 4 shards and merged:
  // both runs of each plan are bitwise reproducible and both plans'
  // estimates dominate the truth. (Neither plan dominates the other:
  // conservative update is order- and partition-sensitive, so serial and
  // merged counters differ in both directions around the true counts.)
  const std::vector<uint64_t> keys = ZipfishStream(12000, 600, 23);
  std::map<uint64_t, uint64_t> truth;
  for (uint64_t k : keys) ++truth[k];

  auto run_serial = [&keys] {
    auto sketch = CountMinSketch::MakeWithShape(4, 256, 77);
    EXPECT_TRUE(sketch.ok());
    for (uint64_t k : keys) sketch->Add(k);
    return std::move(sketch).value();
  };
  auto run_sharded = [&keys] {
    std::vector<CountMinSketch> shards;
    for (int s = 0; s < 4; ++s) {
      auto shard = CountMinSketch::MakeWithShape(4, 256, 77);
      EXPECT_TRUE(shard.ok());
      shards.push_back(std::move(shard).value());
    }
    for (size_t i = 0; i < keys.size(); ++i) shards[i % 4].Add(keys[i]);
    CountMinSketch merged = shards[0].Clone();
    EXPECT_TRUE(merged.Merge(shards[1]).ok());
    EXPECT_TRUE(merged.Merge(shards[2]).ok());
    EXPECT_TRUE(merged.Merge(shards[3]).ok());
    return merged;
  };

  const CountMinSketch serial = run_serial();
  const CountMinSketch serial_again = run_serial();
  EXPECT_TRUE(BitwiseEqual(serial, serial_again));

  const CountMinSketch merged = run_sharded();
  const CountMinSketch merged_again = run_sharded();
  EXPECT_TRUE(BitwiseEqual(merged, merged_again));

  EXPECT_EQ(merged.total_count(), serial.total_count());
  for (const auto& [key, count] : truth) {
    EXPECT_GE(serial.Estimate(key), count) << "key " << key;
    EXPECT_GE(merged.Estimate(key), count) << "key " << key;
  }
}

TEST(CountMinTest, CloneIsDeepAndBitwiseEqual) {
  const std::vector<uint64_t> keys = ZipfishStream(2000, 100, 31);
  auto sketch = CountMinSketch::MakeWithShape(2, 64, 1);
  ASSERT_TRUE(sketch.ok());
  for (uint64_t k : keys) sketch->Add(k);

  CountMinSketch clone = sketch->Clone();
  EXPECT_TRUE(BitwiseEqual(*sketch, clone));
  clone.Add(12345);
  EXPECT_EQ(clone.total_count(), sketch->total_count() + 1);
  EXPECT_FALSE(BitwiseEqual(*sketch, clone));
}

TEST(CountMinTest, FromPartsRoundTripsAndRejectsCorruption) {
  const std::vector<uint64_t> keys = ZipfishStream(3000, 300, 13);
  auto sketch = CountMinSketch::MakeWithShape(3, 64, 21);
  ASSERT_TRUE(sketch.ok());
  for (uint64_t k : keys) sketch->Add(k);

  std::vector<uint64_t> counters(
      sketch->counters(), sketch->counters() + sketch->num_counters());
  auto rebuilt = CountMinSketch::FromParts(3, 64, 21, sketch->total_count(),
                                           counters);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(BitwiseEqual(*sketch, *rebuilt));

  // Wrong counter count.
  std::vector<uint64_t> short_counters(counters.begin(), counters.end() - 1);
  EXPECT_FALSE(
      CountMinSketch::FromParts(3, 64, 21, sketch->total_count(),
                                short_counters)
          .ok());
  // A row summing past total_count violates the conservative-update
  // invariant and must read as Corruption.
  std::vector<uint64_t> inflated = counters;
  inflated[0] += sketch->total_count() + 1;
  const Status corrupt =
      CountMinSketch::FromParts(3, 64, 21, sketch->total_count(), inflated)
          .status();
  EXPECT_TRUE(corrupt.IsCorruption()) << corrupt.ToString();
  // Bad shapes.
  EXPECT_FALSE(CountMinSketch::FromParts(0, 64, 21, 0, {}).ok());
  EXPECT_FALSE(
      CountMinSketch::FromParts(1, 24, 21, 0, std::vector<uint64_t>(24, 0))
          .ok());
}

}  // namespace
}  // namespace swope
