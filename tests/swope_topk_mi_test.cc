#include "src/core/swope_topk_mi.h"

#include <gtest/gtest.h>

#include "src/core/entropy.h"
#include "src/datagen/correlated.h"
#include "src/eval/accuracy.h"
#include "tests/test_util.h"

namespace swope {
namespace {

using test::AllIndicesExcept;
using test::MakeMiTable;

TEST(SwopeTopKMiTest, RejectsBadArguments) {
  const Table table = MakeMiTable({0.5, 0.2}, 1000, 1);
  EXPECT_TRUE(SwopeTopKMi(table, 9, 1).status().IsInvalidArgument());
  EXPECT_TRUE(SwopeTopKMi(table, 0, 0).status().IsInvalidArgument());
  QueryOptions bad;
  bad.epsilon = 0.0;
  EXPECT_TRUE(SwopeTopKMi(table, 0, 1, bad).status().IsInvalidArgument());

  auto one_column =
      Table::Make({Column::FromCodes("only", {0, 1, 0, 1})});
  ASSERT_TRUE(one_column.ok());
  EXPECT_TRUE(SwopeTopKMi(*one_column, 0, 1).status().IsInvalidArgument());
}

TEST(SwopeTopKMiTest, FindsStrongestCorrelate) {
  // Candidate 2 (index 3 in the table: target is 0) copies the target 90%
  // of the time; the others are nearly independent.
  const Table table = MakeMiTable({0.05, 0.1, 0.9, 0.0}, 40000, 2);
  QueryOptions options;
  options.epsilon = 0.5;  // paper default for MI queries
  auto result = SwopeTopKMi(table, 0, 1, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->items.size(), 1u);
  EXPECT_EQ(result->items[0].index, 3u);  // candidate "c2"
  EXPECT_EQ(result->items[0].name, "c2");
}

TEST(SwopeTopKMiTest, KClampsToCandidateCount) {
  const Table table = MakeMiTable({0.3, 0.6}, 3000, 3);
  auto result = SwopeTopKMi(table, 0, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items.size(), 2u);
}

TEST(SwopeTopKMiTest, TargetNeverReturned) {
  const Table table = MakeMiTable({0.2, 0.4, 0.6}, 10000, 4);
  auto result = SwopeTopKMi(table, 0, 3);
  ASSERT_TRUE(result.ok());
  for (const auto& item : result->items) {
    EXPECT_NE(item.index, 0u);
  }
}

TEST(SwopeTopKMiTest, WorksWithNonZeroTargetIndex) {
  const Table table = MakeMiTable({0.1, 0.8, 0.2}, 30000, 5);
  // Use candidate column 2 ("c1", the strong correlate) as target; the
  // original target column 0 should then be its best partner.
  auto result = SwopeTopKMi(table, 2, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 1u);
  EXPECT_EQ(result->items[0].index, 0u);
}

TEST(SwopeTopKMiTest, SortedByUpperBound) {
  const Table table = MakeMiTable({0.1, 0.5, 0.9, 0.3, 0.7}, 30000, 6);
  auto result = SwopeTopKMi(table, 0, 5);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->items.size(); ++i) {
    EXPECT_GE(result->items[i - 1].upper, result->items[i].upper);
  }
}

TEST(SwopeTopKMiTest, DeterministicInSeed) {
  const Table table = MakeMiTable({0.2, 0.6, 0.4}, 20000, 7);
  QueryOptions options;
  options.seed = 11;
  auto a = SwopeTopKMi(table, 0, 2, options);
  auto b = SwopeTopKMi(table, 0, 2, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->items.size(), b->items.size());
  for (size_t i = 0; i < a->items.size(); ++i) {
    EXPECT_EQ(a->items[i].index, b->items[i].index);
    EXPECT_DOUBLE_EQ(a->items[i].estimate, b->items[i].estimate);
  }
}

TEST(SwopeTopKMiTest, TinyTableMatchesExactRanking) {
  const Table table = MakeMiTable({0.0, 0.9, 0.4}, 80, 8);
  auto result = SwopeTopKMi(table, 0, 1);
  ASSERT_TRUE(result.ok());
  auto exact = ExactMutualInformations(table, 0);
  ASSERT_TRUE(exact.ok());
  size_t best = 1;
  for (size_t j = 2; j < table.num_columns(); ++j) {
    if ((*exact)[j] > (*exact)[best]) best = j;
  }
  EXPECT_EQ(result->items[0].index, best);
}

TEST(SwopeTopKMiTest, StatsCountJointWork) {
  const Table table = MakeMiTable({0.3, 0.7}, 20000, 9);
  auto result = SwopeTopKMi(table, 0, 1);
  ASSERT_TRUE(result.ok());
  // Each sampled row costs 1 (target) + 2 per active candidate.
  EXPECT_GE(result->stats.cells_scanned, result->stats.final_sample_size);
  EXPECT_GT(result->stats.iterations, 0u);
}

TEST(SwopeTopKMiTest, SatisfiesDefinitionFive) {
  const Table table =
      MakeMiTable({0.9, 0.85, 0.5, 0.2, 0.05, 0.0}, 50000, 10);
  auto exact = ExactMutualInformations(table, 0);
  ASSERT_TRUE(exact.ok());
  QueryOptions options;
  options.epsilon = 0.5;
  for (size_t k : {1, 2, 3}) {
    auto result = SwopeTopKMi(table, 0, k, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(SatisfiesApproxTopK(
        result->items, *exact, AllIndicesExcept(table.num_columns(), 0), k,
        options.epsilon))
        << "k=" << k;
  }
}

TEST(SwopeTopKMiTest, TwoColumnTable) {
  // h = 2: exactly one candidate; it is the answer for any k.
  CorrelatedPairSpec spec;
  spec.x_dist = CategoricalDistribution::Uniform(8);
  spec.y_noise = CategoricalDistribution::Uniform(8);
  spec.rho = 0.7;
  auto pair = GenerateCorrelatedPair(spec, 20000, 12);
  ASSERT_TRUE(pair.ok());
  auto table = Table::Make({pair->first, pair->second});
  ASSERT_TRUE(table.ok());
  auto result = SwopeTopKMi(*table, 0, 5);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 1u);
  EXPECT_EQ(result->items[0].index, 1u);
}

TEST(SwopeTopKMiTest, SequentialSamplingSatisfiesDefinition) {
  const Table table = MakeMiTable({0.9, 0.6, 0.2, 0.0}, 40000, 13);
  auto exact = ExactMutualInformations(table, 0);
  ASSERT_TRUE(exact.ok());
  QueryOptions options;
  options.epsilon = 0.5;
  options.sequential_sampling = true;
  auto result = SwopeTopKMi(table, 0, 2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(SatisfiesApproxTopK(result->items, *exact,
                                  AllIndicesExcept(table.num_columns(), 0),
                                  2, options.epsilon));
}

TEST(SwopeTopKMiTest, SparseJointPathWorks) {
  // Force hashing by shrinking the dense limit.
  const Table table = MakeMiTable({0.8, 0.1}, 20000, 11, /*target_support=*/64);
  QueryOptions dense;
  QueryOptions sparse;
  sparse.dense_pair_limit = 1;
  auto dense_result = SwopeTopKMi(table, 0, 1, dense);
  auto sparse_result = SwopeTopKMi(table, 0, 1, sparse);
  ASSERT_TRUE(dense_result.ok());
  ASSERT_TRUE(sparse_result.ok());
  EXPECT_EQ(dense_result->items[0].index, sparse_result->items[0].index);
  EXPECT_DOUBLE_EQ(dense_result->items[0].estimate,
                   sparse_result->items[0].estimate);
}

}  // namespace
}  // namespace swope
