// Unit tests for the observability metric primitives and the registry's
// two renderers (Prometheus text exposition and the JSON snapshot).

#include "src/obs/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace swope {
namespace {

TEST(CounterTest, IncrementsAndSums) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), -3);
}

TEST(HistogramTest, ObservationsLandInInclusiveBuckets) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // <= 1
  histogram.Observe(1.0);    // le is inclusive: still the first bucket
  histogram.Observe(10.0);   // <= 10
  histogram.Observe(99.0);   // <= 100
  histogram.Observe(1e6);    // +Inf

  const Histogram::Snapshot snapshot = histogram.GetSnapshot();
  ASSERT_EQ(snapshot.bounds.size(), 3u);
  // One cumulative cell per finite bound plus the +Inf catch-all.
  ASSERT_EQ(snapshot.cumulative.size(), 4u);
  EXPECT_EQ(snapshot.cumulative[0], 2u);
  EXPECT_EQ(snapshot.cumulative[1], 3u);
  EXPECT_EQ(snapshot.cumulative[2], 4u);
  EXPECT_EQ(snapshot.cumulative[3], 5u);
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.5 + 1.0 + 10.0 + 99.0 + 1e6);
  EXPECT_EQ(histogram.TotalCount(), 5u);
}

TEST(HistogramTest, DefaultLatencyBucketsAreAscending) {
  const std::vector<double>& bounds = DefaultLatencyBucketsMs();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(MetricsRegistryTest, HandlesAreIdempotent) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("swope_test_total", {{"kind", "x"}});
  Counter* b = registry.GetCounter("swope_test_total", {{"kind", "x"}});
  EXPECT_EQ(a, b);
  // A different label set is a different metric.
  Counter* c = registry.GetCounter("swope_test_total", {{"kind", "y"}});
  EXPECT_NE(a, c);
  // Label order does not split a metric: labels are sorted at
  // registration.
  Gauge* g1 = registry.GetGauge("swope_test_gauge",
                                {{"a", "1"}, {"b", "2"}});
  Gauge* g2 = registry.GetGauge("swope_test_gauge",
                                {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(g1, g2);
  Histogram* h1 =
      registry.GetHistogram("swope_test_ms", {}, {1.0, 2.0});
  Histogram* h2 =
      registry.GetHistogram("swope_test_ms", {}, {1.0, 2.0});
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, PrometheusTextHasTypesAndSamples) {
  MetricsRegistry registry;
  registry.GetCounter("swope_requests_total")->Increment(3);
  registry.GetGauge("swope_in_flight")->Set(2);
  Histogram* latency =
      registry.GetHistogram("swope_latency_ms", {{"kind", "topk"}},
                            {1.0, 10.0});
  latency->Observe(0.5);
  latency->Observe(5.0);
  latency->Observe(50.0);

  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE swope_requests_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("swope_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE swope_in_flight gauge"), std::string::npos);
  EXPECT_NE(text.find("swope_in_flight 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE swope_latency_ms histogram"),
            std::string::npos);
  // Cumulative inclusive buckets plus the +Inf catch-all, _sum and
  // _count, all carrying the label.
  EXPECT_NE(text.find("swope_latency_ms_bucket{kind=\"topk\",le=\"1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("swope_latency_ms_bucket{kind=\"topk\",le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(
      text.find("swope_latency_ms_bucket{kind=\"topk\",le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(text.find("swope_latency_ms_sum{kind=\"topk\"} 55.5"),
            std::string::npos);
  EXPECT_NE(text.find("swope_latency_ms_count{kind=\"topk\"} 3"),
            std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusTextIsDeterministicallySorted) {
  MetricsRegistry registry;
  // Register out of order; exposition must sort by family and labels.
  registry.GetCounter("swope_b_total")->Increment();
  registry.GetCounter("swope_a_total")->Increment();
  const std::string text = registry.RenderPrometheusText();
  const size_t a = text.find("swope_a_total");
  const size_t b = text.find("swope_b_total");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_EQ(text, registry.RenderPrometheusText());
}

TEST(MetricsRegistryTest, JsonSnapshotCarriesAllThreeSections) {
  MetricsRegistry registry;
  registry.GetCounter("swope_requests_total")->Increment(5);
  registry.GetGauge("swope_depth")->Set(-4);
  registry.GetHistogram("swope_wait_ms", {}, {1.0})->Observe(0.25);

  const std::string json = registry.RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"swope_requests_total\":5"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"swope_depth\":-4"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos);
}

TEST(MetricsRegistryTest, LabelValuesAreEscapedInExposition) {
  MetricsRegistry registry;
  registry.GetCounter("swope_odd_total", {{"path", "a\"b\\c\nd"}})
      ->Increment();
  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, EmptyRegistryRendersEmpty) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.RenderPrometheusText(), "");
  EXPECT_EQ(registry.RenderJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

}  // namespace
}  // namespace swope
