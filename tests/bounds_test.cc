#include "src/core/bounds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/entropy.h"
#include "src/core/frequency_counter.h"
#include "src/datagen/generator.h"
#include "src/table/column_view.h"
#include "src/table/shuffle.h"

namespace swope {
namespace {

TEST(BoundsTest, SwapSensitivityMatchesFormula) {
  for (uint64_t m : {2ULL, 10ULL, 1000ULL}) {
    const double md = static_cast<double>(m);
    const double expected =
        std::log2(md / (md - 1.0)) + std::log2(md - 1.0) / md;
    EXPECT_NEAR(EntropySwapSensitivity(m), expected, 1e-12);
  }
  EXPECT_TRUE(std::isinf(EntropySwapSensitivity(1)));
  EXPECT_TRUE(std::isinf(EntropySwapSensitivity(0)));
}

TEST(BoundsTest, SwapSensitivityBelowKnownUpperBound) {
  // The paper uses beta < 2*log2(M)/M (for M >= 3).
  for (uint64_t m : {3ULL, 8ULL, 100ULL, 100000ULL}) {
    const double md = static_cast<double>(m);
    EXPECT_LT(EntropySwapSensitivity(m), 2.0 * std::log2(md) / md);
  }
}

TEST(BoundsTest, LambdaZeroWhenSampleIsDataset) {
  EXPECT_EQ(PermutationLambda(1000, 1000, 0.01), 0.0);
  EXPECT_EQ(PermutationLambda(1000, 2000, 0.01), 0.0);
}

TEST(BoundsTest, LambdaInfiniteForDegenerateInputs) {
  EXPECT_TRUE(std::isinf(PermutationLambda(1000, 1, 0.01)));
  EXPECT_TRUE(std::isinf(PermutationLambda(1000, 10, 0.0)));
  EXPECT_TRUE(std::isinf(PermutationLambda(1000, 10, 1.5)));
}

TEST(BoundsTest, LambdaDecreasesWithSampleSize) {
  const uint64_t n = 1u << 20;
  double previous = PermutationLambda(n, 64, 0.01);
  for (uint64_t m = 128; m < n; m *= 2) {
    const double current = PermutationLambda(n, m, 0.01);
    EXPECT_LT(current, previous) << "m " << m;
    previous = current;
  }
}

TEST(BoundsTest, LambdaGrowsAsPShrinks) {
  EXPECT_LT(PermutationLambda(100000, 1000, 0.1),
            PermutationLambda(100000, 1000, 0.001));
}

TEST(BoundsTest, BiasBoundFormulaAndEdges) {
  // u=11, n=101, m=50: b = log2(1 + 10*51/(50*100)).
  EXPECT_NEAR(BiasBound(11, 101, 50), std::log2(1.0 + 510.0 / 5000.0),
              1e-12);
  EXPECT_EQ(BiasBound(100, 1000, 1000), 0.0);
  EXPECT_EQ(BiasBound(100, 1, 1), 0.0);
  EXPECT_TRUE(std::isinf(BiasBound(100, 10, 0)));
}

TEST(BoundsTest, BiasBoundDecreasesWithSampleSize) {
  double previous = BiasBound(50, 100000, 16);
  for (uint64_t m = 32; m < 100000; m *= 2) {
    const double current = BiasBound(50, 100000, m);
    EXPECT_LT(current, previous);
    previous = current;
  }
}

TEST(BoundsTest, BiasBoundGrowsWithSupport) {
  EXPECT_LT(BiasBound(5, 10000, 100), BiasBound(500, 10000, 100));
  EXPECT_EQ(BiasBound(1, 10000, 100), 0.0);  // single value: no bias
}

TEST(BoundsTest, IntervalOrderedAndClamped) {
  const EntropyInterval interval = MakeEntropyInterval(1.5, 8, 100000, 512,
                                                       0.01);
  EXPECT_LE(interval.lower, interval.upper);
  EXPECT_GE(interval.lower, 0.0);
  EXPECT_LE(interval.upper, 3.0);  // log2(8)
  EXPECT_GT(interval.lambda, 0.0);
  EXPECT_GT(interval.bias, 0.0);
  EXPECT_DOUBLE_EQ(interval.sample_entropy, 1.5);
  EXPECT_NEAR(interval.Estimate(), 0.5 * (interval.lower + interval.upper),
              1e-15);
  EXPECT_NEAR(interval.Width(), interval.upper - interval.lower, 1e-15);
}

TEST(BoundsTest, IntervalExactAtFullSample) {
  const EntropyInterval interval = MakeEntropyInterval(2.2, 100, 5000, 5000,
                                                       0.01);
  EXPECT_DOUBLE_EQ(interval.lower, 2.2);
  EXPECT_DOUBLE_EQ(interval.upper, 2.2);
  EXPECT_EQ(interval.lambda, 0.0);
  EXPECT_EQ(interval.bias, 0.0);
}

TEST(BoundsTest, IntervalSupportCapRespectsRowCount) {
  // Joint support bound u1*u2 may exceed n; the cap must use min(u, n).
  const EntropyInterval interval =
      MakeEntropyInterval(3.0, 1ULL << 40, 1024, 512, 0.01);
  EXPECT_LE(interval.upper, 10.0 + 1e-12);  // log2(1024)
}

TEST(BoundsTest, MiIntervalComposition) {
  EntropyInterval t{1.0, 1.4, 0.1, 0.2, 1.1};
  EntropyInterval a{0.8, 1.3, 0.1, 0.3, 0.9};
  EntropyInterval j{1.5, 2.0, 0.1, 0.3, 1.6};
  const MiInterval mi = MakeMiInterval(t, a, j);
  // Raw lower = 1.0 + 0.8 - 2.0 = -0.2, clamped to 0 (MI is non-negative).
  EXPECT_DOUBLE_EQ(mi.lower, 0.0);
  EXPECT_NEAR(mi.upper, 1.4 + 1.3 - 1.5, 1e-12);
  EXPECT_NEAR(mi.slack, 6 * 0.1 + 0.2 + 0.3 + 0.3, 1e-12);
}

TEST(BoundsTest, MiIntervalNeverInverted) {
  EntropyInterval t{0.0, 0.1, 0.05, 0.0, 0.05};
  EntropyInterval a{0.0, 0.1, 0.05, 0.0, 0.05};
  EntropyInterval j{3.0, 3.2, 0.05, 0.1, 3.1};
  const MiInterval mi = MakeMiInterval(t, a, j);
  EXPECT_LE(mi.lower, mi.upper);
  EXPECT_GE(mi.lower, 0.0);
}

TEST(BoundsTest, M0MatchesPaperFormulaShape) {
  const uint64_t n = 1u << 20;
  const uint64_t m0 = ComputeM0(n, 100, 1.0 / n, 1000);
  EXPECT_GE(m0, kMinSampleSize);
  EXPECT_LT(m0, n);
  // Larger u_max -> smaller M0.
  EXPECT_GE(ComputeM0(n, 100, 1.0 / n, 4), m0);
  // Smaller failure probability -> larger M0.
  EXPECT_GE(ComputeM0(n, 100, 1e-12, 1000), m0);
}

TEST(BoundsTest, M0ClampedToN) {
  EXPECT_LE(ComputeM0(100, 100, 1e-9, 2), 100u);
  EXPECT_EQ(ComputeM0(0, 10, 0.01, 10), 0u);
}

TEST(BoundsTest, MaxIterationsSchedule) {
  EXPECT_EQ(MaxIterations(1024, 1024), 1u);
  EXPECT_EQ(MaxIterations(1024, 2048), 1u);
  EXPECT_EQ(MaxIterations(1024, 512), 2u);
  EXPECT_EQ(MaxIterations(1024, 1), 11u);
  EXPECT_EQ(MaxIterations(1000, 0), 1u);
}

TEST(BoundsTest, LambdaNearFullSampleIsTiny) {
  // One record short of the full dataset: the finite-population factor
  // (N - M) collapses the half-width.
  const double lambda = PermutationLambda(100000, 99999, 0.01);
  EXPECT_GT(lambda, 0.0);
  EXPECT_LT(lambda, 0.01);
}

TEST(BoundsTest, IntervalWidthMonotoneInP) {
  // Smaller failure budget -> wider interval, all else equal.
  const EntropyInterval loose = MakeEntropyInterval(3.0, 64, 100000, 2048,
                                                    0.1);
  const EntropyInterval tight = MakeEntropyInterval(3.0, 64, 100000, 2048,
                                                    1e-9);
  EXPECT_LT(loose.Width(), tight.Width());
}

TEST(BoundsTest, JointIntervalCoversTruthEmpirically) {
  // Same coverage property, for the joint entropy with the worst-case
  // support bound u_bar = u1 * u2 that Algorithm 3 uses.
  constexpr uint64_t kRows = 20000;
  constexpr uint64_t kSample = 2048;
  constexpr double kP = 0.1;
  auto a = GenerateColumn(ColumnSpec::Uniform("a", 12), kRows, 31);
  auto b = GenerateColumn(ColumnSpec::Zipf("b", 8, 0.8), kRows, 32);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto truth = ExactJointEntropy(*a, *b);
  ASSERT_TRUE(truth.ok());

  int misses = 0;
  constexpr int kTrials = 100;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto order = ShuffledRowOrder(kRows, 5000 + trial);
    double sum = 0.0;
    std::vector<uint64_t> counts(12 * 8, 0);
    for (uint64_t i = 0; i < kSample; ++i) {
      const uint32_t row = order[i];
      ++counts[a->code(row) * 8 + b->code(row)];
    }
    for (uint64_t c : counts) {
      if (c > 1) {
        sum += static_cast<double>(c) * std::log2(static_cast<double>(c));
      }
    }
    const double sample_entropy =
        std::log2(static_cast<double>(kSample)) - sum / kSample;
    const EntropyInterval interval =
        MakeEntropyInterval(sample_entropy, 12 * 8, kRows, kSample, kP);
    if (*truth < interval.lower - 1e-12 ||
        *truth > interval.upper + 1e-12) {
      ++misses;
    }
  }
  EXPECT_LE(misses, static_cast<int>(kTrials * kP));
}

// Empirical coverage: the Lemma 3 interval must contain the true empirical
// entropy much more often than 1 - p.
TEST(BoundsTest, IntervalCoversTruthEmpirically) {
  constexpr uint64_t kRows = 20000;
  constexpr uint64_t kSample = 1024;
  constexpr double kP = 0.1;
  auto column = GenerateColumn(ColumnSpec::Zipf("z", 32, 1.0), kRows, 21);
  ASSERT_TRUE(column.ok());
  const double truth = ExactEntropy(*column);

  int misses = 0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto order = ShuffledRowOrder(kRows, 1000 + trial);
    FrequencyCounter counter(32);
    std::vector<ValueCode> scratch;
    counter.AddCodes(ColumnView(*column).Gather(order, 0, kSample, scratch),
                     kSample);
    const EntropyInterval interval = MakeEntropyInterval(
        counter.SampleEntropy(), 32, kRows, kSample, kP);
    if (truth < interval.lower - 1e-12 || truth > interval.upper + 1e-12) {
      ++misses;
    }
  }
  // Expected miss rate is well below p = 0.1 (the bound is conservative);
  // allow p itself as the ceiling.
  EXPECT_LE(misses, static_cast<int>(kTrials * kP));
}

}  // namespace
}  // namespace swope
