// Categorical distribution families used to synthesize census-like columns.
//
// Real census/survey attributes (the paper's cdc/hus/pus/enem datasets) mix
// near-uniform demographic codes, heavy-tailed Zipfian categories, highly
// skewed flags, and constant-ish administrative fields. The families here
// span that range, and EntropyTargeted lets a preset dial in an exact
// entropy value, which is what the SWOPE cost model actually responds to.

#ifndef SWOPE_DATAGEN_DISTRIBUTIONS_H_
#define SWOPE_DATAGEN_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"

namespace swope {

/// A categorical distribution over [0, support) with an O(1) sampler
/// (Walker alias method).
class CategoricalDistribution {
 public:
  /// Builds from an unnormalized weight vector; weights must be
  /// non-negative, finite, with a positive sum.
  static Result<CategoricalDistribution> FromWeights(
      std::vector<double> weights);

  /// Uniform over u values.
  static CategoricalDistribution Uniform(uint32_t u);

  /// Zipf with exponent s over u values: p_i proportional to 1/(i+1)^s.
  /// s = 0 degenerates to uniform.
  static CategoricalDistribution Zipf(uint32_t u, double s);

  /// Truncated geometric: p_i proportional to (1-p)^i. Models skewed flags
  /// and count-like codes.
  static CategoricalDistribution Geometric(uint32_t u, double p);

  /// Two-level: one head value holding `head_mass` of the probability, the
  /// rest uniform. Models dominant-default fields ("no", "0", missing).
  static CategoricalDistribution TwoLevel(uint32_t u, double head_mass);

  /// A distribution over u values whose entropy equals `target_entropy`
  /// bits (clamped into [0, log2(u)]). Construction: mixture
  /// w * Uniform(u) + (1-w) * PointMass(0), with w found by bisection --
  /// the mixture entropy is continuous and strictly increasing in w.
  static CategoricalDistribution EntropyTargeted(uint32_t u,
                                                 double target_entropy);

  /// Number of categories.
  uint32_t support() const { return static_cast<uint32_t>(pmf_.size()); }

  /// Normalized probability mass function.
  const std::vector<double>& pmf() const { return pmf_; }

  /// Exact entropy of the distribution in bits.
  double Entropy() const;

  /// Draws one value.
  uint32_t Sample(Rng& rng) const;

  /// Draws n values.
  std::vector<uint32_t> SampleMany(uint64_t n, Rng& rng) const;

 private:
  explicit CategoricalDistribution(std::vector<double> pmf);
  void BuildAliasTable();

  std::vector<double> pmf_;
  // Walker alias tables: sample i uniformly, accept i with prob_[i], else
  // return alias_[i].
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace swope

#endif  // SWOPE_DATAGEN_DISTRIBUTIONS_H_
