#include "src/datagen/dataset_presets.h"

#include <cmath>

#include "src/common/random.h"
#include "src/datagen/distributions.h"

namespace swope {

namespace {

// Number of latent "topic" variables columns cluster around. Census-style
// data groups attributes into themes (household, person, income, region);
// eight latents gives several columns per theme at every preset size.
constexpr int kNumLatents = 8;
constexpr uint32_t kLatentSupport = 64;

// Draws the distribution family mix for one column. The proportions are
// chosen to mimic survey data: mostly small-support coded answers, a
// heavy-tailed minority, a band of dominant-default flags, and a few
// near-constant fields.
CategoricalDistribution DrawBaseDistribution(Rng& rng, uint32_t* support_out) {
  // Support sizes skew small, as in real survey codebooks: most attributes
  // are coded answers with a handful of categories; a minority are
  // heavy-tailed classifications; a few administrative fields have large
  // supports (kept under the paper's 1000 cutoff).
  const double pick = rng.UniformDouble();
  uint32_t u;
  CategoricalDistribution dist = CategoricalDistribution::Uniform(2);
  if (pick < 0.30) {
    // Coded categorical answers: near-uniform, small support.
    u = static_cast<uint32_t>(rng.UniformInt(2, 32));
    dist = CategoricalDistribution::Uniform(u);
  } else if (pick < 0.60) {
    // Heavy-tailed categories (ancestry, occupation, ...).
    u = static_cast<uint32_t>(rng.UniformInt(8, 200));
    const double s = 0.6 + rng.UniformDouble() * 0.9;  // [0.6, 1.5]
    dist = CategoricalDistribution::Zipf(u, s);
  } else if (pick < 0.78) {
    // Count-like skewed codes (number of vehicles, rooms, ...).
    u = static_cast<uint32_t>(rng.UniformInt(2, 60));
    const double p = 0.08 + rng.UniformDouble() * 0.42;  // [0.08, 0.5]
    dist = CategoricalDistribution::Geometric(u, p);
  } else if (pick < 0.93) {
    // Dominant-default flags ("no", 0, not-applicable).
    u = static_cast<uint32_t>(rng.UniformInt(2, 24));
    const double head = 0.70 + rng.UniformDouble() * 0.29;  // [0.70, 0.99]
    dist = CategoricalDistribution::TwoLevel(u, head);
  } else {
    // Near-constant administrative fields: tiny entropy, occasionally a
    // very large code domain.
    u = static_cast<uint32_t>(rng.UniformInt(2, 1000));
    const double h = rng.UniformDouble() * 0.4;  // [0, 0.4] bits
    dist = CategoricalDistribution::EntropyTargeted(u, h);
  }
  *support_out = u;
  return dist;
}

}  // namespace

std::vector<DatasetPreset> AllDatasetPresets() {
  return {DatasetPreset::kCdc, DatasetPreset::kHus, DatasetPreset::kPus,
          DatasetPreset::kEnem};
}

PresetInfo GetPresetInfo(DatasetPreset preset) {
  switch (preset) {
    case DatasetPreset::kCdc:
      return {"cdc", 100, 3753802, 200000};
    case DatasetPreset::kHus:
      return {"hus", 107, 14768919, 200000};
    case DatasetPreset::kPus:
      return {"pus", 179, 31290943, 200000};
    case DatasetPreset::kEnem:
      return {"enem", 117, 33714152, 200000};
  }
  return {"?", 0, 0, 0};
}

Result<DatasetPreset> ParseDatasetPreset(const std::string& name) {
  for (DatasetPreset preset : AllDatasetPresets()) {
    if (GetPresetInfo(preset).name == name) return preset;
  }
  return Status::NotFound("unknown dataset preset '" + name +
                          "' (expected cdc|hus|pus|enem)");
}

Result<Table> MakePresetTable(DatasetPreset preset, uint64_t rows,
                              uint64_t seed) {
  const PresetInfo info = GetPresetInfo(preset);
  if (rows == 0) rows = info.default_rows;

  // Mix the preset identity into the seed so the four presets differ even
  // with the same user seed.
  Rng structure_rng(seed * 1000003ULL + static_cast<uint64_t>(preset) + 17);

  // Latent topic draws, one stream per latent.
  const CategoricalDistribution latent_dist =
      CategoricalDistribution::Zipf(kLatentSupport, 0.8);
  std::vector<std::vector<uint32_t>> latents(kNumLatents);
  for (int l = 0; l < kNumLatents; ++l) {
    Rng latent_rng = structure_rng.Fork();
    latents[l] = latent_dist.SampleMany(rows, latent_rng);
  }

  std::vector<Column> columns;
  columns.reserve(info.num_columns);
  for (size_t j = 0; j < info.num_columns; ++j) {
    uint32_t support = 2;
    const CategoricalDistribution base =
        DrawBaseDistribution(structure_rng, &support);
    // Census attributes cluster tightly around themes (occupation and
    // industry, household size and rooms, ...): most columns lean on a
    // latent topic, a minority are pure noise, and the copy strengths
    // range up to near-deterministic so that the strongest pairs carry
    // multiple bits of mutual information, as on the real datasets.
    const bool correlated = structure_rng.UniformDouble() < 0.6;
    const double rho =
        correlated ? 0.25 + structure_rng.UniformDouble() * 0.7 : 0.0;
    const int latent_index =
        static_cast<int>(structure_rng.UniformU64(kNumLatents));

    Rng column_rng = structure_rng.Fork();
    std::vector<ValueCode> codes(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      if (rho > 0.0 && column_rng.UniformDouble() < rho) {
        codes[r] = latents[latent_index][r] % support;
      } else {
        codes[r] = base.Sample(column_rng);
      }
    }
    auto column = Column::Make(info.name + "_a" + std::to_string(j), support,
                               std::move(codes));
    if (!column.ok()) return column.status();
    columns.push_back(std::move(column).value());
  }
  return Table::Make(std::move(columns));
}

}  // namespace swope
