// Column and table generators for synthetic census-like datasets.

#ifndef SWOPE_DATAGEN_GENERATOR_H_
#define SWOPE_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/datagen/distributions.h"
#include "src/table/table.h"

namespace swope {

/// Distribution family selector for a generated column.
enum class ColumnFamily {
  kUniform,
  kZipf,
  kGeometric,
  kTwoLevel,
  kEntropyTargeted,
};

std::string_view ColumnFamilyToString(ColumnFamily family);

/// Specification of one synthetic column.
struct ColumnSpec {
  std::string name;
  /// Support size u (number of distinct values the generator may emit).
  uint32_t support = 2;
  ColumnFamily family = ColumnFamily::kUniform;
  /// Family parameter: Zipf exponent s, geometric success probability p,
  /// two-level head mass, or the entropy target in bits. Ignored for
  /// kUniform.
  double param = 0.0;

  /// Convenience factories.
  static ColumnSpec Uniform(std::string name, uint32_t support);
  static ColumnSpec Zipf(std::string name, uint32_t support, double s);
  static ColumnSpec Geometric(std::string name, uint32_t support, double p);
  static ColumnSpec TwoLevel(std::string name, uint32_t support,
                             double head_mass);
  static ColumnSpec EntropyTargeted(std::string name, uint32_t support,
                                    double entropy_bits);

  /// Builds the distribution this spec describes.
  Result<CategoricalDistribution> BuildDistribution() const;
};

/// Specification of a whole synthetic table.
struct TableSpec {
  std::string name;
  uint64_t num_rows = 0;
  std::vector<ColumnSpec> columns;
  uint64_t seed = 1;
};

/// Generates one column of `num_rows` i.i.d. draws.
Result<Column> GenerateColumn(const ColumnSpec& spec, uint64_t num_rows,
                              uint64_t seed);

/// Generates a full table; each column gets an independent RNG stream
/// forked deterministically from `spec.seed`.
Result<Table> GenerateTable(const TableSpec& spec);

}  // namespace swope

#endif  // SWOPE_DATAGEN_GENERATOR_H_
