#include "src/datagen/correlated.h"

#include "src/common/math.h"

namespace swope {

Result<std::pair<Column, Column>> GenerateCorrelatedPair(
    const CorrelatedPairSpec& spec, uint64_t num_rows, uint64_t seed) {
  if (spec.rho < 0.0 || spec.rho > 1.0) {
    return Status::InvalidArgument("correlated pair: rho must be in [0, 1]");
  }
  Rng rng(seed);
  const uint32_t u_y = spec.y_noise.support();
  std::vector<ValueCode> x_codes(num_rows);
  std::vector<ValueCode> y_codes(num_rows);
  for (uint64_t r = 0; r < num_rows; ++r) {
    const uint32_t x = spec.x_dist.Sample(rng);
    x_codes[r] = x;
    if (rng.UniformDouble() < spec.rho) {
      y_codes[r] = x % u_y;
    } else {
      y_codes[r] = spec.y_noise.Sample(rng);
    }
  }
  auto x_col = Column::Make(spec.x_name, spec.x_dist.support(),
                            std::move(x_codes));
  if (!x_col.ok()) return x_col.status();
  auto y_col = Column::Make(spec.y_name, u_y, std::move(y_codes));
  if (!y_col.ok()) return y_col.status();
  return std::make_pair(std::move(x_col).value(), std::move(y_col).value());
}

Result<std::vector<Column>> GenerateTargetWithCorrelates(
    const CategoricalDistribution& target_dist, const std::string& target_name,
    const std::vector<CategoricalDistribution>& candidate_noise,
    const std::vector<std::string>& candidate_names,
    const std::vector<double>& rhos, uint64_t num_rows, uint64_t seed) {
  if (candidate_noise.size() != candidate_names.size() ||
      candidate_noise.size() != rhos.size()) {
    return Status::InvalidArgument(
        "correlates: noise, names and rhos must have equal sizes");
  }
  Rng rng(seed);
  std::vector<ValueCode> target_codes = target_dist.SampleMany(num_rows, rng);

  std::vector<Column> columns;
  columns.reserve(candidate_noise.size() + 1);
  for (size_t j = 0; j < candidate_noise.size(); ++j) {
    if (rhos[j] < 0.0 || rhos[j] > 1.0) {
      return Status::InvalidArgument("correlates: rho must be in [0, 1]");
    }
    Rng column_rng = rng.Fork();
    const uint32_t u_y = candidate_noise[j].support();
    std::vector<ValueCode> codes(num_rows);
    for (uint64_t r = 0; r < num_rows; ++r) {
      if (column_rng.UniformDouble() < rhos[j]) {
        codes[r] = target_codes[r] % u_y;
      } else {
        codes[r] = candidate_noise[j].Sample(column_rng);
      }
    }
    auto column = Column::Make(candidate_names[j], u_y, std::move(codes));
    if (!column.ok()) return column.status();
    columns.push_back(std::move(column).value());
  }
  auto target = Column::Make(target_name, target_dist.support(),
                             std::move(target_codes));
  if (!target.ok()) return target.status();
  columns.insert(columns.begin(), std::move(target).value());
  return columns;
}

}  // namespace swope
