#include "src/datagen/generator.h"

namespace swope {

std::string_view ColumnFamilyToString(ColumnFamily family) {
  switch (family) {
    case ColumnFamily::kUniform:
      return "uniform";
    case ColumnFamily::kZipf:
      return "zipf";
    case ColumnFamily::kGeometric:
      return "geometric";
    case ColumnFamily::kTwoLevel:
      return "two_level";
    case ColumnFamily::kEntropyTargeted:
      return "entropy_targeted";
  }
  return "?";
}

ColumnSpec ColumnSpec::Uniform(std::string name, uint32_t support) {
  return {std::move(name), support, ColumnFamily::kUniform, 0.0};
}
ColumnSpec ColumnSpec::Zipf(std::string name, uint32_t support, double s) {
  return {std::move(name), support, ColumnFamily::kZipf, s};
}
ColumnSpec ColumnSpec::Geometric(std::string name, uint32_t support,
                                 double p) {
  return {std::move(name), support, ColumnFamily::kGeometric, p};
}
ColumnSpec ColumnSpec::TwoLevel(std::string name, uint32_t support,
                                double head_mass) {
  return {std::move(name), support, ColumnFamily::kTwoLevel, head_mass};
}
ColumnSpec ColumnSpec::EntropyTargeted(std::string name, uint32_t support,
                                       double entropy_bits) {
  return {std::move(name), support, ColumnFamily::kEntropyTargeted,
          entropy_bits};
}

Result<CategoricalDistribution> ColumnSpec::BuildDistribution() const {
  if (support == 0) {
    return Status::InvalidArgument("column spec '" + name +
                                   "': support must be >= 1");
  }
  switch (family) {
    case ColumnFamily::kUniform:
      return CategoricalDistribution::Uniform(support);
    case ColumnFamily::kZipf:
      return CategoricalDistribution::Zipf(support, param);
    case ColumnFamily::kGeometric:
      return CategoricalDistribution::Geometric(support, param);
    case ColumnFamily::kTwoLevel:
      return CategoricalDistribution::TwoLevel(support, param);
    case ColumnFamily::kEntropyTargeted:
      return CategoricalDistribution::EntropyTargeted(support, param);
  }
  return Status::InvalidArgument("column spec '" + name +
                                 "': unknown family");
}

Result<Column> GenerateColumn(const ColumnSpec& spec, uint64_t num_rows,
                              uint64_t seed) {
  auto dist = spec.BuildDistribution();
  if (!dist.ok()) return dist.status();
  Rng rng(seed);
  std::vector<ValueCode> codes = dist->SampleMany(num_rows, rng);
  return Column::Make(spec.name, spec.support, std::move(codes));
}

Result<Table> GenerateTable(const TableSpec& spec) {
  Rng master(spec.seed);
  std::vector<Column> columns;
  columns.reserve(spec.columns.size());
  for (const ColumnSpec& column_spec : spec.columns) {
    const uint64_t column_seed = master.Next();
    auto column = GenerateColumn(column_spec, spec.num_rows, column_seed);
    if (!column.ok()) return column.status();
    columns.push_back(std::move(column).value());
  }
  return Table::Make(std::move(columns));
}

}  // namespace swope
