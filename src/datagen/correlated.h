// Correlated column-pair generation with a controllable mutual-information
// level, used to synthesize realistic MI query workloads.
//
// Construction (noisy channel): draw X from a base distribution; with
// probability rho set Y = X mod u_y, otherwise draw Y independently from
// its own marginal. rho = 0 gives I(X;Y) = 0; rho = 1 with u_y >= u_x makes
// Y a deterministic function of X so I(X;Y) = H(X). MI is monotone in rho,
// which is all the presets need.

#ifndef SWOPE_DATAGEN_CORRELATED_H_
#define SWOPE_DATAGEN_CORRELATED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/datagen/distributions.h"
#include "src/table/column.h"

namespace swope {

/// Specification of a correlated pair.
struct CorrelatedPairSpec {
  std::string x_name = "x";
  std::string y_name = "y";
  /// Base distribution of X.
  CategoricalDistribution x_dist = CategoricalDistribution::Uniform(2);
  /// Marginal used for Y on the independent branch.
  CategoricalDistribution y_noise = CategoricalDistribution::Uniform(2);
  /// Copy probability in [0, 1].
  double rho = 0.5;
};

/// Generates a correlated (X, Y) column pair of length num_rows.
Result<std::pair<Column, Column>> GenerateCorrelatedPair(
    const CorrelatedPairSpec& spec, uint64_t num_rows, uint64_t seed);

/// Generates `num_columns` columns correlated with a generated target
/// column (first element of the result): column j uses
/// rho = rhos[j]. Used by the MI benches to create candidate sets whose
/// true MI against the target spans a known range.
Result<std::vector<Column>> GenerateTargetWithCorrelates(
    const CategoricalDistribution& target_dist, const std::string& target_name,
    const std::vector<CategoricalDistribution>& candidate_noise,
    const std::vector<std::string>& candidate_names,
    const std::vector<double>& rhos, uint64_t num_rows, uint64_t seed);

}  // namespace swope

#endif  // SWOPE_DATAGEN_CORRELATED_H_
