// Synthetic stand-ins for the paper's four evaluation datasets (Table 2).
//
// The real datasets (cdc-behavioral-risk, census-american-housing,
// census-american-population, enem) are not redistributable here, so each
// preset reproduces the *shape* that drives SWOPE's behaviour:
//   - the same column count as the paper after its support-size <= 1000
//     filter,
//   - census-like support-size and entropy profiles (near-uniform codes,
//     Zipfian categories, dominant-default flags, a few near-constant
//     administrative fields),
//   - correlation structure: columns cluster around latent "topic"
//     variables (household, person, region, ...) so that mutual-information
//     queries see a realistic spread of MI scores instead of all-zeros.
// Row counts are scaled down by default (the paper's 3.7M-33.7M rows are
// reachable by passing `rows` explicitly).

#ifndef SWOPE_DATAGEN_DATASET_PRESETS_H_
#define SWOPE_DATAGEN_DATASET_PRESETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/table/table.h"

namespace swope {

/// The four paper datasets.
enum class DatasetPreset { kCdc, kHus, kPus, kEnem };

/// All presets, in paper order.
std::vector<DatasetPreset> AllDatasetPresets();

/// Static description of a preset.
struct PresetInfo {
  std::string name;         // short name used in the paper's figures
  size_t num_columns;       // paper's column count
  uint64_t paper_rows;      // paper's row count (Table 2)
  uint64_t default_rows;    // scaled default used by tests/benches here
};

PresetInfo GetPresetInfo(DatasetPreset preset);

/// Parses a preset short name ("cdc", "hus", "pus", "enem").
Result<DatasetPreset> ParseDatasetPreset(const std::string& name);

/// Materializes the preset with `rows` rows (0 = the preset's
/// default_rows). Deterministic in (preset, rows, seed).
Result<Table> MakePresetTable(DatasetPreset preset, uint64_t rows = 0,
                              uint64_t seed = 2021);

}  // namespace swope

#endif  // SWOPE_DATAGEN_DATASET_PRESETS_H_
