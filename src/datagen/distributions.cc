#include "src/datagen/distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/math.h"

namespace swope {

CategoricalDistribution::CategoricalDistribution(std::vector<double> pmf)
    : pmf_(std::move(pmf)) {
  BuildAliasTable();
}

Result<CategoricalDistribution> CategoricalDistribution::FromWeights(
    std::vector<double> weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("distribution: empty weight vector");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument(
          "distribution: weights must be finite and non-negative");
    }
    sum += w;
  }
  if (sum <= 0.0) {
    return Status::InvalidArgument("distribution: weight sum must be > 0");
  }
  for (double& w : weights) w /= sum;
  return CategoricalDistribution(std::move(weights));
}

CategoricalDistribution CategoricalDistribution::Uniform(uint32_t u) {
  assert(u > 0);
  return CategoricalDistribution(std::vector<double>(u, 1.0 / u));
}

CategoricalDistribution CategoricalDistribution::Zipf(uint32_t u, double s) {
  assert(u > 0);
  std::vector<double> weights(u);
  double sum = 0.0;
  for (uint32_t i = 0; i < u; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    sum += weights[i];
  }
  for (double& w : weights) w /= sum;
  return CategoricalDistribution(std::move(weights));
}

CategoricalDistribution CategoricalDistribution::Geometric(uint32_t u,
                                                           double p) {
  assert(u > 0);
  p = Clamp(p, 1e-9, 1.0 - 1e-9);
  std::vector<double> weights(u);
  double sum = 0.0;
  double w = 1.0;
  for (uint32_t i = 0; i < u; ++i) {
    weights[i] = w;
    sum += w;
    w *= (1.0 - p);
  }
  for (double& weight : weights) weight /= sum;
  return CategoricalDistribution(std::move(weights));
}

CategoricalDistribution CategoricalDistribution::TwoLevel(uint32_t u,
                                                          double head_mass) {
  assert(u > 0);
  head_mass = Clamp(head_mass, 0.0, 1.0);
  if (u == 1) return Uniform(1);
  std::vector<double> weights(u, (1.0 - head_mass) / (u - 1));
  weights[0] = head_mass;
  return CategoricalDistribution(std::move(weights));
}

CategoricalDistribution CategoricalDistribution::EntropyTargeted(
    uint32_t u, double target_entropy) {
  assert(u > 0);
  const double max_entropy = std::log2(static_cast<double>(u));
  target_entropy = Clamp(target_entropy, 0.0, max_entropy);
  if (u == 1 || target_entropy <= 0.0) {
    std::vector<double> point(u, 0.0);
    point[0] = 1.0;
    return CategoricalDistribution(std::move(point));
  }
  if (target_entropy >= max_entropy) return Uniform(u);

  // pmf(w): p_0 = (1-w) + w/u, p_i = w/u for i > 0. Entropy is continuous
  // and strictly increasing in w on [0, 1]; bisect.
  auto entropy_at = [&](double w) {
    const double head = (1.0 - w) + w / u;
    const double tail = w / u;
    return -XLog2X(head) - (u - 1) * XLog2X(tail);
  };
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 200 && hi - lo > 1e-15; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (entropy_at(mid) < target_entropy) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double w = 0.5 * (lo + hi);
  std::vector<double> pmf(u, w / u);
  pmf[0] += 1.0 - w;
  return CategoricalDistribution(std::move(pmf));
}

double CategoricalDistribution::Entropy() const { return EntropyOfPmf(pmf_); }

void CategoricalDistribution::BuildAliasTable() {
  const uint32_t n = support();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  // Vose's stable construction.
  std::vector<double> scaled(n);
  for (uint32_t i = 0; i < n; ++i) scaled[i] = pmf_[i] * n;
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are within floating-point noise of 1.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

uint32_t CategoricalDistribution::Sample(Rng& rng) const {
  const uint32_t i = static_cast<uint32_t>(rng.UniformU64(support()));
  return rng.UniformDouble() < prob_[i] ? i : alias_[i];
}

std::vector<uint32_t> CategoricalDistribution::SampleMany(uint64_t n,
                                                          Rng& rng) const {
  std::vector<uint32_t> out(n);
  for (uint64_t i = 0; i < n; ++i) out[i] = Sample(rng);
  return out;
}

}  // namespace swope
