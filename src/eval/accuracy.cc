#include "src/eval/accuracy.h"

#include <algorithm>

namespace swope {

namespace {

// The exact k-th largest score among the eligible columns (the tie-aware
// acceptance cutoff). Returns 0 when k exceeds the eligible count.
double KthLargestScore(const std::vector<double>& exact_scores,
                       const std::vector<size_t>& eligible, size_t k) {
  std::vector<double> scores;
  scores.reserve(eligible.size());
  for (size_t j : eligible) scores.push_back(exact_scores[j]);
  if (scores.empty() || k == 0) return 0.0;
  k = std::min(k, scores.size());
  std::nth_element(scores.begin(), scores.begin() + (k - 1), scores.end(),
                   std::greater<double>());
  return scores[k - 1];
}

}  // namespace

double TopKAccuracy(std::span<const AttributeScore> returned,
                    const std::vector<double>& exact_scores,
                    const std::vector<size_t>& eligible, size_t k) {
  k = std::min(k, eligible.size());
  if (k == 0) return 1.0;
  const double cutoff = KthLargestScore(exact_scores, eligible, k);
  size_t correct = 0;
  for (const AttributeScore& item : returned) {
    if (exact_scores[item.index] >= cutoff) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(k);
}

double FilterAccuracy(const FilterResult& result,
                      const std::vector<double>& exact_scores,
                      const std::vector<size_t>& eligible, double eta) {
  if (eligible.empty()) return 1.0;
  size_t agree = 0;
  for (size_t j : eligible) {
    const bool truth = exact_scores[j] >= eta;
    if (result.Contains(j) == truth) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(eligible.size());
}

FilterPrf FilterPrecisionRecall(const FilterResult& result,
                                const std::vector<double>& exact_scores,
                                const std::vector<size_t>& eligible,
                                double eta) {
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;
  for (size_t j : eligible) {
    const bool truth = exact_scores[j] >= eta;
    const bool predicted = result.Contains(j);
    if (predicted && truth) ++tp;
    if (predicted && !truth) ++fp;
    if (!predicted && truth) ++fn;
  }
  FilterPrf prf;
  prf.precision = (tp + fp) == 0
                      ? 1.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fp);
  prf.recall = (tp + fn) == 0
                   ? 1.0
                   : static_cast<double>(tp) / static_cast<double>(tp + fn);
  prf.f1 = (prf.precision + prf.recall) == 0.0
               ? 0.0
               : 2.0 * prf.precision * prf.recall /
                     (prf.precision + prf.recall);
  return prf;
}

bool SatisfiesApproxTopK(std::span<const AttributeScore> returned,
                         const std::vector<double>& exact_scores,
                         const std::vector<size_t>& eligible, size_t k,
                         double epsilon, double tolerance) {
  k = std::min(k, eligible.size());
  if (returned.size() < k) return false;

  // Exact scores sorted descending for the i-th largest reference.
  std::vector<double> sorted;
  sorted.reserve(eligible.size());
  for (size_t j : eligible) sorted.push_back(exact_scores[j]);
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());

  for (size_t i = 0; i < k; ++i) {
    const AttributeScore& item = returned[i];
    const double exact = exact_scores[item.index];
    // Condition (i): the reported estimate is close to the item's truth.
    if (item.estimate + tolerance < (1.0 - epsilon) * exact) return false;
    // Condition (ii): the item's truth is close to the i-th largest truth.
    if (exact + tolerance < (1.0 - epsilon) * sorted[i]) return false;
  }
  return true;
}

bool SatisfiesApproxFilter(const FilterResult& result,
                           const std::vector<double>& exact_scores,
                           const std::vector<size_t>& eligible, double eta,
                           double epsilon, double tolerance) {
  for (size_t j : eligible) {
    const double score = exact_scores[j];
    const bool in = result.Contains(j);
    if (score >= (1.0 + epsilon) * eta + tolerance && !in) return false;
    if (score < (1.0 - epsilon) * eta - tolerance && in) return false;
  }
  return true;
}

}  // namespace swope
