// ReportTable: aligned text / markdown / CSV tables for bench output.

#ifndef SWOPE_EVAL_REPORT_H_
#define SWOPE_EVAL_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

namespace swope {

/// A simple row-major string table with a header, rendered as markdown
/// (the bench binaries' primary output) or CSV.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  const std::vector<std::string>& header() const { return header_; }
  size_t num_rows() const { return rows_.size(); }

  /// Appends a row; short rows are padded with empty cells, long rows are
  /// kept (the renderer widens).
  void AddRow(std::vector<std::string> row);

  /// Cell formatting helpers.
  static std::string FormatDouble(double value, int precision = 3);
  static std::string FormatMillis(double seconds);

  /// Renders a GitHub-style markdown table with aligned columns.
  void PrintMarkdown(std::ostream& out) const;

  /// Renders RFC-4180-free simple CSV (cells must not contain commas or
  /// newlines; bench cells never do).
  void PrintCsv(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace swope

#endif  // SWOPE_EVAL_REPORT_H_
