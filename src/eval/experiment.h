// Experiment-runner helpers: timed repetition, simple command-line flag
// parsing shared by the bench binaries, and speedup formatting.

#ifndef SWOPE_EVAL_EXPERIMENT_H_
#define SWOPE_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace swope {

/// Timing of a repeated measurement.
struct Timing {
  double mean_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  int repetitions = 0;
};

/// Runs `fn` `reps` times (at least once) and reports wall-clock stats.
Timing TimeRepeated(int reps, const std::function<void()>& fn);

/// Bench-binary flag parsing. Recognized flags (all optional):
///   --rows=<n>     dataset rows (0 = keep each bench's default)
///   --reps=<n>     repetitions per measurement
///   --targets=<n>  MI target attributes per dataset
///   --seed=<n>     master seed
///   --quick        shrink everything for a smoke run
/// Unknown flags abort with a usage message so typos are loud.
struct BenchConfig {
  uint64_t rows = 0;
  int reps = 1;
  int targets = 3;
  uint64_t seed = 2021;
  bool quick = false;

  /// Parses argv; exits(2) with a message on an unknown flag.
  static BenchConfig FromArgs(int argc, char** argv);

  /// Rows to use for a bench whose default is `default_rows`.
  uint64_t RowsOrDefault(uint64_t default_rows) const;
};

/// "12.3x" style speedup string (a/b); "inf" when b is ~0.
std::string FormatSpeedup(double numerator, double denominator);

}  // namespace swope

#endif  // SWOPE_EVAL_EXPERIMENT_H_
