#include "src/eval/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "src/common/stopwatch.h"

namespace swope {

Timing TimeRepeated(int reps, const std::function<void()>& fn) {
  Timing timing;
  timing.repetitions = std::max(1, reps);
  timing.min_seconds = 1e300;
  double total = 0.0;
  for (int r = 0; r < timing.repetitions; ++r) {
    Stopwatch watch;
    fn();
    const double elapsed = watch.ElapsedSeconds();
    total += elapsed;
    timing.min_seconds = std::min(timing.min_seconds, elapsed);
    timing.max_seconds = std::max(timing.max_seconds, elapsed);
  }
  timing.mean_seconds = total / timing.repetitions;
  return timing;
}

namespace {

bool ParseUint64Flag(std::string_view arg, std::string_view name,
                     uint64_t* out) {
  if (!arg.starts_with(name)) return false;
  arg.remove_prefix(name.size());
  *out = std::strtoull(std::string(arg).c_str(), nullptr, 10);
  return true;
}

}  // namespace

BenchConfig BenchConfig::FromArgs(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    uint64_t value = 0;
    if (arg == "--quick") {
      config.quick = true;
    } else if (ParseUint64Flag(arg, "--rows=", &value)) {
      config.rows = value;
    } else if (ParseUint64Flag(arg, "--reps=", &value)) {
      config.reps = static_cast<int>(value);
    } else if (ParseUint64Flag(arg, "--targets=", &value)) {
      config.targets = static_cast<int>(value);
    } else if (ParseUint64Flag(arg, "--seed=", &value)) {
      config.seed = value;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\nusage: %s [--rows=N] [--reps=N] "
                   "[--targets=N] [--seed=N] [--quick]\n",
                   std::string(arg).c_str(), argv[0]);
      std::exit(2);
    }
  }
  return config;
}

uint64_t BenchConfig::RowsOrDefault(uint64_t default_rows) const {
  if (rows > 0) return rows;
  return quick ? std::max<uint64_t>(1, default_rows / 10) : default_rows;
}

std::string FormatSpeedup(double numerator, double denominator) {
  char buffer[64];
  if (denominator <= 1e-12) return "inf";
  std::snprintf(buffer, sizeof(buffer), "%.1fx", numerator / denominator);
  return buffer;
}

}  // namespace swope
