// Accuracy metrics matching the paper's evaluation (Figures 2, 4, 6, 8
// and the accuracy panels of Figures 9-12), plus stricter checkers for the
// formal Definition 5 / Definition 6 guarantees used by the property
// tests.

#ifndef SWOPE_EVAL_ACCURACY_H_
#define SWOPE_EVAL_ACCURACY_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/core/query_result.h"

namespace swope {

/// Top-k overlap accuracy: the fraction of returned attributes whose exact
/// score is at least the exact k-th largest score (tie-aware, so returning
/// either of two tied attributes counts as correct). This is the metric
/// behind the paper's "100% accuracy" statements.
/// `exact_scores` maps column index -> exact score; `eligible` lists the
/// column indices the query ranged over (all columns for entropy, all but
/// the target for MI).
double TopKAccuracy(std::span<const AttributeScore> returned,
                    const std::vector<double>& exact_scores,
                    const std::vector<size_t>& eligible, size_t k);

/// Filtering accuracy: fraction of eligible attributes classified the same
/// way as the exact answer (returned iff exact score >= eta).
double FilterAccuracy(const FilterResult& result,
                      const std::vector<double>& exact_scores,
                      const std::vector<size_t>& eligible, double eta);

/// Precision / recall / F1 of a filtering answer against the exact
/// threshold answer.
struct FilterPrf {
  double precision = 1.0;
  double recall = 1.0;
  double f1 = 1.0;
};
FilterPrf FilterPrecisionRecall(const FilterResult& result,
                                const std::vector<double>& exact_scores,
                                const std::vector<size_t>& eligible,
                                double eta);

/// Checks the two conditions of Definition 5 (approximate top-k) against
/// exact scores:
///  (i)  estimate(a'_i) >= (1-eps) * exact(a'_i)
///  (ii) exact(a'_i)    >= (1-eps) * exact(a*_i)
/// Returns true when both hold for every i. `tolerance` absorbs float
/// round-off.
bool SatisfiesApproxTopK(std::span<const AttributeScore> returned,
                         const std::vector<double>& exact_scores,
                         const std::vector<size_t>& eligible, size_t k,
                         double epsilon, double tolerance = 1e-9);

/// Checks Definition 6 (approximate filtering) against exact scores:
/// every attribute with score >= (1+eps)*eta is in the answer and no
/// attribute with score < (1-eps)*eta is.
bool SatisfiesApproxFilter(const FilterResult& result,
                           const std::vector<double>& exact_scores,
                           const std::vector<size_t>& eligible, double eta,
                           double epsilon, double tolerance = 1e-9);

}  // namespace swope

#endif  // SWOPE_EVAL_ACCURACY_H_
