// Feature selection on top of the SWOPE machinery: the paper's motivating
// application (Section 1).
//
// Two selectors are provided:
//  * SelectFeaturesByMi -- rank candidates by approximate MI against the
//    target using SWOPE-Top-k (max-relevance selection).
//  * SelectFeaturesMrmr -- greedy mRMR (Peng et al., 2005): repeatedly add
//    the feature maximizing relevance minus mean redundancy,
//      score(f) = I(target, f) - (1/|S|) * sum_{s in S} I(f, s),
//    with all MI values estimated on one fixed sample-without-replacement
//    prefix (so the whole selection costs O(sample * h * m) instead of
//    O(N * h * m)).

#ifndef SWOPE_EVAL_MRMR_H_
#define SWOPE_EVAL_MRMR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/core/query_options.h"
#include "src/table/table.h"

namespace swope {

/// Options for the mRMR selector.
struct MrmrOptions {
  /// Number of features to select (clamped to h - 1).
  size_t num_features = 10;
  /// Sample size used for every MI estimate (clamped to N; 0 = all rows).
  uint64_t sample_size = 100000;
  /// Permutation seed.
  uint64_t seed = 42;
};

/// A selected feature with its bookkeeping scores.
struct SelectedFeature {
  size_t index = 0;        ///< column index
  double relevance = 0.0;  ///< sampled I(target, feature)
  double score = 0.0;      ///< mRMR objective value when it was picked
};

/// Greedy mRMR selection of `options.num_features` features for `target`.
Result<std::vector<SelectedFeature>> SelectFeaturesMrmr(
    const Table& table, size_t target, const MrmrOptions& options = {});

/// Max-relevance selection: the top-k candidates by approximate MI against
/// the target, via SWOPE-Top-k (Algorithm 3). `query_options` controls the
/// approximation.
Result<std::vector<SelectedFeature>> SelectFeaturesByMi(
    const Table& table, size_t target, size_t num_features,
    const QueryOptions& query_options = {});

}  // namespace swope

#endif  // SWOPE_EVAL_MRMR_H_
