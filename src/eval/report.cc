#include "src/eval/report.h"

#include <algorithm>
#include <cstdio>

namespace swope {

void ReportTable::AddRow(std::vector<std::string> row) {
  row.resize(std::max(row.size(), header_.size()));
  rows_.push_back(std::move(row));
}

std::string ReportTable::FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string ReportTable::FormatMillis(double seconds) {
  const double ms = seconds * 1e3;
  char buffer[64];
  if (ms < 10.0) {
    std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  } else if (ms < 1000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f", ms);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f", ms);
  }
  return buffer;
}

void ReportTable::PrintMarkdown(std::ostream& out) const {
  const size_t cols =
      std::max(header_.size(),
               rows_.empty() ? size_t{0}
                             : std::max_element(rows_.begin(), rows_.end(),
                                                [](const auto& a,
                                                   const auto& b) {
                                                  return a.size() < b.size();
                                                })
                                   ->size());
  std::vector<size_t> widths(cols, 1);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  print_row(header_);
  out << "|";
  for (size_t c = 0; c < cols; ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) print_row(row);
}

void ReportTable::PrintCsv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace swope
