#include "src/eval/mrmr.h"

#include <algorithm>

#include "src/core/frequency_counter.h"
#include "src/core/pair_counter.h"
#include "src/core/swope_topk_mi.h"
#include "src/table/column_view.h"
#include "src/table/shuffle.h"

namespace swope {

namespace {

// Sample MI between two columns over the first m rows of `order`,
// gathering both slices in chunks before counting.
double SampledMi(const Column& a, const Column& b,
                 const std::vector<uint32_t>& order, uint64_t m) {
  FrequencyCounter counter_a(a.support());
  FrequencyCounter counter_b(b.support());
  PairCounter joint(a.support(), b.support());
  const ColumnView view_a(a);
  const ColumnView view_b(b);
  std::vector<ValueCode> scratch_a;
  std::vector<ValueCode> scratch_b;
  constexpr uint64_t kChunk = 4096;
  for (uint64_t begin = 0; begin < m; begin += kChunk) {
    const uint64_t end = std::min(m, begin + kChunk);
    const ValueCode* ca = view_a.Gather(order, begin, end, scratch_a);
    const ValueCode* cb = view_b.Gather(order, begin, end, scratch_b);
    const uint64_t count = end - begin;
    counter_a.AddCodes(ca, count);
    counter_b.AddCodes(cb, count);
    joint.AddCodes(ca, cb, count);
  }
  const double mi = counter_a.SampleEntropy() + counter_b.SampleEntropy() -
                    joint.SampleJointEntropy();
  return mi < 0.0 ? 0.0 : mi;
}

}  // namespace

Result<std::vector<SelectedFeature>> SelectFeaturesMrmr(
    const Table& table, size_t target, const MrmrOptions& options) {
  const size_t h = table.num_columns();
  if (target >= h) {
    return Status::InvalidArgument("mrmr: target index out of range");
  }
  if (h < 2) {
    return Status::InvalidArgument("mrmr: need at least two columns");
  }
  if (options.num_features == 0) {
    return Status::InvalidArgument("mrmr: num_features must be >= 1");
  }
  const size_t want = std::min(options.num_features, h - 1);
  const uint64_t n = table.num_rows();
  const uint64_t m = options.sample_size == 0
                         ? n
                         : std::min<uint64_t>(n, options.sample_size);
  if (m == 0) return Status::InvalidArgument("mrmr: table has no rows");

  const std::vector<uint32_t> order =
      ShuffledRowOrder(static_cast<uint32_t>(n), options.seed);
  const Column& target_col = table.column(target);

  // Relevance of every candidate.
  std::vector<size_t> candidates;
  std::vector<double> relevance(h, 0.0);
  for (size_t j = 0; j < h; ++j) {
    if (j == target) continue;
    candidates.push_back(j);
    relevance[j] = SampledMi(target_col, table.column(j), order, m);
  }

  // Greedy selection with memoized pairwise redundancy sums.
  std::vector<SelectedFeature> selected;
  std::vector<double> redundancy_sum(h, 0.0);
  while (selected.size() < want && !candidates.empty()) {
    size_t best = candidates.front();
    double best_score = -1e300;
    for (size_t j : candidates) {
      const double redundancy =
          selected.empty()
              ? 0.0
              : redundancy_sum[j] / static_cast<double>(selected.size());
      const double score = relevance[j] - redundancy;
      if (score > best_score || (score == best_score && j < best)) {
        best_score = score;
        best = j;
      }
    }
    selected.push_back({best, relevance[best], best_score});
    std::erase(candidates, best);
    for (size_t j : candidates) {
      redundancy_sum[j] +=
          SampledMi(table.column(best), table.column(j), order, m);
    }
  }
  return selected;
}

Result<std::vector<SelectedFeature>> SelectFeaturesByMi(
    const Table& table, size_t target, size_t num_features,
    const QueryOptions& query_options) {
  auto topk = SwopeTopKMi(table, target, num_features, query_options);
  if (!topk.ok()) return topk.status();
  std::vector<SelectedFeature> selected;
  selected.reserve(topk->items.size());
  for (const AttributeScore& item : topk->items) {
    selected.push_back({item.index, item.estimate, item.estimate});
  }
  return selected;
}

}  // namespace swope
