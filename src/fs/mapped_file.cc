#include "src/fs/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace swope {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

size_t MappedFile::PageSize() {
  static const size_t page = [] {
    const long value = ::sysconf(_SC_PAGESIZE);
    return value > 0 ? static_cast<size_t>(value) : size_t{4096};
  }();
  return page;
}

Result<std::shared_ptr<MappedFile>> MappedFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(Errno("cannot open", path));
  struct stat info;
  if (::fstat(fd, &info) != 0) {
    const Status status = Status::IOError(Errno("cannot stat", path));
    ::close(fd);
    return status;
  }
  if (!S_ISREG(info.st_mode)) {
    ::close(fd);
    return Status::IOError("cannot map '" + path + "': not a regular file");
  }
  const size_t size = static_cast<size_t>(info.st_size);
  if (size == 0) {
    // mmap rejects zero-length mappings; model an empty file directly.
    ::close(fd);
    return std::make_shared<MappedFile>(Token{}, path, nullptr, 0, 0);
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping pins the file contents; the descriptor is not needed
  // after mmap succeeds (or fails).
  ::close(fd);
  if (mapping == MAP_FAILED) {
    return Status::IOError(Errno("cannot mmap", path));
  }
  const size_t page = PageSize();
  const size_t readable = ((size + page - 1) / page) * page;
  return std::make_shared<MappedFile>(
      Token{}, path, static_cast<const uint8_t*>(mapping), size, readable);
}

void MappedFile::Close() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = nullptr;
  }
  size_ = 0;
  readable_ = 0;
}

MappedFile::~MappedFile() { Close(); }

}  // namespace swope
