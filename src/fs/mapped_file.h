// MappedFile: a read-only, page-aligned view of a whole file, the
// OS-paged backing store for mmap-loaded SWPB tables (docs/STORAGE.md).
//
// Open() mmaps the file PROT_READ/MAP_PRIVATE and owns the mapping for
// the object's lifetime; columns borrow word spans out of the region
// (src/table/packed_codes.h borrowed mode) and keep the file alive
// through a shared_ptr, so "eviction" of a mapped dataset is simply the
// last reference dropping and the region being munmapped. Pages are
// faulted in on demand and reclaimed by the OS under pressure, which is
// what lets the registry host datasets larger than its heap budget.
//
// The mapping covers size() file bytes; the kernel additionally
// zero-fills the tail of the final page, so ReadableBytes() -- size()
// rounded up to the page size -- bytes are dereferenceable. The
// borrowed-words loader leans on that slack for the decode kernels'
// unconditional two-word reads (see BorrowGuardBytes in binary_io.cc).

#ifndef SWOPE_FS_MAPPED_FILE_H_
#define SWOPE_FS_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/result.h"

namespace swope {

/// An immutable, shareable mmap of one file. Thread-safe after Open:
/// all accessors are const reads of fixed state.
class MappedFile {
 private:
  /// Passkey: only Open() can mint one, so the public constructor below
  /// (which std::make_shared needs) is unreachable from outside.
  struct Token {
    explicit Token() = default;
  };

 public:
  /// Maps `path` read-only. An empty file maps successfully with
  /// data() == nullptr and size() == 0. Holders that only read share it
  /// as shared_ptr<const MappedFile>.
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Base of the mapping (page-aligned), or nullptr for an empty file.
  const uint8_t* data() const { return data_; }
  /// Exact file size in bytes at Open time.
  size_t size() const { return size_; }
  /// Dereferenceable bytes: size() rounded up to the page size (the
  /// kernel zero-fills the final partial page).
  size_t ReadableBytes() const { return readable_; }
  /// The path the mapping was opened from (diagnostics).
  const std::string& path() const { return path_; }

  /// Unmaps early. Idempotent; accessors return nullptr/0 afterwards.
  /// Only safe when nothing borrows from the region anymore -- the
  /// table loader never calls this, it exists for tests and tools.
  void Close();

  /// The system page size (cached).
  static size_t PageSize();

  MappedFile(Token, std::string path, const uint8_t* data, size_t size,
             size_t readable)
      : path_(std::move(path)), data_(data), size_(size),
        readable_(readable) {}

 private:
  std::string path_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t readable_ = 0;
};

}  // namespace swope

#endif  // SWOPE_FS_MAPPED_FILE_H_
