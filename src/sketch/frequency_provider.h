// SketchFrequencyProvider: the sketch-backed counterpart of
// FrequencyCounter / PairCounter.
//
// Exposes the same counting surface the exact counters give the scorers
// (Add / AddCodes / AddPairs / sample_count) but holds a CountMinSketch
// instead of one counter per value, so memory is O(depth * width +
// heavy_capacity) no matter how many distinct values the stream carries.
// Entropy cannot be read off a sketch alone (a sketch answers point
// queries, it cannot enumerate values), so the provider additionally
// tracks
//   * a bounded heavy-hitter set (the values carrying most of the mass),
//     admitted and evicted deterministically so equal streams produce
//     equal summaries, and
//   * a linear-counting bitmap estimating the number of distinct values
//     seen.
// Summarize() packages all three for the bias-corrected entropy interval
// in src/core/sketch_estimation.h; docs/SKETCH.md derives the estimator.

#ifndef SWOPE_SKETCH_FREQUENCY_PROVIDER_H_
#define SWOPE_SKETCH_FREQUENCY_PROVIDER_H_

#include <cstdint>
#include <vector>

#include "src/common/flat_hash_map.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/sketch/count_min.h"

namespace swope {

/// One tracked heavy value with its (uncorrected) sketch estimate.
struct SketchHeavyHitter {
  uint64_t key = 0;
  uint64_t estimate = 0;
};

/// A deterministic snapshot of the provider's state, the input to the
/// entropy estimator.
struct SketchSummary {
  /// M: stream length absorbed.
  uint64_t sample_count = 0;
  /// Sketch row width (the bias-correction denominator).
  uint32_t width = 0;
  /// Linear-counting estimate of the number of distinct values seen;
  /// always >= heavy.size().
  uint64_t distinct_estimate = 0;
  /// True when the distinct bitmap filled up and distinct_estimate is
  /// only a lower bound.
  bool distinct_saturated = false;
  /// Tracked heavy values, sorted by descending estimate (ties by
  /// ascending key), refreshed against the sketch at snapshot time.
  std::vector<SketchHeavyHitter> heavy;
};

class SketchFrequencyProvider {
 public:
  struct Params {
    /// Sketch additive-error target: overcounts stay below epsilon * M
    /// with probability 1 - delta. Must be in (0, 1).
    double epsilon = 0.01;
    double delta = 0.01;
    uint64_t seed = 0;
    /// Heavy values tracked (the summary's enumeration budget). Streams
    /// with at most this many distinct values are summarized exactly up
    /// to sketch collision noise.
    uint32_t heavy_capacity = 1024;
  };

  static Result<SketchFrequencyProvider> Make(const Params& params);

  /// M: samples absorbed so far (same contract as
  /// FrequencyCounter::sample_count).
  uint64_t sample_count() const { return sketch_.total_count(); }

  /// Absorbs one sampled value key.
  void Add(uint64_t key);

  /// Absorbs a span of decoded codes (a gathered permutation slice) --
  /// the FrequencyCounter::AddCodes surface.
  void AddCodes(const uint32_t* codes, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) Add(codes[i]);
  }

  /// Absorbs a span of decoded code pairs keyed (a << 32) | b -- the
  /// PairCounter::AddCodes surface for joint distributions.
  void AddPairs(const uint32_t* a, const uint32_t* b, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) {
      Add((static_cast<uint64_t>(a[i]) << 32) | b[i]);
    }
  }

  /// Point frequency estimate (>= true count).
  uint64_t Estimate(uint64_t key) const { return sketch_.Estimate(key); }

  /// Deterministic snapshot for the entropy estimator.
  SketchSummary Summarize() const;

  const CountMinSketch& sketch() const { return sketch_; }

  /// Resident bytes: sketch counters + distinct bitmap + heavy table.
  uint64_t MemoryBytes() const;

 private:
  SketchFrequencyProvider(CountMinSketch sketch, uint32_t heavy_capacity);

  /// Rebuilds the heavy table keeping the top heavy_capacity entries by
  /// (estimate desc, key asc) and raises the admission threshold, so the
  /// table stays bounded and admission stays deterministic.
  void Compact();

  CountMinSketch sketch_;
  uint32_t heavy_capacity_;
  /// Tracked value -> estimate at its last Add. Compacted whenever it
  /// reaches 2 * heavy_capacity_.
  FlatHashMap<uint64_t, uint64_t> heavy_;
  /// Entry bar after the last compaction: keys (re-)enter the table only
  /// once their estimate exceeds it.
  uint64_t admission_threshold_ = 0;
  /// Linear-counting distinct bitmap (kDistinctBits bits).
  std::vector<uint64_t> distinct_bits_;
};

}  // namespace swope

#endif  // SWOPE_SKETCH_FREQUENCY_PROVIDER_H_
