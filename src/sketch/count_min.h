// CountMinSketch: cache-line-aware conservative-update count-min sketch.
//
// A depth x width matrix of uint64 counters answers point frequency
// queries over a stream of 64-bit keys in O(depth) time and
// depth * width * 8 bytes of space, independent of the number of distinct
// keys -- the frequency substrate for columns whose support exceeds
// QueryOptions::sketch_threshold (see docs/SKETCH.md). Estimates never
// undercount; with width w >= e / eps and depth d >= ln(1 / delta) the
// overcount stays below eps * N with probability >= 1 - delta (Cormode &
// Muthukrishnan), and the conservative-update rule (increment only the
// minimal counters) tightens that further in practice.
//
// Layout: rows are stored back to back in one allocation whose base is
// 64-byte aligned, and the width is a power of two of at least one cache
// line of counters (8), so every row starts on a cache-line boundary and
// indexing is a mask, not a modulo.
//
// Determinism: hashing is seeded double hashing (SplitMix64-finalized),
// so two sketches with equal shape and seed absorb equal streams into
// byte-identical counter arrays, and Merge (element-wise sum) is
// associative and commutative -- any fixed sharding plan is bitwise
// reproducible run to run. Sharded-and-merged counters are NOT bitwise
// equal to a serial absorb of the same stream (conservative update is
// order- and partition-sensitive); both still never undercount
// (tests/count_min_test.cc mirrors parallel_determinism_test).

#ifndef SWOPE_SKETCH_COUNT_MIN_H_
#define SWOPE_SKETCH_COUNT_MIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace swope {

class CountMinSketch {
 public:
  /// One cache line of uint64 counters: the minimum row width.
  static constexpr uint32_t kMinWidth = 8;
  /// Row widths above this are refused (16M counters per row is far past
  /// any useful epsilon and keeps depth * width arithmetic overflow-free).
  static constexpr uint32_t kMaxWidth = 1u << 24;
  static constexpr uint32_t kMinDepth = 1;
  static constexpr uint32_t kMaxDepth = 16;

  /// Builds a sketch meeting the (epsilon, delta) guarantee: width is the
  /// smallest power of two >= e / epsilon (clamped to
  /// [kMinWidth, kMaxWidth]) and depth is ceil(ln(1 / delta)) clamped to
  /// [kMinDepth, kMaxDepth]. Requires epsilon in (0, 1) and delta in
  /// (0, 1).
  static Result<CountMinSketch> Make(double epsilon, double delta,
                                     uint64_t seed);

  /// Builds a sketch with an explicit shape. `width` must be a power of
  /// two in [kMinWidth, kMaxWidth]; `depth` in [kMinDepth, kMaxDepth].
  static Result<CountMinSketch> MakeWithShape(uint32_t depth, uint32_t width,
                                              uint64_t seed);

  /// Reconstructs a sketch from serialized parts (binary_io sidecars).
  /// Validates the shape, that `counters` holds exactly depth * width
  /// entries, and the conservative-update invariant that every row's
  /// counter sum is <= total_count -- a corrupted payload fails with
  /// Corruption instead of producing impossible estimates.
  static Result<CountMinSketch> FromParts(uint32_t depth, uint32_t width,
                                          uint64_t seed, uint64_t total_count,
                                          std::vector<uint64_t> counters);

  CountMinSketch(CountMinSketch&&) = default;
  CountMinSketch& operator=(CountMinSketch&&) = default;
  // Copies must be explicit (Clone): the aligned base offset is
  // allocation-specific and may not survive a buffer-for-buffer copy.
  CountMinSketch(const CountMinSketch&) = delete;
  CountMinSketch& operator=(const CountMinSketch&) = delete;

  /// A deep copy over a fresh aligned allocation (ingest clones a
  /// column's sidecar before absorbing appended codes).
  CountMinSketch Clone() const;

  uint32_t depth() const { return depth_; }
  uint32_t width() const { return width_; }
  uint64_t seed() const { return seed_; }
  /// Number of keys absorbed (the stream length N).
  uint64_t total_count() const { return total_count_; }
  /// The additive error bound width implies: e / width. Overcounts exceed
  /// epsilon() * total_count() with probability <= exp(-depth).
  double epsilon() const;

  /// Absorbs one key (conservative update: only counters equal to the
  /// current minimum advance). Returns the post-update estimate.
  uint64_t Add(uint64_t key);

  /// Absorbs a span of 32-bit codes (a gathered column slice).
  void AddCodes(const uint32_t* codes, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) Add(codes[i]);
  }

  /// Point estimate: min over rows, >= the true count of `key`.
  uint64_t Estimate(uint64_t key) const;

  /// True when `other` has this sketch's shape and seed (the precondition
  /// for Merge and for bitwise comparisons).
  bool SameShape(const CountMinSketch& other) const {
    return depth_ == other.depth_ && width_ == other.width_ &&
           seed_ == other.seed_;
  }

  /// Element-wise counter sum. Estimates from a merged sketch still never
  /// undercount the concatenated streams (each cell only grows), though
  /// they can exceed what one sketch absorbing both streams under
  /// conservative update would hold. InvalidArgument unless SameShape.
  Status Merge(const CountMinSketch& other);

  /// The counter matrix, row-major (depth() * width() entries). Stable
  /// across processes for equal shape/seed/stream; binary_io serializes
  /// exactly these words.
  const uint64_t* counters() const { return words_.data() + base_offset_; }
  uint64_t num_counters() const {
    return static_cast<uint64_t>(depth_) * width_;
  }

  /// Resident bytes of the counter allocation (includes alignment slack).
  uint64_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  CountMinSketch(uint32_t depth, uint32_t width, uint64_t seed);

  uint64_t* mutable_counters() { return words_.data() + base_offset_; }
  /// Writes the key's row indices into idx[0..depth_).
  void Index(uint64_t key, uint32_t* idx) const;

  uint32_t depth_ = 0;
  uint32_t width_ = 0;
  uint64_t mask_ = 0;  // width_ - 1
  uint64_t seed_ = 0;
  uint64_t total_count_ = 0;
  /// Counter storage plus up to 7 slack words; the matrix starts at
  /// base_offset_, chosen so its address is 64-byte aligned. Moves keep
  /// the allocation (offset stays valid); copies go through Clone.
  std::vector<uint64_t> words_;
  size_t base_offset_ = 0;
};

}  // namespace swope

#endif  // SWOPE_SKETCH_COUNT_MIN_H_
