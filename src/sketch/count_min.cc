#include "src/sketch/count_min.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace swope {

namespace {

// SplitMix64 finalizer: the key mixer behind both hash functions. Chosen
// to match the repo's other deterministic hashing (table/fingerprint.cc);
// full-avalanche, so consecutive codes land in unrelated counters.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr size_t kAlignWords = 8;  // 64 bytes of uint64 counters

}  // namespace

CountMinSketch::CountMinSketch(uint32_t depth, uint32_t width, uint64_t seed)
    : depth_(depth),
      width_(width),
      mask_(width - 1),
      seed_(seed),
      words_(static_cast<size_t>(depth) * width + kAlignWords - 1, 0) {
  const auto base = reinterpret_cast<uintptr_t>(words_.data());
  const uintptr_t aligned = (base + 63) & ~uintptr_t{63};
  base_offset_ = static_cast<size_t>(aligned - base) / sizeof(uint64_t);
}

Result<CountMinSketch> CountMinSketch::Make(double epsilon, double delta,
                                            uint64_t seed) {
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    return Status::InvalidArgument(
        "count-min sketch: epsilon must be in (0, 1)");
  }
  if (!(delta > 0.0) || !(delta < 1.0)) {
    return Status::InvalidArgument(
        "count-min sketch: delta must be in (0, 1)");
  }
  const double target = std::exp(1.0) / epsilon;
  uint64_t width = kMinWidth;
  while (width < kMaxWidth && static_cast<double>(width) < target) {
    width *= 2;
  }
  const double depth_target = std::ceil(std::log(1.0 / delta));
  const uint32_t depth = static_cast<uint32_t>(std::clamp(
      depth_target, static_cast<double>(kMinDepth),
      static_cast<double>(kMaxDepth)));
  return MakeWithShape(depth, static_cast<uint32_t>(width), seed);
}

Result<CountMinSketch> CountMinSketch::MakeWithShape(uint32_t depth,
                                                     uint32_t width,
                                                     uint64_t seed) {
  if (depth < kMinDepth || depth > kMaxDepth) {
    return Status::InvalidArgument(
        "count-min sketch: depth " + std::to_string(depth) +
        " outside [" + std::to_string(kMinDepth) + ", " +
        std::to_string(kMaxDepth) + "]");
  }
  if (width < kMinWidth || width > kMaxWidth ||
      !std::has_single_bit(width)) {
    return Status::InvalidArgument(
        "count-min sketch: width " + std::to_string(width) +
        " must be a power of two in [" + std::to_string(kMinWidth) + ", " +
        std::to_string(kMaxWidth) + "]");
  }
  return CountMinSketch(depth, width, seed);
}

Result<CountMinSketch> CountMinSketch::FromParts(
    uint32_t depth, uint32_t width, uint64_t seed, uint64_t total_count,
    std::vector<uint64_t> counters) {
  SWOPE_ASSIGN_OR_RETURN(CountMinSketch sketch,
                         MakeWithShape(depth, width, seed));
  // Shape is validated above, so depth * width cannot overflow.
  const uint64_t expected = static_cast<uint64_t>(depth) * width;
  if (counters.size() != expected) {
    return Status::Corruption(
        "count-min sketch: payload holds " +
        std::to_string(counters.size()) + " counters, shape wants " +
        std::to_string(expected));
  }
  // Conservative update raises each row's counter sum by at most 1 per
  // absorbed key, so every row must sum to <= total_count. Detect uint64
  // wraparound while summing: a wrapped sum necessarily exceeded
  // total_count too.
  for (uint32_t row = 0; row < depth; ++row) {
    uint64_t sum = 0;
    bool wrapped = false;
    for (uint32_t j = 0; j < width; ++j) {
      const uint64_t cell =
          counters[static_cast<size_t>(row) * width + j];
      sum += cell;
      wrapped = wrapped || sum < cell;
    }
    if (wrapped || sum > total_count) {
      return Status::Corruption(
          "count-min sketch: row " + std::to_string(row) +
          " counter sum exceeds total count " +
          std::to_string(total_count));
    }
  }
  std::memcpy(sketch.mutable_counters(), counters.data(),
              static_cast<size_t>(expected) * sizeof(uint64_t));
  sketch.total_count_ = total_count;
  return sketch;
}

CountMinSketch CountMinSketch::Clone() const {
  CountMinSketch copy(depth_, width_, seed_);
  copy.total_count_ = total_count_;
  std::memcpy(copy.mutable_counters(), counters(),
              static_cast<size_t>(num_counters()) * sizeof(uint64_t));
  return copy;
}

double CountMinSketch::epsilon() const {
  return std::exp(1.0) / static_cast<double>(width_);
}

void CountMinSketch::Index(uint64_t key, uint32_t* idx) const {
  // Kirsch-Mitzenmacher double hashing: row i probes h1 + i * h2. h2 is
  // forced odd so the probe sequence cycles the full power-of-two table.
  const uint64_t h1 = Mix(key ^ seed_);
  const uint64_t h2 = Mix(key + (seed_ | 1)) | 1;
  for (uint32_t i = 0; i < depth_; ++i) {
    idx[i] = static_cast<uint32_t>((h1 + i * h2) & mask_);
  }
}

uint64_t CountMinSketch::Add(uint64_t key) {
  uint32_t idx[kMaxDepth];
  Index(key, idx);
  uint64_t* base = mutable_counters();
  uint64_t min = UINT64_MAX;
  for (uint32_t i = 0; i < depth_; ++i) {
    min = std::min(min, base[static_cast<size_t>(i) * width_ + idx[i]]);
  }
  // Conservative update: raise only the counters at the minimum; the
  // others already over-count this key.
  const uint64_t updated = min + 1;
  for (uint32_t i = 0; i < depth_; ++i) {
    uint64_t& cell = base[static_cast<size_t>(i) * width_ + idx[i]];
    cell = std::max(cell, updated);
  }
  ++total_count_;
  return updated;
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint32_t idx[kMaxDepth];
  Index(key, idx);
  const uint64_t* base = counters();
  uint64_t min = UINT64_MAX;
  for (uint32_t i = 0; i < depth_; ++i) {
    min = std::min(min, base[static_cast<size_t>(i) * width_ + idx[i]]);
  }
  return min;
}

Status CountMinSketch::Merge(const CountMinSketch& other) {
  if (!SameShape(other)) {
    return Status::InvalidArgument(
        "count-min sketch: merge requires equal depth/width/seed");
  }
  uint64_t* dst = mutable_counters();
  const uint64_t* src = other.counters();
  const uint64_t n = num_counters();
  for (uint64_t i = 0; i < n; ++i) dst[i] += src[i];
  total_count_ += other.total_count_;
  return Status::OK();
}

}  // namespace swope
