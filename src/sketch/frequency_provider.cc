#include "src/sketch/frequency_provider.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace swope {

namespace {

// 2^16 bits (8 KiB): linear counting stays within a few percent up to a
// few hundred thousand distinct values, past which the saturation flag
// tells the estimator the count is only a lower bound.
constexpr uint64_t kDistinctBits = uint64_t{1} << 16;

// SplitMix64 finalizer (the same mixer count_min.cc uses), salted so the
// bitmap's bit choice is independent of the sketch's row hashing.
uint64_t MixDistinct(uint64_t x) {
  x += 0x632be59bd9b4e019ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

SketchFrequencyProvider::SketchFrequencyProvider(CountMinSketch sketch,
                                                 uint32_t heavy_capacity)
    : sketch_(std::move(sketch)),
      heavy_capacity_(heavy_capacity),
      heavy_(heavy_capacity),
      distinct_bits_(kDistinctBits / 64, 0) {}

Result<SketchFrequencyProvider> SketchFrequencyProvider::Make(
    const Params& params) {
  if (params.heavy_capacity == 0) {
    return Status::InvalidArgument(
        "sketch provider: heavy capacity must be >= 1");
  }
  SWOPE_ASSIGN_OR_RETURN(
      CountMinSketch sketch,
      CountMinSketch::Make(params.epsilon, params.delta, params.seed));
  return SketchFrequencyProvider(std::move(sketch), params.heavy_capacity);
}

void SketchFrequencyProvider::Add(uint64_t key) {
  const uint64_t estimate = sketch_.Add(key);
  const uint64_t bit = MixDistinct(key) & (kDistinctBits - 1);
  distinct_bits_[bit >> 6] |= uint64_t{1} << (bit & 63);
  // Heavy tracking: refresh a tracked key in place; admit a new key once
  // its estimate clears the bar set by the last compaction. Both rules
  // depend only on the absorbed stream, so equal streams track equal
  // sets.
  if (uint64_t* slot = heavy_.Find(key)) {
    *slot = estimate;
    return;
  }
  if (estimate > admission_threshold_) {
    heavy_[key] = estimate;
    if (heavy_.size() >= static_cast<size_t>(heavy_capacity_) * 2) {
      Compact();
    }
  }
}

void SketchFrequencyProvider::Compact() {
  std::vector<SketchHeavyHitter> entries;
  entries.reserve(heavy_.size());
  heavy_.ForEach([&entries](uint64_t key, uint64_t estimate) {
    entries.push_back({key, estimate});
  });
  std::sort(entries.begin(), entries.end(),
            [](const SketchHeavyHitter& a, const SketchHeavyHitter& b) {
              return a.estimate != b.estimate ? a.estimate > b.estimate
                                              : a.key < b.key;
            });
  entries.resize(heavy_capacity_);
  // Future keys must beat the lightest survivor to enter. Evicted keys
  // can return once their estimates grow past the bar.
  admission_threshold_ = entries.back().estimate;
  heavy_.Clear();
  for (const SketchHeavyHitter& entry : entries) {
    heavy_[entry.key] = entry.estimate;
  }
}

SketchSummary SketchFrequencyProvider::Summarize() const {
  SketchSummary summary;
  summary.sample_count = sketch_.total_count();
  summary.width = sketch_.width();

  summary.heavy.reserve(heavy_.size());
  heavy_.ForEach([this, &summary](uint64_t key, uint64_t /*stale*/) {
    // Refresh from the sketch: estimates only grow between a key's Adds.
    summary.heavy.push_back({key, sketch_.Estimate(key)});
  });
  std::sort(summary.heavy.begin(), summary.heavy.end(),
            [](const SketchHeavyHitter& a, const SketchHeavyHitter& b) {
              return a.estimate != b.estimate ? a.estimate > b.estimate
                                              : a.key < b.key;
            });
  if (summary.heavy.size() > heavy_capacity_) {
    summary.heavy.resize(heavy_capacity_);
  }

  uint64_t zeros = 0;
  for (uint64_t word : distinct_bits_) {
    zeros += static_cast<uint64_t>(64 - std::popcount(word));
  }
  if (zeros == 0) {
    summary.distinct_saturated = true;
    summary.distinct_estimate = kDistinctBits;
  } else {
    const double bits = static_cast<double>(kDistinctBits);
    const double estimate =
        -bits * std::log(static_cast<double>(zeros) / bits);
    summary.distinct_estimate =
        static_cast<uint64_t>(std::llround(estimate));
  }
  summary.distinct_estimate = std::max<uint64_t>(
      summary.distinct_estimate, summary.heavy.size());
  return summary;
}

uint64_t SketchFrequencyProvider::MemoryBytes() const {
  return sketch_.MemoryBytes() +
         distinct_bits_.size() * sizeof(uint64_t) +
         heavy_.capacity() * (sizeof(uint64_t) * 2);
}

}  // namespace swope
