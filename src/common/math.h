// Numeric helpers shared by the entropy kernels and the concentration
// bounds. All entropies in this library are measured in bits (log base 2),
// matching the paper.

#ifndef SWOPE_COMMON_MATH_H_
#define SWOPE_COMMON_MATH_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace swope {

/// x * log2(x) with the information-theoretic convention 0 * log2(0) = 0.
/// Negative inputs are a caller bug and return 0.
inline double XLog2X(double x) {
  return x > 0.0 ? x * std::log2(x) : 0.0;
}

/// log2(x) for positive x; returns 0 for x <= 0 (callers use this only for
/// counts, where x == 0 never contributes).
inline double SafeLog2(double x) { return x > 0.0 ? std::log2(x) : 0.0; }

/// Entropy (in bits) of the empirical distribution given by the
/// `num_counts` counts at `counts`, whose sum is `total`. Zero counts
/// contribute nothing; total == 0 yields an entropy of 0 by convention.
/// The pointer form serves counters in any container (the arena-backed
/// pmr vectors of src/core/ included); the vector overload is a
/// convenience for tests and the exact baselines.
double EntropyFromCounts(const uint64_t* counts, size_t num_counts,
                         uint64_t total);
double EntropyFromCounts(const std::vector<uint64_t>& counts, uint64_t total);

/// Entropy computed from the streaming statistic sum_i n_i*log2(n_i):
///   H = log2(total) - sum_xlog2x / total.
/// This is the identity the incremental FrequencyCounter relies on.
double EntropyFromXLog2XSum(double sum_xlog2x, uint64_t total);

/// The change in sum_i x_i*log2(x_i) when one count increments from
/// `old_count` to old_count + 1. This is the per-sample update of the
/// incremental counters and the hottest scalar operation in every
/// sampling query, so small counts are served from a precomputed table
/// (built once per process) instead of two log2 calls.
double XLog2XIncrement(uint64_t old_count);

namespace internal_math {
/// Size of the precomputed increment table (counts below this are table
/// lookups). Exposed for tests.
inline constexpr uint64_t kXLog2XTableSize = 1 << 20;
}  // namespace internal_math

/// Entropy (in bits) of a probability mass function. Entries <= 0 are
/// ignored. The pmf is not required to be normalized; it is normalized
/// internally.
double EntropyOfPmf(const std::vector<double>& pmf);

/// Entropy (bits) of a Bernoulli(p) variable; p outside [0,1] is clamped.
double BinaryEntropy(double p);

/// Clamps `x` into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// True when |a - b| <= tol (absolute tolerance).
inline bool NearlyEqual(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

}  // namespace swope

#endif  // SWOPE_COMMON_MATH_H_
