#include "src/common/random.h"

#include <cmath>
#include <numbers>
#include <numeric>

namespace swope {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64Next(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64Next(sm);
  // All-zero state would lock the generator; SplitMix64 cannot produce four
  // zero outputs in a row from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  // Lemire's method: multiply-shift with rejection in the biased zone.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Normal() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::Fork() { return Rng(Next()); }

std::vector<uint32_t> RandomPermutation(uint32_t n, Rng& rng) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0U);
  Shuffle(perm, rng);
  return perm;
}

}  // namespace swope
