#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace swope {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

std::mutex& LogMutex() {
  // NOLINTNEXTLINE(swope-naked-new): leaky singleton, no destructor race
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetGlobalLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetGlobalLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

std::string_view LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level),
      file_(file),
      line_(line) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "[%.*s %s:%d] %s\n",
               static_cast<int>(LogLevelToString(level_).size()),
               LogLevelToString(level_).data(), Basename(file_), line_,
               stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace swope
