#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace swope {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

Mutex& LogMutex() {
  // NOLINTNEXTLINE(swope-naked-new): leaky singleton, no destructor race
  static Mutex* mutex = new Mutex();
  return *mutex;
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetGlobalLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetGlobalLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

std::string_view LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level),
      file_(file),
      line_(line) {}

// The log mutex serializes stderr writes only; it guards no data. Its
// capability is a function-local singleton that the class declaration in
// logging.h cannot name, so negative-capability tracking is opted out
// here rather than leaking the singleton into the public header.
LogMessage::~LogMessage() NO_THREAD_SAFETY_ANALYSIS {
  if (!enabled_) return;
  MutexLock lock(LogMutex());
  std::fprintf(stderr, "[%.*s %s:%d] %s\n",
               static_cast<int>(LogLevelToString(level_).size()),
               LogLevelToString(level_).data(), Basename(file_), line_,
               stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace swope
