// Result<T>: value-or-Status, the library's StatusOr equivalent.

#ifndef SWOPE_COMMON_RESULT_H_
#define SWOPE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace swope {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced. Constructing a Result from an OK status is
/// a programming error (asserted in debug builds, demoted to an Internal
/// status otherwise).
///
/// Like Status, the class is [[nodiscard]]: a dropped Result silently
/// swallows the error path, so every producer call must be consumed.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace swope

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise moves the value into `lhs`.
#define SWOPE_ASSIGN_OR_RETURN(lhs, rexpr)            \
  auto SWOPE_CONCAT_(_swope_result_, __LINE__) = (rexpr); \
  if (!SWOPE_CONCAT_(_swope_result_, __LINE__).ok())      \
    return SWOPE_CONCAT_(_swope_result_, __LINE__).status(); \
  lhs = std::move(SWOPE_CONCAT_(_swope_result_, __LINE__)).value()

#define SWOPE_CONCAT_IMPL_(a, b) a##b
#define SWOPE_CONCAT_(a, b) SWOPE_CONCAT_IMPL_(a, b)

#endif  // SWOPE_COMMON_RESULT_H_
