// Fixed-size thread pool with a ParallelFor helper and a work-stealing
// executor.
//
// The query algorithms are sequential by default (the paper's experiments
// are single-threaded), but shard-decomposed counter updates are
// embarrassingly parallel; setting QueryOptions::pool routes them through
// this pool (the engine wires EngineConfig::intra_query_threads to it).
//
// Two execution modes (PoolMode):
//   kWorkStealing (default)  each worker owns a Chase–Lev-style deque;
//                            external submissions land in a shared
//                            injector queue, workers push nested work to
//                            their own deque (LIFO for the owner) and
//                            steal FIFO from peers when idle. Blocked
//                            ParallelFor callers steal too instead of
//                            sleeping, which is what keeps many small
//                            shard tasks from many concurrent queries
//                            flowing (docs/SHARDING.md).
//   kSingleQueue             one mutex-guarded FIFO, the pre-stealing
//                            executor, kept behind this flag as the
//                            determinism / throughput A/B baseline
//                            (bench/serve_throughput.cc runs both).
// Scheduling mode never affects query answers: the core's shard merge is
// order-invariant by construction, so modes are freely interchangeable.

#ifndef SWOPE_COMMON_THREAD_POOL_H_
#define SWOPE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_annotations.h"

namespace swope {

class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;

/// Executor selection for ThreadPool. See the header comment.
enum class PoolMode {
  kWorkStealing,
  kSingleQueue,
};

/// Parses "stealing" / "single-queue" (the CLI spellings); returns false
/// on anything else without touching `out`.
bool ParsePoolMode(const std::string& text, PoolMode* out);
/// Inverse of ParsePoolMode, for stats/metadata reporting.
const char* PoolModeName(PoolMode mode);

/// A work-queue thread pool. Tasks are std::function<void()>; Submit
/// returns a future for completion/exception propagation.
///
/// ParallelFor is reentrant: a task running on the pool may itself call
/// ParallelFor. The blocked caller helps drain queued work (popping its
/// own deque, stealing from peers, draining the injector) instead of
/// sleeping, so nested parallel sections cannot deadlock even on a
/// single-thread pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads)
      : ThreadPool(num_threads, nullptr, "") {}

  ThreadPool(size_t num_threads, PoolMode mode)
      : ThreadPool(num_threads, nullptr, "", mode) {}

  /// Instrumented pool: when `metrics` is non-null, the pool reports
  ///   swope_pool_queue_depth{pool=...}        gauge
  ///   swope_pool_tasks_total{pool=...}        counter
  ///   swope_pool_steals_total{pool=...}       counter (stealing mode)
  ///   swope_pool_task_wait_ms{pool=...}       histogram (enqueue -> start)
  ///   swope_pool_task_run_ms{pool=...}        histogram (start -> finish)
  /// The registry must outlive the pool.
  ThreadPool(size_t num_threads, MetricsRegistry* metrics,
             const std::string& pool_name,
             PoolMode mode = PoolMode::kWorkStealing);
  ~ThreadPool() REQUIRES(!mutex_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }
  PoolMode mode() const { return mode_; }
  /// Successful deque steals since construction (0 in single-queue mode).
  /// Cheap enough to keep unconditionally; the engine snapshots it into
  /// swope_pool_steals_total.
  uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Per-worker execution telemetry, the raw material for utilization
  /// gauges (busy fraction = run / (run + idle)). Counters are cumulative
  /// since construction and relaxed-atomic, so a snapshot is monotone but
  /// not linearizable -- monitoring semantics, like Counter.
  struct WorkerStats {
    /// Time spent executing task bodies.
    uint64_t run_ns = 0;
    /// Time spent parked in the idle wait loop (only workers accrue it;
    /// external helpers never park).
    uint64_t idle_ns = 0;
    /// Tasks executed.
    uint64_t tasks = 0;
    /// Successful steals performed *by* this worker (0 in single-queue
    /// mode).
    uint64_t steals = 0;
  };
  /// One entry per worker, plus a final entry aggregating every external
  /// helper thread (ParallelFor callers draining work while they wait).
  std::vector<WorkerStats> GetWorkerStats() const;

  /// Enqueues a task; the future resolves when it finishes. Worker
  /// threads of this pool push to their own deque (stealing mode);
  /// external threads go through the shared injector.
  std::future<void> Submit(std::function<void()> task) REQUIRES(!mutex_);

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations complete. Iterations are distributed in contiguous chunks.
  /// If any iteration throws, the first exception is rethrown after every
  /// chunk has finished (so `fn` is never referenced after the call
  /// returns). A zero-length range returns immediately.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn) REQUIRES(!mutex_);

 private:
  /// A queued unit of work. `wait` starts at enqueue time so the task
  /// wait histogram measures time spent in the queue.
  struct Task {
    std::packaged_task<void()> fn;
    Stopwatch wait;
  };

  /// Chase–Lev-style bounded work-stealing deque over heap Task
  /// pointers. The owning worker pushes and pops at the bottom (LIFO);
  /// thieves CAS the top (FIFO). Every access is a seq_cst atomic -- the
  /// classic algorithm minus the relaxed-ordering refinements -- which
  /// keeps it data-race-free by construction (the TSan stress jobs run
  /// it hard). A full deque rejects the push and the task overflows to
  /// the shared injector, so capacity is a performance knob, not a
  /// correctness bound.
  class StealDeque {
   public:
    static constexpr size_t kCapacity = 1024;  // power of two
    static constexpr size_t kMask = kCapacity - 1;

    StealDeque() : cells_(kCapacity) {
      for (auto& cell : cells_) cell.store(nullptr);
    }

    /// Owner only. False when full.
    bool Push(Task* task) {
      const int64_t b = bottom_.load();
      const int64_t t = top_.load();
      if (b - t >= static_cast<int64_t>(kCapacity)) return false;
      cells_[static_cast<size_t>(b) & kMask].store(task);
      bottom_.store(b + 1);
      return true;
    }

    /// Owner only. Null when empty.
    Task* Pop() {
      const int64_t b = bottom_.load() - 1;
      bottom_.store(b);
      int64_t t = top_.load();
      if (t > b) {  // empty
        bottom_.store(b + 1);
        return nullptr;
      }
      Task* task = cells_[static_cast<size_t>(b) & kMask].load();
      if (t == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1)) task = nullptr;
        bottom_.store(b + 1);
      }
      return task;
    }

    /// Any thread. Null when empty or lost the race.
    Task* Steal() {
      int64_t t = top_.load();
      const int64_t b = bottom_.load();
      if (t >= b) return nullptr;
      Task* task = cells_[static_cast<size_t>(t) & kMask].load();
      if (!top_.compare_exchange_strong(t, t + 1)) return nullptr;
      return task;
    }

    bool Empty() const { return top_.load() >= bottom_.load(); }

   private:
    std::vector<std::atomic<Task*>> cells_;
    std::atomic<int64_t> top_{0};
    std::atomic<int64_t> bottom_{0};
  };

  void WorkerLoop(size_t worker_index) REQUIRES(!mutex_);

  /// Pops and runs one queued task if available: own deque first (when
  /// the caller is a worker of this pool), then the injector, then a
  /// steal sweep over every worker deque. Returns false when no task was
  /// found. Used by ParallelFor callers to help make progress while they
  /// wait on their chunks -- external waiters steal too.
  bool RunOneTask() REQUIRES(!mutex_);

  /// Finds one task without running it (the RunOneTask scan). `self` is
  /// the calling worker's deque or null for external threads.
  Task* FindTask(StealDeque* self) REQUIRES(!mutex_);

  /// Pops one injector task; null when empty.
  Task* PopInjector() REQUIRES(!mutex_);

  /// Steal sweep: one round over every worker deque except `self`.
  Task* TrySteal(const StealDeque* self);

  /// Enqueues in the shared injector and wakes a worker.
  void SubmitToInjector(Task* task) REQUIRES(!mutex_);

  /// Runs a heap task, feeding the wait/run histograms when the pool is
  /// instrumented and the per-worker run counters always, and frees it.
  void RunTask(Task* task);

  /// Index into worker_cells_ for the calling thread: its worker slot on
  /// this pool's threads, the final external-helper slot otherwise.
  size_t StatsSlot() const;

  const PoolMode mode_;

  /// Written only during construction (before workers run) and joined in
  /// the destructor; never mutated while the pool is concurrent.
  // NOLINTNEXTLINE(swope-lock-discipline): ctor/dtor-only state
  std::vector<std::thread> workers_;
  /// One deque per worker; the vector itself is ctor-immutable, each
  /// deque is internally synchronized (atomics).
  // NOLINTNEXTLINE(swope-lock-discipline): ctor-immutable, atomic cells
  std::vector<std::unique_ptr<StealDeque>> deques_;
  Mutex mutex_;
  /// Shared injector: external submissions and deque overflow.
  std::queue<Task*> injector_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
  CondVar cv_;
  std::atomic<uint64_t> steals_{0};
  /// Tasks queued anywhere (injector + deques); lets sleeping workers
  /// avoid a full deque sweep per wakeup check.
  std::atomic<int64_t> pending_{0};

  /// Per-worker telemetry cells, one cache line each so concurrent
  /// workers never contend; sized workers + 1 (the last is the shared
  /// external-helper slot). The vector itself is ctor-immutable.
  struct alignas(64) WorkerCell {
    std::atomic<uint64_t> run_ns{0};
    std::atomic<uint64_t> idle_ns{0};
    std::atomic<uint64_t> tasks{0};
    std::atomic<uint64_t> steals{0};
  };
  // NOLINTNEXTLINE(swope-lock-discipline): ctor-immutable, atomic cells
  std::vector<WorkerCell> worker_cells_;

  /// Metric handles, resolved once at construction; all null for an
  /// uninstrumented pool.
  Gauge* const queue_depth_;
  Counter* const tasks_total_;
  Counter* const steals_total_;
  Histogram* const wait_ms_;
  Histogram* const run_ms_;
};

}  // namespace swope

#endif  // SWOPE_COMMON_THREAD_POOL_H_
