// Fixed-size thread pool with a ParallelFor helper.
//
// The query algorithms are sequential by default (the paper's experiments
// are single-threaded), but per-attribute counter updates are embarrassingly
// parallel; setting QueryOptions::pool routes them through this pool (the
// engine wires EngineConfig::intra_query_threads to it).

#ifndef SWOPE_COMMON_THREAD_POOL_H_
#define SWOPE_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_annotations.h"

namespace swope {

class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;

/// A minimal work-queue thread pool. Tasks are std::function<void()>;
/// Submit returns a future for completion/exception propagation.
///
/// ParallelFor is reentrant: a task running on the pool may itself call
/// ParallelFor. The blocked caller helps drain the queue instead of
/// sleeping, so nested parallel sections cannot deadlock even on a
/// single-thread pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads)
      : ThreadPool(num_threads, nullptr, "") {}

  /// Instrumented pool: when `metrics` is non-null, the pool reports
  ///   swope_pool_queue_depth{pool=...}        gauge
  ///   swope_pool_tasks_total{pool=...}        counter
  ///   swope_pool_task_wait_ms{pool=...}       histogram (enqueue -> start)
  ///   swope_pool_task_run_ms{pool=...}        histogram (start -> finish)
  /// The registry must outlive the pool.
  ThreadPool(size_t num_threads, MetricsRegistry* metrics,
             const std::string& pool_name);
  ~ThreadPool() REQUIRES(!mutex_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it finishes.
  std::future<void> Submit(std::function<void()> task) REQUIRES(!mutex_);

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations complete. Iterations are distributed in contiguous chunks.
  /// If any iteration throws, the first exception is rethrown after every
  /// chunk has finished (so `fn` is never referenced after the call
  /// returns). A zero-length range returns immediately.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn) REQUIRES(!mutex_);

 private:
  /// A queued unit of work. `wait` starts at enqueue time so the task
  /// wait histogram measures time spent in the queue.
  struct Task {
    std::packaged_task<void()> fn;
    Stopwatch wait;
  };

  void WorkerLoop() REQUIRES(!mutex_);

  /// Pops and runs one queued task if available. Returns false when the
  /// queue was empty. Used by ParallelFor callers to help make progress
  /// while they wait on their chunks.
  bool RunOneTask() REQUIRES(!mutex_);

  /// Runs a dequeued task, feeding the wait/run histograms when the pool
  /// is instrumented.
  void RunTask(Task task);

  /// Written only during construction (before workers run) and joined in
  /// the destructor; never mutated while the pool is concurrent.
  // NOLINTNEXTLINE(swope-lock-discipline): ctor/dtor-only state
  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<Task> tasks_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
  CondVar cv_;

  /// Metric handles, resolved once at construction; all null for an
  /// uninstrumented pool.
  Gauge* const queue_depth_;
  Counter* const tasks_total_;
  Histogram* const wait_ms_;
  Histogram* const run_ms_;
};

}  // namespace swope

#endif  // SWOPE_COMMON_THREAD_POOL_H_
