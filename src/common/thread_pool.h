// Fixed-size thread pool with a ParallelFor helper.
//
// The query algorithms are sequential by default (the paper's experiments
// are single-threaded), but per-attribute counter updates are embarrassingly
// parallel; QueryOptions::num_threads > 1 routes them through this pool.

#ifndef SWOPE_COMMON_THREAD_POOL_H_
#define SWOPE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace swope {

/// A minimal work-queue thread pool. Tasks are std::function<void()>;
/// Submit returns a future for completion/exception propagation.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it finishes.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations complete. Iterations are distributed in contiguous chunks.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace swope

#endif  // SWOPE_COMMON_THREAD_POOL_H_
