// Fixed-size thread pool with a ParallelFor helper.
//
// The query algorithms are sequential by default (the paper's experiments
// are single-threaded), but per-attribute counter updates are embarrassingly
// parallel; setting QueryOptions::pool routes them through this pool (the
// engine wires EngineConfig::intra_query_threads to it).

#ifndef SWOPE_COMMON_THREAD_POOL_H_
#define SWOPE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"

namespace swope {

/// A minimal work-queue thread pool. Tasks are std::function<void()>;
/// Submit returns a future for completion/exception propagation.
///
/// ParallelFor is reentrant: a task running on the pool may itself call
/// ParallelFor. The blocked caller helps drain the queue instead of
/// sleeping, so nested parallel sections cannot deadlock even on a
/// single-thread pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it finishes.
  std::future<void> Submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations complete. Iterations are distributed in contiguous chunks.
  /// If any iteration throws, the first exception is rethrown after every
  /// chunk has finished (so `fn` is never referenced after the call
  /// returns). A zero-length range returns immediately.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn) EXCLUDES(mutex_);

 private:
  void WorkerLoop() EXCLUDES(mutex_);

  /// Pops and runs one queued task if available. Returns false when the
  /// queue was empty. Used by ParallelFor callers to help make progress
  /// while they wait on their chunks.
  bool RunOneTask() EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::queue<std::packaged_task<void()>> tasks_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
  std::condition_variable cv_;
};

}  // namespace swope

#endif  // SWOPE_COMMON_THREAD_POOL_H_
