// Clang thread-safety annotation macros.
//
// Under Clang with -Wthread-safety these expand to attributes that let the
// compiler prove lock discipline statically (which mutex guards which
// member, which methods must or must not hold it). Under GCC and other
// compilers they expand to nothing, so annotated code stays portable.
//
// Naming follows the standard Clang/abseil vocabulary so the annotations
// read the same here as in the upstream documentation.

#ifndef SWOPE_COMMON_THREAD_ANNOTATIONS_H_
#define SWOPE_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define SWOPE_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SWOPE_THREAD_ANNOTATION__(x)
#endif

// Documents that a type is a lock ("capability") the analysis can track.
#define CAPABILITY(x) SWOPE_THREAD_ANNOTATION__(capability(x))
#define SCOPED_CAPABILITY SWOPE_THREAD_ANNOTATION__(scoped_lockable)

// Documents that a member is protected by the given mutex.
#define GUARDED_BY(x) SWOPE_THREAD_ANNOTATION__(guarded_by(x))
#define PT_GUARDED_BY(x) SWOPE_THREAD_ANNOTATION__(pt_guarded_by(x))

// Documents that a function must be called with the mutex held...
#define REQUIRES(...) \
  SWOPE_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
// ...or must NOT be called with it held (it acquires the mutex itself).
#define EXCLUDES(...) SWOPE_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// Documents that a function acquires/releases the mutex and does not
// release/reacquire it before returning.
#define ACQUIRE(...) \
  SWOPE_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
  SWOPE_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

// Documents that a function attempts the acquisition and reports success
// as the given boolean return value.
#define TRY_ACQUIRE(...) \
  SWOPE_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

// Escape hatch for functions the analysis cannot model.
#define NO_THREAD_SAFETY_ANALYSIS \
  SWOPE_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // SWOPE_COMMON_THREAD_ANNOTATIONS_H_
