// Minimal leveled logging used by the library, tools and benches.
//
// Usage:
//   SWOPE_LOG(kInfo) << "sampled " << m << " rows";
//
// The global level defaults to kWarning so that library internals stay
// quiet unless a tool opts in via SetGlobalLogLevel.

#ifndef SWOPE_COMMON_LOGGING_H_
#define SWOPE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace swope {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the process-wide minimum level that is emitted.
void SetGlobalLogLevel(LogLevel level);
LogLevel GetGlobalLogLevel();

std::string_view LogLevelToString(LogLevel level);

namespace internal_logging {

/// Stream-collecting helper; emits on destruction. Not for direct use,
/// use SWOPE_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace swope

#define SWOPE_LOG(severity)                                      \
  ::swope::internal_logging::LogMessage(::swope::LogLevel::severity, \
                                        __FILE__, __LINE__)

#endif  // SWOPE_COMMON_LOGGING_H_
