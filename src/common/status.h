// Status: lightweight error model used across the SWOPE library.
//
// The library does not throw exceptions across public API boundaries;
// fallible operations return a Status (or a Result<T>, see result.h)
// in the style of RocksDB / Apache Arrow.

#ifndef SWOPE_COMMON_STATUS_H_
#define SWOPE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace swope {

/// Error categories reported by the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kIOError = 4,
  kCorruption = 5,
  kNotSupported = 6,
  kInternal = 7,
  kCancelled = 8,
  kDeadlineExceeded = 9,
  kUnavailable = 10,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status carries a StatusCode plus an optional message. The default
/// constructed Status is OK. Statuses are cheap to copy (OK statuses carry
/// no allocation is not guaranteed, but messages are short).
///
/// The class is [[nodiscard]]: any call returning a Status must consume
/// it (check, return, or explicitly `(void)` it with a comment saying why
/// the error is irrelevant). Enforced repo-wide by -Werror; see
/// tests/compile_fail/discarded_status.cc.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<category>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace swope

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define SWOPE_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::swope::Status _swope_status = (expr);      \
    if (!_swope_status.ok()) return _swope_status; \
  } while (false)

#endif  // SWOPE_COMMON_STATUS_H_
