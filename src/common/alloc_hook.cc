#include "src/common/alloc_hook.h"

namespace swope {

// Weak default: a strong definition in a test binary (the counting
// interposer) replaces it at link time.
__attribute__((weak)) uint64_t AllocationCount() { return 0; }

}  // namespace swope
