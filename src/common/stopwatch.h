// Wall-clock stopwatch used by the experiment harness.

#ifndef SWOPE_COMMON_STOPWATCH_H_
#define SWOPE_COMMON_STOPWATCH_H_

#include <chrono>

namespace swope {

/// The repo's single steady-clock read. All timing funnels through here
/// (or through src/obs/) so instrumentation sees every clock access --
/// lint.py bans raw steady_clock::now() everywhere else.
inline std::chrono::steady_clock::time_point SteadyNow() {
  return std::chrono::steady_clock::now();
}

/// Measures elapsed wall time with steady_clock. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(SteadyNow()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = SteadyNow(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(SteadyNow() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace swope

#endif  // SWOPE_COMMON_STOPWATCH_H_
