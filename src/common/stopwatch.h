// Wall-clock stopwatch used by the experiment harness.

#ifndef SWOPE_COMMON_STOPWATCH_H_
#define SWOPE_COMMON_STOPWATCH_H_

#include <chrono>

namespace swope {

/// Measures elapsed wall time with steady_clock. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace swope

#endif  // SWOPE_COMMON_STOPWATCH_H_
