// TopKHeap: bounded min-heap that retains the k largest items by score.
//
// Used by the query algorithms to extract the k attributes with the largest
// upper/lower bounds in O(h log k) instead of sorting all h candidates.

#ifndef SWOPE_COMMON_TOP_K_HEAP_H_
#define SWOPE_COMMON_TOP_K_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace swope {

/// Keeps the k items with the largest `score`. Ties are broken toward the
/// smaller payload so results are deterministic.
template <typename Payload>
class TopKHeap {
 public:
  struct Entry {
    double score;
    Payload payload;

    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.score != b.score) return a.score < b.score;
      return b.payload < a.payload;  // larger payload = "smaller" entry
    }
  };

  explicit TopKHeap(size_t k) : k_(k) {}

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool Full() const { return heap_.size() == k_; }

  /// Offers an item; keeps it only if it beats the current k-th best.
  void Push(double score, Payload payload) {
    if (k_ == 0) return;
    Entry entry{score, std::move(payload)};
    if (heap_.size() < k_) {
      heap_.push_back(std::move(entry));
      std::push_heap(heap_.begin(), heap_.end(), MinFirst);
      return;
    }
    if (!(heap_.front() < entry)) return;  // entry <= current min: discard
    std::pop_heap(heap_.begin(), heap_.end(), MinFirst);
    heap_.back() = std::move(entry);
    std::push_heap(heap_.begin(), heap_.end(), MinFirst);
  }

  /// The smallest retained score (the "k-th largest" when Full()).
  /// Requires size() > 0.
  double MinScore() const { return heap_.front().score; }

  /// Returns the retained entries sorted by descending score and consumes
  /// the heap.
  std::vector<Entry> TakeSortedDescending() {
    std::vector<Entry> out = std::move(heap_);
    std::sort(out.begin(), out.end(),
              [](const Entry& a, const Entry& b) { return b < a; });
    return out;
  }

 private:
  // Comparator that makes std::*_heap maintain a min-heap: a "less" entry
  // should rise to the front, so invert.
  static bool MinFirst(const Entry& a, const Entry& b) { return b < a; }

  size_t k_;
  std::vector<Entry> heap_;
};

}  // namespace swope

#endif  // SWOPE_COMMON_TOP_K_HEAP_H_
