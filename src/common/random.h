// Deterministic pseudo-random number generation.
//
// Every randomized component in the library (shuffling, synthetic data
// generation, sampling) takes an explicit 64-bit seed so that all tests and
// experiments are reproducible. The generator is xoshiro256**, seeded via
// SplitMix64, which is the standard high-quality seeding recipe.

#ifndef SWOPE_COMMON_RANDOM_H_
#define SWOPE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace swope {

/// SplitMix64 step: advances `state` and returns the next output.
/// Exposed for seeding and for tests.
uint64_t SplitMix64Next(uint64_t& state);

/// xoshiro256** generator. Satisfies the UniformRandomBitGenerator
/// requirements so it can also be plugged into <random> facilities.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless rejection method (unbiased).
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double UniformDouble();

  /// Standard normal via Box-Muller.
  double Normal();

  /// An independent generator derived from this one's stream; used to give
  /// each column / query its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Fisher-Yates shuffle of `values` in place.
template <typename T>
void Shuffle(std::vector<T>& values, Rng& rng) {
  for (size_t i = values.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.UniformU64(i));
    using std::swap;
    swap(values[i - 1], values[j]);
  }
}

/// Returns a uniformly random permutation of [0, n).
std::vector<uint32_t> RandomPermutation(uint32_t n, Rng& rng);

}  // namespace swope

#endif  // SWOPE_COMMON_RANDOM_H_
