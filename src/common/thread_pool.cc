#include "src/common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <utility>

#include "src/obs/metrics.h"

namespace swope {

namespace {

// Identity of the current thread within its owning pool, set once at
// worker startup. Lets Submit route nested work to the submitting
// worker's own deque and RunOneTask pop it LIFO.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker_index = 0;

}  // namespace

bool ParsePoolMode(const std::string& text, PoolMode* out) {
  if (text == "stealing") {
    *out = PoolMode::kWorkStealing;
    return true;
  }
  if (text == "single-queue") {
    *out = PoolMode::kSingleQueue;
    return true;
  }
  return false;
}

const char* PoolModeName(PoolMode mode) {
  return mode == PoolMode::kWorkStealing ? "stealing" : "single-queue";
}

ThreadPool::ThreadPool(size_t num_threads, MetricsRegistry* metrics,
                       const std::string& pool_name, PoolMode mode)
    : mode_(mode),
      worker_cells_(std::max<size_t>(1, num_threads) + 1),
      queue_depth_(metrics != nullptr
                       ? metrics->GetGauge("swope_pool_queue_depth",
                                           {{"pool", pool_name}})
                       : nullptr),
      tasks_total_(metrics != nullptr
                       ? metrics->GetCounter("swope_pool_tasks_total",
                                             {{"pool", pool_name}})
                       : nullptr),
      steals_total_(metrics != nullptr
                       ? metrics->GetCounter("swope_pool_steals_total",
                                             {{"pool", pool_name}})
                       : nullptr),
      wait_ms_(metrics != nullptr
                   ? metrics->GetHistogram("swope_pool_task_wait_ms",
                                           {{"pool", pool_name}},
                                           DefaultLatencyBucketsMs())
                   : nullptr),
      run_ms_(metrics != nullptr
                  ? metrics->GetHistogram("swope_pool_task_run_ms",
                                          {{"pool", pool_name}},
                                          DefaultLatencyBucketsMs())
                  : nullptr) {
  const size_t n = std::max<size_t>(1, num_threads);
  if (mode_ == PoolMode::kWorkStealing) {
    deques_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      deques_.push_back(std::make_unique<StealDeque>());
    }
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // A fresh thread starts with no locks held; stating that lets the
    // negative-capability analysis accept the WorkerLoop call.
    workers_.emplace_back(
        [this, i]() REQUIRES(!mutex_) { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  // Ownership transfers to the raw queue/deque cells here and is
  // reclaimed by RunTask; unique_ptr brackets both ends.
  auto owned = std::make_unique<Task>();
  owned->fn = std::packaged_task<void()>(std::move(task));
  std::future<void> future = owned->fn.get_future();
  Task* queued = owned.release();
  if (mode_ == PoolMode::kWorkStealing && tls_pool == this &&
      deques_[tls_worker_index]->Push(queued)) {
    // Nested submission from one of our own workers: deque push, no
    // lock. The idle loop's timed wait bounds the (rare) missed-notify
    // window, so the lock-free notify below is safe.
    pending_.fetch_add(1);
    if (queue_depth_ != nullptr) queue_depth_->Add(1);
    cv_.NotifyOne();
    return future;
  }
  SubmitToInjector(queued);
  return future;
}

void ThreadPool::SubmitToInjector(Task* task) {
  {
    MutexLock lock(mutex_);
    injector_.push(task);
  }
  pending_.fetch_add(1);
  if (queue_depth_ != nullptr) queue_depth_->Add(1);
  cv_.NotifyOne();
}

size_t ThreadPool::StatsSlot() const {
  return tls_pool == this ? tls_worker_index : workers_.size();
}

std::vector<ThreadPool::WorkerStats> ThreadPool::GetWorkerStats() const {
  std::vector<WorkerStats> stats(worker_cells_.size());
  for (size_t i = 0; i < worker_cells_.size(); ++i) {
    const WorkerCell& cell = worker_cells_[i];
    stats[i].run_ns = cell.run_ns.load(std::memory_order_relaxed);
    stats[i].idle_ns = cell.idle_ns.load(std::memory_order_relaxed);
    stats[i].tasks = cell.tasks.load(std::memory_order_relaxed);
    stats[i].steals = cell.steals.load(std::memory_order_relaxed);
  }
  return stats;
}

void ThreadPool::RunTask(Task* task) {
  const std::unique_ptr<Task> owned(task);  // reclaim from the queues
  WorkerCell& cell = worker_cells_[StatsSlot()];
  if (queue_depth_ != nullptr) {
    queue_depth_->Add(-1);
    tasks_total_->Increment();
    wait_ms_->Observe(task->wait.ElapsedMillis());
  }
  Stopwatch run;
  task->fn();
  const double run_ms = run.ElapsedMillis();
  if (run_ms_ != nullptr) run_ms_->Observe(run_ms);
  cell.run_ns.fetch_add(static_cast<uint64_t>(run_ms * 1e6),
                        std::memory_order_relaxed);
  cell.tasks.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t total = end - begin;
  // Single-queue keeps the one-chunk-per-worker split (the A/B
  // baseline); stealing oversubscribes so uneven chunks rebalance by
  // theft.
  const size_t target_chunks = mode_ == PoolMode::kWorkStealing
                                   ? num_threads() * 4
                                   : num_threads();
  const size_t chunks = std::min(total, std::max<size_t>(1, target_chunks));
  const size_t chunk_size = (total + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + c * chunk_size;
    const size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Wait with work-helping: when this is itself a pool task (nested
  // ParallelFor) every worker may be blocked here, so queued work would
  // never drain if we simply slept on the futures. Helping also means the
  // pool cannot deadlock regardless of nesting depth or thread count. In
  // stealing mode helpers raid peer deques too, so an external caller
  // (e.g. a query blocked on its round's shard tasks) contributes a full
  // execution lane instead of sleeping.
  //
  // Every future is drained before any exception is rethrown -- the chunk
  // lambdas capture `fn` by reference, so no chunk may outlive this frame.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!RunOneTask()) {
        // Nothing runnable anywhere: our chunk is mid-flight on another
        // thread. Poll with a short timeout in case helpable work
        // appears.
        future.wait_for(std::chrono::milliseconds(1));
      }
    }
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool::Task* ThreadPool::PopInjector() {
  MutexLock lock(mutex_);
  if (injector_.empty()) return nullptr;
  Task* task = injector_.front();
  injector_.pop();
  return task;
}

ThreadPool::Task* ThreadPool::TrySteal(const StealDeque* self) {
  // One sweep starting after the caller's own slot (or 0 for external
  // threads) so victims rotate instead of pack-attacking deque 0.
  const size_t n = deques_.size();
  const size_t start = (tls_pool == this) ? tls_worker_index + 1 : 0;
  for (size_t i = 0; i < n; ++i) {
    StealDeque* victim = deques_[(start + i) % n].get();
    if (victim == self) continue;
    Task* task = victim->Steal();
    if (task != nullptr) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      worker_cells_[StatsSlot()].steals.fetch_add(1,
                                                  std::memory_order_relaxed);
      if (steals_total_ != nullptr) steals_total_->Increment();
      return task;
    }
  }
  return nullptr;
}

ThreadPool::Task* ThreadPool::FindTask(StealDeque* self) {
  if (self != nullptr) {
    Task* task = self->Pop();
    if (task != nullptr) return task;
  }
  Task* task = PopInjector();
  if (task != nullptr) return task;
  if (mode_ == PoolMode::kWorkStealing) return TrySteal(self);
  return nullptr;
}

bool ThreadPool::RunOneTask() {
  StealDeque* self =
      (mode_ == PoolMode::kWorkStealing && tls_pool == this)
          ? deques_[tls_worker_index].get()
          : nullptr;
  Task* task = FindTask(self);
  if (task == nullptr) return false;
  pending_.fetch_sub(1);
  RunTask(task);
  return true;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_pool = this;
  tls_worker_index = worker_index;
  StealDeque* self = mode_ == PoolMode::kWorkStealing
                         ? deques_[worker_index].get()
                         : nullptr;
  for (;;) {
    Task* task = FindTask(self);
    if (task != nullptr) {
      pending_.fetch_sub(1);
      RunTask(task);
      continue;
    }
    MutexLock lock(mutex_);
    // Drain-before-exit: stop_ only wins once no task is queued
    // anywhere, preserving the pre-stealing destructor contract.
    Stopwatch idle;
    while (!stop_ && pending_.load() == 0) {
      // Timed wait: a worker pushing to its own deque notifies without
      // the lock, so a wakeup can race this sleep; the timeout bounds
      // that window instead of serializing the push hot path.
      cv_.WaitFor(mutex_, std::chrono::milliseconds(1));
    }
    worker_cells_[worker_index].idle_ns.fetch_add(
        static_cast<uint64_t>(idle.ElapsedMillis() * 1e6),
        std::memory_order_relaxed);
    if (stop_ && pending_.load() == 0) return;
  }
}

}  // namespace swope
