#include "src/common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "src/obs/metrics.h"

namespace swope {

ThreadPool::ThreadPool(size_t num_threads, MetricsRegistry* metrics,
                       const std::string& pool_name)
    : queue_depth_(metrics != nullptr
                       ? metrics->GetGauge("swope_pool_queue_depth",
                                           {{"pool", pool_name}})
                       : nullptr),
      tasks_total_(metrics != nullptr
                       ? metrics->GetCounter("swope_pool_tasks_total",
                                             {{"pool", pool_name}})
                       : nullptr),
      wait_ms_(metrics != nullptr
                   ? metrics->GetHistogram("swope_pool_task_wait_ms",
                                           {{"pool", pool_name}},
                                           DefaultLatencyBucketsMs())
                   : nullptr),
      run_ms_(metrics != nullptr
                  ? metrics->GetHistogram("swope_pool_task_run_ms",
                                          {{"pool", pool_name}},
                                          DefaultLatencyBucketsMs())
                  : nullptr) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // A fresh thread starts with no locks held; stating that lets the
    // negative-capability analysis accept the WorkerLoop call.
    workers_.emplace_back([this]() REQUIRES(!mutex_) { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    MutexLock lock(mutex_);
    tasks_.push(Task{std::move(packaged), Stopwatch()});
  }
  if (queue_depth_ != nullptr) queue_depth_->Add(1);
  cv_.NotifyOne();
  return future;
}

void ThreadPool::RunTask(Task task) {
  if (queue_depth_ != nullptr) {
    queue_depth_->Add(-1);
    tasks_total_->Increment();
    wait_ms_->Observe(task.wait.ElapsedMillis());
    Stopwatch run;
    task.fn();
    run_ms_->Observe(run.ElapsedMillis());
    return;
  }
  task.fn();
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t total = end - begin;
  const size_t chunks = std::min(total, num_threads());
  const size_t chunk_size = (total + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + c * chunk_size;
    const size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Wait with work-helping: when this is itself a pool task (nested
  // ParallelFor) every worker may be blocked here, so the queue would
  // never drain if we simply slept on the futures. Helping also means the
  // pool cannot deadlock regardless of nesting depth or thread count.
  //
  // Every future is drained before any exception is rethrown -- the chunk
  // lambdas capture `fn` by reference, so no chunk may outlive this frame.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!RunOneTask()) {
        // Queue empty: our chunk is running on another thread. Blocking
        // indefinitely would be wrong only if new helpable work appears,
        // so poll with a short timeout.
        future.wait_for(std::chrono::milliseconds(1));
      }
    }
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

bool ThreadPool::RunOneTask() {
  Task task;
  {
    MutexLock lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  RunTask(std::move(task));
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.Wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    RunTask(std::move(task));
  }
}

}  // namespace swope
