// FlatHashMap: open-addressing hash map for integral keys.
//
// Purpose-built for the joint-value counters in src/core/pair_counter.*:
// dense storage, linear probing, no tombstones (the counters never erase),
// power-of-two capacity, Fibonacci-style finalizer on the key. For small
// maps it is substantially faster and more cache-friendly than
// std::unordered_map, which matters because joint counting dominates the
// mutual-information query cost.

#ifndef SWOPE_COMMON_FLAT_HASH_MAP_H_
#define SWOPE_COMMON_FLAT_HASH_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory_resource>
#include <type_traits>
#include <utility>
#include <vector>

namespace swope {

/// Hash map from an unsigned integral Key to Value. One key value is
/// reserved as the "empty" sentinel (defaults to the all-ones pattern) and
/// must never be inserted.
template <typename Key, typename Value>
class FlatHashMap {
  static_assert(std::is_unsigned_v<Key>, "FlatHashMap requires unsigned keys");

 public:
  static constexpr Key kEmptyKey = static_cast<Key>(~Key{0});

  /// Creates a map sized for at least `expected_size` elements without
  /// rehashing. Slot storage comes from `memory` (default: the global
  /// heap); a query-arena resource makes the map's growth part of the
  /// per-query bump allocation (src/common/arena.h).
  explicit FlatHashMap(size_t expected_size = 0,
                       std::pmr::memory_resource* memory = nullptr)
      : slots_(memory != nullptr ? memory
                                 : std::pmr::get_default_resource()) {
    Init(expected_size);
  }

  // Copies land on the default resource (a cached copy must not alias a
  // rewindable arena); moves keep the source's resource.
  FlatHashMap(const FlatHashMap&) = default;
  FlatHashMap& operator=(const FlatHashMap&) = default;
  FlatHashMap(FlatHashMap&&) noexcept = default;
  FlatHashMap& operator=(FlatHashMap&&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  /// Removes all entries, keeping the current capacity.
  void Clear() {
    for (auto& slot : slots_) slot.first = kEmptyKey;
    size_ = 0;
  }

  /// Returns a reference to the value for `key`, default-constructing it on
  /// first access. `key` must not be the empty sentinel.
  Value& operator[](Key key) {
    assert(key != kEmptyKey);
    if ((size_ + 1) * 8 > slots_.size() * 7) Grow();
    size_t idx = Probe(key);
    if (slots_[idx].first == kEmptyKey) {
      slots_[idx].first = key;
      slots_[idx].second = Value{};
      ++size_;
    }
    return slots_[idx].second;
  }

  /// Returns a pointer to the value for `key`, or nullptr when absent.
  /// The non-const overload yields a mutable value slot without a
  /// const_cast round-trip, so writes through it are well-defined even
  /// for a map that was originally declared const elsewhere.
  const Value* Find(Key key) const {
    assert(key != kEmptyKey);
    const size_t idx = Probe(key);
    return slots_[idx].first == kEmptyKey ? nullptr : &slots_[idx].second;
  }
  Value* Find(Key key) {
    assert(key != kEmptyKey);
    const size_t idx = Probe(key);
    return slots_[idx].first == kEmptyKey ? nullptr : &slots_[idx].second;
  }

  bool Contains(Key key) const { return Find(key) != nullptr; }

  /// Invokes fn(key, value) for every entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (slot.first != kEmptyKey) fn(slot.first, slot.second);
    }
  }

 private:
  static uint64_t Mix(uint64_t x) {
    // SplitMix64 finalizer: full-avalanche over the key bits.
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  void Init(size_t expected_size) {
    size_t cap = 16;
    while (cap * 7 < (expected_size + 1) * 8) cap <<= 1;
    slots_.assign(cap, {kEmptyKey, Value{}});
    size_ = 0;
  }

  size_t Probe(Key key) const {
    const size_t mask = slots_.size() - 1;
    size_t idx = static_cast<size_t>(Mix(static_cast<uint64_t>(key))) & mask;
    while (slots_[idx].first != kEmptyKey && slots_[idx].first != key) {
      idx = (idx + 1) & mask;
    }
    return idx;
  }

  void Grow() {
    std::pmr::vector<std::pair<Key, Value>> old = std::move(slots_);
    slots_.assign(old.size() * 2, {kEmptyKey, Value{}});
    size_ = 0;
    for (auto& slot : old) {
      if (slot.first != kEmptyKey) {
        const size_t idx = Probe(slot.first);
        slots_[idx] = std::move(slot);
        ++size_;
      }
    }
  }

  std::pmr::vector<std::pair<Key, Value>> slots_;
  size_t size_ = 0;
};

}  // namespace swope

#endif  // SWOPE_COMMON_FLAT_HASH_MAP_H_
