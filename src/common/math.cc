#include "src/common/math.h"

namespace swope {

double EntropyFromCounts(const uint64_t* counts, size_t num_counts,
                         uint64_t total) {
  if (total == 0) return 0.0;
  double sum_xlog2x = 0.0;
  for (size_t i = 0; i < num_counts; ++i) {
    if (counts[i] > 0) sum_xlog2x += XLog2X(static_cast<double>(counts[i]));
  }
  return EntropyFromXLog2XSum(sum_xlog2x, total);
}

double EntropyFromCounts(const std::vector<uint64_t>& counts, uint64_t total) {
  return EntropyFromCounts(counts.data(), counts.size(), total);
}

double EntropyFromXLog2XSum(double sum_xlog2x, uint64_t total) {
  if (total == 0) return 0.0;
  const double n = static_cast<double>(total);
  double h = std::log2(n) - sum_xlog2x / n;
  // Floating point noise can push an exactly-zero entropy slightly negative.
  return h < 0.0 ? 0.0 : h;
}

double XLog2XIncrement(uint64_t old_count) {
  // Function-local static reference: built on first use, never destroyed
  // (trivially reclaimed at process exit).
  static const std::vector<double>& kTable = *[] {
    // NOLINTNEXTLINE(swope-naked-new): leaky singleton, no destructor race
    auto* table = new std::vector<double>(internal_math::kXLog2XTableSize);
    for (uint64_t c = 0; c < table->size(); ++c) {
      (*table)[c] = XLog2X(static_cast<double>(c + 1)) -
                    XLog2X(static_cast<double>(c));
    }
    return table;
  }();
  if (old_count < kTable.size()) return kTable[old_count];
  return XLog2X(static_cast<double>(old_count + 1)) -
         XLog2X(static_cast<double>(old_count));
}

double EntropyOfPmf(const std::vector<double>& pmf) {
  double mass = 0.0;
  for (double p : pmf) {
    if (p > 0.0) mass += p;
  }
  if (mass <= 0.0) return 0.0;
  double h = 0.0;
  for (double p : pmf) {
    if (p > 0.0) {
      const double q = p / mass;
      h -= XLog2X(q);
    }
  }
  return h < 0.0 ? 0.0 : h;
}

double BinaryEntropy(double p) {
  p = Clamp(p, 0.0, 1.0);
  return -XLog2X(p) - XLog2X(1.0 - p);
}

}  // namespace swope
