// AllocationCount: test-only heap-allocation counting hook.
//
// Production binaries have no interposer, so AllocationCount() is a
// constant 0 and the per-query `allocs` field in serve's profile output
// reads 0. Test binaries that interpose global operator new (tests/
// alloc_regression_test.cc) provide a strong definition that returns
// the interposer's running allocation count; the weak default here
// yields to it at link time. This is how the zero-allocation serving
// contract is observable end-to-end without any production-path cost.

#ifndef SWOPE_COMMON_ALLOC_HOOK_H_
#define SWOPE_COMMON_ALLOC_HOOK_H_

#include <cstdint>

namespace swope {

/// Heap allocations observed so far in this process by the linked
/// interposer; 0 forever when none is linked. Monotone; meaningful only
/// as a delta across a region of interest.
uint64_t AllocationCount();

}  // namespace swope

#endif  // SWOPE_COMMON_ALLOC_HOOK_H_
