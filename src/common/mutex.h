// Mutex / MutexLock / CondVar: annotated lock primitives.
//
// Clang's thread-safety analysis is attribute-driven: it can only track
// acquisitions of types annotated as capabilities. libstdc++'s std::mutex
// and std::lock_guard carry no such attributes, so code locking them is
// invisible to the analysis and every GUARDED_BY check silently degrades.
// These thin wrappers (the abseil/Chromium idiom) restore the contract:
// under Clang, locking and guarded access are proved consistent at compile
// time; under other compilers they compile to the std primitives with zero
// overhead.
//
// Lock discipline in this repo (enforced by tools/analyze, pass `locks`):
//   - shared mutable state lives next to a swope::Mutex member and is
//     GUARDED_BY(mutex_); raw std::mutex members are banned outside this
//     header,
//   - methods that acquire their own mutex declare REQUIRES(!mutex_)
//     (negative capability: proves non-reentrancy, so double-lock is a
//     compile error under -Wthread-safety-negative),
//   - methods called with the lock held declare REQUIRES(mutex_).

#ifndef SWOPE_COMMON_MUTEX_H_
#define SWOPE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace swope {

/// A non-reentrant exclusive lock. Satisfies BasicLockable, so it works
/// directly with CondVar below. Prefer MutexLock over manual lock/unlock.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII guard: acquires on construction, releases on destruction.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait/WaitFor take the Mutex
/// itself (not a guard) so the analysis can express that the caller must
/// already hold it; the wait atomically releases and reacquires.
///
/// Waits are intentionally predicate-free: callers loop
///     while (!condition) cv_.Wait(mutex_);
/// so the guarded reads in `condition` stay inside the caller's own
/// REQUIRES(mutex_) scope instead of an opaque lambda.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  template <typename Rep, typename Period>
  void WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    cv_.wait_for(mu, timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // condition_variable_any works with any BasicLockable, so it can release
  // the annotated Mutex directly; the unlock/lock calls it makes live in
  // system headers, where the analysis is silent by design.
  std::condition_variable_any cv_;
};

}  // namespace swope

#endif  // SWOPE_COMMON_MUTEX_H_
