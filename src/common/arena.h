// Arena: a bump-pointer allocator with checkpoint/rewind, the backing
// store for per-query memory (src/core/query_memory.h).
//
// Allocation is a pointer increment into geometrically growing blocks;
// deallocation is a no-op. Rewind() moves the bump pointer back to a
// checkpoint (or the start) while *keeping every block*, so an arena
// that has served one query re-serves the next identically shaped query
// without touching the heap at all -- the steady-state zero-allocation
// contract the engine's interposer test pins (tests/
// alloc_regression_test.cc). This is the classic linear-arena idiom:
// allocation cost of a stack, lifetime management of a region.
//
// The arena doubles as a std::pmr::memory_resource, so standard
// containers participate directly:
//
//   Arena arena;
//   std::pmr::vector<uint64_t> counts(&arena);   // grows into the arena
//   arena.Rewind();                              // all of it reclaimed
//
// Containers backed by an arena MUST NOT outlive the rewind that
// reclaims their storage; the engine enforces this by tying rewinds to
// the QueryMemory pool lease (the response holds the lease, the pool
// rewinds only after the response is destroyed or released).
//
// Thread safety: Allocate is mutex-guarded so concurrent shard tasks
// may grow arena-backed containers; the lock is uncontended in the
// steady state because warm containers allocate nothing. Rewind and the
// byte accessors must not race Allocate (the pool calls them only
// between queries).

#ifndef SWOPE_COMMON_ARENA_H_
#define SWOPE_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace swope {

/// Bump-pointer arena over geometrically growing heap blocks. See the
/// file comment for the lifetime contract.
class Arena : public std::pmr::memory_resource {
 public:
  /// First block size; later blocks double until kMaxBlockBytes.
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;
  static constexpr size_t kMaxBlockBytes = 16 * 1024 * 1024;

  explicit Arena(size_t first_block_bytes = kDefaultBlockBytes)
      : first_block_bytes_(first_block_bytes == 0 ? kDefaultBlockBytes
                                                  : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `alignment` (a power of two).
  /// Never returns nullptr: exhausting the current block chains a new
  /// one (the only path that touches the heap).
  void* Allocate(size_t bytes, size_t alignment) REQUIRES(!mutex_) {
    MutexLock lock(mutex_);
    return AllocateLocked(bytes, alignment);
  }

  /// A position in the allocation stream. Valid until a Rewind to an
  /// earlier position.
  struct Checkpoint {
    size_t block = 0;
    size_t used = 0;
  };

  Checkpoint Mark() const REQUIRES(!mutex_) {
    MutexLock lock(mutex_);
    return {current_, blocks_.empty() ? 0 : blocks_[current_].used};
  }

  /// Releases everything allocated after `mark`, keeping all blocks for
  /// reuse. Every pointer handed out after the mark becomes dangling.
  void Rewind(const Checkpoint& mark) REQUIRES(!mutex_) {
    MutexLock lock(mutex_);
    if (blocks_.empty()) return;
    for (size_t b = mark.block + 1; b < blocks_.size(); ++b) {
      blocks_[b].used = 0;
    }
    blocks_[mark.block].used = mark.used;
    current_ = mark.block;
  }

  /// Releases every allocation, keeping all blocks for reuse.
  void Rewind() REQUIRES(!mutex_) { Rewind(Checkpoint{0, 0}); }

  /// Heap bytes reserved across all blocks (capacity, not live bytes);
  /// what the swope_query_arena_bytes gauge reports.
  size_t BytesReserved() const REQUIRES(!mutex_) {
    MutexLock lock(mutex_);
    size_t total = 0;
    for (const Block& block : blocks_) total += block.capacity;
    return total;
  }

  /// Bytes currently allocated (since the last full rewind).
  size_t BytesUsed() const REQUIRES(!mutex_) {
    MutexLock lock(mutex_);
    size_t total = 0;
    for (size_t b = 0; b <= current_ && b < blocks_.size(); ++b) {
      total += blocks_[b].used;
    }
    return total;
  }

  /// The arena as a polymorphic memory resource (it is one; this spells
  /// the intent at call sites).
  std::pmr::memory_resource* resource() { return this; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  void* AllocateLocked(size_t bytes, size_t alignment) REQUIRES(mutex_) {
    if (alignment == 0) alignment = 1;
    // Try the current block, then any already-reserved successor (a
    // rewound arena re-walks its block chain without heap traffic).
    while (current_ < blocks_.size()) {
      Block& block = blocks_[current_];
      // Align the absolute address, not the offset: block bases only
      // guarantee operator-new alignment.
      const uintptr_t base = reinterpret_cast<uintptr_t>(block.data.get());
      const size_t aligned =
          ((base + block.used + (alignment - 1)) & ~(alignment - 1)) - base;
      if (aligned + bytes <= block.capacity) {
        block.used = aligned + bytes;
        return block.data.get() + aligned;
      }
      if (current_ + 1 >= blocks_.size()) break;
      ++current_;
      blocks_[current_].used = 0;
    }
    // Chain a new block: doubling, bounded, and always large enough for
    // this request plus its worst-case alignment slack.
    size_t capacity = blocks_.empty()
                          ? first_block_bytes_
                          : std::min(blocks_.back().capacity * 2,
                                     kMaxBlockBytes);
    if (capacity < bytes + alignment) capacity = bytes + alignment;
    Block block;
    block.data = std::make_unique<std::byte[]>(capacity);
    block.capacity = capacity;
    blocks_.push_back(std::move(block));
    current_ = blocks_.size() - 1;
    Block& fresh = blocks_[current_];
    const uintptr_t base = reinterpret_cast<uintptr_t>(fresh.data.get());
    const size_t aligned =
        ((base + (alignment - 1)) & ~(alignment - 1)) - base;
    fresh.used = aligned + bytes;
    return fresh.data.get() + aligned;
  }

  void* do_allocate(size_t bytes, size_t alignment) override
      REQUIRES(!mutex_) {
    return Allocate(bytes, alignment);
  }
  void do_deallocate(void*, size_t, size_t) override {
    // Bump allocator: individual frees are no-ops; Rewind reclaims.
  }
  bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  const size_t first_block_bytes_;
  mutable Mutex mutex_;
  std::vector<Block> blocks_ GUARDED_BY(mutex_);
  size_t current_ GUARDED_BY(mutex_) = 0;
};

}  // namespace swope

#endif  // SWOPE_COMMON_ARENA_H_
