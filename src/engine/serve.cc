#include "src/engine/serve.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace swope {

namespace {

// Shortest round-trippable rendering of a double. %.17g is exact for IEEE
// doubles, so equal values always render identically (the determinism
// regression test relies on this).
std::string JsonDouble(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

struct ParsedRequest {
  std::string op;
  std::map<std::string, std::string> args;
};

Result<ParsedRequest> ParseRequest(const std::string& line) {
  std::istringstream stream(line);
  ParsedRequest request;
  stream >> request.op;
  std::string token;
  while (stream >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("malformed argument '" + token +
                                     "' (want key=value)");
    }
    request.args[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return request;
}

Result<uint64_t> ParseUint(const std::string& text, const std::string& key) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("argument " + key +
                                   " wants an unsigned integer, got '" +
                                   text + "'");
  }
  return static_cast<uint64_t>(value);
}

Result<double> ParseDouble(const std::string& text, const std::string& key) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("argument " + key +
                                   " wants a number, got '" + text + "'");
  }
  return value;
}

// Splits one ingest row on commas (no quoting: the line protocol itself
// cannot carry spaces or newlines inside a value). Empty cells are kept.
std::vector<std::string> SplitRow(const std::string& text) {
  std::vector<std::string> cells;
  size_t begin = 0;
  while (true) {
    const size_t comma = text.find(',', begin);
    if (comma == std::string::npos) {
      cells.push_back(text.substr(begin));
      return cells;
    }
    cells.push_back(text.substr(begin, comma - begin));
    begin = comma + 1;
  }
}

// Collects ingest rows from `row=` (one inline row) and/or `csv=` (a
// headerless file, one comma-separated row per line; blank lines and
// #-comments are skipped).
Result<std::vector<std::vector<std::string>>> IngestRowsFromArgs(
    const std::map<std::string, std::string>& args) {
  std::vector<std::vector<std::string>> rows;
  if (auto it = args.find("row"); it != args.end()) {
    rows.push_back(SplitRow(it->second));
  }
  if (auto it = args.find("csv"); it != args.end()) {
    std::ifstream file(it->second);
    if (!file) {
      return Status::IOError("ingest: cannot open '" + it->second + "'");
    }
    std::string line;
    while (std::getline(file, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const size_t start = line.find_first_not_of(" \t");
      if (start == std::string::npos || line[start] == '#') continue;
      rows.push_back(SplitRow(line));
    }
  }
  if (rows.empty()) {
    return Status::InvalidArgument(
        "ingest: row=v1,v2,... or csv=<path> is required");
  }
  return rows;
}

Result<QuerySpec> SpecFromArgs(
    const std::map<std::string, std::string>& args) {
  QuerySpec spec;
  auto get = [&args](const std::string& key) -> const std::string* {
    auto it = args.find(key);
    return it == args.end() ? nullptr : &it->second;
  };
  const std::string* dataset = get("dataset");
  if (dataset == nullptr) {
    return Status::InvalidArgument("query: dataset=<id> is required");
  }
  spec.dataset = *dataset;
  const std::string* kind = get("kind");
  if (kind == nullptr) {
    return Status::InvalidArgument("query: kind=<kind> is required");
  }
  SWOPE_ASSIGN_OR_RETURN(spec.kind, ParseQueryKind(*kind));
  if (const std::string* v = get("k")) {
    SWOPE_ASSIGN_OR_RETURN(uint64_t k, ParseUint(*v, "k"));
    spec.k = static_cast<size_t>(k);
  }
  if (const std::string* v = get("eta")) {
    SWOPE_ASSIGN_OR_RETURN(spec.eta, ParseDouble(*v, "eta"));
  }
  if (const std::string* v = get("target")) spec.target = *v;
  if (const std::string* v = get("epsilon")) {
    SWOPE_ASSIGN_OR_RETURN(spec.options.epsilon,
                           ParseDouble(*v, "epsilon"));
  }
  if (const std::string* v = get("seed")) {
    SWOPE_ASSIGN_OR_RETURN(spec.options.seed, ParseUint(*v, "seed"));
  }
  if (const std::string* v = get("pf")) {
    SWOPE_ASSIGN_OR_RETURN(spec.options.failure_probability,
                           ParseDouble(*v, "pf"));
  }
  if (const std::string* v = get("m0")) {
    SWOPE_ASSIGN_OR_RETURN(spec.options.initial_sample_size,
                           ParseUint(*v, "m0"));
  }
  if (const std::string* v = get("growth")) {
    SWOPE_ASSIGN_OR_RETURN(spec.options.growth_factor,
                           ParseDouble(*v, "growth"));
  }
  if (const std::string* v = get("sketch-threshold")) {
    SWOPE_ASSIGN_OR_RETURN(uint64_t threshold,
                           ParseUint(*v, "sketch-threshold"));
    spec.options.sketch_threshold = static_cast<uint32_t>(threshold);
  }
  if (const std::string* v = get("sketch-epsilon")) {
    SWOPE_ASSIGN_OR_RETURN(spec.options.sketch_epsilon,
                           ParseDouble(*v, "sketch-epsilon"));
  }
  if (const std::string* v = get("sequential")) {
    spec.options.sequential_sampling = (*v == "1" || *v == "true");
  }
  if (const std::string* v = get("timeout-ms")) {
    SWOPE_ASSIGN_OR_RETURN(spec.timeout_ms, ParseUint(*v, "timeout-ms"));
  }
  if (const std::string* v = get("trace")) {
    spec.trace = (*v == "1" || *v == "true");
  }
  if (const std::string* v = get("profile")) {
    spec.profile = (*v == "1" || *v == "true");
  }
  return spec;
}

std::string CountersToJson(const EngineCounters& counters,
                           const DatasetRegistry::Stats& registry,
                           const EngineConfig& config) {
  std::string json = "{\"ok\":true,\"op\":\"stats\"";
  // Execution geometry first: which scheduler and how much intra-query
  // parallelism this engine runs with (docs/SHARDING.md).
  json += ",\"pool_mode\":\"";
  json += PoolModeName(config.pool_mode);
  json += "\",\"intra_query_threads\":" +
          std::to_string(config.intra_query_threads);
  auto add = [&json](const char* name, uint64_t value) {
    json += ",\"";
    json += name;
    json += "\":" + std::to_string(value);
  };
  add("queries_started", counters.queries_started);
  add("queries_ok", counters.queries_ok);
  add("queries_failed", counters.queries_failed);
  add("result_cache_hits", counters.result_cache_hits);
  add("result_cache_misses", counters.result_cache_misses);
  add("permutation_cache_hits", counters.permutation_cache_hits);
  add("permutation_cache_misses", counters.permutation_cache_misses);
  add("rows_sampled", counters.rows_sampled);
  add("cancelled", counters.cancelled);
  add("deadline_exceeded", counters.deadline_exceeded);
  add("registry_evictions", counters.registry_evictions);
  add("admission_waits", counters.admission_waits);
  add("rejected", counters.rejected);
  add("pool_steals", counters.pool_steals);
  add("queries_sketch", counters.queries_sketch);
  add("queries_exact", counters.queries_exact);
  add("ingest_rows", counters.ingest_rows);
  add("resident_datasets", registry.resident_datasets);
  add("resident_bytes", registry.resident_bytes);
  add("mapped_bytes", registry.mapped_bytes);
  add("sketch_bytes", registry.sketch_bytes);
  add("events_logged", counters.events_logged);
  // Worker utilization (busy fraction in [0, 1] plus the raw run/idle
  // totals). intra_* are 0 when intra_query_threads <= 1.
  auto add_double = [&json](const char* name, double value) {
    json += ",\"";
    json += name;
    json += "\":" + JsonDouble(value);
  };
  add_double("executor_utilization", counters.executor_utilization);
  add_double("executor_run_ms", counters.executor_run_ms);
  add_double("executor_idle_ms", counters.executor_idle_ms);
  add_double("intra_utilization", counters.intra_utilization);
  add_double("intra_run_ms", counters.intra_run_ms);
  add_double("intra_idle_ms", counters.intra_idle_ms);
  json += "}";
  return json;
}

std::string EventsToJson(const EventLog& log, size_t max_events) {
  const std::vector<EventLog::Event> events = log.Snapshot(max_events);
  std::string json = "{\"ok\":true,\"op\":\"events\",\"total\":" +
                     std::to_string(log.TotalAppended());
  json += ",\"events\":[";
  bool first = true;
  for (const EventLog::Event& event : events) {
    if (!first) json += ",";
    first = false;
    json += "{\"seq\":" + std::to_string(event.sequence);
    json += ",\"kind\":\"";
    json += EventKindName(event.kind);
    json += "\",\"dataset\":\"" + JsonEscape(event.dataset) + "\"";
    json += ",\"wall_ms\":" + JsonDouble(event.wall_ms);
    json += ",\"detail\":\"" + JsonEscape(event.detail) + "\"}";
  }
  json += "]}";
  return json;
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += static_cast<char>(c);
        }
    }
  }
  return escaped;
}

std::string QueryResponseToJson(const QueryResponse& response) {
  std::string json = "{\"ok\":true,\"op\":\"query\",\"kind\":\"";
  json += QueryKindToString(response.kind);
  json += "\",\"cache_hit\":";
  json += response.cache_hit ? "true" : "false";
  json += ",\"items\":[";
  bool first = true;
  for (const AttributeScore& item : response.items) {
    if (!first) json += ",";
    first = false;
    json += "{\"index\":" + std::to_string(item.index);
    json += ",\"name\":\"" + JsonEscape(item.name) + "\"";
    json += ",\"estimate\":" + JsonDouble(item.estimate);
    json += ",\"lower\":" + JsonDouble(item.lower);
    json += ",\"upper\":" + JsonDouble(item.upper) + "}";
  }
  json += "],\"stats\":{";
  json += "\"final_sample_size\":" +
          std::to_string(response.stats.final_sample_size);
  json += ",\"initial_sample_size\":" +
          std::to_string(response.stats.initial_sample_size);
  json += ",\"iterations\":" + std::to_string(response.stats.iterations);
  json += ",\"cells_scanned\":" +
          std::to_string(response.stats.cells_scanned);
  json += ",\"candidates_remaining\":" +
          std::to_string(response.stats.candidates_remaining);
  json += ",\"sketch_candidates\":" +
          std::to_string(response.stats.sketch_candidates);
  json += ",\"path\":\"";
  json += response.stats.sketch_candidates > 0 ? "sketch" : "exact";
  json += "\",\"exhausted_dataset\":";
  json += response.stats.exhausted_dataset ? "true" : "false";
  json += "}";
  if (response.trace != nullptr) {
    json += ",\"trace\":[";
    bool first_round = true;
    for (const RoundTrace& round : response.trace->rounds()) {
      if (!first_round) json += ",";
      first_round = false;
      json += "{\"round\":" + std::to_string(round.round);
      json += ",\"m\":" + std::to_string(round.sample_size);
      json += ",\"lambda\":" + JsonDouble(round.lambda);
      json += ",\"max_bias\":" + JsonDouble(round.max_bias);
      json += ",\"active\":" + std::to_string(round.active_before);
      json += ",\"decided\":" + std::to_string(round.decided);
      json += ",\"cells\":" + std::to_string(round.cells_scanned);
      json += ",\"ms\":" + JsonDouble(round.wall_ms) + "}";
    }
    json += "]";
  }
  if (response.profile != nullptr) {
    // Stage rows render in enum order, only for stages that recorded
    // time, so the block is deterministic and omits dead stages.
    json += ",\"profile\":{\"stages\":[";
    bool first_stage = true;
    for (size_t s = 0; s < kNumStages; ++s) {
      const Stage stage = static_cast<Stage>(s);
      const uint64_t calls = response.profile->StageCalls(stage);
      if (calls == 0) continue;
      if (!first_stage) json += ",";
      first_stage = false;
      json += "{\"stage\":\"";
      json += StageName(stage);
      json += "\",\"calls\":" + std::to_string(calls);
      json += ",\"ms\":" + JsonDouble(response.profile->StageMs(stage)) +
              "}";
    }
    json += "],\"stage_sum_ms\":" +
            JsonDouble(response.profile->StageSumMs());
    json += ",\"wall_ms\":" + JsonDouble(response.profile->WallMs());
    // Heap allocations the query performed: 0 unless a counting
    // interposer is linked (src/common/alloc_hook.h).
    json +=
        ",\"allocs\":" + std::to_string(response.profile->Allocs()) + "}";
  }
  json += "}";
  return json;
}

std::string StatusToJson(const Status& status) {
  std::string json = "{\"ok\":false,\"code\":\"";
  json += JsonEscape(std::string(StatusCodeToString(status.code())));
  json += "\",\"error\":\"" + JsonEscape(status.message()) + "\"}";
  return json;
}

std::string HandleRequestLine(QueryEngine& engine, const std::string& line,
                              bool* quit) {
  *quit = false;
  auto request = ParseRequest(line);
  if (!request.ok()) return StatusToJson(request.status());

  if (request->op == "quit") {
    *quit = true;
    return "{\"ok\":true,\"op\":\"quit\"}";
  }
  if (request->op == "stats") {
    return CountersToJson(engine.GetCounters(),
                          engine.registry().GetStats(), engine.config());
  }
  if (request->op == "events") {
    size_t max_events = SIZE_MAX;
    if (auto it = request->args.find("n"); it != request->args.end()) {
      auto parsed = ParseUint(it->second, "n");
      if (!parsed.ok()) return StatusToJson(parsed.status());
      max_events = static_cast<size_t>(*parsed);
    }
    return EventsToJson(engine.events(), max_events);
  }
  if (request->op == "metrics") {
    // GetCounters refreshes the worker-utilization gauges; the snapshot
    // itself is discarded.
    (void)engine.GetCounters();
    // Both exposition forms in one response: the Prometheus text is a
    // JSON string (scrape adapters unescape it), the snapshot is plain
    // nested JSON.
    std::string json = "{\"ok\":true,\"op\":\"metrics\",\"prometheus\":\"";
    json += JsonEscape(engine.metrics().RenderPrometheusText());
    json += "\",\"snapshot\":" + engine.metrics().RenderJson() + "}";
    return json;
  }
  if (request->op == "datasets") {
    std::string json = "{\"ok\":true,\"op\":\"datasets\",\"names\":[";
    bool first = true;
    for (const std::string& name : engine.registry().Names()) {
      if (!first) json += ",";
      first = false;
      json += "\"" + JsonEscape(name) + "\"";
    }
    json += "]}";
    return json;
  }
  if (request->op == "load") {
    auto name = request->args.find("name");
    auto path = request->args.find("path");
    if (name == request->args.end() || path == request->args.end()) {
      return StatusToJson(Status::InvalidArgument(
          "load: name=<id> and path=<file> are required"));
    }
    uint32_t max_support = 0;
    if (auto it = request->args.find("max-support");
        it != request->args.end()) {
      auto parsed = ParseUint(it->second, "max-support");
      if (!parsed.ok()) return StatusToJson(parsed.status());
      max_support = static_cast<uint32_t>(*parsed);
    }
    double sketch_epsilon = 0.0;
    if (auto it = request->args.find("sketch-epsilon");
        it != request->args.end()) {
      auto parsed = ParseDouble(it->second, "sketch-epsilon");
      if (!parsed.ok()) return StatusToJson(parsed.status());
      sketch_epsilon = *parsed;
    }
    uint32_t sketch_threshold = 1000;
    if (auto it = request->args.find("sketch-threshold");
        it != request->args.end()) {
      auto parsed = ParseUint(it->second, "sketch-threshold");
      if (!parsed.ok()) return StatusToJson(parsed.status());
      sketch_threshold = static_cast<uint32_t>(*parsed);
    }
    bool mmap = false;
    if (auto it = request->args.find("mmap"); it != request->args.end()) {
      mmap = it->second == "1" || it->second == "true";
    }
    const Status status =
        engine.RegisterDatasetFile(name->second, path->second, max_support,
                                   sketch_epsilon, sketch_threshold, mmap);
    if (!status.ok()) return StatusToJson(status);
    auto dataset = engine.registry().Get(name->second);
    if (!dataset.ok()) return StatusToJson(dataset.status());
    std::string json = "{\"ok\":true,\"op\":\"load\",\"name\":\"" +
                       JsonEscape(name->second) + "\"";
    json += ",\"rows\":" + std::to_string((*dataset)->table.num_rows());
    json +=
        ",\"columns\":" + std::to_string((*dataset)->table.num_columns());
    json += ",\"shards\":" + std::to_string((*dataset)->table.num_shards());
    json +=
        ",\"shard_size\":" + std::to_string((*dataset)->table.shard_size());
    // The byte split a mapped load exists for: resident is heap (what
    // the registry budget charges), mapped stays OS-paged.
    json +=
        ",\"resident_bytes\":" + std::to_string((*dataset)->memory_bytes);
    json += ",\"mapped_bytes\":" + std::to_string((*dataset)->mapped_bytes);
    json +=
        ",\"fingerprint\":" + std::to_string((*dataset)->fingerprint) + "}";
    return json;
  }
  if (request->op == "unload") {
    auto name = request->args.find("name");
    if (name == request->args.end()) {
      return StatusToJson(
          Status::InvalidArgument("unload: name=<id> is required"));
    }
    const Status status = engine.RemoveDataset(name->second);
    if (!status.ok()) return StatusToJson(status);
    return "{\"ok\":true,\"op\":\"unload\",\"name\":\"" +
           JsonEscape(name->second) + "\"}";
  }
  if (request->op == "ingest") {
    auto name = request->args.find("dataset");
    if (name == request->args.end()) {
      return StatusToJson(
          Status::InvalidArgument("ingest: dataset=<id> is required"));
    }
    auto rows = IngestRowsFromArgs(request->args);
    if (!rows.ok()) return StatusToJson(rows.status());
    const Status status = engine.Ingest(name->second, *rows);
    if (!status.ok()) return StatusToJson(status);
    auto dataset = engine.registry().Get(name->second);
    if (!dataset.ok()) return StatusToJson(dataset.status());
    std::string json = "{\"ok\":true,\"op\":\"ingest\",\"dataset\":\"" +
                       JsonEscape(name->second) + "\"";
    json += ",\"appended\":" + std::to_string(rows->size());
    json += ",\"rows\":" + std::to_string((*dataset)->table.num_rows());
    json +=
        ",\"fingerprint\":" + std::to_string((*dataset)->fingerprint) + "}";
    return json;
  }
  if (request->op == "query") {
    auto spec = SpecFromArgs(request->args);
    if (!spec.ok()) return StatusToJson(spec.status());
    auto response = engine.Run(*spec);
    if (!response.ok()) return StatusToJson(response.status());
    return QueryResponseToJson(*response);
  }
  return StatusToJson(Status::InvalidArgument(
      "unknown request '" + request->op +
      "' (want load/query/ingest/unload/datasets/stats/events/metrics/"
      "quit)"));
}

uint64_t ServeLoop(QueryEngine& engine, std::istream& in,
                   std::ostream& out) {
  uint64_t failures = 0;
  std::string line;
  while (std::getline(in, line)) {
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    bool quit = false;
    const std::string response = HandleRequestLine(engine, line, &quit);
    out << response << "\n" << std::flush;
    if (response.rfind("{\"ok\":false", 0) == 0) ++failures;
    if (quit) break;
  }
  return failures;
}

}  // namespace swope
