// QuerySpec: one uniform description of every query the engine serves.
//
// A spec names a registered dataset, a query kind (the four SWOPE
// algorithms of the paper plus the NMI extensions), the kind-specific
// parameter (k or eta), an optional target attribute, and the shared
// QueryOptions. Specs are plain values: parse one from a request line,
// validate it, then hand it to QueryEngine::Run.
//
// Canonicalization (ResolveSpec) maps a spec to the exact inputs the
// driver will see -- target name resolved to an index, k clamped, the
// failure probability resolved against N -- and derives a canonical cache
// key, so that syntactically different but semantically equal specs share
// one ResultCache entry.

#ifndef SWOPE_ENGINE_QUERY_SPEC_H_
#define SWOPE_ENGINE_QUERY_SPEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/core/query_options.h"
#include "src/table/table.h"

namespace swope {

/// The query families the engine dispatches.
enum class QueryKind : int {
  kEntropyTopK = 0,
  kEntropyFilter = 1,
  kMiTopK = 2,
  kMiFilter = 3,
  kNmiTopK = 4,
  kNmiFilter = 5,
};

/// Stable wire name of a kind ("entropy-topk", "mi-filter", ...).
std::string_view QueryKindToString(QueryKind kind);

/// Parses a wire name; InvalidArgument on unknown names.
Result<QueryKind> ParseQueryKind(std::string_view text);

/// True for the three top-k kinds (which use `k`); filtering kinds use
/// `eta` instead.
bool IsTopKKind(QueryKind kind);

/// True for the MI / NMI kinds (which require `target`).
bool NeedsTarget(QueryKind kind);

/// A fully parameterized query request.
struct QuerySpec {
  /// Registry name of the dataset to query.
  std::string dataset;

  QueryKind kind = QueryKind::kEntropyTopK;

  /// Top-k kinds: number of attributes requested (>= 1; clamped to the
  /// table's attribute count at resolution).
  size_t k = 0;

  /// Filtering kinds: score threshold eta (> 0; additionally <= 1 for
  /// NMI filtering).
  double eta = 0.0;

  /// MI / NMI kinds: target attribute, by column name or decimal index
  /// (names win when a column is literally named like a number).
  std::string target;

  /// Sampling parameters; QueryOptions::shared_order, ::control, and
  /// ::pool are engine-managed and must be left null on submitted specs.
  QueryOptions options;

  /// Wall-clock budget in milliseconds; 0 means no deadline.
  uint64_t timeout_ms = 0;

  /// Requests a per-round QueryTrace on the response. Purely
  /// observational: traced and untraced runs compute identical answers,
  /// so this is NOT part of the canonical cache key. (A cache hit serves
  /// no trace -- no rounds ran.) QueryOptions::trace itself is
  /// engine-managed and must stay null on submitted specs.
  bool trace = false;

  /// Requests a per-stage StageProfiler breakdown on the response. Purely
  /// observational, like `trace`: profiled and unprofiled runs compute
  /// identical answers, so this is NOT part of the canonical cache key.
  /// (A cache hit serves no profile -- no stages ran.)
  /// QueryOptions::profiler itself is engine-managed and must stay null
  /// on submitted specs.
  bool profile = false;

  /// Table-independent validation (kind/parameter coherence plus
  /// QueryOptions::Validate).
  Status Validate() const;
};

/// A spec bound to a concrete table: what QueryEngine actually executes.
struct ResolvedSpec {
  QueryKind kind = QueryKind::kEntropyTopK;
  /// Clamped to the table (h for entropy top-k, h - 1 for MI/NMI top-k).
  size_t k = 0;
  double eta = 0.0;
  /// Resolved target column index (0 when the kind takes no target).
  size_t target = 0;
  /// options.failure_probability is resolved against the table's N, so
  /// the canonical key of "0 = paper default" and an explicit 1/N agree.
  QueryOptions options;
  uint64_t timeout_ms = 0;
  /// Echo of QuerySpec::trace (not part of canonical_key).
  bool trace = false;
  /// Echo of QuerySpec::profile (not part of canonical_key).
  bool profile = false;
  /// Canonical cache key; equal keys <=> the driver sees equal inputs.
  std::string canonical_key;
};

/// Validates `spec` against `table` and produces the resolved form plus
/// its canonical key. Fails with InvalidArgument / NotFound when the spec
/// cannot apply to this table (bad target, empty table, ...).
Result<ResolvedSpec> ResolveSpec(const QuerySpec& spec, const Table& table);

}  // namespace swope

#endif  // SWOPE_ENGINE_QUERY_SPEC_H_
