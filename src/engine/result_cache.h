// ResultCache: memoizes certified query answers.
//
// Every SWOPE run is a deterministic function of (table contents, resolved
// spec): the permutation comes from the spec's seed, and the adaptive
// stopping rule is data-driven. A cached answer is therefore *identical*
// to what re-running the query would produce -- including its epsilon/p_f
// certification -- so serving it costs zero sampled rows and loses
// nothing (docs/ENGINE.md spells out the soundness argument). Entries are
// keyed by (table fingerprint, canonical spec key) and evicted LRU beyond
// a configurable capacity.

#ifndef SWOPE_ENGINE_RESULT_CACHE_H_
#define SWOPE_ENGINE_RESULT_CACHE_H_

#include <cstdint>
#include <memory>
#include <memory_resource>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/core/query_result.h"

namespace swope {

class Counter;
class Gauge;
class MetricsRegistry;

/// The cached payload: the answer items plus the stats of the run that
/// produced them (so a cache hit can still report the original cost).
/// `items` is pmr so an arena-backed response vector copy-constructs
/// straight into it; the copy itself always lands on the default heap
/// resource (pmr copy construction never inherits the source arena), so
/// cached answers are self-owned and safe past the query's rewind.
struct CachedAnswer {
  std::pmr::vector<AttributeScore> items;
  QueryStats stats;
};

/// Thread-safe LRU map from (fingerprint, canonical spec) to answers.
class ResultCache {
 public:
  /// Keeps at most `capacity` entries; 0 disables caching entirely.
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached answer or null; a hit refreshes recency.
  std::shared_ptr<const CachedAnswer> Lookup(uint64_t fingerprint,
                                             const std::string& spec_key)
      REQUIRES(!mutex_);

  /// Inserts (or refreshes) an entry, evicting LRU entries over capacity.
  void Insert(uint64_t fingerprint, const std::string& spec_key,
              CachedAnswer answer) REQUIRES(!mutex_);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };
  Stats GetStats() const REQUIRES(!mutex_);

  /// Mirrors hit/miss/eviction counts and the entry count into `metrics`
  /// under the label {cache="result"}. Call once, before concurrent use;
  /// the registry must outlive the cache.
  void BindMetrics(MetricsRegistry* metrics) REQUIRES(!mutex_);

 private:
  struct Entry {
    std::shared_ptr<const CachedAnswer> answer;
    uint64_t last_used = 0;
  };

  static std::string MakeKey(uint64_t fingerprint,
                             const std::string& spec_key);

  void EvictToCapacity() REQUIRES(mutex_);

  const size_t capacity_;
  mutable Mutex mutex_;
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mutex_);
  uint64_t tick_ GUARDED_BY(mutex_) = 0;
  uint64_t hits_ GUARDED_BY(mutex_) = 0;
  uint64_t misses_ GUARDED_BY(mutex_) = 0;
  uint64_t insertions_ GUARDED_BY(mutex_) = 0;
  uint64_t evictions_ GUARDED_BY(mutex_) = 0;

  /// Optional metric mirrors (null when unbound). Updated under mutex_,
  /// alongside the local counters they shadow.
  Counter* hits_metric_ GUARDED_BY(mutex_) = nullptr;
  Counter* misses_metric_ GUARDED_BY(mutex_) = nullptr;
  Counter* evictions_metric_ GUARDED_BY(mutex_) = nullptr;
  Gauge* entries_metric_ GUARDED_BY(mutex_) = nullptr;
};

}  // namespace swope

#endif  // SWOPE_ENGINE_RESULT_CACHE_H_
