#include "src/engine/dataset_registry.h"

#include <utility>

#include "src/obs/event_log.h"
#include "src/obs/metrics.h"
#include "src/table/fingerprint.h"

namespace swope {

void DatasetRegistry::BindMetrics(MetricsRegistry* metrics) {
  MutexLock lock(mutex_);
  evictions_metric_ = metrics->GetCounter("swope_registry_evictions_total");
  resident_datasets_metric_ =
      metrics->GetGauge("swope_registry_resident_datasets");
  resident_bytes_metric_ = metrics->GetGauge("swope_registry_resident_bytes");
  mapped_bytes_metric_ = metrics->GetGauge("swope_engine_mapped_bytes");
  sketch_bytes_metric_ = metrics->GetGauge("swope_sketch_memory_bytes");
  UpdateGauges();
}

void DatasetRegistry::BindEventLog(EventLog* events) {
  MutexLock lock(mutex_);
  event_log_ = events;
}

void DatasetRegistry::UpdateGauges() {
  if (resident_datasets_metric_ == nullptr) return;
  resident_datasets_metric_->Set(static_cast<int64_t>(datasets_.size()));
  resident_bytes_metric_->Set(static_cast<int64_t>(resident_bytes_));
  mapped_bytes_metric_->Set(static_cast<int64_t>(mapped_bytes_));
  sketch_bytes_metric_->Set(static_cast<int64_t>(sketch_bytes_));
}

Status DatasetRegistry::Put(const std::string& name, Table table) {
  if (name.empty()) {
    return Status::InvalidArgument("registry: dataset name must be non-empty");
  }
  // Fingerprint outside the lock: it scans every cell.
  auto dataset = std::make_shared<Dataset>();
  dataset->name = name;
  dataset->fingerprint = TableFingerprint(table);
  dataset->memory_bytes = table.MemoryBytes();
  dataset->mapped_bytes = table.MappedBytes();
  dataset->sketch_bytes = table.SketchMemoryBytes();
  dataset->table = std::move(table);

  MutexLock lock(mutex_);
  Slot& slot = datasets_[name];
  if (slot.dataset != nullptr) {
    resident_bytes_ -= slot.dataset->memory_bytes;
    mapped_bytes_ -= slot.dataset->mapped_bytes;
    sketch_bytes_ -= slot.dataset->sketch_bytes;
  }
  resident_bytes_ += dataset->memory_bytes;
  mapped_bytes_ += dataset->mapped_bytes;
  sketch_bytes_ += dataset->sketch_bytes;
  slot.dataset = std::move(dataset);
  slot.last_used = ++tick_;
  EvictToBudget(name);
  UpdateGauges();
  return Status::OK();
}

Result<DatasetHandle> DatasetRegistry::Get(const std::string& name) {
  MutexLock lock(mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("registry: no dataset named '" + name + "'");
  }
  it->second.last_used = ++tick_;
  return it->second.dataset;
}

Status DatasetRegistry::Remove(const std::string& name) {
  MutexLock lock(mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("registry: no dataset named '" + name + "'");
  }
  resident_bytes_ -= it->second.dataset->memory_bytes;
  mapped_bytes_ -= it->second.dataset->mapped_bytes;
  sketch_bytes_ -= it->second.dataset->sketch_bytes;
  datasets_.erase(it);
  if (event_log_ != nullptr) {
    event_log_->Append(EventKind::kDatasetEvict, name, "unload");
  }
  UpdateGauges();
  return Status::OK();
}

std::vector<std::string> DatasetRegistry::Names() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, slot] : datasets_) names.push_back(name);
  return names;
}

DatasetRegistry::Stats DatasetRegistry::GetStats() const {
  MutexLock lock(mutex_);
  Stats stats;
  stats.resident_datasets = datasets_.size();
  stats.resident_bytes = resident_bytes_;
  stats.mapped_bytes = mapped_bytes_;
  stats.sketch_bytes = sketch_bytes_;
  stats.memory_budget_bytes = budget_;
  stats.evictions = evictions_;
  return stats;
}

void DatasetRegistry::EvictToBudget(const std::string& keep) {
  if (budget_ == 0) return;
  while (resident_bytes_ > budget_ && datasets_.size() > 1) {
    auto victim = datasets_.end();
    for (auto it = datasets_.begin(); it != datasets_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == datasets_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == datasets_.end()) return;
    resident_bytes_ -= victim->second.dataset->memory_bytes;
    mapped_bytes_ -= victim->second.dataset->mapped_bytes;
    sketch_bytes_ -= victim->second.dataset->sketch_bytes;
    if (event_log_ != nullptr) {
      event_log_->Append(
          EventKind::kDatasetEvict, victim->first,
          "budget (freed=" +
              std::to_string(victim->second.dataset->memory_bytes) +
              " heap, unmapped=" +
              std::to_string(victim->second.dataset->mapped_bytes) +
              " bytes)");
    }
    datasets_.erase(victim);
    ++evictions_;
    if (evictions_metric_ != nullptr) evictions_metric_->Increment();
  }
}

}  // namespace swope
