// PermutationCache: one shuffled row order shared by concurrent queries.
//
// Drawing a permutation of N rows is O(N) time and 4N bytes -- for a
// resident table under heavy traffic that can rival the sampling cost
// itself. By the paper's Section 6.1 observation a single exchangeable
// order is sound for every query over the same table, and because each
// query's order is the deterministic function ShuffledRowOrder(N, seed),
// sharing it changes nothing about any individual answer. Entries are
// keyed by (table fingerprint, seed, sequential flag) and handed out as
// shared_ptr so eviction never invalidates a running query.

#ifndef SWOPE_ENGINE_PERMUTATION_CACHE_H_
#define SWOPE_ENGINE_PERMUTATION_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace swope {

class Counter;
class Gauge;
class MetricsRegistry;

/// Thread-safe LRU cache of row orders. The expensive shuffle runs
/// outside the lock; a racing miss on the same key builds the identical
/// (deterministic) vector and the first insertion wins.
class PermutationCache {
 public:
  /// Keeps at most `capacity` orders; 0 disables sharing (every call
  /// builds a fresh order).
  explicit PermutationCache(size_t capacity) : capacity_(capacity) {}

  PermutationCache(const PermutationCache&) = delete;
  PermutationCache& operator=(const PermutationCache&) = delete;

  /// Returns the shared order for (fingerprint, seed, sequential) over
  /// `num_rows` rows, building and caching it on first use. `sequential`
  /// returns the identity order (the paper's sequential sampling); the
  /// seed is then irrelevant and ignored in the key.
  std::shared_ptr<const std::vector<uint32_t>> GetOrCreate(
      uint64_t fingerprint, uint32_t num_rows, uint64_t seed,
      bool sequential) REQUIRES(!mutex_);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };
  Stats GetStats() const REQUIRES(!mutex_);

  /// Mirrors hit/miss/eviction counts and the entry count into `metrics`
  /// under the label {cache="permutation"}. Call once, before concurrent
  /// use; the registry must outlive the cache.
  void BindMetrics(MetricsRegistry* metrics) REQUIRES(!mutex_);

 private:
  struct Key {
    uint64_t fingerprint;
    uint64_t seed;
    bool sequential;
    bool operator<(const Key& other) const {
      if (fingerprint != other.fingerprint) {
        return fingerprint < other.fingerprint;
      }
      if (seed != other.seed) return seed < other.seed;
      return sequential < other.sequential;
    }
  };
  struct Entry {
    std::shared_ptr<const std::vector<uint32_t>> order;
    uint64_t last_used = 0;
  };

  void EvictToCapacity() REQUIRES(mutex_);

  const size_t capacity_;
  mutable Mutex mutex_;
  std::map<Key, Entry> entries_ GUARDED_BY(mutex_);
  uint64_t tick_ GUARDED_BY(mutex_) = 0;
  uint64_t hits_ GUARDED_BY(mutex_) = 0;
  uint64_t misses_ GUARDED_BY(mutex_) = 0;
  uint64_t evictions_ GUARDED_BY(mutex_) = 0;

  /// Optional metric mirrors (null when unbound). Updated under mutex_,
  /// alongside the local counters they shadow.
  Counter* hits_metric_ GUARDED_BY(mutex_) = nullptr;
  Counter* misses_metric_ GUARDED_BY(mutex_) = nullptr;
  Counter* evictions_metric_ GUARDED_BY(mutex_) = nullptr;
  Gauge* entries_metric_ GUARDED_BY(mutex_) = nullptr;
};

}  // namespace swope

#endif  // SWOPE_ENGINE_PERMUTATION_CACHE_H_
