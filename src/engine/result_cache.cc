#include "src/engine/result_cache.h"

#include <utility>

namespace swope {

std::string ResultCache::MakeKey(uint64_t fingerprint,
                                 const std::string& spec_key) {
  return std::to_string(fingerprint) + "|" + spec_key;
}

std::shared_ptr<const CachedAnswer> ResultCache::Lookup(
    uint64_t fingerprint, const std::string& spec_key) {
  const std::string key = MakeKey(fingerprint, spec_key);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  it->second.last_used = ++tick_;
  return it->second.answer;
}

void ResultCache::Insert(uint64_t fingerprint, const std::string& spec_key,
                         CachedAnswer answer) {
  if (capacity_ == 0) return;
  auto shared = std::make_shared<const CachedAnswer>(std::move(answer));
  const std::string key = MakeKey(fingerprint, spec_key);
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[key];
  entry.answer = std::move(shared);
  entry.last_used = ++tick_;
  ++insertions_;
  EvictToCapacity();
}

ResultCache::Stats ResultCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.insertions = insertions_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  return stats;
}

void ResultCache::EvictToCapacity() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    entries_.erase(victim);
    ++evictions_;
  }
}

}  // namespace swope
