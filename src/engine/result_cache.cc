#include "src/engine/result_cache.h"

#include <utility>

#include "src/obs/metrics.h"

namespace swope {

void ResultCache::BindMetrics(MetricsRegistry* metrics) {
  const MetricLabels labels = {{"cache", "result"}};
  MutexLock lock(mutex_);
  hits_metric_ = metrics->GetCounter("swope_cache_hits_total", labels);
  misses_metric_ = metrics->GetCounter("swope_cache_misses_total", labels);
  evictions_metric_ =
      metrics->GetCounter("swope_cache_evictions_total", labels);
  entries_metric_ = metrics->GetGauge("swope_cache_entries", labels);
}

std::string ResultCache::MakeKey(uint64_t fingerprint,
                                 const std::string& spec_key) {
  return std::to_string(fingerprint) + "|" + spec_key;
}

std::shared_ptr<const CachedAnswer> ResultCache::Lookup(
    uint64_t fingerprint, const std::string& spec_key) {
  const std::string key = MakeKey(fingerprint, spec_key);
  MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    if (misses_metric_ != nullptr) misses_metric_->Increment();
    return nullptr;
  }
  ++hits_;
  if (hits_metric_ != nullptr) hits_metric_->Increment();
  it->second.last_used = ++tick_;
  return it->second.answer;
}

void ResultCache::Insert(uint64_t fingerprint, const std::string& spec_key,
                         CachedAnswer answer) {
  if (capacity_ == 0) return;
  auto shared = std::make_shared<const CachedAnswer>(std::move(answer));
  const std::string key = MakeKey(fingerprint, spec_key);
  MutexLock lock(mutex_);
  Entry& entry = entries_[key];
  entry.answer = std::move(shared);
  entry.last_used = ++tick_;
  ++insertions_;
  EvictToCapacity();
  if (entries_metric_ != nullptr) {
    entries_metric_->Set(static_cast<int64_t>(entries_.size()));
  }
}

ResultCache::Stats ResultCache::GetStats() const {
  MutexLock lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.insertions = insertions_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  return stats;
}

void ResultCache::EvictToCapacity() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    entries_.erase(victim);
    ++evictions_;
    if (evictions_metric_ != nullptr) evictions_metric_->Increment();
  }
}

}  // namespace swope
