#include "src/engine/query_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/core/swope_filter_entropy.h"
#include "src/core/swope_filter_mi.h"
#include "src/core/swope_filter_nmi.h"
#include "src/core/swope_topk_entropy.h"
#include "src/core/swope_topk_mi.h"
#include "src/core/swope_topk_nmi.h"
#include "src/table/binary_io.h"
#include "src/table/csv_reader.h"

namespace swope {

namespace {

bool IsCsvPath(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

}  // namespace

QueryEngine::QueryEngine(EngineConfig config)
    : config_([&config] {
        config.num_threads = std::max<size_t>(1, config.num_threads);
        config.intra_query_threads =
            std::max<size_t>(1, config.intra_query_threads);
        config.max_in_flight = std::max<size_t>(1, config.max_in_flight);
        return config;
      }()),
      registry_(config_.memory_budget_bytes),
      result_cache_(config_.result_cache_capacity),
      permutation_cache_(config_.permutation_cache_capacity),
      intra_pool_(config_.intra_query_threads > 1
                      ? std::make_unique<ThreadPool>(
                            config_.intra_query_threads)
                      : nullptr),
      pool_(config_.num_threads) {}

Status QueryEngine::RegisterDataset(const std::string& name, Table table) {
  return registry_.Put(name, std::move(table));
}

Status QueryEngine::RegisterDatasetFile(const std::string& name,
                                        const std::string& path,
                                        uint32_t max_support) {
  auto table =
      IsCsvPath(path) ? ReadCsvFile(path) : ReadBinaryTableFile(path);
  if (!table.ok()) return table.status();
  if (max_support > 0) {
    return registry_.Put(name, table->DropHighSupportColumns(max_support));
  }
  return registry_.Put(name, *std::move(table));
}

Status QueryEngine::RemoveDataset(const std::string& name) {
  return registry_.Remove(name);
}

Result<QueryResponse> QueryEngine::Run(const QuerySpec& spec,
                                       const CancellationToken* cancel) {
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.queries_started;
  }
  auto fail = [this](Status status) -> Result<QueryResponse> {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.queries_failed;
    if (status.IsCancelled()) ++counters_.cancelled;
    if (status.IsDeadlineExceeded()) ++counters_.deadline_exceeded;
    return status;
  };

  auto dataset = registry_.Get(spec.dataset);
  if (!dataset.ok()) return fail(dataset.status());
  auto resolved = ResolveSpec(spec, (*dataset)->table);
  if (!resolved.ok()) return fail(resolved.status());

  // A certified answer for the same (table contents, canonical spec) is
  // byte-identical to a re-run; serve it without sampling a single row.
  if (auto cached = result_cache_.Lookup((*dataset)->fingerprint,
                                         resolved->canonical_key)) {
    QueryResponse response;
    response.kind = resolved->kind;
    response.fingerprint = (*dataset)->fingerprint;
    response.canonical_key = resolved->canonical_key;
    response.cache_hit = true;
    response.items = cached->items;
    response.stats = cached->stats;
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.queries_ok;
    return response;
  }

  auto response = Execute(*dataset, *resolved, cancel);
  if (!response.ok()) return fail(response.status());
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.queries_ok;
    counters_.rows_sampled += response->stats.final_sample_size;
  }
  result_cache_.Insert(response->fingerprint, response->canonical_key,
                       CachedAnswer{response->items, response->stats});
  return response;
}

std::future<Result<QueryResponse>> QueryEngine::Submit(
    QuerySpec spec, const CancellationToken* cancel) {
  auto promise = std::make_shared<std::promise<Result<QueryResponse>>>();
  std::future<Result<QueryResponse>> future = promise->get_future();
  pool_.Submit([this, promise, spec = std::move(spec), cancel] {
    promise->set_value(Run(spec, cancel));
  });
  return future;
}

Result<QueryResponse> QueryEngine::Execute(const DatasetHandle& dataset,
                                           const ResolvedSpec& resolved,
                                           const CancellationToken* cancel) {
  ExecControl control;
  control.token = cancel;
  const uint64_t timeout_ms = resolved.timeout_ms > 0
                                  ? resolved.timeout_ms
                                  : config_.default_timeout_ms;
  if (timeout_ms > 0) {
    control.SetTimeout(std::chrono::milliseconds(timeout_ms));
  }

  // Admission control: bounded concurrent executions. Waiting honours the
  // query's own deadline and cancellation (polled, so no token->cv hookup
  // is needed).
  {
    std::unique_lock<std::mutex> lock(admission_mutex_);
    while (in_flight_ >= config_.max_in_flight) {
      SWOPE_RETURN_NOT_OK(control.Check());
      admission_cv_.wait_for(lock, std::chrono::milliseconds(5));
    }
    ++in_flight_;
  }
  struct SlotRelease {
    QueryEngine* engine;
    ~SlotRelease() {
      {
        std::lock_guard<std::mutex> lock(engine->admission_mutex_);
        --engine->in_flight_;
      }
      engine->admission_cv_.notify_one();
    }
  } release{this};

  const Table& table = dataset->table;
  QueryOptions options = resolved.options;
  options.control = &control;
  // Dedicated pool: intra-query ParallelFor must not share the executor,
  // where a blocked caller would help-drain whole-query tasks.
  options.pool = intra_pool_.get();
  if (table.num_rows() > 0) {
    options.shared_order = permutation_cache_.GetOrCreate(
        dataset->fingerprint, static_cast<uint32_t>(table.num_rows()),
        options.seed, options.sequential_sampling);
  }

  auto response = Dispatch(table, resolved, options);
  if (!response.ok()) return response.status();
  response->fingerprint = dataset->fingerprint;
  response->canonical_key = resolved.canonical_key;
  return response;
}

Result<QueryResponse> QueryEngine::Dispatch(const Table& table,
                                            const ResolvedSpec& resolved,
                                            const QueryOptions& options) {
  // All six drivers return {items, stats}; `fill` hoists the shared
  // unwrap-and-move so each case is one line.
  QueryResponse response;
  response.kind = resolved.kind;
  auto fill = [&response](auto result) -> Result<QueryResponse> {
    if (!result.ok()) return result.status();
    response.items = std::move(result->items);
    response.stats = result->stats;
    return std::move(response);
  };
  switch (resolved.kind) {
    case QueryKind::kEntropyTopK:
      return fill(SwopeTopKEntropy(table, resolved.k, options));
    case QueryKind::kEntropyFilter:
      return fill(SwopeFilterEntropy(table, resolved.eta, options));
    case QueryKind::kMiTopK:
      return fill(SwopeTopKMi(table, resolved.target, resolved.k, options));
    case QueryKind::kMiFilter:
      return fill(
          SwopeFilterMi(table, resolved.target, resolved.eta, options));
    case QueryKind::kNmiTopK:
      return fill(SwopeTopKNmi(table, resolved.target, resolved.k, options));
    case QueryKind::kNmiFilter:
      return fill(
          SwopeFilterNmi(table, resolved.target, resolved.eta, options));
  }
  return Status::Internal("query engine: unhandled query kind");
}

EngineCounters QueryEngine::GetCounters() const {
  EngineCounters counters;
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    counters = counters_;
  }
  const ResultCache::Stats results = result_cache_.GetStats();
  counters.result_cache_hits = results.hits;
  counters.result_cache_misses = results.misses;
  const PermutationCache::Stats perms = permutation_cache_.GetStats();
  counters.permutation_cache_hits = perms.hits;
  counters.permutation_cache_misses = perms.misses;
  counters.registry_evictions = registry_.GetStats().evictions;
  return counters;
}

}  // namespace swope
