#include "src/engine/query_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

#include "src/common/alloc_hook.h"
#include "src/common/stopwatch.h"
#include "src/core/sketch_estimation.h"
#include "src/core/swope_filter_entropy.h"
#include "src/core/swope_filter_mi.h"
#include "src/core/swope_filter_nmi.h"
#include "src/core/swope_topk_entropy.h"
#include "src/core/swope_topk_mi.h"
#include "src/core/swope_topk_nmi.h"
#include "src/table/append.h"
#include "src/table/binary_io.h"
#include "src/table/csv_reader.h"
#include "src/table/sketch_sidecar.h"

namespace swope {

namespace {

bool IsCsvPath(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

Histogram* LatencyHistogram(MetricsRegistry& metrics, int kind) {
  return metrics.GetHistogram(
      "swope_engine_query_latency_ms",
      {{"kind",
        std::string(QueryKindToString(static_cast<QueryKind>(kind)))}},
      DefaultLatencyBucketsMs());
}

std::string ShortMs(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

// Compact single-line stage profile (and round summary, when traced) for
// the slow-query event payload. Fits the EventLog's bounded detail slot;
// FormatProfileTable stays the human-facing renderer.
std::string SlowQueryDetail(const StageProfiler& profiler,
                            const QueryTrace* trace) {
  std::string detail = "stages:";
  for (size_t s = 0; s < kNumStages; ++s) {
    const Stage stage = static_cast<Stage>(s);
    if (profiler.StageCalls(stage) == 0) continue;
    detail += " ";
    detail += StageName(stage);
    detail += "=" + ShortMs(profiler.StageMs(stage));
  }
  detail += " sum=" + ShortMs(profiler.StageSumMs());
  if (trace != nullptr && !trace->rounds().empty()) {
    detail += "; rounds:";
    for (const RoundTrace& round : trace->rounds()) {
      detail += " " + std::to_string(round.round) + ":m=" +
                std::to_string(round.sample_size) + ":ms=" +
                ShortMs(round.wall_ms);
    }
  }
  return detail;
}

// Sums one pool's per-worker telemetry into (run ms, idle ms, busy
// fraction). The final GetWorkerStats entry aggregates external helpers,
// which never park; including their run time keeps "work executed on this
// pool" honest while idle time stays worker-only.
struct PoolUtilization {
  double run_ms = 0.0;
  double idle_ms = 0.0;
  double fraction = 0.0;
};

PoolUtilization SummarizePool(const ThreadPool& pool) {
  PoolUtilization util;
  for (const ThreadPool::WorkerStats& w : pool.GetWorkerStats()) {
    util.run_ms += static_cast<double>(w.run_ns) / 1e6;
    util.idle_ms += static_cast<double>(w.idle_ns) / 1e6;
  }
  const double total = util.run_ms + util.idle_ms;
  util.fraction = total > 0.0 ? util.run_ms / total : 0.0;
  return util;
}

}  // namespace

QueryEngine::QueryEngine(EngineConfig config)
    : config_([&config] {
        config.num_threads = std::max<size_t>(1, config.num_threads);
        config.intra_query_threads =
            std::max<size_t>(1, config.intra_query_threads);
        config.max_in_flight = std::max<size_t>(1, config.max_in_flight);
        return config;
      }()),
      event_log_(config_.event_log_capacity),
      registry_(config_.memory_budget_bytes),
      result_cache_(config_.result_cache_capacity),
      permutation_cache_(config_.permutation_cache_capacity),
      query_memory_pool_(std::make_shared<QueryMemoryPool>(
          config_.query_memory_pool_size)),
      queries_started_(
          metrics_.GetCounter("swope_engine_queries_started_total")),
      queries_ok_(metrics_.GetCounter("swope_engine_queries_ok_total")),
      queries_failed_(metrics_.GetCounter("swope_engine_queries_failed_total")),
      cancelled_(metrics_.GetCounter("swope_engine_queries_cancelled_total")),
      deadline_exceeded_(
          metrics_.GetCounter("swope_engine_queries_deadline_exceeded_total")),
      rows_sampled_(metrics_.GetCounter("swope_engine_rows_sampled_total")),
      admission_waits_(
          metrics_.GetCounter("swope_engine_admission_waits_total")),
      rejected_(metrics_.GetCounter("swope_engine_rejected_total")),
      queries_sketch_(
          metrics_.GetCounter("swope_engine_queries_sketch_total")),
      queries_exact_(metrics_.GetCounter("swope_engine_queries_exact_total")),
      ingest_rows_(metrics_.GetCounter("swope_engine_ingest_rows_total")),
      in_flight_gauge_(metrics_.GetGauge("swope_engine_in_flight")),
      admission_waiting_(metrics_.GetGauge("swope_engine_admission_waiting")),
      query_latency_ms_{LatencyHistogram(metrics_, 0),
                        LatencyHistogram(metrics_, 1),
                        LatencyHistogram(metrics_, 2),
                        LatencyHistogram(metrics_, 3),
                        LatencyHistogram(metrics_, 4),
                        LatencyHistogram(metrics_, 5)},
      query_rounds_(metrics_.GetHistogram(
          "swope_query_rounds", {},
          {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64})),
      // Fine buckets: shard tasks are sub-50us on well-sharded tables, so
      // the default request-latency buckets would pile everything into the
      // lowest one or two.
      shard_task_ms_(metrics_.GetHistogram("swope_engine_shard_task_ms", {},
                                           FineLatencyBucketsMs())),
      in_flight_tasks_gauge_(
          metrics_.GetGauge("swope_engine_in_flight_tasks")),
      ingest_latency_ms_(metrics_.GetHistogram(
          "swope_engine_ingest_latency_ms", {}, DefaultLatencyBucketsMs())),
      query_arena_bytes_(metrics_.GetGauge("swope_query_arena_bytes")),
      executor_busy_ms_(metrics_.GetGauge("swope_pool_worker_busy_ms",
                                          {{"pool", "executor"}})),
      executor_idle_ms_(metrics_.GetGauge("swope_pool_worker_idle_ms",
                                          {{"pool", "executor"}})),
      executor_utilization_(metrics_.GetGauge(
          "swope_pool_utilization_percent", {{"pool", "executor"}})),
      intra_busy_ms_(metrics_.GetGauge("swope_pool_worker_busy_ms",
                                       {{"pool", "intra"}})),
      intra_idle_ms_(metrics_.GetGauge("swope_pool_worker_idle_ms",
                                       {{"pool", "intra"}})),
      intra_utilization_(metrics_.GetGauge("swope_pool_utilization_percent",
                                           {{"pool", "intra"}})),
      intra_pool_(config_.intra_query_threads > 1
                      ? std::make_unique<ThreadPool>(
                            config_.intra_query_threads, &metrics_, "intra",
                            config_.pool_mode)
                      : nullptr),
      pool_(config_.num_threads, &metrics_, "executor", config_.pool_mode) {
  registry_.BindMetrics(&metrics_);
  registry_.BindEventLog(&event_log_);
  result_cache_.BindMetrics(&metrics_);
  permutation_cache_.BindMetrics(&metrics_);
}

Status QueryEngine::RegisterDataset(const std::string& name, Table table) {
  if (config_.shard_size > 0) table = table.Resharded(config_.shard_size);
  const size_t num_shards = table.num_shards();
  const uint64_t num_rows = table.num_rows();
  SWOPE_RETURN_NOT_OK(registry_.Put(name, std::move(table)));
  RecordShardGeometry(name, num_shards);
  event_log_.Append(EventKind::kDatasetLoad, name,
                    "rows=" + std::to_string(num_rows) +
                        " shards=" + std::to_string(num_shards));
  return Status::OK();
}

Status QueryEngine::RegisterDatasetFile(const std::string& name,
                                        const std::string& path,
                                        uint32_t max_support,
                                        double sketch_epsilon,
                                        uint32_t sketch_threshold,
                                        bool mmap) {
  // The mapped loader borrows packed words straight out of the file
  // mapping (CSV has no binary image to map, so the flag is ignored).
  auto table = IsCsvPath(path)  ? ReadCsvFile(path)
               : mmap           ? ReadBinaryTableFileMapped(path)
                                : ReadBinaryTableFile(path);
  if (!table.ok()) return table.status();
  if (max_support > 0) {
    *table = table->DropHighSupportColumns(max_support);
  }
  if (sketch_epsilon > 0.0) {
    auto sketched =
        AttachSketches(*table, sketch_epsilon, kSketchDelta, sketch_threshold,
                       /*seed=*/0);
    if (!sketched.ok()) return sketched.status();
    *table = *std::move(sketched);
  }
  return RegisterDataset(name, *std::move(table));
}

Status QueryEngine::RemoveDataset(const std::string& name) {
  return registry_.Remove(name);
}

Status QueryEngine::Ingest(const std::string& name,
                           const std::vector<std::vector<std::string>>& rows) {
  Stopwatch latency;
  auto dataset = registry_.Get(name);
  if (!dataset.ok()) return dataset.status();
  auto appended = AppendRowsToTable((*dataset)->table, rows);
  if (!appended.ok()) return appended.status();
  // Put re-fingerprints the new contents; result-cache entries keyed by
  // the old fingerprint become unreachable for this name automatically.
  const size_t num_shards = appended->num_shards();
  SWOPE_RETURN_NOT_OK(registry_.Put(name, *std::move(appended)));
  RecordShardGeometry(name, num_shards);
  ingest_rows_->Increment(rows.size());
  const double ingest_ms = latency.ElapsedMillis();
  ingest_latency_ms_->Observe(ingest_ms);
  event_log_.Append(EventKind::kIngest, name,
                    "appended=" + std::to_string(rows.size()), ingest_ms);
  return Status::OK();
}

Result<QueryResponse> QueryEngine::Run(const QuerySpec& spec,
                                       const CancellationToken* cancel) {
  queries_started_->Increment();
  Stopwatch latency;
  auto fail = [this, &spec, &latency](Status status) -> Result<QueryResponse> {
    queries_failed_->Increment();
    if (status.IsCancelled()) {
      cancelled_->Increment();
      event_log_.Append(EventKind::kQueryCancelled, spec.dataset,
                        status.message(), latency.ElapsedMillis());
    }
    if (status.IsDeadlineExceeded()) {
      deadline_exceeded_->Increment();
      event_log_.Append(EventKind::kQueryDeadline, spec.dataset,
                        status.message(), latency.ElapsedMillis());
    }
    return status;
  };

  auto dataset = registry_.Get(spec.dataset);
  if (!dataset.ok()) return fail(dataset.status());
  auto resolved = ResolveSpec(spec, (*dataset)->table);
  if (!resolved.ok()) return fail(resolved.status());

  // A certified answer for the same (table contents, canonical spec) is
  // byte-identical to a re-run; serve it without sampling a single row.
  if (auto cached = result_cache_.Lookup((*dataset)->fingerprint,
                                         resolved->canonical_key)) {
    QueryResponse response;
    response.kind = resolved->kind;
    response.fingerprint = (*dataset)->fingerprint;
    response.canonical_key = resolved->canonical_key;
    response.cache_hit = true;
    response.items = cached->items;
    response.stats = cached->stats;
    queries_ok_->Increment();
    (response.stats.sketch_candidates > 0 ? queries_sketch_ : queries_exact_)
        ->Increment();
    const double wall_ms = latency.ElapsedMillis();
    query_latency_ms_[static_cast<int>(resolved->kind)]->Observe(wall_ms);
    event_log_.Append(
        EventKind::kQueryComplete, spec.dataset,
        std::string(QueryKindToString(resolved->kind)) + " cache-hit",
        wall_ms);
    return response;
  }

  auto response = Execute(*dataset, *resolved, cancel);
  if (!response.ok()) return fail(response.status());
  queries_ok_->Increment();
  (response->stats.sketch_candidates > 0 ? queries_sketch_ : queries_exact_)
      ->Increment();
  rows_sampled_->Increment(response->stats.final_sample_size);
  query_rounds_->Observe(static_cast<double>(response->stats.iterations));
  if (config_.result_cache_capacity > 0) {
    // The CachedAnswer copy is built only when caching is live: with
    // capacity 0 (the zero-allocation serving configuration) the heap
    // copy of the arena-backed items would be pure waste.
    result_cache_.Insert(response->fingerprint, response->canonical_key,
                         CachedAnswer{response->items, response->stats});
  }
  const double wall_ms = latency.ElapsedMillis();
  query_latency_ms_[static_cast<int>(resolved->kind)]->Observe(wall_ms);
  event_log_.Append(EventKind::kQueryComplete, spec.dataset,
                    std::string(QueryKindToString(resolved->kind)) +
                        " rounds=" +
                        std::to_string(response->stats.iterations),
                    wall_ms);
  return response;
}

std::future<Result<QueryResponse>> QueryEngine::Submit(
    QuerySpec spec, const CancellationToken* cancel) {
  auto promise = std::make_shared<std::promise<Result<QueryResponse>>>();
  std::future<Result<QueryResponse>> future = promise->get_future();
  // The lambda runs on the executor with no admission lock held; annotate
  // so the negative-capability analysis accepts the nested Run call.
  pool_.Submit([this, promise, spec = std::move(spec),
                cancel]() REQUIRES(!admission_mutex_) {
    promise->set_value(Run(spec, cancel));
  });
  return future;
}

Result<QueryResponse> QueryEngine::Execute(const DatasetHandle& dataset,
                                           const ResolvedSpec& resolved,
                                           const CancellationToken* cancel) {
  // Executed-query wall clock: admission wait through dispatch. The
  // profiler's stage sum is compared against this (serve's profile
  // block, the CI smoke), so both start here.
  Stopwatch exec_wall;
  // Interposer baseline for the per-query `allocs` profile field; a
  // constant 0 in production binaries (src/common/alloc_hook.h).
  const uint64_t allocs_before = AllocationCount();
  // The profiler exists when the client asked for it OR slow-query
  // capture is armed: a query only known to be slow after the fact must
  // already have been profiled.
  std::shared_ptr<StageProfiler> profiler;
  if (resolved.profile || config_.slow_query_ms > 0) {
    profiler = std::make_shared<StageProfiler>();
  }

  ExecControl control;
  control.token = cancel;
  const uint64_t timeout_ms = resolved.timeout_ms > 0
                                  ? resolved.timeout_ms
                                  : config_.default_timeout_ms;
  if (timeout_ms > 0) {
    control.SetTimeout(std::chrono::milliseconds(timeout_ms));
  }

  // A query's admission weight is its table's shard count: the number of
  // tasks one of its rounds can put on the shared pool per candidate.
  const size_t task_weight =
      std::max<size_t>(1, dataset->table.num_shards());
  {
    StageTimer admit_timer(profiler.get(), Stage::kSchedulingWait);
    SWOPE_RETURN_NOT_OK(AdmitQuery(control, task_weight, dataset->name));
  }
  struct SlotRelease {
    QueryEngine* engine;
    size_t task_weight;
    ~SlotRelease() REQUIRES(!engine->admission_mutex_) {
      engine->ReleaseSlot(task_weight);
    }
  } release{this, task_weight};

  const Table& table = dataset->table;
  QueryOptions options = resolved.options;
  options.control = &control;
  // Pooled per-query memory: all driver/scorer state and the result
  // items allocate from this lease's arena; decode buffers come from its
  // scratch pool. The lease travels with the response so the arena stays
  // alive exactly as long as the items do.
  QueryMemoryLease memory = QueryMemoryPool::Acquire(query_memory_pool_);
  options.memory = memory->arena().resource();
  options.scratch = &memory->scratch();
  std::shared_ptr<QueryTrace> trace;
  if (resolved.trace) {
    trace = std::make_shared<QueryTrace>();
    options.trace = trace.get();
  }
  options.profiler = profiler.get();
  // Dedicated pool: intra-query ParallelFor must not share the executor,
  // where a blocked caller would help-drain whole-query tasks. Every
  // concurrent query shards onto this one stealing pool.
  options.pool = intra_pool_.get();
  options.shard_task_latency = shard_task_ms_;
  if (table.num_rows() > 0) {
    options.shared_order = permutation_cache_.GetOrCreate(
        dataset->fingerprint, static_cast<uint32_t>(table.num_rows()),
        options.seed, options.sequential_sampling);
  }

  auto response = Dispatch(table, resolved, options);
  if (!response.ok()) return response.status();
  response->fingerprint = dataset->fingerprint;
  response->canonical_key = resolved.canonical_key;
  if (profiler != nullptr) {
    const double wall_ms = exec_wall.ElapsedMillis();
    profiler->SetWallMs(wall_ms);
    profiler->SetAllocs(AllocationCount() - allocs_before);
    if (config_.slow_query_ms > 0 && wall_ms >= config_.slow_query_ms) {
      event_log_.Append(EventKind::kSlowQuery, dataset->name,
                        SlowQueryDetail(*profiler, trace.get()), wall_ms);
    }
  }
  response->trace = std::move(trace);
  if (resolved.profile) response->profile = std::move(profiler);
  query_arena_bytes_->Set(
      static_cast<int64_t>(memory->arena().BytesReserved()));
  response->memory = std::move(memory);
  return response;
}

bool QueryEngine::AdmissibleLocked(size_t task_weight) const {
  if (in_flight_ >= config_.max_in_flight) return false;
  // The task budget bounds summed shard counts across executing queries.
  // A query heavier than the whole budget still admits once it would run
  // alone, so oversized tables degrade to serial admission instead of
  // deadlocking.
  if (config_.max_in_flight_tasks > 0 && in_flight_ > 0 &&
      in_flight_tasks_ + task_weight > config_.max_in_flight_tasks) {
    return false;
  }
  return true;
}

Status QueryEngine::AdmitQuery(ExecControl& control, size_t task_weight,
                               const std::string& dataset) {
  // Admission control: bounded concurrent executions and bounded
  // in-flight shard tasks. Waiting honours the query's own deadline and
  // cancellation (polled, so no token->cv hookup is needed).
  MutexLock lock(admission_mutex_);
  if (!AdmissibleLocked(task_weight)) {
    if (config_.max_admission_waiters > 0 &&
        admission_waiters_ >= config_.max_admission_waiters) {
      // Load shedding: bounded queue. Callers can distinguish shed
      // queries (Unavailable, retryable) from accepted-but-expired ones.
      rejected_->Increment();
      event_log_.Append(EventKind::kQueryReject, dataset,
                        "admission queue full (waiters=" +
                            std::to_string(admission_waiters_) + ")");
      return Status::Unavailable(
          "query engine: admission queue full, query rejected");
    }
    admission_waits_->Increment();
    ++admission_waiters_;
    admission_waiting_->Add(1);
    while (!AdmissibleLocked(task_weight)) {
      const Status status = control.Check();
      if (!status.ok()) {
        --admission_waiters_;
        admission_waiting_->Add(-1);
        return status;
      }
      admission_cv_.WaitFor(admission_mutex_, std::chrono::milliseconds(5));
    }
    --admission_waiters_;
    admission_waiting_->Add(-1);
  }
  ++in_flight_;
  in_flight_tasks_ += task_weight;
  in_flight_gauge_->Set(static_cast<int64_t>(in_flight_));
  in_flight_tasks_gauge_->Set(static_cast<int64_t>(in_flight_tasks_));
  event_log_.Append(EventKind::kQueryAdmit, dataset,
                    "weight=" + std::to_string(task_weight) +
                        " in_flight=" + std::to_string(in_flight_));
  return Status::OK();
}

void QueryEngine::ReleaseSlot(size_t task_weight) {
  {
    MutexLock lock(admission_mutex_);
    --in_flight_;
    in_flight_tasks_ -= task_weight;
    in_flight_gauge_->Set(static_cast<int64_t>(in_flight_));
    in_flight_tasks_gauge_->Set(static_cast<int64_t>(in_flight_tasks_));
  }
  // NotifyAll: waiters carry different task weights, so the first waiter
  // woken is not necessarily the one that now fits.
  admission_cv_.NotifyAll();
}

void QueryEngine::RecordShardGeometry(const std::string& name,
                                      size_t num_shards) {
  metrics_.GetGauge("swope_engine_dataset_shards", {{"dataset", name}})
      ->Set(static_cast<int64_t>(num_shards));
}

Result<QueryResponse> QueryEngine::Dispatch(const Table& table,
                                            const ResolvedSpec& resolved,
                                            const QueryOptions& options) {
  // All six drivers return {items, stats}; `fill` hoists the shared
  // unwrap-and-move so each case is one line.
  QueryResponse response;
  response.kind = resolved.kind;
  auto fill = [&response](auto result) -> Result<QueryResponse> {
    if (!result.ok()) return result.status();
    // Adopt the driver's buffer wholesale: pmr move *construction* keeps
    // the source's (arena) resource, where move *assignment* into the
    // default-resource member would copy every element to the heap.
    std::destroy_at(&response.items);
    std::construct_at(&response.items, std::move(result->items));
    response.stats = result->stats;
    return std::move(response);
  };
  switch (resolved.kind) {
    case QueryKind::kEntropyTopK:
      return fill(SwopeTopKEntropy(table, resolved.k, options));
    case QueryKind::kEntropyFilter:
      return fill(SwopeFilterEntropy(table, resolved.eta, options));
    case QueryKind::kMiTopK:
      return fill(SwopeTopKMi(table, resolved.target, resolved.k, options));
    case QueryKind::kMiFilter:
      return fill(
          SwopeFilterMi(table, resolved.target, resolved.eta, options));
    case QueryKind::kNmiTopK:
      return fill(SwopeTopKNmi(table, resolved.target, resolved.k, options));
    case QueryKind::kNmiFilter:
      return fill(
          SwopeFilterNmi(table, resolved.target, resolved.eta, options));
  }
  return Status::Internal("query engine: unhandled query kind");
}

EngineCounters QueryEngine::GetCounters() const {
  // Assembled from independent relaxed counters: totals are exact once
  // the engine quiesces, but a snapshot taken mid-query may catch one
  // counter ahead of another (fine for monitoring).
  EngineCounters counters;
  counters.queries_started = queries_started_->Value();
  counters.queries_ok = queries_ok_->Value();
  counters.queries_failed = queries_failed_->Value();
  counters.rows_sampled = rows_sampled_->Value();
  counters.cancelled = cancelled_->Value();
  counters.deadline_exceeded = deadline_exceeded_->Value();
  counters.admission_waits = admission_waits_->Value();
  counters.rejected = rejected_->Value();
  counters.pool_steals =
      pool_.steals() +
      (intra_pool_ != nullptr ? intra_pool_->steals() : 0);
  counters.queries_sketch = queries_sketch_->Value();
  counters.queries_exact = queries_exact_->Value();
  counters.ingest_rows = ingest_rows_->Value();
  const ResultCache::Stats results = result_cache_.GetStats();
  counters.result_cache_hits = results.hits;
  counters.result_cache_misses = results.misses;
  const PermutationCache::Stats perms = permutation_cache_.GetStats();
  counters.permutation_cache_hits = perms.hits;
  counters.permutation_cache_misses = perms.misses;
  counters.registry_evictions = registry_.GetStats().evictions;
  counters.events_logged = event_log_.TotalAppended();

  // Worker utilization: snapshot both pools and refresh the gauges as a
  // side effect, so a metrics scrape that follows a stats call sees the
  // same numbers.
  const PoolUtilization executor = SummarizePool(pool_);
  counters.executor_run_ms = executor.run_ms;
  counters.executor_idle_ms = executor.idle_ms;
  counters.executor_utilization = executor.fraction;
  executor_busy_ms_->Set(static_cast<int64_t>(executor.run_ms));
  executor_idle_ms_->Set(static_cast<int64_t>(executor.idle_ms));
  executor_utilization_->Set(
      static_cast<int64_t>(executor.fraction * 100.0));
  if (intra_pool_ != nullptr) {
    const PoolUtilization intra = SummarizePool(*intra_pool_);
    counters.intra_run_ms = intra.run_ms;
    counters.intra_idle_ms = intra.idle_ms;
    counters.intra_utilization = intra.fraction;
    intra_busy_ms_->Set(static_cast<int64_t>(intra.run_ms));
    intra_idle_ms_->Set(static_cast<int64_t>(intra.idle_ms));
    intra_utilization_->Set(static_cast<int64_t>(intra.fraction * 100.0));
  }
  return counters;
}

}  // namespace swope
