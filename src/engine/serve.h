// Line-protocol front end for QueryEngine (`swope_cli serve`).
//
// Reads one request per line from an input stream and writes exactly one
// JSON object per request to the output stream, so the engine is drivable
// end-to-end from a shell pipe or a socket relay. Blank lines and
// #-comments are skipped. Requests:
//
//   load name=<id> path=<file> [max-support=U]
//        [sketch-epsilon=E] [sketch-threshold=U] [mmap=0|1]
//   query dataset=<id> kind=<kind> [k=N] [eta=T] [target=COL]
//         [epsilon=E] [seed=N] [pf=P] [m0=N] [growth=G]
//         [sketch-threshold=U] [sketch-epsilon=E] [sequential=0|1]
//         [timeout-ms=N] [trace=0|1] [profile=0|1]
//   ingest dataset=<id> [row=v1,v2,...] [csv=<path>]
//   unload name=<id>
//   datasets
//   stats
//   events [n=N]
//   metrics
//   quit
//
// `trace=1` attaches a per-round "trace" array to the query response and
// `profile=1` a per-stage "profile" breakdown (see docs/OBSERVABILITY.md
// for both schemas); with both off the response is byte-identical to one
// from an engine without observability. `events` returns the engine's
// most recent structured events (admissions, completions, slow-query
// captures, ...), newest-last, at most n of them. `metrics` returns the
// engine's MetricsRegistry both as escaped Prometheus exposition text
// ("prometheus") and as a nested JSON snapshot ("snapshot").
//
// `sketch-epsilon` > 0 enables the count-min path for candidates whose
// support exceeds `sketch-threshold` (docs/SKETCH.md); the query
// response's stats block reports the route taken as "path":"sketch" or
// "path":"exact". `ingest` appends rows to a resident dataset -- inline
// (`row=`, comma-separated, no spaces) and/or from a headerless CSV file
// (`csv=`) -- and re-fingerprints it, so later queries see the new
// contents and never a stale cached answer. `mmap=1` loads an SWPB file
// through the mapped path (src/table/binary_io.h): page-aligned column
// payloads stay OS-paged instead of heap-resident, and the load response
// and `stats` report the split as "resident_bytes" / "mapped_bytes"
// (docs/STORAGE.md).
//
// <kind> is one of entropy-topk, entropy-filter, mi-topk, mi-filter,
// nmi-topk, nmi-filter. Successful responses carry "ok":true; failures
// carry "ok":false plus the Status code and message -- still as JSON on
// `out`, so the response stream stays line-aligned with the requests and
// machine-parseable throughout.

#ifndef SWOPE_ENGINE_SERVE_H_
#define SWOPE_ENGINE_SERVE_H_

#include <istream>
#include <ostream>
#include <string>

#include "src/engine/query_engine.h"

namespace swope {

/// Escapes `text` for inclusion inside a JSON string literal.
std::string JsonEscape(const std::string& text);

/// Renders a response as a single-line JSON object ("ok":true form).
/// Deterministic: equal responses render byte-identically.
std::string QueryResponseToJson(const QueryResponse& response);

/// Renders a failure as a single-line JSON object ("ok":false form).
std::string StatusToJson(const Status& status);

/// Parses and executes one request line against `engine`, returning the
/// JSON response line (without trailing newline). Unknown or malformed
/// requests yield an "ok":false response rather than an error.
/// Sets *quit when the line is the quit request.
std::string HandleRequestLine(QueryEngine& engine, const std::string& line,
                              bool* quit);

/// Runs the read-eval-print loop until EOF or `quit`. Returns the number
/// of failed requests (0 means every request succeeded).
uint64_t ServeLoop(QueryEngine& engine, std::istream& in, std::ostream& out);

}  // namespace swope

#endif  // SWOPE_ENGINE_SERVE_H_
