// DatasetRegistry: named, refcounted, resident tables for the engine.
//
// Queries address datasets by name; the registry keeps each table loaded
// exactly once and hands out shared_ptr handles, so a table stays alive
// while any in-flight query uses it even if it is evicted or replaced
// concurrently (tables are immutable, handles never dangle). A
// configurable memory budget bounds resident bytes; crossing it evicts
// least-recently-used datasets -- eviction only drops the registry's
// reference, reclaiming memory once the last query handle goes away.
//
// Tables may be heap-resident or mmap-backed (docs/STORAGE.md): the
// budget counts only heap bytes (Table::MemoryBytes()), while mapped
// bytes (Table::MappedBytes()) are OS-paged and tracked separately --
// evicting a mapped dataset drops the last registry reference, which
// munmaps the region once in-flight handles drain.
//
// Every dataset carries its content fingerprint (table/fingerprint.h),
// which the result and permutation caches use as their table identity:
// re-registering different data under the same name can therefore never
// serve stale cached answers.

#ifndef SWOPE_ENGINE_DATASET_REGISTRY_H_
#define SWOPE_ENGINE_DATASET_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/table/table.h"

namespace swope {

class Counter;
class EventLog;
class Gauge;
class MetricsRegistry;

/// An immutable registered dataset. Handles returned by Get() share
/// ownership; the table outlives eviction while any handle exists.
struct Dataset {
  std::string name;
  Table table;
  /// Content fingerprint (TableFingerprint).
  uint64_t fingerprint = 0;
  /// Exact resident size (Table::MemoryBytes(): heap-owned bit-packed
  /// payloads plus dictionaries), used for the memory budget.
  uint64_t memory_bytes = 0;
  /// Bytes served from mmap-backed regions (Table::MappedBytes()).
  /// OS-paged, so not charged against the heap budget.
  uint64_t mapped_bytes = 0;
  /// Resident count-min sidecar bytes (Table::SketchMemoryBytes()),
  /// tracked separately so the sketch footprint has its own gauge.
  uint64_t sketch_bytes = 0;
};

using DatasetHandle = std::shared_ptr<const Dataset>;

/// Thread-safe name -> Dataset map with LRU eviction under a byte budget.
class DatasetRegistry {
 public:
  /// `memory_budget_bytes` == 0 disables eviction (unlimited).
  explicit DatasetRegistry(uint64_t memory_budget_bytes = 0)
      : budget_(memory_budget_bytes) {}

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// Registers (or replaces) `name`. The table is fingerprinted and
  /// becomes immutable. May evict other datasets to respect the budget;
  /// the newly inserted dataset itself is never evicted by its own Put,
  /// even when it alone exceeds the budget (the budget is a target, not
  /// a hard admission bound).
  Status Put(const std::string& name, Table table) REQUIRES(!mutex_);

  /// Fetches a handle and marks the dataset most-recently-used.
  /// NotFound when `name` is not resident (never registered or evicted).
  Result<DatasetHandle> Get(const std::string& name) REQUIRES(!mutex_);

  /// Drops `name` from the registry (in-flight handles stay valid).
  Status Remove(const std::string& name) REQUIRES(!mutex_);

  /// Resident dataset names, sorted.
  std::vector<std::string> Names() const REQUIRES(!mutex_);

  struct Stats {
    size_t resident_datasets = 0;
    uint64_t resident_bytes = 0;
    uint64_t mapped_bytes = 0;
    uint64_t sketch_bytes = 0;
    uint64_t memory_budget_bytes = 0;
    uint64_t evictions = 0;
  };
  Stats GetStats() const REQUIRES(!mutex_);

  /// Mirrors eviction counts and the resident dataset/byte gauges into
  /// `metrics` (swope_registry_*). Call once, before concurrent use; the
  /// registry must outlive this object.
  void BindMetrics(MetricsRegistry* metrics) REQUIRES(!mutex_);

  /// Emits a dataset-evict event for every dataset that leaves the
  /// registry (LRU budget eviction or explicit Remove; the detail says
  /// which). Call once, before concurrent use; `events` must outlive the
  /// registry.
  void BindEventLog(EventLog* events) REQUIRES(!mutex_);

 private:
  struct Slot {
    DatasetHandle dataset;
    uint64_t last_used = 0;
  };

  /// Evicts LRU datasets (never `keep`) until resident bytes fit the
  /// budget or only `keep` remains.
  void EvictToBudget(const std::string& keep) REQUIRES(mutex_);

  const uint64_t budget_;
  mutable Mutex mutex_;
  std::map<std::string, Slot> datasets_ GUARDED_BY(mutex_);
  uint64_t tick_ GUARDED_BY(mutex_) = 0;
  uint64_t resident_bytes_ GUARDED_BY(mutex_) = 0;
  uint64_t mapped_bytes_ GUARDED_BY(mutex_) = 0;
  uint64_t sketch_bytes_ GUARDED_BY(mutex_) = 0;
  uint64_t evictions_ GUARDED_BY(mutex_) = 0;

  /// Optional event sink (null when unbound). Appended under mutex_;
  /// EventLog::Append is lock-free, so this never extends the critical
  /// section by a blocking wait.
  EventLog* event_log_ GUARDED_BY(mutex_) = nullptr;

  /// Optional metric mirrors (null when unbound). Updated under mutex_.
  Counter* evictions_metric_ GUARDED_BY(mutex_) = nullptr;
  Gauge* resident_datasets_metric_ GUARDED_BY(mutex_) = nullptr;
  Gauge* resident_bytes_metric_ GUARDED_BY(mutex_) = nullptr;
  Gauge* mapped_bytes_metric_ GUARDED_BY(mutex_) = nullptr;
  Gauge* sketch_bytes_metric_ GUARDED_BY(mutex_) = nullptr;

  /// Refreshes the resident gauges from the local tallies.
  void UpdateGauges() REQUIRES(mutex_);
};

}  // namespace swope

#endif  // SWOPE_ENGINE_DATASET_REGISTRY_H_
