// QueryEngine: the long-lived serving layer over the SWOPE library.
//
// One engine owns a DatasetRegistry of resident tables, a ResultCache of
// certified answers, a PermutationCache of shared row orders, and a
// ThreadPool executor. QueryEngine::Run is the single dispatcher for all
// six query kinds; Submit runs the same path asynchronously on the pool.
//
// Run's pipeline:
//   1. resolve the spec against the named dataset (canonicalization),
//   2. serve from ResultCache when a prior run certified the same
//      (fingerprint, canonical spec) -- zero rows sampled,
//   3. otherwise admit the query (bounded in-flight concurrency; waiting
//      respects the query's deadline), attach the shared permutation and
//      an ExecControl (cancellation + deadline, polled by the driver at
//      every sample-doubling round), execute, and cache the answer.
//
// Thread safety: every public method is safe to call concurrently.

#ifndef SWOPE_ENGINE_QUERY_ENGINE_H_
#define SWOPE_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <memory_resource>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/common/thread_annotations.h"
#include "src/common/thread_pool.h"
#include "src/core/exec_control.h"
#include "src/core/query_memory.h"
#include "src/engine/dataset_registry.h"
#include "src/engine/permutation_cache.h"
#include "src/engine/query_spec.h"
#include "src/engine/result_cache.h"
#include "src/obs/event_log.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/query_trace.h"

namespace swope {

/// Engine sizing knobs.
struct EngineConfig {
  /// Executor threads for Submit(); >= 1.
  size_t num_threads = 4;
  /// Worker threads for the intra-query shard-task phase
  /// (QueryOptions::pool), shared by every concurrently executing query;
  /// 1 = serial. Answers are byte-identical either way (docs/CORE.md,
  /// docs/SHARDING.md), so this is purely a latency knob.
  size_t intra_query_threads = 1;
  /// Scheduling mode for both pools (executor + intra-query). Never
  /// affects answers; kSingleQueue is the throughput A/B baseline.
  PoolMode pool_mode = PoolMode::kWorkStealing;
  /// When > 0, tables are resharded to this many rows per shard at
  /// registration (docs/SHARDING.md); 0 keeps each table's layout.
  uint64_t shard_size = 0;
  /// Admission control: queries executing concurrently (not counting
  /// cache hits, which bypass admission). Further Run calls wait; >= 1.
  size_t max_in_flight = 8;
  /// Admission control over *tasks*: bounds the summed shard counts of
  /// concurrently executing queries (each query's weight is its table's
  /// shard count -- the shard tasks it puts on the shared pool per
  /// round). 0 = unbounded. A query heavier than the whole budget still
  /// admits when it would run alone, so the bound cannot deadlock.
  size_t max_in_flight_tasks = 0;
  /// Load shedding: when > 0, a query that finds this many queries
  /// already waiting in admission is rejected immediately with
  /// Unavailable (counted in swope_engine_rejected_total) instead of
  /// queueing behind them. 0 = wait without bound.
  size_t max_admission_waiters = 0;
  /// DatasetRegistry byte budget; 0 = unlimited.
  uint64_t memory_budget_bytes = 0;
  /// ResultCache entries; 0 disables result caching.
  size_t result_cache_capacity = 256;
  /// PermutationCache entries; 0 disables permutation sharing.
  size_t permutation_cache_capacity = 16;
  /// Applied to specs with timeout_ms == 0; 0 = no default deadline.
  uint64_t default_timeout_ms = 0;
  /// Slow-query capture: an executed query whose wall time reaches this
  /// threshold records a slow-query event whose detail carries the
  /// query's stage profile (and round summary when traced), even when the
  /// client did not ask for profile=1. 0 disables capture.
  double slow_query_ms = 0.0;
  /// EventLog ring capacity (rounded up to a power of two, minimum 8).
  size_t event_log_capacity = EventLog::kDefaultCapacity;
  /// QueryMemory objects kept warm between queries (arena blocks plus
  /// decode buffers). Steady-state serving reuses these instead of
  /// allocating; sized to the expected executed-query concurrency.
  size_t query_memory_pool_size = 8;
};

/// Answer to one engine query. Move-only: executed queries carry the
/// arena lease their items live in.
struct QueryResponse {
  /// Declared first so it is destroyed last: `items` may be backed by
  /// this lease's arena, and dropping the lease rewinds it. Empty for
  /// cache hits (their items live on the default heap resource).
  QueryMemoryLease memory;
  /// Kind echo plus the canonical identity of the executed query.
  QueryKind kind = QueryKind::kEntropyTopK;
  uint64_t fingerprint = 0;
  std::string canonical_key;
  /// True when served from ResultCache without sampling.
  bool cache_hit = false;
  /// Executed queries: allocated from `memory`'s arena (valid while this
  /// response lives; copy before stashing long-term). Cache hits: a heap
  /// copy of the cached answer.
  std::pmr::vector<AttributeScore> items;
  QueryStats stats;
  /// Round-by-round trace, present when QuerySpec::trace was set and the
  /// query actually executed (cache hits run zero rounds and carry none).
  std::shared_ptr<const QueryTrace> trace;
  /// Per-stage time breakdown, present when QuerySpec::profile was set
  /// and the query actually executed (cache hits run zero stages and
  /// carry none). WallMs() is set to the executed query's wall time.
  std::shared_ptr<const StageProfiler> profile;
};

/// Monotonic counters, snapshot via QueryEngine::GetCounters.
struct EngineCounters {
  uint64_t queries_started = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_failed = 0;
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  uint64_t permutation_cache_hits = 0;
  uint64_t permutation_cache_misses = 0;
  /// Rows actually sampled by executed (non-cache-hit) queries.
  uint64_t rows_sampled = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t registry_evictions = 0;
  /// Queries that found every execution slot busy and had to wait in
  /// admission control (counted once per wait, not per poll).
  uint64_t admission_waits = 0;
  /// Queries shed at admission (queue full; EngineConfig::
  /// max_admission_waiters) -- distinct from cancellations and deadline
  /// misses, which count queries the engine accepted.
  uint64_t rejected = 0;
  /// Successful steals across both pools' work-stealing deques.
  uint64_t pool_steals = 0;
  /// Successful queries split by estimation path: sketch when at least
  /// one candidate was scored through a count-min sketch
  /// (QueryStats::sketch_candidates > 0), exact otherwise. Cache hits
  /// count under the path the cached execution took.
  uint64_t queries_sketch = 0;
  uint64_t queries_exact = 0;
  /// Rows appended through Ingest.
  uint64_t ingest_rows = 0;
  /// Worker utilization per pool, aggregated over the pool's workers from
  /// ThreadPool::GetWorkerStats: busy fraction = run / (run + idle), in
  /// [0, 1]; 0 before any task ran. intra_* are 0 when the engine has no
  /// intra-query pool (intra_query_threads <= 1).
  double executor_run_ms = 0.0;
  double executor_idle_ms = 0.0;
  double executor_utilization = 0.0;
  double intra_run_ms = 0.0;
  double intra_idle_ms = 0.0;
  double intra_utilization = 0.0;
  /// Events ever appended to the engine's EventLog (monotone; exceeds
  /// the ring capacity once it has wrapped).
  uint64_t events_logged = 0;
};

class QueryEngine {
 public:
  explicit QueryEngine(EngineConfig config = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Registers `table` under `name` (replacing any previous dataset of
  /// that name; in-flight queries keep their handle).
  Status RegisterDataset(const std::string& name, Table table);

  /// Loads a table from `path` (*.csv is CSV, anything else SWPB binary),
  /// optionally dropping columns with support > max_support (the paper's
  /// preprocessing; 0 keeps everything), and registers it. When
  /// `sketch_epsilon` > 0, columns with support > `sketch_threshold` get
  /// count-min sidecars attached on load (table/sketch_sidecar.h), so
  /// high-cardinality columns are servable via the sketch path without a
  /// per-query build. With `mmap` set, SWPB files load through the
  /// mapped path (binary_io.h): page-aligned payloads are borrowed from
  /// the mapping and stay OS-paged instead of heap-resident -- they do
  /// not count against the registry's memory budget. Note that
  /// EngineConfig::shard_size resharding (and max_support dropping high
  /// columns) re-packs affected payloads onto the heap.
  Status RegisterDatasetFile(const std::string& name, const std::string& path,
                             uint32_t max_support = 0,
                             double sketch_epsilon = 0.0,
                             uint32_t sketch_threshold = 1000,
                             bool mmap = false);

  Status RemoveDataset(const std::string& name);

  /// Appends `rows` (one vector of cell strings per row, in column order)
  /// to the resident dataset `name` and re-registers the result under the
  /// same name. The append is incremental (bit-packed payloads extend in
  /// place, sketch sidecars absorb the tail; table/append.h) but the
  /// fingerprint is recomputed, so cached answers for the old contents
  /// can never be served for the new ones.
  Status Ingest(const std::string& name,
                const std::vector<std::vector<std::string>>& rows);

  /// Synchronous dispatch. `cancel` may be null; when set, the caller may
  /// flip it from any thread to abort the query at the next round.
  Result<QueryResponse> Run(const QuerySpec& spec,
                            const CancellationToken* cancel = nullptr)
      REQUIRES(!admission_mutex_);

  /// Asynchronous dispatch on the engine's pool.
  std::future<Result<QueryResponse>> Submit(
      QuerySpec spec, const CancellationToken* cancel = nullptr);

  EngineCounters GetCounters() const;

  DatasetRegistry& registry() { return registry_; }
  const EngineConfig& config() const { return config_; }

  /// The engine's metric store: engine counters and latency histograms,
  /// cache and registry mirrors, and both pools' queue stats. Render with
  /// RenderPrometheusText() / RenderJson(); see docs/OBSERVABILITY.md.
  /// The worker-utilization gauges are refreshed by GetCounters(); call
  /// it before rendering when those must be current.
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The engine's event ring: admissions, rejections, completions,
  /// cancellations, deadline expiries, ingests, dataset loads/evictions,
  /// and slow-query captures (EngineConfig::slow_query_ms). Snapshot()
  /// is safe concurrently with serving.
  const EventLog& events() const { return event_log_; }

 private:
  /// Runs the resolved query under admission control.
  Result<QueryResponse> Execute(const DatasetHandle& dataset,
                                const ResolvedSpec& resolved,
                                const CancellationToken* cancel)
      REQUIRES(!admission_mutex_);

  /// Blocks until an execution slot and `task_weight` units of the task
  /// budget are free (or `control` cancels / expires, or the waiting
  /// queue is full) and claims them. Each successful admission must be
  /// paired with exactly one ReleaseSlot(task_weight). `dataset` labels
  /// the admit/reject events this emits.
  Status AdmitQuery(ExecControl& control, size_t task_weight,
                    const std::string& dataset) REQUIRES(!admission_mutex_);

  /// Returns an execution slot and task budget claimed by AdmitQuery.
  void ReleaseSlot(size_t task_weight) REQUIRES(!admission_mutex_);

  /// True when a query of `task_weight` may start now.
  bool AdmissibleLocked(size_t task_weight) const
      REQUIRES(admission_mutex_);

  /// Mirrors a registered dataset's shard count into the
  /// swope_engine_dataset_shards{dataset=...} gauge.
  void RecordShardGeometry(const std::string& name, size_t num_shards);

  /// Dispatches to the right driver; returns items via `response`.
  Result<QueryResponse> Dispatch(const Table& table,
                                 const ResolvedSpec& resolved,
                                 const QueryOptions& options);

  const EngineConfig config_;

  /// Declared first: every other member resolves handles into it at
  /// construction and updates them until destruction.
  MetricsRegistry metrics_;

  /// Declared before registry_ and pool_: both emit events into it until
  /// destruction (the registry via BindEventLog, queries via Execute).
  // NOLINTNEXTLINE(swope-lock-discipline): internally synchronized ring
  EventLog event_log_;

  DatasetRegistry registry_;
  ResultCache result_cache_;
  PermutationCache permutation_cache_;
  /// Pooled per-query memory (arena + decode scratch). shared_ptr so
  /// leases riding inside outstanding QueryResponses keep the pool alive
  /// even past engine destruction.
  std::shared_ptr<QueryMemoryPool> query_memory_pool_;

  Mutex admission_mutex_;
  CondVar admission_cv_;
  size_t in_flight_ GUARDED_BY(admission_mutex_) = 0;
  /// Summed task weights (table shard counts) of executing queries.
  size_t in_flight_tasks_ GUARDED_BY(admission_mutex_) = 0;
  /// Queries currently blocked in AdmitQuery.
  size_t admission_waiters_ GUARDED_BY(admission_mutex_) = 0;

  /// Engine metric handles (all resolved once in the constructor).
  Counter* const queries_started_;
  Counter* const queries_ok_;
  Counter* const queries_failed_;
  Counter* const cancelled_;
  Counter* const deadline_exceeded_;
  Counter* const rows_sampled_;
  Counter* const admission_waits_;
  Counter* const rejected_;
  Counter* const queries_sketch_;
  Counter* const queries_exact_;
  Counter* const ingest_rows_;
  Gauge* const in_flight_gauge_;
  Gauge* const admission_waiting_;
  /// Whole-query wall time, one histogram per query kind (indexed by
  /// static_cast<int>(QueryKind)). Cache hits are observed too: the
  /// latency a client saw is the latency, however it was served.
  Histogram* const query_latency_ms_[6];
  /// Sampling rounds per executed query (from QueryStats::iterations).
  Histogram* const query_rounds_;
  /// Per-shard task wall time inside the driver's round loop (wired to
  /// QueryOptions::shard_task_latency for every executed query).
  Histogram* const shard_task_ms_;
  /// In-flight task weight (summed shard counts of executing queries).
  Gauge* const in_flight_tasks_gauge_;
  /// Wall time of Ingest calls (parse + append + re-fingerprint).
  Histogram* const ingest_latency_ms_;
  /// Arena bytes reserved by the most recently completed executed query
  /// (swope_query_arena_bytes): the steady-state per-query footprint.
  Gauge* const query_arena_bytes_;
  /// Worker-utilization gauges per pool (swope_pool_worker_*,
  /// swope_pool_utilization_percent), refreshed by GetCounters() from
  /// ThreadPool::GetWorkerStats snapshots. The intra handles exist even
  /// when the intra pool does not (they just stay 0).
  Gauge* const executor_busy_ms_;
  Gauge* const executor_idle_ms_;
  Gauge* const executor_utilization_;
  Gauge* const intra_busy_ms_;
  Gauge* const intra_idle_ms_;
  Gauge* const intra_utilization_;

  /// Shared intra-query worker pool (null when intra_query_threads <= 1).
  /// Declared before pool_ so it outlives the executor: queries still
  /// draining from pool_ during destruction may be using it.
  std::unique_ptr<ThreadPool> intra_pool_;

  /// Last member: destroyed first, so queued queries finish while the
  /// rest of the engine is still alive.
  ThreadPool pool_;
};

}  // namespace swope

#endif  // SWOPE_ENGINE_QUERY_ENGINE_H_
