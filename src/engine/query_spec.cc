#include "src/engine/query_spec.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace swope {

namespace {

struct KindName {
  QueryKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {QueryKind::kEntropyTopK, "entropy-topk"},
    {QueryKind::kEntropyFilter, "entropy-filter"},
    {QueryKind::kMiTopK, "mi-topk"},
    {QueryKind::kMiFilter, "mi-filter"},
    {QueryKind::kNmiTopK, "nmi-topk"},
    {QueryKind::kNmiFilter, "nmi-filter"},
};

// Exact textual form of a double (round-trippable hexfloat), so the
// canonical key never conflates nearby values or splits equal ones.
std::string HexDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

Result<size_t> ResolveTargetColumn(const Table& table,
                                   const std::string& target) {
  if (target.empty()) {
    return Status::InvalidArgument("query spec: target attribute is required");
  }
  auto by_name = table.ColumnIndex(target);
  if (by_name.ok()) return by_name;
  char* end = nullptr;
  const unsigned long long index = std::strtoull(target.c_str(), &end, 10);
  if (end != target.c_str() && *end == '\0' && index < table.num_columns()) {
    return static_cast<size_t>(index);
  }
  return by_name.status();
}

}  // namespace

std::string_view QueryKindToString(QueryKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

Result<QueryKind> ParseQueryKind(std::string_view text) {
  for (const KindName& entry : kKindNames) {
    if (entry.name == text) return entry.kind;
  }
  return Status::InvalidArgument("unknown query kind '" + std::string(text) +
                                 "'");
}

bool IsTopKKind(QueryKind kind) {
  return kind == QueryKind::kEntropyTopK || kind == QueryKind::kMiTopK ||
         kind == QueryKind::kNmiTopK;
}

bool NeedsTarget(QueryKind kind) {
  return kind != QueryKind::kEntropyTopK && kind != QueryKind::kEntropyFilter;
}

Status QuerySpec::Validate() const {
  if (dataset.empty()) {
    return Status::InvalidArgument("query spec: dataset name is required");
  }
  SWOPE_RETURN_NOT_OK(options.Validate());
  if (options.shared_order != nullptr || options.control != nullptr ||
      options.pool != nullptr || options.trace != nullptr ||
      options.profiler != nullptr) {
    return Status::InvalidArgument(
        "query spec: shared_order / control / pool / trace / profiler are "
        "engine-managed and must be null on submitted specs (use "
        "QuerySpec::trace / QuerySpec::profile to request them)");
  }
  if (IsTopKKind(kind)) {
    if (k == 0) {
      return Status::InvalidArgument("query spec: top-k kinds need k >= 1");
    }
  } else {
    if (!(eta > 0.0)) {
      return Status::InvalidArgument(
          "query spec: filtering kinds need eta > 0");
    }
    if (kind == QueryKind::kNmiFilter && eta > 1.0) {
      return Status::InvalidArgument(
          "query spec: NMI filtering needs eta in (0, 1]");
    }
  }
  if (NeedsTarget(kind) && target.empty()) {
    return Status::InvalidArgument(
        "query spec: MI/NMI kinds need a target attribute");
  }
  return Status::OK();
}

Result<ResolvedSpec> ResolveSpec(const QuerySpec& spec, const Table& table) {
  SWOPE_RETURN_NOT_OK(spec.Validate());

  ResolvedSpec resolved;
  resolved.kind = spec.kind;
  resolved.eta = IsTopKKind(spec.kind) ? 0.0 : spec.eta;
  resolved.options = spec.options;
  resolved.timeout_ms = spec.timeout_ms;
  resolved.trace = spec.trace;
  resolved.profile = spec.profile;

  if (NeedsTarget(spec.kind)) {
    SWOPE_ASSIGN_OR_RETURN(resolved.target,
                           ResolveTargetColumn(table, spec.target));
  }
  if (IsTopKKind(spec.kind)) {
    const size_t h = table.num_columns();
    const size_t cap = spec.kind == QueryKind::kEntropyTopK
                           ? h
                           : (h > 0 ? h - 1 : 0);
    if (cap == 0) {
      return Status::InvalidArgument(
          "query spec: table has no candidate attributes for this kind");
    }
    resolved.k = std::min(spec.k, cap);
  }
  // Resolve the paper-default failure probability against this table so
  // "0 = 1/N" and an explicit equal value canonicalize identically.
  resolved.options.failure_probability =
      spec.options.ResolveFailureProbability(table.num_rows());

  std::string key;
  key.reserve(160);
  key += "kind=";
  key += QueryKindToString(resolved.kind);
  key += ";k=" + std::to_string(resolved.k);
  key += ";eta=" + HexDouble(resolved.eta);
  key += ";target=";
  key += NeedsTarget(resolved.kind) ? std::to_string(resolved.target) : "-";
  key += ";eps=" + HexDouble(resolved.options.epsilon);
  key += ";pf=" + HexDouble(resolved.options.failure_probability);
  key += ";seed=" + std::to_string(resolved.options.seed);
  key += ";m0=" + std::to_string(resolved.options.initial_sample_size);
  key += ";gf=" + HexDouble(resolved.options.growth_factor);
  key += ";dpl=" + std::to_string(resolved.options.dense_pair_limit);
  key += ";st=" + std::to_string(resolved.options.sketch_threshold);
  key += ";se=" + HexDouble(resolved.options.sketch_epsilon);
  key += ";seq=";
  key += resolved.options.sequential_sampling ? '1' : '0';
  resolved.canonical_key = std::move(key);
  return resolved;
}

}  // namespace swope
