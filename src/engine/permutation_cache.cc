#include "src/engine/permutation_cache.h"

#include <utility>

#include "src/obs/metrics.h"
#include "src/table/shuffle.h"

namespace swope {

void PermutationCache::BindMetrics(MetricsRegistry* metrics) {
  const MetricLabels labels = {{"cache", "permutation"}};
  MutexLock lock(mutex_);
  hits_metric_ = metrics->GetCounter("swope_cache_hits_total", labels);
  misses_metric_ = metrics->GetCounter("swope_cache_misses_total", labels);
  evictions_metric_ =
      metrics->GetCounter("swope_cache_evictions_total", labels);
  entries_metric_ = metrics->GetGauge("swope_cache_entries", labels);
}

std::shared_ptr<const std::vector<uint32_t>> PermutationCache::GetOrCreate(
    uint64_t fingerprint, uint32_t num_rows, uint64_t seed, bool sequential) {
  const Key key{fingerprint, sequential ? 0 : seed, sequential};
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.order->size() == num_rows) {
      ++hits_;
      if (hits_metric_ != nullptr) hits_metric_->Increment();
      it->second.last_used = ++tick_;
      return it->second.order;
    }
  }

  // Build outside the lock; the result is deterministic, so concurrent
  // builders for one key produce identical vectors and any may win.
  std::vector<uint32_t> order;
  if (sequential) {
    order.resize(num_rows);
    for (uint32_t i = 0; i < num_rows; ++i) order[i] = i;
  } else {
    order = ShuffledRowOrder(num_rows, seed);
  }
  auto shared =
      std::make_shared<const std::vector<uint32_t>>(std::move(order));

  MutexLock lock(mutex_);
  ++misses_;
  if (misses_metric_ != nullptr) misses_metric_->Increment();
  if (capacity_ == 0) return shared;
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.order->size() == num_rows) {
    // Raced with another builder; reuse the incumbent so concurrent
    // queries converge on one allocation.
    it->second.last_used = ++tick_;
    return it->second.order;
  }
  Entry& entry = entries_[key];
  entry.order = shared;
  entry.last_used = ++tick_;
  EvictToCapacity();
  if (entries_metric_ != nullptr) {
    entries_metric_->Set(static_cast<int64_t>(entries_.size()));
  }
  return shared;
}

PermutationCache::Stats PermutationCache::GetStats() const {
  MutexLock lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  return stats;
}

void PermutationCache::EvictToCapacity() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    entries_.erase(victim);
    ++evictions_;
    if (evictions_metric_ != nullptr) evictions_metric_->Increment();
  }
}

}  // namespace swope
