// Umbrella header: everything a library user needs.
//
//   #include "src/swope.h"
//
// pulls in the table substrate (CSV / binary IO, dictionary encoding),
// the four SWOPE query algorithms, the exact and sampling baselines, the
// synthetic dataset generators, the feature-selection helpers, the
// concurrent query engine (dataset registry, unified dispatch, result and
// permutation caching, line-protocol serving), the sketch substrate
// (count-min sketches, sidecar attachment, streaming append), and the
// observability layer (metrics registry, per-round query tracing).

#ifndef SWOPE_SWOPE_H_
#define SWOPE_SWOPE_H_

#include "src/baselines/entropy_filter.h"
#include "src/baselines/entropy_rank.h"
#include "src/baselines/exact.h"
#include "src/baselines/mi_filter.h"
#include "src/baselines/mi_rank.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/core/bounds.h"
#include "src/core/entropy.h"
#include "src/core/exec_control.h"
#include "src/core/query_options.h"
#include "src/core/query_result.h"
#include "src/core/sketch_estimation.h"
#include "src/core/swope_filter_entropy.h"
#include "src/core/swope_filter_mi.h"
#include "src/core/swope_filter_nmi.h"
#include "src/core/swope_topk_entropy.h"
#include "src/core/swope_topk_mi.h"
#include "src/core/swope_topk_nmi.h"
#include "src/datagen/dataset_presets.h"
#include "src/datagen/generator.h"
#include "src/engine/dataset_registry.h"
#include "src/engine/permutation_cache.h"
#include "src/engine/query_engine.h"
#include "src/engine/query_spec.h"
#include "src/engine/result_cache.h"
#include "src/engine/serve.h"
#include "src/eval/mrmr.h"
#include "src/obs/metrics.h"
#include "src/obs/query_trace.h"
#include "src/sketch/count_min.h"
#include "src/sketch/frequency_provider.h"
#include "src/table/append.h"
#include "src/table/binary_io.h"
#include "src/table/column_view.h"
#include "src/table/csv_reader.h"
#include "src/table/csv_writer.h"
#include "src/table/fingerprint.h"
#include "src/table/sketch_sidecar.h"
#include "src/table/table.h"
#include "src/table/table_builder.h"

#endif  // SWOPE_SWOPE_H_
