#include "src/obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "src/common/stopwatch.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace swope {

namespace {

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyNow().time_since_epoch())
          .count());
}

#if defined(__x86_64__) || defined(_M_X64)

uint64_t RawTicks() { return __rdtsc(); }

/// The TSC frequency is not architecturally published, so calibrate by
/// busy-spinning against SteadyNow() for a couple of milliseconds (no
/// sleeping; src/ code must never sleep). A 2 ms window bounds the
/// relative calibration error by the clock read jitter (~tens of ns),
/// well under the precision any stage readout needs.
double CalibrateTicksPerMs() {
  const uint64_t start_ticks = RawTicks();
  const uint64_t start_ns = SteadyNowNanos();
  uint64_t now_ns = start_ns;
  while (now_ns - start_ns < 2'000'000) {
    now_ns = SteadyNowNanos();
  }
  const uint64_t end_ticks = RawTicks();
  const double elapsed_ms = static_cast<double>(now_ns - start_ns) * 1e-6;
  return static_cast<double>(end_ticks - start_ticks) / elapsed_ms;
}

#elif defined(__aarch64__)

uint64_t RawTicks() {
  uint64_t ticks;
  asm volatile("mrs %0, cntvct_el0" : "=r"(ticks));
  return ticks;
}

/// The generic counter publishes its frequency, so no spin is needed.
double CalibrateTicksPerMs() {
  uint64_t freq_hz;
  asm volatile("mrs %0, cntfrq_el0" : "=r"(freq_hz));
  return static_cast<double>(freq_hz) * 1e-3;
}

#else

uint64_t RawTicks() { return SteadyNowNanos(); }

double CalibrateTicksPerMs() { return 1e6; }

#endif

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kGather:
      return "gather";
    case Stage::kCount:
      return "count";
    case Stage::kShardMerge:
      return "shard-merge";
    case Stage::kReplay:
      return "replay";
    case Stage::kIntervalUpdate:
      return "interval-update";
    case Stage::kSchedulingWait:
      return "scheduling-wait";
    case Stage::kFinalize:
      return "finalize";
  }
  return "unknown";
}

uint64_t ProfilerTicks() { return RawTicks(); }

double ProfilerTicksPerMs() {
  static const double ticks_per_ms = CalibrateTicksPerMs();
  return ticks_per_ms;
}

double ProfilerTicksToMs(uint64_t ticks) {
  return static_cast<double>(ticks) / ProfilerTicksPerMs();
}

double StageProfiler::StageMs(Stage stage) const {
  return ProfilerTicksToMs(cells_[static_cast<size_t>(stage)].ticks.load(
      std::memory_order_relaxed));
}

double StageProfiler::StageSumMs() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.ticks.load(std::memory_order_relaxed);
  }
  return ProfilerTicksToMs(total);
}

void StageProfiler::Clear() {
  for (Cell& cell : cells_) {
    cell.ticks.store(0, std::memory_order_relaxed);
    cell.calls.store(0, std::memory_order_relaxed);
  }
  wall_ms_ = 0.0;
  allocs_ = 0;
}

std::string FormatProfileTable(const StageProfiler& profiler) {
  const double sum_ms = profiler.StageSumMs();
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"stage", "calls", "ms", "% of sum"});
  char buffer[64];
  for (size_t i = 0; i < kNumStages; ++i) {
    const Stage stage = static_cast<Stage>(i);
    const uint64_t calls = profiler.StageCalls(stage);
    if (calls == 0) continue;
    const double ms = profiler.StageMs(stage);
    std::vector<std::string> cells;
    cells.emplace_back(StageName(stage));
    std::snprintf(buffer, sizeof(buffer), "%llu",
                  static_cast<unsigned long long>(calls));
    cells.emplace_back(buffer);
    std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
    cells.emplace_back(buffer);
    std::snprintf(buffer, sizeof(buffer), "%.1f",
                  sum_ms > 0.0 ? 100.0 * ms / sum_ms : 0.0);
    cells.emplace_back(buffer);
    rows.push_back(std::move(cells));
  }
  {
    std::vector<std::string> cells;
    cells.emplace_back("stage-sum");
    cells.emplace_back("");
    std::snprintf(buffer, sizeof(buffer), "%.3f", sum_ms);
    cells.emplace_back(buffer);
    cells.emplace_back("");
    rows.push_back(std::move(cells));
  }
  if (profiler.WallMs() > 0.0) {
    std::vector<std::string> cells;
    cells.emplace_back("wall");
    cells.emplace_back("");
    std::snprintf(buffer, sizeof(buffer), "%.3f", profiler.WallMs());
    cells.emplace_back(buffer);
    cells.emplace_back("");
    rows.push_back(std::move(cells));
  }

  std::vector<size_t> widths(rows.front().size(), 0);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += "  ";
      const std::string& cell = row[i];
      const size_t pad = widths[i] > cell.size() ? widths[i] - cell.size() : 0;
      if (i == 0) {
        out += cell;
        if (i + 1 < row.size()) out.append(pad, ' ');
      } else {
        out.append(pad, ' ');
        out += cell;
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace swope
