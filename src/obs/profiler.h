// StageProfiler: per-query attribution of CPU time across the fixed
// stages of an adaptive-sampling round -- the evidence layer for kernel
// work (where do cycles go: gather vs count?) and for adaptive shard
// sizing (how long is a (candidate x shard) task?).
//
// Timing uses a raw tick source: the TSC on x86-64, the generic counter
// on aarch64, and SteadyNow() nanoseconds elsewhere. Ticks are converted
// to milliseconds through a once-per-process calibration against
// SteadyNow() (busy-spin, no sleeping), so reading a stage back is cheap
// and starting/stopping a timer is one counter read -- cheap enough to
// wrap per-task work without distorting it.
//
// Profiling is an opt-in via QueryOptions::profiler, with the same
// discipline as QueryOptions::trace: when the pointer is null a
// StageTimer costs one branch and no clock read (BM_ProfileOverhead pins
// the disabled cost < 1%). Stage cells are relaxed atomics, so shard
// tasks running on pool workers record concurrently without locks.
//
// Semantics of the recorded numbers: each stage accumulates the CPU time
// spent inside that stage across all threads. On a serial run the stages
// partition the query's wall time (their sum is ~= wall). On a parallel
// run stage time is summed across workers, so the total can exceed wall
// time -- that is the point: it is the work, not the critical path.

#ifndef SWOPE_OBS_PROFILER_H_
#define SWOPE_OBS_PROFILER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace swope {

/// The fixed stage taxonomy of one adaptive-sampling query. Stages are
/// disjoint: no StageTimer nests inside another stage's timer.
enum class Stage : uint8_t {
  /// Decoding bit-packed codes into scratch buffers (ColumnView::Gather /
  /// GatherShard), including the MI target-column gather.
  kGather = 0,
  /// Histogram counting over gathered codes (FrequencyCounter /
  /// PairCounter AddCodes/AddPairs, sketch absorbs).
  kCount,
  /// Merging per-shard FrequencyCounter deltas in ascending shard order
  /// (the entropy-side reduction).
  kShardMerge,
  /// Scatter-and-replay of shard-gathered codes through the serial
  /// AddCodes stream (the MI/NMI-side reduction).
  kReplay,
  /// Interval arithmetic: lambda, Lemma-1 bias, interval composition.
  kIntervalUpdate,
  /// Waiting for an admission slot before the query could execute.
  kSchedulingWait,
  /// Round decisions and final ranking (DecisionPolicy Decide/Finalize).
  kFinalize,
};

inline constexpr size_t kNumStages = 7;

/// Stable lowercase stage name ("gather", "count", "shard-merge", ...).
const char* StageName(Stage stage);

/// Raw tick read from the fastest monotonic source the platform has.
/// Only meaningful as differences, and only when converted through
/// ProfilerTicksPerMs().
uint64_t ProfilerTicks();

/// Ticks per millisecond, calibrated once per process (thread-safe).
double ProfilerTicksPerMs();

/// Converts a tick delta to milliseconds.
double ProfilerTicksToMs(uint64_t ticks);

/// Per-query stage accumulator. Thread-safe: concurrent shard tasks on
/// pool workers record into relaxed atomic cells. Caller-owned, attached
/// to one query via QueryOptions::profiler.
class StageProfiler {
 public:
  StageProfiler() = default;

  StageProfiler(const StageProfiler&) = delete;
  StageProfiler& operator=(const StageProfiler&) = delete;

  /// Adds a tick delta to `stage` (and bumps its interval count).
  void Add(Stage stage, uint64_t ticks) {
    Cell& cell = cells_[static_cast<size_t>(stage)];
    cell.ticks.fetch_add(ticks, std::memory_order_relaxed);
    cell.calls.fetch_add(1, std::memory_order_relaxed);
  }

  /// Milliseconds accumulated in `stage`.
  double StageMs(Stage stage) const;
  /// Number of timed intervals recorded for `stage`.
  uint64_t StageCalls(Stage stage) const {
    return cells_[static_cast<size_t>(stage)].calls.load(
        std::memory_order_relaxed);
  }
  /// Sum of StageMs over all stages.
  double StageSumMs() const;

  /// Whole-query wall time, recorded once by the owner (the engine) after
  /// the query finishes; 0 until then. Not derived from stage cells: on a
  /// serial run the stage sum approximates it, on a parallel run the
  /// stage sum may exceed it.
  void SetWallMs(double wall_ms) { wall_ms_ = wall_ms; }
  double WallMs() const { return wall_ms_; }

  /// Heap allocations the query performed (interposer delta; see
  /// src/common/alloc_hook.h). Recorded once by the engine after the
  /// query finishes; 0 in production binaries. The serve profile block
  /// reports it as `allocs`.
  void SetAllocs(uint64_t allocs) { allocs_ = allocs; }
  uint64_t Allocs() const { return allocs_; }

  /// Drops all recorded time so one profiler can be reused across
  /// queries.
  void Clear();

 private:
  uint64_t allocs_ = 0;

  struct alignas(64) Cell {
    std::atomic<uint64_t> ticks{0};
    std::atomic<uint64_t> calls{0};
  };

  std::array<Cell, kNumStages> cells_;
  /// Written by the single owner thread after the query completes; never
  /// concurrent with readers.
  double wall_ms_ = 0.0;
};

/// RAII stage interval. Null profiler means one branch in the
/// constructor, one in the destructor, and no tick reads -- the disabled
/// cost the overhead benchmark pins.
class StageTimer {
 public:
  StageTimer(StageProfiler* profiler, Stage stage)
      : profiler_(profiler),
        stage_(stage),
        start_(profiler != nullptr ? ProfilerTicks() : 0) {}

  ~StageTimer() {
    if (profiler_ != nullptr) {
      profiler_->Add(stage_, ProfilerTicks() - start_);
    }
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  StageProfiler* const profiler_;
  const Stage stage_;
  const uint64_t start_;
};

/// Renders the profile as an aligned text table, one row per stage that
/// recorded time, plus a stage-sum line and (when set) the wall time:
///
///   stage              calls        ms    % of sum
///   gather                12     0.412        41.2
///   ...
std::string FormatProfileTable(const StageProfiler& profiler);

}  // namespace swope

#endif  // SWOPE_OBS_PROFILER_H_
