// MetricsRegistry: process-level counters, gauges, and latency histograms
// with Prometheus-style text exposition and a JSON snapshot.
//
// Design goals, in order:
//   1. Hot-path updates are lock-free. Counter shards its cells across
//      cache lines (threads hash to a shard, sums on read), Gauge and
//      Histogram are plain atomics, and no update ever takes the registry
//      mutex -- that mutex only guards registration and rendering.
//   2. Metric handles are stable raw pointers. GetCounter/GetGauge/
//      GetHistogram return the same pointer for the same (name, labels)
//      for the registry's lifetime, so call sites resolve their handles
//      once (at construction) and update through a pointer afterwards.
//   3. Exposition is deterministic: families and label sets render in
//      sorted order, so snapshots diff cleanly across runs.
//
// Naming follows the Prometheus conventions documented in
// docs/OBSERVABILITY.md: snake_case families prefixed `swope_`, counters
// suffixed `_total`, and unit suffixes spelled out (`_ms`, `_bytes`).
//
// The registry is instantiable (the engine owns one per instance, which
// keeps tests hermetic); nothing in this header is a singleton.

#ifndef SWOPE_OBS_METRICS_H_
#define SWOPE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace swope {

/// Label set attached to one metric instance, e.g. {{"kind", "mi-topk"}}.
/// Keys are sorted at registration so label order never splits a metric.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing counter, sharded across cache lines so that
/// concurrent writers (pool workers, engine threads) never contend on one
/// atomic. Reads sum the shards; they are monotone but not a linearizable
/// snapshot, which is all monitoring needs.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  Counter() = default;

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  /// Each thread picks one shard for its whole lifetime (round-robin over
  /// thread creation order), shared by every Counter in the process.
  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

/// An instantaneous signed value (queue depth, in-flight queries,
/// resident bytes). A single atomic: gauges are written rarely enough
/// that sharding would only blur the reported value.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  Gauge() = default;

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket histogram (Prometheus semantics: per-bucket counts are
/// cumulative in exposition, `le` is an inclusive upper bound, and the
/// final +Inf bucket catches everything). Bucket bounds are fixed at
/// registration, so Observe is two relaxed fetch_adds plus a CAS loop for
/// the sum -- no locks, no allocation.
class Histogram {
 public:
  void Observe(double value);

  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  struct Snapshot {
    /// Finite upper bounds; the implicit +Inf bucket is appended by the
    /// renderers. cumulative[i] counts observations <= bounds[i];
    /// cumulative.back() == count.
    std::vector<double> bounds;
    std::vector<uint64_t> cumulative;
    uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot GetSnapshot() const;

  /// `bounds` must be strictly ascending and non-empty.
  explicit Histogram(std::vector<double> bounds);

 private:
  const std::vector<double> bounds_;
  /// bounds_.size() + 1 cells; the last is the +Inf bucket. Non-cumulative
  /// internally (one fetch_add per Observe); renderers accumulate.
  const std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default wall-time buckets in milliseconds: 50us to 10s, roughly
/// geometric, chosen to resolve both cache hits (~us) and heavy MI
/// queries (~s).
const std::vector<double>& DefaultLatencyBucketsMs();

/// Fine-grained buckets in milliseconds: 1us to 50ms, for sub-millisecond
/// work like (candidate x shard) tasks, where the default set would fold
/// every observation into its bottom buckets.
const std::vector<double>& FineLatencyBucketsMs();

/// The metric store. Registration and rendering take a mutex; updates on
/// the returned handles never do. Get* calls are idempotent: the same
/// (name, labels) returns the same handle, so any component may resolve a
/// metric without coordinating ownership. Re-registering a name with a
/// different metric type aborts (it is a programming error, and silently
/// returning null would push the check onto every hot path).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, MetricLabels labels = {})
      REQUIRES(!mutex_);
  Gauge* GetGauge(const std::string& name, MetricLabels labels = {})
      REQUIRES(!mutex_);
  /// `bounds`: strictly ascending finite bucket upper bounds. Bounds are
  /// fixed by the first registration of (name, labels).
  Histogram* GetHistogram(const std::string& name, MetricLabels labels,
                          std::vector<double> bounds) REQUIRES(!mutex_);

  /// Prometheus text exposition format, families sorted by name:
  ///   # TYPE swope_engine_queries_ok_total counter
  ///   swope_engine_queries_ok_total 17
  ///   swope_pool_task_wait_ms_bucket{pool="executor",le="0.25"} 40
  ///   ...
  std::string RenderPrometheusText() const REQUIRES(!mutex_);

  /// One JSON object keyed by metric identity (same sort order):
  ///   {"counters":{"swope_engine_queries_ok_total":17,...},
  ///    "gauges":{...},
  ///    "histograms":{"name{label=\"v\"}":{"count":9,"sum":12.5,
  ///       "buckets":[{"le":"0.25","count":4},...,{"le":"+Inf","count":9}]}}
  std::string RenderJson() const REQUIRES(!mutex_);

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Entry {
    Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  /// (family name, rendered label string) -> metric. The rendered label
  /// string ("{k=\"v\",...}" or "") is canonical because labels are
  /// sorted first.
  using Key = std::pair<std::string, std::string>;

  Entry& GetOrCreate(const std::string& name, MetricLabels labels,
                     Type type) REQUIRES(!mutex_);

  mutable Mutex mutex_;
  std::map<Key, Entry> entries_ GUARDED_BY(mutex_);
};

}  // namespace swope

#endif  // SWOPE_OBS_METRICS_H_
