// EventLog: a bounded, lock-free ring of structured engine events --
// admissions, rejections, completions, cancellations, deadline expiries,
// ingests, dataset loads and evictions, and slow-query captures (a query
// over the engine's wall-time threshold persists its stage profile and
// round trace as the event's detail payload).
//
// Answers the forensic question metrics cannot: "what were the last N
// things the engine did, and which queries were slow and why?"
//
// Concurrency design (seqlock slots behind a ticket counter):
//   * A writer takes a global ticket (one fetch_add), which names both
//     its slot (ticket mod capacity) and its lap. It marks the slot odd
//     (write in progress), stores the payload as relaxed atomic words,
//     and publishes with a release store of the next even lap state.
//     Writers never take a lock; a writer lapping a slot spins only for
//     the previous writer's short copy window.
//   * Readers are wait-free against writers: Snapshot validates each
//     slot's state word before and after copying and simply skips slots
//     that are mid-write or have been overwritten. A snapshot is a
//     best-effort recent-history read, never a blocking one.
//
// Payload strings are truncated to fixed per-slot capacity; events are
// for humans and dashboards, not for replaying state.

#ifndef SWOPE_OBS_EVENT_LOG_H_
#define SWOPE_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace swope {

/// What happened. Stable names via EventKindName (serve `events` op and
/// docs/OBSERVABILITY.md use the same spelling).
enum class EventKind : uint8_t {
  /// A query acquired its admission slot(s) and is about to execute.
  kQueryAdmit = 0,
  /// A query was shed at admission (Status::Unavailable).
  kQueryReject,
  /// A query finished successfully (cache hits included).
  kQueryComplete,
  /// A query observed cancellation and unwound.
  kQueryCancelled,
  /// A query exceeded its deadline and unwound.
  kQueryDeadline,
  /// A successful query exceeded the engine's slow-query threshold; the
  /// detail payload carries its stage profile and round trace.
  kSlowQuery,
  /// Rows were appended to a dataset through ingest.
  kIngest,
  /// A dataset was registered (or replaced) in the registry.
  kDatasetLoad,
  /// A dataset left the registry (LRU budget eviction or explicit
  /// unload; the detail says which).
  kDatasetEvict,
};

/// Stable lowercase event-kind name ("query-admit", "slow-query", ...).
const char* EventKindName(EventKind kind);

/// Bounded multi-producer event ring. Writers are lock-free; readers
/// never block writers.
class EventLog {
 public:
  /// One decoded event, ordered by `sequence` (a global append index;
  /// gaps in a snapshot mean the ring wrapped or a slot was mid-write).
  struct Event {
    uint64_t sequence = 0;
    EventKind kind = EventKind::kQueryAdmit;
    /// Duration in milliseconds where the kind has one (complete, slow
    /// query, ingest); 0 otherwise.
    double wall_ms = 0.0;
    std::string dataset;
    std::string detail;
  };

  /// `capacity` is rounded up to a power of two (minimum 8).
  explicit EventLog(size_t capacity = kDefaultCapacity);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one event. `dataset` and `detail` are truncated to the
  /// slot's fixed capacity (kDatasetBytes / kDetailBytes minus the
  /// terminator). Safe from any thread.
  void Append(EventKind kind, std::string_view dataset,
              std::string_view detail, double wall_ms = 0.0);

  /// The most recent events in ascending sequence order, at most
  /// `max_events` of them (and never more than the ring holds). Slots
  /// being overwritten concurrently are skipped, not waited for.
  std::vector<Event> Snapshot(size_t max_events = SIZE_MAX) const;

  /// Total events ever appended (monotone; exceeds capacity() once the
  /// ring has wrapped).
  uint64_t TotalAppended() const {
    return next_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return capacity_; }

  static constexpr size_t kDefaultCapacity = 256;
  static constexpr size_t kDatasetBytes = 40;
  static constexpr size_t kDetailBytes = 704;

 private:
  /// The POD image serialized into a slot's word buffer.
  struct Record {
    uint64_t sequence;
    uint64_t kind;
    double wall_ms;
    char dataset[kDatasetBytes];
    char detail[kDetailBytes];
  };
  static constexpr size_t kWords = sizeof(Record) / sizeof(uint64_t);
  static_assert(sizeof(Record) % sizeof(uint64_t) == 0,
                "Record must be word-granular");

  struct Slot {
    /// Seqlock state: 0 = never written, 2*lap + 1 = lap's write in
    /// progress, 2*(lap + 1) = lap's write complete (which is also the
    /// value the next lap's writer waits for).
    std::atomic<uint64_t> state{0};
    std::atomic<uint64_t> words[kWords];
  };

  const size_t capacity_;
  const size_t mask_;
  const uint32_t shift_;
  std::atomic<uint64_t> next_{0};
  const std::unique_ptr<Slot[]> slots_;
};

}  // namespace swope

#endif  // SWOPE_OBS_EVENT_LOG_H_
