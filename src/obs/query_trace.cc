#include "src/obs/query_trace.h"

#include <algorithm>
#include <cstdio>

namespace swope {

namespace {

std::string FormatCell(const char* format, double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

std::string FormatCell(const char* format, uint64_t value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), format,
                static_cast<unsigned long long>(value));
  return buffer;
}

void AppendRow(std::string* out, const std::vector<std::string>& cells,
               const std::vector<size_t>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) *out += "  ";
    const std::string& cell = cells[i];
    out->append(widths[i] > cell.size() ? widths[i] - cell.size() : 0, ' ');
    *out += cell;
  }
  *out += "\n";
}

}  // namespace

std::string FormatTraceTable(const QueryTrace& trace,
                             bool include_wall_time) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back(
      {"round", "M", "lambda", "max_bias", "active", "decided", "cells"});
  if (include_wall_time) rows.front().push_back("ms");
  for (const RoundTrace& round : trace.rounds()) {
    std::vector<std::string> cells = {
        FormatCell("%llu", static_cast<uint64_t>(round.round)),
        FormatCell("%llu", round.sample_size),
        FormatCell("%.6f", round.lambda),
        FormatCell("%.6f", round.max_bias),
        FormatCell("%llu", static_cast<uint64_t>(round.active_before)),
        FormatCell("%llu", static_cast<uint64_t>(round.decided)),
        FormatCell("%llu", round.cells_scanned),
    };
    if (include_wall_time) cells.push_back(FormatCell("%.3f", round.wall_ms));
    rows.push_back(std::move(cells));
  }

  std::vector<size_t> widths(rows.front().size(), 0);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  for (const auto& row : rows) AppendRow(&out, row, widths);
  return out;
}

}  // namespace swope
