#include "src/obs/event_log.h"

#include <algorithm>
#include <cstring>
#include <memory>

namespace swope {

namespace {

size_t RoundUpPow2(size_t value) {
  size_t pow2 = 8;
  while (pow2 < value) pow2 <<= 1;
  return pow2;
}

uint32_t Log2(size_t pow2) {
  uint32_t shift = 0;
  while ((size_t{1} << shift) < pow2) ++shift;
  return shift;
}

void CopyTruncated(char* dst, size_t dst_size, std::string_view src) {
  const size_t n = std::min(src.size(), dst_size - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kQueryAdmit:
      return "query-admit";
    case EventKind::kQueryReject:
      return "query-reject";
    case EventKind::kQueryComplete:
      return "query-complete";
    case EventKind::kQueryCancelled:
      return "query-cancelled";
    case EventKind::kQueryDeadline:
      return "query-deadline";
    case EventKind::kSlowQuery:
      return "slow-query";
    case EventKind::kIngest:
      return "ingest";
    case EventKind::kDatasetLoad:
      return "dataset-load";
    case EventKind::kDatasetEvict:
      return "dataset-evict";
  }
  return "unknown";
}

EventLog::EventLog(size_t capacity)
    : capacity_(RoundUpPow2(capacity)),
      mask_(capacity_ - 1),
      shift_(Log2(capacity_)),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void EventLog::Append(EventKind kind, std::string_view dataset,
                      std::string_view detail, double wall_ms) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  const uint64_t lap = ticket >> shift_;

  Record record;
  std::memset(&record, 0, sizeof(record));
  record.sequence = ticket;
  record.kind = static_cast<uint64_t>(kind);
  record.wall_ms = wall_ms;
  CopyTruncated(record.dataset, sizeof(record.dataset), dataset);
  CopyTruncated(record.detail, sizeof(record.detail), detail);
  uint64_t words[kWords];
  std::memcpy(words, &record, sizeof(record));

  // Wait for the previous lap's writer to finish publishing this slot.
  // The wait window is one payload copy, so this spin is short and
  // bounded in practice; writers never block readers.
  uint64_t expected = 2 * lap;
  while (slot.state.load(std::memory_order_acquire) != expected) {
  }
  slot.state.store(expected + 1, std::memory_order_relaxed);
  for (size_t i = 0; i < kWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.state.store(2 * (lap + 1), std::memory_order_release);
}

std::vector<EventLog::Event> EventLog::Snapshot(size_t max_events) const {
  const uint64_t total = next_.load(std::memory_order_acquire);
  uint64_t first = total > capacity_ ? total - capacity_ : 0;
  if (total - first > max_events) first = total - max_events;

  std::vector<Event> out;
  out.reserve(static_cast<size_t>(total - first));
  for (uint64_t ticket = first; ticket < total; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    const uint64_t published = 2 * ((ticket >> shift_) + 1);
    for (int attempt = 0; attempt < 64; ++attempt) {
      const uint64_t before = slot.state.load(std::memory_order_acquire);
      if (before > published) break;  // Overwritten by a later lap.
      if (before != published) continue;  // Writer mid-copy; retry briefly.
      // Acquire word loads keep the state re-check below from being
      // reordered before them (gcc's TSan rejects the classic
      // atomic_thread_fence formulation); on x86 these are plain loads.
      uint64_t words[kWords];
      for (size_t i = 0; i < kWords; ++i) {
        words[i] = slot.words[i].load(std::memory_order_acquire);
      }
      if (slot.state.load(std::memory_order_acquire) != before) continue;
      Record record;
      std::memcpy(&record, words, sizeof(record));
      if (record.sequence != ticket) break;
      Event event;
      event.sequence = record.sequence;
      event.kind = static_cast<EventKind>(record.kind);
      event.wall_ms = record.wall_ms;
      record.dataset[sizeof(record.dataset) - 1] = '\0';
      record.detail[sizeof(record.detail) - 1] = '\0';
      event.dataset = record.dataset;
      event.detail = record.detail;
      out.push_back(std::move(event));
      break;
    }
  }
  return out;
}

}  // namespace swope
