// QueryTrace: a per-query, allocation-light record of every adaptive
// sampling round -- the observable form of the paper's convergence story.
//
// Each round the driver appends one RoundTrace: the sample size M it ran
// at, the El-Yaniv--Pechyony deviation bound lambda for that (n, M), the
// largest Lemma-1 bias slack across the still-active candidates, how many
// candidates were active before the round's decision and how many the
// decision retired, the cells scanned, and the round's wall time.
//
// Everything except wall_ms is a pure function of (dataset, spec, seed),
// so traces are byte-identical across thread counts -- the parallel
// determinism tests assert exactly that.
//
// Tracing is an opt-in via QueryOptions::trace. When the pointer is null
// the driver's only extra work is one branch per round, so the disabled
// cost is unmeasurable (see BM_MetricsOverhead).

#ifndef SWOPE_OBS_QUERY_TRACE_H_
#define SWOPE_OBS_QUERY_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace swope {

/// One adaptive-sampling round as the driver saw it.
struct RoundTrace {
  /// 1-based round index (matches QueryStats::iterations).
  uint32_t round = 0;
  /// Sample size M the round's intervals were computed at.
  uint64_t sample_size = 0;
  /// El-Yaniv--Pechyony deviation bound lambda(n, M) for this round.
  double lambda = 0.0;
  /// Largest Lemma-1 bias slack over candidates active entering the round
  /// (the additive half-width the decision policy had to overcome).
  double max_bias = 0.0;
  /// Candidates still undecided entering the round.
  uint32_t active_before = 0;
  /// Candidates the round's decision retired (resolved or pruned).
  uint32_t decided = 0;
  /// Cells scanned this round (rows grown x cells per active row).
  uint64_t cells_scanned = 0;
  /// Wall time of the round in milliseconds. The only field that is not
  /// deterministic across runs or thread counts.
  double wall_ms = 0.0;
};

/// The per-query round log. The driver calls Reserve() once with the
/// usual round budget and Record() once per round; appends never allocate
/// until a query exceeds the reservation, which keeps tracing off the
/// allocator in the steady state.
class QueryTrace {
 public:
  QueryTrace() { rounds_.reserve(kDefaultReserve); }

  void Record(const RoundTrace& round) { rounds_.push_back(round); }

  /// Drops recorded rounds but keeps the capacity, so one trace object
  /// can be reused across queries without reallocating.
  void Clear() { rounds_.clear(); }

  const std::vector<RoundTrace>& rounds() const { return rounds_; }
  bool empty() const { return rounds_.empty(); }
  size_t size() const { return rounds_.size(); }

 private:
  /// Doubling growth from M0 decides in well under 32 rounds for any
  /// dataset that fits in memory, so the default reservation makes the
  /// no-reallocation claim hold in practice.
  static constexpr size_t kDefaultReserve = 32;

  std::vector<RoundTrace> rounds_;
};

/// Renders the trace as an aligned text table, one row per round:
///
///   round         M    lambda  max_bias  active  decided       cells      ms
///       1      1024  0.031250  0.001953      12        3       98304   0.412
///
/// `include_wall_time` drops the trailing ms column, which is the one
/// nondeterministic column -- the determinism tests and the cli smoke
/// diff render without it.
std::string FormatTraceTable(const QueryTrace& trace,
                             bool include_wall_time = true);

}  // namespace swope

#endif  // SWOPE_OBS_QUERY_TRACE_H_
