#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/logging.h"

namespace swope {

namespace {

// Shortest exact rendering of a double for exposition (%.17g round-trips
// IEEE doubles, so equal values always render identically).
std::string RenderDouble(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// Bucket bound rendering favours human-readable short forms ("0.25",
// "100") over the exact form, which is safe because bounds come from
// static tables, not computation.
std::string RenderBound(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') escaped += '\\';
    if (c == '\n') {
      escaped += "\\n";
      continue;
    }
    escaped += c;
  }
  return escaped;
}

// Renders sorted labels as `{k="v",k2="v2"}` (empty string for no
// labels). This string is the canonical instance identity within a
// family.
std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string text = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) text += ",";
    first = false;
    text += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  text += "}";
  return text;
}

// Splices an extra label (the histogram `le`) into a rendered label
// string: `{a="b"}` + `le="x"` -> `{a="b",le="x"}`.
std::string WithLeLabel(const std::string& rendered, const std::string& le) {
  if (rendered.empty()) return "{le=\"" + le + "\"}";
  return rendered.substr(0, rendered.size() - 1) + ",le=\"" + le + "\"}";
}

std::string JsonEscapeString(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') escaped += '\\';
    escaped += c;
  }
  return escaped;
}

}  // namespace

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next_thread{0};
  thread_local const size_t index =
      next_thread.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() +
                                                         1)) {}

void Histogram::Observe(double value) {
  const size_t bucket =
      static_cast<size_t>(std::upper_bound(bounds_.begin(), bounds_.end(),
                                           value) -
                          bounds_.begin());
  // upper_bound finds the first bound > value; Prometheus `le` is
  // inclusive, so step back when the value sits exactly on a bound.
  const size_t index =
      (bucket > 0 && bounds_[bucket - 1] == value) ? bucket - 1 : bucket;
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.cumulative.reserve(bounds_.size() + 1);
  uint64_t running = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    snapshot.cumulative.push_back(running);
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.05, 0.1, 0.25, 0.5, 1,   2.5,  5,    10,
      25,   50,  100,  250, 500, 1000, 2500, 10000};
  return kBuckets;
}

const std::vector<double>& FineLatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
      0.5,   1,      2.5,   5,    10,    25,   50};
  return kBuckets;
}

MetricsRegistry::Entry& MetricsRegistry::GetOrCreate(const std::string& name,
                                                     MetricLabels labels,
                                                     Type type) {
  std::sort(labels.begin(), labels.end());
  const Key key{name, RenderLabels(labels)};
  MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.type != type) {
      SWOPE_LOG(kError) << "metric " << name << key.second
                        << " re-registered with a different type";
      std::abort();
    }
    return it->second;
  }
  return entries_.emplace(key, Entry{type, nullptr, nullptr, nullptr})
      .first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     MetricLabels labels) {
  Entry& entry = GetOrCreate(name, std::move(labels), Type::kCounter);
  if (entry.counter == nullptr) entry.counter = std::make_unique<Counter>();
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 MetricLabels labels) {
  Entry& entry = GetOrCreate(name, std::move(labels), Type::kGauge);
  if (entry.gauge == nullptr) entry.gauge = std::make_unique<Gauge>();
  return entry.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         MetricLabels labels,
                                         std::vector<double> bounds) {
  Entry& entry = GetOrCreate(name, std::move(labels), Type::kHistogram);
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return entry.histogram.get();
}

std::string MetricsRegistry::RenderPrometheusText() const {
  MutexLock lock(mutex_);
  std::string text;
  std::string last_family;
  for (const auto& [key, entry] : entries_) {
    const auto& [name, labels] = key;
    if (name != last_family) {
      last_family = name;
      text += "# TYPE " + name;
      switch (entry.type) {
        case Type::kCounter:
          text += " counter\n";
          break;
        case Type::kGauge:
          text += " gauge\n";
          break;
        case Type::kHistogram:
          text += " histogram\n";
          break;
      }
    }
    switch (entry.type) {
      case Type::kCounter:
        text += name + labels + " " +
                std::to_string(entry.counter->Value()) + "\n";
        break;
      case Type::kGauge:
        text +=
            name + labels + " " + std::to_string(entry.gauge->Value()) + "\n";
        break;
      case Type::kHistogram: {
        const Histogram::Snapshot snapshot = entry.histogram->GetSnapshot();
        for (size_t i = 0; i < snapshot.bounds.size(); ++i) {
          text += name + "_bucket" +
                  WithLeLabel(labels, RenderBound(snapshot.bounds[i])) + " " +
                  std::to_string(snapshot.cumulative[i]) + "\n";
        }
        text += name + "_bucket" + WithLeLabel(labels, "+Inf") + " " +
                std::to_string(snapshot.cumulative.back()) + "\n";
        text += name + "_sum" + labels + " " + RenderDouble(snapshot.sum) +
                "\n";
        text += name + "_count" + labels + " " +
                std::to_string(snapshot.count) + "\n";
        break;
      }
    }
  }
  return text;
}

std::string MetricsRegistry::RenderJson() const {
  MutexLock lock(mutex_);
  std::string counters, gauges, histograms;
  for (const auto& [key, entry] : entries_) {
    const std::string id =
        "\"" + JsonEscapeString(key.first + key.second) + "\"";
    switch (entry.type) {
      case Type::kCounter:
        if (!counters.empty()) counters += ",";
        counters += id + ":" + std::to_string(entry.counter->Value());
        break;
      case Type::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += id + ":" + std::to_string(entry.gauge->Value());
        break;
      case Type::kHistogram: {
        const Histogram::Snapshot snapshot = entry.histogram->GetSnapshot();
        if (!histograms.empty()) histograms += ",";
        histograms += id + ":{\"count\":" + std::to_string(snapshot.count) +
                      ",\"sum\":" + RenderDouble(snapshot.sum) +
                      ",\"buckets\":[";
        for (size_t i = 0; i < snapshot.bounds.size(); ++i) {
          if (i > 0) histograms += ",";
          histograms += "{\"le\":\"" + RenderBound(snapshot.bounds[i]) +
                        "\",\"count\":" +
                        std::to_string(snapshot.cumulative[i]) + "}";
        }
        if (!snapshot.bounds.empty()) histograms += ",";
        histograms += "{\"le\":\"+Inf\",\"count\":" +
                      std::to_string(snapshot.cumulative.back()) + "}]}";
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

}  // namespace swope
