// EntropyRank baseline (Wang & Ding, KDD 2019; Section 2.2 of the paper).
//
// Adaptive sampling top-k that returns the EXACT top-k set: it keeps
// doubling the sample until the k-th largest lower bound is no smaller
// than the (k+1)-th largest upper bound, so its cost scales with 1/Delta^2
// where Delta is the gap between the k-th and (k+1)-th scores. It shares
// SWOPE's bound machinery and sampling schedule so measured differences
// isolate the stopping rules, mirroring the paper's comparison.

#ifndef SWOPE_BASELINES_ENTROPY_RANK_H_
#define SWOPE_BASELINES_ENTROPY_RANK_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/core/query_options.h"
#include "src/core/query_result.h"
#include "src/table/table.h"

namespace swope {

/// Runs EntropyRank. `options.epsilon` is ignored (the answer is exact).
/// Items are sorted by descending lower bound at termination.
Result<TopKResult> EntropyRankTopK(const Table& table, size_t k,
                                   const QueryOptions& options = {});

}  // namespace swope

#endif  // SWOPE_BASELINES_ENTROPY_RANK_H_
