#include "src/baselines/entropy_filter.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/bounds.h"
#include "src/core/frequency_counter.h"
#include "src/core/prefix_sampler.h"
#include "src/table/column_view.h"

namespace swope {

Result<FilterResult> EntropyFilterQuery(const Table& table, double eta,
                                        const QueryOptions& options) {
  SWOPE_RETURN_NOT_OK(options.Validate());
  if (!(eta > 0.0)) {
    return Status::InvalidArgument("entropy filter: eta must be > 0");
  }
  const uint64_t n = table.num_rows();
  const size_t h = table.num_columns();
  if (h == 0) {
    return Status::InvalidArgument("entropy filter: table has no columns");
  }

  const double pf = options.ResolveFailureProbability(n);
  const uint64_t m0 =
      options.initial_sample_size > 0
          ? std::min<uint64_t>(n, std::max<uint64_t>(
                                      kMinSampleSize,
                                      options.initial_sample_size))
          : ComputeM0(n, h, pf, table.MaxSupport());
  const uint32_t i_max = MaxIterations(n, m0);
  const double p_iter = pf / (static_cast<double>(i_max) *
                              static_cast<double>(h));

  FilterResult result;
  result.stats.initial_sample_size = m0;

  PrefixSampler sampler(static_cast<uint32_t>(n), options.seed,
                        options.sequential_sampling);
  std::vector<FrequencyCounter> counters;
  std::vector<ColumnView> views;
  counters.reserve(h);
  views.reserve(h);
  for (size_t j = 0; j < h; ++j) {
    counters.emplace_back(table.column(j).support());
    views.emplace_back(table.column(j));
  }
  std::vector<ValueCode> scratch;
  std::vector<size_t> active(h);
  for (size_t j = 0; j < h; ++j) active[j] = j;

  uint64_t m = std::min<uint64_t>(m0, n);
  while (!active.empty()) {
    ++result.stats.iterations;
    const PrefixSampler::Range range = sampler.GrowTo(m);
    result.stats.cells_scanned +=
        (range.end - range.begin) * active.size();

    std::vector<size_t> still_active;
    still_active.reserve(active.size());
    for (size_t j : active) {
      const ValueCode* codes =
          views[j].Gather(sampler.order(), range.begin, range.end, scratch);
      counters[j].AddCodes(codes, range.end - range.begin);
      const EntropyInterval interval =
          MakeEntropyInterval(counters[j].SampleEntropy(),
                              views[j].support(), n, m, p_iter);
      if (interval.lower >= eta) {
        result.items.push_back({j, table.column(j).name(),
                                interval.Estimate(), interval.lower,
                                interval.upper});
      } else if (interval.upper < eta) {
        // rejected
      } else {
        still_active.push_back(j);
      }
    }
    active = std::move(still_active);

    if (m >= n) break;  // bounds are exact; everything classified above
    const uint64_t grown = static_cast<uint64_t>(
        std::ceil(static_cast<double>(m) * options.growth_factor));
    m = std::min<uint64_t>(n, std::max<uint64_t>(m + 1, grown));
  }

  std::sort(result.items.begin(), result.items.end(),
            [](const AttributeScore& a, const AttributeScore& b) {
              return a.index < b.index;
            });
  result.stats.final_sample_size = sampler.consumed();
  result.stats.candidates_remaining = active.size();
  result.stats.exhausted_dataset = (sampler.consumed() >= n);
  return result;
}

}  // namespace swope
