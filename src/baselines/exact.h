// Exact baselines: answer top-k and filtering queries by a full scan of
// every record (the "Exact" competitor in the paper's experiments).

#ifndef SWOPE_BASELINES_EXACT_H_
#define SWOPE_BASELINES_EXACT_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/core/query_result.h"
#include "src/table/table.h"

namespace swope {

/// Exact top-k on empirical entropy. Items are sorted by descending exact
/// score (ties by ascending column index); lower == upper == estimate.
Result<TopKResult> ExactTopKEntropy(const Table& table, size_t k);

/// Exact filtering on empirical entropy: attributes with H >= eta, in
/// ascending column-index order.
Result<FilterResult> ExactFilterEntropy(const Table& table, double eta);

/// Exact top-k on empirical mutual information against column `target`.
Result<TopKResult> ExactTopKMi(const Table& table, size_t target, size_t k);

/// Exact filtering on empirical mutual information against column
/// `target`.
Result<FilterResult> ExactFilterMi(const Table& table, size_t target,
                                   double eta);

}  // namespace swope

#endif  // SWOPE_BASELINES_EXACT_H_
