// EntropyFilter baseline (Wang & Ding, KDD 2019; Section 2.2 of the
// paper).
//
// Adaptive sampling filter that returns the EXACT answer set: an attribute
// is accepted only once its lower bound reaches eta and rejected only once
// its upper bound drops below eta, so its cost scales with 1/delta^2 where
// delta is the gap between an attribute's score and the threshold.

#ifndef SWOPE_BASELINES_ENTROPY_FILTER_H_
#define SWOPE_BASELINES_ENTROPY_FILTER_H_

#include "src/common/result.h"
#include "src/core/query_options.h"
#include "src/core/query_result.h"
#include "src/table/table.h"

namespace swope {

/// Runs EntropyFilter with threshold `eta`. `options.epsilon` is ignored
/// (the answer is exact). Items are in ascending column-index order.
Result<FilterResult> EntropyFilterQuery(const Table& table, double eta,
                                        const QueryOptions& options = {});

}  // namespace swope

#endif  // SWOPE_BASELINES_ENTROPY_FILTER_H_
