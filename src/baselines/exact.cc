#include "src/baselines/exact.h"

#include <algorithm>

#include "src/core/entropy.h"

namespace swope {

namespace {

// Sorts (score, index) pairs by descending score, ties by ascending index,
// and emits the first k as AttributeScores with degenerate intervals.
// Returns a pmr vector (on the default heap resource) to match the
// result types; the baselines take no QueryOptions and never use arenas.
std::pmr::vector<AttributeScore> TopKFromScores(
    const Table& table, const std::vector<double>& scores,
    const std::vector<size_t>& eligible, size_t k) {
  std::vector<size_t> order = eligible;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  order.resize(std::min(order.size(), k));
  std::pmr::vector<AttributeScore> items;
  items.reserve(order.size());
  for (size_t j : order) {
    items.push_back(
        {j, table.column(j).name(), scores[j], scores[j], scores[j]});
  }
  return items;
}

QueryStats ExactStats(const Table& table, uint64_t scans_per_row) {
  QueryStats stats;
  stats.final_sample_size = table.num_rows();
  stats.initial_sample_size = table.num_rows();
  stats.iterations = 1;
  stats.cells_scanned = table.num_rows() * scans_per_row;
  stats.exhausted_dataset = true;
  return stats;
}

}  // namespace

Result<TopKResult> ExactTopKEntropy(const Table& table, size_t k) {
  if (table.num_columns() == 0) {
    return Status::InvalidArgument("exact top-k: table has no columns");
  }
  if (k == 0) return Status::InvalidArgument("exact top-k: k must be >= 1");
  const std::vector<double> scores = ExactEntropies(table);
  std::vector<size_t> eligible(table.num_columns());
  for (size_t j = 0; j < eligible.size(); ++j) eligible[j] = j;
  TopKResult result;
  result.items = TopKFromScores(table, scores, eligible, k);
  result.stats = ExactStats(table, table.num_columns());
  return result;
}

Result<FilterResult> ExactFilterEntropy(const Table& table, double eta) {
  if (table.num_columns() == 0) {
    return Status::InvalidArgument("exact filter: table has no columns");
  }
  const std::vector<double> scores = ExactEntropies(table);
  FilterResult result;
  for (size_t j = 0; j < scores.size(); ++j) {
    if (scores[j] >= eta) {
      result.items.push_back(
          {j, table.column(j).name(), scores[j], scores[j], scores[j]});
    }
  }
  result.stats = ExactStats(table, table.num_columns());
  return result;
}

Result<TopKResult> ExactTopKMi(const Table& table, size_t target, size_t k) {
  if (k == 0) return Status::InvalidArgument("exact mi top-k: k must be >= 1");
  auto scores = ExactMutualInformations(table, target);
  if (!scores.ok()) return scores.status();
  std::vector<size_t> eligible;
  for (size_t j = 0; j < table.num_columns(); ++j) {
    if (j != target) eligible.push_back(j);
  }
  TopKResult result;
  result.items = TopKFromScores(table, *scores, eligible, k);
  // Per row: one marginal update per column plus one joint update per
  // candidate.
  result.stats = ExactStats(table, 2 * table.num_columns() - 1);
  return result;
}

Result<FilterResult> ExactFilterMi(const Table& table, size_t target,
                                   double eta) {
  auto scores = ExactMutualInformations(table, target);
  if (!scores.ok()) return scores.status();
  FilterResult result;
  for (size_t j = 0; j < table.num_columns(); ++j) {
    if (j == target) continue;
    if ((*scores)[j] >= eta) {
      result.items.push_back({j, table.column(j).name(), (*scores)[j],
                              (*scores)[j], (*scores)[j]});
    }
  }
  result.stats = ExactStats(table, 2 * table.num_columns() - 1);
  return result;
}

}  // namespace swope
