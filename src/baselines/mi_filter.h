// EntropyFilter extended to empirical mutual information (the paper's MI
// filtering competitor): exact accept/reject over MI confidence intervals.

#ifndef SWOPE_BASELINES_MI_FILTER_H_
#define SWOPE_BASELINES_MI_FILTER_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/core/query_options.h"
#include "src/core/query_result.h"
#include "src/table/table.h"

namespace swope {

/// Runs the exact-answer MI filtering baseline against column `target`
/// with threshold `eta`. `options.epsilon` is ignored. Items are in
/// ascending column-index order.
Result<FilterResult> MiFilterQuery(const Table& table, size_t target,
                                   double eta,
                                   const QueryOptions& options = {});

}  // namespace swope

#endif  // SWOPE_BASELINES_MI_FILTER_H_
