// EntropyRank extended to empirical mutual information (the paper's MI
// top-k competitor): exact-separation stopping rule over MI confidence
// intervals.

#ifndef SWOPE_BASELINES_MI_RANK_H_
#define SWOPE_BASELINES_MI_RANK_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/core/query_options.h"
#include "src/core/query_result.h"
#include "src/table/table.h"

namespace swope {

/// Runs the exact-answer MI top-k baseline against column `target`.
/// `options.epsilon` is ignored. Items are sorted by descending lower
/// bound at termination.
Result<TopKResult> MiRankTopK(const Table& table, size_t target, size_t k,
                              const QueryOptions& options = {});

}  // namespace swope

#endif  // SWOPE_BASELINES_MI_RANK_H_
