#include "src/baselines/mi_filter.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/bounds.h"
#include "src/core/frequency_counter.h"
#include "src/core/pair_counter.h"
#include "src/core/prefix_sampler.h"
#include "src/table/column_view.h"

namespace swope {

namespace {

struct MiState {
  size_t column = 0;
  ColumnView view;
  FrequencyCounter marginal{0};
  PairCounter joint{0, 0};
};

}  // namespace

Result<FilterResult> MiFilterQuery(const Table& table, size_t target,
                                   double eta, const QueryOptions& options) {
  SWOPE_RETURN_NOT_OK(options.Validate());
  if (!(eta > 0.0)) {
    return Status::InvalidArgument("mi filter baseline: eta must be > 0");
  }
  const uint64_t n = table.num_rows();
  const size_t h = table.num_columns();
  if (target >= h) {
    return Status::InvalidArgument(
        "mi filter baseline: target index out of range");
  }
  if (h < 2) {
    return Status::InvalidArgument(
        "mi filter baseline: need at least two columns");
  }

  const Column& target_col = table.column(target);
  const double pf = options.ResolveFailureProbability(n);
  const uint64_t m0 =
      options.initial_sample_size > 0
          ? std::min<uint64_t>(n, std::max<uint64_t>(
                                      kMinSampleSize,
                                      options.initial_sample_size))
          : ComputeM0(n, h, pf, table.MaxSupport());
  const uint32_t i_max = MaxIterations(n, m0);
  const double p_iter =
      pf / (3.0 * static_cast<double>(i_max) * static_cast<double>(h - 1));

  FilterResult result;
  result.stats.initial_sample_size = m0;

  PrefixSampler sampler(static_cast<uint32_t>(n), options.seed,
                        options.sequential_sampling);
  FrequencyCounter target_counter(target_col.support());
  std::vector<MiState> states;
  states.reserve(h - 1);
  for (size_t j = 0; j < h; ++j) {
    if (j == target) continue;
    MiState state;
    state.column = j;
    state.view = ColumnView(table.column(j));
    state.marginal = FrequencyCounter(table.column(j).support());
    state.joint = PairCounter(target_col.support(),
                              table.column(j).support(),
                              options.dense_pair_limit);
    states.push_back(std::move(state));
  }
  const ColumnView target_view(target_col);
  std::vector<ValueCode> target_slice;
  std::vector<ValueCode> scratch;
  std::vector<size_t> active(states.size());
  for (size_t i = 0; i < active.size(); ++i) active[i] = i;

  uint64_t m = std::min<uint64_t>(m0, n);
  while (!active.empty()) {
    ++result.stats.iterations;
    const PrefixSampler::Range range = sampler.GrowTo(m);
    const uint64_t count = range.end - range.begin;
    const ValueCode* target_codes =
        target_view.Gather(sampler.order(), range.begin, range.end,
                           target_slice);
    target_counter.AddCodes(target_codes, count);
    const EntropyInterval target_interval =
        MakeEntropyInterval(target_counter.SampleEntropy(),
                            target_col.support(), n, m, p_iter);
    result.stats.cells_scanned +=
        (range.end - range.begin) * (1 + 2 * active.size());

    std::vector<size_t> still_active;
    still_active.reserve(active.size());
    for (size_t idx : active) {
      MiState& state = states[idx];
      const Column& col = table.column(state.column);
      const ValueCode* codes =
          state.view.Gather(sampler.order(), range.begin, range.end, scratch);
      state.marginal.AddCodes(codes, count);
      state.joint.AddCodes(target_codes, codes, count);
      const EntropyInterval marginal_interval = MakeEntropyInterval(
          state.marginal.SampleEntropy(), col.support(), n, m, p_iter);
      const uint64_t u_bar = static_cast<uint64_t>(target_col.support()) *
                             static_cast<uint64_t>(col.support());
      const EntropyInterval joint_interval = MakeEntropyInterval(
          state.joint.SampleJointEntropy(), u_bar, n, m, p_iter);
      const MiInterval interval =
          MakeMiInterval(target_interval, marginal_interval, joint_interval);

      if (interval.lower >= eta) {
        result.items.push_back({state.column, col.name(),
                                interval.Estimate(), interval.lower,
                                interval.upper});
      } else if (interval.upper < eta) {
        // rejected
      } else {
        still_active.push_back(idx);
      }
    }
    active = std::move(still_active);

    if (m >= n) break;
    const uint64_t grown = static_cast<uint64_t>(
        std::ceil(static_cast<double>(m) * options.growth_factor));
    m = std::min<uint64_t>(n, std::max<uint64_t>(m + 1, grown));
  }

  std::sort(result.items.begin(), result.items.end(),
            [](const AttributeScore& a, const AttributeScore& b) {
              return a.index < b.index;
            });
  result.stats.final_sample_size = sampler.consumed();
  result.stats.candidates_remaining = active.size();
  result.stats.exhausted_dataset = (sampler.consumed() >= n);
  return result;
}

}  // namespace swope
