#include "src/baselines/entropy_rank.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/bounds.h"
#include "src/core/frequency_counter.h"
#include "src/core/prefix_sampler.h"
#include "src/table/column_view.h"

namespace swope {

namespace {

struct Candidate {
  size_t column = 0;
  ColumnView view;
  FrequencyCounter counter{0};
  EntropyInterval interval;
};

}  // namespace

Result<TopKResult> EntropyRankTopK(const Table& table, size_t k,
                                   const QueryOptions& options) {
  SWOPE_RETURN_NOT_OK(options.Validate());
  const uint64_t n = table.num_rows();
  const size_t h = table.num_columns();
  if (h == 0) {
    return Status::InvalidArgument("entropy rank: table has no columns");
  }
  if (k == 0) return Status::InvalidArgument("entropy rank: k must be >= 1");
  k = std::min(k, h);

  const double pf = options.ResolveFailureProbability(n);
  const uint64_t m0 =
      options.initial_sample_size > 0
          ? std::min<uint64_t>(n, std::max<uint64_t>(
                                      kMinSampleSize,
                                      options.initial_sample_size))
          : ComputeM0(n, h, pf, table.MaxSupport());
  const uint32_t i_max = MaxIterations(n, m0);
  const double p_iter = pf / (static_cast<double>(i_max) *
                              static_cast<double>(h));

  TopKResult result;
  result.stats.initial_sample_size = m0;

  PrefixSampler sampler(static_cast<uint32_t>(n), options.seed,
                        options.sequential_sampling);
  std::vector<Candidate> candidates(h);
  for (size_t j = 0; j < h; ++j) {
    candidates[j].column = j;
    candidates[j].view = ColumnView(table.column(j));
    candidates[j].counter = FrequencyCounter(table.column(j).support());
  }
  std::vector<ValueCode> scratch;
  std::vector<size_t> active(h);
  for (size_t j = 0; j < h; ++j) active[j] = j;

  auto finalize = [&](uint64_t m) {
    std::vector<size_t> order = active;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (candidates[a].interval.lower != candidates[b].interval.lower) {
        return candidates[a].interval.lower > candidates[b].interval.lower;
      }
      return a < b;
    });
    order.resize(std::min(order.size(), k));
    for (size_t idx : order) {
      const Candidate& c = candidates[idx];
      result.items.push_back({c.column, table.column(c.column).name(),
                              c.interval.Estimate(), c.interval.lower,
                              c.interval.upper});
    }
    result.stats.final_sample_size = m;
    result.stats.candidates_remaining = active.size();
    result.stats.exhausted_dataset = (m >= n);
  };

  uint64_t m = std::min<uint64_t>(m0, n);
  for (;;) {
    ++result.stats.iterations;
    const PrefixSampler::Range range = sampler.GrowTo(m);
    for (size_t idx : active) {
      Candidate& c = candidates[idx];
      const ValueCode* codes =
          c.view.Gather(sampler.order(), range.begin, range.end, scratch);
      c.counter.AddCodes(codes, range.end - range.begin);
      c.interval = MakeEntropyInterval(c.counter.SampleEntropy(),
                                       c.view.support(), n, m, p_iter);
    }
    result.stats.cells_scanned +=
        (range.end - range.begin) * active.size();

    // When k or fewer candidates survive, they are the answer.
    if (active.size() <= k) {
      finalize(m);
      return result;
    }

    // Exact-separation stopping rule: k-th largest lower bound >= (k+1)-th
    // largest upper bound.
    std::vector<double> lowers;
    std::vector<double> uppers;
    lowers.reserve(active.size());
    uppers.reserve(active.size());
    for (size_t idx : active) {
      lowers.push_back(candidates[idx].interval.lower);
      uppers.push_back(candidates[idx].interval.upper);
    }
    std::nth_element(lowers.begin(), lowers.begin() + (k - 1), lowers.end(),
                     std::greater<double>());
    const double kth_lower = lowers[k - 1];
    std::nth_element(uppers.begin(), uppers.begin() + k, uppers.end(),
                     std::greater<double>());
    const double k1th_upper = uppers[k];

    if (kth_lower >= k1th_upper || m >= n) {
      finalize(m);
      return result;
    }

    // Prune candidates that can no longer reach the top-k.
    std::erase_if(active, [&](size_t idx) {
      return candidates[idx].interval.upper < kth_lower;
    });

    const uint64_t grown = static_cast<uint64_t>(
        std::ceil(static_cast<double>(m) * options.growth_factor));
    m = std::min<uint64_t>(n, std::max<uint64_t>(m + 1, grown));
  }
}

}  // namespace swope
