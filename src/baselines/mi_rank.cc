#include "src/baselines/mi_rank.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/bounds.h"
#include "src/core/frequency_counter.h"
#include "src/core/pair_counter.h"
#include "src/core/prefix_sampler.h"
#include "src/table/column_view.h"

namespace swope {

namespace {

struct MiCandidate {
  size_t column = 0;
  ColumnView view;
  FrequencyCounter marginal{0};
  PairCounter joint{0, 0};
  MiInterval interval;
};

}  // namespace

Result<TopKResult> MiRankTopK(const Table& table, size_t target, size_t k,
                              const QueryOptions& options) {
  SWOPE_RETURN_NOT_OK(options.Validate());
  const uint64_t n = table.num_rows();
  const size_t h = table.num_columns();
  if (target >= h) {
    return Status::InvalidArgument("mi rank: target index out of range");
  }
  if (h < 2) {
    return Status::InvalidArgument("mi rank: need at least two columns");
  }
  if (k == 0) return Status::InvalidArgument("mi rank: k must be >= 1");
  k = std::min(k, h - 1);

  const Column& target_col = table.column(target);
  const double pf = options.ResolveFailureProbability(n);
  const uint64_t m0 =
      options.initial_sample_size > 0
          ? std::min<uint64_t>(n, std::max<uint64_t>(
                                      kMinSampleSize,
                                      options.initial_sample_size))
          : ComputeM0(n, h, pf, table.MaxSupport());
  const uint32_t i_max = MaxIterations(n, m0);
  const double p_iter =
      pf / (3.0 * static_cast<double>(i_max) * static_cast<double>(h - 1));

  TopKResult result;
  result.stats.initial_sample_size = m0;

  PrefixSampler sampler(static_cast<uint32_t>(n), options.seed,
                        options.sequential_sampling);
  FrequencyCounter target_counter(target_col.support());
  std::vector<MiCandidate> candidates;
  candidates.reserve(h - 1);
  for (size_t j = 0; j < h; ++j) {
    if (j == target) continue;
    MiCandidate c;
    c.column = j;
    c.view = ColumnView(table.column(j));
    c.marginal = FrequencyCounter(table.column(j).support());
    c.joint = PairCounter(target_col.support(), table.column(j).support(),
                          options.dense_pair_limit);
    candidates.push_back(std::move(c));
  }
  const ColumnView target_view(target_col);
  std::vector<ValueCode> target_slice;
  std::vector<ValueCode> scratch;
  std::vector<size_t> active(candidates.size());
  for (size_t i = 0; i < active.size(); ++i) active[i] = i;

  auto finalize = [&](uint64_t m) {
    std::vector<size_t> order = active;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (candidates[a].interval.lower != candidates[b].interval.lower) {
        return candidates[a].interval.lower > candidates[b].interval.lower;
      }
      return candidates[a].column < candidates[b].column;
    });
    order.resize(std::min(order.size(), k));
    for (size_t idx : order) {
      const MiCandidate& c = candidates[idx];
      result.items.push_back({c.column, table.column(c.column).name(),
                              c.interval.Estimate(), c.interval.lower,
                              c.interval.upper});
    }
    result.stats.final_sample_size = m;
    result.stats.candidates_remaining = active.size();
    result.stats.exhausted_dataset = (m >= n);
  };

  uint64_t m = std::min<uint64_t>(m0, n);
  for (;;) {
    ++result.stats.iterations;
    const PrefixSampler::Range range = sampler.GrowTo(m);
    const uint64_t count = range.end - range.begin;
    const ValueCode* target_codes =
        target_view.Gather(sampler.order(), range.begin, range.end,
                           target_slice);
    target_counter.AddCodes(target_codes, count);
    const EntropyInterval target_interval =
        MakeEntropyInterval(target_counter.SampleEntropy(),
                            target_col.support(), n, m, p_iter);
    for (size_t idx : active) {
      MiCandidate& c = candidates[idx];
      const ValueCode* codes =
          c.view.Gather(sampler.order(), range.begin, range.end, scratch);
      c.marginal.AddCodes(codes, count);
      c.joint.AddCodes(target_codes, codes, count);
      const EntropyInterval marginal_interval = MakeEntropyInterval(
          c.marginal.SampleEntropy(), c.view.support(), n, m, p_iter);
      const uint64_t u_bar = static_cast<uint64_t>(target_col.support()) *
                             static_cast<uint64_t>(c.view.support());
      const EntropyInterval joint_interval = MakeEntropyInterval(
          c.joint.SampleJointEntropy(), u_bar, n, m, p_iter);
      c.interval =
          MakeMiInterval(target_interval, marginal_interval, joint_interval);
    }
    result.stats.cells_scanned +=
        (range.end - range.begin) * (1 + 2 * active.size());

    if (active.size() <= k) {
      finalize(m);
      return result;
    }

    std::vector<double> lowers;
    std::vector<double> uppers;
    lowers.reserve(active.size());
    uppers.reserve(active.size());
    for (size_t idx : active) {
      lowers.push_back(candidates[idx].interval.lower);
      uppers.push_back(candidates[idx].interval.upper);
    }
    std::nth_element(lowers.begin(), lowers.begin() + (k - 1), lowers.end(),
                     std::greater<double>());
    const double kth_lower = lowers[k - 1];
    std::nth_element(uppers.begin(), uppers.begin() + k, uppers.end(),
                     std::greater<double>());
    const double k1th_upper = uppers[k];

    if (kth_lower >= k1th_upper || m >= n) {
      finalize(m);
      return result;
    }

    std::erase_if(active, [&](size_t idx) {
      return candidates[idx].interval.upper < kth_lower;
    });

    const uint64_t grown = static_cast<uint64_t>(
        std::ceil(static_cast<double>(m) * options.growth_factor));
    m = std::min<uint64_t>(n, std::max<uint64_t>(m + 1, grown));
  }
}

}  // namespace swope
