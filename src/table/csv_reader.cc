#include "src/table/csv_reader.h"

#include <fstream>
#include <string_view>
#include <vector>

#include "src/table/table_builder.h"

namespace swope {

namespace {

// Incremental CSV record parser. Feed characters; collects one record's
// fields at a time.
class RecordParser {
 public:
  explicit RecordParser(char delimiter) : delimiter_(delimiter) {}

  // Parses the next record from `input`. Returns false on clean EOF with
  // no record started; fills `fields` and returns true otherwise. Sets a
  // non-OK status on malformed input.
  bool NextRecord(std::istream& input, std::vector<std::string>& fields,
                  Status& status) {
    fields.clear();
    status = Status::OK();
    std::string field;
    bool in_quotes = false;
    bool field_was_quoted = false;
    bool any_char = false;
    int ch;
    while ((ch = input.get()) != std::char_traits<char>::eof()) {
      const char c = static_cast<char>(ch);
      any_char = true;
      if (in_quotes) {
        if (c == '"') {
          if (input.peek() == '"') {
            field.push_back('"');
            input.get();
          } else {
            in_quotes = false;
          }
        } else {
          field.push_back(c);
        }
        continue;
      }
      if (c == '"') {
        if (!field.empty()) {
          status = Status::Corruption(
              "csv: quote inside unquoted field at record " +
              std::to_string(record_number_ + 1));
          return false;
        }
        in_quotes = true;
        field_was_quoted = true;
        continue;
      }
      if (c == delimiter_) {
        fields.push_back(std::move(field));
        field.clear();
        field_was_quoted = false;
        continue;
      }
      if (c == '\r') {
        if (input.peek() == '\n') input.get();
        FinishRecord(fields, std::move(field));
        return true;
      }
      if (c == '\n') {
        FinishRecord(fields, std::move(field));
        return true;
      }
      field.push_back(c);
    }
    if (in_quotes) {
      status = Status::Corruption("csv: unterminated quoted field at record " +
                                  std::to_string(record_number_ + 1));
      return false;
    }
    if (!any_char) return false;  // clean EOF
    // Final record without trailing newline. A lone quoted empty field is
    // a real (empty) field; distinguish via field_was_quoted.
    if (!field.empty() || !fields.empty() || field_was_quoted) {
      FinishRecord(fields, std::move(field));
      return true;
    }
    return false;
  }

  uint64_t record_number() const { return record_number_; }

 private:
  void FinishRecord(std::vector<std::string>& fields, std::string&& last) {
    fields.push_back(std::move(last));
    ++record_number_;
  }

  char delimiter_;
  uint64_t record_number_ = 0;
};

}  // namespace

Result<Table> ReadCsv(std::istream& input, const CsvOptions& options) {
  if (options.delimiter == '"' || options.delimiter == '\n' ||
      options.delimiter == '\r') {
    return Status::InvalidArgument("csv: invalid delimiter");
  }
  RecordParser parser(options.delimiter);
  std::vector<std::string> record;
  Status status;

  std::vector<std::string> header;
  if (options.has_header) {
    if (!parser.NextRecord(input, record, status)) {
      if (!status.ok()) return status;
      return Status::Corruption("csv: empty input, expected header");
    }
    header = record;
  } else {
    // Peek the first data record to learn the column count.
    if (!parser.NextRecord(input, record, status)) {
      if (!status.ok()) return status;
      return Status::Corruption("csv: empty input");
    }
    header.reserve(record.size());
    for (size_t i = 0; i < record.size(); ++i) {
      header.push_back("c" + std::to_string(i));
    }
  }

  auto builder = TableBuilder::Make(std::move(header));
  if (!builder.ok()) return builder.status();

  uint64_t rows = 0;
  auto append = [&](const std::vector<std::string>& rec) -> Status {
    if (rec.size() != builder->num_columns()) {
      return Status::Corruption(
          "csv: record " + std::to_string(parser.record_number()) + " has " +
          std::to_string(rec.size()) + " fields, expected " +
          std::to_string(builder->num_columns()));
    }
    std::vector<std::string_view> views(rec.begin(), rec.end());
    return builder->AppendRowViews(views);
  };

  if (!options.has_header) {
    // The record peeked above is data.
    SWOPE_RETURN_NOT_OK(append(record));
    ++rows;
  }
  while ((options.max_rows == 0 || rows < options.max_rows) &&
         parser.NextRecord(input, record, status)) {
    SWOPE_RETURN_NOT_OK(append(record));
    ++rows;
  }
  if (!status.ok()) return status;
  return std::move(*builder).Finish();
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("csv: cannot open '" + path + "'");
  return ReadCsv(file, options);
}

}  // namespace swope
