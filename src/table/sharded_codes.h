// ShardedCodes: a bit-packed column split into fixed-size row shards.
//
// Paper-scale columns (pus/enem at up to 33.7M rows) cannot be built,
// counted, or appended to as one contiguous blob, and shard-parallel
// counting needs independently decodable row ranges. A ShardedCodes
// holds one PackedCodes per shard of `shard_size` rows (the last shard
// ragged), all at the column's canonical width. Sharding is purely an
// in-memory decomposition: the wire format stays the single contiguous
// payload (Flatten concatenates on save, FromPacked splits on load), so
// SWPB files written before and after sharding are byte-identical.
//
// Row addressing is split-radix: global row r lives in shard
// r / shard_size at local index r % shard_size. Hot paths address one
// shard at a time (ColumnView::GatherShard) so the width-specialized
// batch kernels run unchanged per shard; the global accessors below are
// for cold paths and for slices that must preserve permutation order
// across shards (the sketch path). docs/SHARDING.md has the full story.

#ifndef SWOPE_TABLE_SHARDED_CODES_H_
#define SWOPE_TABLE_SHARDED_CODES_H_

#include <cstdint>
#include <vector>

#include "src/table/packed_codes.h"

namespace swope {

/// Process-wide default shard size (rows per shard) used by every
/// Column/Table factory that is not given an explicit geometry. One
/// million rows keeps small tables single-shard (no behavior change for
/// existing datasets) while bounding any one allocation or shard task.
uint64_t DefaultShardSize();

/// Overrides the default shard size (engine/CLI startup and tests);
/// values below 1 are clamped to 1. Affects subsequently constructed
/// columns only.
void SetDefaultShardSize(uint64_t shard_size);

/// Immutable sharded bit-packed sequence of codes.
class ShardedCodes {
 public:
  ShardedCodes() = default;

  /// Packs `codes` (all < 2^width) into shards of `shard_size` rows.
  static ShardedCodes Pack(const std::vector<ValueCode>& codes,
                           uint32_t width, uint64_t shard_size);

  /// Splits an already-packed contiguous payload (the wire layout) into
  /// shards of `shard_size` rows. O(n) decode + repack on load.
  static ShardedCodes FromPacked(const PackedCodes& whole,
                                 uint64_t shard_size);

  /// Borrowed-words split: shards reference disjoint spans of one
  /// externally owned contiguous payload (the mmap-loaded column path)
  /// with no decode or copy. Requires every shard boundary to fall on a
  /// word boundary -- shard_size must be a multiple of 64 rows (64 *
  /// width bits is word-aligned for every width) unless everything fits
  /// in one shard; unaligned geometries return InvalidArgument and the
  /// caller falls back to the owned loader. Lifetime/guard contract as
  /// PackedCodes::BorrowWords.
  static Result<ShardedCodes> BorrowWords(uint64_t size, uint32_t width,
                                          const uint64_t* words,
                                          uint64_t shard_size);

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t width() const { return width_; }

  /// Rows per full shard (>= 1 even when empty; the last shard may hold
  /// fewer rows).
  uint64_t shard_size() const { return shard_size_; }
  size_t num_shards() const { return shards_.size(); }
  const PackedCodes& shard(size_t s) const { return shards_[s]; }
  /// Global row index of shard `s`'s first row.
  uint64_t ShardBegin(size_t s) const { return s * shard_size_; }
  size_t ShardOf(uint64_t row) const {
    return static_cast<size_t>(row / shard_size_);
  }
  uint32_t LocalRow(uint64_t row) const {
    return static_cast<uint32_t>(row % shard_size_);
  }

  /// Single-value decode (cold path).
  ValueCode Get(uint64_t row) const {
    return shards_[ShardOf(row)].Get(LocalRow(row));
  }

  /// Decodes the contiguous global range [begin, end) into `out`,
  /// batch-decoding each intersected shard.
  void Decode(uint64_t begin, uint64_t end, ValueCode* out) const;

  /// Decodes the `count` values at global rows order[0..count) into
  /// `out`, preserving the order (the sketch path depends on it).
  /// Single-shard columns use the batch gather kernel; multi-shard
  /// columns route each row to its shard.
  void Gather(const uint32_t* order, uint64_t count, ValueCode* out) const;

  /// Decodes everything into a fresh vector (tests / cold paths).
  std::vector<ValueCode> ToVector() const;

  /// Concatenates all shards into the contiguous wire layout
  /// (binary_io's save path).
  PackedCodes Flatten() const;

  /// Returns a new sequence with `tail` appended at `width` bits (>= the
  /// current width), keeping this sequence's shard size. Width-stable
  /// appends copy full shards verbatim, extend only the ragged last
  /// shard, and pack fresh shards for the remainder; a width change
  /// repacks every shard.
  ShardedCodes Append(const std::vector<ValueCode>& tail,
                      uint32_t width) const;

  /// The same values under a different shard size.
  ShardedCodes Resharded(uint64_t shard_size) const;

  /// Exact resident heap payload bytes across shards (including each
  /// owned shard's padding word; borrowed shards contribute 0).
  uint64_t MemoryBytes() const;

  /// Payload bytes referenced in a mapped region across shards; 0 for
  /// fully owned storage.
  uint64_t MappedBytes() const;

 private:
  ShardedCodes(uint64_t size, uint32_t width, uint64_t shard_size,
               std::vector<PackedCodes> shards)
      : size_(size),
        width_(width),
        shard_size_(shard_size),
        shards_(std::move(shards)) {}

  uint64_t size_ = 0;
  uint32_t width_ = 0;
  uint64_t shard_size_ = 1;
  std::vector<PackedCodes> shards_;
};

}  // namespace swope

#endif  // SWOPE_TABLE_SHARDED_CODES_H_
