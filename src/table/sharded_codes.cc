#include "src/table/sharded_codes.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace swope {

namespace {

constexpr uint64_t kFactoryDefaultShardSize = 1ULL << 20;

std::atomic<uint64_t>& DefaultShardSizeSlot() {
  static std::atomic<uint64_t> slot{kFactoryDefaultShardSize};
  return slot;
}

}  // namespace

uint64_t DefaultShardSize() {
  return DefaultShardSizeSlot().load(std::memory_order_relaxed);
}

void SetDefaultShardSize(uint64_t shard_size) {
  DefaultShardSizeSlot().store(std::max<uint64_t>(shard_size, 1),
                               std::memory_order_relaxed);
}

ShardedCodes ShardedCodes::Pack(const std::vector<ValueCode>& codes,
                                uint32_t width, uint64_t shard_size) {
  shard_size = std::max<uint64_t>(shard_size, 1);
  const uint64_t n = codes.size();
  std::vector<PackedCodes> shards;
  shards.reserve(static_cast<size_t>((n + shard_size - 1) / shard_size));
  std::vector<ValueCode> chunk;
  for (uint64_t begin = 0; begin < n; begin += shard_size) {
    const uint64_t end = std::min(n, begin + shard_size);
    chunk.assign(codes.begin() + static_cast<ptrdiff_t>(begin),
                 codes.begin() + static_cast<ptrdiff_t>(end));
    shards.push_back(PackedCodes::Pack(chunk, width));
  }
  return ShardedCodes(n, width, shard_size, std::move(shards));
}

ShardedCodes ShardedCodes::FromPacked(const PackedCodes& whole,
                                      uint64_t shard_size) {
  shard_size = std::max<uint64_t>(shard_size, 1);
  const uint64_t n = whole.size();
  std::vector<PackedCodes> shards;
  shards.reserve(static_cast<size_t>((n + shard_size - 1) / shard_size));
  std::vector<ValueCode> chunk;
  for (uint64_t begin = 0; begin < n; begin += shard_size) {
    const uint64_t end = std::min(n, begin + shard_size);
    chunk.resize(end - begin);
    whole.Decode(begin, end, chunk.data());
    shards.push_back(PackedCodes::Pack(chunk, whole.width()));
  }
  return ShardedCodes(n, whole.width(), shard_size, std::move(shards));
}

Result<ShardedCodes> ShardedCodes::BorrowWords(uint64_t size,
                                               uint32_t width,
                                               const uint64_t* words,
                                               uint64_t shard_size) {
  shard_size = std::max<uint64_t>(shard_size, 1);
  if (size > shard_size && shard_size % 64 != 0) {
    return Status::InvalidArgument(
        "sharded codes: borrowed split needs shard_size % 64 == 0, got " +
        std::to_string(shard_size));
  }
  std::vector<PackedCodes> shards;
  shards.reserve(static_cast<size_t>((size + shard_size - 1) / shard_size));
  for (uint64_t begin = 0; begin < size; begin += shard_size) {
    const uint64_t rows = std::min(size - begin, shard_size);
    // begin * width is a multiple of 64 by the alignment precondition,
    // so each shard starts exactly at a word.
    const uint64_t word_offset = width == 0 ? 0 : begin * width / 64;
    auto shard = PackedCodes::BorrowWords(rows, width, words + word_offset);
    if (!shard.ok()) return shard.status();
    shards.push_back(std::move(*shard));
  }
  return ShardedCodes(size, width, shard_size, std::move(shards));
}

void ShardedCodes::Decode(uint64_t begin, uint64_t end,
                          ValueCode* out) const {
  while (begin < end) {
    const size_t s = ShardOf(begin);
    const uint64_t shard_begin = ShardBegin(s);
    const uint64_t local_begin = begin - shard_begin;
    const uint64_t local_end =
        std::min(end - shard_begin, shards_[s].size());
    shards_[s].Decode(local_begin, local_end, out);
    out += local_end - local_begin;
    begin = shard_begin + local_end;
  }
}

void ShardedCodes::Gather(const uint32_t* order, uint64_t count,
                          ValueCode* out) const {
  if (shards_.size() == 1) {
    shards_[0].Gather(order, count, out);
    return;
  }
  for (uint64_t i = 0; i < count; ++i) {
    out[i] = Get(order[i]);
  }
}

std::vector<ValueCode> ShardedCodes::ToVector() const {
  std::vector<ValueCode> codes(size_);
  if (size_ > 0) Decode(0, size_, codes.data());
  return codes;
}

PackedCodes ShardedCodes::Flatten() const {
  if (shards_.size() == 1) return shards_[0];
  return PackedCodes::Pack(ToVector(), width_);
}

ShardedCodes ShardedCodes::Append(const std::vector<ValueCode>& tail,
                                  uint32_t width) const {
  if (width != width_) {
    // Support crossed a power-of-two boundary: repack everything.
    std::vector<ValueCode> codes = ToVector();
    codes.insert(codes.end(), tail.begin(), tail.end());
    return Pack(codes, width, shard_size_);
  }
  std::vector<PackedCodes> shards = shards_;
  uint64_t consumed = 0;
  // Extend the ragged last shard to a full shard first.
  if (!shards.empty() && shards.back().size() < shard_size_) {
    const uint64_t room = shard_size_ - shards.back().size();
    const uint64_t take = std::min<uint64_t>(room, tail.size());
    std::vector<ValueCode> chunk(tail.begin(),
                                 tail.begin() + static_cast<ptrdiff_t>(take));
    shards.back() = shards.back().Append(chunk, width);
    consumed = take;
  }
  // Pack the remainder as fresh shards.
  while (consumed < tail.size()) {
    const uint64_t take =
        std::min<uint64_t>(shard_size_, tail.size() - consumed);
    std::vector<ValueCode> chunk(
        tail.begin() + static_cast<ptrdiff_t>(consumed),
        tail.begin() + static_cast<ptrdiff_t>(consumed + take));
    shards.push_back(PackedCodes::Pack(chunk, width));
    consumed += take;
  }
  return ShardedCodes(size_ + tail.size(), width, shard_size_,
                      std::move(shards));
}

ShardedCodes ShardedCodes::Resharded(uint64_t shard_size) const {
  shard_size = std::max<uint64_t>(shard_size, 1);
  if (shard_size == shard_size_) return *this;
  return Pack(ToVector(), width_, shard_size);
}

uint64_t ShardedCodes::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const PackedCodes& shard : shards_) bytes += shard.MemoryBytes();
  return bytes;
}

uint64_t ShardedCodes::MappedBytes() const {
  uint64_t bytes = 0;
  for (const PackedCodes& shard : shards_) bytes += shard.MappedBytes();
  return bytes;
}

}  // namespace swope
