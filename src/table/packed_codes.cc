#include "src/table/packed_codes.h"

#include <array>
#include <cassert>
#include <cstring>
#include <utility>

namespace swope {

namespace {

// One decode step with the width a compile-time constant. Widths that
// divide 64 never straddle a word boundary, so they take the single-word
// path; the rest byte-align the bit offset and do one unaligned 64-bit
// load -- the in-byte remainder is at most 7 bits, so any width up to 32
// fits in the loaded word (7 + 32 < 64), and the padding word keeps the
// read in bounds. Either way the loop body is branch-free.
template <uint32_t W>
inline ValueCode Extract(const uint64_t* words, uint64_t i) {
  if constexpr (W == 0) {
    (void)words;
    (void)i;
    return 0;
  } else if constexpr (64 % W == 0) {
    constexpr uint32_t kPerWord = 64 / W;
    constexpr uint64_t kMask = (uint64_t{1} << W) - 1;
    const uint64_t word = words[i / kPerWord];
    const uint32_t shift = static_cast<uint32_t>(i % kPerWord) * W;
    return static_cast<ValueCode>((word >> shift) & kMask);
  } else {
    constexpr uint64_t kMask = (uint64_t{1} << W) - 1;
    const uint64_t bit = i * W;
    uint64_t word;  // little-endian host, as binary_io already requires
    std::memcpy(&word, reinterpret_cast<const char*>(words) + (bit >> 3),
                sizeof(word));
    return static_cast<ValueCode>((word >> (bit & 7)) & kMask);
  }
}

template <uint32_t W>
void GatherKernel(const uint64_t* words, const uint32_t* order,
                  uint64_t count, ValueCode* out) {
  for (uint64_t i = 0; i < count; ++i) {
    out[i] = Extract<W>(words, order[i]);
  }
}

template <uint32_t W>
void DecodeKernel(const uint64_t* words, uint64_t begin, uint64_t end,
                  ValueCode* out) {
  for (uint64_t i = begin; i < end; ++i) {
    out[i - begin] = Extract<W>(words, i);
  }
}

using GatherFn = void (*)(const uint64_t*, const uint32_t*, uint64_t,
                          ValueCode*);
using DecodeFn = void (*)(const uint64_t*, uint64_t, uint64_t, ValueCode*);

template <uint32_t... Ws>
constexpr std::array<GatherFn, sizeof...(Ws)> MakeGatherTable(
    std::integer_sequence<uint32_t, Ws...>) {
  return {&GatherKernel<Ws>...};
}

template <uint32_t... Ws>
constexpr std::array<DecodeFn, sizeof...(Ws)> MakeDecodeTable(
    std::integer_sequence<uint32_t, Ws...>) {
  return {&DecodeKernel<Ws>...};
}

// One instantiation per width 0..32; dispatch is a single indexed call
// per batch.
constexpr auto kGatherKernels =
    MakeGatherTable(std::make_integer_sequence<uint32_t, 33>{});
constexpr auto kDecodeKernels =
    MakeDecodeTable(std::make_integer_sequence<uint32_t, 33>{});

}  // namespace

PackedCodes PackedCodes::Pack(const std::vector<ValueCode>& codes,
                              uint32_t width) {
  assert(width <= 32);
  const uint64_t n = codes.size();
  std::vector<uint64_t> words;
  if (width > 0 && n > 0) {
    words.assign(NumDataWords(n, width) + 1, 0);
    for (uint64_t i = 0; i < n; ++i) {
      assert(width == 32 ||
             codes[i] < (uint64_t{1} << width));
      const uint64_t bit = i * width;
      const uint64_t word = bit >> 6;
      const uint32_t shift = static_cast<uint32_t>(bit & 63);
      words[word] |= static_cast<uint64_t>(codes[i]) << shift;
      if (shift + width > 64) {
        words[word + 1] |= static_cast<uint64_t>(codes[i]) >> (64 - shift);
      }
    }
  }
  return PackedCodes(n, width, std::move(words));
}

Result<PackedCodes> PackedCodes::FromWords(uint64_t size, uint32_t width,
                                           std::vector<uint64_t> words) {
  if (width > 32) {
    return Status::InvalidArgument("packed codes: width " +
                                   std::to_string(width) + " > 32");
  }
  if (size > MaxSizeForWidth(width)) {
    // Without this, NumDataWords wraps uint64 and a tiny words vector
    // would pass the count check below while size_ claims billions of
    // values -- every later Decode would then read out of bounds.
    return Status::InvalidArgument(
        "packed codes: size " + std::to_string(size) +
        " overflows the bit count for width " + std::to_string(width));
  }
  const uint64_t expect =
      (width == 0 || size == 0) ? 0 : NumDataWords(size, width);
  if (words.size() != expect) {
    return Status::InvalidArgument(
        "packed codes: got " + std::to_string(words.size()) +
        " payload words, expected " + std::to_string(expect));
  }
  if (expect > 0) words.push_back(0);  // in-memory padding word
  return PackedCodes(size, width, std::move(words));
}

Result<PackedCodes> PackedCodes::BorrowWords(uint64_t size, uint32_t width,
                                             const uint64_t* words) {
  if (width > 32) {
    return Status::InvalidArgument("packed codes: width " +
                                   std::to_string(width) + " > 32");
  }
  if (size > MaxSizeForWidth(width)) {
    return Status::InvalidArgument(
        "packed codes: size " + std::to_string(size) +
        " overflows the bit count for width " + std::to_string(width));
  }
  if (width == 0 || size == 0) {
    // No payload to borrow; an owned empty sequence behaves identically.
    return PackedCodes(size, width, std::vector<uint64_t>{});
  }
  if (words == nullptr ||
      (reinterpret_cast<uintptr_t>(words) % alignof(uint64_t)) != 0) {
    return Status::InvalidArgument(
        "packed codes: borrowed words must be 8-byte aligned");
  }
  return PackedCodes(size, width, words);
}

void PackedCodes::Decode(uint64_t begin, uint64_t end,
                         ValueCode* out) const {
  assert(begin <= end && end <= size_);
  kDecodeKernels[width_](word_base(), begin, end, out);
}

void PackedCodes::Gather(const uint32_t* order, uint64_t count,
                         ValueCode* out) const {
  kGatherKernels[width_](word_base(), order, count, out);
}

std::vector<ValueCode> PackedCodes::ToVector() const {
  std::vector<ValueCode> codes(size_);
  if (size_ > 0) Decode(0, size_, codes.data());
  return codes;
}

PackedCodes PackedCodes::Append(const std::vector<ValueCode>& tail,
                                uint32_t width) const {
  assert(width >= width_ && width <= 32);
  if (width != width_) {
    // Width grew: decode everything once and repack at the new width.
    std::vector<ValueCode> codes = ToVector();
    codes.insert(codes.end(), tail.begin(), tail.end());
    return Pack(codes, width);
  }
  const uint64_t n = size_ + tail.size();
  std::vector<uint64_t> words;
  if (width > 0 && n > 0) {
    // Copy the old payload (dropping the padding word, which the loop
    // below may turn into real payload) and pack the tail behind it.
    // word_base() so borrowed (mapped) payloads append into an owned
    // copy.
    words.assign(NumDataWords(n, width) + 1, 0);
    const uint64_t* base = word_base();
    std::copy(base, base + NumDataWords(size_, width), words.begin());
    for (uint64_t i = 0; i < tail.size(); ++i) {
      assert(width == 32 || tail[i] < (uint64_t{1} << width));
      const uint64_t bit = (size_ + i) * width;
      const uint64_t word = bit >> 6;
      const uint32_t shift = static_cast<uint32_t>(bit & 63);
      words[word] |= static_cast<uint64_t>(tail[i]) << shift;
      if (shift + width > 64) {
        words[word + 1] |= static_cast<uint64_t>(tail[i]) >> (64 - shift);
      }
    }
  }
  return PackedCodes(n, width, std::move(words));
}

}  // namespace swope
