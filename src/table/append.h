// Streaming ingest: append raw rows to an immutable Table without a full
// re-encode.
//
// Tables are value types, so "append" means building a successor table
// that shares as much work as possible with its predecessor:
//   * each column's bit-packed payload is extended in place-shape --
//     copied words plus packed tail -- as long as the dictionary growth
//     does not cross a power-of-two width boundary; only a boundary
//     crossing repacks that one column,
//   * label dictionaries grow by the new values in first-seen order,
//     exactly as TableBuilder would have assigned them, and
//   * count-min sidecars (src/table/sketch_sidecar.h) are cloned and
//     absorb just the appended codes.
// The result is a table whose fingerprint differs from the original's,
// which is what keys cache invalidation in the engine (a re-registered
// dataset drops every cached answer). See docs/SKETCH.md.

#ifndef SWOPE_TABLE_APPEND_H_
#define SWOPE_TABLE_APPEND_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/table/table.h"

namespace swope {

/// Appends `rows` (each exactly one raw string value per column, in
/// column order) to `table`. Values of labeled columns are matched
/// against the dictionary, new values extending it in first-seen order;
/// values of label-less columns must parse as decimal codes (the inverse
/// of Column::LabelOf's fallback), and may extend the support. Fails
/// with InvalidArgument on a malformed row without modifying anything --
/// the input table is untouched either way.
Result<Table> AppendRowsToTable(
    const Table& table, const std::vector<std::vector<std::string>>& rows);

}  // namespace swope

#endif  // SWOPE_TABLE_APPEND_H_
