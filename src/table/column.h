// Column: a dictionary-encoded categorical column.
//
// The paper's model (Section 2.1) assumes attribute values fall in
// [1, u_alpha] after a one-to-one preprocessing match. We store codes in
// [0, u) as uint32_t plus an optional dictionary of original string labels,
// which is exactly that preprocessing made concrete.

#ifndef SWOPE_TABLE_COLUMN_H_
#define SWOPE_TABLE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace swope {

/// Value code type: a dictionary-encoded attribute value in [0, support()).
using ValueCode = uint32_t;

/// An immutable dictionary-encoded column. `support` is u_alpha, the number
/// of distinct attribute values; every stored code is < support.
class Column {
 public:
  /// Validating factory. Fails if any code is >= support, or if support is 0
  /// while codes are present, or if `labels` is non-empty but its size does
  /// not equal support.
  static Result<Column> Make(std::string name, uint32_t support,
                             std::vector<ValueCode> codes,
                             std::vector<std::string> labels = {});

  /// Convenience factory for tests/generators holding already-valid data:
  /// computes support as max(code)+1 (0 for an empty column).
  static Column FromCodes(std::string name, std::vector<ValueCode> codes);

  Column() = default;

  const std::string& name() const { return name_; }
  /// u_alpha: the number of distinct values the dictionary admits. Note
  /// this counts dictionary slots; a validated CSV/builder column always
  /// has every slot occupied at least once.
  uint32_t support() const { return support_; }
  /// Number of rows.
  uint64_t size() const { return codes_.size(); }
  bool empty() const { return codes_.empty(); }

  ValueCode code(uint64_t row) const { return codes_[row]; }
  const std::vector<ValueCode>& codes() const { return codes_; }

  /// True when the column retains original value labels.
  bool has_labels() const { return !labels_.empty(); }
  const std::vector<std::string>& labels() const { return labels_; }
  /// Label for a code; falls back to the decimal code when no dictionary
  /// is attached.
  std::string LabelOf(ValueCode code) const;

  /// Per-value occurrence counts n_i over the whole column (length
  /// support()).
  std::vector<uint64_t> ValueCounts() const;

 private:
  Column(std::string name, uint32_t support, std::vector<ValueCode> codes,
         std::vector<std::string> labels)
      : name_(std::move(name)),
        support_(support),
        codes_(std::move(codes)),
        labels_(std::move(labels)) {}

  std::string name_;
  uint32_t support_ = 0;
  std::vector<ValueCode> codes_;
  std::vector<std::string> labels_;
};

}  // namespace swope

#endif  // SWOPE_TABLE_COLUMN_H_
