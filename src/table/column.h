// Column: a dictionary-encoded categorical column.
//
// The paper's model (Section 2.1) assumes attribute values fall in
// [1, u_alpha] after a one-to-one preprocessing match. We store codes in
// [0, u) bit-packed at ceil(log2(u)) bits per value (src/table/
// packed_codes.h), plus an optional dictionary of original string labels
// -- the preprocessing made concrete, at the memory footprint the
// paper's columnar-storage argument assumes. Storage is sharded into
// fixed-size row ranges (src/table/sharded_codes.h; docs/SHARDING.md)
// so paper-scale columns decompose into independently decodable units.
// Hot paths batch-decode through ColumnView (src/table/column_view.h);
// see docs/STORAGE.md.

#ifndef SWOPE_TABLE_COLUMN_H_
#define SWOPE_TABLE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/sketch/count_min.h"
#include "src/table/packed_codes.h"
#include "src/table/sharded_codes.h"

namespace swope {

/// An immutable dictionary-encoded column. `support` is u_alpha, the number
/// of distinct attribute values; every stored code is < support.
class Column {
 public:
  /// Validating factory. Fails if any code is >= support, or if support is 0
  /// while codes are present, or if `labels` is non-empty but its size does
  /// not equal support. Codes are bit-packed on construction.
  static Result<Column> Make(std::string name, uint32_t support,
                             std::vector<ValueCode> codes,
                             std::vector<std::string> labels = {});

  /// Convenience factory for tests/generators holding already-valid data:
  /// computes support as max(code)+1 (0 for an empty column).
  static Column FromCodes(std::string name, std::vector<ValueCode> codes);

  /// Factory over an already-packed contiguous payload (binary format
  /// v2). Requires the canonical width for `support`, validates every
  /// decoded code against it, and splits the payload into shards of the
  /// process default size (the wire format stays contiguous; sharding is
  /// in-memory only).
  static Result<Column> FromPacked(std::string name, uint32_t support,
                                   PackedCodes packed,
                                   std::vector<std::string> labels = {});

  /// Trusted variant for the append path (src/table/append.h): still
  /// checks the width and label invariants, but skips FromPacked's
  /// per-code scan -- the payload extends a column that was validated
  /// when first constructed, and the caller encoded the tail itself.
  /// Also attaches an optional sketch sidecar without the extra copy
  /// WithSketch would make.
  static Result<Column> FromShardedTrusted(
      std::string name, uint32_t support, ShardedCodes codes,
      std::vector<std::string> labels,
      std::shared_ptr<const CountMinSketch> sketch,
      std::shared_ptr<const void> backing = nullptr);

  /// Factory for the mmap load path: same per-code validation scan as
  /// FromPacked, over borrowed sharded storage whose payload lives in an
  /// externally owned region. `backing` (typically the MappedFile) is
  /// held for the life of the column -- and of any column derived from
  /// it by width-stable appends, which share full shards verbatim.
  static Result<Column> FromShardedBacked(std::string name, uint32_t support,
                                          ShardedCodes codes,
                                          std::vector<std::string> labels,
                                          std::shared_ptr<const void> backing);

  Column() = default;

  const std::string& name() const { return name_; }
  /// u_alpha: the number of distinct values the dictionary admits. Note
  /// this counts dictionary slots; a validated CSV/builder column always
  /// has every slot occupied at least once.
  uint32_t support() const { return support_; }
  /// Number of rows.
  uint64_t size() const { return codes_.size(); }
  bool empty() const { return codes_.empty(); }

  /// Per-row decode. Cold-path accessor (writers, tests, permutation):
  /// query kernels batch-decode through ColumnView instead.
  ValueCode code(uint64_t row) const { return codes_.Get(row); }

  /// Decodes the whole column into a fresh vector. Cold paths and tests
  /// only; tools/lint.py bans it outside src/table/ and tests.
  std::vector<ValueCode> codes() const { return codes_.ToVector(); }

  /// The sharded bit-packed payload (ColumnView and binary_io use this).
  const ShardedCodes& sharded() const { return codes_; }

  /// A copy of this column with the same values split at `shard_size`
  /// rows per shard (registry/CLI geometry overrides).
  Column Resharded(uint64_t shard_size) const {
    Column copy = *this;
    copy.codes_ = codes_.Resharded(shard_size);
    return copy;
  }

  /// Exact resident heap bytes: owned packed payload plus the label
  /// dictionary (per-string object plus character payload) plus the
  /// name. Borrowed (mmap-backed) payload bytes are excluded; they are
  /// MappedBytes(). The accounting rules live in docs/STORAGE.md.
  uint64_t MemoryBytes() const;

  /// Payload bytes this column references inside a mapped region (0 for
  /// fully owned storage).
  uint64_t MappedBytes() const { return codes_.MappedBytes(); }

  /// The opaque keep-alive for borrowed storage (the MappedFile on the
  /// mmap load path); null when every shard owns its words.
  const std::shared_ptr<const void>& backing() const { return backing_; }

  /// True when the column retains original value labels.
  bool has_labels() const { return !labels_.empty(); }
  const std::vector<std::string>& labels() const { return labels_; }
  /// Label for a code; falls back to the decimal code when no dictionary
  /// is attached.
  std::string LabelOf(ValueCode code) const;

  /// Per-value occurrence counts n_i over the whole column (length
  /// support()).
  std::vector<uint64_t> ValueCounts() const;

  /// True when a whole-column count-min summary rides along (built by
  /// AttachSketches or loaded from a v3 sidecar; see docs/SKETCH.md).
  bool has_sketch() const { return sketch_ != nullptr; }
  /// The sidecar sketch, or null. Shared: copies of the column (tables
  /// are value types) reference one summary.
  const std::shared_ptr<const CountMinSketch>& sketch() const {
    return sketch_;
  }
  /// A copy of this column carrying `sketch` as its sidecar (null
  /// detaches). The packed payload is shared work-wise only through the
  /// copy; columns stay immutable.
  Column WithSketch(std::shared_ptr<const CountMinSketch> sketch) const {
    Column copy = *this;
    copy.sketch_ = std::move(sketch);
    return copy;
  }
  /// Resident bytes of the sidecar sketch (0 when none). Reported
  /// separately from MemoryBytes: the registry's dataset budget covers
  /// column data, sketches have their own gauge.
  uint64_t SketchMemoryBytes() const {
    return sketch_ != nullptr ? sketch_->MemoryBytes() : 0;
  }

 private:
  Column(std::string name, uint32_t support, ShardedCodes codes,
         std::vector<std::string> labels)
      : name_(std::move(name)),
        support_(support),
        codes_(std::move(codes)),
        labels_(std::move(labels)) {}

  std::string name_;
  uint32_t support_ = 0;
  ShardedCodes codes_;
  std::vector<std::string> labels_;
  std::shared_ptr<const CountMinSketch> sketch_;
  /// Keeps the region borrowed shards point into alive (mmap path).
  std::shared_ptr<const void> backing_;
};

}  // namespace swope

#endif  // SWOPE_TABLE_COLUMN_H_
