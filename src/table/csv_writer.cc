#include "src/table/csv_writer.h"

#include <fstream>

namespace swope {

namespace {

bool NeedsQuoting(const std::string& field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void WriteField(std::ostream& out, const std::string& field, char delimiter) {
  if (!NeedsQuoting(field, delimiter)) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

Status WriteCsv(const Table& table, std::ostream& output,
                const CsvWriteOptions& options) {
  if (options.delimiter == '"' || options.delimiter == '\n' ||
      options.delimiter == '\r') {
    return Status::InvalidArgument("csv: invalid delimiter");
  }
  if (options.write_header) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) output << options.delimiter;
      WriteField(output, table.column(c).name(), options.delimiter);
    }
    output << '\n';
  }
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) output << options.delimiter;
      const Column& col = table.column(c);
      WriteField(output, col.LabelOf(col.code(r)), options.delimiter);
    }
    output << '\n';
  }
  if (!output) return Status::IOError("csv: write failed");
  return Status::OK();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvWriteOptions& options) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IOError("csv: cannot open '" + path + "'");
  return WriteCsv(table, file, options);
}

}  // namespace swope
