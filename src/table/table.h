// Table: a columnar dataset D with N rows and h categorical attributes.

#ifndef SWOPE_TABLE_TABLE_H_
#define SWOPE_TABLE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/table/column.h"

namespace swope {

/// An immutable columnar table. All columns have the same row count.
/// This mirrors the paper's column-style storage assumption (Section 6.1):
/// queries scan each attribute's values sequentially.
class Table {
 public:
  /// Validating factory: all columns must share one row count and names
  /// must be unique and non-empty.
  static Result<Table> Make(std::vector<Column> columns);

  Table() = default;

  /// N: number of rows.
  uint64_t num_rows() const { return num_rows_; }
  /// h: number of attributes.
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t index) const { return columns_[index]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with `name`, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// All column names, in order.
  std::vector<std::string> ColumnNames() const;

  /// The largest support size u_max across all columns (0 for an empty
  /// table). Used by the M0 policy.
  uint32_t MaxSupport() const;

  /// Rows per shard of the in-memory decomposition (every column shares
  /// one geometry; Make enforces it). 0 for a table with no columns.
  uint64_t shard_size() const;

  /// Number of row shards (ceil(num_rows / shard_size); 0 when empty).
  size_t num_shards() const;

  /// The same table re-split at `shard_size` rows per shard (registry /
  /// CLI geometry overrides). Values, labels, and sketches are shared or
  /// repacked as needed; the wire format is unaffected.
  Table Resharded(uint64_t shard_size) const;

  /// Exact resident heap bytes across all columns (owned bit-packed
  /// payloads plus label dictionaries; accounting rules in
  /// docs/STORAGE.md). The engine's DatasetRegistry budgets and reports
  /// this number. Mapped payload bytes are MappedBytes().
  uint64_t MemoryBytes() const;

  /// Payload bytes referenced inside mapped regions across all columns
  /// (0 for a fully owned table).
  uint64_t MappedBytes() const;

  /// Resident bytes of all column sketch sidecars (0 when none carry
  /// one). Reported separately: the engine mirrors this into the
  /// swope_sketch_memory_bytes gauge.
  uint64_t SketchMemoryBytes() const;

  /// Returns a table containing only the columns with support size
  /// <= max_support. This is the paper's preprocessing step: "we eliminate
  /// columns with a support size larger than 1000" (Section 6.1).
  Table DropHighSupportColumns(uint32_t max_support) const;

  /// Returns a table with rows permuted: new row r holds old row perm[r].
  /// perm must be a permutation of [0, num_rows).
  Result<Table> PermuteRows(const std::vector<uint32_t>& perm) const;

 private:
  explicit Table(std::vector<Column> columns);

  std::vector<Column> columns_;
  uint64_t num_rows_ = 0;
};

}  // namespace swope

#endif  // SWOPE_TABLE_TABLE_H_
