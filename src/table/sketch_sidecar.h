// Whole-column count-min sidecars.
//
// A sidecar summarizes an entire column's value stream in one
// CountMinSketch, decoupled from the query-local sketches the scorers
// build over sampled prefixes (src/core/sketch_estimation.h). Sidecars
// serve two jobs: they persist through binary_io (format v3), so a
// reload skips the O(N) summary pass, and streaming ingest
// (src/table/append.h) maintains them incrementally -- clone, absorb the
// appended tail, reattach -- instead of rescanning the column.
// docs/SKETCH.md covers the semantics.

#ifndef SWOPE_TABLE_SKETCH_SIDECAR_H_
#define SWOPE_TABLE_SKETCH_SIDECAR_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/sketch/count_min.h"
#include "src/table/column.h"
#include "src/table/table.h"

namespace swope {

/// Streams every code of `column` through a fresh (epsilon, delta)
/// sketch. The hash seed is a pure function of `seed` and the column
/// name, so rebuilding the same column yields a byte-identical sidecar.
Result<CountMinSketch> BuildColumnSketch(const Column& column,
                                         double epsilon, double delta,
                                         uint64_t seed);

/// Returns a table where every column with support > `min_support`
/// carries a freshly built sidecar (columns at or below the threshold
/// are passed through untouched -- the exact path never consults a
/// sketch). Existing sidecars are rebuilt.
Result<Table> AttachSketches(const Table& table, double epsilon,
                             double delta, uint32_t min_support,
                             uint64_t seed);

}  // namespace swope

#endif  // SWOPE_TABLE_SKETCH_SIDECAR_H_
