// Row-order shuffling.
//
// The paper models a random sample-without-replacement of size M as the
// first M records of a uniformly random permutation of D (Section 2.2).
// A query materializes one permutation of row indices and then consumes
// growing prefixes of it; see core/prefix_sampler.h.

#ifndef SWOPE_TABLE_SHUFFLE_H_
#define SWOPE_TABLE_SHUFFLE_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"

namespace swope {

/// Returns a uniformly random permutation of row indices [0, num_rows),
/// deterministic in `seed`.
std::vector<uint32_t> ShuffledRowOrder(uint32_t num_rows, uint64_t seed);

}  // namespace swope

#endif  // SWOPE_TABLE_SHUFFLE_H_
