#include "src/table/append.h"

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sketch/count_min.h"

namespace swope {

namespace {

// Parses a decimal code for a label-less column (the inverse of
// Column::LabelOf's fallback). Codes are capped below UINT32_MAX so the
// all-ones FlatHashMap sentinel and the (a << 32) | b pair keying stay
// unambiguous.
Result<ValueCode> ParseCode(const std::string& raw,
                            const std::string& column) {
  if (raw.empty() || raw.size() > 10) {
    return Status::InvalidArgument("append: value '" + raw +
                                   "' for label-less column '" + column +
                                   "' is not a decimal code");
  }
  uint64_t value = 0;
  for (char c : raw) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("append: value '" + raw +
                                     "' for label-less column '" + column +
                                     "' is not a decimal code");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (value >= std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("append: code " + raw + " for column '" +
                                   column + "' is out of range");
  }
  return static_cast<ValueCode>(value);
}

}  // namespace

Result<Table> AppendRowsToTable(
    const Table& table, const std::vector<std::vector<std::string>>& rows) {
  const size_t h = table.num_columns();
  if (h == 0) {
    return Status::InvalidArgument("append: table has no columns");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("append: no rows to append");
  }
  for (const std::vector<std::string>& row : rows) {
    if (row.size() != h) {
      return Status::InvalidArgument(
          "append: row has " + std::to_string(row.size()) +
          " values, expected " + std::to_string(h));
    }
  }
  const uint64_t new_rows = table.num_rows() + rows.size();
  if (new_rows > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        "append: row count " + std::to_string(new_rows) +
        " exceeds the 2^32 - 1 row limit");
  }

  std::vector<Column> columns;
  columns.reserve(h);
  for (size_t j = 0; j < h; ++j) {
    const Column& col = table.column(j);
    std::vector<ValueCode> tail;
    tail.reserve(rows.size());
    std::vector<std::string> labels = col.labels();
    uint32_t support = col.support();
    if (col.has_labels()) {
      std::unordered_map<std::string, ValueCode> dictionary;
      dictionary.reserve(labels.size());
      for (size_t v = 0; v < labels.size(); ++v) {
        dictionary.emplace(labels[v], static_cast<ValueCode>(v));
      }
      for (const std::vector<std::string>& row : rows) {
        auto [it, inserted] = dictionary.try_emplace(
            row[j], static_cast<ValueCode>(labels.size()));
        if (inserted) {
          if (labels.size() >=
              std::numeric_limits<uint32_t>::max() - 1) {
            return Status::InvalidArgument("append: column '" + col.name() +
                                           "' dictionary overflow");
          }
          labels.push_back(row[j]);
        }
        tail.push_back(it->second);
      }
      support = static_cast<uint32_t>(labels.size());
    } else {
      for (const std::vector<std::string>& row : rows) {
        SWOPE_ASSIGN_OR_RETURN(ValueCode code, ParseCode(row[j], col.name()));
        tail.push_back(code);
        if (code >= support) support = code + 1;
      }
    }

    // Width-stable appends copy full shards verbatim and pack only the
    // ragged last shard plus the tail; a support that crossed a
    // power-of-two boundary repacks the column.
    ShardedCodes sharded =
        col.sharded().Append(tail, PackedCodes::WidthForSupport(support));

    std::shared_ptr<const CountMinSketch> sketch;
    if (col.has_sketch()) {
      // Incremental sidecar maintenance: clone, absorb just the tail.
      CountMinSketch updated = col.sketch()->Clone();
      updated.AddCodes(tail.data(), tail.size());
      sketch = std::make_shared<const CountMinSketch>(std::move(updated));
    }

    SWOPE_ASSIGN_OR_RETURN(
        Column column,
        Column::FromShardedTrusted(col.name(), support, std::move(sharded),
                                   std::move(labels), std::move(sketch),
                                   col.backing()));
    columns.push_back(std::move(column));
  }
  return Table::Make(std::move(columns));
}

}  // namespace swope
