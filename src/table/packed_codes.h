// PackedCodes: bit-packed storage for dictionary codes.
//
// A column with support u only needs ceil(log2(u)) bits per value, and
// real categorical attributes (Table 2's CDC/HUS/PUS columns) mostly fit
// in 8 bits or fewer, so packing shrinks the resident working set 4-8x
// versus 4-bytes-per-value vectors. That is what makes the paper's
// columnar-storage argument (Section 6.1) bite: the sampled prefix of
// every column stays cache-resident. Values are stored little-endian
// within consecutive uint64_t words; width 0 encodes a constant column
// (support <= 1) with no payload at all.
//
// Batch decode goes through width-specialized kernels -- one template
// instantiation per width, dispatched once per batch -- so the shift and
// mask are compile-time constants and the inner loops stay branch-free.
// docs/STORAGE.md documents the layout, the accessor contract, and the
// byte-accounting rules built on top of it.

#ifndef SWOPE_TABLE_PACKED_CODES_H_
#define SWOPE_TABLE_PACKED_CODES_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace swope {

/// Value code type: a dictionary-encoded attribute value in [0, support).
using ValueCode = uint32_t;

/// Immutable bit-packed sequence of codes, all below 2^width.
class PackedCodes {
 public:
  /// Bits needed to store any code in [0, support): ceil(log2(support)),
  /// with 0 for constant columns (support <= 1).
  static uint32_t WidthForSupport(uint32_t support) {
    return support <= 1
               ? 0u
               : static_cast<uint32_t>(std::bit_width(support - 1u));
  }

  /// Number of payload words a sequence occupies (excludes the padding
  /// word the in-memory representation appends). Precondition:
  /// size <= MaxSizeForWidth(width), or the bit count overflows uint64.
  static uint64_t NumDataWords(uint64_t size, uint32_t width) {
    return (size * width + 63) / 64;
  }

  /// Largest sequence length whose bit count size * width + 63 still fits
  /// in uint64 -- the precondition for NumDataWords. Untrusted sizes
  /// (e.g. file headers) must be checked against this before any word
  /// count is computed; FromWords rejects larger sizes itself. Width 0
  /// stores no payload, so any size is representable.
  static uint64_t MaxSizeForWidth(uint32_t width) {
    return width == 0 ? UINT64_MAX : (UINT64_MAX - 63) / width;
  }

  PackedCodes() = default;

  /// Packs `codes`, all of which must be < 2^width (the caller validates
  /// against its support before packing).
  static PackedCodes Pack(const std::vector<ValueCode>& codes,
                          uint32_t width);

  /// Reconstructs from serialized payload words (binary format v2).
  /// Validates the width and word count; decoded values still need a
  /// support check by the caller (Column::FromPacked).
  static Result<PackedCodes> FromWords(uint64_t size, uint32_t width,
                                       std::vector<uint64_t> words);

  /// Borrowed-words mode: references `words` (NumDataWords(size, width)
  /// payload words, 8-byte aligned) without copying -- the mmap-loaded
  /// column path. The caller guarantees the pointed-at memory outlives
  /// this object (Column keeps the MappedFile alive) and that at least
  /// 8 bytes past the payload stay dereferenceable, standing in for the
  /// padding word the owned layout appends (see docs/STORAGE.md).
  static Result<PackedCodes> BorrowWords(uint64_t size, uint32_t width,
                                         const uint64_t* words);

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t width() const { return width_; }

  /// Single-value decode. Cold-path accessor: batch loops should call
  /// Decode/Gather instead, which hoist the width dispatch out of the
  /// loop.
  ValueCode Get(uint64_t i) const {
    if (width_ == 0) return 0;
    const uint64_t* words = word_base();
    const uint64_t bit = i * width_;
    const uint64_t mask = (uint64_t{1} << width_) - 1;
    // The trailing padding word (or the borrowed guard bytes) keeps the
    // two-word read in bounds.
    const unsigned __int128 pair =
        (static_cast<unsigned __int128>(words[(bit >> 6) + 1]) << 64) |
        words[bit >> 6];
    return static_cast<ValueCode>(
        static_cast<uint64_t>(pair >> (bit & 63)) & mask);
  }

  /// Decodes the contiguous range [begin, end) into `out` (which must
  /// hold end - begin values). Width-specialized.
  void Decode(uint64_t begin, uint64_t end, ValueCode* out) const;

  /// Decodes the `count` values at positions order[0..count) into `out`.
  /// Width-specialized; this is the sampled-prefix hot path.
  void Gather(const uint32_t* order, uint64_t count, ValueCode* out) const;

  /// Decodes everything into a fresh vector (tests / cold paths).
  std::vector<ValueCode> ToVector() const;

  /// Returns a new sequence holding this sequence's values followed by
  /// `tail`, stored at `width` bits (which must be >= the current width;
  /// every tail code must be < 2^width). When the width is unchanged the
  /// existing payload words are copied verbatim and only the tail is
  /// packed -- the streaming-ingest fast path; a wider width (support
  /// crossed a power-of-two boundary) repacks everything.
  PackedCodes Append(const std::vector<ValueCode>& tail,
                     uint32_t width) const;

  /// Serialized payload (NumDataWords entries; the padding word is not
  /// part of the wire format).
  const uint64_t* data_words() const { return word_base(); }
  uint64_t num_data_words() const { return NumDataWords(size_, width_); }

  /// True when the payload references external (mmap-backed) memory
  /// instead of owned heap words.
  bool borrowed() const { return external_ != nullptr; }

  /// Exact resident heap payload bytes (including the in-memory padding
  /// word); 0 for a borrowed sequence, whose bytes are MappedBytes().
  uint64_t MemoryBytes() const {
    return words_.size() * sizeof(uint64_t);
  }

  /// Payload bytes referenced in a mapped region; 0 for owned storage.
  uint64_t MappedBytes() const {
    return borrowed() ? num_data_words() * sizeof(uint64_t) : 0;
  }

 private:
  PackedCodes(uint64_t size, uint32_t width, std::vector<uint64_t> words)
      : size_(size), width_(width), words_(std::move(words)) {}
  PackedCodes(uint64_t size, uint32_t width, const uint64_t* external)
      : size_(size), width_(width), external_(external) {}

  const uint64_t* word_base() const {
    return external_ != nullptr ? external_ : words_.data();
  }

  uint64_t size_ = 0;
  uint32_t width_ = 0;
  /// Owned mode: payload words plus one zero padding word (when
  /// non-empty), so the unaligned two-word reads in the decode kernels
  /// never run off the end. Empty in borrowed mode.
  std::vector<uint64_t> words_;
  /// Borrowed mode: externally owned payload words (the caller
  /// guarantees lifetime and the 8-byte read guard). Null in owned mode.
  const uint64_t* external_ = nullptr;
};

}  // namespace swope

#endif  // SWOPE_TABLE_PACKED_CODES_H_
