#include "src/table/shuffle.h"

namespace swope {

std::vector<uint32_t> ShuffledRowOrder(uint32_t num_rows, uint64_t seed) {
  Rng rng(seed);
  return RandomPermutation(num_rows, rng);
}

}  // namespace swope
