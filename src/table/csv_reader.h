// CSV reader: RFC-4180-style parsing into a dictionary-encoded Table.

#ifndef SWOPE_TABLE_CSV_READER_H_
#define SWOPE_TABLE_CSV_READER_H_

#include <istream>
#include <string>

#include "src/common/result.h"
#include "src/table/table.h"

namespace swope {

/// Options controlling CSV parsing.
struct CsvOptions {
  /// Field delimiter.
  char delimiter = ',';
  /// When true, the first record provides column names; otherwise columns
  /// are named c0, c1, ....
  bool has_header = true;
  /// Maximum number of data rows to read (0 = unlimited).
  uint64_t max_rows = 0;
};

/// Parses CSV from a stream. Supports quoted fields ("..."), embedded
/// delimiters and newlines inside quotes, doubled-quote escapes, and both
/// LF and CRLF record separators. Every record must have the same field
/// count as the header; otherwise a Corruption status is returned with the
/// offending record number.
Result<Table> ReadCsv(std::istream& input, const CsvOptions& options = {});

/// Convenience wrapper reading from a file path.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

}  // namespace swope

#endif  // SWOPE_TABLE_CSV_READER_H_
