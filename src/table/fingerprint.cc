#include "src/table/fingerprint.h"

#include <algorithm>
#include <string_view>
#include <vector>

namespace swope {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

// SplitMix64 finalizer: breaks up the linearity of plain FNV so similar
// tables (e.g. one code incremented) diverge in every output bit.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Hasher {
 public:
  void Add(uint64_t value) {
    state_ = (state_ ^ Mix(value)) * kFnvPrime;
  }

  void Add(std::string_view text) {
    Add(static_cast<uint64_t>(text.size()));
    for (unsigned char c : text) state_ = (state_ ^ c) * kFnvPrime;
  }

  uint64_t Finish() const { return Mix(state_); }

 private:
  uint64_t state_ = kFnvOffset;
};

}  // namespace

uint64_t TableFingerprint(const Table& table) {
  Hasher hasher;
  hasher.Add(table.num_rows());
  hasher.Add(static_cast<uint64_t>(table.num_columns()));
  std::vector<ValueCode> scratch;
  for (const Column& column : table.columns()) {
    hasher.Add(column.name());
    hasher.Add(static_cast<uint64_t>(column.support()));
    // Decode in chunks; the hash consumes codes in row order, so the
    // fingerprint is a function of the logical values, not the packing.
    const uint64_t rows = column.size();
    scratch.resize(std::min<uint64_t>(rows, 4096));
    for (uint64_t begin = 0; begin < rows; begin += scratch.size()) {
      const uint64_t end = std::min<uint64_t>(rows, begin + scratch.size());
      column.sharded().Decode(begin, end, scratch.data());
      for (uint64_t i = 0; i < end - begin; ++i) {
        hasher.Add(static_cast<uint64_t>(scratch[i]));
      }
    }
    hasher.Add(static_cast<uint64_t>(column.labels().size()));
    for (const std::string& label : column.labels()) hasher.Add(label);
  }
  return hasher.Finish();
}

}  // namespace swope
