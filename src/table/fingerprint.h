// Content fingerprint of a Table.
//
// The engine's caches (src/engine/) key entries by table *content*, not
// registry name, so reloading identical data under a new name still hits,
// and replacing a dataset in place can never serve stale answers. The
// fingerprint covers everything that can influence a query answer: shape,
// column names, supports, codes, and label dictionaries.

#ifndef SWOPE_TABLE_FINGERPRINT_H_
#define SWOPE_TABLE_FINGERPRINT_H_

#include <cstdint>

#include "src/table/table.h"

namespace swope {

/// 64-bit content hash of `table` (FNV-1a over a canonical serialization,
/// strengthened with a SplitMix64 finalizer per field). Deterministic
/// across runs and platforms of equal endianness assumptions: all values
/// are mixed as integers, never as raw memory. Two tables with equal
/// fingerprints are, for all practical purposes, the same dataset; any
/// difference in rows, row order, names, supports, or labels changes the
/// fingerprint with overwhelming probability.
uint64_t TableFingerprint(const Table& table);

}  // namespace swope

#endif  // SWOPE_TABLE_FINGERPRINT_H_
