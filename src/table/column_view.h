// ColumnView: the hot-path batch-decode accessor over a Column.
//
// Query kernels never touch packed words or per-row code() lookups;
// they gather the slice of rows they need into a caller-owned scratch
// buffer and run their counting loops over plain uint32 spans:
//
//   ColumnView view(column);
//   const ValueCode* codes = view.Gather(order, begin, end, scratch);
//   counter.AddCodes(codes, end - begin);
//
// This splits decode from counting: the width-specialized decode kernel
// (src/table/packed_codes.h) and the count loop each stay branch-free,
// and the scratch buffer is reusable across rounds so steady-state
// queries allocate nothing. Storage is sharded (src/table/
// sharded_codes.h): shard-parallel kernels address one shard at a time
// through GatherShard with shard-local rows, while Gather/Decode span
// the whole column for order-preserving paths. tools/lint.py bans raw
// `.codes()` / per-row `.code(row)` access outside src/table/ and tests
// to keep this the only hot-path route. The full contract lives in
// docs/STORAGE.md and docs/SHARDING.md.

#ifndef SWOPE_TABLE_COLUMN_VIEW_H_
#define SWOPE_TABLE_COLUMN_VIEW_H_

#include <cstdint>
#include <vector>

#include "src/table/column.h"

namespace swope {

/// A lightweight non-owning accessor; valid while the Column lives.
class ColumnView {
 public:
  ColumnView() = default;
  explicit ColumnView(const Column& column)
      : codes_(&column.sharded()), support_(column.support()) {}

  uint64_t size() const { return codes_->size(); }
  uint32_t support() const { return support_; }
  uint32_t width() const { return codes_->width(); }
  size_t num_shards() const { return codes_->num_shards(); }
  uint64_t shard_size() const { return codes_->shard_size(); }

  /// Decodes the values at global rows order[begin..end) (a permutation
  /// slice) into `scratch`, growing it as needed, and returns the decoded
  /// span's base pointer. The span is valid until the next call with the
  /// same scratch buffer. Preserves the slice order across shards (the
  /// sketch path's conservative-update counting depends on it).
  /// `Buffer` is any contiguous resizable ValueCode container --
  /// std::vector for pooled scratch, std::pmr::vector for arena-backed
  /// per-query slices.
  template <typename Buffer>
  const ValueCode* Gather(const std::vector<uint32_t>& order,
                          uint64_t begin, uint64_t end,
                          Buffer& scratch) const {
    const uint64_t count = end - begin;
    if (scratch.size() < count) scratch.resize(count);
    codes_->Gather(order.data() + begin, count, scratch.data());
    return scratch.data();
  }

  /// Decodes the values at the `count` shard-local rows of shard `shard`
  /// into `scratch` and returns the decoded span's base pointer. The
  /// shard-parallel hot path: one width-specialized batch kernel per
  /// shard, no cross-shard addressing in the inner loop.
  template <typename Buffer>
  const ValueCode* GatherShard(size_t shard, const uint32_t* local_rows,
                               uint64_t count, Buffer& scratch) const {
    if (scratch.size() < count) scratch.resize(count);
    codes_->shard(shard).Gather(local_rows, count, scratch.data());
    return scratch.data();
  }

  /// Decodes the contiguous row range [begin, end) into `scratch` and
  /// returns the decoded span's base pointer (sequential-scan paths:
  /// exact baselines, fingerprinting).
  template <typename Buffer>
  const ValueCode* Decode(uint64_t begin, uint64_t end,
                          Buffer& scratch) const {
    const uint64_t count = end - begin;
    if (scratch.size() < count) scratch.resize(count);
    codes_->Decode(begin, end, scratch.data());
    return scratch.data();
  }

 private:
  const ShardedCodes* codes_ = nullptr;
  uint32_t support_ = 0;
};

}  // namespace swope

#endif  // SWOPE_TABLE_COLUMN_VIEW_H_
