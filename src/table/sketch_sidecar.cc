#include "src/table/sketch_sidecar.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace swope {

namespace {

// FNV-1a over the column name, folded into the base seed: distinct
// columns get decorrelated hash streams, equal (seed, name) pairs get
// byte-identical sidecars.
uint64_t ColumnSeed(uint64_t seed, const std::string& name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return seed ^ h;
}

}  // namespace

Result<CountMinSketch> BuildColumnSketch(const Column& column,
                                         double epsilon, double delta,
                                         uint64_t seed) {
  SWOPE_ASSIGN_OR_RETURN(
      CountMinSketch sketch,
      CountMinSketch::Make(epsilon, delta, ColumnSeed(seed, column.name())));
  const ShardedCodes& codes = column.sharded();
  std::vector<ValueCode> scratch(std::min<uint64_t>(codes.size(), 4096));
  for (uint64_t begin = 0; begin < codes.size(); begin += scratch.size()) {
    const uint64_t end =
        std::min<uint64_t>(codes.size(), begin + scratch.size());
    codes.Decode(begin, end, scratch.data());
    sketch.AddCodes(scratch.data(), end - begin);
  }
  return sketch;
}

Result<Table> AttachSketches(const Table& table, double epsilon,
                             double delta, uint32_t min_support,
                             uint64_t seed) {
  std::vector<Column> columns;
  columns.reserve(table.num_columns());
  for (const Column& col : table.columns()) {
    if (col.support() <= min_support) {
      columns.push_back(col.WithSketch(nullptr));
      continue;
    }
    SWOPE_ASSIGN_OR_RETURN(CountMinSketch sketch,
                           BuildColumnSketch(col, epsilon, delta, seed));
    columns.push_back(col.WithSketch(
        std::make_shared<const CountMinSketch>(std::move(sketch))));
  }
  return Table::Make(std::move(columns));
}

}  // namespace swope
