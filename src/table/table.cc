#include "src/table/table.h"

#include <algorithm>
#include <unordered_set>

namespace swope {

Table::Table(std::vector<Column> columns) : columns_(std::move(columns)) {
  num_rows_ = columns_.empty() ? 0 : columns_.front().size();
}

Result<Table> Table::Make(std::vector<Column> columns) {
  std::unordered_set<std::string> names;
  for (const Column& col : columns) {
    if (col.name().empty()) {
      return Status::InvalidArgument("table: column with empty name");
    }
    if (!names.insert(col.name()).second) {
      return Status::InvalidArgument("table: duplicate column name '" +
                                     col.name() + "'");
    }
    if (col.size() != columns.front().size()) {
      return Status::InvalidArgument(
          "table: column '" + col.name() + "' has " +
          std::to_string(col.size()) + " rows, expected " +
          std::to_string(columns.front().size()));
    }
    if (col.sharded().shard_size() !=
        columns.front().sharded().shard_size()) {
      return Status::InvalidArgument(
          "table: column '" + col.name() + "' has shard size " +
          std::to_string(col.sharded().shard_size()) + ", expected " +
          std::to_string(columns.front().sharded().shard_size()));
    }
  }
  return Table(std::move(columns));
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return i;
  }
  return Status::NotFound("table: no column named '" + name + "'");
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& col : columns_) names.push_back(col.name());
  return names;
}

uint32_t Table::MaxSupport() const {
  uint32_t max_support = 0;
  for (const Column& col : columns_) {
    max_support = std::max(max_support, col.support());
  }
  return max_support;
}

uint64_t Table::shard_size() const {
  return columns_.empty() ? 0 : columns_.front().sharded().shard_size();
}

size_t Table::num_shards() const {
  return columns_.empty() ? 0 : columns_.front().sharded().num_shards();
}

Table Table::Resharded(uint64_t shard_size) const {
  std::vector<Column> resharded;
  resharded.reserve(columns_.size());
  for (const Column& col : columns_) {
    resharded.push_back(col.Resharded(shard_size));
  }
  return Table(std::move(resharded));
}

uint64_t Table::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const Column& col : columns_) bytes += col.MemoryBytes();
  return bytes;
}

uint64_t Table::MappedBytes() const {
  uint64_t bytes = 0;
  for (const Column& col : columns_) bytes += col.MappedBytes();
  return bytes;
}

uint64_t Table::SketchMemoryBytes() const {
  uint64_t bytes = 0;
  for (const Column& col : columns_) bytes += col.SketchMemoryBytes();
  return bytes;
}

Table Table::DropHighSupportColumns(uint32_t max_support) const {
  std::vector<Column> kept;
  for (const Column& col : columns_) {
    if (col.support() <= max_support) kept.push_back(col);
  }
  return Table(std::move(kept));
}

Result<Table> Table::PermuteRows(const std::vector<uint32_t>& perm) const {
  if (perm.size() != num_rows_) {
    return Status::InvalidArgument(
        "permute: permutation size " + std::to_string(perm.size()) +
        " != row count " + std::to_string(num_rows_));
  }
  std::vector<bool> seen(perm.size(), false);
  for (uint32_t p : perm) {
    if (p >= perm.size() || seen[p]) {
      return Status::InvalidArgument("permute: not a permutation");
    }
    seen[p] = true;
  }
  std::vector<Column> permuted;
  permuted.reserve(columns_.size());
  for (const Column& col : columns_) {
    // One batch gather per column: decode col[perm[r]] for every row.
    std::vector<ValueCode> codes(col.size());
    col.sharded().Gather(perm.data(), perm.size(), codes.data());
    std::vector<std::string> labels = col.labels();
    auto made =
        Column::Make(col.name(), col.support(), std::move(codes), labels);
    if (!made.ok()) return made.status();
    permuted.push_back(std::move(made).value());
  }
  return Table(std::move(permuted));
}

}  // namespace swope
