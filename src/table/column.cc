#include "src/table/column.h"

#include <algorithm>

namespace swope {

Result<Column> Column::Make(std::string name, uint32_t support,
                            std::vector<ValueCode> codes,
                            std::vector<std::string> labels) {
  if (!codes.empty() && support == 0) {
    return Status::InvalidArgument("column '" + name +
                                   "': support is 0 but codes are present");
  }
  if (!labels.empty() && labels.size() != support) {
    return Status::InvalidArgument(
        "column '" + name + "': label count " +
        std::to_string(labels.size()) + " != support " +
        std::to_string(support));
  }
  for (ValueCode c : codes) {
    if (c >= support) {
      return Status::InvalidArgument("column '" + name + "': code " +
                                     std::to_string(c) + " >= support " +
                                     std::to_string(support));
    }
  }
  ShardedCodes sharded = ShardedCodes::Pack(
      codes, PackedCodes::WidthForSupport(support), DefaultShardSize());
  return Column(std::move(name), support, std::move(sharded),
                std::move(labels));
}

Column Column::FromCodes(std::string name, std::vector<ValueCode> codes) {
  uint32_t support = 0;
  for (ValueCode c : codes) support = std::max(support, c + 1);
  ShardedCodes sharded = ShardedCodes::Pack(
      codes, PackedCodes::WidthForSupport(support), DefaultShardSize());
  return Column(std::move(name), support, std::move(sharded), {});
}

Result<Column> Column::FromPacked(std::string name, uint32_t support,
                                  PackedCodes packed,
                                  std::vector<std::string> labels) {
  if (!packed.empty() && support == 0) {
    return Status::InvalidArgument("column '" + name +
                                   "': support is 0 but codes are present");
  }
  if (!labels.empty() && labels.size() != support) {
    return Status::InvalidArgument(
        "column '" + name + "': label count " +
        std::to_string(labels.size()) + " != support " +
        std::to_string(support));
  }
  if (packed.width() != PackedCodes::WidthForSupport(support)) {
    return Status::InvalidArgument(
        "column '" + name + "': width " + std::to_string(packed.width()) +
        " is not canonical for support " + std::to_string(support));
  }
  // Validate decoded codes chunk by chunk; a packed payload can encode
  // values in [support, 2^width).
  std::vector<ValueCode> scratch(std::min<uint64_t>(packed.size(), 4096));
  for (uint64_t begin = 0; begin < packed.size();
       begin += scratch.size()) {
    const uint64_t end =
        std::min<uint64_t>(packed.size(), begin + scratch.size());
    packed.Decode(begin, end, scratch.data());
    for (uint64_t i = 0; i < end - begin; ++i) {
      if (scratch[i] >= support) {
        return Status::InvalidArgument(
            "column '" + name + "': code " + std::to_string(scratch[i]) +
            " >= support " + std::to_string(support));
      }
    }
  }
  return Column(std::move(name), support,
                ShardedCodes::FromPacked(packed, DefaultShardSize()),
                std::move(labels));
}

Result<Column> Column::FromShardedTrusted(
    std::string name, uint32_t support, ShardedCodes codes,
    std::vector<std::string> labels,
    std::shared_ptr<const CountMinSketch> sketch,
    std::shared_ptr<const void> backing) {
  if (!codes.empty() && support == 0) {
    return Status::InvalidArgument("column '" + name +
                                   "': support is 0 but codes are present");
  }
  if (!labels.empty() && labels.size() != support) {
    return Status::InvalidArgument(
        "column '" + name + "': label count " +
        std::to_string(labels.size()) + " != support " +
        std::to_string(support));
  }
  if (codes.width() != PackedCodes::WidthForSupport(support)) {
    return Status::InvalidArgument(
        "column '" + name + "': width " + std::to_string(codes.width()) +
        " is not canonical for support " + std::to_string(support));
  }
  Column column(std::move(name), support, std::move(codes),
                std::move(labels));
  column.sketch_ = std::move(sketch);
  column.backing_ = std::move(backing);
  return column;
}

Result<Column> Column::FromShardedBacked(
    std::string name, uint32_t support, ShardedCodes codes,
    std::vector<std::string> labels, std::shared_ptr<const void> backing) {
  // Same untrusted-payload scan as FromPacked: a packed payload can
  // encode values in [support, 2^width).
  std::vector<ValueCode> scratch(std::min<uint64_t>(codes.size(), 4096));
  for (uint64_t begin = 0; begin < codes.size(); begin += scratch.size()) {
    const uint64_t end =
        std::min<uint64_t>(codes.size(), begin + scratch.size());
    codes.Decode(begin, end, scratch.data());
    for (uint64_t i = 0; i < end - begin; ++i) {
      if (scratch[i] >= support) {
        return Status::InvalidArgument(
            "column '" + name + "': code " + std::to_string(scratch[i]) +
            " >= support " + std::to_string(support));
      }
    }
  }
  return FromShardedTrusted(std::move(name), support, std::move(codes),
                            std::move(labels), nullptr, std::move(backing));
}

uint64_t Column::MemoryBytes() const {
  uint64_t bytes = codes_.MemoryBytes() + name_.size();
  for (const std::string& label : labels_) {
    bytes += label.size() + sizeof(std::string);
  }
  return bytes;
}

std::string Column::LabelOf(ValueCode code) const {
  if (code < labels_.size()) return labels_[code];
  return std::to_string(code);
}

std::vector<uint64_t> Column::ValueCounts() const {
  std::vector<uint64_t> counts(support_, 0);
  std::vector<ValueCode> scratch(std::min<uint64_t>(codes_.size(), 4096));
  for (uint64_t begin = 0; begin < codes_.size();
       begin += scratch.size()) {
    const uint64_t end =
        std::min<uint64_t>(codes_.size(), begin + scratch.size());
    codes_.Decode(begin, end, scratch.data());
    for (uint64_t i = 0; i < end - begin; ++i) ++counts[scratch[i]];
  }
  return counts;
}

}  // namespace swope
