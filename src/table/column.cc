#include "src/table/column.h"

#include <algorithm>

namespace swope {

Result<Column> Column::Make(std::string name, uint32_t support,
                            std::vector<ValueCode> codes,
                            std::vector<std::string> labels) {
  if (!codes.empty() && support == 0) {
    return Status::InvalidArgument("column '" + name +
                                   "': support is 0 but codes are present");
  }
  if (!labels.empty() && labels.size() != support) {
    return Status::InvalidArgument(
        "column '" + name + "': label count " +
        std::to_string(labels.size()) + " != support " +
        std::to_string(support));
  }
  for (ValueCode c : codes) {
    if (c >= support) {
      return Status::InvalidArgument("column '" + name + "': code " +
                                     std::to_string(c) + " >= support " +
                                     std::to_string(support));
    }
  }
  return Column(std::move(name), support, std::move(codes),
                std::move(labels));
}

Column Column::FromCodes(std::string name, std::vector<ValueCode> codes) {
  uint32_t support = 0;
  for (ValueCode c : codes) support = std::max(support, c + 1);
  return Column(std::move(name), support, std::move(codes), {});
}

std::string Column::LabelOf(ValueCode code) const {
  if (code < labels_.size()) return labels_[code];
  return std::to_string(code);
}

std::vector<uint64_t> Column::ValueCounts() const {
  std::vector<uint64_t> counts(support_, 0);
  for (ValueCode c : codes_) ++counts[c];
  return counts;
}

}  // namespace swope
