// Binary column-store format for fast save/load of encoded tables.
//
// Layout (little-endian):
//   magic "SWPB" | u32 version | u64 num_rows | u32 num_columns
//   per column:
//     u32 name_len | name bytes
//     u32 support
//     u8  has_labels
//     if has_labels: support x (u32 len | bytes)
//     num_rows x u32 codes
//
// Loading a binary table skips dictionary building entirely, which is the
// point: re-running experiments over a generated dataset becomes I/O bound
// rather than parse bound.

#ifndef SWOPE_TABLE_BINARY_IO_H_
#define SWOPE_TABLE_BINARY_IO_H_

#include <istream>
#include <ostream>
#include <string>

#include "src/common/result.h"
#include "src/table/table.h"

namespace swope {

/// Current format version.
inline constexpr uint32_t kBinaryTableVersion = 1;

/// Serializes `table` to the binary column-store format.
Status WriteBinaryTable(const Table& table, std::ostream& output);
Status WriteBinaryTableFile(const Table& table, const std::string& path);

/// Deserializes a table; validates the magic, version and all structural
/// invariants (code ranges, label counts), returning Corruption on any
/// mismatch.
Result<Table> ReadBinaryTable(std::istream& input);
Result<Table> ReadBinaryTableFile(const std::string& path);

}  // namespace swope

#endif  // SWOPE_TABLE_BINARY_IO_H_
