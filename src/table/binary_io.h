// Binary column-store format for fast save/load of encoded tables.
//
// Layout (little-endian; full wire spec in docs/STORAGE.md):
//   magic "SWPB" | u32 version | u64 num_rows | u32 num_columns
//   per column:
//     u32 name_len | name bytes
//     u32 support
//     u8  has_labels
//     if has_labels: support x (u32 len | bytes)
//     version 1: num_rows x u32 codes
//     version 2: [padding run] u8 width
//                | ceil(num_rows*width/64) x u64 packed words
//     version 3: as version 2, then
//       u8 has_sketch
//       if has_sketch: u32 depth | u32 width | u64 seed | u64 total_count
//                      | depth*width x u64 counters
//
// The optional padding run -- u8 0xA7 marker | u32 pad_len | pad_len
// zero bytes -- sits where the width byte otherwise starts. 0xA7 cannot
// be a width (widths are <= 32), so one-byte lookahead disambiguates and
// a single reader accepts padded and legacy images alike. Writers emit
// it (by default) to page-align each non-empty column payload so the
// mmap load path can borrow packed words straight out of the mapping;
// padded files additionally end with 8 guard bytes so the borrowed
// two-word decode reads stay inside the mapping.
//
// Version 2 stores each column's codes bit-packed at the canonical width
// ceil(log2(support)) -- the exact in-memory representation
// (src/table/packed_codes.h) -- so loading is a header parse plus one
// contiguous read per column, and the file is 4-8x smaller for typical
// categorical supports. Version 3 adds an optional count-min sidecar per
// column (src/table/sketch_sidecar.h) and is emitted only when at least
// one column carries one, so sketch-free tables keep byte-identical v2
// files. Writers emit version 2 or 3 accordingly; the reader accepts all
// three versions (v1 stores 4-byte codes and is re-packed on load;
// `swope_cli convert` re-encodes v1 files in place of re-generating).
//
// Loading a binary table skips dictionary building entirely, which is the
// point: re-running experiments over a generated dataset becomes I/O bound
// rather than parse bound.

#ifndef SWOPE_TABLE_BINARY_IO_H_
#define SWOPE_TABLE_BINARY_IO_H_

#include <istream>
#include <ostream>
#include <string>

#include "src/common/result.h"
#include "src/table/table.h"

namespace swope {

/// Current format version (bit-packed payload), written for tables
/// without sketch sidecars.
inline constexpr uint32_t kBinaryTableVersion = 2;
/// Legacy 4-bytes-per-code version, still readable.
inline constexpr uint32_t kBinaryTableVersionV1 = 1;
/// Version with per-column count-min sidecars, written only when at
/// least one column carries a sketch.
inline constexpr uint32_t kBinaryTableVersionV3 = 3;

/// Write-side knobs. Defaults produce mmap-friendly files; set
/// page_align to false to reproduce the pre-padding byte layout.
struct BinaryWriteOptions {
  /// Page-align every non-empty column payload with a padding run so the
  /// mmap load path can borrow packed words in place. Readers accept
  /// padded and unpadded images alike.
  bool page_align = true;
  /// Alignment of padded payloads, in bytes.
  uint64_t alignment = 4096;
};

/// Serializes `table` to the binary column-store format: version 3 when
/// any column carries a sketch sidecar, version 2 otherwise.
Status WriteBinaryTable(const Table& table, std::ostream& output,
                        const BinaryWriteOptions& options = {});
Status WriteBinaryTableFile(const Table& table, const std::string& path,
                            const BinaryWriteOptions& options = {});

/// Deserializes a table; validates the magic, version and all structural
/// invariants (code ranges, packed widths, label counts, sketch shapes
/// and counter sums), returning Corruption on any mismatch. Reads
/// versions 1, 2 and 3.
Result<Table> ReadBinaryTable(std::istream& input);
Result<Table> ReadBinaryTableFile(const std::string& path);

/// Loads a table by memory-mapping `path` instead of streaming it. Runs
/// the same structural validation as ReadBinaryTableFile; column
/// payloads that sit 8-byte aligned in the file with the trailing read
/// guard intact (any payload written with BinaryWriteOptions::page_align)
/// are borrowed straight from the mapping -- the returned table's
/// columns keep the MappedFile alive, and their bytes count as
/// Table::MappedBytes() rather than MemoryBytes(). Unaligned legacy
/// payloads, label dictionaries, and sketch sidecars are copied to the
/// heap; v1 files fall back to the owned loader entirely.
Result<Table> ReadBinaryTableFileMapped(const std::string& path);

}  // namespace swope

#endif  // SWOPE_TABLE_BINARY_IO_H_
