// Binary column-store format for fast save/load of encoded tables.
//
// Layout (little-endian; full wire spec in docs/STORAGE.md):
//   magic "SWPB" | u32 version | u64 num_rows | u32 num_columns
//   per column:
//     u32 name_len | name bytes
//     u32 support
//     u8  has_labels
//     if has_labels: support x (u32 len | bytes)
//     version 1: num_rows x u32 codes
//     version 2: u8 width | ceil(num_rows*width/64) x u64 packed words
//
// Version 2 stores each column's codes bit-packed at the canonical width
// ceil(log2(support)) -- the exact in-memory representation
// (src/table/packed_codes.h) -- so loading is a header parse plus one
// contiguous read per column, and the file is 4-8x smaller for typical
// categorical supports. Writers always emit version 2; the reader still
// accepts version 1 (4-byte codes) and re-packs on load, and
// `swope_cli convert` re-encodes v1 files in place of re-generating.
//
// Loading a binary table skips dictionary building entirely, which is the
// point: re-running experiments over a generated dataset becomes I/O bound
// rather than parse bound.

#ifndef SWOPE_TABLE_BINARY_IO_H_
#define SWOPE_TABLE_BINARY_IO_H_

#include <istream>
#include <ostream>
#include <string>

#include "src/common/result.h"
#include "src/table/table.h"

namespace swope {

/// Current format version (bit-packed payload), the only version written.
inline constexpr uint32_t kBinaryTableVersion = 2;
/// Legacy 4-bytes-per-code version, still readable.
inline constexpr uint32_t kBinaryTableVersionV1 = 1;

/// Serializes `table` to the binary column-store format (version 2).
Status WriteBinaryTable(const Table& table, std::ostream& output);
Status WriteBinaryTableFile(const Table& table, const std::string& path);

/// Deserializes a table; validates the magic, version and all structural
/// invariants (code ranges, packed widths, label counts), returning
/// Corruption on any mismatch. Reads versions 1 and 2.
Result<Table> ReadBinaryTable(std::istream& input);
Result<Table> ReadBinaryTableFile(const std::string& path);

}  // namespace swope

#endif  // SWOPE_TABLE_BINARY_IO_H_
