// TableBuilder: row-wise ingestion with on-the-fly dictionary encoding.
//
// This implements the paper's "simple one-to-one match preprocessing" that
// maps raw attribute values onto [1, u_alpha] (here [0, u)): each distinct
// raw string gets the next code in first-seen order.

#ifndef SWOPE_TABLE_TABLE_BUILDER_H_
#define SWOPE_TABLE_TABLE_BUILDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/table/table.h"

namespace swope {

/// Builds a Table by appending rows of raw string values. Each column keeps
/// a dictionary from raw value to code, assigned in first-seen order.
class TableBuilder {
 public:
  /// Creates a builder for the given column names (must be unique,
  /// non-empty).
  static Result<TableBuilder> Make(std::vector<std::string> column_names);

  size_t num_columns() const { return encoders_.size(); }
  uint64_t num_rows() const { return num_rows_; }

  /// Appends one row; `values` must have exactly one entry per column.
  Status AppendRow(const std::vector<std::string>& values);

  /// Appends one row given as string views (the CSV reader's path).
  /// Distinctly named to keep brace-initialized AppendRow calls
  /// unambiguous.
  Status AppendRowViews(const std::vector<std::string_view>& values);

  /// Finalizes into an immutable Table. The builder is consumed.
  Result<Table> Finish() &&;

 private:
  struct ColumnEncoder {
    std::string name;
    std::unordered_map<std::string, ValueCode> dictionary;
    std::vector<std::string> labels;  // code -> raw value
    std::vector<ValueCode> codes;

    ValueCode Encode(std::string_view raw);
  };

  explicit TableBuilder(std::vector<ColumnEncoder> encoders)
      : encoders_(std::move(encoders)) {}

  std::vector<ColumnEncoder> encoders_;
  uint64_t num_rows_ = 0;
};

}  // namespace swope

#endif  // SWOPE_TABLE_TABLE_BUILDER_H_
