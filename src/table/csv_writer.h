// CSV writer: serializes a Table back to RFC-4180 CSV using the column
// dictionaries (codes are written when a column has no labels).

#ifndef SWOPE_TABLE_CSV_WRITER_H_
#define SWOPE_TABLE_CSV_WRITER_H_

#include <ostream>
#include <string>

#include "src/common/status.h"
#include "src/table/table.h"

namespace swope {

/// Options controlling CSV output.
struct CsvWriteOptions {
  char delimiter = ',';
  bool write_header = true;
};

/// Writes `table` as CSV. Fields containing the delimiter, quotes or
/// newlines are quoted with doubled-quote escaping.
Status WriteCsv(const Table& table, std::ostream& output,
                const CsvWriteOptions& options = {});

/// Convenience wrapper writing to a file path.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvWriteOptions& options = {});

}  // namespace swope

#endif  // SWOPE_TABLE_CSV_WRITER_H_
