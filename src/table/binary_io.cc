#include "src/table/binary_io.h"

#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "src/fs/mapped_file.h"
#include "src/sketch/count_min.h"
#include "src/table/packed_codes.h"
#include "src/table/sharded_codes.h"

namespace swope {

namespace {

constexpr char kMagic[4] = {'S', 'W', 'P', 'B'};

// First byte of a padding run. Cannot collide with a width byte (widths
// are <= 32), so a one-byte lookahead where the width starts suffices.
constexpr uint8_t kPadMarker = 0xA7;
// Padding runs align to at most a hugepage; anything larger is a lying
// header.
constexpr uint32_t kMaxPadBytes = 1u << 21;
// Bytes appended to padded files so borrowed payloads can always be
// decoded with the unconditional two-word read.
constexpr uint64_t kTrailingGuardBytes = 8;

// Writers. The format is explicitly little-endian; on big-endian hosts
// these helpers would need byte swaps (not supported, flagged at read).
template <typename T>
void WritePod(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

template <typename T>
bool ReadPod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return in.gcount() == sizeof(value);
}

bool ReadString(std::istream& in, std::string& s, uint32_t max_len) {
  uint32_t len = 0;
  if (!ReadPod(in, len) || len > max_len) return false;
  s.resize(len);
  in.read(s.data(), len);
  return static_cast<uint32_t>(in.gcount()) == len;
}

// Returns the number of bytes left in `in`, or -1 when the stream is not
// seekable (e.g. a pipe), in which case upfront size validation is
// skipped and truncation is caught by the chunked reads instead.
std::streamoff RemainingBytes(std::istream& in) {
  const std::istream::pos_type cur = in.tellg();
  if (cur == std::istream::pos_type(-1)) return -1;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(cur);
  if (!in || end == std::istream::pos_type(-1) || end < cur) return -1;
  return end - cur;
}

// Reads a version-1 payload: num_rows 4-byte codes, then re-packs via the
// validating factory. Chunked so a lying header fails with Corruption
// rather than one huge allocation.
Result<Column> ReadColumnV1(std::istream& input, std::string name,
                            uint32_t support, uint64_t num_rows,
                            std::vector<std::string> labels) {
  std::vector<ValueCode> codes;
  codes.reserve(std::min<uint64_t>(num_rows, 1 << 20));
  constexpr uint64_t kChunkRows = 1 << 20;
  uint64_t remaining = num_rows;
  while (remaining > 0) {
    const uint64_t chunk = std::min(remaining, kChunkRows);
    const size_t old_size = codes.size();
    codes.resize(old_size + chunk);
    const auto bytes =
        static_cast<std::streamsize>(chunk * sizeof(ValueCode));
    input.read(reinterpret_cast<char*>(codes.data() + old_size), bytes);
    if (input.gcount() != bytes) {
      return Status::Corruption("binary table: truncated codes in column '" +
                                name + "'");
    }
    remaining -= chunk;
  }
  auto column = Column::Make(std::move(name), support, std::move(codes),
                             std::move(labels));
  if (!column.ok()) {
    return Status::Corruption("binary table: " + column.status().message());
  }
  return column;
}

// Reads a version-2 payload: a declared bit width (which must be the
// canonical width for the declared support) followed by the packed words.
Result<Column> ReadColumnV2(std::istream& input, std::string name,
                            uint32_t support, uint64_t num_rows,
                            std::vector<std::string> labels) {
  uint8_t width = 0;
  if (!ReadPod(input, width)) {
    return Status::Corruption("binary table: truncated column width");
  }
  if (width == kPadMarker) {
    uint32_t pad = 0;
    if (!ReadPod(input, pad) || pad > kMaxPadBytes) {
      return Status::Corruption("binary table: bad padding run in column '" +
                                name + "'");
    }
    input.ignore(pad);
    if (static_cast<uint32_t>(input.gcount()) != pad ||
        !ReadPod(input, width)) {
      return Status::Corruption("binary table: truncated column width");
    }
  }
  if (width != PackedCodes::WidthForSupport(support)) {
    return Status::Corruption(
        "binary table: column '" + name + "' declares width " +
        std::to_string(width) + ", expected " +
        std::to_string(PackedCodes::WidthForSupport(support)) +
        " for support " + std::to_string(support));
  }
  // The table header only pre-charges 10 bytes per v2 column, so num_rows
  // is still untrusted here. Reject sizes whose bit count would overflow
  // uint64 before calling NumDataWords -- a wrapped word count would pass
  // both the RemainingBytes check and FromWords' (same-formula) count
  // check, yielding a PackedCodes that decodes out of bounds.
  if (num_rows > PackedCodes::MaxSizeForWidth(width)) {
    return Status::Corruption(
        "binary table: column '" + name + "' claims " +
        std::to_string(num_rows) + " rows, too many for width " +
        std::to_string(width));
  }
  const uint64_t num_words = PackedCodes::NumDataWords(num_rows, width);
  // Against lying headers: check the stream can actually hold the payload
  // before allocating (when seekable), and read in bounded chunks.
  {
    const std::streamoff remaining = RemainingBytes(input);
    if (remaining >= 0 &&
        num_words > static_cast<uint64_t>(remaining) / sizeof(uint64_t)) {
      return Status::Corruption("binary table: truncated codes in column '" +
                                name + "'");
    }
  }
  std::vector<uint64_t> words;
  words.reserve(std::min<uint64_t>(num_words, 1 << 17));
  constexpr uint64_t kChunkWords = 1 << 17;
  uint64_t remaining = num_words;
  while (remaining > 0) {
    const uint64_t chunk = std::min(remaining, kChunkWords);
    const size_t old_size = words.size();
    words.resize(old_size + chunk);
    const auto bytes = static_cast<std::streamsize>(chunk * sizeof(uint64_t));
    input.read(reinterpret_cast<char*>(words.data() + old_size), bytes);
    if (input.gcount() != bytes) {
      return Status::Corruption("binary table: truncated codes in column '" +
                                name + "'");
    }
    remaining -= chunk;
  }
  auto packed = PackedCodes::FromWords(num_rows, width, std::move(words));
  if (!packed.ok()) {
    return Status::Corruption("binary table: " + packed.status().message());
  }
  auto column = Column::FromPacked(std::move(name), support,
                                   std::move(packed).value(),
                                   std::move(labels));
  if (!column.ok()) {
    return Status::Corruption("binary table: " + column.status().message());
  }
  return column;
}

// Reads a version-3 sketch sidecar (the bytes after a column's packed
// words): a presence flag, then shape, seed, total count and the counter
// matrix. Shape bounds are checked before any allocation, and
// CountMinSketch::FromParts re-validates everything including the
// conservative-update row-sum invariant, so a corrupted sidecar fails
// with Corruption instead of producing impossible estimates.
Result<std::shared_ptr<const CountMinSketch>> ReadSketchSidecar(
    std::istream& input, const std::string& name) {
  uint8_t has_sketch = 0;
  if (!ReadPod(input, has_sketch) || has_sketch > 1) {
    return Status::Corruption(
        "binary table: truncated sketch flag in column '" + name + "'");
  }
  if (has_sketch == 0) {
    return std::shared_ptr<const CountMinSketch>(nullptr);
  }
  uint32_t depth = 0;
  uint32_t width = 0;
  uint64_t seed = 0;
  uint64_t total_count = 0;
  if (!ReadPod(input, depth) || !ReadPod(input, width) ||
      !ReadPod(input, seed) || !ReadPod(input, total_count)) {
    return Status::Corruption(
        "binary table: truncated sketch header in column '" + name + "'");
  }
  // Bound the shape before computing the counter count: FromParts would
  // reject these too, but only after we allocated for a lying header.
  if (depth < CountMinSketch::kMinDepth ||
      depth > CountMinSketch::kMaxDepth ||
      width < CountMinSketch::kMinWidth ||
      width > CountMinSketch::kMaxWidth) {
    return Status::Corruption("binary table: column '" + name +
                              "' sketch has invalid shape " +
                              std::to_string(depth) + "x" +
                              std::to_string(width));
  }
  // depth <= 16 and width <= 2^24, so the product cannot overflow uint64.
  const uint64_t num_counters =
      static_cast<uint64_t>(depth) * static_cast<uint64_t>(width);
  {
    const std::streamoff remaining = RemainingBytes(input);
    if (remaining >= 0 &&
        num_counters >
            static_cast<uint64_t>(remaining) / sizeof(uint64_t)) {
      return Status::Corruption(
          "binary table: truncated sketch counters in column '" + name +
          "'");
    }
  }
  std::vector<uint64_t> counters;
  counters.reserve(std::min<uint64_t>(num_counters, 1 << 17));
  constexpr uint64_t kChunkWords = 1 << 17;
  uint64_t remaining = num_counters;
  while (remaining > 0) {
    const uint64_t chunk = std::min(remaining, kChunkWords);
    const size_t old_size = counters.size();
    counters.resize(old_size + chunk);
    const auto bytes =
        static_cast<std::streamsize>(chunk * sizeof(uint64_t));
    input.read(reinterpret_cast<char*>(counters.data() + old_size), bytes);
    if (input.gcount() != bytes) {
      return Status::Corruption(
          "binary table: truncated sketch counters in column '" + name +
          "'");
    }
    remaining -= chunk;
  }
  auto sketch = CountMinSketch::FromParts(depth, width, seed, total_count,
                                          std::move(counters));
  if (!sketch.ok()) {
    return Status::Corruption("binary table: column '" + name +
                              "' sketch: " + sketch.status().message());
  }
  return std::make_shared<const CountMinSketch>(std::move(sketch).value());
}

}  // namespace

Status WriteBinaryTable(const Table& table, std::ostream& output,
                        const BinaryWriteOptions& options) {
  // Sketch-free tables keep version-2 files; the sidecar section exists
  // only in version 3.
  const bool any_sketch = table.SketchMemoryBytes() > 0;
  const uint32_t version =
      any_sketch ? kBinaryTableVersionV3 : kBinaryTableVersion;
  output.write(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(output, version);
  WritePod<uint64_t>(output, table.num_rows());
  WritePod<uint32_t>(output, static_cast<uint32_t>(table.num_columns()));
  const uint64_t alignment = std::max<uint64_t>(options.alignment, 8);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    WriteString(output, col.name());
    WritePod<uint32_t>(output, col.support());
    WritePod<uint8_t>(output, col.has_labels() ? 1 : 0);
    if (col.has_labels()) {
      for (const std::string& label : col.labels()) {
        WriteString(output, label);
      }
    }
    // Shards are in-memory only: the wire payload is the contiguous
    // concatenation, independent of the in-memory geometry.
    const PackedCodes packed = col.sharded().Flatten();
    if (options.page_align && packed.num_data_words() > 0) {
      // Pad so the packed words land `alignment`-aligned in the file
      // (offsets are relative to the stream start, which is the file
      // start on the save path). Unseekable sinks skip the run; the
      // format stays valid either way.
      const std::ostream::pos_type pos = output.tellp();
      if (pos != std::ostream::pos_type(-1)) {
        // Payload starts after the 1-byte marker, the u32 length, the
        // zeros, and the width byte.
        const uint64_t header_end = static_cast<uint64_t>(pos) + 6;
        const uint32_t pad = static_cast<uint32_t>(
            (alignment - header_end % alignment) % alignment);
        WritePod<uint8_t>(output, kPadMarker);
        WritePod<uint32_t>(output, pad);
        static constexpr char kZeros[256] = {};
        for (uint32_t left = pad; left > 0;) {
          const uint32_t chunk = std::min<uint32_t>(left, sizeof(kZeros));
          output.write(kZeros, chunk);
          left -= chunk;
        }
      }
    }
    WritePod<uint8_t>(output, static_cast<uint8_t>(packed.width()));
    output.write(reinterpret_cast<const char*>(packed.data_words()),
                 static_cast<std::streamsize>(packed.num_data_words() *
                                              sizeof(uint64_t)));
    if (version == kBinaryTableVersionV3) {
      WritePod<uint8_t>(output, col.has_sketch() ? 1 : 0);
      if (col.has_sketch()) {
        const CountMinSketch& sketch = *col.sketch();
        WritePod<uint32_t>(output, sketch.depth());
        WritePod<uint32_t>(output, sketch.width());
        WritePod<uint64_t>(output, sketch.seed());
        WritePod<uint64_t>(output, sketch.total_count());
        output.write(reinterpret_cast<const char*>(sketch.counters()),
                     static_cast<std::streamsize>(sketch.num_counters() *
                                                  sizeof(uint64_t)));
      }
    }
  }
  if (options.page_align) {
    // Trailing guard so a borrowed final payload can end flush with the
    // data and still honor the 8-bytes-past-payload read contract.
    // Readers stop at the declared columns and ignore trailing bytes.
    static constexpr char kGuard[kTrailingGuardBytes] = {};
    output.write(kGuard, sizeof(kGuard));
  }
  if (!output) return Status::IOError("binary table: write failed");
  return Status::OK();
}

Status WriteBinaryTableFile(const Table& table, const std::string& path,
                            const BinaryWriteOptions& options) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("binary table: cannot open '" + path + "'");
  }
  return WriteBinaryTable(table, file, options);
}

Result<Table> ReadBinaryTable(std::istream& input) {
  char magic[4];
  input.read(magic, sizeof(magic));
  if (input.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("binary table: bad magic");
  }
  uint32_t version = 0;
  if (!ReadPod(input, version) ||
      (version != kBinaryTableVersion && version != kBinaryTableVersionV1 &&
       version != kBinaryTableVersionV3)) {
    return Status::Corruption(
        "binary table: unsupported version " + std::to_string(version) +
        " (supported: " + std::to_string(kBinaryTableVersionV1) + ", " +
        std::to_string(kBinaryTableVersion) + ", " +
        std::to_string(kBinaryTableVersionV3) + ")");
  }
  uint64_t num_rows = 0;
  uint32_t num_columns = 0;
  if (!ReadPod(input, num_rows) || !ReadPod(input, num_columns)) {
    return Status::Corruption("binary table: truncated header");
  }
  // Lower-bound the bytes the header promises against what the stream can
  // actually deliver. Version 1 columns cost at least their 9-byte fixed
  // header plus num_rows 4-byte codes; version 2 columns cost at least a
  // 10-byte header (payload words are checked per column once the width is
  // known, since a width of 0 legitimately has no payload). A corrupt
  // header claiming billions of rows or columns fails here with Corruption
  // instead of entering the read loop at all.
  {
    const std::streamoff remaining = RemainingBytes(input);
    if (remaining >= 0) {
      const auto avail = static_cast<uint64_t>(remaining);
      constexpr uint64_t kColumnHeaderBytes =
          sizeof(uint32_t) + sizeof(uint32_t) + sizeof(uint8_t);
      uint64_t per_column = kColumnHeaderBytes;
      if (version == kBinaryTableVersionV1) {
        if (num_rows > avail / sizeof(ValueCode)) {
          return Status::Corruption(
              "binary table: header claims more data than the stream holds");
        }
        per_column += num_rows * sizeof(ValueCode);
      } else {
        // v2: the width byte. v3 additionally promises the sketch flag.
        per_column += sizeof(uint8_t);
        if (version == kBinaryTableVersionV3) per_column += sizeof(uint8_t);
      }
      if (num_columns > 0 && per_column > avail / num_columns) {
        return Status::Corruption(
            "binary table: header claims more data than the stream holds");
      }
    }
  }
  constexpr uint32_t kMaxNameLen = 1 << 20;
  std::vector<Column> columns;
  columns.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string name;
    uint32_t support = 0;
    uint8_t has_labels = 0;
    if (!ReadString(input, name, kMaxNameLen) || !ReadPod(input, support) ||
        !ReadPod(input, has_labels) || has_labels > 1) {
      return Status::Corruption("binary table: truncated column header");
    }
    // Corrupt headers can claim absurd sizes; never allocate up front for
    // more than the stream actually delivers -- grow with the data so a
    // lying header fails with Corruption instead of exhausting memory.
    std::vector<std::string> labels;
    if (has_labels != 0) {
      labels.reserve(std::min<uint64_t>(support, 1 << 16));
      for (uint32_t v = 0; v < support; ++v) {
        std::string label;
        if (!ReadString(input, label, kMaxNameLen)) {
          return Status::Corruption("binary table: truncated labels");
        }
        labels.push_back(std::move(label));
      }
    }
    auto column =
        version == kBinaryTableVersionV1
            ? ReadColumnV1(input, std::move(name), support, num_rows,
                           std::move(labels))
            : ReadColumnV2(input, std::move(name), support, num_rows,
                           std::move(labels));
    if (!column.ok()) return column.status();
    if (version == kBinaryTableVersionV3) {
      auto sketch = ReadSketchSidecar(input, column.value().name());
      if (!sketch.ok()) return sketch.status();
      if (sketch.value() != nullptr) {
        columns.push_back(
            column.value().WithSketch(std::move(sketch).value()));
        continue;
      }
    }
    columns.push_back(std::move(column).value());
  }
  auto table = Table::Make(std::move(columns));
  if (!table.ok()) {
    return Status::Corruption("binary table: " + table.status().message());
  }
  return table;
}

Result<Table> ReadBinaryTableFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("binary table: cannot open '" + path + "'");
  }
  return ReadBinaryTable(file);
}

namespace {

// Bounds-checked reader over a mapped image. Mirrors the stream helpers;
// every accessor fails instead of reading past the mapping, so truncated
// or lying images surface as Corruption, never as a fault.
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  const uint8_t* here() const { return data_ + pos_; }

  template <typename T>
  bool ReadPod(T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) return false;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadString(std::string& s, uint32_t max_len) {
    uint32_t len = 0;
    if (!ReadPod(len) || len > max_len || remaining() < len) return false;
    s.assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  bool Skip(uint64_t bytes) {
    if (remaining() < bytes) return false;
    pos_ += bytes;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Cursor twin of ReadSketchSidecar. Sketch counters are always copied to
// the heap: sketches are mutated on ingest and are small next to the
// packed payloads.
Result<std::shared_ptr<const CountMinSketch>> ReadSketchSidecarMapped(
    Cursor& in, const std::string& name) {
  uint8_t has_sketch = 0;
  if (!in.ReadPod(has_sketch) || has_sketch > 1) {
    return Status::Corruption(
        "binary table: truncated sketch flag in column '" + name + "'");
  }
  if (has_sketch == 0) {
    return std::shared_ptr<const CountMinSketch>(nullptr);
  }
  uint32_t depth = 0;
  uint32_t width = 0;
  uint64_t seed = 0;
  uint64_t total_count = 0;
  if (!in.ReadPod(depth) || !in.ReadPod(width) || !in.ReadPod(seed) ||
      !in.ReadPod(total_count)) {
    return Status::Corruption(
        "binary table: truncated sketch header in column '" + name + "'");
  }
  if (depth < CountMinSketch::kMinDepth ||
      depth > CountMinSketch::kMaxDepth ||
      width < CountMinSketch::kMinWidth ||
      width > CountMinSketch::kMaxWidth) {
    return Status::Corruption("binary table: column '" + name +
                              "' sketch has invalid shape " +
                              std::to_string(depth) + "x" +
                              std::to_string(width));
  }
  const uint64_t num_counters =
      static_cast<uint64_t>(depth) * static_cast<uint64_t>(width);
  if (num_counters > in.remaining() / sizeof(uint64_t)) {
    return Status::Corruption(
        "binary table: truncated sketch counters in column '" + name + "'");
  }
  std::vector<uint64_t> counters(num_counters);
  std::memcpy(counters.data(), in.here(), num_counters * sizeof(uint64_t));
  in.Skip(num_counters * sizeof(uint64_t));
  auto sketch = CountMinSketch::FromParts(depth, width, seed, total_count,
                                          std::move(counters));
  if (!sketch.ok()) {
    return Status::Corruption("binary table: column '" + name +
                              "' sketch: " + sketch.status().message());
  }
  return std::make_shared<const CountMinSketch>(std::move(sketch).value());
}

}  // namespace

Result<Table> ReadBinaryTableFileMapped(const std::string& path) {
  SWOPE_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> file,
                         MappedFile::Open(path));
  const std::shared_ptr<const MappedFile> mapped = std::move(file);
  Cursor in(mapped->data(), mapped->size());
  char magic[4];
  if (!in.ReadPod(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("binary table: bad magic");
  }
  uint32_t version = 0;
  if (!in.ReadPod(version) ||
      (version != kBinaryTableVersion && version != kBinaryTableVersionV1 &&
       version != kBinaryTableVersionV3)) {
    return Status::Corruption(
        "binary table: unsupported version " + std::to_string(version) +
        " (supported: " + std::to_string(kBinaryTableVersionV1) + ", " +
        std::to_string(kBinaryTableVersion) + ", " +
        std::to_string(kBinaryTableVersionV3) + ")");
  }
  if (version == kBinaryTableVersionV1) {
    // v1 stores 4-byte codes that are re-packed on load; there is
    // nothing to borrow. The owned loader handles it.
    return ReadBinaryTableFile(path);
  }
  uint64_t num_rows = 0;
  uint32_t num_columns = 0;
  if (!in.ReadPod(num_rows) || !in.ReadPod(num_columns)) {
    return Status::Corruption("binary table: truncated header");
  }
  // Same lower-bound plausibility check as the stream reader: every v2/v3
  // column costs at least its fixed header plus the width byte (plus the
  // sketch flag in v3).
  {
    const uint64_t avail = in.remaining();
    uint64_t per_column = sizeof(uint32_t) + sizeof(uint32_t) +
                          sizeof(uint8_t) + sizeof(uint8_t);
    if (version == kBinaryTableVersionV3) per_column += sizeof(uint8_t);
    if (num_columns > 0 && per_column > avail / num_columns) {
      return Status::Corruption(
          "binary table: header claims more data than the stream holds");
    }
  }
  constexpr uint32_t kMaxNameLen = 1 << 20;
  std::vector<Column> columns;
  columns.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string name;
    uint32_t support = 0;
    uint8_t has_labels = 0;
    if (!in.ReadString(name, kMaxNameLen) || !in.ReadPod(support) ||
        !in.ReadPod(has_labels) || has_labels > 1) {
      return Status::Corruption("binary table: truncated column header");
    }
    std::vector<std::string> labels;
    if (has_labels != 0) {
      labels.reserve(std::min<uint64_t>(support, 1 << 16));
      for (uint32_t v = 0; v < support; ++v) {
        std::string label;
        if (!in.ReadString(label, kMaxNameLen)) {
          return Status::Corruption("binary table: truncated labels");
        }
        labels.push_back(std::move(label));
      }
    }
    uint8_t width = 0;
    if (!in.ReadPod(width)) {
      return Status::Corruption("binary table: truncated column width");
    }
    if (width == kPadMarker) {
      uint32_t pad = 0;
      if (!in.ReadPod(pad) || pad > kMaxPadBytes) {
        return Status::Corruption(
            "binary table: bad padding run in column '" + name + "'");
      }
      if (!in.Skip(pad) || !in.ReadPod(width)) {
        return Status::Corruption("binary table: truncated column width");
      }
    }
    if (width != PackedCodes::WidthForSupport(support)) {
      return Status::Corruption(
          "binary table: column '" + name + "' declares width " +
          std::to_string(width) + ", expected " +
          std::to_string(PackedCodes::WidthForSupport(support)) +
          " for support " + std::to_string(support));
    }
    if (num_rows > PackedCodes::MaxSizeForWidth(width)) {
      return Status::Corruption(
          "binary table: column '" + name + "' claims " +
          std::to_string(num_rows) + " rows, too many for width " +
          std::to_string(width));
    }
    const uint64_t num_words = PackedCodes::NumDataWords(num_rows, width);
    const uint64_t payload_bytes = num_words * sizeof(uint64_t);
    const size_t payload_pos = in.pos();
    const uint8_t* payload = in.here();
    if (!in.Skip(payload_bytes)) {
      return Status::Corruption("binary table: truncated codes in column '" +
                                name + "'");
    }
    const std::string col_name = name;
    // Borrow when the payload is 8-byte aligned in the mapping and the
    // two-word decode reads stay inside it (the padded layout guarantees
    // both); otherwise copy to the heap -- the unpadded legacy layout.
    const bool aligned =
        (reinterpret_cast<uintptr_t>(payload) % alignof(uint64_t)) == 0;
    const bool guarded = payload_pos + payload_bytes + kTrailingGuardBytes <=
                         mapped->ReadableBytes();
    Result<Column> column = [&]() -> Result<Column> {
      if (payload_bytes > 0 && aligned && guarded) {
        auto sharded = ShardedCodes::BorrowWords(
            num_rows, width, reinterpret_cast<const uint64_t*>(payload),
            DefaultShardSize());
        if (sharded.ok()) {
          return Column::FromShardedBacked(std::move(name), support,
                                           std::move(sharded).value(),
                                           std::move(labels), mapped);
        }
        // Borrowing only fails on shard geometry; fall through to the
        // owned copy.
      }
      std::vector<uint64_t> words(num_words);
      if (num_words > 0) std::memcpy(words.data(), payload, payload_bytes);
      auto packed = PackedCodes::FromWords(num_rows, width, std::move(words));
      if (!packed.ok()) return packed.status();
      return Column::FromPacked(std::move(name), support,
                                std::move(packed).value(),
                                std::move(labels));
    }();
    if (!column.ok()) {
      return Status::Corruption("binary table: " +
                                column.status().message());
    }
    if (version == kBinaryTableVersionV3) {
      auto sketch = ReadSketchSidecarMapped(in, col_name);
      if (!sketch.ok()) return sketch.status();
      if (sketch.value() != nullptr) {
        columns.push_back(
            column.value().WithSketch(std::move(sketch).value()));
        continue;
      }
    }
    columns.push_back(std::move(column).value());
  }
  auto table = Table::Make(std::move(columns));
  if (!table.ok()) {
    return Status::Corruption("binary table: " + table.status().message());
  }
  return table;
}

}  // namespace swope
