#include "src/table/binary_io.h"

#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "src/sketch/count_min.h"
#include "src/table/packed_codes.h"

namespace swope {

namespace {

constexpr char kMagic[4] = {'S', 'W', 'P', 'B'};

// Writers. The format is explicitly little-endian; on big-endian hosts
// these helpers would need byte swaps (not supported, flagged at read).
template <typename T>
void WritePod(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

template <typename T>
bool ReadPod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return in.gcount() == sizeof(value);
}

bool ReadString(std::istream& in, std::string& s, uint32_t max_len) {
  uint32_t len = 0;
  if (!ReadPod(in, len) || len > max_len) return false;
  s.resize(len);
  in.read(s.data(), len);
  return static_cast<uint32_t>(in.gcount()) == len;
}

// Returns the number of bytes left in `in`, or -1 when the stream is not
// seekable (e.g. a pipe), in which case upfront size validation is
// skipped and truncation is caught by the chunked reads instead.
std::streamoff RemainingBytes(std::istream& in) {
  const std::istream::pos_type cur = in.tellg();
  if (cur == std::istream::pos_type(-1)) return -1;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(cur);
  if (!in || end == std::istream::pos_type(-1) || end < cur) return -1;
  return end - cur;
}

// Reads a version-1 payload: num_rows 4-byte codes, then re-packs via the
// validating factory. Chunked so a lying header fails with Corruption
// rather than one huge allocation.
Result<Column> ReadColumnV1(std::istream& input, std::string name,
                            uint32_t support, uint64_t num_rows,
                            std::vector<std::string> labels) {
  std::vector<ValueCode> codes;
  codes.reserve(std::min<uint64_t>(num_rows, 1 << 20));
  constexpr uint64_t kChunkRows = 1 << 20;
  uint64_t remaining = num_rows;
  while (remaining > 0) {
    const uint64_t chunk = std::min(remaining, kChunkRows);
    const size_t old_size = codes.size();
    codes.resize(old_size + chunk);
    const auto bytes =
        static_cast<std::streamsize>(chunk * sizeof(ValueCode));
    input.read(reinterpret_cast<char*>(codes.data() + old_size), bytes);
    if (input.gcount() != bytes) {
      return Status::Corruption("binary table: truncated codes in column '" +
                                name + "'");
    }
    remaining -= chunk;
  }
  auto column = Column::Make(std::move(name), support, std::move(codes),
                             std::move(labels));
  if (!column.ok()) {
    return Status::Corruption("binary table: " + column.status().message());
  }
  return column;
}

// Reads a version-2 payload: a declared bit width (which must be the
// canonical width for the declared support) followed by the packed words.
Result<Column> ReadColumnV2(std::istream& input, std::string name,
                            uint32_t support, uint64_t num_rows,
                            std::vector<std::string> labels) {
  uint8_t width = 0;
  if (!ReadPod(input, width)) {
    return Status::Corruption("binary table: truncated column width");
  }
  if (width != PackedCodes::WidthForSupport(support)) {
    return Status::Corruption(
        "binary table: column '" + name + "' declares width " +
        std::to_string(width) + ", expected " +
        std::to_string(PackedCodes::WidthForSupport(support)) +
        " for support " + std::to_string(support));
  }
  // The table header only pre-charges 10 bytes per v2 column, so num_rows
  // is still untrusted here. Reject sizes whose bit count would overflow
  // uint64 before calling NumDataWords -- a wrapped word count would pass
  // both the RemainingBytes check and FromWords' (same-formula) count
  // check, yielding a PackedCodes that decodes out of bounds.
  if (num_rows > PackedCodes::MaxSizeForWidth(width)) {
    return Status::Corruption(
        "binary table: column '" + name + "' claims " +
        std::to_string(num_rows) + " rows, too many for width " +
        std::to_string(width));
  }
  const uint64_t num_words = PackedCodes::NumDataWords(num_rows, width);
  // Against lying headers: check the stream can actually hold the payload
  // before allocating (when seekable), and read in bounded chunks.
  {
    const std::streamoff remaining = RemainingBytes(input);
    if (remaining >= 0 &&
        num_words > static_cast<uint64_t>(remaining) / sizeof(uint64_t)) {
      return Status::Corruption("binary table: truncated codes in column '" +
                                name + "'");
    }
  }
  std::vector<uint64_t> words;
  words.reserve(std::min<uint64_t>(num_words, 1 << 17));
  constexpr uint64_t kChunkWords = 1 << 17;
  uint64_t remaining = num_words;
  while (remaining > 0) {
    const uint64_t chunk = std::min(remaining, kChunkWords);
    const size_t old_size = words.size();
    words.resize(old_size + chunk);
    const auto bytes = static_cast<std::streamsize>(chunk * sizeof(uint64_t));
    input.read(reinterpret_cast<char*>(words.data() + old_size), bytes);
    if (input.gcount() != bytes) {
      return Status::Corruption("binary table: truncated codes in column '" +
                                name + "'");
    }
    remaining -= chunk;
  }
  auto packed = PackedCodes::FromWords(num_rows, width, std::move(words));
  if (!packed.ok()) {
    return Status::Corruption("binary table: " + packed.status().message());
  }
  auto column = Column::FromPacked(std::move(name), support,
                                   std::move(packed).value(),
                                   std::move(labels));
  if (!column.ok()) {
    return Status::Corruption("binary table: " + column.status().message());
  }
  return column;
}

// Reads a version-3 sketch sidecar (the bytes after a column's packed
// words): a presence flag, then shape, seed, total count and the counter
// matrix. Shape bounds are checked before any allocation, and
// CountMinSketch::FromParts re-validates everything including the
// conservative-update row-sum invariant, so a corrupted sidecar fails
// with Corruption instead of producing impossible estimates.
Result<std::shared_ptr<const CountMinSketch>> ReadSketchSidecar(
    std::istream& input, const std::string& name) {
  uint8_t has_sketch = 0;
  if (!ReadPod(input, has_sketch) || has_sketch > 1) {
    return Status::Corruption(
        "binary table: truncated sketch flag in column '" + name + "'");
  }
  if (has_sketch == 0) {
    return std::shared_ptr<const CountMinSketch>(nullptr);
  }
  uint32_t depth = 0;
  uint32_t width = 0;
  uint64_t seed = 0;
  uint64_t total_count = 0;
  if (!ReadPod(input, depth) || !ReadPod(input, width) ||
      !ReadPod(input, seed) || !ReadPod(input, total_count)) {
    return Status::Corruption(
        "binary table: truncated sketch header in column '" + name + "'");
  }
  // Bound the shape before computing the counter count: FromParts would
  // reject these too, but only after we allocated for a lying header.
  if (depth < CountMinSketch::kMinDepth ||
      depth > CountMinSketch::kMaxDepth ||
      width < CountMinSketch::kMinWidth ||
      width > CountMinSketch::kMaxWidth) {
    return Status::Corruption("binary table: column '" + name +
                              "' sketch has invalid shape " +
                              std::to_string(depth) + "x" +
                              std::to_string(width));
  }
  // depth <= 16 and width <= 2^24, so the product cannot overflow uint64.
  const uint64_t num_counters =
      static_cast<uint64_t>(depth) * static_cast<uint64_t>(width);
  {
    const std::streamoff remaining = RemainingBytes(input);
    if (remaining >= 0 &&
        num_counters >
            static_cast<uint64_t>(remaining) / sizeof(uint64_t)) {
      return Status::Corruption(
          "binary table: truncated sketch counters in column '" + name +
          "'");
    }
  }
  std::vector<uint64_t> counters;
  counters.reserve(std::min<uint64_t>(num_counters, 1 << 17));
  constexpr uint64_t kChunkWords = 1 << 17;
  uint64_t remaining = num_counters;
  while (remaining > 0) {
    const uint64_t chunk = std::min(remaining, kChunkWords);
    const size_t old_size = counters.size();
    counters.resize(old_size + chunk);
    const auto bytes =
        static_cast<std::streamsize>(chunk * sizeof(uint64_t));
    input.read(reinterpret_cast<char*>(counters.data() + old_size), bytes);
    if (input.gcount() != bytes) {
      return Status::Corruption(
          "binary table: truncated sketch counters in column '" + name +
          "'");
    }
    remaining -= chunk;
  }
  auto sketch = CountMinSketch::FromParts(depth, width, seed, total_count,
                                          std::move(counters));
  if (!sketch.ok()) {
    return Status::Corruption("binary table: column '" + name +
                              "' sketch: " + sketch.status().message());
  }
  return std::make_shared<const CountMinSketch>(std::move(sketch).value());
}

}  // namespace

Status WriteBinaryTable(const Table& table, std::ostream& output) {
  // Sketch-free tables keep byte-identical version-2 files; the sidecar
  // section exists only in version 3.
  const bool any_sketch = table.SketchMemoryBytes() > 0;
  const uint32_t version =
      any_sketch ? kBinaryTableVersionV3 : kBinaryTableVersion;
  output.write(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(output, version);
  WritePod<uint64_t>(output, table.num_rows());
  WritePod<uint32_t>(output, static_cast<uint32_t>(table.num_columns()));
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    WriteString(output, col.name());
    WritePod<uint32_t>(output, col.support());
    WritePod<uint8_t>(output, col.has_labels() ? 1 : 0);
    if (col.has_labels()) {
      for (const std::string& label : col.labels()) {
        WriteString(output, label);
      }
    }
    // Shards are in-memory only: the wire payload is the contiguous
    // concatenation, byte-identical to pre-sharding files.
    const PackedCodes packed = col.sharded().Flatten();
    WritePod<uint8_t>(output, static_cast<uint8_t>(packed.width()));
    output.write(reinterpret_cast<const char*>(packed.data_words()),
                 static_cast<std::streamsize>(packed.num_data_words() *
                                              sizeof(uint64_t)));
    if (version == kBinaryTableVersionV3) {
      WritePod<uint8_t>(output, col.has_sketch() ? 1 : 0);
      if (col.has_sketch()) {
        const CountMinSketch& sketch = *col.sketch();
        WritePod<uint32_t>(output, sketch.depth());
        WritePod<uint32_t>(output, sketch.width());
        WritePod<uint64_t>(output, sketch.seed());
        WritePod<uint64_t>(output, sketch.total_count());
        output.write(reinterpret_cast<const char*>(sketch.counters()),
                     static_cast<std::streamsize>(sketch.num_counters() *
                                                  sizeof(uint64_t)));
      }
    }
  }
  if (!output) return Status::IOError("binary table: write failed");
  return Status::OK();
}

Status WriteBinaryTableFile(const Table& table, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("binary table: cannot open '" + path + "'");
  }
  return WriteBinaryTable(table, file);
}

Result<Table> ReadBinaryTable(std::istream& input) {
  char magic[4];
  input.read(magic, sizeof(magic));
  if (input.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("binary table: bad magic");
  }
  uint32_t version = 0;
  if (!ReadPod(input, version) ||
      (version != kBinaryTableVersion && version != kBinaryTableVersionV1 &&
       version != kBinaryTableVersionV3)) {
    return Status::Corruption(
        "binary table: unsupported version " + std::to_string(version) +
        " (supported: " + std::to_string(kBinaryTableVersionV1) + ", " +
        std::to_string(kBinaryTableVersion) + ", " +
        std::to_string(kBinaryTableVersionV3) + ")");
  }
  uint64_t num_rows = 0;
  uint32_t num_columns = 0;
  if (!ReadPod(input, num_rows) || !ReadPod(input, num_columns)) {
    return Status::Corruption("binary table: truncated header");
  }
  // Lower-bound the bytes the header promises against what the stream can
  // actually deliver. Version 1 columns cost at least their 9-byte fixed
  // header plus num_rows 4-byte codes; version 2 columns cost at least a
  // 10-byte header (payload words are checked per column once the width is
  // known, since a width of 0 legitimately has no payload). A corrupt
  // header claiming billions of rows or columns fails here with Corruption
  // instead of entering the read loop at all.
  {
    const std::streamoff remaining = RemainingBytes(input);
    if (remaining >= 0) {
      const auto avail = static_cast<uint64_t>(remaining);
      constexpr uint64_t kColumnHeaderBytes =
          sizeof(uint32_t) + sizeof(uint32_t) + sizeof(uint8_t);
      uint64_t per_column = kColumnHeaderBytes;
      if (version == kBinaryTableVersionV1) {
        if (num_rows > avail / sizeof(ValueCode)) {
          return Status::Corruption(
              "binary table: header claims more data than the stream holds");
        }
        per_column += num_rows * sizeof(ValueCode);
      } else {
        // v2: the width byte. v3 additionally promises the sketch flag.
        per_column += sizeof(uint8_t);
        if (version == kBinaryTableVersionV3) per_column += sizeof(uint8_t);
      }
      if (num_columns > 0 && per_column > avail / num_columns) {
        return Status::Corruption(
            "binary table: header claims more data than the stream holds");
      }
    }
  }
  constexpr uint32_t kMaxNameLen = 1 << 20;
  std::vector<Column> columns;
  columns.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string name;
    uint32_t support = 0;
    uint8_t has_labels = 0;
    if (!ReadString(input, name, kMaxNameLen) || !ReadPod(input, support) ||
        !ReadPod(input, has_labels) || has_labels > 1) {
      return Status::Corruption("binary table: truncated column header");
    }
    // Corrupt headers can claim absurd sizes; never allocate up front for
    // more than the stream actually delivers -- grow with the data so a
    // lying header fails with Corruption instead of exhausting memory.
    std::vector<std::string> labels;
    if (has_labels != 0) {
      labels.reserve(std::min<uint64_t>(support, 1 << 16));
      for (uint32_t v = 0; v < support; ++v) {
        std::string label;
        if (!ReadString(input, label, kMaxNameLen)) {
          return Status::Corruption("binary table: truncated labels");
        }
        labels.push_back(std::move(label));
      }
    }
    auto column =
        version == kBinaryTableVersionV1
            ? ReadColumnV1(input, std::move(name), support, num_rows,
                           std::move(labels))
            : ReadColumnV2(input, std::move(name), support, num_rows,
                           std::move(labels));
    if (!column.ok()) return column.status();
    if (version == kBinaryTableVersionV3) {
      auto sketch = ReadSketchSidecar(input, column.value().name());
      if (!sketch.ok()) return sketch.status();
      if (sketch.value() != nullptr) {
        columns.push_back(
            column.value().WithSketch(std::move(sketch).value()));
        continue;
      }
    }
    columns.push_back(std::move(column).value());
  }
  auto table = Table::Make(std::move(columns));
  if (!table.ok()) {
    return Status::Corruption("binary table: " + table.status().message());
  }
  return table;
}

Result<Table> ReadBinaryTableFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("binary table: cannot open '" + path + "'");
  }
  return ReadBinaryTable(file);
}

}  // namespace swope
