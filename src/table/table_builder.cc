#include "src/table/table_builder.h"

#include <unordered_set>

namespace swope {

ValueCode TableBuilder::ColumnEncoder::Encode(std::string_view raw) {
  // A transparent-hash lookup would avoid this copy on hit; kept simple
  // because ingestion is not on any measured query path.
  std::string key(raw);
  auto [it, inserted] =
      dictionary.try_emplace(std::move(key), static_cast<ValueCode>(labels.size()));
  if (inserted) labels.emplace_back(raw);
  return it->second;
}

Result<TableBuilder> TableBuilder::Make(
    std::vector<std::string> column_names) {
  std::unordered_set<std::string> seen;
  std::vector<ColumnEncoder> encoders;
  encoders.reserve(column_names.size());
  for (std::string& name : column_names) {
    if (name.empty()) {
      return Status::InvalidArgument("table builder: empty column name");
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument(
          "table builder: duplicate column name '" + name + "'");
    }
    ColumnEncoder encoder;
    encoder.name = std::move(name);
    encoders.push_back(std::move(encoder));
  }
  return TableBuilder(std::move(encoders));
}

Status TableBuilder::AppendRow(const std::vector<std::string>& values) {
  std::vector<std::string_view> views(values.begin(), values.end());
  return AppendRowViews(views);
}

Status TableBuilder::AppendRowViews(const std::vector<std::string_view>& values) {
  if (values.size() != encoders_.size()) {
    return Status::InvalidArgument(
        "table builder: row has " + std::to_string(values.size()) +
        " values, expected " + std::to_string(encoders_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    encoders_[i].codes.push_back(encoders_[i].Encode(values[i]));
  }
  ++num_rows_;
  return Status::OK();
}

Result<Table> TableBuilder::Finish() && {
  std::vector<Column> columns;
  columns.reserve(encoders_.size());
  for (ColumnEncoder& encoder : encoders_) {
    // Evaluate the support before the argument list: the labels vector is
    // moved into the same call.
    const uint32_t support = static_cast<uint32_t>(encoder.labels.size());
    auto column =
        Column::Make(std::move(encoder.name), support,
                     std::move(encoder.codes), std::move(encoder.labels));
    if (!column.ok()) return column.status();
    columns.push_back(std::move(column).value());
  }
  return Table::Make(std::move(columns));
}

}  // namespace swope
