// This TU lives in src/core/ and may use the internal driver headers.
#define SWOPE_CORE_INTERNAL

#include "src/core/scorers.h"

#include <algorithm>
#include <cmath>

namespace swope {

namespace {

// Composes the NMI interval from the MI interval and the two marginal
// entropy intervals. When a marginal lower bound is 0 the upper bound is
// vacuous (1); when a marginal upper bound is 0 the attribute is constant
// and NMI is 0.
ScoreInterval ComposeNmi(const MiInterval& mi, const EntropyInterval& target,
                         const EntropyInterval& candidate) {
  ScoreInterval interval;
  const double denom_upper = std::sqrt(target.upper * candidate.upper);
  const double denom_lower = std::sqrt(target.lower * candidate.lower);
  if (denom_upper <= 0.0) return interval;  // a constant attribute: NMI = 0
  interval.lower = std::clamp(mi.lower / denom_upper, 0.0, 1.0);
  interval.upper =
      denom_lower > 0.0
          ? std::clamp(mi.upper / denom_lower, interval.lower, 1.0)
          : 1.0;
  return interval;
}

}  // namespace

EntropyScorer::EntropyScorer(const Table& table) : table_(table) {
  const size_t h = table.num_columns();
  columns_.resize(h);
  views_.reserve(h);
  counters_.reserve(h);
  for (size_t j = 0; j < h; ++j) {
    columns_[j] = j;
    views_.emplace_back(table.column(j));
    counters_.emplace_back(table.column(j).support());
  }
  intervals_.resize(h);
}

void EntropyScorer::UpdateCandidate(size_t c,
                                    const std::vector<uint32_t>& order,
                                    uint64_t begin, uint64_t end,
                                    uint64_t m) {
  // Gather-then-count: decode the round's slice once, then feed the span.
  CodeScratchArena::Lease lease(arena_);
  const ValueCode* codes = views_[c].Gather(order, begin, end, lease.buffer());
  counters_[c].AddCodes(codes, end - begin);
  const EntropyInterval interval =
      MakeEntropyInterval(counters_[c].SampleEntropy(), views_[c].support(),
                          n_, m, p_iter_);
  intervals_[c] = {interval.lower, interval.upper, interval.bias};
}

bool EntropyScorer::TopKShouldStop(const std::vector<size_t>& active,
                                   double kth_upper, uint64_t m,
                                   double epsilon) const {
  // A non-positive k-th upper bound means every candidate entropy is
  // zero, so any answer is exact.
  if (kth_upper <= 0.0) return true;
  double b_max = 0.0;
  for (size_t idx : active) {
    if (intervals_[idx].upper >= kth_upper) {
      b_max = std::max(b_max, intervals_[idx].slack);
    }
  }
  const double lambda = PermutationLambda(n_, m, p_iter_);
  // Stopping rule (Algorithm 1 line 8).
  return (kth_upper - 2.0 * lambda - b_max) / kth_upper >= 1.0 - epsilon;
}

MiScorer::MiScorer(const Table& table, size_t target,
                   uint64_t dense_pair_limit)
    : table_(table),
      target_col_(table.column(target)),
      target_view_(table.column(target)),
      target_counter_(target_col_.support()) {
  const size_t h = table.num_columns();
  columns_.reserve(h - 1);
  views_.reserve(h - 1);
  counters_.reserve(h - 1);
  for (size_t j = 0; j < h; ++j) {
    if (j == target) continue;
    columns_.push_back(j);
    views_.emplace_back(table.column(j));
    CandidateCounters counter;
    counter.marginal = FrequencyCounter(table.column(j).support());
    counter.joint = PairCounter(target_col_.support(),
                                table.column(j).support(), dense_pair_limit);
    counters_.push_back(std::move(counter));
  }
  intervals_.resize(columns_.size());
}

void MiScorer::BeginRound(const std::vector<uint32_t>& order, uint64_t begin,
                          uint64_t end, uint64_t m) {
  // Decode the target's slice once per round; every candidate's joint
  // update this round reads the same span.
  const ValueCode* target_codes =
      target_view_.Gather(order, begin, end, target_slice_);
  target_counter_.AddCodes(target_codes, end - begin);
  target_interval_ =
      MakeEntropyInterval(target_counter_.SampleEntropy(),
                          target_col_.support(), n_, m, p_iter_);
}

MiInterval MiScorer::UpdateMi(size_t c, const std::vector<uint32_t>& order,
                              uint64_t begin, uint64_t end, uint64_t m,
                              EntropyInterval* marginal_out) {
  CandidateCounters& counter = counters_[c];
  const ColumnView& view = views_[c];
  CodeScratchArena::Lease lease(arena_);
  const ValueCode* codes = view.Gather(order, begin, end, lease.buffer());
  const uint64_t count = end - begin;
  counter.marginal.AddCodes(codes, count);
  counter.joint.AddCodes(target_slice_.data(), codes, count);
  const EntropyInterval marginal_interval = MakeEntropyInterval(
      counter.marginal.SampleEntropy(), view.support(), n_, m, p_iter_);
  const uint64_t u_bar = static_cast<uint64_t>(target_col_.support()) *
                         static_cast<uint64_t>(view.support());
  const EntropyInterval joint_interval = MakeEntropyInterval(
      counter.joint.SampleJointEntropy(), u_bar, n_, m, p_iter_);
  if (marginal_out != nullptr) *marginal_out = marginal_interval;
  return MakeMiInterval(target_interval_, marginal_interval, joint_interval);
}

void MiScorer::UpdateCandidate(size_t c, const std::vector<uint32_t>& order,
                               uint64_t begin, uint64_t end, uint64_t m) {
  const MiInterval mi = UpdateMi(c, order, begin, end, m, nullptr);
  intervals_[c] = {mi.lower, mi.upper, mi.slack};
}

bool MiScorer::TopKShouldStop(const std::vector<size_t>& active,
                              double kth_upper, uint64_t /*m*/,
                              double epsilon) const {
  if (kth_upper <= 0.0) return true;
  double slack_max = 0.0;
  for (size_t idx : active) {
    if (intervals_[idx].upper >= kth_upper) {
      slack_max = std::max(slack_max, intervals_[idx].slack);
    }
  }
  // Stopping rule (Algorithm 3).
  return (kth_upper - slack_max) / kth_upper >= 1.0 - epsilon;
}

void NmiScorer::UpdateCandidate(size_t c, const std::vector<uint32_t>& order,
                                uint64_t begin, uint64_t end, uint64_t m) {
  EntropyInterval marginal_interval;
  const MiInterval mi = UpdateMi(c, order, begin, end, m, &marginal_interval);
  intervals_[c] = ComposeNmi(mi, target_interval(), marginal_interval);
}

bool NmiScorer::TopKShouldStop(const std::vector<size_t>& active,
                               double kth_upper, uint64_t /*m*/,
                               double epsilon) const {
  if (kth_upper <= 0.0) return true;
  // Generalized relative-width stopping rule: every member of the
  // current top-k set must satisfy upper - lower <= eps * upper.
  for (size_t idx : active) {
    const ScoreInterval& interval = intervals_[idx];
    if (interval.upper >= kth_upper &&
        interval.upper - interval.lower > epsilon * interval.upper) {
      return false;
    }
  }
  return true;
}

}  // namespace swope
