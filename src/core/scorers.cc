// This TU lives in src/core/ and may use the internal driver headers.
#define SWOPE_CORE_INTERNAL

#include "src/core/scorers.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/obs/profiler.h"

namespace swope {

namespace {

// Composes the NMI interval from the MI interval and the two marginal
// entropy intervals. When a marginal lower bound is 0 the upper bound is
// vacuous (1); when a marginal upper bound is 0 the attribute is constant
// and NMI is 0.
ScoreInterval ComposeNmi(const MiInterval& mi, const EntropyInterval& target,
                         const EntropyInterval& candidate) {
  ScoreInterval interval;
  const double denom_upper = std::sqrt(target.upper * candidate.upper);
  const double denom_lower = std::sqrt(target.lower * candidate.lower);
  if (denom_upper <= 0.0) return interval;  // a constant attribute: NMI = 0
  interval.lower = std::clamp(mi.lower / denom_upper, 0.0, 1.0);
  interval.upper =
      denom_lower > 0.0
          ? std::clamp(mi.upper / denom_lower, interval.lower, 1.0)
          : 1.0;
  return interval;
}

// Builds one sketch provider for a scorer slot. The wrappers validate
// options before constructing any scorer and the heavy capacities are
// compile-time constants >= 1, so provider construction cannot fail here.
std::unique_ptr<SketchFrequencyProvider> MakeScorerSketch(
    const QueryOptions& options, uint64_t seed_salt, uint32_t heavy_capacity) {
  Result<SketchFrequencyProvider> provider =
      MakeQuerySketchProvider(options, seed_salt, heavy_capacity);
  return std::make_unique<SketchFrequencyProvider>(
      std::move(provider).value());
}

// Seed-salt namespace bit for joint sketches: column supports fit in 32
// bits, so (kJointSaltBit | column) never collides with a marginal salt.
constexpr uint64_t kJointSaltBit = uint64_t{1} << 32;

// FinalizeCandidate re-evaluates a candidate's merged counters by running
// the ordinary whole-slice update over this zero-length slice.
const std::vector<uint32_t> kEmptySlice;

}  // namespace

EntropyScorer::EntropyScorer(const Table& table, const QueryOptions& options)
    : Scorer(options.memory),
      table_(table),
      profiler_(options.profiler),
      views_(memory_),
      counters_(memory_),
      sketches_(memory_),
      deltas_(memory_),
      scratch_(options.scratch != nullptr ? *options.scratch : own_scratch_) {
  const size_t h = table.num_columns();
  columns_.resize(h);
  views_.reserve(h);
  counters_.reserve(h);
  sketches_.resize(h);
  for (size_t j = 0; j < h; ++j) {
    columns_[j] = j;
    views_.emplace_back(table.column(j));
    const uint32_t support = table.column(j).support();
    if (UsesSketchPath(support, options)) {
      sketches_[j] = MakeScorerSketch(options, j, kSketchHeavyCapacity);
      counters_.emplace_back(0, memory_);  // placeholder; the sketch is live
      ++sketch_candidates_;
    } else {
      counters_.emplace_back(support, memory_);
    }
  }
  intervals_.resize(h);
}

void EntropyScorer::UpdateCandidate(size_t c,
                                    const std::vector<uint32_t>& order,
                                    uint64_t begin, uint64_t end,
                                    uint64_t m) {
  // Gather-then-count: decode the round's slice once, then feed the span.
  CodeScratchArena::Lease lease(scratch_);
  const ValueCode* codes;
  {
    StageTimer timer(profiler_, Stage::kGather);
    codes = views_[c].Gather(order, begin, end, lease.buffer());
  }
  EntropyInterval interval;
  if (sketches_[c] != nullptr) {
    {
      StageTimer timer(profiler_, Stage::kCount);
      sketches_[c]->AddCodes(codes, end - begin);
    }
    StageTimer timer(profiler_, Stage::kIntervalUpdate);
    interval = MakeSketchEntropyInterval(sketches_[c]->Summarize(),
                                         views_[c].support(), n_, m, p_iter_);
  } else {
    {
      StageTimer timer(profiler_, Stage::kCount);
      counters_[c].AddCodes(codes, end - begin);
    }
    StageTimer timer(profiler_, Stage::kIntervalUpdate);
    interval =
        MakeEntropyInterval(counters_[c].SampleEntropy(), views_[c].support(),
                            n_, m, p_iter_);
  }
  intervals_[c] = {interval.lower, interval.upper, interval.bias};
}

void EntropyScorer::PrepareSharding(size_t num_shards) {
  deltas_.resize(counters_.size());
  for (size_t c = 0; c < counters_.size(); ++c) {
    if (sketches_[c] != nullptr) continue;
    deltas_[c].reserve(num_shards);
    while (deltas_[c].size() < num_shards) {
      deltas_[c].emplace_back(views_[c].support(), memory_);
    }
  }
}

void EntropyScorer::UpdateCandidateShard(size_t c, size_t shard,
                                         const ShardSlicePartition& partition) {
  const std::vector<uint32_t>& rows = partition.local_rows(shard);
  CodeScratchArena::Lease lease(scratch_);
  const ValueCode* codes;
  {
    StageTimer timer(profiler_, Stage::kGather);
    codes =
        views_[c].GatherShard(shard, rows.data(), rows.size(), lease.buffer());
  }
  StageTimer timer(profiler_, Stage::kCount);
  deltas_[c][shard].AddCodes(codes, rows.size());
}

void EntropyScorer::FinalizeCandidate(size_t c,
                                      const ShardSlicePartition& partition,
                                      uint64_t m) {
  // Ascending shard order; merging is exact integer addition, so the
  // merged counts equal the whole-slice counts exactly.
  {
    StageTimer timer(profiler_, Stage::kShardMerge);
    for (size_t s = 0; s < partition.num_shards(); ++s) {
      if (partition.local_rows(s).empty()) continue;
      counters_[c].Merge(deltas_[c][s]);
      deltas_[c][s].Reset();
    }
  }
  // Empty-slice update: absorbs nothing, evaluates the merged counts
  // through the same code path (and machine code) as a serial round, so
  // the interval is bitwise identical by construction.
  UpdateCandidate(c, kEmptySlice, 0, 0, m);
}

bool EntropyScorer::TopKShouldStop(const std::pmr::vector<size_t>& active,
                                   double kth_upper, uint64_t m,
                                   double epsilon) const {
  // A non-positive k-th upper bound means every candidate entropy is
  // zero, so any answer is exact.
  if (kth_upper <= 0.0) return true;
  double b_max = 0.0;
  for (size_t idx : active) {
    if (intervals_[idx].upper >= kth_upper) {
      b_max = std::max(b_max, intervals_[idx].slack);
    }
  }
  const double lambda = PermutationLambda(n_, m, p_iter_);
  // Stopping rule (Algorithm 1 line 8).
  return (kth_upper - 2.0 * lambda - b_max) / kth_upper >= 1.0 - epsilon;
}

MiScorer::MiScorer(const Table& table, size_t target,
                   const QueryOptions& options)
    : Scorer(options.memory),
      table_(table),
      target_col_(table.column(target)),
      profiler_(options.profiler),
      target_view_(table.column(target)),
      views_(memory_),
      target_counter_(UsesSketchPath(table.column(target).support(), options)
                          ? 0
                          : table.column(target).support(),
                      memory_),
      target_slice_(memory_),
      counters_(memory_),
      scratch_(options.scratch != nullptr ? *options.scratch : own_scratch_) {
  const bool target_sketched =
      UsesSketchPath(target_col_.support(), options);
  if (target_sketched) {
    target_sketch_ = MakeScorerSketch(options, target, kSketchHeavyCapacity);
  }
  const size_t h = table.num_columns();
  columns_.reserve(h - 1);
  views_.reserve(h - 1);
  counters_.reserve(h - 1);
  for (size_t j = 0; j < h; ++j) {
    if (j == target) continue;
    columns_.push_back(j);
    views_.emplace_back(table.column(j));
    const uint32_t support = table.column(j).support();
    const bool marginal_sketched = UsesSketchPath(support, options);
    // Assignments below move between equal-resource counters, so the
    // arena-built buffers are stolen, not copied.
    CandidateCounters counter(memory_);
    if (marginal_sketched) {
      counter.marginal_sketch =
          MakeScorerSketch(options, j, kSketchHeavyCapacity);
    } else {
      counter.marginal = FrequencyCounter(support, memory_);
    }
    if (target_sketched || marginal_sketched) {
      // The joint domain contains a sketched side, so it is counted
      // through a sketch too (keyed (target_code << 32) | code).
      counter.joint_sketch = MakeScorerSketch(options, kJointSaltBit | j,
                                              kSketchJointHeavyCapacity);
      ++sketch_candidates_;
    } else {
      counter.joint = PairCounter(target_col_.support(), support,
                                  options.dense_pair_limit, memory_);
    }
    counters_.push_back(std::move(counter));
  }
  intervals_.resize(columns_.size());
}

void MiScorer::BeginRound(const std::vector<uint32_t>& order, uint64_t begin,
                          uint64_t end, uint64_t m) {
  // Decode the target's slice once per round; every candidate's joint
  // update this round reads the same span.
  const ValueCode* target_codes;
  {
    StageTimer timer(profiler_, Stage::kGather);
    target_codes = target_view_.Gather(order, begin, end, target_slice_);
  }
  if (target_sketch_ != nullptr) {
    {
      StageTimer timer(profiler_, Stage::kCount);
      target_sketch_->AddCodes(target_codes, end - begin);
    }
    StageTimer timer(profiler_, Stage::kIntervalUpdate);
    target_interval_ =
        MakeSketchEntropyInterval(target_sketch_->Summarize(),
                                  target_col_.support(), n_, m, p_iter_);
  } else {
    {
      StageTimer timer(profiler_, Stage::kCount);
      target_counter_.AddCodes(target_codes, end - begin);
    }
    StageTimer timer(profiler_, Stage::kIntervalUpdate);
    target_interval_ =
        MakeEntropyInterval(target_counter_.SampleEntropy(),
                            target_col_.support(), n_, m, p_iter_);
  }
}

MiInterval MiScorer::UpdateMi(size_t c, const std::vector<uint32_t>& order,
                              uint64_t begin, uint64_t end, uint64_t m,
                              EntropyInterval* marginal_out) {
  CandidateCounters& counter = counters_[c];
  const ColumnView& view = views_[c];
  CodeScratchArena::Lease lease(scratch_);
  const ValueCode* codes;
  {
    StageTimer timer(profiler_, Stage::kGather);
    codes = view.Gather(order, begin, end, lease.buffer());
  }
  const uint64_t count = end - begin;
  EntropyInterval marginal_interval;
  if (counter.marginal_sketch != nullptr) {
    {
      StageTimer timer(profiler_, Stage::kCount);
      counter.marginal_sketch->AddCodes(codes, count);
    }
    StageTimer timer(profiler_, Stage::kIntervalUpdate);
    marginal_interval =
        MakeSketchEntropyInterval(counter.marginal_sketch->Summarize(),
                                  view.support(), n_, m, p_iter_);
  } else {
    {
      StageTimer timer(profiler_, Stage::kCount);
      counter.marginal.AddCodes(codes, count);
    }
    StageTimer timer(profiler_, Stage::kIntervalUpdate);
    marginal_interval = MakeEntropyInterval(
        counter.marginal.SampleEntropy(), view.support(), n_, m, p_iter_);
  }
  const uint64_t u_bar = static_cast<uint64_t>(target_col_.support()) *
                         static_cast<uint64_t>(view.support());
  EntropyInterval joint_interval;
  if (counter.joint_sketch != nullptr) {
    {
      StageTimer timer(profiler_, Stage::kCount);
      counter.joint_sketch->AddPairs(target_slice_.data(), codes, count);
    }
    StageTimer timer(profiler_, Stage::kIntervalUpdate);
    joint_interval = MakeSketchEntropyInterval(
        counter.joint_sketch->Summarize(), u_bar, n_, m, p_iter_);
  } else {
    {
      StageTimer timer(profiler_, Stage::kCount);
      counter.joint.AddCodes(target_slice_.data(), codes, count);
    }
    StageTimer timer(profiler_, Stage::kIntervalUpdate);
    joint_interval = MakeEntropyInterval(counter.joint.SampleJointEntropy(),
                                         u_bar, n_, m, p_iter_);
  }
  if (marginal_out != nullptr) *marginal_out = marginal_interval;
  StageTimer timer(profiler_, Stage::kIntervalUpdate);
  return MakeMiInterval(target_interval_, marginal_interval, joint_interval);
}

void MiScorer::PrepareSharding(size_t num_shards) {
  for (size_t c = 0; c < counters_.size(); ++c) {
    if (!CandidateShardable(c)) continue;
    counters_[c].shard_codes.resize(num_shards);
  }
}

void MiScorer::UpdateCandidateShard(size_t c, size_t shard,
                                    const ShardSlicePartition& partition) {
  // Gather only: decode this shard's rows of the candidate column into
  // the (candidate, shard)-private buffer. Counting happens serially in
  // FinalizeCandidate -- the joint counter's running x*log2(x) sum is
  // sample-order-sensitive in its last ulps, so the parallel win here is
  // the decode, and the per-candidate replay parallelizes across
  // candidates.
  CandidateCounters& counter = counters_[c];
  const std::vector<uint32_t>& rows = partition.local_rows(shard);
  StageTimer timer(profiler_, Stage::kGather);
  views_[c].GatherShard(shard, rows.data(), rows.size(),
                        counter.shard_codes[shard]);
}

void MiScorer::FinalizeCandidate(size_t c,
                                 const ShardSlicePartition& partition,
                                 uint64_t m) {
  // Scatter the per-shard gathers back into slice order, then feed the
  // identical AddCodes calls a serial round would make. The counters --
  // integer counts and the joint's order-sensitive running sum alike --
  // evolve bit-identically to the serial path, and the empty-slice
  // update below re-derives the interval through the same composition
  // code (virtual dispatch routes NmiScorer through its NMI
  // normalization). Bitwise-identical answers by construction.
  CandidateCounters& counter = counters_[c];
  std::pmr::vector<ValueCode>& replay = counter.replay;
  {
    StageTimer timer(profiler_, Stage::kReplay);
    replay.resize(partition.slice_size());
    for (size_t s = 0; s < partition.num_shards(); ++s) {
      const std::vector<uint32_t>& pos = partition.slice_pos(s);
      const std::pmr::vector<ValueCode>& codes = counter.shard_codes[s];
      for (size_t i = 0; i < pos.size(); ++i) replay[pos[i]] = codes[i];
    }
    counter.marginal.AddCodes(replay.data(), replay.size());
    counter.joint.AddCodes(target_slice_.data(), replay.data(), replay.size());
  }
  UpdateCandidate(c, kEmptySlice, 0, 0, m);
}

void MiScorer::UpdateCandidate(size_t c, const std::vector<uint32_t>& order,
                               uint64_t begin, uint64_t end, uint64_t m) {
  const MiInterval mi = UpdateMi(c, order, begin, end, m, nullptr);
  intervals_[c] = {mi.lower, mi.upper, mi.slack};
}

bool MiScorer::TopKShouldStop(const std::pmr::vector<size_t>& active,
                              double kth_upper, uint64_t /*m*/,
                              double epsilon) const {
  if (kth_upper <= 0.0) return true;
  double slack_max = 0.0;
  for (size_t idx : active) {
    if (intervals_[idx].upper >= kth_upper) {
      slack_max = std::max(slack_max, intervals_[idx].slack);
    }
  }
  // Stopping rule (Algorithm 3).
  return (kth_upper - slack_max) / kth_upper >= 1.0 - epsilon;
}

void NmiScorer::UpdateCandidate(size_t c, const std::vector<uint32_t>& order,
                                uint64_t begin, uint64_t end, uint64_t m) {
  EntropyInterval marginal_interval;
  const MiInterval mi = UpdateMi(c, order, begin, end, m, &marginal_interval);
  StageTimer timer(profiler_, Stage::kIntervalUpdate);
  intervals_[c] = ComposeNmi(mi, target_interval(), marginal_interval);
}

bool NmiScorer::TopKShouldStop(const std::pmr::vector<size_t>& active,
                               double kth_upper, uint64_t /*m*/,
                               double epsilon) const {
  if (kth_upper <= 0.0) return true;
  // Generalized relative-width stopping rule: every member of the
  // current top-k set must satisfy upper - lower <= eps * upper.
  for (size_t idx : active) {
    const ScoreInterval& interval = intervals_[idx];
    if (interval.upper >= kth_upper &&
        interval.upper - interval.lower > epsilon * interval.upper) {
      return false;
    }
  }
  return true;
}

}  // namespace swope
