#include "src/core/pair_counter.h"

#include <algorithm>
#include <cassert>

#include "src/common/math.h"

namespace swope {

PairCounter::PairCounter(uint32_t support_a, uint32_t support_b,
                         uint64_t dense_limit,
                         std::pmr::memory_resource* memory)
    : support_b_(support_b),
      cells_(static_cast<uint64_t>(support_a) * support_b),
      dense_limit_(dense_limit),
      is_dense_(cells_ <= dense_limit && cells_ <= kImmediateDenseCells),
      memory_(memory != nullptr ? memory : std::pmr::get_default_resource()),
      dense_(memory_),
      sparse_(is_dense_ ? 0 : 64, memory_) {
  if (is_dense_) dense_.assign(cells_, 0);
}

void PairCounter::Bump(uint64_t& slot) {
  const uint64_t old_count = slot++;
  if (old_count == 0) ++distinct_pairs_;
  sum_xlog2x_ += XLog2XIncrement(old_count);
  ++sample_count_;
}

void PairCounter::AddSparse(ValueCode a, ValueCode b) {
  assert(b < support_b_);
  Bump(sparse_[Key(a, b)]);
  // Migrate once the hash holds enough distinct pairs that the dense
  // array's O(1)-no-probing updates pay for its allocation. 1/8 of the
  // domain is the break-even load observed in the micro benches.
  if (cells_ <= dense_limit_ && distinct_pairs_ * 8 >= cells_) {
    MigrateToDense();
  }
}

void PairCounter::MergeKey(uint64_t key, uint64_t add) {
  uint64_t& slot = is_dense_ ? dense_[key] : sparse_[key];
  const uint64_t old_count = slot;
  if (old_count == 0) ++distinct_pairs_;
  slot = old_count + add;
  // One jump instead of `add` unit increments; counts stay exact, the
  // running sum absorbs the whole step.
  sum_xlog2x_ += XLog2X(static_cast<double>(old_count + add)) -
                 XLog2X(static_cast<double>(old_count));
  sample_count_ += add;
  if (!is_dense_ && cells_ <= dense_limit_ && distinct_pairs_ * 8 >= cells_) {
    MigrateToDense();
  }
}

void PairCounter::Merge(const PairCounter& other) {
  assert(other.support_b_ == support_b_ && other.cells_ == cells_);
  if (other.is_dense_) {
    for (uint64_t key = 0; key < other.cells_; ++key) {
      if (other.dense_[key] != 0) MergeKey(key, other.dense_[key]);
    }
  } else {
    other.sparse_.ForEach(
        [&](uint64_t key, uint64_t add) { MergeKey(key, add); });
  }
}

void PairCounter::Reset() {
  if (is_dense_) {
    std::fill(dense_.begin(), dense_.end(), 0);
  } else {
    sparse_.Clear();
  }
  sample_count_ = 0;
  distinct_pairs_ = 0;
  sum_xlog2x_ = 0.0;
}

void PairCounter::MigrateToDense() {
  dense_.assign(cells_, 0);
  sparse_.ForEach(
      [&](uint64_t key, uint64_t count) { dense_[key] = count; });
  // Shrink the hash to its floor on the same resource (an arena reclaims
  // the old slots only at rewind; that is the bump-allocator bargain).
  sparse_ = FlatHashMap<uint64_t, uint64_t>(0, memory_);
  is_dense_ = true;
}

double PairCounter::SampleJointEntropy() const {
  return EntropyFromXLog2XSum(sum_xlog2x_, sample_count_);
}

uint64_t PairCounter::count(ValueCode a, ValueCode b) const {
  if (is_dense_) return dense_[Key(a, b)];
  const uint64_t* found = sparse_.Find(Key(a, b));
  return found != nullptr ? *found : 0;
}

}  // namespace swope
