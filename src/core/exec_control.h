// Cooperative cancellation and deadlines for long-running queries.
//
// The SWOPE drivers are iterative: each sample-doubling round does a
// bounded amount of work, so checking an ExecControl once per round gives
// prompt cancellation without per-row overhead. The engine (src/engine/)
// attaches an ExecControl to QueryOptions; library users can do the same
// to abort a query from another thread or to bound its wall-clock time.

#ifndef SWOPE_CORE_EXEC_CONTROL_H_
#define SWOPE_CORE_EXEC_CONTROL_H_

#include <atomic>
#include <chrono>

#include "src/common/status.h"
#include "src/common/stopwatch.h"

namespace swope {

/// A one-way latch flipped by the cancelling thread and polled by the
/// query. Safe to share across threads; Cancel() may race with
/// cancelled() freely (both are atomic).
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-query execution limits, polled by the drivers at every
/// sample-doubling round. Both members are optional; a default
/// ExecControl never fires. The struct does not own the token: the
/// owner (engine or caller) must keep it alive for the query's duration.
struct ExecControl {
  /// When set and cancelled, the query returns Status::Cancelled.
  const CancellationToken* token = nullptr;

  /// When set (non-default), the query returns Status::DeadlineExceeded
  /// once the steady clock passes it.
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;

  /// Convenience: deadline = now + timeout.
  void SetTimeout(std::chrono::nanoseconds timeout) {
    deadline = SteadyNow() + timeout;
    has_deadline = true;
  }

  /// OK while the query may keep running; Cancelled / DeadlineExceeded
  /// otherwise.
  Status Check() const;
};

}  // namespace swope

#endif  // SWOPE_CORE_EXEC_CONTROL_H_
