#include "src/core/sketch_estimation.h"

#include <algorithm>
#include <cmath>

#include "src/common/math.h"

namespace swope {

bool UsesSketchPath(uint32_t support, const QueryOptions& options) {
  return options.sketch_epsilon > 0.0 && support > options.sketch_threshold;
}

Status ValidateColumnSupports(const Table& table,
                              const QueryOptions& options) {
  if (options.sketch_epsilon > 0.0) return Status::OK();
  for (const Column& column : table.columns()) {
    if (column.support() > options.sketch_threshold) {
      return Status::InvalidArgument(
          "column '" + column.name() + "' has support " +
          std::to_string(column.support()) + " > " +
          std::to_string(options.sketch_threshold) +
          "; drop it (--max-support), raise sketch_threshold, or enable "
          "the sketch path (sketch_epsilon > 0)");
    }
  }
  return Status::OK();
}

Result<SketchFrequencyProvider> MakeQuerySketchProvider(
    const QueryOptions& options, uint64_t seed_salt,
    uint32_t heavy_capacity) {
  SketchFrequencyProvider::Params params;
  params.epsilon = options.sketch_epsilon;
  params.delta = kSketchDelta;
  // Salt the hash seed per column so collision patterns are independent
  // across candidates, while staying a pure function of (seed, salt) for
  // reproducibility.
  params.seed = options.seed ^ (0x9e3779b97f4a7c15ULL * (seed_salt + 1));
  params.heavy_capacity = heavy_capacity;
  return SketchFrequencyProvider::Make(params);
}

SketchEntropyEstimate EstimateSketchEntropy(const SketchSummary& summary,
                                            uint64_t support_cap) {
  SketchEntropyEstimate result;
  const uint64_t m = summary.sample_count;
  if (m == 0) return result;
  const double m_d = static_cast<double>(m);
  const double noise_denom =
      static_cast<double>(summary.width > 1 ? summary.width - 1 : 1);

  // Bias-corrected heavy mass: subtract each estimate's expected
  // collision noise (M - c_hat) / (w - 1), floored at one occurrence (a
  // tracked value was seen at least once).
  double heavy_mass = 0.0;
  double heavy_xlogx = 0.0;  // sum c~ * log2(c~)
  for (const SketchHeavyHitter& h : summary.heavy) {
    const double c_hat = static_cast<double>(h.estimate);
    const double corrected =
        std::max(1.0, c_hat - (m_d - c_hat) / noise_denom);
    heavy_mass += corrected;
    heavy_xlogx += XLog2X(corrected);
  }
  // Collision pile-ups can push the corrected sum past M; rescale so the
  // masses below stay a distribution.
  if (heavy_mass > m_d) {
    const double scale = m_d / heavy_mass;
    heavy_xlogx = scale * heavy_xlogx + heavy_mass * scale * SafeLog2(scale);
    heavy_mass = m_d;
  }
  // H contribution of the heavy set: sum (c/M) log2(M/c).
  const double h_heavy =
      heavy_mass / m_d * SafeLog2(m_d) - heavy_xlogx / m_d;

  const double residual = std::max(0.0, m_d - heavy_mass);
  double lower = h_heavy;
  double upper = h_heavy;
  if (residual >= 1.0) {
    // Residual distinct budget: what linear counting saw, minus the
    // tracked values, capped by the support and by the residual mass
    // itself (each residual value occurs at least once).
    const uint64_t distinct_cap =
        std::min<uint64_t>(summary.distinct_estimate,
                           std::min<uint64_t>(support_cap, m));
    const double r = std::max(
        1.0, std::min(residual,
                      static_cast<double>(distinct_cap) -
                          static_cast<double>(summary.heavy.size())));
    // All of R on one value (minimum) ... R uniform over r values
    // (maximum).
    lower += residual / m_d * SafeLog2(m_d / residual);
    upper += residual / m_d * SafeLog2(m_d * r / residual);
  }

  const double cap =
      SafeLog2(static_cast<double>(std::min<uint64_t>(support_cap, m)));
  result.lower = Clamp(lower, 0.0, cap);
  result.upper = Clamp(upper, result.lower, cap);
  result.estimate = 0.5 * (result.lower + result.upper);
  return result;
}

EntropyInterval MakeSketchEntropyInterval(const SketchSummary& summary,
                                          uint64_t support_cap, uint64_t n,
                                          uint64_t m, double p) {
  const SketchEntropyEstimate band =
      EstimateSketchEntropy(summary, support_cap);
  const EntropyInterval lo =
      MakeEntropyInterval(band.lower, support_cap, n, m, p);
  const EntropyInterval hi =
      MakeEntropyInterval(band.upper, support_cap, n, m, p);
  EntropyInterval interval;
  interval.lower = lo.lower;
  interval.upper = hi.upper;
  interval.lambda = hi.lambda;
  // The band's width never shrinks with more samples, so the stopping
  // rules must treat it like bias: irreducible slack.
  interval.bias = hi.bias + (band.upper - band.lower);
  interval.sample_entropy = band.estimate;
  return interval;
}

}  // namespace swope
