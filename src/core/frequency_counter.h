// FrequencyCounter: incremental per-attribute sample statistics.
//
// Maintains the value counts m_i of the sampled prefix S(alpha); the
// sample entropy
//   H_S(alpha) = log2(M) - (sum_i m_i log2 m_i) / M          (Equation 1)
// is computed on demand by one O(u_alpha) scan. The queries evaluate
// bounds once per doubling iteration, so the total evaluation work is
// O(u * log N) per attribute -- negligible next to the O(M) counting --
// while the per-row hot path stays a single count increment.

#ifndef SWOPE_CORE_FREQUENCY_COUNTER_H_
#define SWOPE_CORE_FREQUENCY_COUNTER_H_

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "src/table/packed_codes.h"

namespace swope {

/// Incremental counter over codes in [0, support).
class FrequencyCounter {
 public:
  /// Creates a counter for an attribute with the given support size. The
  /// count array comes from `memory` (default: the global heap); scorers
  /// pass the query arena so per-query counters cost no heap traffic.
  explicit FrequencyCounter(uint32_t support,
                            std::pmr::memory_resource* memory = nullptr);

  uint32_t support() const { return static_cast<uint32_t>(counts_.size()); }
  /// M: number of samples absorbed so far.
  uint64_t sample_count() const { return sample_count_; }
  /// Count m_i of value i.
  uint64_t count(uint32_t code) const { return counts_[code]; }
  const std::pmr::vector<uint64_t>& counts() const { return counts_; }
  /// Number of values with m_i > 0.
  uint32_t distinct_seen() const { return distinct_seen_; }

  /// Absorbs one sampled value.
  void Add(ValueCode code) {
    if (counts_[code]++ == 0) ++distinct_seen_;
    ++sample_count_;
  }

  /// Absorbs a contiguous span of already-decoded codes (a gathered
  /// permutation slice; see ColumnView::Gather). Counting is decoupled
  /// from storage: callers batch-decode once, then feed the span here.
  void AddCodes(const ValueCode* codes, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) Add(codes[i]);
  }

  /// Sample entropy H_S(alpha) in bits (0 when no samples). One O(u)
  /// scan per call, in ascending value order -- a pure function of the
  /// counts, so any partition of the sample that merges to the same
  /// counts yields the bitwise-same entropy (the shard-merge
  /// determinism argument; docs/SHARDING.md).
  double SampleEntropy() const;

  /// Adds `other`'s counts into this counter (same support required).
  /// Count addition is exact and commutative, so a whole-slice count and
  /// any shard-partitioned count-then-merge reach identical state.
  void Merge(const FrequencyCounter& other);

  /// Forgets everything.
  void Reset();

 private:
  std::pmr::vector<uint64_t> counts_;
  uint64_t sample_count_ = 0;
  uint32_t distinct_seen_ = 0;
};

}  // namespace swope

#endif  // SWOPE_CORE_FREQUENCY_COUNTER_H_
